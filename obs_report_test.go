package pisd_test

import (
	"context"
	"testing"
	"time"

	"pisd"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/obs"
)

// TestStageLatencyReport produces the per-stage discovery latency table in
// EXPERIMENTS.md from a registry Snapshot() diff over a real workload:
// 5000 users, default parameters (l=10, d=4, dim 500), 200 discoveries
// against a cloud server on a TCP socket. Regenerate the table with
//
//	go test -run TestStageLatencyReport -v .
//
// The assertions are deliberately loose (stages observed, accounting
// consistent); the value is the logged breakdown.
func TestStageLatencyReport(t *testing.T) {
	if testing.Short() {
		t.Skip("workload report")
	}
	const (
		nUsers   = 5000
		dim      = 500
		nQueries = 200
	)
	ds, err := dataset.Generate(dataset.Config{
		Users: nUsers, Dim: dim, Topics: 25, TopicsPerUser: 2,
		ActiveWords: dim / 12, Noise: 0.02, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pisd.DefaultFrontendConfig(dim)
	cfg.KeySeed = "stage-report"
	sf, err := pisd.NewFrontend(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uploads := make([]pisd.Upload, nUsers)
	for i, p := range ds.Profiles {
		uploads[i] = pisd.Upload{ID: uint64(i + 1), Profile: p, Meta: sf.ComputeMeta(p)}
	}
	idx, encProfiles, err := sf.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	frontend.SetRegistry(reg)
	defer frontend.SetRegistry(obs.Default)
	cs := pisd.NewCloud()
	cs.SetRegistry(reg)

	server := pisd.NewCloudServer(cs)
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		server.Shutdown(ctx)
	}()
	client, err := pisd.DialCloud(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.InstallIndex(idx); err != nil {
		t.Fatal(err)
	}
	if err := client.PutProfiles(encProfiles); err != nil {
		t.Fatal(err)
	}

	before := reg.Snapshot()
	for q := 0; q < nQueries; q++ {
		id := uint64(q*7%nUsers + 1)
		if _, err := sf.Discover(client, ds.Profiles[id-1], 5, id); err != nil {
			t.Fatal(err)
		}
	}
	flat := reg.Snapshot().Diff(before).Flatten()

	if got := flat["frontend.discover_count"]; got != nQueries {
		t.Fatalf("frontend.discover_count = %d, want %d", got, nQueries)
	}
	stages := []struct{ label, key string }{
		{"trapdoor generation", "frontend.trapdoor"},
		{"cloud exchange (fan-out)", "frontend.fanout"},
		{"— of which server SecRec", "cloud.secrec"},
		{"profile decrypt + distances", "frontend.decrypt"},
		{"top-k ranking", "frontend.rank"},
		{"end-to-end discovery", "frontend.discover"},
	}
	t.Logf("per-stage latency over %d discoveries (n=%d, dim=%d, TCP loopback):", nQueries, nUsers, dim)
	t.Logf("| %-27s | %9s | %9s | %9s |", "stage", "p50 (µs)", "p99 (µs)", "avg (µs)")
	for _, st := range stages {
		if flat[st.key+"_count"] == 0 {
			t.Errorf("stage %q never observed", st.key)
			continue
		}
		t.Logf("| %-27s | %9.0f | %9.0f | %9.0f |", st.label,
			float64(flat[st.key+"_p50_ns"])/1e3,
			float64(flat[st.key+"_p99_ns"])/1e3,
			float64(flat[st.key+"_avg_ns"])/1e3)
	}
}
