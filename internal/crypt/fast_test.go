package crypt

import (
	"bytes"
	"testing"
)

// TestPos8MatchesPos pins the fast path to the generic framing: positions
// derived via a precomputed PRF must equal the allocating package-level
// functions bit for bit, or trapdoors and indexes built through different
// paths would diverge.
func TestPos8MatchesPos(t *testing.T) {
	keys, err := GenDeterministic("fast-path", 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		p := keys.TablePRF(j)
		for _, v := range []uint64{0, 1, 42, 1 << 32, ^uint64(0)} {
			if got, want := p.Pos8(v), Pos(keys.Table[j], EncodeUint64(v)); got != want {
				t.Errorf("table %d Pos8(%d) = %d, want %d", j, v, got, want)
			}
			for _, delta := range []int{1, 7, 30} {
				got := p.Pos8Probe(v, delta)
				want := PosProbe(keys.Table[j], EncodeUint64(v), delta)
				if got != want {
					t.Errorf("table %d Pos8Probe(%d,%d) = %d, want %d", j, v, delta, got, want)
				}
			}
		}
	}
}

// TestMaskIntoMatchesMask covers single-block, block-aligned and ragged
// expansion sizes.
func TestMaskIntoMatchesMask(t *testing.T) {
	keys, err := GenDeterministic("fast-path", 2)
	if err != nil {
		t.Fatal(err)
	}
	p := keys.TablePRF(1)
	for _, size := range []int{1, 31, 32, 64, 96, 100} {
		dst := make([]byte, size)
		p.MaskInto(dst, 1, 77)
		want := Mask(keys.Table[1], 1, 77, size)
		if !bytes.Equal(dst, want) {
			t.Errorf("MaskInto size %d diverges from Mask", size)
		}
	}
}

func TestStreamGIntoMatchesStreamG(t *testing.T) {
	keys, err := GenDeterministic("fast-path", 2)
	if err != nil {
		t.Fatal(err)
	}
	p := keys.GPRF()
	r := []byte("0123456789abcdef")
	for _, size := range []int{1, 32, 33, 96, 200} {
		dst := make([]byte, size)
		p.StreamGInto(dst, r)
		want := StreamG(keys.KG, r, size)
		if !bytes.Equal(dst, want) {
			t.Errorf("StreamGInto size %d diverges from StreamG", size)
		}
	}
}

// TestExpandExactSize guards the over-allocation fix: expansion outputs
// must not retain excess backing capacity.
func TestExpandExactSize(t *testing.T) {
	keys, err := GenDeterministic("fast-path", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 32, 33, 100} {
		out := Mask(keys.Table[0], 0, 0, size)
		if len(out) != size || cap(out) != size {
			t.Errorf("Mask(size=%d): len=%d cap=%d, want exact", size, len(out), cap(out))
		}
		out = StreamG(keys.KG, []byte("r"), size)
		if len(out) != size || cap(out) != size {
			t.Errorf("StreamG(size=%d): len=%d cap=%d, want exact", size, len(out), cap(out))
		}
	}
}

// TestEncFromSeededDRBG checks that ciphertexts drawn from a deterministic
// DRBG decrypt and that the DRBG reproduces them seed-for-seed.
func TestEncFromSeededDRBG(t *testing.T) {
	keys, err := GenDeterministic("fast-path", 1)
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("the quick brown fox")
	var seed [DRBGSeedSize]byte
	seed[0] = 9
	ct1, err := EncFrom(keys.KR, pt, NewSeededDRBG(seed))
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := EncFrom(keys.KR, pt, NewSeededDRBG(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct1, ct2) {
		t.Error("same DRBG seed produced different ciphertexts")
	}
	got, err := Dec(keys.KR, ct1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Errorf("roundtrip = %q, want %q", got, pt)
	}
}

// TestFastPathAllocs is the allocation regression gate of the fast path:
// the per-call PRF primitives must not allocate at all, and Enc/Dec must
// stay within their fixed output allocations.
func TestFastPathAllocs(t *testing.T) {
	keys, err := GenDeterministic("fast-path", 2)
	if err != nil {
		t.Fatal(err)
	}
	p := keys.TablePRF(0)
	g := keys.GPRF()
	buf := make([]byte, 96)
	r := []byte("0123456789abcdef")

	assertAllocs := func(name string, max float64, fn func()) {
		t.Helper()
		if got := testing.AllocsPerRun(200, fn); got > max {
			t.Errorf("%s: %.1f allocs/op, want <= %.0f", name, got, max)
		}
	}
	assertAllocs("Pos8", 0, func() { p.Pos8(12345) })
	assertAllocs("Pos8Probe", 0, func() { p.Pos8Probe(12345, 3) })
	assertAllocs("MaskInto", 0, func() { p.MaskInto(buf, 0, 7) })
	assertAllocs("StreamGInto", 0, func() { g.StreamGInto(buf, r) })
	assertAllocs("XOR", 0, func() { XOR(buf, buf, buf) })
	// Package-level Pos still allocates its return path at most once.
	assertAllocs("Pos", 1, func() { Pos(keys.Table[0], r) })

	pt := make([]byte, 64)
	drbg := NewSeededDRBG([DRBGSeedSize]byte{1})
	ct, err := EncFrom(keys.KR, pt, drbg)
	if err != nil {
		t.Fatal(err)
	}
	// Enc: ciphertext buffer plus bounded scratch; Dec: plaintext buffer
	// plus bounded scratch. The bound catches any return to per-call
	// hmac.New / aes.NewCipher (dozens of allocations).
	assertAllocs("EncFrom", 4, func() {
		if _, err := EncFrom(keys.KR, pt, drbg); err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs("Dec", 4, func() {
		if _, err := Dec(keys.KR, ct); err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs("DRBG.Fill", 0, func() { drbg.Fill(buf) })
}

// BenchmarkPos8 measures the precomputed position PRF (Fig. 5(c)'s
// dominant operation).
func BenchmarkPos8(b *testing.B) {
	keys, err := GenDeterministic("bench", 1)
	if err != nil {
		b.Fatal(err)
	}
	p := keys.TablePRF(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Pos8(uint64(i))
	}
}

// BenchmarkMaskInto measures one bucket-mask derivation into a reused
// buffer.
func BenchmarkMaskInto(b *testing.B) {
	keys, err := GenDeterministic("bench", 1)
	if err != nil {
		b.Fatal(err)
	}
	p := keys.TablePRF(0)
	var mask [32]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.MaskInto(mask[:], 0, uint64(i))
	}
}

// BenchmarkDRBGFill measures padding generation throughput per 32-byte
// bucket.
func BenchmarkDRBGFill(b *testing.B) {
	drbg := NewSeededDRBG([DRBGSeedSize]byte{1})
	var bucket [32]byte
	b.SetBytes(32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		drbg.Fill(bucket[:])
	}
}
