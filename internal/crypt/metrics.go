package crypt

import (
	"pisd/internal/obs"
)

// Package-level metric handles. The PRF fast paths are the hottest code
// in the system (hundreds of calls per query), so they count into striped
// counters — one padded cell per pooled scratch — and never touch a
// shared cache line from two cores. All handles are nil-safe: SetRegistry
// (nil) turns the whole package into the disabled mode at zero cost
// beyond a nil check per call.
//
// Counter semantics (names under "crypt."):
//
//	prf_pos_ops    position PRF evaluations (Pos8, Pos8Probe)
//	prf_mask_ops   mask/stream expansions (MaskInto, StreamGInto)
//	prf_mac_ops    MAC tag computations (Enc tagging, Dec verification)
//	dec_auth_fail  Dec calls rejected by MAC verification
//
// These are operation counts and failure totals only — they carry no key
// or plaintext-derived information (DESIGN.md §13).
var (
	mPosOps      *obs.StripedCounter
	mMaskOps     *obs.StripedCounter
	mMacOps      *obs.StripedCounter
	mDecAuthFail *obs.Counter
)

func init() { SetRegistry(obs.Default) }

// SetRegistry points the package's metrics at r (nil disables them).
// Intended for process setup and test isolation; not safe to call
// concurrently with in-flight PRF work.
func SetRegistry(r *obs.Registry) {
	if r == nil {
		mPosOps, mMaskOps, mMacOps, mDecAuthFail = nil, nil, nil, nil
		return
	}
	mPosOps = r.Striped("crypt.prf_pos_ops")
	mMaskOps = r.Striped("crypt.prf_mask_ops")
	mMacOps = r.Striped("crypt.prf_mac_ops")
	mDecAuthFail = r.Counter("crypt.dec_auth_fail")
}
