// Package crypt implements the cryptographic substrate of the PISD system:
// the keyed pseudo-random functions f, g, G used to permute bucket positions
// and derive bucket masks, the key generation function Gen(1^λ), and the
// semantically secure symmetric encryption Enc/Dec used for image profiles
// and images (Sec. II-B of the paper).
//
// PRFs are HMAC-SHA256 (the paper implements PRFs "by cryptographic hash
// functions"); encryption is AES-128-CTR with an encrypt-then-MAC
// HMAC-SHA256 tag, matching the paper's AES-128 + SHA-2 instantiation while
// adding integrity so a tampering cloud is detected.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

const (
	// PRFKeySize is the byte length of a PRF key.
	PRFKeySize = 32
	// EncKeySize is the byte length of a symmetric encryption key (AES-128).
	EncKeySize = 16
	// MACSize is the byte length of the authentication tag.
	MACSize = 32
	// ivSize is the AES-CTR initialization vector length.
	ivSize = aes.BlockSize
	// Overhead is the ciphertext expansion of Enc: IV plus MAC tag.
	Overhead = ivSize + MACSize
)

var (
	// ErrInvalidKeySize reports a key of unexpected length.
	ErrInvalidKeySize = errors.New("crypt: invalid key size")
	// ErrCiphertextTooShort reports a truncated ciphertext.
	ErrCiphertextTooShort = errors.New("crypt: ciphertext too short")
	// ErrAuthentication reports MAC verification failure (tampering or
	// wrong key).
	ErrAuthentication = errors.New("crypt: message authentication failed")
)

// PRFKey is a key for the pseudo-random functions f, g and G.
type PRFKey [PRFKeySize]byte

// EncKey is a key for the symmetric encryption scheme.
type EncKey [EncKeySize]byte

// KeySet is the secret key material K = (k_1, ..., k_l, k_s) output by
// Gen(1^λ), extended with k_r for the dynamic index (Sec. III-D).
type KeySet struct {
	// Table holds one PRF key per LSH hash table; Table[j] secures both
	// positions (f) and masks (g, G) of table j via domain separation.
	Table []PRFKey
	// KS encrypts user image profiles (S* = Enc(ks, S)).
	KS EncKey
	// KR encrypts the per-bucket random values r in the dynamic scheme.
	KR EncKey
	// KG keys the PRF G(·) that expands a bucket's random value r into its
	// mask in the dynamic scheme.
	KG PRFKey
}

// NumTables returns l, the number of per-table keys.
func (k *KeySet) NumTables() int { return len(k.Table) }

// Gen generates fresh keys for l hash tables from crypto/rand,
// implementing K ← Gen(1^λ). The security parameter is fixed by the key
// sizes above (λ = 128 for encryption, 256 for PRFs).
func Gen(l int) (*KeySet, error) {
	if l < 1 {
		return nil, fmt.Errorf("crypt: number of tables must be >= 1, got %d", l)
	}
	ks := &KeySet{Table: make([]PRFKey, l)}
	for j := range ks.Table {
		if _, err := io.ReadFull(rand.Reader, ks.Table[j][:]); err != nil {
			return nil, fmt.Errorf("crypt: generate table key: %w", err)
		}
	}
	if _, err := io.ReadFull(rand.Reader, ks.KS[:]); err != nil {
		return nil, fmt.Errorf("crypt: generate ks: %w", err)
	}
	if _, err := io.ReadFull(rand.Reader, ks.KR[:]); err != nil {
		return nil, fmt.Errorf("crypt: generate kr: %w", err)
	}
	if _, err := io.ReadFull(rand.Reader, ks.KG[:]); err != nil {
		return nil, fmt.Errorf("crypt: generate kg: %w", err)
	}
	return ks, nil
}

// GenDeterministic derives a KeySet from a seed. It exists so that tests and
// benchmarks are reproducible; production callers must use Gen.
func GenDeterministic(seed string, l int) (*KeySet, error) {
	if l < 1 {
		return nil, fmt.Errorf("crypt: number of tables must be >= 1, got %d", l)
	}
	ks := &KeySet{Table: make([]PRFKey, l)}
	for j := range ks.Table {
		ks.Table[j] = PRFKey(sha256.Sum256([]byte(fmt.Sprintf("%s/table/%d", seed, j))))
	}
	kd := sha256.Sum256([]byte(seed + "/ks"))
	copy(ks.KS[:], kd[:EncKeySize])
	kr := sha256.Sum256([]byte(seed + "/kr"))
	copy(ks.KR[:], kr[:EncKeySize])
	ks.KG = PRFKey(sha256.Sum256([]byte(seed + "/kg")))
	return ks, nil
}

// prf computes HMAC-SHA256(key, label || parts...) with an unambiguous
// length-prefixed encoding of each part. It routes through the
// precomputed-state fast path (prf.go); the output is bit-identical to the
// generic hmac.New construction.
func prf(key PRFKey, label byte, parts ...[]byte) [32]byte {
	var out [32]byte
	ForKey(key).sum(&out, label, parts...)
	return out
}

// Domain-separation labels for the three PRFs of the paper.
const (
	labelPos  = 0x01 // f: bucket positions
	labelMask = 0x02 // g: static bucket masks
	labelG    = 0x03 // G: dynamic bucket masks from random r
	labelSub  = 0x04 // subkey derivation
)

// Pos implements the position PRF f(k_j, ·): it maps the given parts to a
// pseudo-random uint64. Callers reduce it modulo the table width.
func Pos(key PRFKey, parts ...[]byte) uint64 {
	out := prf(key, labelPos, parts...)
	return binary.BigEndian.Uint64(out[:8])
}

// PosProbe is Pos for the δ-th random probe position: f(k_j, v || δ).
func PosProbe(key PRFKey, v []byte, delta int) uint64 {
	var d [4]byte
	binary.BigEndian.PutUint32(d[:], uint32(delta))
	return Pos(key, v, d[:])
}

// Mask implements the masking PRF g(k_j, j || pos), expanded to size bytes
// via counter mode over HMAC.
func Mask(key PRFKey, table int, pos uint64, size int) []byte {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[:8], uint64(table))
	binary.BigEndian.PutUint64(hdr[8:], pos)
	return expand(key, labelMask, hdr[:], size)
}

// StreamG implements the PRF G(·) of the dynamic scheme: it expands the
// per-bucket random value r into a size-byte mask.
func StreamG(key PRFKey, r []byte, size int) []byte {
	return expand(key, labelG, r, size)
}

// expand produces size pseudo-random bytes as
// HMAC(key, label||ctr||seed) blocks. The output is allocated exactly at
// size — no retained spare block capacity.
func expand(key PRFKey, label byte, seed []byte, size int) []byte {
	out := make([]byte, size)
	p := ForKey(key)
	s := prfScratchPool.Get().(*prfScratch)
	p.expandWith(s, out, label, seed)
	prfScratchPool.Put(s)
	return out
}

// SubKey derives a fresh PRF key from key and a context string, used to
// re-salt LSH parameters on rehash.
func SubKey(key PRFKey, context string) PRFKey {
	return PRFKey(prf(key, labelSub, []byte(context)))
}

// XOR sets dst = a ^ b and returns dst. All three must have equal length;
// dst may alias a or b (exact overlap only). It works in 8-byte words with
// a byte tail; differential fuzzing against the byte-wise reference lives
// in fuzz_test.go.
func XOR(dst, a, b []byte) []byte {
	n := len(dst)
	a, b = a[:n], b[:n]
	i := 0
	for ; n-i >= 8; i += 8 {
		// Fixed-endian 8-byte loads/stores compile to single moves and are
		// endianness-agnostic under XOR.
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for ; i < n; i++ {
		dst[i] = a[i] ^ b[i]
	}
	return dst
}

// RandBytes returns n cryptographically random bytes.
func RandBytes(n int) ([]byte, error) {
	b := make([]byte, n)
	if _, err := io.ReadFull(rand.Reader, b); err != nil {
		return nil, fmt.Errorf("crypt: rand: %w", err)
	}
	return b, nil
}

// encState is the memoized per-EncKey machinery of Enc/Dec: the expanded
// AES block cipher (safe for concurrent use) and the precomputed HMAC
// states of the derived MAC key, so neither the AES key schedule, the
// macKey derivation, nor the HMAC key schedule is repeated per call.
type encState struct {
	block cipher.Block
	mac   *PRF
}

// encCache memoizes encState per EncKey. Append-only like prfCache: a
// deployment holds two encryption keys (k_s, k_r).
var (
	encMu    sync.RWMutex
	encCache = make(map[EncKey]*encState)
)

// encStateFor returns the cached Enc/Dec state for key.
func encStateFor(key EncKey) (*encState, error) {
	encMu.RLock()
	st := encCache[key]
	encMu.RUnlock()
	if st != nil {
		return st, nil
	}
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypt: new cipher: %w", err)
	}
	st = &encState{block: block, mac: NewPRF(PRFKey(macKey(key)))}
	encMu.Lock()
	if q, ok := encCache[key]; ok {
		st = q
	} else {
		encCache[key] = st
	}
	encMu.Unlock()
	return st, nil
}

// macKey derives the HMAC key for encrypt-then-MAC from the encryption
// key. Called once per EncKey; the result is memoized inside encStateFor.
func macKey(key EncKey) [32]byte {
	h := hmac.New(sha256.New, key[:])
	h.Write([]byte("pisd/mac"))
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// Enc encrypts plaintext under key with semantic security:
// AES-128-CTR with a random IV followed by an HMAC-SHA256 tag over IV and
// ciphertext. Layout: IV || C || TAG.
func Enc(key EncKey, plaintext []byte) ([]byte, error) {
	return EncFrom(key, plaintext, rand.Reader)
}

// EncFrom is Enc drawing the IV from the given randomness source instead
// of crypto/rand. The source must be cryptographically strong (a DRBG
// qualifies); it exists so bulk encryption paths (dynamic index builds)
// can amortize kernel entropy reads.
func EncFrom(key EncKey, plaintext []byte, random io.Reader) ([]byte, error) {
	st, err := encStateFor(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, ivSize+len(plaintext)+MACSize)
	iv := out[:ivSize]
	if _, err := io.ReadFull(random, iv); err != nil {
		return nil, fmt.Errorf("crypt: iv: %w", err)
	}
	cipher.NewCTR(st.block, iv).XORKeyStream(out[ivSize:ivSize+len(plaintext)], plaintext)
	st.mac.tagTo(out[ivSize+len(plaintext):], out[:ivSize+len(plaintext)])
	return out, nil
}

// Dec decrypts a ciphertext produced by Enc, verifying its tag first.
func Dec(key EncKey, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < Overhead {
		return nil, ErrCiphertextTooShort
	}
	st, err := encStateFor(key)
	if err != nil {
		return nil, err
	}
	body := ciphertext[:len(ciphertext)-MACSize]
	tag := ciphertext[len(ciphertext)-MACSize:]
	s := prfScratchPool.Get().(*prfScratch)
	ok := subtle.ConstantTimeCompare(st.mac.tagOf(s, body), tag) == 1
	prfScratchPool.Put(s)
	if !ok {
		mDecAuthFail.Inc()
		return nil, ErrAuthentication
	}
	plaintext := make([]byte, len(body)-ivSize)
	cipher.NewCTR(st.block, body[:ivSize]).XORKeyStream(plaintext, body[ivSize:])
	return plaintext, nil
}

// EncodeUint64 writes v big-endian into a fresh 8-byte slice.
func EncodeUint64(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// DecodeUint64 reads a big-endian uint64 from b, which must be >= 8 bytes.
func DecodeUint64(b []byte) uint64 {
	return binary.BigEndian.Uint64(b[:8])
}

// Key-set serialization: the front end must persist K across restarts —
// the index and every ciphertext at the cloud are useless without it.
// Layout: magic, table count, then raw key bytes. Treat the encoding as
// secret material; it contains every key.

const keySetMagic = 0x504B4559 // "PKEY"

// MarshalBinary encodes the full key set.
func (k *KeySet) MarshalBinary() ([]byte, error) {
	if len(k.Table) == 0 {
		return nil, fmt.Errorf("crypt: cannot encode empty key set")
	}
	out := make([]byte, 0, 8+len(k.Table)*PRFKeySize+2*EncKeySize+PRFKeySize)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], keySetMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(k.Table)))
	out = append(out, hdr[:]...)
	for _, tk := range k.Table {
		out = append(out, tk[:]...)
	}
	out = append(out, k.KS[:]...)
	out = append(out, k.KR[:]...)
	out = append(out, k.KG[:]...)
	return out, nil
}

// UnmarshalBinary decodes a key set produced by MarshalBinary.
func (k *KeySet) UnmarshalBinary(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("crypt: key set encoding too short")
	}
	if binary.BigEndian.Uint32(data) != keySetMagic {
		return fmt.Errorf("crypt: bad key set magic")
	}
	l := int(binary.BigEndian.Uint32(data[4:]))
	if l < 1 || l > 1<<16 {
		return fmt.Errorf("crypt: implausible table count %d", l)
	}
	want := 8 + l*PRFKeySize + 2*EncKeySize + PRFKeySize
	if len(data) != want {
		return fmt.Errorf("crypt: key set encoding %d bytes, want %d", len(data), want)
	}
	k.Table = make([]PRFKey, l)
	off := 8
	for j := range k.Table {
		copy(k.Table[j][:], data[off:])
		off += PRFKeySize
	}
	copy(k.KS[:], data[off:])
	off += EncKeySize
	copy(k.KR[:], data[off:])
	off += EncKeySize
	copy(k.KG[:], data[off:])
	return nil
}
