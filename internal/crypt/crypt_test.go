package crypt

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func testKeys(t *testing.T, l int) *KeySet {
	t.Helper()
	ks, err := GenDeterministic("test-seed", l)
	if err != nil {
		t.Fatalf("GenDeterministic: %v", err)
	}
	return ks
}

func TestGenProducesDistinctKeys(t *testing.T) {
	ks, err := Gen(4)
	if err != nil {
		t.Fatalf("Gen: %v", err)
	}
	if got := ks.NumTables(); got != 4 {
		t.Fatalf("NumTables = %d, want 4", got)
	}
	seen := map[PRFKey]bool{}
	for _, k := range ks.Table {
		if seen[k] {
			t.Fatal("duplicate table key")
		}
		seen[k] = true
	}
	if bytes.Equal(ks.KS[:], ks.KR[:]) {
		t.Fatal("ks and kr identical")
	}
}

func TestGenRejectsBadL(t *testing.T) {
	if _, err := Gen(0); err == nil {
		t.Error("Gen(0) should fail")
	}
	if _, err := GenDeterministic("s", -1); err == nil {
		t.Error("GenDeterministic(-1) should fail")
	}
}

func TestGenDeterministicIsDeterministic(t *testing.T) {
	a, _ := GenDeterministic("seed-a", 3)
	b, _ := GenDeterministic("seed-a", 3)
	c, _ := GenDeterministic("seed-b", 3)
	for j := range a.Table {
		if a.Table[j] != b.Table[j] {
			t.Fatal("same seed should give same keys")
		}
		if a.Table[j] == c.Table[j] {
			t.Fatal("different seeds should give different keys")
		}
	}
}

func TestPosDeterministicAndKeyed(t *testing.T) {
	ks := testKeys(t, 2)
	v := []byte("lsh-value")
	if Pos(ks.Table[0], v) != Pos(ks.Table[0], v) {
		t.Error("Pos is not deterministic")
	}
	if Pos(ks.Table[0], v) == Pos(ks.Table[1], v) {
		t.Error("Pos should differ across keys")
	}
}

func TestPosProbeDomainSeparation(t *testing.T) {
	ks := testKeys(t, 1)
	v := []byte("abc")
	p0 := Pos(ks.Table[0], v)
	seen := map[uint64]bool{p0: true}
	for delta := 1; delta <= 8; delta++ {
		p := PosProbe(ks.Table[0], v, delta)
		if seen[p] {
			t.Fatalf("probe position collision at delta=%d", delta)
		}
		seen[p] = true
	}
}

// Pos must not confuse (v, δ) boundaries: ("ab", δ encoded as part) differs
// from concatenations that would collide under naive encoding.
func TestPosLengthPrefixedEncoding(t *testing.T) {
	ks := testKeys(t, 1)
	a := Pos(ks.Table[0], []byte("ab"), []byte("c"))
	b := Pos(ks.Table[0], []byte("a"), []byte("bc"))
	if a == b {
		t.Error("length-prefix encoding broken: part boundaries collide")
	}
}

func TestMaskProperties(t *testing.T) {
	ks := testKeys(t, 2)
	m1 := Mask(ks.Table[0], 0, 17, 32)
	m2 := Mask(ks.Table[0], 0, 17, 32)
	if !bytes.Equal(m1, m2) {
		t.Error("Mask not deterministic")
	}
	if bytes.Equal(m1, Mask(ks.Table[0], 1, 17, 32)) {
		t.Error("Mask should depend on table")
	}
	if bytes.Equal(m1, Mask(ks.Table[0], 0, 18, 32)) {
		t.Error("Mask should depend on position")
	}
	if bytes.Equal(m1, Mask(ks.Table[1], 0, 17, 32)) {
		t.Error("Mask should depend on key")
	}
	if got := len(Mask(ks.Table[0], 0, 0, 100)); got != 100 {
		t.Errorf("Mask length = %d, want 100", got)
	}
}

func TestStreamGExpansion(t *testing.T) {
	ks := testKeys(t, 1)
	r := []byte("random-value-r")
	a := StreamG(ks.Table[0], r, 64)
	b := StreamG(ks.Table[0], r, 64)
	if !bytes.Equal(a, b) {
		t.Error("StreamG not deterministic")
	}
	// Prefix property: expanding to a longer size keeps the prefix, since
	// re-masking relies on regenerating the same stream.
	long := StreamG(ks.Table[0], r, 128)
	if !bytes.Equal(a, long[:64]) {
		t.Error("StreamG prefix mismatch")
	}
	if bytes.Equal(a, StreamG(ks.Table[0], []byte("other"), 64)) {
		t.Error("StreamG should depend on r")
	}
}

func TestSubKeyDiffers(t *testing.T) {
	ks := testKeys(t, 1)
	a := SubKey(ks.Table[0], "rehash/1")
	b := SubKey(ks.Table[0], "rehash/2")
	if a == b || a == ks.Table[0] {
		t.Error("SubKey must derive distinct keys")
	}
}

func TestXOR(t *testing.T) {
	a := []byte{0xFF, 0x00, 0xAA}
	b := []byte{0x0F, 0xF0, 0xAA}
	dst := make([]byte, 3)
	XOR(dst, a, b)
	want := []byte{0xF0, 0xF0, 0x00}
	if !bytes.Equal(dst, want) {
		t.Errorf("XOR = %x, want %x", dst, want)
	}
	// In-place aliasing.
	XOR(a, a, b)
	if !bytes.Equal(a, want) {
		t.Errorf("in-place XOR = %x, want %x", a, want)
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	ks := testKeys(t, 1)
	for _, size := range []int{0, 1, 15, 16, 17, 1000} {
		pt, err := RandBytes(size)
		if err != nil {
			t.Fatalf("RandBytes: %v", err)
		}
		ct, err := Enc(ks.KS, pt)
		if err != nil {
			t.Fatalf("Enc: %v", err)
		}
		if len(ct) != size+Overhead {
			t.Errorf("ciphertext size %d, want %d", len(ct), size+Overhead)
		}
		got, err := Dec(ks.KS, ct)
		if err != nil {
			t.Fatalf("Dec: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip mismatch at size %d", size)
		}
	}
}

func TestEncIsProbabilistic(t *testing.T) {
	ks := testKeys(t, 1)
	pt := []byte("same message")
	c1, _ := Enc(ks.KS, pt)
	c2, _ := Enc(ks.KS, pt)
	if bytes.Equal(c1, c2) {
		t.Error("two encryptions of the same message are identical (no semantic security)")
	}
}

func TestDecRejectsTampering(t *testing.T) {
	ks := testKeys(t, 1)
	ct, _ := Enc(ks.KS, []byte("payload"))
	for _, idx := range []int{0, len(ct) / 2, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[idx] ^= 0x01
		if _, err := Dec(ks.KS, bad); !errors.Is(err, ErrAuthentication) {
			t.Errorf("tamper at %d: err = %v, want ErrAuthentication", idx, err)
		}
	}
}

func TestDecRejectsWrongKey(t *testing.T) {
	ks := testKeys(t, 1)
	ct, _ := Enc(ks.KS, []byte("payload"))
	if _, err := Dec(ks.KR, ct); !errors.Is(err, ErrAuthentication) {
		t.Errorf("wrong key: err = %v, want ErrAuthentication", err)
	}
}

func TestDecRejectsTruncated(t *testing.T) {
	ks := testKeys(t, 1)
	if _, err := Dec(ks.KS, make([]byte, Overhead-1)); !errors.Is(err, ErrCiphertextTooShort) {
		t.Errorf("err = %v, want ErrCiphertextTooShort", err)
	}
}

func TestUint64Codec(t *testing.T) {
	for _, v := range []uint64{0, 1, math.MaxUint64, 1 << 40} {
		if got := DecodeUint64(EncodeUint64(v)); got != v {
			t.Errorf("uint64 round trip %d -> %d", v, got)
		}
	}
}

func TestProfileCodecRoundTrip(t *testing.T) {
	s := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1)}
	got, err := DecodeProfile(EncodeProfile(s))
	if err != nil {
		t.Fatalf("DecodeProfile: %v", err)
	}
	if len(got) != len(s) {
		t.Fatalf("dim %d, want %d", len(got), len(s))
	}
	for i := range s {
		if got[i] != s[i] {
			t.Errorf("entry %d: %v != %v", i, got[i], s[i])
		}
	}
}

func TestDecodeProfileRejectsMalformed(t *testing.T) {
	if _, err := DecodeProfile([]byte{1, 2}); err == nil {
		t.Error("short header accepted")
	}
	enc := EncodeProfile([]float64{1, 2, 3})
	if _, err := DecodeProfile(enc[:len(enc)-1]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestEncDecProfile(t *testing.T) {
	ks := testKeys(t, 1)
	s := []float64{0.25, 0.5, 0.25}
	ct, err := EncProfile(ks.KS, s)
	if err != nil {
		t.Fatalf("EncProfile: %v", err)
	}
	got, err := DecProfile(ks.KS, ct)
	if err != nil {
		t.Fatalf("DecProfile: %v", err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("profile round trip mismatch: %v vs %v", got, s)
		}
	}
	if _, err := DecProfile(ks.KR, ct); err == nil {
		t.Error("DecProfile with wrong key should fail")
	}
}

// Property: Enc/Dec round-trips arbitrary payloads.
func TestEncDecRoundTripProperty(t *testing.T) {
	ks := testKeys(t, 1)
	f := func(pt []byte) bool {
		ct, err := Enc(ks.KS, pt)
		if err != nil {
			return false
		}
		got, err := Dec(ks.KS, ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: XOR masking is an involution — (m ^ x) ^ m == x. This is the
// correctness core of bucket encryption B = r ⊕ L.
func TestMaskInvolutionProperty(t *testing.T) {
	ks := testKeys(t, 1)
	f := func(payload [32]byte, table uint8, pos uint16) bool {
		m := Mask(ks.Table[0], int(table), uint64(pos), 32)
		enc := make([]byte, 32)
		XOR(enc, m, payload[:])
		dec := make([]byte, 32)
		XOR(dec, m, enc)
		return bytes.Equal(dec, payload[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: profile codec round-trips arbitrary finite vectors.
func TestProfileCodecProperty(t *testing.T) {
	f := func(s []float64) bool {
		got, err := DecodeProfile(EncodeProfile(s))
		if err != nil || len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] && !(math.IsNaN(got[i]) && math.IsNaN(s[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPos(b *testing.B) {
	ks, _ := GenDeterministic("bench", 1)
	v := []byte("0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pos(ks.Table[0], v)
	}
}

func BenchmarkEncProfile1000(b *testing.B) {
	ks, _ := GenDeterministic("bench", 1)
	s := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncProfile(ks.KS, s); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCompactProfileCodec(t *testing.T) {
	ks := testKeys(t, 1)
	s := []float64{0.25, 0.5, 0.125, 0}
	// Plain codec auto-detects both encodings.
	got, err := DecodeProfile(EncodeProfileCompact(s))
	if err != nil {
		t.Fatalf("DecodeProfile(compact): %v", err)
	}
	for i := range s {
		if got[i] != s[i] { // exact dyadic values survive float32
			t.Fatalf("compact round trip %v vs %v", got, s)
		}
	}
	// Compact ciphertexts are about half the size.
	full, err := EncProfile(ks.KS, make([]float64, 1000))
	if err != nil {
		t.Fatal(err)
	}
	compact, err := EncProfileCompact(ks.KS, make([]float64, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(compact) >= len(full) {
		t.Errorf("compact %d >= full %d", len(compact), len(full))
	}
	if len(compact) != 4+4*1000+Overhead {
		t.Errorf("compact size %d", len(compact))
	}
	// Decryption path handles both.
	if _, err := DecProfile(ks.KS, compact); err != nil {
		t.Errorf("DecProfile(compact): %v", err)
	}
	// Truncation detected.
	enc := EncodeProfileCompact(s)
	if _, err := DecodeProfile(enc[:len(enc)-1]); err == nil {
		t.Error("truncated compact profile accepted")
	}
}

func TestCompactProfilePrecision(t *testing.T) {
	// Unit-norm profile entries survive float32 with relative error
	// far below any ranking-visible threshold.
	s := make([]float64, 100)
	for i := range s {
		s[i] = 1.0 / math.Sqrt(100)
	}
	got, err := DecodeProfile(EncodeProfileCompact(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if math.Abs(got[i]-s[i]) > 1e-7 {
			t.Fatalf("entry %d error %v", i, math.Abs(got[i]-s[i]))
		}
	}
}

func TestKeySetCodecRoundTrip(t *testing.T) {
	ks := testKeys(t, 6)
	blob, err := ks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got KeySet
	if err := got.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if got.NumTables() != 6 {
		t.Fatalf("tables = %d", got.NumTables())
	}
	for j := range ks.Table {
		if got.Table[j] != ks.Table[j] {
			t.Fatal("table key changed")
		}
	}
	if got.KS != ks.KS || got.KR != ks.KR || got.KG != ks.KG {
		t.Fatal("scalar keys changed")
	}
	// Restored keys decrypt ciphertexts from the original.
	ct, err := Enc(ks.KS, []byte("persist me"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dec(got.KS, ct); err != nil {
		t.Errorf("restored key failed to decrypt: %v", err)
	}
}

func TestKeySetCodecRejectsMalformed(t *testing.T) {
	var ks KeySet
	if err := ks.UnmarshalBinary([]byte{1}); err == nil {
		t.Error("short blob accepted")
	}
	empty := &KeySet{}
	if _, err := empty.MarshalBinary(); err == nil {
		t.Error("empty key set encoded")
	}
	good := testKeys(t, 2)
	blob, _ := good.MarshalBinary()
	blob[0] ^= 1
	if err := ks.UnmarshalBinary(blob); err == nil {
		t.Error("bad magic accepted")
	}
	blob[0] ^= 1
	if err := ks.UnmarshalBinary(blob[:len(blob)-4]); err == nil {
		t.Error("truncated blob accepted")
	}
}
