// Precomputed-PRF fast path. Every PRF of the paper (f, g, G) is
// HMAC-SHA256, and the generic construction pays two SHA-256 key-schedule
// compressions (absorbing K⊕ipad and K⊕opad) plus several allocations on
// every call. The PRF type hoists that per-key work into construction: it
// snapshots the two keyed compression states once via the digests' binary
// marshaling, and every subsequent call restores a snapshot into a pooled
// scratch digest — no hmac.New, no key schedule, no per-call allocation.
//
// Output equivalence with the generic path (same framing, same bytes) is
// enforced by differential tests in fast_test.go; the core package's
// trapdoors and indexes are byte-identical whichever path produced them.
package crypt

import (
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash"
	"sync"
	"sync/atomic"
)

// shaDigest is the capability set the fast path needs from crypto/sha256
// digests: hashing plus snapshot/restore of the compression state.
type shaDigest interface {
	hash.Hash
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// PRF is an HMAC-SHA256 instance bound to one PRFKey with the per-key work
// precomputed. It is immutable after construction and safe for concurrent
// use: per-call mutable state lives in a pooled scratch.
type PRF struct {
	inner []byte // sha256 state after absorbing K ⊕ ipad
	outer []byte // sha256 state after absorbing K ⊕ opad
}

// NewPRF precomputes the keyed HMAC states for key. Callers that hold a
// KeySet should prefer KeySet.TablePRF / KeySet.GPRF, which cache
// instances per key.
func NewPRF(key PRFKey) *PRF {
	var pad [sha256.BlockSize]byte
	for i := range pad {
		pad[i] = 0x36
	}
	for i, b := range key {
		pad[i] ^= b
	}
	in := sha256.New().(shaDigest)
	in.Write(pad[:])
	inner, err := in.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("crypt: marshal sha256 state: %v", err))
	}
	for i := range pad {
		pad[i] ^= 0x36 ^ 0x5c
	}
	out := sha256.New().(shaDigest)
	out.Write(pad[:])
	outer, err := out.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("crypt: marshal sha256 state: %v", err))
	}
	return &PRF{inner: inner, outer: outer}
}

// prfScratch holds the reusable per-call state of a PRF computation. All
// intermediate buffers live here so hot-path calls stay allocation-free.
type prfScratch struct {
	in, out shaDigest
	hint    uint32            // striped-counter cell hint, fixed per scratch
	isum    [sha256.Size]byte // inner digest
	block   [sha256.Size]byte // final tag / current expansion block
	msg     [64]byte          // staging area for framed messages
}

// scratchSeq hands each pooled scratch a distinct striped-counter hint at
// construction. Scratches are effectively per-worker, so op counts from
// concurrent goroutines land on different counter cells.
var scratchSeq atomic.Uint32

var prfScratchPool = sync.Pool{New: func() interface{} {
	return &prfScratch{
		in:   sha256.New().(shaDigest),
		out:  sha256.New().(shaDigest),
		hint: scratchSeq.Add(1),
	}
}}

// load resets the scratch's inner digest to the keyed state.
func (p *PRF) load(s *prfScratch) {
	if err := s.in.UnmarshalBinary(p.inner); err != nil {
		panic(fmt.Sprintf("crypt: restore sha256 state: %v", err))
	}
}

// finish completes the HMAC over whatever the inner digest has absorbed;
// the tag is left in s.block.
func (p *PRF) finish(s *prfScratch) {
	s.in.Sum(s.isum[:0])
	if err := s.out.UnmarshalBinary(p.outer); err != nil {
		panic(fmt.Sprintf("crypt: restore sha256 state: %v", err))
	}
	s.out.Write(s.isum[:])
	s.out.Sum(s.block[:0])
}

// sum computes HMAC(key, label || len-prefixed parts...) into dst — the
// exact framing of the package-level prf helper.
func (p *PRF) sum(dst *[32]byte, label byte, parts ...[]byte) {
	s := prfScratchPool.Get().(*prfScratch)
	p.load(s)
	s.msg[0] = label
	s.in.Write(s.msg[:1])
	for _, part := range parts {
		binary.BigEndian.PutUint64(s.msg[1:9], uint64(len(part)))
		s.in.Write(s.msg[1:9])
		s.in.Write(part)
	}
	p.finish(s)
	copy(dst[:], s.block[:])
	prfScratchPool.Put(s)
}

// Pos8 is the position PRF f(k, v) over an 8-byte big-endian value:
// identical to Pos(key, EncodeUint64(v)) without any allocation.
func (p *PRF) Pos8(v uint64) uint64 {
	s := prfScratchPool.Get().(*prfScratch)
	m := s.msg[:17]
	m[0] = labelPos
	binary.BigEndian.PutUint64(m[1:9], 8)
	binary.BigEndian.PutUint64(m[9:17], v)
	p.load(s)
	s.in.Write(m)
	p.finish(s)
	out := binary.BigEndian.Uint64(s.block[:8])
	mPosOps.Add(s.hint, 1)
	prfScratchPool.Put(s)
	return out
}

// Pos8Probe is the δ-th probe position f(k, v ‖ δ) over an 8-byte value:
// identical to PosProbe(key, EncodeUint64(v), delta) without allocation.
func (p *PRF) Pos8Probe(v uint64, delta int) uint64 {
	s := prfScratchPool.Get().(*prfScratch)
	m := s.msg[:29]
	m[0] = labelPos
	binary.BigEndian.PutUint64(m[1:9], 8)
	binary.BigEndian.PutUint64(m[9:17], v)
	binary.BigEndian.PutUint64(m[17:25], 4)
	binary.BigEndian.PutUint32(m[25:29], uint32(delta))
	p.load(s)
	s.in.Write(m)
	p.finish(s)
	out := binary.BigEndian.Uint64(s.block[:8])
	mPosOps.Add(s.hint, 1)
	prfScratchPool.Put(s)
	return out
}

// MaskInto writes g(k, table ‖ pos) expanded to len(dst) bytes into dst:
// identical to Mask(key, table, pos, len(dst)) without allocation.
func (p *PRF) MaskInto(dst []byte, table int, pos uint64) {
	s := prfScratchPool.Get().(*prfScratch)
	hdr := s.msg[40:56]
	binary.BigEndian.PutUint64(hdr[:8], uint64(table))
	binary.BigEndian.PutUint64(hdr[8:], pos)
	p.expandWith(s, dst, labelMask, hdr)
	mMaskOps.Add(s.hint, 1)
	prfScratchPool.Put(s)
}

// StreamGInto writes G(r) expanded to len(dst) bytes into dst: identical
// to StreamG(key, r, len(dst)) without allocation.
func (p *PRF) StreamGInto(dst, r []byte) {
	s := prfScratchPool.Get().(*prfScratch)
	p.expandWith(s, dst, labelG, r)
	mMaskOps.Add(s.hint, 1)
	prfScratchPool.Put(s)
}

// expandWith fills dst with the counter-mode expansion
// HMAC(key, label || ctr || seed) — the framing of the expand helper. seed
// must not alias s.msg[:21].
func (p *PRF) expandWith(s *prfScratch, dst []byte, label byte, seed []byte) {
	m := s.msg[:21]
	m[0] = label
	binary.BigEndian.PutUint64(m[1:9], 4)
	binary.BigEndian.PutUint64(m[13:21], uint64(len(seed)))
	for i := uint32(0); len(dst) > 0; i++ {
		binary.BigEndian.PutUint32(m[9:13], i)
		p.load(s)
		s.in.Write(m)
		s.in.Write(seed)
		p.finish(s)
		n := copy(dst, s.block[:])
		dst = dst[n:]
	}
}

// tagTo computes the raw (unframed) HMAC over body into dst[:MACSize],
// the encrypt-then-MAC tag of Enc.
func (p *PRF) tagTo(dst, body []byte) {
	s := prfScratchPool.Get().(*prfScratch)
	p.load(s)
	s.in.Write(body)
	p.finish(s)
	copy(dst[:MACSize], s.block[:])
	mMacOps.Add(s.hint, 1)
	prfScratchPool.Put(s)
}

// tagOf computes the raw HMAC over body and returns it in the scratch; the
// caller must compare and return the scratch via prfScratchPool. Used by
// Dec to verify without exposing intermediate buffers.
func (p *PRF) tagOf(s *prfScratch, body []byte) []byte {
	p.load(s)
	s.in.Write(body)
	p.finish(s)
	mMacOps.Add(s.hint, 1)
	return s.block[:]
}

// prfCache memoizes precomputed PRF instances per key. It is append-only:
// a deployment touches a handful of keys (l table keys, k_G, and the two
// derived MAC keys), so entries are never evicted. The cached states are
// key material and exactly as sensitive as the KeySet they derive from.
var (
	prfMu    sync.RWMutex
	prfCache = make(map[PRFKey]*PRF)
)

// ForKey returns the cached precomputed PRF for key, building it on first
// use. The typed map avoids boxing the 32-byte key, so a cache hit does
// not allocate.
func ForKey(key PRFKey) *PRF {
	prfMu.RLock()
	p := prfCache[key]
	prfMu.RUnlock()
	if p != nil {
		return p
	}
	p = NewPRF(key)
	prfMu.Lock()
	if q, ok := prfCache[key]; ok {
		p = q
	} else {
		prfCache[key] = p
	}
	prfMu.Unlock()
	return p
}

// TablePRF returns the precomputed PRF for table j's key, the fast-path
// handle for position and mask derivation in build and trapdoor code.
func (k *KeySet) TablePRF(j int) *PRF { return ForKey(k.Table[j]) }

// GPRF returns the precomputed PRF for k_G, the dynamic scheme's mask
// expander.
func (k *KeySet) GPRF() *PRF { return ForKey(k.KG) }
