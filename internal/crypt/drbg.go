package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"fmt"
	"io"
)

// DRBGSeedSize is the byte length of a DRBG seed (an AES-256 key).
const DRBGSeedSize = 32

// DRBG is a fast deterministic random bit generator: the AES-256-CTR
// keystream under a seed key, starting from a zero counter. Seeded from
// crypto/rand it is a CSPRNG whose output is computationally
// indistinguishable from uniform (AES as a PRP), which is the only
// property the secure index's padding needs — see DESIGN.md §10 for why
// substituting it for crypto/rand leaves the Theorem 1 leakage profile
// unchanged. It exists because index construction pads every empty bucket:
// megabytes of randomness per table that are wasteful to draw from the
// kernel one syscall-buffer at a time.
//
// A DRBG is NOT safe for concurrent use; give each goroutine its own.
type DRBG struct {
	stream cipher.Stream
}

// NewDRBG returns a generator keyed with a fresh 32-byte seed from
// crypto/rand. This is the production constructor: unpredictable output,
// one kernel read total.
func NewDRBG() (*DRBG, error) {
	var seed [DRBGSeedSize]byte
	if _, err := io.ReadFull(rand.Reader, seed[:]); err != nil {
		return nil, fmt.Errorf("crypt: drbg seed: %w", err)
	}
	return NewSeededDRBG(seed), nil
}

// NewSeededDRBG returns a generator over the given seed. Deterministic;
// for tests and differential checks — production padding must use NewDRBG.
func NewSeededDRBG(seed [DRBGSeedSize]byte) *DRBG {
	block, err := aes.NewCipher(seed[:])
	if err != nil {
		// aes.NewCipher only fails on bad key length; seed is fixed-size.
		panic(fmt.Sprintf("crypt: drbg cipher: %v", err))
	}
	var iv [aes.BlockSize]byte
	return &DRBG{stream: cipher.NewCTR(block, iv[:])}
}

// Fill overwrites p with the next len(p) keystream bytes.
func (d *DRBG) Fill(p []byte) {
	clear(p)
	d.stream.XORKeyStream(p, p)
}

// Read implements io.Reader over the keystream; it always fills p and
// never fails, so the DRBG can stand in for crypto/rand.Reader.
func (d *DRBG) Read(p []byte) (int, error) {
	d.Fill(p)
	return len(p), nil
}
