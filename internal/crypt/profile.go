package crypt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// compactFlag marks a profile encoded with float32 entries. Profile
// vectors are unit-norm histograms; single precision loses nothing the
// ranking can observe and halves S* to the paper's ~4 KB per profile.
const compactFlag = 1 << 31

// EncodeProfile serializes an image profile vector to a fixed-width binary
// form: a uint32 dimension header followed by IEEE-754 big-endian entries.
// This is the plaintext fed to Enc(ks, ·) to produce S*.
func EncodeProfile(s []float64) []byte {
	out := make([]byte, 4+8*len(s))
	binary.BigEndian.PutUint32(out, uint32(len(s)))
	for i, x := range s {
		binary.BigEndian.PutUint64(out[4+8*i:], math.Float64bits(x))
	}
	return out
}

// EncodeProfileCompact serializes a profile with float32 entries: the
// header carries the dimension with the compact flag set.
func EncodeProfileCompact(s []float64) []byte {
	out := make([]byte, 4+4*len(s))
	binary.BigEndian.PutUint32(out, uint32(len(s))|compactFlag)
	for i, x := range s {
		binary.BigEndian.PutUint32(out[4+4*i:], math.Float32bits(float32(x)))
	}
	return out
}

// DecodeProfile parses a profile encoded by EncodeProfile or
// EncodeProfileCompact (detected by the header flag).
func DecodeProfile(b []byte) ([]float64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("crypt: profile encoding too short (%d bytes)", len(b))
	}
	hdr := binary.BigEndian.Uint32(b)
	if hdr&compactFlag != 0 {
		dim := int(hdr &^ compactFlag)
		if len(b) != 4+4*dim {
			return nil, fmt.Errorf("crypt: compact profile length %d does not match dim %d", len(b), dim)
		}
		s := make([]float64, dim)
		for i := range s {
			s[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(b[4+4*i:])))
		}
		return s, nil
	}
	dim := int(hdr)
	if len(b) != 4+8*dim {
		return nil, fmt.Errorf("crypt: profile encoding length %d does not match dim %d", len(b), dim)
	}
	s := make([]float64, dim)
	for i := range s {
		s[i] = math.Float64frombits(binary.BigEndian.Uint64(b[4+8*i:]))
	}
	return s, nil
}

// EncProfile encrypts an image profile vector: S* = Enc(ks, encode(S)).
func EncProfile(key EncKey, s []float64) ([]byte, error) {
	return Enc(key, EncodeProfile(s))
}

// EncProfileCompact encrypts the float32 encoding of the profile,
// producing the paper-sized ~4 KB ciphertext for 1000-dim profiles.
func EncProfileCompact(key EncKey, s []float64) ([]byte, error) {
	return Enc(key, EncodeProfileCompact(s))
}

// DecProfile decrypts and decodes a ciphertext produced by EncProfile.
func DecProfile(key EncKey, ct []byte) ([]float64, error) {
	pt, err := Dec(key, ct)
	if err != nil {
		return nil, err
	}
	return DecodeProfile(pt)
}
