package crypt

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"testing"
)

// xorRef is the obvious byte-at-a-time reference the word-wise XOR must
// match on every length and alignment.
func xorRef(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// FuzzXOR differentially checks the word-wise XOR against the byte loop,
// including odd lengths, mismatched input lengths, and the supported
// aliasing mode dst == a.
func FuzzXOR(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1}, []byte{2, 3})
	f.Add(bytes.Repeat([]byte{0xa5}, 31), bytes.Repeat([]byte{0x5a}, 33))
	f.Add(bytes.Repeat([]byte{7}, 64), bytes.Repeat([]byte{9}, 64))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		want := xorRef(a, b)
		dst := make([]byte, len(want))
		XOR(dst, a, b)
		if !bytes.Equal(dst, want) {
			t.Errorf("XOR diverges from reference: got %x want %x", dst, want)
		}
		// Aliased form: dst and a are the same slice.
		aa := append([]byte(nil), a...)
		if len(b) >= len(aa) {
			XOR(aa, aa, b)
			if !bytes.Equal(aa, xorRef(a, b)) {
				t.Errorf("aliased XOR diverges: got %x want %x", aa, xorRef(a, b))
			}
		}
	})
}

// FuzzDRBG checks determinism per seed and divergence across seeds: the
// padding stream must be a pure function of the seed and two distinct
// seeds must not collide (an AES-CTR keystream collision would mean a
// broken implementation, not bad luck).
func FuzzDRBG(f *testing.F) {
	f.Add([]byte("seed-a"), []byte("seed-b"), uint16(64))
	f.Add([]byte{}, []byte{1}, uint16(1))
	f.Add([]byte{0xff}, []byte{0xff, 0}, uint16(333))
	f.Fuzz(func(t *testing.T, sa, sb []byte, n uint16) {
		if n == 0 || n > 4096 {
			return
		}
		var seedA, seedB [DRBGSeedSize]byte
		copy(seedA[:], sa)
		copy(seedB[:], sb)
		outA := make([]byte, n)
		NewSeededDRBG(seedA).Fill(outA)
		outA2 := make([]byte, n)
		NewSeededDRBG(seedA).Fill(outA2)
		if !bytes.Equal(outA, outA2) {
			t.Error("same seed produced different streams")
		}
		if seedA != seedB && n >= 16 {
			outB := make([]byte, n)
			NewSeededDRBG(seedB).Fill(outB)
			if bytes.Equal(outA, outB) {
				t.Errorf("distinct seeds produced identical %d-byte streams", n)
			}
		}
		// Filling a dirty buffer must overwrite, not XOR into, the
		// previous content.
		dirty := bytes.Repeat([]byte{0xde}, int(n))
		NewSeededDRBG(seedA).Fill(dirty)
		if !bytes.Equal(dirty, outA) {
			t.Error("Fill result depends on prior buffer content")
		}
	})
}

// FuzzPRFReference pins the precomputed HMAC state machinery to the
// standard library: for arbitrary keys and messages the fast path's raw
// tag must equal crypto/hmac.
func FuzzPRFReference(f *testing.F) {
	f.Add([]byte("key"), []byte("message"))
	f.Add([]byte{}, []byte{})
	f.Add(bytes.Repeat([]byte{0x42}, 32), bytes.Repeat([]byte{7}, 200))
	f.Fuzz(func(t *testing.T, keyBytes, msg []byte) {
		var key PRFKey
		copy(key[:], keyBytes)
		var got [32]byte
		NewPRF(key).tagTo(got[:], msg)
		mac := hmac.New(sha256.New, key[:])
		mac.Write(msg)
		want := mac.Sum(nil)
		if !bytes.Equal(got[:], want) {
			t.Errorf("fast HMAC diverges from crypto/hmac: got %x want %x", got, want)
		}
	})
}
