package crypt

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"math"
	"testing"

	"pisd/internal/obs"
)

// xorRef is the obvious byte-at-a-time reference the word-wise XOR must
// match on every length and alignment.
func xorRef(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// FuzzXOR differentially checks the word-wise XOR against the byte loop,
// including odd lengths, mismatched input lengths, and the supported
// aliasing mode dst == a.
func FuzzXOR(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1}, []byte{2, 3})
	f.Add(bytes.Repeat([]byte{0xa5}, 31), bytes.Repeat([]byte{0x5a}, 33))
	f.Add(bytes.Repeat([]byte{7}, 64), bytes.Repeat([]byte{9}, 64))
	f.Fuzz(func(t *testing.T, a, b []byte) {
		want := xorRef(a, b)
		dst := make([]byte, len(want))
		XOR(dst, a, b)
		if !bytes.Equal(dst, want) {
			t.Errorf("XOR diverges from reference: got %x want %x", dst, want)
		}
		// Aliased form: dst and a are the same slice.
		aa := append([]byte(nil), a...)
		if len(b) >= len(aa) {
			XOR(aa, aa, b)
			if !bytes.Equal(aa, xorRef(a, b)) {
				t.Errorf("aliased XOR diverges: got %x want %x", aa, xorRef(a, b))
			}
		}
	})
}

// FuzzDRBG checks determinism per seed and divergence across seeds: the
// padding stream must be a pure function of the seed and two distinct
// seeds must not collide (an AES-CTR keystream collision would mean a
// broken implementation, not bad luck).
func FuzzDRBG(f *testing.F) {
	f.Add([]byte("seed-a"), []byte("seed-b"), uint16(64))
	f.Add([]byte{}, []byte{1}, uint16(1))
	f.Add([]byte{0xff}, []byte{0xff, 0}, uint16(333))
	f.Fuzz(func(t *testing.T, sa, sb []byte, n uint16) {
		if n == 0 || n > 4096 {
			return
		}
		var seedA, seedB [DRBGSeedSize]byte
		copy(seedA[:], sa)
		copy(seedB[:], sb)
		outA := make([]byte, n)
		NewSeededDRBG(seedA).Fill(outA)
		outA2 := make([]byte, n)
		NewSeededDRBG(seedA).Fill(outA2)
		if !bytes.Equal(outA, outA2) {
			t.Error("same seed produced different streams")
		}
		if seedA != seedB && n >= 16 {
			outB := make([]byte, n)
			NewSeededDRBG(seedB).Fill(outB)
			if bytes.Equal(outA, outB) {
				t.Errorf("distinct seeds produced identical %d-byte streams", n)
			}
		}
		// Filling a dirty buffer must overwrite, not XOR into, the
		// previous content.
		dirty := bytes.Repeat([]byte{0xde}, int(n))
		NewSeededDRBG(seedA).Fill(dirty)
		if !bytes.Equal(dirty, outA) {
			t.Error("Fill result depends on prior buffer content")
		}
	})
}

// FuzzEncDecRoundTrip is the authenticated-encryption contract under fuzz:
// Enc then Dec recovers the plaintext exactly, any single-byte tampering of
// the ciphertext (IV, body or tag) fails with ErrAuthentication, and
// truncation below the fixed overhead fails with ErrCiphertextTooShort.
func FuzzEncDecRoundTrip(f *testing.F) {
	f.Add([]byte("k"), []byte("hello"), uint16(0))
	f.Add([]byte{}, []byte{}, uint16(3))
	f.Add(bytes.Repeat([]byte{0x11}, 16), bytes.Repeat([]byte{0xee}, 300), uint16(150))
	f.Fuzz(func(t *testing.T, keyBytes, plaintext []byte, tamperAt uint16) {
		var key EncKey
		copy(key[:], keyBytes)
		ct, err := Enc(key, plaintext)
		if err != nil {
			t.Fatalf("Enc: %v", err)
		}
		if len(ct) != len(plaintext)+Overhead {
			t.Fatalf("ciphertext %d bytes, want %d", len(ct), len(plaintext)+Overhead)
		}
		pt, err := Dec(key, ct)
		if err != nil {
			t.Fatalf("Dec of fresh ciphertext: %v", err)
		}
		if !bytes.Equal(pt, plaintext) {
			t.Fatalf("round trip diverged: got %x want %x", pt, plaintext)
		}
		// Flip one bit somewhere in the ciphertext: MAC must catch it no
		// matter whether it lands in the IV, the body or the tag.
		tampered := append([]byte(nil), ct...)
		tampered[int(tamperAt)%len(ct)] ^= 1
		if _, err := Dec(key, tampered); !errors.Is(err, ErrAuthentication) {
			t.Fatalf("tampered ciphertext: err = %v, want ErrAuthentication", err)
		}
		// A different key must also fail authentication, not yield garbage.
		var other EncKey
		copy(other[:], keyBytes)
		other[0] ^= 0xff
		if _, err := Dec(other, ct); !errors.Is(err, ErrAuthentication) {
			t.Fatalf("wrong-key Dec: err = %v, want ErrAuthentication", err)
		}
		if _, err := Dec(key, ct[:Overhead-1]); !errors.Is(err, ErrCiphertextTooShort) {
			t.Fatalf("truncated ciphertext: err = %v, want ErrCiphertextTooShort", err)
		}
	})
}

// FuzzProfileCodecRoundTrip checks both profile encodings against their
// decoder and the encrypted form against Dec∘Decode: every finite vector
// round-trips exactly (full precision) or to float32 (compact).
func FuzzProfileCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, true)
	f.Add(bytes.Repeat([]byte{0x3f}, 80), false)
	f.Fuzz(func(t *testing.T, raw []byte, compact bool) {
		// Interpret the fuzz bytes as a vector of float64s in [0, 1).
		s := make([]float64, len(raw)/8)
		for i := range s {
			s[i] = float64(uint64(raw[8*i])|uint64(raw[8*i+1])<<8) / 65536
		}
		var enc []byte
		if compact {
			enc = EncodeProfileCompact(s)
		} else {
			enc = EncodeProfile(s)
		}
		got, err := DecodeProfile(enc)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if len(got) != len(s) {
			t.Fatalf("dim changed: %d -> %d", len(s), len(got))
		}
		for i := range s {
			want := s[i]
			if compact {
				want = float64(float32(s[i]))
			}
			if got[i] != want {
				t.Fatalf("entry %d: got %v want %v", i, got[i], want)
			}
		}
		// Encrypted form: EncProfile → DecProfile is the same round trip.
		var key EncKey
		copy(key[:], raw)
		ct, err := EncProfile(key, s)
		if err != nil {
			t.Fatalf("EncProfile: %v", err)
		}
		back, err := DecProfile(key, ct)
		if err != nil {
			t.Fatalf("DecProfile: %v", err)
		}
		for i := range s {
			if back[i] != s[i] && !(math.IsNaN(back[i]) && math.IsNaN(s[i])) {
				t.Fatalf("encrypted round trip entry %d: got %v want %v", i, back[i], s[i])
			}
		}
	})
}

// FuzzDecodeProfile feeds the profile decoder raw attacker bytes: it must
// never panic, anything it accepts must keep its length/dimension contract,
// and re-encoding the result must decode back to the same vector. (Strict
// byte-identity is too strong a property: a fuzzed compact encoding can
// carry a signaling-NaN float32 payload, which the float64 round trip
// legitimately quiets.)
func FuzzDecodeProfile(f *testing.F) {
	f.Add(EncodeProfile([]float64{0.25, 0.5}))
	f.Add(EncodeProfileCompact([]float64{1, 2, 3}))
	f.Add([]byte{})
	f.Add([]byte{0x80, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeProfile(data)
		if err != nil {
			return
		}
		var re []byte
		if data[0]&0x80 != 0 { // compactFlag lives in the header's top bit
			re = EncodeProfileCompact(s)
		} else {
			re = EncodeProfile(s)
		}
		if len(re) != len(data) {
			t.Fatalf("re-encode length %d != %d", len(re), len(data))
		}
		back, err := DecodeProfile(re)
		if err != nil {
			t.Fatalf("re-encoded profile rejected: %v", err)
		}
		if len(back) != len(s) {
			t.Fatalf("dimension changed on re-encode: %d -> %d", len(s), len(back))
		}
		for i := range s {
			if back[i] != s[i] && !(math.IsNaN(back[i]) && math.IsNaN(s[i])) {
				t.Fatalf("entry %d not idempotent: %v -> %v", i, s[i], back[i])
			}
		}
	})
}

// TestDecAuthFailCounter pins the observability hook on the Dec reject
// path: a tampered ciphertext must bump crypt.dec_auth_fail in the
// registry the package is pointed at.
func TestDecAuthFailCounter(t *testing.T) {
	reg := obs.NewRegistry()
	SetRegistry(reg)
	defer SetRegistry(obs.Default)

	var key EncKey
	ct, err := Enc(key, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	ct[len(ct)-1] ^= 1
	if _, err := Dec(key, ct); !errors.Is(err, ErrAuthentication) {
		t.Fatalf("Dec: %v", err)
	}
	if got := reg.Snapshot().Counters["crypt.dec_auth_fail"]; got != 1 {
		t.Fatalf("crypt.dec_auth_fail = %d, want 1", got)
	}
}

// FuzzPRFReference pins the precomputed HMAC state machinery to the
// standard library: for arbitrary keys and messages the fast path's raw
// tag must equal crypto/hmac.
func FuzzPRFReference(f *testing.F) {
	f.Add([]byte("key"), []byte("message"))
	f.Add([]byte{}, []byte{})
	f.Add(bytes.Repeat([]byte{0x42}, 32), bytes.Repeat([]byte{7}, 200))
	f.Fuzz(func(t *testing.T, keyBytes, msg []byte) {
		var key PRFKey
		copy(key[:], keyBytes)
		var got [32]byte
		NewPRF(key).tagTo(got[:], msg)
		mac := hmac.New(sha256.New, key[:])
		mac.Write(msg)
		want := mac.Sum(nil)
		if !bytes.Equal(got[:], want) {
			t.Errorf("fast HMAC diverges from crypto/hmac: got %x want %x", got, want)
		}
	})
}
