// Package cuckoo implements the plaintext locality-aware cuckoo index the
// paper builds its secure design on (the NEST index of Hua, Xiao & Liu,
// INFOCOM'13 — reference [22] of the paper). It combines l LSH hash tables
// with cuckoo-driven insertion: every item has one primary bucket per table
// plus d random probe buckets, and colliding items are kicked between
// tables to balance load.
//
// The package serves two roles in this repository:
//
//  1. it is a faithful substrate for the secure index in internal/core,
//     which runs the same insertion logic with PRF-permuted positions; and
//  2. it is a correctness oracle: on identical inputs the secure index must
//     retrieve the same candidate sets this index does.
package cuckoo

import (
	"errors"
	"fmt"
	"math/rand"

	"pisd/internal/lsh"
)

var (
	// ErrFull is returned when an insertion exceeds MaxLoop kick-aways;
	// the caller should rehash with fresh LSH parameters and rebuild.
	ErrFull = errors.New("cuckoo: index full, rehash required")
	// ErrDuplicateID is returned when an identifier is inserted twice.
	ErrDuplicateID = errors.New("cuckoo: duplicate identifier")
	// ErrNotFound is returned when deleting an absent identifier.
	ErrNotFound = errors.New("cuckoo: identifier not found")
)

// Params configures an index.
type Params struct {
	// Tables is l, the number of hash tables; it must equal the LSH
	// family's table count.
	Tables int
	// Capacity is N, the total number of buckets across all tables.
	// Typically N = ⌈n/τ⌉ for n items at load factor τ.
	Capacity int
	// ProbeRange is d, the number of extra random probe buckets per table.
	ProbeRange int
	// MaxLoop bounds the number of kick-aways during one insertion before
	// ErrFull is reported (Algorithm 1, line 10).
	MaxLoop int
	// Seed drives the random choice of which table to kick from.
	Seed int64
	// StashSize, when > 0, adds a stash of that many overflow slots: an
	// item whose kick chain exhausts MaxLoop parks in the stash instead
	// of forcing a rehash (Kirsch, Mitzenmacher & Wieder's classic cuckoo
	// improvement — a tiny stash drops the failure probability by orders
	// of magnitude). Lookups always scan the whole stash.
	StashSize int
	// PosFunc, when non-nil, overrides the bucket addressing function.
	// It maps (table j, table-j LSH value, probe offset δ, table width w)
	// to a bucket position in [0, w). The secure index injects its
	// PRF-based addressing here so that the plaintext and secure designs
	// share one insertion engine.
	PosFunc func(table int, key uint64, delta, width int) int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Tables < 1:
		return fmt.Errorf("cuckoo: tables must be >= 1, got %d", p.Tables)
	case p.Capacity < p.Tables:
		return fmt.Errorf("cuckoo: capacity %d below table count %d", p.Capacity, p.Tables)
	case p.ProbeRange < 0:
		return fmt.Errorf("cuckoo: probe range must be >= 0, got %d", p.ProbeRange)
	case p.MaxLoop < 1:
		return fmt.Errorf("cuckoo: max loop must be >= 1, got %d", p.MaxLoop)
	case p.StashSize < 0:
		return fmt.Errorf("cuckoo: stash size must be >= 0, got %d", p.StashSize)
	}
	return nil
}

// slot is one bucket of a table.
type slot struct {
	id       uint64
	occupied bool
}

// Stats aggregates observable insertion behaviour, reported in Fig. 4(c).
type Stats struct {
	// Kicks is the total number of cuckoo kick-away operations.
	Kicks int
	// ProbeHits counts insertions resolved by a random probe bucket.
	ProbeHits int
	// PrimaryHits counts insertions resolved by a primary bucket.
	PrimaryHits int
	// StashHits counts insertions that parked in the stash.
	StashHits int
}

// Index is a plaintext LSH + cuckoo hash index mapping item identifiers to
// buckets chosen by their LSH metadata.
type Index struct {
	params Params
	w      int // buckets per table
	tables [][]slot
	stash  []slot
	meta   map[uint64]lsh.Metadata
	rng    *rand.Rand
	stats  Stats
}

// New creates an empty index.
func New(p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := (p.Capacity + p.Tables - 1) / p.Tables
	tables := make([][]slot, p.Tables)
	for j := range tables {
		tables[j] = make([]slot, w)
	}
	return &Index{
		params: p,
		w:      w,
		tables: tables,
		stash:  make([]slot, p.StashSize),
		meta:   make(map[uint64]lsh.Metadata),
		rng:    rand.New(rand.NewSource(p.Seed)),
	}, nil
}

// Params returns the index configuration.
func (x *Index) Params() Params { return x.params }

// Len returns the number of stored items.
func (x *Index) Len() int { return len(x.meta) }

// Width returns w, the number of buckets per table.
func (x *Index) Width() int { return x.w }

// Stats returns a copy of the accumulated insertion statistics.
func (x *Index) Stats() Stats { return x.stats }

// ResetStats zeroes the statistics counters.
func (x *Index) ResetStats() { x.stats = Stats{} }

// position mixes a table's LSH value (and probe offset δ, 0 for primary)
// into a bucket position. It is the plaintext analogue of the secure
// index's PRF f(k_j, V[j] || δ). When Params.PosFunc is set it takes over.
func (x *Index) position(table int, key uint64, delta int) int {
	if x.params.PosFunc != nil {
		return x.params.PosFunc(table, key, delta, x.w)
	}
	z := key ^ uint64(table)*0x9E3779B97F4A7C15 ^ uint64(delta)*0xBF58476D1CE4E5B9
	// splitmix64 finalizer for good bucket dispersion.
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int(z % uint64(x.w))
}

// Insert places id with metadata meta, performing primary insertion, random
// probing and cuckoo kick-aways exactly as Algorithm 1. It returns ErrFull
// when MaxLoop kicks did not find room (the caller rehashes), and
// ErrDuplicateID when id is already present.
func (x *Index) Insert(id uint64, meta lsh.Metadata) error {
	if len(meta) != x.params.Tables {
		return fmt.Errorf("cuckoo: metadata has %d tables, index has %d", len(meta), x.params.Tables)
	}
	if _, ok := x.meta[id]; ok {
		return fmt.Errorf("%w: %d", ErrDuplicateID, id)
	}
	x.meta[id] = meta

	curID, curMeta := id, meta
	for loop := 0; loop <= x.params.MaxLoop; loop++ {
		// Primary insertion (Algorithm 2).
		if x.tryInsert(curID, curMeta, 0) {
			x.stats.PrimaryHits++
			return nil
		}
		// Random probe (Algorithm 3).
		if x.tryProbe(curID, curMeta) {
			x.stats.ProbeHits++
			return nil
		}
		// Cuckoo kick-away: evict a random primary bucket.
		j := x.rng.Intn(x.params.Tables)
		pos := x.position(j, curMeta[j], 0)
		victim := x.tables[j][pos].id
		x.tables[j][pos] = slot{id: curID, occupied: true}
		x.stats.Kicks++
		curID = victim
		curMeta = x.meta[victim]
	}
	// Kick budget exhausted: try to park the homeless item in the stash.
	for i := range x.stash {
		if !x.stash[i].occupied {
			x.stash[i] = slot{id: curID, occupied: true}
			x.stats.StashHits++
			return nil
		}
	}
	// The last evicted item is left without a bucket. Its identifier stays
	// in x.meta (as does the originally inserted id, which may now occupy a
	// slot somewhere in the chain), so Items() reports the complete logical
	// content and the caller can rebuild with fresh LSH parameters.
	return fmt.Errorf("%w after %d kicks", ErrFull, x.params.MaxLoop)
}

// tryInsert attempts to place id in the δ-offset bucket of any table.
func (x *Index) tryInsert(id uint64, meta lsh.Metadata, delta int) bool {
	for j := 0; j < x.params.Tables; j++ {
		pos := x.position(j, meta[j], delta)
		if !x.tables[j][pos].occupied {
			x.tables[j][pos] = slot{id: id, occupied: true}
			return true
		}
	}
	return false
}

// tryProbe attempts the d random probe buckets of every table.
func (x *Index) tryProbe(id uint64, meta lsh.Metadata) bool {
	for delta := 1; delta <= x.params.ProbeRange; delta++ {
		if x.tryInsert(id, meta, delta) {
			return true
		}
	}
	return false
}

// Lookup returns the identifiers stored in all l·(d+1) buckets addressed by
// meta: the candidate set for similarity ranking.
func (x *Index) Lookup(meta lsh.Metadata) []uint64 {
	if len(meta) != x.params.Tables {
		return nil
	}
	out := make([]uint64, 0, x.params.Tables*(x.params.ProbeRange+1)+len(x.stash))
	for j := 0; j < x.params.Tables; j++ {
		for delta := 0; delta <= x.params.ProbeRange; delta++ {
			s := x.tables[j][x.position(j, meta[j], delta)]
			if s.occupied {
				out = append(out, s.id)
			}
		}
	}
	for _, s := range x.stash {
		if s.occupied {
			out = append(out, s.id)
		}
	}
	return out
}

// Delete removes id, which must have been inserted with the given metadata.
func (x *Index) Delete(id uint64, meta lsh.Metadata) error {
	if len(meta) != x.params.Tables {
		return fmt.Errorf("cuckoo: metadata has %d tables, index has %d", len(meta), x.params.Tables)
	}
	for j := 0; j < x.params.Tables; j++ {
		for delta := 0; delta <= x.params.ProbeRange; delta++ {
			pos := x.position(j, meta[j], delta)
			if s := x.tables[j][pos]; s.occupied && s.id == id {
				x.tables[j][pos] = slot{}
				delete(x.meta, id)
				return nil
			}
		}
	}
	for i, s := range x.stash {
		if s.occupied && s.id == id {
			x.stash[i] = slot{}
			delete(x.meta, id)
			return nil
		}
	}
	return fmt.Errorf("%w: %d", ErrNotFound, id)
}

// Contains reports whether id is reachable via meta's buckets.
func (x *Index) Contains(id uint64, meta lsh.Metadata) bool {
	for _, got := range x.Lookup(meta) {
		if got == id {
			return true
		}
	}
	return false
}

// Items returns every stored identifier with its metadata, for rebuilds.
func (x *Index) Items() map[uint64]lsh.Metadata {
	out := make(map[uint64]lsh.Metadata, len(x.meta))
	for id, m := range x.meta {
		out[id] = m
	}
	return out
}

// Walk calls fn for every occupied bucket with its table index, bucket
// position and stored identifier. The secure index's encryption phase uses
// it to mask exactly the occupied buckets. Stash slots are reported via
// WalkStash.
func (x *Index) Walk(fn func(table, pos int, id uint64)) {
	for j, tbl := range x.tables {
		for pos, s := range tbl {
			if s.occupied {
				fn(j, pos, s.id)
			}
		}
	}
}

// WalkStash calls fn for every occupied stash slot.
func (x *Index) WalkStash(fn func(pos int, id uint64)) {
	for pos, s := range x.stash {
		if s.occupied {
			fn(pos, s.id)
		}
	}
}

// MetaOf returns the metadata id was inserted with.
func (x *Index) MetaOf(id uint64) (lsh.Metadata, bool) {
	m, ok := x.meta[id]
	return m, ok
}

// LoadFactor returns the fraction of occupied buckets.
func (x *Index) LoadFactor() float64 {
	return float64(len(x.meta)) / float64(x.w*x.params.Tables)
}
