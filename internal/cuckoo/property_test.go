package cuckoo

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"pisd/internal/lsh"
)

// Model-based property tests: the cuckoo index is exercised with long
// random insert/delete/lookup sequences and checked after every step
// against a plain map model. The parameters are deliberately tight (small
// capacity, a small pool of shared metadata values, a short kick budget
// and a tiny stash) so the runs routinely drive the kick-chain, probe,
// stash and ErrFull/rehash paths that the targeted unit tests only brush.
//
// Every sequence is keyed by a seed; a failure prints a one-line repro
// command, in the style of TestSimulationE2E.

// propertyParams are the stress parameters for one seeded run.
func propertyParams(seed int64) Params {
	return Params{
		Tables:     4,
		Capacity:   120,
		ProbeRange: 2,
		MaxLoop:    30,
		StashSize:  4,
		Seed:       seed,
	}
}

// cuckooModel drives one seeded op sequence against both the index and the
// map model, returning the accumulated stats across rehashes.
func cuckooModel(t *testing.T, seed int64, ops int) Stats {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := propertyParams(seed)
	x, err := New(p)
	if err != nil {
		t.Fatal(err)
	}

	// A small pool of distinct metadata values forces heavy bucket sharing:
	// many items with identical metadata compete for the same l·(d+1)
	// buckets, which is what exercises probes, kicks and the stash.
	metaPool := make([]lsh.Metadata, 12)
	for i := range metaPool {
		metaPool[i] = randMeta(rng, p.Tables)
	}

	model := make(map[uint64]lsh.Metadata)
	var liveIDs []uint64 // deterministic iteration order for the model
	var nextID uint64
	var total Stats
	rehashes := 0

	accumulate := func(s Stats) {
		total.Kicks += s.Kicks
		total.ProbeHits += s.ProbeHits
		total.PrimaryHits += s.PrimaryHits
		total.StashHits += s.StashHits
	}

	checkInvariants := func(step int) {
		if x.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model has %d", step, x.Len(), len(model))
		}
		items := x.Items()
		if len(items) != len(model) {
			t.Fatalf("step %d: Items has %d entries, model %d", step, len(items), len(model))
		}
		for id, m := range model {
			got, ok := items[id]
			if !ok {
				t.Fatalf("step %d: id %d missing from Items", step, id)
			}
			if len(got) != len(m) {
				t.Fatalf("step %d: id %d metadata arity changed", step, id)
			}
			if !x.Contains(id, m) {
				t.Fatalf("step %d: live id %d not reachable via its metadata", step, id)
			}
		}
		// Every id any lookup returns must be live; position collisions may
		// repeat an id, but never resurrect a deleted one.
		for _, m := range metaPool {
			for _, id := range x.Lookup(m) {
				if _, ok := model[id]; !ok {
					t.Fatalf("step %d: Lookup returned dead id %d", step, id)
				}
			}
		}
	}

	for step := 0; step < ops; step++ {
		r := rng.Intn(10)
		if len(model) > 300 {
			// Keep the steady-state population bounded so the run keeps
			// cycling through inserts AND deletes instead of racing off to
			// ever-larger rehashes.
			r = 8
		}
		switch {
		case r < 6: // insert
			nextID++
			id := nextID
			m := metaPool[rng.Intn(len(metaPool))]
			err := x.Insert(id, m)
			switch {
			case errors.Is(err, ErrFull):
				// Rehash contract: Items() still reports the complete logical
				// content (the id just inserted included), so a rebuild into a
				// roomier index must succeed and lose nothing. A real rehash
				// re-salts the LSH family, so every item gets fresh metadata;
				// the model mirrors that by drawing a new pool scaled to the
				// live population (per-metadata load stays under the l·(d+1)
				// bucket budget) and re-assigning each survivor.
				model[id] = m
				liveIDs = append(liveIDs, id)
				items := x.Items()
				if len(items) != len(model) {
					t.Fatalf("step %d: after ErrFull, Items has %d entries, model %d", step, len(items), len(model))
				}
				accumulate(x.Stats())
				poolSize := len(metaPool)
				if min := len(model)/4 + 1; poolSize < min {
					poolSize = min
				}
				metaPool = make([]lsh.Metadata, poolSize)
				for i := range metaPool {
					metaPool[i] = randMeta(rng, p.Tables)
				}
				bigger := p
				bigger.Capacity = 4*len(model) + p.Capacity
				bigger.MaxLoop = 300
				bigger.Seed = seed + int64(rehashes) + 1
				nx, err := New(bigger)
				if err != nil {
					t.Fatal(err)
				}
				for _, rid := range liveIDs {
					rm := metaPool[rng.Intn(len(metaPool))]
					if err := nx.Insert(rid, rm); err != nil {
						t.Fatalf("step %d: rehash reinsert %d: %v", step, rid, err)
					}
					model[rid] = rm
				}
				x = nx
				rehashes++
			case err != nil:
				t.Fatalf("step %d: insert %d: %v", step, id, err)
			default:
				model[id] = m
				liveIDs = append(liveIDs, id)
			}
		case r < 9: // delete
			if len(liveIDs) == 0 {
				continue
			}
			i := rng.Intn(len(liveIDs))
			id := liveIDs[i]
			if err := x.Delete(id, model[id]); err != nil {
				t.Fatalf("step %d: delete live %d: %v", step, id, err)
			}
			delete(model, id)
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		default: // delete an id that was never inserted
			if err := x.Delete(nextID+1000, metaPool[rng.Intn(len(metaPool))]); !errors.Is(err, ErrNotFound) {
				t.Fatalf("step %d: deleting absent id: err = %v, want ErrNotFound", step, err)
			}
		}
		if step%50 == 49 {
			checkInvariants(step)
		}
	}
	checkInvariants(ops)
	accumulate(x.Stats())
	return total
}

// TestCuckooModel runs the model-based sequence over a fixed seed set and
// asserts that, across the set, every interesting insertion path fired.
func TestCuckooModel(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 13, 21, 42, 99}
	var total Stats
	for _, seed := range seeds {
		seed := seed
		t.Run(repro(seed), func(t *testing.T) {
			t.Cleanup(func() {
				if t.Failed() {
					t.Logf("repro: go test ./internal/cuckoo -run 'TestCuckooModel/%s'", repro(seed))
				}
			})
			s := cuckooModel(t, seed, 1500)
			total.Kicks += s.Kicks
			total.ProbeHits += s.ProbeHits
			total.PrimaryHits += s.PrimaryHits
			total.StashHits += s.StashHits
		})
	}
	if t.Failed() {
		return
	}
	t.Logf("paths across %d seeds: %+v", len(seeds), total)
	if total.PrimaryHits == 0 || total.ProbeHits == 0 {
		t.Errorf("primary/probe paths not exercised: %+v", total)
	}
	if total.Kicks == 0 {
		t.Errorf("kick-chain path never fired: %+v", total)
	}
	if total.StashHits == 0 {
		t.Errorf("stash path never fired: %+v", total)
	}
}

func repro(seed int64) string {
	return fmt.Sprintf("seed=%d", seed)
}

// TestCuckooStashOverflowThenErrFull pins the two-stage overflow ladder:
// identical-metadata inserts beyond the bucket budget first park in the
// stash (StashHits), and only once the stash is full does Insert report
// ErrFull.
func TestCuckooStashOverflowThenErrFull(t *testing.T) {
	p := Params{Tables: 2, Capacity: 64, ProbeRange: 1, MaxLoop: 20, StashSize: 3, Seed: 5}
	x, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	shared := lsh.Metadata{42, 43}
	budget := p.Tables * (p.ProbeRange + 1) // addressable buckets for shared
	// Fill buckets, then the stash, then one more.
	var firstErr error
	inserted := 0
	for id := uint64(1); id <= uint64(budget+p.StashSize)+1; id++ {
		if err := x.Insert(id, shared); err != nil {
			firstErr = err
			break
		}
		inserted++
	}
	if !errors.Is(firstErr, ErrFull) {
		t.Fatalf("expected ErrFull after buckets+stash filled, got %v", firstErr)
	}
	if inserted != budget+p.StashSize {
		t.Fatalf("inserted %d before ErrFull, want %d", inserted, budget+p.StashSize)
	}
	if s := x.Stats(); s.StashHits != p.StashSize {
		t.Fatalf("StashHits = %d, want %d", s.StashHits, p.StashSize)
	}
	// All stashed items are reachable and delete cleanly from the stash.
	got := x.Lookup(shared)
	if len(got) != inserted {
		t.Fatalf("Lookup returned %d ids, want %d", len(got), inserted)
	}
	var fromStash []uint64
	x.WalkStash(func(pos int, id uint64) { fromStash = append(fromStash, id) })
	if len(fromStash) != p.StashSize {
		t.Fatalf("WalkStash saw %d items, want %d", len(fromStash), p.StashSize)
	}
	for _, id := range fromStash {
		if err := x.Delete(id, shared); err != nil {
			t.Fatalf("delete stashed %d: %v", id, err)
		}
		if x.Contains(id, shared) {
			t.Fatalf("deleted stashed id %d still reachable", id)
		}
	}
}

// TestCuckooKickChainPreservesReachability drives kick chains and checks
// that every displaced item remains reachable afterwards: kicks move items
// between their own admissible buckets, never strand them. Whether a given
// metadata layout produces kicks (rather than resolving by probes) depends
// on position collisions, so the test deterministically scans trial seeds
// until one fills the index through at least one kick without ErrFull.
func TestCuckooKickChainPreservesReachability(t *testing.T) {
	p := Params{Tables: 3, Capacity: 45, ProbeRange: 1, MaxLoop: 120, Seed: 11}
	for trial := int64(0); trial < 64; trial++ {
		x, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(trial))
		// Three metadata values shared round-robin → dense collisions, each
		// metadata staying within its l·(d+1) bucket budget (6 items on 6
		// addressable buckets).
		pool := []lsh.Metadata{randMeta(rng, 3), randMeta(rng, 3), randMeta(rng, 3)}
		model := map[uint64]lsh.Metadata{}
		full := false
		for id := uint64(1); id <= 15 && !full; id++ {
			m := pool[int(id)%len(pool)]
			if err := x.Insert(id, m); err != nil {
				if errors.Is(err, ErrFull) {
					full = true // too collision-dense; try the next layout
					break
				}
				t.Fatalf("trial %d: insert %d: %v", trial, id, err)
			}
			model[id] = m
			for mid, mm := range model {
				if !x.Contains(mid, mm) {
					t.Fatalf("trial %d: after inserting %d, earlier id %d became unreachable", trial, id, mid)
				}
			}
		}
		if !full && x.Stats().Kicks > 0 {
			t.Logf("trial %d: %d kicks, all %d items reachable", trial, x.Stats().Kicks, len(model))
			return
		}
	}
	t.Fatal("no trial layout produced a kick chain; loosen the scan")
}
