package cuckoo

import (
	"errors"
	"math/rand"
	"testing"

	"pisd/internal/lsh"
)

func testParams() Params {
	return Params{Tables: 4, Capacity: 400, ProbeRange: 3, MaxLoop: 100, Seed: 1}
}

func randMeta(rng *rand.Rand, tables int) lsh.Metadata {
	m := make(lsh.Metadata, tables)
	for j := range m {
		m[j] = rng.Uint64()
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero tables", func(p *Params) { p.Tables = 0 }},
		{"capacity below tables", func(p *Params) { p.Capacity = 2 }},
		{"negative probes", func(p *Params) { p.ProbeRange = -1 }},
		{"zero maxloop", func(p *Params) { p.MaxLoop = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams()
			tt.mut(&p)
			if _, err := New(p); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestInsertLookupRoundTrip(t *testing.T) {
	x, err := New(testParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	inserted := map[uint64]lsh.Metadata{}
	for id := uint64(1); id <= 200; id++ {
		m := randMeta(rng, 4)
		if err := x.Insert(id, m); err != nil {
			t.Fatalf("insert %d: %v", id, err)
		}
		inserted[id] = m
	}
	if x.Len() != 200 {
		t.Fatalf("Len = %d, want 200", x.Len())
	}
	for id, m := range inserted {
		if !x.Contains(id, m) {
			t.Errorf("id %d not reachable via its metadata", id)
		}
	}
}

func TestInsertRejectsDuplicateAndBadMeta(t *testing.T) {
	x, _ := New(testParams())
	rng := rand.New(rand.NewSource(3))
	m := randMeta(rng, 4)
	if err := x.Insert(7, m); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(7, m); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate insert err = %v", err)
	}
	if err := x.Insert(8, randMeta(rng, 3)); err == nil {
		t.Error("short metadata accepted")
	}
}

func TestSharedMetadataCollisions(t *testing.T) {
	// Many items with identical metadata must still all be stored thanks to
	// probing and kick-aways, up to the bucket budget for that metadata.
	p := Params{Tables: 4, Capacity: 4000, ProbeRange: 8, MaxLoop: 200, Seed: 5}
	x, _ := New(p)
	rng := rand.New(rand.NewSource(9))
	shared := randMeta(rng, 4)
	// l*(d+1) = 36 addressable buckets; insert 20 identical-metadata items.
	for id := uint64(1); id <= 20; id++ {
		if err := x.Insert(id, shared); err != nil {
			t.Fatalf("insert %d with shared metadata: %v", id, err)
		}
	}
	got := x.Lookup(shared)
	if len(got) != 20 {
		t.Fatalf("Lookup returned %d ids, want 20", len(got))
	}
	seen := map[uint64]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate id %d in lookup", id)
		}
		seen[id] = true
	}
}

func TestInsertFullTriggersErrFull(t *testing.T) {
	// More identical-metadata items than addressable buckets cannot fit.
	p := Params{Tables: 2, Capacity: 64, ProbeRange: 1, MaxLoop: 50, Seed: 5}
	x, _ := New(p)
	shared := lsh.Metadata{42, 43}
	budget := p.Tables * (p.ProbeRange + 1) // 4 addressable buckets
	var err error
	for id := uint64(1); id <= uint64(budget)+1; id++ {
		if err = x.Insert(id, shared); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	// Items() must still report every logically inserted id for rebuild.
	if got := len(x.Items()); got != budget+1 {
		t.Errorf("Items len = %d, want %d", got, budget+1)
	}
}

func TestDelete(t *testing.T) {
	x, _ := New(testParams())
	rng := rand.New(rand.NewSource(4))
	m := randMeta(rng, 4)
	if err := x.Insert(11, m); err != nil {
		t.Fatal(err)
	}
	if err := x.Delete(11, m); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if x.Contains(11, m) {
		t.Error("deleted id still reachable")
	}
	if x.Len() != 0 {
		t.Errorf("Len after delete = %d", x.Len())
	}
	if err := x.Delete(11, m); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete err = %v", err)
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	x, _ := New(testParams())
	rng := rand.New(rand.NewSource(6))
	m := randMeta(rng, 4)
	for round := 0; round < 5; round++ {
		if err := x.Insert(1, m); err != nil {
			t.Fatalf("round %d insert: %v", round, err)
		}
		if err := x.Delete(1, m); err != nil {
			t.Fatalf("round %d delete: %v", round, err)
		}
	}
}

func TestHighLoadFactorFill(t *testing.T) {
	// At τ = 0.9 with random metadata the index should still fill without
	// ErrFull given enough probes and kicks.
	const n = 900
	p := Params{Tables: 10, Capacity: 1000, ProbeRange: 10, MaxLoop: 500, Seed: 7}
	x, _ := New(p)
	rng := rand.New(rand.NewSource(8))
	for id := uint64(1); id <= n; id++ {
		if err := x.Insert(id, randMeta(rng, 10)); err != nil {
			t.Fatalf("insert %d at load %.2f: %v", id, x.LoadFactor(), err)
		}
	}
	if lf := x.LoadFactor(); lf < 0.89 || lf > 0.91 {
		t.Errorf("LoadFactor = %v, want ~0.9", lf)
	}
	if x.Stats().Kicks == 0 {
		t.Log("note: no kicks needed at τ=0.9 (unusual but not wrong)")
	}
}

func TestNoLossInvariant(t *testing.T) {
	// Property-style check: after many inserts and random deletes, Lookup
	// finds exactly the surviving ids.
	p := Params{Tables: 6, Capacity: 600, ProbeRange: 5, MaxLoop: 200, Seed: 10}
	x, _ := New(p)
	rng := rand.New(rand.NewSource(11))
	live := map[uint64]lsh.Metadata{}
	for id := uint64(1); id <= 400; id++ {
		m := randMeta(rng, 6)
		if err := x.Insert(id, m); err != nil {
			t.Fatalf("insert: %v", err)
		}
		live[id] = m
	}
	for id, m := range live {
		if rng.Intn(2) == 0 {
			if err := x.Delete(id, m); err != nil {
				t.Fatalf("delete %d: %v", id, err)
			}
			delete(live, id)
		}
	}
	for id, m := range live {
		if !x.Contains(id, m) {
			t.Errorf("live id %d lost", id)
		}
	}
	if x.Len() != len(live) {
		t.Errorf("Len = %d, want %d", x.Len(), len(live))
	}
}

func TestPositionInRangeAndSpread(t *testing.T) {
	x, _ := New(testParams())
	seen := map[int]bool{}
	for key := uint64(0); key < 1000; key++ {
		pos := x.position(0, key, 0)
		if pos < 0 || pos >= x.Width() {
			t.Fatalf("position %d out of [0,%d)", pos, x.Width())
		}
		seen[pos] = true
	}
	// 1000 keys into 100 buckets should cover most buckets.
	if len(seen) < x.Width()*3/4 {
		t.Errorf("positions cover only %d/%d buckets", len(seen), x.Width())
	}
}

func TestLookupBadMeta(t *testing.T) {
	x, _ := New(testParams())
	if got := x.Lookup(lsh.Metadata{1}); got != nil {
		t.Errorf("Lookup with wrong arity = %v, want nil", got)
	}
	if err := x.Delete(1, lsh.Metadata{1}); err == nil {
		t.Error("Delete with wrong arity should error")
	}
}

func TestStatsAccumulate(t *testing.T) {
	p := Params{Tables: 2, Capacity: 40, ProbeRange: 4, MaxLoop: 100, Seed: 12}
	x, _ := New(p)
	shared := lsh.Metadata{5, 6}
	for id := uint64(1); id <= 8; id++ {
		if err := x.Insert(id, shared); err != nil {
			t.Fatal(err)
		}
	}
	s := x.Stats()
	if s.PrimaryHits == 0 || s.ProbeHits == 0 {
		t.Errorf("expected both primary and probe hits, got %+v", s)
	}
	x.ResetStats()
	if x.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func BenchmarkInsert(b *testing.B) {
	p := Params{Tables: 10, Capacity: 2 * 1000 * 1000, ProbeRange: 10, MaxLoop: 500, Seed: 1}
	x, err := New(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	metas := make([]lsh.Metadata, b.N)
	for i := range metas {
		metas[i] = randMeta(rng, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Insert(uint64(i+1), metas[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	p := Params{Tables: 10, Capacity: 125000, ProbeRange: 4, MaxLoop: 500, Seed: 1}
	x, _ := New(p)
	rng := rand.New(rand.NewSource(1))
	for id := uint64(1); id <= 100000; id++ {
		if err := x.Insert(id, randMeta(rng, 10)); err != nil {
			b.Fatal(err)
		}
	}
	m := randMeta(rng, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Lookup(m)
	}
}
