package sharing

import (
	"bytes"
	"errors"
	"testing"
)

func TestPolicyValidate(t *testing.T) {
	if err := (Policy{}).Validate(); err == nil {
		t.Error("empty policy accepted")
	}
	if err := (Policy{Clauses: [][]Attribute{{}}}).Validate(); err == nil {
		t.Error("empty clause accepted")
	}
	if err := AllOf("friend").Validate(); err != nil {
		t.Errorf("AllOf invalid: %v", err)
	}
	if err := AnyOf("a", "b").Validate(); err != nil {
		t.Errorf("AnyOf invalid: %v", err)
	}
}

func TestEncryptDecryptSingleAttribute(t *testing.T) {
	auth := NewAuthorityFromSeed("t1")
	img := []byte("encrypted image bytes")
	ct, err := auth.Encrypt(AllOf("friend"), img)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	friend := auth.IssueKeys([]Attribute{"friend"})
	got, err := Decrypt(friend, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Error("round trip mismatch")
	}
	stranger := auth.IssueKeys([]Attribute{"coworker"})
	if _, err := Decrypt(stranger, ct); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("stranger decrypt err = %v, want ErrAccessDenied", err)
	}
}

func TestAndClauseRequiresAllAttributes(t *testing.T) {
	auth := NewAuthorityFromSeed("t2")
	ct, err := auth.Encrypt(AllOf("family", "college/2013"), []byte("grad photo"))
	if err != nil {
		t.Fatal(err)
	}
	partial := auth.IssueKeys([]Attribute{"family"})
	if _, err := Decrypt(partial, ct); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("partial attrs decrypted: %v", err)
	}
	full := auth.IssueKeys([]Attribute{"family", "college/2013"})
	if _, err := Decrypt(full, ct); err != nil {
		t.Errorf("full attrs denied: %v", err)
	}
}

func TestOrPolicyAnyClauseSuffices(t *testing.T) {
	auth := NewAuthorityFromSeed("t3")
	policy := Policy{Clauses: [][]Attribute{
		{"family"},
		{"friend", "verified"},
	}}
	ct, err := auth.Encrypt(policy, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, attrs := range [][]Attribute{
		{"family"},
		{"friend", "verified"},
		{"family", "anything"},
	} {
		uk := auth.IssueKeys(attrs)
		if _, err := Decrypt(uk, ct); err != nil {
			t.Errorf("attrs %v denied: %v", attrs, err)
		}
	}
	for _, attrs := range [][]Attribute{
		{"friend"},
		{"verified"},
		nil,
	} {
		uk := auth.IssueKeys(attrs)
		if _, err := Decrypt(uk, ct); !errors.Is(err, ErrAccessDenied) {
			t.Errorf("attrs %v granted: %v", attrs, err)
		}
	}
}

func TestKeysFromDifferentAuthorityFail(t *testing.T) {
	a1 := NewAuthorityFromSeed("a1")
	a2 := NewAuthorityFromSeed("a2")
	ct, err := a1.Encrypt(AllOf("friend"), []byte("img"))
	if err != nil {
		t.Fatal(err)
	}
	uk := a2.IssueKeys([]Attribute{"friend"})
	if _, err := Decrypt(uk, ct); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("foreign authority keys accepted: %v", err)
	}
}

func TestCiphertextFreshness(t *testing.T) {
	auth := NewAuthorityFromSeed("t4")
	c1, err := auth.Encrypt(AllOf("x"), []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := auth.Encrypt(AllOf("x"), []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1.Payload, c2.Payload) {
		t.Error("payload encryption deterministic")
	}
	if bytes.Equal(c1.Nonce, c2.Nonce) {
		t.Error("nonce reused")
	}
}

func TestMalformedCiphertext(t *testing.T) {
	auth := NewAuthorityFromSeed("t5")
	ct, err := auth.Encrypt(AllOf("a"), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	uk := auth.IssueKeys([]Attribute{"a"})
	bad := *ct
	bad.Wrapped = nil
	if _, err := Decrypt(uk, &bad); err == nil {
		t.Error("clause count mismatch accepted")
	}
	tampered := *ct
	tampered.Payload = append([]byte(nil), ct.Payload...)
	tampered.Payload[0] ^= 1
	if _, err := Decrypt(uk, &tampered); err == nil {
		t.Error("tampered payload accepted")
	}
}

func TestEncryptRejectsInvalidPolicy(t *testing.T) {
	auth := NewAuthorityFromSeed("t6")
	if _, err := auth.Encrypt(Policy{}, []byte("p")); err == nil {
		t.Error("invalid policy accepted")
	}
}

func TestNewAuthorityRandom(t *testing.T) {
	a, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAuthority()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := a.Encrypt(AllOf("f"), []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decrypt(b.IssueKeys([]Attribute{"f"}), ct); !errors.Is(err, ErrAccessDenied) {
		t.Error("independent authorities share keys")
	}
}
