// Package sharing implements the encrypted image-sharing extension of
// Sec. III-E: Persona-style attribute-based access control over outsourced
// encrypted images. A user encrypts an image under an attribute policy;
// friends holding keys for a satisfying attribute set can decrypt.
//
// Substitution note (DESIGN.md §5.5): real ciphertext-policy ABE requires
// pairing-based cryptography outside the Go standard library. This package
// reproduces the *access semantics* with symmetric key wrapping: an
// authority derives one key per attribute from a master secret, policies
// are DNF formulas (OR of AND-clauses), and the per-image content key is
// wrapped once per clause under a key folded from all the clause's
// attribute keys. A holder of every attribute in some clause unwraps; a
// holder of a strict subset cannot. Unlike true ABE this is not secure
// against two users pooling complementary attribute keys.
package sharing

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"pisd/internal/crypt"
)

// Attribute is one access-control attribute (e.g. "friend", "family",
// "college/2013").
type Attribute string

// Policy is a DNF access formula: the ciphertext is decryptable by anyone
// whose attribute set contains every attribute of at least one clause.
type Policy struct {
	// Clauses is the OR level; each clause is an AND of attributes.
	Clauses [][]Attribute
}

// Validate reports whether the policy is non-trivial.
func (p Policy) Validate() error {
	if len(p.Clauses) == 0 {
		return errors.New("sharing: policy has no clauses")
	}
	for i, clause := range p.Clauses {
		if len(clause) == 0 {
			return fmt.Errorf("sharing: clause %d is empty", i)
		}
	}
	return nil
}

// AnyOf builds a single-attribute-per-clause policy (pure OR).
func AnyOf(attrs ...Attribute) Policy {
	p := Policy{Clauses: make([][]Attribute, len(attrs))}
	for i, a := range attrs {
		p.Clauses[i] = []Attribute{a}
	}
	return p
}

// AllOf builds a single-clause policy (pure AND).
func AllOf(attrs ...Attribute) Policy {
	return Policy{Clauses: [][]Attribute{attrs}}
}

// Authority issues attribute keys. Each user runs their own authority for
// their own images (the paper has every user generate ABE keys for their
// friends).
type Authority struct {
	master crypt.PRFKey
}

// NewAuthority creates an authority with a fresh random master secret.
func NewAuthority() (*Authority, error) {
	b, err := crypt.RandBytes(crypt.PRFKeySize)
	if err != nil {
		return nil, fmt.Errorf("sharing: new authority: %w", err)
	}
	var k crypt.PRFKey
	copy(k[:], b)
	return &Authority{master: k}, nil
}

// NewAuthorityFromSeed derives a deterministic authority for tests.
func NewAuthorityFromSeed(seed string) *Authority {
	return &Authority{master: crypt.PRFKey(sha256.Sum256([]byte("pisd/sharing/" + seed)))}
}

// attrKey derives the secret key of one attribute.
func (a *Authority) attrKey(attr Attribute) crypt.PRFKey {
	return crypt.SubKey(a.master, "attr/"+string(attr))
}

// UserKeys is the key material issued to one friend: one key per granted
// attribute.
type UserKeys struct {
	Attrs map[Attribute]crypt.PRFKey
}

// IssueKeys grants keys for the given attributes.
func (a *Authority) IssueKeys(attrs []Attribute) *UserKeys {
	uk := &UserKeys{Attrs: make(map[Attribute]crypt.PRFKey, len(attrs))}
	for _, attr := range attrs {
		uk.Attrs[attr] = a.attrKey(attr)
	}
	return uk
}

// Ciphertext is an image encrypted under a policy.
type Ciphertext struct {
	// Policy is stored in the clear (like CP-ABE access structures).
	Policy Policy
	// Nonce freshens the clause key derivation.
	Nonce []byte
	// Wrapped[i] is the content key wrapped under clause i's folded key.
	Wrapped [][]byte
	// Payload is the content encrypted under the content key.
	Payload []byte
}

// clauseKey folds a clause's attribute keys and the nonce into one
// encryption key. The fold is order-independent (attributes sorted) and
// requires every attribute key in the clause.
func clauseKey(keys map[Attribute]crypt.PRFKey, clause []Attribute, nonce []byte) (crypt.EncKey, bool) {
	sorted := append([]Attribute(nil), clause...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	acc := make([]byte, 32)
	for _, attr := range sorted {
		k, ok := keys[attr]
		if !ok {
			return crypt.EncKey{}, false
		}
		mac := hmac.New(sha256.New, k[:])
		mac.Write(nonce)
		mac.Write(acc)
		acc = mac.Sum(nil)
	}
	var ek crypt.EncKey
	copy(ek[:], acc[:crypt.EncKeySize])
	return ek, true
}

// Encrypt encrypts plaintext (an image blob) under the policy, using the
// authority's attribute keys.
func (a *Authority) Encrypt(policy Policy, plaintext []byte) (*Ciphertext, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	nonce, err := crypt.RandBytes(16)
	if err != nil {
		return nil, fmt.Errorf("sharing: nonce: %w", err)
	}
	contentKeyBytes, err := crypt.RandBytes(crypt.EncKeySize)
	if err != nil {
		return nil, fmt.Errorf("sharing: content key: %w", err)
	}
	var contentKey crypt.EncKey
	copy(contentKey[:], contentKeyBytes)

	ct := &Ciphertext{Policy: policy, Nonce: nonce, Wrapped: make([][]byte, len(policy.Clauses))}
	// The authority holds all attribute keys, so it can fold any clause.
	all := make(map[Attribute]crypt.PRFKey)
	for _, clause := range policy.Clauses {
		for _, attr := range clause {
			all[attr] = a.attrKey(attr)
		}
	}
	for i, clause := range policy.Clauses {
		ck, ok := clauseKey(all, clause, nonce)
		if !ok {
			return nil, fmt.Errorf("sharing: clause %d key derivation failed", i)
		}
		wrapped, err := crypt.Enc(ck, contentKey[:])
		if err != nil {
			return nil, fmt.Errorf("sharing: wrap clause %d: %w", i, err)
		}
		ct.Wrapped[i] = wrapped
	}
	payload, err := crypt.Enc(contentKey, plaintext)
	if err != nil {
		return nil, fmt.Errorf("sharing: payload: %w", err)
	}
	ct.Payload = payload
	return ct, nil
}

// ErrAccessDenied is returned when the key set satisfies no clause.
var ErrAccessDenied = errors.New("sharing: attribute keys satisfy no policy clause")

// Decrypt recovers the plaintext if uk satisfies at least one clause.
func Decrypt(uk *UserKeys, ct *Ciphertext) ([]byte, error) {
	if err := ct.Policy.Validate(); err != nil {
		return nil, err
	}
	if len(ct.Wrapped) != len(ct.Policy.Clauses) {
		return nil, errors.New("sharing: malformed ciphertext: clause count mismatch")
	}
	for i, clause := range ct.Policy.Clauses {
		ck, ok := clauseKey(uk.Attrs, clause, ct.Nonce)
		if !ok {
			continue
		}
		keyBytes, err := crypt.Dec(ck, ct.Wrapped[i])
		if err != nil {
			// Wrong fold (should not happen with honest ciphertexts) or
			// tampering; try the next clause.
			continue
		}
		var contentKey crypt.EncKey
		copy(contentKey[:], keyBytes)
		pt, err := crypt.Dec(contentKey, ct.Payload)
		if err != nil {
			return nil, fmt.Errorf("sharing: payload decrypt: %w", err)
		}
		return pt, nil
	}
	return nil, ErrAccessDenied
}
