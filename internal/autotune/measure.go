package autotune

import (
	"fmt"
	"sort"
	"time"

	"pisd/internal/baseline"
	"pisd/internal/cloud"
	"pisd/internal/frontend"
	"pisd/internal/obs"
	"pisd/internal/vec"
)

// measureFrontier rebuilds the reference and every frontier point on the
// real secure stack and attaches real-unit measurements. A point whose
// build fails (e.g. the cuckoo placement is infeasible at the tuned table
// count) keeps its proxy numbers and records the error plus a one-line
// repro — it can no longer win.
func measureFrontier(env *sweepEnv, cfg Config, rep *Report) error {
	cfg.logf("autotune: measuring reference %s on the secure stack", rep.Reference.Candidate)
	m, err := measureCandidate(env, cfg, rep.Reference.Candidate)
	if err != nil {
		return fmt.Errorf("autotune: reference measurement failed: %w (%s)", err, Repro(cfg, rep.Reference.Candidate))
	}
	rep.Reference.Measured = m
	for i := range rep.Frontier {
		c := rep.Frontier[i].Candidate
		if c == rep.Reference.Candidate {
			rep.Frontier[i].Measured = m
			continue
		}
		cfg.logf("autotune: measuring %s (budget %d)", c, rep.Frontier[i].Budget)
		fm, err := measureCandidate(env, cfg, c)
		if err != nil {
			rep.Frontier[i].Err = err.Error()
			rep.Frontier[i].Repro = Repro(cfg, c)
			cfg.logf("autotune: %s infeasible: %v; %s", c, err, rep.Frontier[i].Repro)
			continue
		}
		rep.Frontier[i].Measured = fm
	}
	// Mirror measurements back into the full result list so the emitted
	// JSON is self-consistent.
	for i := range rep.Results {
		for j := range rep.Frontier {
			if rep.Results[i].Candidate == rep.Frontier[j].Candidate {
				rep.Results[i].Measured = rep.Frontier[j].Measured
				rep.Results[i].Err = rep.Frontier[j].Err
				rep.Results[i].Repro = rep.Frontier[j].Repro
			}
		}
	}
	return nil
}

// fallbackMeasureCap bounds how many extra secure-stack builds the
// fallback pass may attempt when no frontier point won.
const fallbackMeasureCap = 8

// measureFallback extends measurement past the proxy frontier when no
// frontier point produced a winner — the proxy skyline can be crowded out
// by configs that later miss the measured floors. Remaining feasible
// results cheaper than the reference are measured in (budget ascending,
// proxy recall descending) deterministic order; the first one holding both
// measured floors becomes the winner. Bounded at fallbackMeasureCap
// builds so a floor nothing can meet still terminates quickly.
func measureFallback(env *sweepEnv, cfg Config, rep *Report) error {
	refM := rep.Reference.Measured
	if refM == nil {
		return nil
	}
	recallFloor := refM.Recall - cfg.MaxRecallLoss
	accFloor := refM.Accuracy - cfg.MaxRecallLoss
	onFrontier := make(map[Candidate]bool, len(rep.Frontier))
	for _, r := range rep.Frontier {
		onFrontier[r.Candidate] = true
	}
	var pool []*Result
	for i := range rep.Results {
		r := &rep.Results[i]
		if r.Pruned || r.Err != "" || !r.Feasible || r.Measured != nil ||
			onFrontier[r.Candidate] || r.Budget >= rep.Reference.Budget {
			continue
		}
		pool = append(pool, r)
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Budget != pool[j].Budget {
			return pool[i].Budget < pool[j].Budget
		}
		if pool[i].Recall != pool[j].Recall {
			return pool[i].Recall > pool[j].Recall
		}
		return pool[i].Candidate.less(pool[j].Candidate)
	})
	for measured, r := range pool {
		if measured >= fallbackMeasureCap {
			cfg.logf("autotune: fallback stopped after %d builds with no winner", measured)
			break
		}
		cfg.logf("autotune: fallback measuring %s (budget %d)", r.Candidate, r.Budget)
		m, err := measureCandidate(env, cfg, r.Candidate)
		if err != nil {
			r.Err = err.Error()
			r.Repro = Repro(cfg, r.Candidate)
			cfg.logf("autotune: %s infeasible: %v; %s", r.Candidate, err, r.Repro)
			continue
		}
		r.Measured = m
		if m.Recall >= recallFloor && m.Accuracy >= accFloor {
			w := *r
			rep.Winner = &w
			return nil
		}
	}
	return nil
}

// partitionDeployment is one partition's live slice of the measured
// deployment: its own front end (keys + family) and in-process cloud
// server with a private metrics registry.
type partitionDeployment struct {
	fe  *frontend.Frontend
	srv *cloud.Server
	reg *obs.Registry
}

// measureCandidate builds candidate c's deployment over the sweep
// population — one (frontend, cloud.Server) pair per partition, exactly
// the production build path including the rehash loop — and measures
// secure-path recall, bucket traffic (from the live cloud.* counters),
// trapdoor cost, index bytes and serial end-to-end qps.
func measureCandidate(env *sweepEnv, cfg Config, c Candidate) (*Measurement, error) {
	groups := env.groups[c.Partitions]
	deps := make([]partitionDeployment, len(groups))
	meas := &Measurement{}

	buildStart := time.Now()
	for pi, members := range groups {
		fcfg := frontend.DefaultConfig(cfg.Dim)
		fcfg.LSH.Tables = c.Tables
		fcfg.LSH.Atoms = c.Atoms
		fcfg.LSH.Width = c.Width
		fcfg.ProbeRange = c.ProbeRange
		fcfg.MaxLoop = 2000
		fcfg.KeySeed = fmt.Sprintf("autotune-%d-p%d", cfg.Seed, pi)
		fe, err := frontend.New(fcfg)
		if err != nil {
			return nil, fmt.Errorf("partition %d: %w", pi, err)
		}
		uploads := make([]frontend.Upload, len(members))
		for i, m := range members {
			uploads[i] = frontend.Upload{ID: uint64(m) + 1, Profile: env.profiles[m]}
		}
		idx, encProfiles, err := fe.BuildIndex(uploads)
		if err != nil {
			return nil, fmt.Errorf("partition %d (%d users): %w", pi, len(members), err)
		}
		srv := cloud.New()
		reg := obs.NewRegistry()
		srv.SetRegistry(reg)
		srv.SetIndex(idx)
		srv.PutProfiles(encProfiles)
		deps[pi] = partitionDeployment{fe: fe, srv: srv, reg: reg}
		meas.IndexBytes += int64(idx.SizeBytes())
	}
	meas.BuildMS = float64(time.Since(buildStart).Microseconds()) / 1000

	// Trapdoor cost: mean per query, summed over partitions (a query
	// issues one trapdoor per partition).
	tdStart := time.Now()
	for _, q := range env.queries {
		for pi := range deps {
			if _, err := deps[pi].fe.Trapdoor(q); err != nil {
				return nil, fmt.Errorf("trapdoor: %w", err)
			}
		}
	}
	meas.TrapdoorUS = float64(time.Since(tdStart).Microseconds()) / float64(len(env.queries))

	// End-to-end serial discovery over the query workload; recall against
	// the brute-force ground truth (upload IDs are profile index + 1).
	var recallSum, accSum float64
	qStart := time.Now()
	for qi, q := range env.queries {
		merged := vec.NewTopK(cfg.K)
		for pi := range deps {
			matches, err := deps[pi].fe.Discover(deps[pi].srv, q, cfg.K, 0)
			if err != nil {
				return nil, fmt.Errorf("discover partition %d: %w", pi, err)
			}
			for _, m := range matches {
				merged.Offer(m.ID, m.Distance)
			}
		}
		retrieved := merged.Sorted()
		gt := make([]vec.Scored, len(env.gt[qi]))
		for i, s := range env.gt[qi] {
			gt[i] = vec.Scored{ID: s.ID + 1, Score: s.Score}
		}
		recallSum += baseline.RecallAtK(gt, retrieved)
		accSum += baseline.AccuracyRatio(gt, retrieved)
	}
	elapsed := time.Since(qStart)
	nq := float64(len(env.queries))
	meas.Recall = recallSum / nq
	meas.Accuracy = accSum / nq
	if elapsed > 0 {
		meas.QPS = nq / elapsed.Seconds()
	}

	// Bucket traffic from the live counters that also enforce the
	// leakage invariant: cloud.buckets_unmasked summed across partitions,
	// normalized per query. Counting both phases' queries keeps the
	// denominator in step with the counter.
	var buckets, queries int64
	for pi := range deps {
		snap := deps[pi].reg.Snapshot()
		buckets += snap.Counters["cloud.buckets_unmasked"]
		queries += snap.Counters["cloud.queries"]
		if v := snap.Counters["cloud.leakage_invariant_violations"]; v != 0 {
			return nil, fmt.Errorf("partition %d: %d leakage invariant violations", pi, v)
		}
	}
	if queries > 0 {
		meas.BucketsPerQuery = float64(buckets) / float64(queries) * float64(len(deps))
	}
	return meas, nil
}
