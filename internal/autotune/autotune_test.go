package autotune

import (
	"encoding/json"
	"math"
	"testing"
)

// smokeConfig is the tiny seeded run the CI autotune-smoke job also
// executes: small enough for seconds, large enough that the known-dominant
// config separates from the rest.
func smokeConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Users:   2000,
		Dim:     128,
		K:       10,
		Queries: 24,
		Seed:    1,
		Grid:    TinyGrid(2000),
	}
}

// TestAutotuneDeterminism pins the single-seed discipline: two runs of the
// same config produce byte-identical reports.
func TestAutotuneDeterminism(t *testing.T) {
	cfg := smokeConfig(t)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Fatalf("two runs of the same seed differ:\n%s\n---\n%s", ja, jb)
	}
}

// TestAutotuneTinyGridWinner asserts the tuner reproduces the known
// dominant config on the seeded smoke dataset: the sweep must surface a
// winner strictly cheaper than the reference that holds proxy recall
// within the tolerance. The exact winner is pinned so a silent change in
// evaluation or ordering fails loudly (repro: the smokeConfig literal).
func TestAutotuneTinyGridWinner(t *testing.T) {
	cfg := smokeConfig(t)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Winner == nil {
		t.Fatalf("no winner; frontier: %+v; %s", rep.Frontier, Repro(cfg, rep.Reference.Candidate))
	}
	w := rep.Winner
	if w.Budget >= rep.Reference.Budget {
		t.Errorf("winner budget %d not below reference %d; %s", w.Budget, rep.Reference.Budget, Repro(cfg, w.Candidate))
	}
	if w.Recall < rep.Reference.Recall-cfg.MaxRecallLoss-1e-9 {
		t.Errorf("winner recall %.4f below floor %.4f; %s", w.Recall,
			rep.Reference.Recall-cfg.MaxRecallLoss, Repro(cfg, w.Candidate))
	}
	want := Candidate{Tables: 6, Atoms: 4, Width: 1.0, ProbeRange: 4, Partitions: 1}
	if w.Candidate != want {
		t.Errorf("winner = %s, want the known-dominant %s; %s", w.Candidate, want, Repro(cfg, w.Candidate))
	}
	if rep.BudgetReduction < 0.25 {
		t.Errorf("budget reduction %.2f below the 25%% target", rep.BudgetReduction)
	}
}

// TestAutotuneMeasuredRun exercises the real-stack measurement phase: the
// reference and every feasible frontier point carry real-unit costs, and
// the measured bucket traffic equals the candidate's budget exactly (the
// leakage invariant read through the live cloud counters; monolithic
// builds carry no stash).
func TestAutotuneMeasuredRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-stack builds")
	}
	cfg := smokeConfig(t)
	cfg.Queries = 12
	cfg.Measure = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reference.Measured == nil {
		t.Fatal("reference has no measurement")
	}
	checkMeasured := func(r Result) {
		m := r.Measured
		if m == nil {
			return
		}
		if got, want := m.BucketsPerQuery, float64(r.Budget); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: measured %.1f buckets/query, budget says %d; %s",
				r.Candidate, got, r.Budget, Repro(cfg, r.Candidate))
		}
		if m.IndexBytes <= 0 || m.TrapdoorUS <= 0 || m.QPS <= 0 {
			t.Errorf("%s: incomplete measurement %+v", r.Candidate, *m)
		}
		if m.Recall < 0 || m.Recall > 1 {
			t.Errorf("%s: secure recall %v out of [0,1]", r.Candidate, m.Recall)
		}
	}
	checkMeasured(rep.Reference)
	measured := 0
	for _, r := range rep.Frontier {
		checkMeasured(r)
		if r.Measured != nil {
			measured++
		}
	}
	if measured == 0 {
		t.Error("no frontier point was measured")
	}
	if rep.Winner != nil && rep.Winner.Measured == nil {
		t.Errorf("winner %s selected without a measurement", rep.Winner.Candidate)
	}
}

// TestSweepPrunesDominated checks dominance pruning fires and that pruned
// entries make no recall claim.
func TestSweepPrunesDominated(t *testing.T) {
	cfg := smokeConfig(t)
	// The first config is cheaper (budget 15 vs 20) yet has more tables,
	// fewer atoms and the same width — the sweep's budget ordering runs it
	// in the first wave, where it dominates the second on every axis.
	cfg.Workers = 1
	cfg.Grid = []Candidate{
		{Tables: 5, Atoms: 4, Width: 0.7, ProbeRange: 2, Partitions: 1},
		{Tables: 4, Atoms: 5, Width: 0.7, ProbeRange: 4, Partitions: 1},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pruned != 1 {
		t.Fatalf("pruned %d configs, want 1: %+v", rep.Pruned, rep.Results)
	}
	for _, r := range rep.Results {
		if !r.Pruned {
			continue
		}
		if r.PrunedBy == "" {
			t.Errorf("pruned %s carries no dominator", r.Candidate)
		}
		if r.Recall != 0 || r.Accuracy != 0 {
			t.Errorf("pruned %s claims recall %v / accuracy %v", r.Candidate, r.Recall, r.Accuracy)
		}
	}
}

// TestDominatorOf pins the monotone dominance relation.
func TestDominatorOf(t *testing.T) {
	a := &Result{Candidate: Candidate{Tables: 6, Atoms: 4, Width: 1.0, ProbeRange: 4, Partitions: 1}}
	a.Budget = a.Candidate.Budget()
	evaluated := []*Result{a}
	cases := []struct {
		c    Candidate
		want bool
	}{
		// Fewer tables, more atoms, narrower width, same budget axis →
		// dominated.
		{Candidate{Tables: 5, Atoms: 5, Width: 0.7, ProbeRange: 5, Partitions: 1}, true},
		{Candidate{Tables: 6, Atoms: 4, Width: 0.7, ProbeRange: 4, Partitions: 1}, true},
		// More tables: could recall more.
		{Candidate{Tables: 7, Atoms: 4, Width: 1.0, ProbeRange: 4, Partitions: 1}, false},
		// Fewer atoms: could recall more.
		{Candidate{Tables: 6, Atoms: 3, Width: 1.0, ProbeRange: 4, Partitions: 1}, false},
		// Wider: could recall more.
		{Candidate{Tables: 6, Atoms: 4, Width: 1.2, ProbeRange: 4, Partitions: 1}, false},
		// Cheaper budget: could still be a frontier point.
		{Candidate{Tables: 6, Atoms: 4, Width: 0.7, ProbeRange: 3, Partitions: 1}, false},
		// Different partition layout: not comparable.
		{Candidate{Tables: 5, Atoms: 5, Width: 0.7, ProbeRange: 4, Partitions: 2}, false},
		// Itself: never its own dominator.
		{a.Candidate, false},
	}
	for _, tc := range cases {
		got := dominatorOf(evaluated, tc.c) != nil
		if got != tc.want {
			t.Errorf("dominatorOf(%s vs %s) = %v, want %v", tc.c, a.Candidate, got, tc.want)
		}
	}
}

// TestPartitionByDensity pins the layout: deterministic, near-equal
// quantiles, every profile in exactly one partition, and density ordered
// across partitions.
func TestPartitionByDensity(t *testing.T) {
	density := []float64{5, 1, 3, 9, 2, 8, 7, 4, 6, 0}
	groups, partOf := partitionByDensity(density, 3)
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	seen := make(map[int]bool)
	for pi, g := range groups {
		if len(g) < 3 || len(g) > 4 {
			t.Errorf("partition %d has %d members, want 3..4", pi, len(g))
		}
		for _, m := range g {
			if seen[m] {
				t.Errorf("profile %d in two partitions", m)
			}
			seen[m] = true
			if partOf[m] != pi {
				t.Errorf("partOf[%d] = %d, want %d", m, partOf[m], pi)
			}
		}
	}
	if len(seen) != len(density) {
		t.Errorf("%d profiles assigned, want %d", len(seen), len(density))
	}
	// Quantiles are density-ordered: max of partition i ≤ min of i+1.
	for pi := 0; pi+1 < len(groups); pi++ {
		maxLo, minHi := math.Inf(-1), math.Inf(1)
		for _, m := range groups[pi] {
			maxLo = math.Max(maxLo, density[m])
		}
		for _, m := range groups[pi+1] {
			minHi = math.Min(minHi, density[m])
		}
		if maxLo > minHi {
			t.Errorf("partitions %d/%d not density-ordered: %v > %v", pi, pi+1, maxLo, minHi)
		}
	}
}

// TestFrontierIsSkyline pins the Pareto extraction: budget strictly
// ascending, recall strictly ascending.
func TestFrontierIsSkyline(t *testing.T) {
	cfg := smokeConfig(t)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Frontier); i++ {
		prev, cur := rep.Frontier[i-1], rep.Frontier[i]
		if cur.Budget <= prev.Budget {
			t.Errorf("frontier budgets not ascending: %d then %d", prev.Budget, cur.Budget)
		}
		if cur.Recall <= prev.Recall {
			t.Errorf("frontier recall not ascending: %v then %v", prev.Recall, cur.Recall)
		}
	}
	// Every non-pruned result must be dominated by or on the frontier.
	for _, r := range rep.Results {
		if r.Pruned || r.Err != "" {
			continue
		}
		onOrDominated := false
		for _, f := range rep.Frontier {
			if f.Candidate == r.Candidate || (f.Budget <= r.Budget && f.Recall >= r.Recall) {
				onOrDominated = true
				break
			}
		}
		if !onOrDominated {
			t.Errorf("%s (budget %d, recall %v) neither on frontier nor dominated", r.Candidate, r.Budget, r.Recall)
		}
	}
}

// TestReproLine pins the one-line repro format used by failing configs.
func TestReproLine(t *testing.T) {
	cfg := smokeConfig(t)
	c := Candidate{Tables: 6, Atoms: 5, Width: 0.85, ProbeRange: 4, Partitions: 2}
	got := Repro(cfg, c)
	want := `repro: go run ./cmd/pisd-autotune -users 2000 -dim 128 -k 10 -queries 24 -seed 1 -grid "l=6,atoms=5,width=0.85,d=4,parts=2"`
	if got != want {
		t.Errorf("repro line:\n got %s\nwant %s", got, want)
	}
}

// TestConfigValidation pins the required-field errors.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Users: 0, Grid: TinyGrid(1000)}); err == nil {
		t.Error("users=0 accepted")
	}
	if _, err := Run(Config{Users: 100}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Run(Config{Users: 100, Grid: []Candidate{{Tables: 0, Atoms: 1, Width: 1, Partitions: 1}}}); err == nil {
		t.Error("invalid candidate accepted")
	}
}

// TestBudget pins the cost model Σᵢ lᵢ·(dᵢ+1).
func TestBudget(t *testing.T) {
	c := Candidate{Tables: 10, Atoms: 4, Width: 0.7, ProbeRange: 4, Partitions: 1}
	if c.Budget() != 50 {
		t.Errorf("budget = %d, want 50", c.Budget())
	}
	c.Partitions = 2
	c.Tables = 4
	if c.Budget() != 40 {
		t.Errorf("partitioned budget = %d, want 40", c.Budget())
	}
}
