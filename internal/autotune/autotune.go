// Package autotune searches the LSH parameter space — (l tables, k atoms,
// quantization width W, probe range d, population partitions) — for
// operating points that hold recall while shrinking the scheme's entire
// cost model, l·(d+1): trapdoor size and generation time, per-query bucket
// bandwidth, and SecRec work all scale linearly with it (the paper fixes
// l = 10..100, d = 4 by hand).
//
// The tuner runs in two phases:
//
//  1. Sweep. Candidate configs are evaluated against the brute-force
//     oracle (baseline.BruteForceTopK) on a seeded synthetic population,
//     using plain-LSH candidate retrieval (baseline.PlainLSH semantics)
//     as the recall proxy — the paper's own "baseline approach", which
//     upper-bounds the secure index's accuracy. The sweep is fanned
//     across a worker pool in deterministic cost-ordered waves, with
//     configs pruned before evaluation when an already-evaluated config
//     dominates them on both axes (≥ recall by parameter monotonicity —
//     more tables, wider quantization, fewer atoms never lose recall —
//     and ≤ cost). For speed the sweep evaluates atoms from one master
//     set of Gaussian projections per partition (an E2LSH family is a
//     projection matrix plus uniform offsets; narrowing the width or
//     truncating tables/atoms of the master family yields exactly the
//     family a smaller parameterization would draw), so hashing the
//     population once per partition layout covers the whole grid.
//
//  2. Measure. Pareto-frontier survivors (and the untuned reference) are
//     rebuilt on the real stack — frontend.BuildIndex → cloud.Server →
//     Discover — and measured in real units: secure-path recall@k,
//     index bytes, trapdoor µs, buckets fetched per query (read from the
//     live internal/obs counters that also enforce the leakage
//     invariant), and end-to-end qps. The winner is chosen on measured
//     secure recall, so a proxy-optimistic config cannot win.
//
// Partitioned candidates follow the LSH-Ensemble idea (Zhu et al., VLDB
// 2016): the population splits into density quantiles, each partition gets
// its own independently seeded family sized to the same candidate shape,
// and a query probes every partition (cost Σᵢ lᵢ·(dᵢ+1)). Everything is
// reproducible from Config.Seed alone; failing configs carry a one-line
// repro.
package autotune

import (
	"fmt"
	"sort"

	"pisd/internal/dataset"
	"pisd/internal/frontend"
)

// Candidate is one point of the parameter grid.
type Candidate struct {
	// Tables is l, the table count of each partition's family.
	Tables int `json:"l"`
	// Atoms is k, the atomic hash count per table.
	Atoms int `json:"atoms"`
	// Width is the atom quantization width W.
	Width float64 `json:"width"`
	// ProbeRange is d, the random probe range of the secure index.
	ProbeRange int `json:"probe_range"`
	// Partitions is the number of density quantiles the population is
	// split into; each gets an independent family and index.
	Partitions int `json:"partitions"`
}

// Validate reports whether the candidate is usable.
func (c Candidate) Validate() error {
	switch {
	case c.Tables < 1:
		return fmt.Errorf("autotune: tables must be >= 1, got %d", c.Tables)
	case c.Atoms < 1:
		return fmt.Errorf("autotune: atoms must be >= 1, got %d", c.Atoms)
	case c.Width <= 0:
		return fmt.Errorf("autotune: width must be > 0, got %v", c.Width)
	case c.ProbeRange < 0:
		return fmt.Errorf("autotune: probe range must be >= 0, got %d", c.ProbeRange)
	case c.Partitions < 1:
		return fmt.Errorf("autotune: partitions must be >= 1, got %d", c.Partitions)
	}
	return nil
}

// Budget is the candidate's bucket cost model Σᵢ lᵢ·(dᵢ+1): the buckets a
// query addresses across all partitions, excluding any stash (the stash is
// a population-size function, identical across candidates).
func (c Candidate) Budget() int {
	return c.Partitions * c.Tables * (c.ProbeRange + 1)
}

// String renders the candidate compactly ("l=7 k=5 W=0.85 d=4 parts=1").
func (c Candidate) String() string {
	return fmt.Sprintf("l=%d k=%d W=%g d=%d parts=%d",
		c.Tables, c.Atoms, c.Width, c.ProbeRange, c.Partitions)
}

// less orders candidates deterministically: cheapest budget first, then by
// parameters. Every sweep, frontier and winner decision sorts with it, so
// a run is a pure function of (Config, grid).
func (c Candidate) less(o Candidate) bool {
	if c.Budget() != o.Budget() {
		return c.Budget() < o.Budget()
	}
	if c.Partitions != o.Partitions {
		return c.Partitions < o.Partitions
	}
	if c.Tables != o.Tables {
		return c.Tables < o.Tables
	}
	if c.Atoms != o.Atoms {
		return c.Atoms < o.Atoms
	}
	if c.Width != o.Width {
		return c.Width < o.Width
	}
	return c.ProbeRange < o.ProbeRange
}

// Measurement is a candidate's real-unit cost/quality readout from the
// measure phase: the full secure stack, not the plain-LSH proxy.
type Measurement struct {
	// Recall is recall@k through frontend.Discover over the real index.
	Recall float64 `json:"recall"`
	// Accuracy is the paper's distance-ratio metric on the same results.
	Accuracy float64 `json:"accuracy"`
	// BucketsPerQuery is the measured cloud.buckets_unmasked per query,
	// summed across partitions (= Budget() + stash when the invariant
	// holds; reading it from the live counters keeps the tuner honest).
	BucketsPerQuery float64 `json:"buckets_per_query"`
	// TrapdoorUS is the mean per-query trapdoor generation cost in µs,
	// summed across partitions.
	TrapdoorUS float64 `json:"trapdoor_us"`
	// IndexBytes is the total encrypted index footprint.
	IndexBytes int64 `json:"index_bytes"`
	// QPS is serial end-to-end Discover throughput (all partitions).
	QPS float64 `json:"qps"`
	// BuildMS is the total index build time in milliseconds.
	BuildMS float64 `json:"build_ms"`
}

// Result is one evaluated (or pruned) candidate.
type Result struct {
	Candidate
	// Budget repeats Candidate.Budget() for JSON consumers.
	Budget int `json:"budget"`
	// Recall is the sweep's plain-LSH proxy recall@k (mean over queries).
	Recall float64 `json:"recall"`
	// Accuracy is the paper's distance-ratio metric on the proxy results.
	Accuracy float64 `json:"accuracy"`
	// Candidates is the mean plain-LSH candidate-set size per query.
	Candidates float64 `json:"candidates"`
	// Feasible reports whether the candidate's cuckoo placement succeeded
	// over the sweep population (per partition, at the production load
	// factor). Wide quantization widths concentrate users on shared
	// per-table hashes until no placement exists; such configs can look
	// excellent on proxy recall yet cannot be built. Only meaningful on
	// evaluated (non-pruned) results; the frontier carries feasible
	// points only.
	Feasible bool `json:"feasible"`
	// PartRecall[i] is the recall restricted to ground-truth neighbours
	// living in partition i (only for Partitions > 1).
	PartRecall []float64 `json:"part_recall,omitempty"`
	// Pruned marks candidates skipped because PrunedBy dominated them.
	Pruned   bool   `json:"pruned,omitempty"`
	PrunedBy string `json:"pruned_by,omitempty"`
	// Measured carries the real-unit readout for frontier survivors.
	Measured *Measurement `json:"measured,omitempty"`
	// Err and Repro record a failed config (e.g. cuckoo placement
	// infeasible on the real stack) and its one-line reproduction.
	Err   string `json:"err,omitempty"`
	Repro string `json:"repro,omitempty"`
}

// Config parameterizes a tuner run. The zero values of optional fields are
// filled by Run; Users and Grid are required.
type Config struct {
	// Users is n, the synthetic population size to tune for.
	Users int `json:"users"`
	// Dim is the profile dimensionality (default 1000, the paper's
	// vocabulary size).
	Dim int `json:"dim"`
	// K is the recall@k cutoff (default 10).
	K int `json:"k"`
	// Queries is the evaluation query count (default 64).
	Queries int `json:"queries"`
	// Seed makes the whole run — dataset, families, queries, sweep order
	// — reproducible.
	Seed int64 `json:"seed"`
	// Workers bounds sweep parallelism (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// MaxRecallLoss is the recall the winner may give up vs the untuned
	// reference, in absolute recall points (default 0.01 = 1%).
	MaxRecallLoss float64 `json:"max_recall_loss"`
	// Grid is the candidate set to sweep.
	Grid []Candidate `json:"grid"`
	// Measure rebuilds the reference and every frontier survivor on the
	// real secure stack and picks the winner on measured recall.
	Measure bool `json:"measure"`
	// Logf, when set, receives one progress line per phase/config.
	Logf func(format string, args ...any) `json:"-"`
}

func (c Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// withDefaults fills optional fields.
func (c Config) withDefaults() (Config, error) {
	if c.Users < 1 {
		return c, fmt.Errorf("autotune: users must be >= 1, got %d", c.Users)
	}
	if len(c.Grid) == 0 {
		return c, fmt.Errorf("autotune: empty candidate grid")
	}
	if c.Dim == 0 {
		c.Dim = 1000
	}
	if c.K == 0 {
		c.K = 10
	}
	if c.Queries == 0 {
		c.Queries = 64
	}
	if c.MaxRecallLoss == 0 {
		c.MaxRecallLoss = 0.01
	}
	for _, cand := range c.Grid {
		if err := cand.Validate(); err != nil {
			return c, err
		}
	}
	return c, nil
}

// Reference returns the untuned operating point the sweep compares
// against: the paper's defaults with only the atom count grown with n
// (frontend.UntunedConfigForPopulation).
func Reference(users int) Candidate {
	ref := frontend.UntunedConfigForPopulation(1, users)
	return Candidate{
		Tables:     ref.LSH.Tables,
		Atoms:      ref.LSH.Atoms,
		Width:      ref.LSH.Width,
		ProbeRange: ref.ProbeRange,
		Partitions: 1,
	}
}

// DefaultGrid is the standard sweep around the reference point: table
// counts from 4 to the paper's 10, the population-scaled atom count ±1,
// three quantization widths, and one- and two-partition ensembles.
func DefaultGrid(users int) []Candidate {
	ref := Reference(users)
	var grid []Candidate
	for _, l := range []int{4, 5, 6, 7, 8, ref.Tables} {
		for _, da := range []int{0, 1} {
			for _, w := range []float64{ref.Width, 0.85, 1.0} {
				for _, parts := range []int{1, 2} {
					cand := Candidate{
						Tables:     l,
						Atoms:      ref.Atoms + da,
						Width:      w,
						ProbeRange: ref.ProbeRange,
						Partitions: parts,
					}
					grid = append(grid, cand)
				}
			}
		}
	}
	return dedupeGrid(grid)
}

// TinyGrid is the CI smoke grid: a handful of configs spanning the axes,
// evaluable in seconds at a few thousand users.
func TinyGrid(users int) []Candidate {
	ref := Reference(users)
	return dedupeGrid([]Candidate{
		ref,
		{Tables: 5, Atoms: ref.Atoms, Width: ref.Width, ProbeRange: ref.ProbeRange, Partitions: 1},
		{Tables: 6, Atoms: ref.Atoms, Width: 1.0, ProbeRange: ref.ProbeRange, Partitions: 1},
		{Tables: 7, Atoms: ref.Atoms, Width: 0.85, ProbeRange: ref.ProbeRange, Partitions: 1},
		{Tables: 3, Atoms: ref.Atoms, Width: 1.0, ProbeRange: ref.ProbeRange, Partitions: 2},
		{Tables: 10, Atoms: ref.Atoms + 2, Width: 0.4, ProbeRange: ref.ProbeRange, Partitions: 1},
	})
}

// dedupeGrid drops duplicate candidates and sorts deterministically.
func dedupeGrid(grid []Candidate) []Candidate {
	seen := make(map[Candidate]struct{}, len(grid))
	out := grid[:0]
	for _, c := range grid {
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// Repro renders the one-line reproduction of a candidate's evaluation
// under cfg, printed verbatim when a config fails.
func Repro(cfg Config, c Candidate) string {
	return fmt.Sprintf("repro: go run ./cmd/pisd-autotune -users %d -dim %d -k %d -queries %d -seed %d -grid %q",
		cfg.Users, cfg.Dim, cfg.K, cfg.Queries, cfg.Seed,
		fmt.Sprintf("l=%d,atoms=%d,width=%g,d=%d,parts=%d",
			c.Tables, c.Atoms, c.Width, c.ProbeRange, c.Partitions))
}

// tuneDataset derives the synthetic population config for a run: the
// experiments' default profile model with the population-scaled topic
// count, everything keyed to cfg.Seed.
func tuneDataset(cfg Config) dataset.Config {
	dc := dataset.DefaultConfig(cfg.Users)
	dc.Dim = cfg.Dim
	dc.Topics = dataset.AutoTopics(cfg.Users)
	dc.Seed = cfg.Seed
	// Smoke runs tune at reduced dimensionality; keep the topic model
	// valid (and comparably sparse) when dim drops below the default
	// 80-word topics.
	if dc.ActiveWords > dc.Dim/2 {
		dc.ActiveWords = dc.Dim/2 + 1
	}
	return dc
}
