package autotune

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"pisd/internal/baseline"
	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/dataset"
	"pisd/internal/lsh"
	"pisd/internal/vec"
)

// Report is a full tuner run: every grid point, the Pareto frontier, and
// the selected winner, reproducible from Config alone.
type Report struct {
	Config Config `json:"config"`
	// Reference is the untuned operating point everything compares to.
	Reference Result `json:"reference"`
	// Results holds one entry per grid candidate, in deterministic
	// budget order, including pruned and failed ones.
	Results []Result `json:"results"`
	// Frontier is the recall-vs-cost Pareto skyline (budget ascending,
	// recall strictly increasing), drawn from Results plus Reference.
	Frontier []Result `json:"frontier"`
	// Winner is the cheapest config within MaxRecallLoss of the
	// reference recall — on measured secure recall when Measure was set,
	// on the sweep proxy otherwise. Nil when nothing qualified.
	Winner *Result `json:"winner,omitempty"`
	// BudgetReduction is 1 − Winner.Budget/Reference.Budget.
	BudgetReduction float64 `json:"budget_reduction"`
	// Evaluated and Pruned count sweep work for observability.
	Evaluated int `json:"evaluated"`
	Pruned    int `json:"pruned"`
}

// Run executes the sweep (and, when cfg.Measure is set, the real-stack
// measurement of the reference and frontier) and returns the report.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	grid := dedupeGrid(append([]Candidate(nil), cfg.Grid...))
	env, err := newSweepEnv(cfg, grid)
	if err != nil {
		return nil, err
	}

	ref := Reference(cfg.Users)
	cfg.logf("autotune: n=%d dim=%d k=%d queries=%d seed=%d grid=%d reference=%s (budget %d)",
		cfg.Users, cfg.Dim, cfg.K, cfg.Queries, cfg.Seed, len(grid), ref, ref.Budget())
	refResult := env.evaluate(ref)
	cfg.logf("autotune: reference recall=%.4f accuracy=%.4f candidates=%.1f",
		refResult.Recall, refResult.Accuracy, refResult.Candidates)

	rep := &Report{Config: cfg, Reference: refResult}
	rep.Results = env.sweep(cfg, grid, &refResult, rep)
	rep.Frontier = frontier(rep.Results, refResult)
	infeasible := 0
	for _, r := range rep.Results {
		if !r.Pruned && r.Err == "" && !r.Feasible {
			infeasible++
		}
	}
	if infeasible > 0 {
		cfg.logf("autotune: %d configs placement-infeasible at n=%d (excluded from frontier)",
			infeasible, cfg.Users)
	}

	if cfg.Measure {
		if err := measureFrontier(env, cfg, rep); err != nil {
			return nil, err
		}
		pickWinnerMeasured(cfg, rep)
		if rep.Winner == nil {
			if err := measureFallback(env, cfg, rep); err != nil {
				return nil, err
			}
		}
	} else {
		pickWinnerProxy(cfg, rep)
	}
	if rep.Winner != nil {
		rep.BudgetReduction = 1 - float64(rep.Winner.Budget)/float64(refResult.Budget)
		cfg.logf("autotune: winner %s budget %d (reference %d, −%.0f%%)",
			rep.Winner.Candidate, rep.Winner.Budget, refResult.Budget, 100*rep.BudgetReduction)
	} else {
		cfg.logf("autotune: no candidate held recall within %.3f of the reference", cfg.MaxRecallLoss)
	}
	return rep, nil
}

// sweep evaluates the grid in deterministic budget-ordered waves of
// cfg.Workers, pruning candidates dominated by an already-evaluated config
// on both axes: parameter monotonicity (≥ tables, ≤ atoms, ≥ width on the
// same partition layout never lose recall) plus ≤ budget. Pruning looks
// only at completed waves, so the result set is a pure function of the
// config — independent of scheduling.
func (env *sweepEnv) sweep(cfg Config, grid []Candidate, ref *Result, rep *Report) []Result {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, len(grid))
	evaluated := []*Result{ref}
	for start := 0; start < len(grid); start += workers {
		end := start + workers
		if end > len(grid) {
			end = len(grid)
		}
		for i := start; i < end; i++ {
			if grid[i] == ref.Candidate {
				results[i] = *ref
				continue
			}
			if dom := dominatorOf(evaluated, grid[i]); dom != nil {
				results[i] = Result{
					Candidate: grid[i],
					Budget:    grid[i].Budget(),
					Pruned:    true,
					PrunedBy:  dom.Candidate.String(),
				}
				rep.Pruned++
			}
		}
		var wg sync.WaitGroup
		for i := start; i < end; i++ {
			if results[i].Pruned || grid[i] == ref.Candidate {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = env.evaluate(grid[i])
			}(i)
		}
		wg.Wait()
		for i := start; i < end; i++ {
			if results[i].Pruned || grid[i] == ref.Candidate {
				continue
			}
			rep.Evaluated++
			// Only feasible results may act as dominators: an unbuildable
			// config must never prune a buildable one out of contention.
			if results[i].Err == "" && results[i].Feasible {
				evaluated = append(evaluated, &results[i])
			}
		}
		cfg.logf("autotune: sweep %d/%d (evaluated %d, pruned %d)",
			end, len(grid), rep.Evaluated, rep.Pruned)
	}
	return results
}

// dominatorOf returns an evaluated result that dominates c, or nil. a
// dominates c when a costs no more and — by LSH parameter monotonicity —
// recalls no less: same partition layout, at least as many tables, at
// most as many atoms, at least as wide quantization. (Monotonicity holds
// in expectation over the family draw; on a finite sample it is a
// heuristic, which only ever drops a config from the frontier, never
// mis-reports one: pruned entries carry no recall claim.)
func dominatorOf(evaluated []*Result, c Candidate) *Result {
	for _, a := range evaluated {
		if a.Candidate == c || a.Partitions != c.Partitions {
			continue
		}
		if a.Budget <= c.Budget() && a.Tables >= c.Tables && a.Atoms <= c.Atoms && a.Width >= c.Width {
			return a
		}
	}
	return nil
}

// frontier extracts the Pareto skyline from the feasible results plus the
// reference: budget ascending, keeping points of strictly increasing
// recall. Infeasible configs are excluded — a point that cannot be built
// has no place on an operating frontier.
func frontier(results []Result, ref Result) []Result {
	pool := make([]Result, 0, len(results)+1)
	pool = append(pool, ref)
	for _, r := range results {
		if !r.Pruned && r.Err == "" && r.Feasible && r.Candidate != ref.Candidate {
			pool = append(pool, r)
		}
	}
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Budget != pool[j].Budget {
			return pool[i].Budget < pool[j].Budget
		}
		if pool[i].Recall != pool[j].Recall {
			return pool[i].Recall > pool[j].Recall
		}
		return pool[i].Candidate.less(pool[j].Candidate)
	})
	var sky []Result
	best := math.Inf(-1)
	for _, r := range pool {
		if r.Recall > best {
			sky = append(sky, r)
			best = r.Recall
		}
	}
	return sky
}

// pickWinnerProxy selects the cheapest frontier point whose sweep-proxy
// recall and accuracy both stay within MaxRecallLoss of the reference.
func pickWinnerProxy(cfg Config, rep *Report) {
	recallFloor := rep.Reference.Recall - cfg.MaxRecallLoss
	accFloor := rep.Reference.Accuracy - cfg.MaxRecallLoss
	for i := range rep.Frontier {
		if rep.Frontier[i].Recall >= recallFloor && rep.Frontier[i].Accuracy >= accFloor {
			w := rep.Frontier[i]
			rep.Winner = &w
			return
		}
	}
}

// pickWinnerMeasured selects the cheapest measured frontier point whose
// secure-path recall and accuracy both stay within MaxRecallLoss of the
// measured reference. Points whose measurement failed cannot win.
func pickWinnerMeasured(cfg Config, rep *Report) {
	if rep.Reference.Measured == nil {
		return
	}
	recallFloor := rep.Reference.Measured.Recall - cfg.MaxRecallLoss
	accFloor := rep.Reference.Measured.Accuracy - cfg.MaxRecallLoss
	for i := range rep.Frontier {
		m := rep.Frontier[i].Measured
		if m != nil && m.Recall >= recallFloor && m.Accuracy >= accFloor {
			w := rep.Frontier[i]
			rep.Winner = &w
			return
		}
	}
}

// sweepEnv is the shared, read-only evaluation state: the population, the
// query workload with brute-force ground truth, the density partition
// layouts, and per-partition master projections from which every grid
// candidate's family is a truncation.
type sweepEnv struct {
	cfg       Config
	profiles  [][]float64
	queries   [][]float64
	gt        [][]vec.Scored // ground truth per query; IDs are profile indexes
	maxTables int
	maxAtoms  int
	// groups[p] lists, for the p-partition layout, each partition's
	// member profile indexes; partOf[p][i] is profile i's partition.
	groups map[int][][]int
	partOf map[int][]int
	// rawP[p][i] is profile i's flattened [maxTables×maxAtoms] raw
	// projections under its partition's master projector; rawQ[p][pi][q]
	// is query q's raw projections under partition pi's projector.
	rawP map[int][][]float64
	rawQ map[int][][][]float64
	off  map[int][][]float64 // off[p][pi] is projector (p,pi)'s offsets
	// keys[l] is a deterministic key set with l table keys, shared by the
	// placement feasibility checks of every candidate with l tables.
	keys map[int]*crypt.KeySet
}

// newSweepEnv generates the population, ground truth, partition layouts
// and master projections for the run. Everything derives from cfg.Seed.
func newSweepEnv(cfg Config, grid []Candidate) (*sweepEnv, error) {
	ds, err := dataset.Generate(tuneDataset(cfg))
	if err != nil {
		return nil, fmt.Errorf("autotune: generate population: %w", err)
	}
	queries, _ := ds.Queries(cfg.Queries, cfg.Seed+1)

	env := &sweepEnv{
		cfg:      cfg,
		profiles: ds.Profiles,
		queries:  queries,
		gt:       make([][]vec.Scored, len(queries)),
		groups:   make(map[int][][]int),
		partOf:   make(map[int][]int),
		rawP:     make(map[int][][]float64),
		rawQ:     make(map[int][][][]float64),
		off:      make(map[int][][]float64),
	}
	cfg.logf("autotune: computing brute-force ground truth (%d queries over %d profiles)",
		len(queries), len(ds.Profiles))
	for qi, q := range queries {
		env.gt[qi] = baseline.BruteForceTopK(ds.Profiles, q, cfg.K)
	}

	ref := Reference(cfg.Users)
	env.maxTables, env.maxAtoms = ref.Tables, ref.Atoms
	partCounts := map[int]struct{}{1: {}}
	env.keys = make(map[int]*crypt.KeySet)
	tableCounts := map[int]struct{}{ref.Tables: {}}
	for _, c := range grid {
		if c.Tables > env.maxTables {
			env.maxTables = c.Tables
		}
		if c.Atoms > env.maxAtoms {
			env.maxAtoms = c.Atoms
		}
		partCounts[c.Partitions] = struct{}{}
		tableCounts[c.Tables] = struct{}{}
	}
	for l := range tableCounts {
		keys, err := crypt.GenDeterministic(fmt.Sprintf("autotune-sweep-%d", cfg.Seed), l)
		if err != nil {
			return nil, fmt.Errorf("autotune: feasibility keys (l=%d): %w", l, err)
		}
		env.keys[l] = keys
	}

	density := densityScores(ds.Profiles)
	for p := range partCounts {
		env.groups[p], env.partOf[p] = partitionByDensity(density, p)
	}
	cfg.logf("autotune: projecting population (master family %d×%d, %d partition layouts)",
		env.maxTables, env.maxAtoms, len(partCounts))
	for p := range partCounts {
		env.projectLayout(p)
	}
	return env, nil
}

// densityScores returns each profile's participation ratio 1/Σvᵢ⁴ — the
// effective number of active dimensions of a unit-norm histogram. Sparse
// single-topic profiles score low, dense multi-topic mixtures high; it is
// the "profile density" axis the ensemble partitions on.
func densityScores(profiles [][]float64) []float64 {
	scores := make([]float64, len(profiles))
	parallelOver(len(profiles), func(i int) {
		var s4 float64
		for _, v := range profiles[i] {
			s4 += v * v * v * v
		}
		if s4 > 0 {
			scores[i] = 1 / s4
		}
	})
	return scores
}

// partitionByDensity splits profile indexes into p contiguous density
// quantiles of near-equal size (ties broken by index, so the layout is
// deterministic).
func partitionByDensity(density []float64, p int) (groups [][]int, partOf []int) {
	n := len(density)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if density[order[a]] != density[order[b]] {
			return density[order[a]] < density[order[b]]
		}
		return order[a] < order[b]
	})
	groups = make([][]int, p)
	partOf = make([]int, n)
	for rank, idx := range order {
		pi := rank * p / n
		if pi >= p {
			pi = p - 1
		}
		groups[pi] = append(groups[pi], idx)
		partOf[idx] = pi
	}
	return groups, partOf
}

// projectLayout draws, for each partition of the p-partition layout, an
// independent master projector (maxTables×maxAtoms Gaussian projections
// plus uniform offsets — the E2LSH family with the width factored out:
// h(v) = ⌊(a·v)/W + u⌋ equals ⌊(a·v + b)/W⌋ with b = u·W), then projects
// every member profile and every query under it. Each grid candidate's
// family is the truncation of this master to its first l tables and k
// atoms at its own width, so the population is hashed once per layout
// instead of once per config.
func (env *sweepEnv) projectLayout(p int) {
	type proj struct {
		vecs [][]float64
		off  []float64
	}
	projectors := make([]proj, p)
	for pi := 0; pi < p; pi++ {
		rng := rand.New(rand.NewSource(env.cfg.Seed + int64(1000*p+pi) + 7777))
		pr := proj{
			vecs: make([][]float64, env.maxTables*env.maxAtoms),
			off:  make([]float64, env.maxTables*env.maxAtoms),
		}
		for a := range pr.vecs {
			v := make([]float64, env.cfg.Dim)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			pr.vecs[a] = v
			pr.off[a] = rng.Float64()
		}
		projectors[pi] = pr
	}

	rawP := make([][]float64, len(env.profiles))
	partOf := env.partOf[p]
	parallelOver(len(env.profiles), func(i int) {
		rawP[i] = rawProject(projectors[partOf[i]].vecs, env.profiles[i])
	})
	rawQ := make([][][]float64, p)
	for pi := 0; pi < p; pi++ {
		rawQ[pi] = make([][]float64, len(env.queries))
		for qi, q := range env.queries {
			rawQ[pi][qi] = rawProject(projectors[pi].vecs, q)
		}
	}
	off := make([][]float64, p)
	for pi := 0; pi < p; pi++ {
		off[pi] = projectors[pi].off
	}
	env.rawP[p] = rawP
	env.rawQ[p] = rawQ
	env.off[p] = off
}

// rawProject computes a·v for every master atom.
func rawProject(vecs [][]float64, v []float64) []float64 {
	out := make([]float64, len(vecs))
	for a, pv := range vecs {
		out[a] = vec.Dot(pv, v)
	}
	return out
}

// tableHash composes table j's value for a candidate: the FNV-1a digest of
// its first k quantized atoms, ⌊raw/W + off⌋ each.
func tableHash(raw, off []float64, maxAtoms, j, k int, width float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	base := j * maxAtoms
	for t := 0; t < k; t++ {
		x := raw[base+t]/width + off[base+t]
		f := math.Floor(x)
		n := uint64(int64(f))
		buf[0] = byte(n >> 56)
		buf[1] = byte(n >> 48)
		buf[2] = byte(n >> 40)
		buf[3] = byte(n >> 32)
		buf[4] = byte(n >> 24)
		buf[5] = byte(n >> 16)
		buf[6] = byte(n >> 8)
		buf[7] = byte(n)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// evaluate measures one candidate with the plain-LSH proxy: per partition,
// index every member's l table hashes, then for each query rank the union
// of bucket candidates across partitions against the brute-force ground
// truth. Pure and deterministic — safe to fan across the worker pool.
func (env *sweepEnv) evaluate(c Candidate) Result {
	res := Result{Candidate: c, Budget: c.Budget()}
	if c.Tables > env.maxTables || c.Atoms > env.maxAtoms {
		res.Err = fmt.Sprintf("candidate %s exceeds master family %d×%d", c, env.maxTables, env.maxAtoms)
		res.Repro = Repro(env.cfg, c)
		return res
	}
	groups := env.groups[c.Partitions]
	rawP := env.rawP[c.Partitions]
	rawQ := env.rawQ[c.Partitions]
	off := env.off[c.Partitions]
	partOf := env.partOf[c.Partitions]

	// buckets[pi][j] maps table j's hash to member profile indexes; the
	// same hashes double as each member's metadata for the placement
	// feasibility check.
	buckets := make([][]map[uint64][]int32, len(groups))
	res.Feasible = true
	for pi, members := range groups {
		tabs := make([]map[uint64][]int32, c.Tables)
		for j := range tabs {
			tabs[j] = make(map[uint64][]int32, len(members))
		}
		items := make([]core.Item, len(members))
		for mi, m := range members {
			meta := make(lsh.Metadata, c.Tables)
			for j := 0; j < c.Tables; j++ {
				h := tableHash(rawP[m], off[pi], env.maxAtoms, j, c.Atoms, c.Width)
				meta[j] = h
				tabs[j][h] = append(tabs[j][h], int32(m))
			}
			items[mi] = core.Item{ID: uint64(m) + 1, Meta: meta}
		}
		buckets[pi] = tabs
		if res.Feasible && !env.placeable(c, items) {
			res.Feasible = false
		}
	}

	var recallSum, accSum, candSum float64
	partHits := make([]float64, len(groups))
	partTotal := make([]float64, len(groups))
	seen := make(map[int32]struct{})
	cands := make([]int, 0, 256)
	for qi, q := range env.queries {
		cands = cands[:0]
		for k := range seen {
			delete(seen, k)
		}
		for pi := range groups {
			for j := 0; j < c.Tables; j++ {
				h := tableHash(rawQ[pi][qi], off[pi], env.maxAtoms, j, c.Atoms, c.Width)
				for _, m := range buckets[pi][j][h] {
					if _, dup := seen[m]; !dup {
						seen[m] = struct{}{}
						cands = append(cands, int(m))
					}
				}
			}
		}
		candSum += float64(len(cands))
		retrieved := baseline.RankCandidates(env.profiles, q, cands, env.cfg.K)
		gt := env.gt[qi]
		recallSum += baseline.RecallAtK(gt, retrieved)
		accSum += baseline.AccuracyRatio(gt, retrieved)
		if len(groups) > 1 {
			got := make(map[uint64]struct{}, len(retrieved))
			for _, s := range retrieved {
				got[s.ID] = struct{}{}
			}
			for _, s := range gt {
				pi := partOf[int(s.ID)]
				partTotal[pi]++
				if _, ok := got[s.ID]; ok {
					partHits[pi]++
				}
			}
		}
	}
	nq := float64(len(env.queries))
	res.Recall = recallSum / nq
	res.Accuracy = accSum / nq
	res.Candidates = candSum / nq
	if len(groups) > 1 {
		res.PartRecall = make([]float64, len(groups))
		for pi := range groups {
			if partTotal[pi] > 0 {
				res.PartRecall[pi] = partHits[pi] / partTotal[pi]
			} else {
				res.PartRecall[pi] = 1
			}
		}
	}
	return res
}

// placeable reports whether one partition's members admit a cuckoo
// placement under candidate c at the production load factor and kick
// budget. Wide quantization widths concentrate members on shared table
// hashes; past a point no placement exists and the config, however good
// its proxy recall, cannot be built. The check runs the real PRF-addressed
// placer over the sweep's proxy metadata — same bucket-collision structure
// as the production build, no encryption. Two kick-seed attempts stand in
// for the production rehash loop; the screen is deliberately conservative,
// since a config that only places with rehash luck is a poor operating
// point to hard-code.
func (env *sweepEnv) placeable(c Candidate, items []core.Item) bool {
	for attempt := int64(0); attempt < 2; attempt++ {
		p := core.Params{
			Tables:     c.Tables,
			Capacity:   core.CapacityFor(len(items), 0.8),
			ProbeRange: c.ProbeRange,
			MaxLoop:    2000,
			Seed:       env.cfg.Seed + attempt,
		}
		pl, err := core.NewPlacement(env.keys[c.Tables], p)
		if err != nil {
			return false
		}
		if pl.Insert(items) == nil {
			return true
		}
	}
	return false
}

// parallelOver runs fn(i) for i in [0, n) across GOMAXPROCS workers in
// contiguous chunks; each index is processed exactly once, so writes to
// index-owned slots are race-free and deterministic.
func parallelOver(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
