package lsh

import (
	"math"
	"math/rand"
	"testing"

	"pisd/internal/vec"
)

func TestSignParamsValidate(t *testing.T) {
	good := SignParams{Dim: 8, Tables: 4, Bits: 16, Seed: 1}
	if _, err := NewSign(good); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, mut := range []func(*SignParams){
		func(p *SignParams) { p.Dim = 0 },
		func(p *SignParams) { p.Tables = 0 },
		func(p *SignParams) { p.Bits = 0 },
		func(p *SignParams) { p.Bits = 65 },
	} {
		p := good
		mut(&p)
		if _, err := NewSign(p); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
}

func TestMinHashParamsValidate(t *testing.T) {
	good := MinHashParams{Dim: 8, Tables: 4, Hashes: 2, Seed: 1}
	if _, err := NewMinHash(good); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	for _, mut := range []func(*MinHashParams){
		func(p *MinHashParams) { p.Dim = 0 },
		func(p *MinHashParams) { p.Tables = 0 },
		func(p *MinHashParams) { p.Hashes = 0 },
	} {
		p := good
		mut(&p)
		if _, err := NewMinHash(p); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
}

func TestSignFamilyDeterministicAndScaleInvariant(t *testing.T) {
	p := SignParams{Dim: 16, Tables: 6, Bits: 8, Seed: 3}
	f1, err := NewSign(p)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewSign(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		v := randomVec(rng, 16)
		if !f1.Hash(v).Equal(f2.Hash(v)) {
			t.Fatal("same params must hash identically")
		}
		// Cosine hashing ignores positive scaling.
		scaled := vec.Scale(vec.Clone(v), 3.7)
		if !f1.Hash(v).Equal(f1.Hash(scaled)) {
			t.Fatal("sign hash must be scale invariant")
		}
	}
}

// SimHash locality: small-angle pairs collide in more tables than
// large-angle pairs.
func TestSignFamilyCosineLocality(t *testing.T) {
	p := SignParams{Dim: 32, Tables: 16, Bits: 4, Seed: 5}
	f, err := NewSign(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var nearSum, farSum float64
	const trials = 200
	for i := 0; i < trials; i++ {
		base := vec.Normalize(randomVec(rng, 32))
		near := vec.Normalize(perturb(rng, base, 0.2))
		far := vec.Normalize(randomVec(rng, 32))
		nearSum += float64(collisions(f, base, near))
		farSum += float64(collisions(f, base, far))
	}
	if nearSum/trials <= farSum/trials {
		t.Errorf("cosine locality violated: near %.2f <= far %.2f", nearSum/trials, farSum/trials)
	}
}

// MinHash locality: profiles with overlapping supports collide in more
// tables than disjoint-support profiles.
func TestMinHashJaccardLocality(t *testing.T) {
	p := MinHashParams{Dim: 200, Tables: 16, Hashes: 1, Seed: 7}
	f, err := NewMinHash(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	sparse := func(lo, hi int) []float64 {
		v := make([]float64, 200)
		for w := lo; w < hi; w++ {
			if rng.Float64() < 0.5 {
				v[w] = rng.Float64()
			}
		}
		return v
	}
	var overlapSum, disjointSum float64
	const trials = 100
	for i := 0; i < trials; i++ {
		a := sparse(0, 100)
		b := sparse(50, 150) // overlaps a on [50,100)
		c := sparse(100, 200)
		overlapSum += float64(collisions(f, a, b))
		disjointSum += float64(collisions(f, a, c))
	}
	if overlapSum/trials <= disjointSum/trials {
		t.Errorf("jaccard locality violated: overlap %.2f <= disjoint %.2f",
			overlapSum/trials, disjointSum/trials)
	}
}

func TestMinHashEmptySupport(t *testing.T) {
	p := MinHashParams{Dim: 16, Tables: 3, Hashes: 2, Seed: 9}
	f, err := NewMinHash(p)
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]float64, 16)
	m1 := f.Hash(zero)
	m2 := f.Hash(zero)
	if !m1.Equal(m2) {
		t.Error("empty-support hash not deterministic")
	}
}

func TestHasherInterfaceShapes(t *testing.T) {
	e, err := New(Params{Dim: 8, Tables: 5, Atoms: 2, Width: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sgn, err := NewSign(SignParams{Dim: 8, Tables: 5, Bits: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mh, err := NewMinHash(MinHashParams{Dim: 8, Tables: 5, Hashes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := []float64{1, 0, 0.5, 0, 0, 0.2, 0, 0}
	for _, h := range []Hasher{e, sgn, mh} {
		if h.NumTables() != 5 {
			t.Errorf("%T NumTables = %d", h, h.NumTables())
		}
		if got := h.Hash(v); len(got) != 5 {
			t.Errorf("%T Hash len = %d", h, len(got))
		}
	}
}

func collisions(h Hasher, a, b []float64) int {
	ma, mb := h.Hash(a), h.Hash(b)
	n := 0
	for j := range ma {
		if ma[j] == mb[j] {
			n++
		}
	}
	return n
}

func TestSignBitsMonotoneWithAngle(t *testing.T) {
	// With more bits per table, collision probability of unrelated
	// vectors drops.
	rng := rand.New(rand.NewSource(10))
	collisionRate := func(bits int) float64 {
		f, err := NewSign(SignParams{Dim: 16, Tables: 32, Bits: bits, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		const trials = 60
		for i := 0; i < trials; i++ {
			total += collisions(f, randomVec(rng, 16), randomVec(rng, 16))
		}
		return float64(total) / float64(trials*32)
	}
	if r1, r8 := collisionRate(1), collisionRate(8); r1 <= r8 {
		t.Errorf("collision rate should drop with bits: 1-bit %.3f <= 8-bit %.3f", r1, r8)
	}
	if math.IsNaN(collisionRate(4)) {
		t.Fatal("NaN rate")
	}
}
