package lsh

import (
	"hash/fnv"
	"math"
	"sort"
)

// Query-directed multi-probe (Lv, Josephson, Wang, Charikar, Li —
// VLDB'07, the paper's reference [19]). The secure index already probes
// d random buckets per table for load balance; multi-probe is the
// complementary recall technique: at query time, also look into the
// *neighbouring LSH buckets* the query nearly fell into. A variant
// metadata vector differs from the exact one in a single table, where one
// atom's quantized projection is shifted by ±1; variants are ordered by
// how close the query is to that quantization boundary.

// ProbeVariant is one perturbed metadata vector with its query-directed
// cost (smaller = the query was closer to the boundary = more likely to
// hold near neighbours).
type ProbeVariant struct {
	Meta Metadata
	// Table is the perturbed table index; Atom and Shift identify the
	// perturbation.
	Table int
	Atom  int
	Shift int64
	// Cost is the distance of the projection to the crossed boundary, in
	// units of the quantization width.
	Cost float64
}

// ProbeSequence returns up to maxVariants perturbed metadata vectors for
// v, cheapest first. The exact metadata (Hash(v)) is not included.
func (f *Family) ProbeSequence(v []float64, maxVariants int) []ProbeVariant {
	if maxVariants <= 0 {
		return nil
	}
	base := f.Hash(v)
	var variants []ProbeVariant
	for j := 0; j < f.params.Tables; j++ {
		for t := 0; t < f.params.Atoms; t++ {
			x := (dot(f.a[j][t], v) + f.b[j][t]) / f.params.Width
			frac := x - math.Floor(x)
			// Shift down crosses the lower boundary (distance frac);
			// shift up crosses the upper one (distance 1-frac).
			for _, pv := range []struct {
				shift int64
				cost  float64
			}{{-1, frac}, {+1, 1 - frac}} {
				meta := append(Metadata(nil), base...)
				meta[j] = f.hashTableShifted(v, j, t, pv.shift)
				variants = append(variants, ProbeVariant{
					Meta:  meta,
					Table: j,
					Atom:  t,
					Shift: pv.shift,
					Cost:  pv.cost,
				})
			}
		}
	}
	sort.Slice(variants, func(i, j int) bool { return variants[i].Cost < variants[j].Cost })
	if len(variants) > maxVariants {
		variants = variants[:maxVariants]
	}
	return variants
}

// hashTableShifted recomputes table j's composite value with atom `atom`
// shifted by `shift` buckets.
func (f *Family) hashTableShifted(v []float64, j, atom int, shift int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for t := 0; t < f.params.Atoms; t++ {
		n := f.Atom(v, j, t)
		if t == atom {
			n += shift
		}
		u := uint64(n)
		buf[0] = byte(u >> 56)
		buf[1] = byte(u >> 48)
		buf[2] = byte(u >> 40)
		buf[3] = byte(u >> 32)
		buf[4] = byte(u >> 24)
		buf[5] = byte(u >> 16)
		buf[6] = byte(u >> 8)
		buf[7] = byte(u)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// dot is a local inner product (avoids importing vec to keep the package
// dependency-light).
func dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}
