package lsh

import (
	"math/rand"
	"testing"
)

func TestProbeSequenceShapes(t *testing.T) {
	f := testFamily(t, Params{Dim: 16, Tables: 6, Atoms: 3, Width: 1.0, Seed: 1})
	v := randomVec(rand.New(rand.NewSource(2)), 16)

	if got := f.ProbeSequence(v, 0); got != nil {
		t.Errorf("maxVariants=0 returned %d variants", len(got))
	}
	variants := f.ProbeSequence(v, 8)
	if len(variants) != 8 {
		t.Fatalf("got %d variants, want 8", len(variants))
	}
	// Costs ascending and in [0, 1].
	for i, pv := range variants {
		if pv.Cost < 0 || pv.Cost > 1 {
			t.Errorf("variant %d cost %v out of [0,1]", i, pv.Cost)
		}
		if i > 0 && pv.Cost < variants[i-1].Cost {
			t.Fatal("variants not cost-ordered")
		}
		if pv.Shift != 1 && pv.Shift != -1 {
			t.Errorf("variant %d shift %d", i, pv.Shift)
		}
	}
	// The full sequence has 2·l·k entries.
	all := f.ProbeSequence(v, 1000)
	if len(all) != 2*6*3 {
		t.Fatalf("full sequence %d, want %d", len(all), 2*6*3)
	}
}

func TestProbeVariantDiffersInExactlyOneTable(t *testing.T) {
	f := testFamily(t, Params{Dim: 16, Tables: 6, Atoms: 2, Width: 1.0, Seed: 3})
	v := randomVec(rand.New(rand.NewSource(4)), 16)
	base := f.Hash(v)
	for _, pv := range f.ProbeSequence(v, 24) {
		diff := 0
		for j := range base {
			if base[j] != pv.Meta[j] {
				if j != pv.Table {
					t.Fatalf("variant differs in table %d but claims table %d", j, pv.Table)
				}
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("variant differs in %d tables, want 1", diff)
		}
	}
}

// Perturbing toward the nearest boundary lands in the bucket a nearby
// point would occupy: a point just across the boundary hashes to the
// cheapest variant's metadata with decent probability.
func TestProbeSequenceRecall(t *testing.T) {
	f := testFamily(t, Params{Dim: 8, Tables: 4, Atoms: 1, Width: 1.0, Seed: 5})
	rng := rand.New(rand.NewSource(6))
	hits := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		v := randomVec(rng, 8)
		near := perturb(rng, v, 0.15)
		nearMeta := f.Hash(near)
		if f.Hash(v).Equal(nearMeta) {
			hits++ // exact bucket already
			continue
		}
		for _, pv := range f.ProbeSequence(v, 8) {
			if pv.Meta.Equal(nearMeta) {
				hits++
				break
			}
		}
	}
	if frac := float64(hits) / trials; frac < 0.7 {
		t.Errorf("multi-probe recall %.2f below 0.7", frac)
	}
}
