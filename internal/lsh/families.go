package lsh

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// The paper adopts Euclidean distance but notes that "various metrics,
// e.g., Euclidean, cosine, Jaccard distances, etc., work well" and leaves
// their comparison to future work (Sec. III-A). This file provides the
// matching LSH families so the secure index — which only ever sees opaque
// Metadata values — can be driven by any of the three:
//
//   - Family (lsh.go): p-stable E2LSH for Euclidean distance;
//   - SignFamily: random-hyperplane SimHash for cosine distance
//     (Charikar, STOC'02);
//   - MinHashFamily: min-wise hashing for Jaccard similarity of the
//     profiles' visual-word supports (Broder et al.).
//
// All three implement Hasher and are deterministic in their parameters,
// preserving the pre-shared-parameter deployment model.

// Hasher is the interface the secure-index pipeline needs from an LSH
// family: per-table composite hash values for a profile vector.
type Hasher interface {
	// Hash returns the l-entry metadata vector of v.
	Hash(v []float64) Metadata
	// NumTables returns l.
	NumTables() int
}

// Compile-time checks.
var (
	_ Hasher = (*Family)(nil)
	_ Hasher = (*SignFamily)(nil)
	_ Hasher = (*MinHashFamily)(nil)
)

// NumTables implements Hasher for the Euclidean family.
func (f *Family) NumTables() int { return f.params.Tables }

// SignParams defines a SimHash family.
type SignParams struct {
	// Dim is the vector dimensionality.
	Dim int
	// Tables is l.
	Tables int
	// Bits is the number of hyperplanes (sign bits) per table; two
	// vectors collide in a table when all bits agree.
	Bits int
	// Seed drives hyperplane generation.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p SignParams) Validate() error {
	switch {
	case p.Dim < 1:
		return fmt.Errorf("lsh: sign dim must be >= 1, got %d", p.Dim)
	case p.Tables < 1:
		return fmt.Errorf("lsh: sign tables must be >= 1, got %d", p.Tables)
	case p.Bits < 1 || p.Bits > 64:
		return fmt.Errorf("lsh: sign bits must be in [1,64], got %d", p.Bits)
	}
	return nil
}

// SignFamily is the random-hyperplane (SimHash) family for cosine
// distance: h(v) packs the signs of Bits random projections.
type SignFamily struct {
	params SignParams
	// planes[j][b] is hyperplane b of table j.
	planes [][][]float64
}

// NewSign instantiates a SimHash family.
func NewSign(p SignParams) (*SignFamily, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	f := &SignFamily{params: p, planes: make([][][]float64, p.Tables)}
	for j := range f.planes {
		f.planes[j] = make([][]float64, p.Bits)
		for b := range f.planes[j] {
			plane := make([]float64, p.Dim)
			for i := range plane {
				plane[i] = rng.NormFloat64()
			}
			f.planes[j][b] = plane
		}
	}
	return f, nil
}

// Params returns the defining parameters.
func (f *SignFamily) Params() SignParams { return f.params }

// NumTables implements Hasher.
func (f *SignFamily) NumTables() int { return f.params.Tables }

// HashTable returns table j's packed sign bits for v.
func (f *SignFamily) HashTable(v []float64, j int) uint64 {
	var bits uint64
	for b, plane := range f.planes[j] {
		var dot float64
		n := len(v)
		if len(plane) < n {
			n = len(plane)
		}
		for i := 0; i < n; i++ {
			dot += plane[i] * v[i]
		}
		if dot >= 0 {
			bits |= 1 << uint(b)
		}
	}
	return bits
}

// Hash implements Hasher.
func (f *SignFamily) Hash(v []float64) Metadata {
	m := make(Metadata, f.params.Tables)
	for j := range m {
		m[j] = f.HashTable(v, j)
	}
	return m
}

// MinHashParams defines a MinHash family over vector supports.
type MinHashParams struct {
	// Dim is the vector dimensionality (the universe of visual words).
	Dim int
	// Tables is l.
	Tables int
	// Hashes is the number of min-wise hash functions folded into each
	// table's value; two vectors collide when all of them agree.
	Hashes int
	// Seed drives hash-function generation.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p MinHashParams) Validate() error {
	switch {
	case p.Dim < 1:
		return fmt.Errorf("lsh: minhash dim must be >= 1, got %d", p.Dim)
	case p.Tables < 1:
		return fmt.Errorf("lsh: minhash tables must be >= 1, got %d", p.Tables)
	case p.Hashes < 1:
		return fmt.Errorf("lsh: minhash hashes must be >= 1, got %d", p.Hashes)
	}
	return nil
}

// MinHashFamily hashes the support set {i : v[i] > 0} of a profile — the
// set of visual words the user's images exhibit — with min-wise
// independent permutations, so collision probability equals the Jaccard
// similarity of two users' visual-word sets.
type MinHashFamily struct {
	params MinHashParams
	// perm[j][h][w] is the rank of word w under permutation h of table j,
	// stored as random 32-bit keys (min over keys ≙ min over permutation).
	perm [][][]uint32
}

// NewMinHash instantiates a MinHash family.
func NewMinHash(p MinHashParams) (*MinHashFamily, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	f := &MinHashFamily{params: p, perm: make([][][]uint32, p.Tables)}
	for j := range f.perm {
		f.perm[j] = make([][]uint32, p.Hashes)
		for h := range f.perm[j] {
			keys := make([]uint32, p.Dim)
			for w := range keys {
				keys[w] = rng.Uint32()
			}
			f.perm[j][h] = keys
		}
	}
	return f, nil
}

// Params returns the defining parameters.
func (f *MinHashFamily) Params() MinHashParams { return f.params }

// NumTables implements Hasher.
func (f *MinHashFamily) NumTables() int { return f.params.Tables }

// HashTable folds the Hashes min-values of table j over v's support.
func (f *MinHashFamily) HashTable(v []float64, j int) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, keys := range f.perm[j] {
		min := ^uint32(0)
		empty := true
		n := len(v)
		if len(keys) < n {
			n = len(keys)
		}
		for w := 0; w < n; w++ {
			if v[w] > 0 {
				empty = false
				if keys[w] < min {
					min = keys[w]
				}
			}
		}
		if empty {
			min = ^uint32(0)
		}
		buf[0] = byte(min >> 24)
		buf[1] = byte(min >> 16)
		buf[2] = byte(min >> 8)
		buf[3] = byte(min)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Hash implements Hasher.
func (f *MinHashFamily) Hash(v []float64) Metadata {
	m := make(Metadata, f.params.Tables)
	for j := range m {
		m[j] = f.HashTable(v, j)
	}
	return m
}
