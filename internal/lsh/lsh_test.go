package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func testFamily(t *testing.T, p Params) *Family {
	t.Helper()
	f, err := New(p)
	if err != nil {
		t.Fatalf("New(%+v): %v", p, err)
	}
	return f
}

func defaultParams() Params {
	return Params{Dim: 16, Tables: 8, Atoms: 3, Width: 1.0, Seed: 42}
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero dim", func(p *Params) { p.Dim = 0 }},
		{"zero tables", func(p *Params) { p.Tables = 0 }},
		{"zero atoms", func(p *Params) { p.Atoms = 0 }},
		{"zero width", func(p *Params) { p.Width = 0 }},
		{"negative width", func(p *Params) { p.Width = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := defaultParams()
			tt.mut(&p)
			if _, err := New(p); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := defaultParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestDeterminismAcrossInstances(t *testing.T) {
	p := defaultParams()
	f1 := testFamily(t, p)
	f2 := testFamily(t, p)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		v := randomVec(rng, p.Dim)
		if !f1.Hash(v).Equal(f2.Hash(v)) {
			t.Fatal("same Params must hash identically (shared-parameter property)")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	p := defaultParams()
	f1 := testFamily(t, p)
	p.Seed = 43
	f2 := testFamily(t, p)
	rng := rand.New(rand.NewSource(2))
	same := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		v := randomVec(rng, p.Dim)
		if f1.Hash(v).Equal(f2.Hash(v)) {
			same++
		}
	}
	if same == trials {
		t.Error("different seeds produced identical families")
	}
}

func TestHashSelfCollision(t *testing.T) {
	f := testFamily(t, defaultParams())
	v := randomVec(rand.New(rand.NewSource(3)), 16)
	if got := f.CollisionCount(v, v); got != 8 {
		t.Errorf("self collision count = %d, want 8", got)
	}
}

func TestAtomFloorsNegatives(t *testing.T) {
	f := testFamily(t, Params{Dim: 1, Tables: 1, Atoms: 1, Width: 1, Seed: 9})
	// Choose v so the projection is negative and non-integral; floor must
	// round toward -inf, matching ⌊·⌋ semantics.
	a := f.a[0][0][0]
	b := f.b[0][0]
	v := []float64{(-0.5 - b) / a}
	got := f.Atom(v, 0, 0)
	want := int64(math.Floor((a*v[0] + b) / 1))
	if got != want {
		t.Errorf("Atom = %d, want floor %d", got, want)
	}
}

// Locality: near points must collide in more tables than far points, on
// average. This is Definition 1's (r1, r2, p1, p2) gap, measured empirically.
func TestLocalitySensitivity(t *testing.T) {
	p := Params{Dim: 32, Tables: 12, Atoms: 2, Width: 4.0, Seed: 7}
	f := testFamily(t, p)
	rng := rand.New(rand.NewSource(11))

	const trials = 200
	var nearSum, farSum float64
	for i := 0; i < trials; i++ {
		base := randomVec(rng, p.Dim)
		near := perturb(rng, base, 0.2)
		far := perturb(rng, base, 8.0)
		nearSum += float64(f.CollisionCount(base, near))
		farSum += float64(f.CollisionCount(base, far))
	}
	nearAvg := nearSum / trials
	farAvg := farSum / trials
	if nearAvg <= farAvg {
		t.Errorf("locality violated: near avg %.2f <= far avg %.2f", nearAvg, farAvg)
	}
	if nearAvg < 6 { // near-duplicates should collide in most tables
		t.Errorf("near collision avg too low: %.2f", nearAvg)
	}
}

// Monotonicity: collision probability decreases as distance grows.
func TestCollisionMonotoneInDistance(t *testing.T) {
	p := Params{Dim: 16, Tables: 16, Atoms: 1, Width: 2.0, Seed: 21}
	f := testFamily(t, p)
	rng := rand.New(rand.NewSource(13))

	radii := []float64{0.1, 1.0, 4.0, 16.0}
	avgs := make([]float64, len(radii))
	const trials = 300
	for ri, r := range radii {
		var sum float64
		for i := 0; i < trials; i++ {
			base := randomVec(rng, p.Dim)
			sum += float64(f.CollisionCount(base, perturb(rng, base, r)))
		}
		avgs[ri] = sum / trials
	}
	for i := 1; i < len(avgs); i++ {
		if avgs[i] > avgs[i-1]+0.5 {
			t.Errorf("collision count not decreasing: radii %v -> avgs %v", radii, avgs)
			break
		}
	}
}

func TestMetadataBytes(t *testing.T) {
	m := Metadata{0x0102030405060708}
	got := m.Bytes(0)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bytes = %x, want %x", got, want)
		}
	}
}

func TestMetadataEqual(t *testing.T) {
	a := Metadata{1, 2, 3}
	if !a.Equal(Metadata{1, 2, 3}) {
		t.Error("equal metadata reported unequal")
	}
	if a.Equal(Metadata{1, 2}) {
		t.Error("length mismatch reported equal")
	}
	if a.Equal(Metadata{1, 2, 4}) {
		t.Error("value mismatch reported equal")
	}
}

func TestHashAll(t *testing.T) {
	f := testFamily(t, defaultParams())
	rng := rand.New(rand.NewSource(5))
	vs := [][]float64{randomVec(rng, 16), randomVec(rng, 16)}
	all := f.HashAll(vs)
	if len(all) != 2 {
		t.Fatalf("HashAll len = %d", len(all))
	}
	for i := range vs {
		if !all[i].Equal(f.Hash(vs[i])) {
			t.Errorf("HashAll[%d] differs from Hash", i)
		}
	}
}

func TestRehashChangesFamily(t *testing.T) {
	f := testFamily(t, defaultParams())
	g, err := f.Rehash(1234)
	if err != nil {
		t.Fatalf("Rehash: %v", err)
	}
	if g.Params().Seed == f.Params().Seed {
		t.Error("Rehash kept seed")
	}
	if g.Params().Tables != f.Params().Tables || g.Params().Dim != f.Params().Dim {
		t.Error("Rehash changed shape parameters")
	}
}

// Property: hashing is a pure function of the input vector.
func TestHashPureProperty(t *testing.T) {
	f, err := New(Params{Dim: 8, Tables: 4, Atoms: 2, Width: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fn := func(raw [8]float64) bool {
		v := make([]float64, 8)
		for i, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			v[i] = math.Mod(x, 100)
		}
		return f.Hash(v).Equal(f.Hash(v))
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// perturb returns base plus Gaussian noise scaled so the expected distance
// is roughly r.
func perturb(rng *rand.Rand, base []float64, r float64) []float64 {
	out := make([]float64, len(base))
	scale := r / math.Sqrt(float64(len(base)))
	for i := range base {
		out[i] = base[i] + rng.NormFloat64()*scale
	}
	return out
}

func BenchmarkHash1000Dim(b *testing.B) {
	f, err := New(Params{Dim: 1000, Tables: 10, Atoms: 4, Width: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	v := randomVec(rand.New(rand.NewSource(1)), 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Hash(v)
	}
}
