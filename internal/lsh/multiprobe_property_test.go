package lsh

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteProbe is one entry of the brute-force enumeration of every ±1
// single-atom perturbation: the reference ProbeSequence is checked against.
type bruteProbe struct {
	table, atom int
	shift       int64
	cost        float64
	meta        Metadata
}

// enumerateProbes builds all 2·l·k perturbed variants of v directly from
// the family's projections, independently of ProbeSequence's construction.
func enumerateProbes(f *Family, v []float64) []bruteProbe {
	p := f.Params()
	base := f.Hash(v)
	var all []bruteProbe
	for j := 0; j < p.Tables; j++ {
		for t := 0; t < p.Atoms; t++ {
			x := (dot(f.a[j][t], v) + f.b[j][t]) / p.Width
			frac := x - math.Floor(x)
			for _, s := range []struct {
				shift int64
				cost  float64
			}{{-1, frac}, {+1, 1 - frac}} {
				meta := append(Metadata(nil), base...)
				meta[j] = f.hashTableShifted(v, j, t, s.shift)
				all = append(all, bruteProbe{table: j, atom: t, shift: s.shift, cost: s.cost, meta: meta})
			}
		}
	}
	return all
}

// TestProbeSequenceProperties checks ProbeSequence against a brute-force
// enumeration of all ±1 single-atom shifts over seeded random inputs:
// variants are unique, bounded by maxVariants, cost-ordered, and their
// cost multiset matches the cheapest prefix of the enumeration. The
// autotuner and DiscoverMultiProbe both lean on this ordering.
func TestProbeSequenceProperties(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			Dim:    8 + rng.Intn(24),
			Tables: 1 + rng.Intn(6),
			Atoms:  1 + rng.Intn(4),
			Width:  0.4 + rng.Float64(),
			Seed:   seed,
		}
		f := testFamily(t, p)
		v := randomVec(rng, p.Dim)
		total := 2 * p.Tables * p.Atoms
		for _, maxVariants := range []int{1, 3, total, total + 7} {
			variants := f.ProbeSequence(v, maxVariants)
			checkProbeProperties(t, f, v, variants, maxVariants, seed)
		}
		if got := f.ProbeSequence(v, 0); got != nil {
			t.Errorf("seed %d: ProbeSequence(v, 0) = %d variants, want nil", seed, len(got))
		}
	}
}

func checkProbeProperties(t *testing.T, f *Family, v []float64, variants []ProbeVariant, maxVariants int, seed int64) {
	t.Helper()
	repro := func() string {
		return "repro: go test ./internal/lsh -run TestProbeSequenceProperties (deterministic, seed loop)"
	}
	p := f.Params()
	base := f.Hash(v)
	all := enumerateProbes(f, v)
	want := len(all)
	if want > maxVariants {
		want = maxVariants
	}
	if len(variants) != want {
		t.Fatalf("seed %d max %d: got %d variants, want %d; %s", seed, maxVariants, len(variants), want, repro())
	}

	seen := make(map[[3]int64]struct{}, len(variants))
	byKey := make(map[[3]int64]bruteProbe, len(all))
	for _, bp := range all {
		byKey[[3]int64{int64(bp.table), int64(bp.atom), bp.shift}] = bp
	}
	for i, pv := range variants {
		// Perturbation identity in range and unique.
		if pv.Table < 0 || pv.Table >= p.Tables || pv.Atom < 0 || pv.Atom >= p.Atoms || (pv.Shift != 1 && pv.Shift != -1) {
			t.Fatalf("seed %d: variant %d has invalid identity %+v; %s", seed, i, pv, repro())
		}
		key := [3]int64{int64(pv.Table), int64(pv.Atom), pv.Shift}
		if _, dup := seen[key]; dup {
			t.Fatalf("seed %d: duplicate perturbation (table=%d atom=%d shift=%d); %s", seed, pv.Table, pv.Atom, pv.Shift, repro())
		}
		seen[key] = struct{}{}
		// Cost ordering and bounds.
		if pv.Cost < 0 || pv.Cost > 1 {
			t.Fatalf("seed %d: variant %d cost %v out of [0,1]; %s", seed, i, pv.Cost, repro())
		}
		if i > 0 && variants[i-1].Cost > pv.Cost {
			t.Fatalf("seed %d: costs out of order at %d: %v > %v; %s", seed, i, variants[i-1].Cost, pv.Cost, repro())
		}
		// Agreement with the brute-force enumeration: same cost, same
		// metadata, and the metadata differs from the base in exactly
		// the perturbed table.
		bp, ok := byKey[key]
		if !ok {
			t.Fatalf("seed %d: variant %d not in brute-force enumeration; %s", seed, i, repro())
		}
		if math.Abs(pv.Cost-bp.cost) > 1e-12 {
			t.Fatalf("seed %d: variant %d cost %v, brute force says %v; %s", seed, i, pv.Cost, bp.cost, repro())
		}
		if !pv.Meta.Equal(bp.meta) {
			t.Fatalf("seed %d: variant %d metadata disagrees with brute force; %s", seed, i, repro())
		}
		diff := 0
		for j := range base {
			if pv.Meta[j] != base[j] {
				diff++
				if j != pv.Table {
					t.Fatalf("seed %d: variant %d changed table %d, declared %d; %s", seed, i, j, pv.Table, repro())
				}
			}
		}
		if diff > 1 {
			t.Fatalf("seed %d: variant %d differs from base in %d tables; %s", seed, i, diff, repro())
		}
	}

	// The returned prefix must be the cheapest one: its cost multiset
	// equals the first len(variants) costs of the sorted enumeration
	// (ties make the exact identities ambiguous, costs are not).
	bruteCosts := make([]float64, len(all))
	for i, bp := range all {
		bruteCosts[i] = bp.cost
	}
	sort.Float64s(bruteCosts)
	for i, pv := range variants {
		if math.Abs(pv.Cost-bruteCosts[i]) > 1e-12 {
			t.Fatalf("seed %d: prefix cost %d is %v, brute-force order says %v; %s", seed, i, pv.Cost, bruteCosts[i], repro())
		}
	}
}
