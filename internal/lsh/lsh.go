// Package lsh implements the locality-sensitive hashing substrate of PISD:
// the p-stable (Gaussian) E2LSH family for Euclidean distance of Andoni &
// Indyk, composed into l table-level hash functions as used by the paper's
// ComputeLSH(S, h) user function (Sec. II-C and III-A).
//
// Each of the l tables owns k atomic functions h_{a,b}(v) = ⌊(a·v + b)/W⌋;
// a table's value for a vector is the 64-bit FNV-1a digest of its k atom
// outputs. Two vectors agree on a table exactly when all k atoms agree,
// which sharpens the collision-probability gap between near and far points.
//
// The family is generated deterministically from Params (including a seed),
// so the service front end can pre-share the parameters h with every user
// client, exactly as the paper's SF shares the LSH parameter set.
package lsh

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"pisd/internal/vec"
)

// Params fully determines an LSH family. Sharing Params is sharing the
// family: New is a pure function of Params.
type Params struct {
	// Dim is the dimensionality of hashed vectors (the vocabulary size m).
	Dim int
	// Tables is l, the number of hash tables / metadata entries.
	Tables int
	// Atoms is k, the number of atomic p-stable functions per table.
	Atoms int
	// Width is the quantization width W of each atom. Smaller widths
	// separate points more aggressively.
	Width float64
	// Seed drives the deterministic generation of the random projections.
	Seed int64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Dim < 1:
		return fmt.Errorf("lsh: dim must be >= 1, got %d", p.Dim)
	case p.Tables < 1:
		return fmt.Errorf("lsh: tables must be >= 1, got %d", p.Tables)
	case p.Atoms < 1:
		return fmt.Errorf("lsh: atoms must be >= 1, got %d", p.Atoms)
	case p.Width <= 0:
		return fmt.Errorf("lsh: width must be > 0, got %v", p.Width)
	}
	return nil
}

// Metadata is the user metadata V = {h_1(S), ..., h_l(S)}: one composite
// LSH value per table.
type Metadata []uint64

// Bytes returns the 8-byte big-endian encoding of table j's value, the PRF
// input used when locating secure-index buckets.
func (m Metadata) Bytes(j int) []byte {
	v := m[j]
	return []byte{
		byte(v >> 56), byte(v >> 48), byte(v >> 40), byte(v >> 32),
		byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v),
	}
}

// Equal reports whether two metadata vectors are identical in every table.
func (m Metadata) Equal(o Metadata) bool {
	if len(m) != len(o) {
		return false
	}
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Family is an instantiated LSH family.
type Family struct {
	params Params
	// a[j][t] is the projection vector of table j's atom t.
	a [][][]float64
	// b[j][t] is the offset of table j's atom t, uniform in [0, W).
	b [][]float64
}

// New instantiates the family described by p. The construction is
// deterministic in p, so distributed parties holding the same Params hash
// identically.
func New(p Params) (*Family, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	f := &Family{
		params: p,
		a:      make([][][]float64, p.Tables),
		b:      make([][]float64, p.Tables),
	}
	for j := 0; j < p.Tables; j++ {
		f.a[j] = make([][]float64, p.Atoms)
		f.b[j] = make([]float64, p.Atoms)
		for t := 0; t < p.Atoms; t++ {
			proj := make([]float64, p.Dim)
			for i := range proj {
				proj[i] = rng.NormFloat64()
			}
			f.a[j][t] = proj
			f.b[j][t] = rng.Float64() * p.Width
		}
	}
	return f, nil
}

// Params returns the defining parameters of the family.
func (f *Family) Params() Params { return f.params }

// Atom evaluates the raw quantized projection of table j's atom t on v.
func (f *Family) Atom(v []float64, j, t int) int64 {
	x := (vec.Dot(f.a[j][t], v) + f.b[j][t]) / f.params.Width
	// Floor for negatives as well.
	n := int64(x)
	if x < 0 && float64(n) != x {
		n--
	}
	return n
}

// HashTable returns the composite value of table j on v: the FNV-1a digest
// of the k atom outputs.
func (f *Family) HashTable(v []float64, j int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for t := 0; t < f.params.Atoms; t++ {
		n := uint64(f.Atom(v, j, t))
		buf[0] = byte(n >> 56)
		buf[1] = byte(n >> 48)
		buf[2] = byte(n >> 40)
		buf[3] = byte(n >> 32)
		buf[4] = byte(n >> 24)
		buf[5] = byte(n >> 16)
		buf[6] = byte(n >> 8)
		buf[7] = byte(n)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Hash implements the paper's ComputeLSH(S, h): it returns the user
// metadata V for profile v.
func (f *Family) Hash(v []float64) Metadata {
	m := make(Metadata, f.params.Tables)
	for j := range m {
		m[j] = f.HashTable(v, j)
	}
	return m
}

// HashAll hashes a batch of vectors.
func (f *Family) HashAll(vs [][]float64) []Metadata {
	out := make([]Metadata, len(vs))
	for i, v := range vs {
		out[i] = f.Hash(v)
	}
	return out
}

// Rehash returns a fresh family with identical shape parameters but a new
// seed, used when the secure index must be rebuilt after insertion failure
// (Algorithm 1's rehash()).
func (f *Family) Rehash(newSeed int64) (*Family, error) {
	p := f.params
	p.Seed = newSeed
	return New(p)
}

// CollisionCount returns in how many of the l tables a and b collide.
// It quantifies the locality the secure index preserves.
func (f *Family) CollisionCount(a, b []float64) int {
	n := 0
	for j := 0; j < f.params.Tables; j++ {
		if f.HashTable(a, j) == f.HashTable(b, j) {
			n++
		}
	}
	return n
}
