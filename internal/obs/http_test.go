package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("cloud.buckets_unmasked").Add(36)
	r.Histogram("shard.0.secrec").Observe(12345)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var flat map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	if flat["cloud.buckets_unmasked"] != 36 {
		t.Fatalf("buckets_unmasked = %d", flat["cloud.buckets_unmasked"])
	}
	if _, ok := flat["shard.0.secrec_p99_ns"]; !ok {
		t.Fatalf("missing derived histogram key, got keys %v", flat)
	}
}

func TestMetricsRawEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics/raw")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["x"] != 1 {
		t.Fatalf("raw counters = %v", snap.Counters)
	}
}

func TestPprofEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80s", resp.StatusCode, body)
	}
}

func TestServeBindsEphemeral(t *testing.T) {
	addr, err := Serve(NewRegistry(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
