package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("x"); c2 != c {
		t.Fatalf("Counter not get-or-create stable")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	// Every metric method must be a no-op on nil receivers — this is the
	// disabled mode the instrumented tiers rely on.
	var c *Counter
	c.Add(1)
	c.Inc()
	if c.Load() != 0 {
		t.Fatal("nil counter load")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Load() != 0 {
		t.Fatal("nil gauge load")
	}
	var sc *StripedCounter
	sc.Add(9, 5)
	if sc.Load() != 0 {
		t.Fatal("nil striped load")
	}
	var h *Histogram
	h.Observe(100)
	h.ObserveSince(time.Now())
	var r *Registry
	if r.Counter("a") != nil || r.Gauge("b") != nil || r.Histogram("c") != nil || r.Striped("d") != nil {
		t.Fatal("nil registry must return nil handles")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tr *Trace
	tr.add("x", time.Second)
	tr.finish(time.Second)
	_ = tr.String()
	var sp Span
	sp.Mark("stage", nil) // unarmed span: no-op
	sp.Finish(nil)
	var nsp *Span
	nsp.Start()
	nsp.StartTraced(nil)
	nsp.Mark("stage", nil)
	nsp.Finish(nil)
}

func TestStripedCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	sc := r.Striped("ops")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(hint uint32) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sc.Add(hint, 1)
			}
		}(uint32(w))
	}
	wg.Wait()
	if got := sc.Load(); got != workers*perWorker {
		t.Fatalf("striped total = %d, want %d", got, workers*perWorker)
	}
	if snap := r.Snapshot(); snap.Counters["ops"] != workers*perWorker {
		t.Fatalf("snapshot striped = %d", snap.Counters["ops"])
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	// Bucket index must be monotone in the value and the upper bound must
	// actually bound every value mapped into the bucket.
	prev := -1
	for _, v := range []int64{0, 1, 2, 7, 8, 9, 15, 16, 17, 100, 1000, 4095, 4096, 1 << 20, 1 << 30, 1 << 40, 1 << 50} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%d)=%d < previous %d", v, idx, prev)
		}
		prev = idx
		if idx < histBuckets-1 && v >= bucketUpper(idx) {
			t.Fatalf("value %d >= upper bound %d of its bucket %d", v, bucketUpper(idx), idx)
		}
	}
	// Relative error of the bucket upper bound stays within 1/histSub.
	for v := int64(histSub); v < 1<<30; v = v*5/4 + 1 {
		up := bucketUpper(bucketIndex(v))
		if up < v {
			t.Fatalf("upper bound %d below value %d", up, v)
		}
		if float64(up-v) > float64(v)/float64(histSub)+1 {
			t.Fatalf("bucket error too large: v=%d upper=%d", v, up)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms
	}
	s := h.snap()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 1000000 {
		t.Fatalf("max = %d", s.Max)
	}
	p50 := s.Quantile(0.50)
	if p50 < 400000 || p50 > 650000 {
		t.Fatalf("p50 = %d, want ~500000", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 900000 || p99 > 1000000 {
		t.Fatalf("p99 = %d, want ~990000 (<= max)", p99)
	}
	if q := s.Quantile(1.0); q > s.Max {
		t.Fatalf("p100 %d beyond max %d", q, s.Max)
	}
	if m := s.Mean(); m < 450000 || m > 550000 {
		t.Fatalf("mean = %d", m)
	}
	var empty HistSnap
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snap quantile/mean must be 0")
	}
}

func TestSnapshotDiffAndFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Gauge("g").Set(3)
	h := r.Histogram("lat")
	h.Observe(1000)
	h.Observe(2000)

	before := r.Snapshot()
	r.Counter("a").Add(5)
	r.Gauge("g").Set(9)
	h.Observe(3000)
	after := r.Snapshot()

	d := after.Diff(before)
	if d.Counters["a"] != 5 {
		t.Fatalf("diff counter = %d, want 5", d.Counters["a"])
	}
	if d.Gauges["g"] != 9 {
		t.Fatalf("diff gauge = %d, want current value 9", d.Gauges["g"])
	}
	hd := d.Histograms["lat"]
	if hd.Count != 1 || hd.Sum != 3000 {
		t.Fatalf("diff hist count=%d sum=%d, want 1/3000", hd.Count, hd.Sum)
	}

	flat := after.Flatten()
	for _, key := range []string{"a", "g", "lat_count", "lat_sum_ns", "lat_avg_ns", "lat_p50_ns", "lat_p99_ns", "lat_max_ns"} {
		if _, ok := flat[key]; !ok {
			t.Fatalf("flatten missing key %q", key)
		}
	}
	if flat["lat_count"] != 3 || flat["lat_sum_ns"] != 6000 || flat["lat_max_ns"] != 3000 {
		t.Fatalf("flatten hist values wrong: %v", flat)
	}
	keys := after.Keys()
	if len(keys) != len(flat) {
		t.Fatalf("Keys() size mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Keys() not sorted")
		}
	}
}

func TestSpanAndTrace(t *testing.T) {
	r := NewRegistry()
	hA := r.Histogram("stage_a")
	hB := r.Histogram("stage_b")
	hT := r.Histogram("total")

	tr := NewTrace("discover")
	var sp Span
	sp.StartTraced(tr)
	time.Sleep(2 * time.Millisecond)
	sp.Mark("a", hA)
	time.Sleep(1 * time.Millisecond)
	sp.Mark("b", hB)
	sp.Finish(hT)

	sa, sb, st := hA.snap(), hB.snap(), hT.snap()
	if sa.Count != 1 || sb.Count != 1 || st.Count != 1 {
		t.Fatalf("stage counts: %d %d %d", sa.Count, sb.Count, st.Count)
	}
	if sa.Sum < int64(2*time.Millisecond) {
		t.Fatalf("stage a too short: %d", sa.Sum)
	}
	if st.Sum < sa.Sum+sb.Sum-int64(time.Millisecond) {
		t.Fatalf("total %d shorter than stages %d+%d", st.Sum, sa.Sum, sb.Sum)
	}
	if len(tr.Stages) != 2 || tr.Stages[0].Name != "a" || tr.Stages[1].Name != "b" {
		t.Fatalf("trace stages: %+v", tr.Stages)
	}
	if tr.Total <= 0 {
		t.Fatal("trace total not set")
	}
	if s := tr.String(); s == "" {
		t.Fatal("trace string empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < per; i++ {
				h.Observe(base + i)
			}
		}(int64(w) * 1000)
	}
	wg.Wait()
	s := h.snap()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var sum int64
	for _, c := range s.Buckets {
		sum += c
	}
	if sum != s.Count {
		t.Fatalf("bucket sum %d != count %d", sum, s.Count)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := &Counter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkStripedAdd(b *testing.B) {
	c := &StripedCounter{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(3, 1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) & 0xfffff)
	}
}
