// Package obs is the stdlib-only observability substrate of the system:
// atomic counters and gauges, lock-free fixed-bucket log-scale histograms,
// striped counters for contended hot paths, a lightweight per-query trace
// span API with monotonic timestamps, and a Registry whose Snapshot/Diff
// pair turns the live counters into the per-stage breakdowns the paper's
// evaluation (Sec. VI) reports from one-off scripts.
//
// Design constraints, in order:
//
//  1. Hot-path safety. Every mutation is a plain atomic operation on
//     preallocated state — no locks, no maps, no allocation. PR 2/3's
//     zero-allocation fast paths stay zero-allocation when instrumented.
//  2. Nil safety. Every method of every metric type is a no-op on a nil
//     receiver, so instrumented code never guards a handle: disabling
//     observability is setting handles to nil, not recompiling.
//  3. Leakage discipline. Metrics record counts, sizes and timings of
//     operations the cloud already observes (access pattern, constant
//     per-query bucket count, frame traffic) — nothing derived from key
//     material or plaintext. See DESIGN.md §13.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value (0 for nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (in-flight requests, open
// connections). The zero value is ready; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value (0 for nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// stripes is the cell count of a StripedCounter. Sixteen 64-byte-padded
// cells keep a counter hammered from every core off a single cache line.
const stripes = 16

// stripedCell is one cache-line-padded counter cell.
type stripedCell struct {
	v atomic.Int64
	_ [56]byte
}

// StripedCounter is a counter for hot paths touched concurrently by many
// cores (per-PRF-call op counts): adds land on one of 16 padded cells
// chosen by a caller-supplied hint, so parallel writers do not bounce one
// cache line. Reads sum the cells. A nil *StripedCounter is a no-op.
type StripedCounter struct {
	cells [stripes]stripedCell
}

// Add increments the counter by d. hint selects the cell; callers pass a
// cheap per-goroutine-ish value (e.g. a pooled scratch's identity) so
// concurrent writers spread across cells. Any hint is correct — only
// contention, never the total, depends on it.
func (c *StripedCounter) Add(hint uint32, d int64) {
	if c != nil {
		c.cells[hint%stripes].v.Add(d)
	}
}

// Load returns the summed value (0 for nil).
func (c *StripedCounter) Load() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Histogram bucket layout: values (nanoseconds, bytes, counts — any
// non-negative int64) are assigned to fixed log-scale buckets with 8
// sub-buckets per power of two, covering [0, 2^40) with the last bucket
// absorbing everything larger. 2^40 ns ≈ 18 minutes, far beyond any
// per-query latency this system produces; relative bucket error is ≤ 1/8.
const (
	histSubBits = 3                             // sub-buckets per octave = 2^3
	histSub     = 1 << histSubBits              // 8
	histOctaves = 40                            // value range [0, 2^40)
	histBuckets = histOctaves*histSub + histSub // + the [0, 2^histSubBits) ramp
)

// Histogram is a lock-free fixed-bucket log-scale histogram. Observe is a
// few atomic adds on preallocated arrays: no locks, no allocation. The
// zero value is ready; a nil *Histogram is a no-op.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v) // exact buckets for tiny values
	}
	exp := bits.Len64(uint64(v)) - 1 // position of the top bit, >= histSubBits
	sub := int((uint64(v) >> (uint(exp) - histSubBits)) & (histSub - 1))
	idx := (exp-histSubBits+1)*histSub + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper returns the exclusive upper bound of bucket idx, the value
// reported for quantiles that land in it.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx) + 1
	}
	exp := idx/histSub - 1 + histSubBits
	sub := idx % histSub
	return int64(histSub+sub+1) << (uint(exp) - histSubBits)
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start in nanoseconds.
// time.Since reads the monotonic clock, so recorded durations are immune
// to wall-clock adjustment.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// snap copies the histogram state into a HistSnap.
func (h *Histogram) snap() HistSnap {
	s := HistSnap{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.counts {
		if c := h.counts[i].Load(); c != 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64, 16)
			}
			s.Buckets[i] = c
		}
	}
	return s
}

// HistSnap is an immutable snapshot of a histogram: total count, sum and
// max plus the sparse bucket counts.
type HistSnap struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets map[int]int64 // bucket index -> count; nil when empty
}

// Quantile returns the value at quantile q in [0, 1] (the upper bound of
// the bucket where the cumulative count crosses q), or 0 when empty.
func (s HistSnap) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count-1))
	var cum int64
	for idx := 0; idx < histBuckets; idx++ {
		c, ok := s.Buckets[idx]
		if !ok {
			continue
		}
		cum += c
		if cum > rank {
			v := bucketUpper(idx)
			if v > s.Max && s.Max > 0 {
				return s.Max // never report beyond the observed max
			}
			return v
		}
	}
	return s.Max
}

// Mean returns the exact mean of observed values, or 0 when empty.
func (s HistSnap) Mean() int64 {
	if s.Count <= 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Diff returns the histogram activity between prev and s: bucket counts,
// count and sum subtract. Max cannot be windowed from two cumulative
// snapshots; the diff keeps s's lifetime max.
func (s HistSnap) Diff(prev HistSnap) HistSnap {
	out := HistSnap{
		Count: s.Count - prev.Count,
		Sum:   s.Sum - prev.Sum,
		Max:   s.Max,
	}
	for idx, c := range s.Buckets {
		if d := c - prev.Buckets[idx]; d != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]int64, len(s.Buckets))
			}
			out.Buckets[idx] = d
		}
	}
	return out
}

// Registry is a named collection of metrics. All accessors are
// get-or-create and safe for concurrent use; handles are stable for the
// registry's lifetime, so hot paths resolve them once and never touch the
// registry lock again. A nil *Registry hands out nil handles, which are
// themselves no-ops: a nil registry IS the disabled mode.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	striped  map[string]*StripedCounter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		striped:  make(map[string]*StripedCounter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the tier packages register their
// metrics in and the /metrics endpoint serves. Replaceable in tests via
// the tiers' SetRegistry hooks, not swapped at runtime.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Striped returns the named striped counter, creating it on first use.
func (r *Registry) Striped(name string) *StripedCounter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.striped[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.striped[name]; c == nil {
		c = &StripedCounter{}
		r.striped[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Histogram names carry no unit suffix; Flatten derives suffixed keys
// (<name>_p99_ns, ...) from them.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a consistent-enough point-in-time copy of a registry:
// counters and gauges by name plus full histogram state. Individual
// metrics are read atomically; the set is not a global atomic cut (queries
// in flight during the snapshot may straddle it), which is the standard
// and sufficient contract for rate and breakdown computation.
type Snapshot struct {
	At         time.Time
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistSnap
}

// Snapshot captures the current state of every registered metric.
// Striped counters appear in Counters under their registered name.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{At: time.Now()}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s.Counters = make(map[string]int64, len(r.counters)+len(r.striped))
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, c := range r.striped {
		s.Counters[name] = c.Load()
	}
	s.Gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	s.Histograms = make(map[string]HistSnap, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = h.snap()
	}
	return s
}

// Diff returns the activity between prev and s: counters and histogram
// counts/sums subtract (a metric absent from prev diffs against zero);
// gauges keep their current value (instantaneous readings do not
// subtract). Benchmarks and the experiment harness bracket a workload with
// two Snapshots and report the Diff.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		At:         s.At,
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistSnap, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		out.Histograms[name] = h.Diff(prev.Histograms[name])
	}
	return out
}

// Flatten renders the snapshot as one flat name → value map: counters and
// gauges under their own names, each histogram as derived keys
// <name>_count, <name>_sum_ns, <name>_avg_ns, <name>_p50_ns, <name>_p99_ns
// and <name>_max_ns. This is the /metrics JSON body and the shape CI
// smoke checks assert on.
func (s Snapshot) Flatten() map[string]int64 {
	out := make(map[string]int64, len(s.Counters)+len(s.Gauges)+6*len(s.Histograms))
	for name, v := range s.Counters {
		out[name] = v
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, h := range s.Histograms {
		out[name+"_count"] = h.Count
		out[name+"_sum_ns"] = h.Sum
		out[name+"_avg_ns"] = h.Mean()
		out[name+"_p50_ns"] = h.Quantile(0.50)
		out[name+"_p99_ns"] = h.Quantile(0.99)
		out[name+"_max_ns"] = h.Max
	}
	return out
}

// Keys returns the flattened metric names in sorted order.
func (s Snapshot) Keys() []string {
	flat := s.Flatten()
	keys := make([]string, 0, len(flat))
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Span is the per-query trace primitive: a value type (no heap, no
// allocation) that splits one operation into consecutive stages and feeds
// each stage's duration into a histogram. Timestamps are monotonic
// (time.Time's monotonic reading). The zero Span is inert; Start arms it.
//
//	var sp obs.Span
//	sp.Start()
//	... trapdoor ...
//	sp.Mark(m.trapdoorNs, nil)
//	... fan-out ...
//	sp.Mark(m.fanoutNs, nil)
//	sp.Finish(m.totalNs)
type Span struct {
	start time.Time
	last  time.Time
	tr    *Trace
}

// Start arms the span at the current monotonic time. A nil *Span is a
// no-op (as are all Span methods), so instrumented helpers can take an
// optional span without guarding.
func (s *Span) Start() {
	if s == nil {
		return
	}
	now := time.Now()
	s.start = now
	s.last = now
}

// StartTraced arms the span and attaches a Trace that records every
// subsequent stage with its name; tr may be nil (plain Start).
func (s *Span) StartTraced(tr *Trace) {
	if s == nil {
		return
	}
	s.Start()
	s.tr = tr
}

// Mark closes the current stage: the time since the previous Mark (or
// Start) is observed into h and, when a trace is attached, recorded under
// name. Nil or unarmed spans are no-ops.
func (s *Span) Mark(name string, h *Histogram) {
	if s == nil || s.start.IsZero() {
		return
	}
	now := time.Now()
	d := now.Sub(s.last)
	s.last = now
	h.Observe(d.Nanoseconds())
	s.tr.add(name, d)
}

// Finish closes the span: the time since Start is observed into h and
// recorded in the attached trace as the total.
func (s *Span) Finish(h *Histogram) {
	if s == nil || s.start.IsZero() {
		return
	}
	total := time.Since(s.start)
	h.Observe(total.Nanoseconds())
	s.tr.finish(total)
}

// Stage is one named step of a Trace.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Trace is the allocating, human-facing form of a span: it records each
// stage with its name so a single query's latency breakdown can be
// returned to a caller or logged. Traces are single-goroutine state. A nil
// *Trace is a no-op, so the same instrumented path serves both traced and
// untraced queries.
type Trace struct {
	Op     string
	Stages []Stage
	Total  time.Duration
}

// NewTrace returns an empty trace for the named operation.
func NewTrace(op string) *Trace { return &Trace{Op: op} }

func (t *Trace) add(name string, d time.Duration) {
	if t != nil {
		t.Stages = append(t.Stages, Stage{Name: name, Dur: d})
	}
}

func (t *Trace) finish(total time.Duration) {
	if t != nil {
		t.Total = total
	}
}

// String renders the trace as a one-line breakdown:
// "discover total=1.2ms trapdoor=0.3ms fanout=0.7ms rank=0.2ms".
func (t *Trace) String() string {
	if t == nil {
		return "<nil trace>"
	}
	out := t.Op + " total=" + t.Total.String()
	for _, s := range t.Stages {
		out += fmt.Sprintf(" %s=%s", s.Name, s.Dur)
	}
	return out
}
