package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry's observability
// surface:
//
//	/metrics        flat JSON snapshot (Snapshot().Flatten())
//	/metrics/raw    full structured snapshot (counters, gauges, histograms)
//	/debug/pprof/*  the standard runtime profiles
//
// The pprof handlers are wired explicitly onto the returned mux rather
// than imported for their DefaultServeMux side effect, so enabling
// observability never exposes profiles on a mux the caller did not ask
// for.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot().Flatten())
	})
	mux.HandleFunc("/metrics/raw", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts an HTTP server for Handler(r) on addr in a new goroutine
// and returns the listener address actually bound (useful with ":0").
// Errors after startup are ignored — observability must never take the
// serving path down. The server runs until process exit.
func Serve(r *Registry, addr string) (string, error) {
	srv := &http.Server{Addr: addr, Handler: Handler(r)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
