package vec

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// tame maps quick-generated floats into a bounded range so that property
// tests exercise algebraic identities rather than float overflow.
func tame(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 0
		}
		out[i] = math.Mod(x, 1e6)
	}
	return out
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"parallel", []float64{1, 2, 3}, []float64{1, 2, 3}, 14},
		{"negative", []float64{-1, 2}, []float64{3, 4}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEqual(got, tt.want) {
				t.Errorf("Dot() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCheckedDotMismatch(t *testing.T) {
	if _, err := CheckedDot([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("expected ErrDimensionMismatch, got %v", err)
	}
	got, err := CheckedDot([]float64{2, 3}, []float64{4, 5})
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !almostEqual(got, 23) {
		t.Errorf("CheckedDot = %v, want 23", got)
	}
}

func TestDistance(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 2, 2}
	if got := Distance(a, b); !almostEqual(got, 3) {
		t.Errorf("Distance = %v, want 3", got)
	}
	if got := Distance(a, a); !almostEqual(got, 0) {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestSquaredDistanceUnequalLengths(t *testing.T) {
	// Shorter vector is zero-padded.
	if got := SquaredDistance([]float64{3}, []float64{3, 4}); !almostEqual(got, 16) {
		t.Errorf("SquaredDistance = %v, want 16", got)
	}
	if got := SquaredDistance([]float64{3, 4}, []float64{3}); !almostEqual(got, 16) {
		t.Errorf("SquaredDistance = %v, want 16", got)
	}
}

func TestCheckedDistanceMismatch(t *testing.T) {
	if _, err := CheckedDistance([]float64{1}, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("expected ErrDimensionMismatch, got %v", err)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{2, 0}); !almostEqual(got, 1) {
		t.Errorf("cos parallel = %v, want 1", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 5}); !almostEqual(got, 0) {
		t.Errorf("cos orthogonal = %v, want 0", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("cos with zero vector = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	Normalize(v)
	if !almostEqual(Norm(v), 1) {
		t.Errorf("norm after Normalize = %v, want 1", Norm(v))
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector changed: %v", z)
	}
}

func TestNormalizeL1(t *testing.T) {
	v := []float64{1, 3}
	NormalizeL1(v)
	if !almostEqual(v[0]+v[1], 1) {
		t.Errorf("L1 sum = %v, want 1", v[0]+v[1])
	}
}

func TestAdd(t *testing.T) {
	a := []float64{1, 2}
	if _, err := Add(a, []float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("expected mismatch error, got %v", err)
	}
	got, err := Add(a, []float64{10, 20})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if got[0] != 11 || got[1] != 22 {
		t.Errorf("Add result %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases input")
	}
}

func TestTopKAgainstSortOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(20)
		scores := make([]float64, n)
		tk := NewTopK(k)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			tk.Offer(uint64(i), scores[i])
		}
		got := tk.Sorted()
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("trial %d: len=%d want %d", trial, len(got), wantLen)
		}
		for i, s := range got {
			if !almostEqual(s.Score, sorted[i]) {
				t.Fatalf("trial %d: rank %d score %v want %v", trial, i, s.Score, sorted[i])
			}
		}
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK(2)
	if !math.IsInf(tk.Threshold(), 1) {
		t.Error("empty threshold should be +Inf")
	}
	tk.Offer(1, 5)
	tk.Offer(2, 3)
	if got := tk.Threshold(); !almostEqual(got, 5) {
		t.Errorf("threshold = %v, want 5", got)
	}
	tk.Offer(3, 1)
	if got := tk.Threshold(); !almostEqual(got, 3) {
		t.Errorf("threshold = %v, want 3", got)
	}
}

func TestNewTopKClampsK(t *testing.T) {
	tk := NewTopK(0)
	tk.Offer(1, 1)
	tk.Offer(2, 0.5)
	got := tk.Sorted()
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("clamped TopK got %v", got)
	}
}

func TestArgNearest(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	idx, d := ArgNearest([]float64{9, 1}, centers)
	if idx != 1 {
		t.Errorf("ArgNearest idx = %d, want 1", idx)
	}
	if !almostEqual(d, 2) {
		t.Errorf("ArgNearest dist = %v, want 2", d)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != nil {
		t.Error("Mean(nil) should be nil")
	}
	m := Mean([][]float64{{1, 2}, {3, 4}})
	if !almostEqual(m[0], 2) || !almostEqual(m[1], 3) {
		t.Errorf("Mean = %v", m)
	}
}

// Property: triangle inequality for Euclidean distance.
func TestDistanceTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c [8]float64) bool {
		x, y, z := tame(a[:]), tame(b[:]), tame(c[:])
		ab := Distance(x, y)
		bc := Distance(y, z)
		ac := Distance(x, z)
		return ac <= ab+bc+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: distance is symmetric and non-negative, zero iff equal inputs.
func TestDistanceMetricProperties(t *testing.T) {
	f := func(a, b [6]float64) bool {
		x, y := tame(a[:]), tame(b[:])
		d1 := Distance(x, y)
		d2 := Distance(y, x)
		if d1 < 0 || math.Abs(d1-d2) > 1e-12 {
			return false
		}
		return Distance(x, x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Normalize yields unit norm for any non-zero vector.
func TestNormalizeUnitProperty(t *testing.T) {
	f := func(a [10]float64) bool {
		v := tame(a[:])
		if Norm(v) == 0 {
			return true
		}
		Normalize(v)
		return math.Abs(Norm(v)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |a.b| <= |a||b|.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [7]float64) bool {
		x, y := tame(a[:]), tame(b[:])
		return math.Abs(Dot(x, y)) <= Norm(x)*Norm(y)*(1+1e-12)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSquaredDistance1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i], y[i] = rng.Float64(), rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SquaredDistance(x, y)
	}
}

func TestCosineDistance(t *testing.T) {
	if got := CosineDistance([]float64{1, 0}, []float64{2, 0}); !almostEqual(got, 0) {
		t.Errorf("parallel cosine distance = %v", got)
	}
	if got := CosineDistance([]float64{1, 0}, []float64{0, 1}); !almostEqual(got, 1) {
		t.Errorf("orthogonal cosine distance = %v", got)
	}
	if got := CosineDistance([]float64{1, 0}, []float64{-1, 0}); !almostEqual(got, 2) {
		t.Errorf("antiparallel cosine distance = %v", got)
	}
}

func TestJaccardDistance(t *testing.T) {
	a := []float64{1, 1, 0, 0}
	b := []float64{0, 1, 1, 0}
	// supports {0,1} and {1,2}: intersection 1, union 3.
	if got := JaccardDistance(a, b); !almostEqual(got, 1-1.0/3) {
		t.Errorf("JaccardDistance = %v", got)
	}
	if got := JaccardDistance(a, a); !almostEqual(got, 0) {
		t.Errorf("self distance = %v", got)
	}
	zero := []float64{0, 0}
	if got := JaccardDistance(zero, zero); got != 0 {
		t.Errorf("zero-zero distance = %v", got)
	}
	// Unequal lengths: missing entries are absent from the support.
	if got := JaccardDistance([]float64{1}, []float64{1, 1}); !almostEqual(got, 0.5) {
		t.Errorf("ragged JaccardDistance = %v", got)
	}
}
