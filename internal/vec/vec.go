// Package vec provides the dense float64 vector operations used throughout
// the PISD system: distance computation between user image profiles,
// normalization of aggregated Bag-of-Words histograms, and top-K nearest
// selection for recommendation ranking.
//
// All functions treat vectors as plain []float64 slices and never retain
// references to their arguments.
package vec

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two vectors of different lengths are
// combined in an operation that requires equal dimensionality.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// Dot returns the inner product of a and b.
// It panics with ErrDimensionMismatch semantics avoided: callers must ensure
// len(a) == len(b); mismatched lengths return an error via checked variants.
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// CheckedDot is Dot with an explicit dimension check.
func CheckedDot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return Dot(a, b), nil
}

// Norm returns the Euclidean (L2) norm of v.
func Norm(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// Distance returns the Euclidean distance between a and b. The paper adopts
// Euclidean distance as the closeness metric between image profile vectors
// (Sec. III-A).
func Distance(a, b []float64) float64 {
	return math.Sqrt(SquaredDistance(a, b))
}

// SquaredDistance returns the squared Euclidean distance between a and b.
// It is the preferred primitive for ranking since it avoids the square root.
func SquaredDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	// Treat missing trailing coordinates of the shorter vector as zeros so
	// the function is total; checked variants enforce equal dims.
	for i := n; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return s
}

// CheckedDistance is Distance with an explicit dimension check.
func CheckedDistance(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return Distance(a, b), nil
}

// CosineSimilarity returns the cosine of the angle between a and b,
// or 0 when either vector has zero norm.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineDistance returns 1 − cos(a, b), the cosine dissimilarity.
func CosineDistance(a, b []float64) float64 {
	return 1 - CosineSimilarity(a, b)
}

// JaccardDistance returns 1 − |supp(a) ∩ supp(b)| / |supp(a) ∪ supp(b)|,
// treating the vectors as sets of active entries (v[i] > 0). Two zero
// vectors have distance 0.
func JaccardDistance(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var inter, union int
	for i := 0; i < n; i++ {
		av := i < len(a) && a[i] > 0
		bv := i < len(b) && b[i] > 0
		if av || bv {
			union++
			if av && bv {
				inter++
			}
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}

// Normalize scales v in place to unit L2 norm and returns v.
// A zero vector is returned unchanged.
func Normalize(v []float64) []float64 {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return v
}

// NormalizeL1 scales v in place so its entries sum to one and returns v.
// A zero vector is returned unchanged. Useful for histogram (BoW) profiles.
func NormalizeL1(v []float64) []float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	if s == 0 {
		return v
	}
	inv := 1 / s
	for i := range v {
		v[i] *= inv
	}
	return v
}

// Add accumulates b into a in place and returns a.
// Vectors must have equal length.
func Add(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	for i := range a {
		a[i] += b[i]
	}
	return a, nil
}

// Scale multiplies v in place by c and returns v.
func Scale(v []float64, c float64) []float64 {
	for i := range v {
		v[i] *= c
	}
	return v
}

// Clone returns a fresh copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Scored pairs an item identifier with a distance score. Lower is closer.
type Scored struct {
	ID    uint64
	Score float64
}

// scoredMaxHeap is a max-heap over Scored by Score, used to keep the K
// smallest scores seen so far.
type scoredMaxHeap []Scored

func (h scoredMaxHeap) Len() int            { return len(h) }
func (h scoredMaxHeap) Less(i, j int) bool  { return h[i].Score > h[j].Score }
func (h scoredMaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredMaxHeap) Push(x interface{}) { *h = append(*h, x.(Scored)) }
func (h *scoredMaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// TopK keeps the k entries with the smallest scores from a stream of Scored
// values. The zero value is not usable; construct with NewTopK.
type TopK struct {
	k int
	h scoredMaxHeap
}

// NewTopK returns a TopK selector for the k smallest scores. k must be >= 1.
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, h: make(scoredMaxHeap, 0, k)}
}

// Offer considers a candidate.
func (t *TopK) Offer(id uint64, score float64) {
	if len(t.h) < t.k {
		heap.Push(&t.h, Scored{ID: id, Score: score})
		return
	}
	if score < t.h[0].Score {
		t.h[0] = Scored{ID: id, Score: score}
		heap.Fix(&t.h, 0)
	}
}

// Threshold returns the current k-th smallest score, or +Inf when fewer than
// k candidates have been offered.
func (t *TopK) Threshold() float64 {
	if len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0].Score
}

// Len reports how many candidates are currently retained (<= k).
func (t *TopK) Len() int { return len(t.h) }

// Sorted drains the selector and returns the retained entries in ascending
// score order. The selector is empty afterwards.
func (t *TopK) Sorted() []Scored {
	out := make([]Scored, len(t.h))
	for i := len(t.h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.h).(Scored)
	}
	return out
}

// ArgNearest returns the index in centers of the vector closest (squared
// Euclidean) to x, along with that squared distance. centers must be
// non-empty.
func ArgNearest(x []float64, centers [][]float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, c := range centers {
		if d := SquaredDistance(x, c); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// Mean returns the element-wise mean of the given vectors, all of which must
// share the dimensionality of the first. An empty input yields nil.
func Mean(vs [][]float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := make([]float64, len(vs[0]))
	for _, v := range vs {
		for i := range out {
			if i < len(v) {
				out[i] += v[i]
			}
		}
	}
	return Scale(out, 1/float64(len(vs)))
}
