// Package faultnet is a deterministic, scriptable fault-injection harness
// for the framed transport. A Network wraps net.Conn / net.Listener pairs
// (and plugs into transport.DialWith / transport.Server.Serve) and injects
// latency, mid-frame slow reads, dropped and truncated frames, connection
// resets, response stalls past the caller's timeout ("late" responses) and
// full peer partitions — all from a reproducible schedule keyed by a
// single seed.
//
// Determinism contract: every probabilistic decision on a connection is
// drawn from a PRNG seeded by (Plan.Seed, peer name, connection ordinal),
// where the ordinal counts dials/accepts per peer in creation order. Read
// faults fire at scheduled byte offsets of the connection's receive
// stream, so they do not depend on how the reader chunks its Reads; write
// faults are decided once per Write call, which for the framed transport
// means once per frame (the frame writer issues one Write per frame).
// Runs that perform the same sequence of connection creations and frame
// exchanges therefore inject the same faults, and a failing simulation
// seed replays exactly.
//
// What is NOT deterministic under concurrency: when goroutines race to
// dial or to write, the interleaving assigns ordinals and consumes PRNG
// draws in racy order. Fault schedules remain seed-reproducible in
// distribution, and single-threaded phases replay bit-exactly; the
// simulation suite's invariants are written to hold under either.
package faultnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every error the harness fabricates, so tests can tell
// injected faults from real networking problems.
var ErrInjected = errors.New("faultnet: injected fault")

// Plan is the seeded fault schedule for one Network. Zero-valued fields
// disable their fault kind; a zero Plan injects nothing and the wrappers
// become transparent.
type Plan struct {
	// Seed keys every probabilistic decision. Two Networks with the same
	// Plan make the same decisions for the same (peer, ordinal) pairs.
	Seed int64

	// DialLatency delays every dial.
	DialLatency time.Duration
	// DialFailProb fails a dial outright with an ErrInjected error.
	DialFailProb float64

	// ReadFaultBytes is the mean gap, in received stream bytes, between
	// read-side faults on a connection; 0 disables read faults. At each
	// scheduled offset one of the enabled read fault kinds (latency, slow
	// window, stall) fires, chosen uniformly.
	ReadFaultBytes int
	// ReadLatency is the delay of a plain latency fault.
	ReadLatency time.Duration
	// SlowReadBytes makes a slow window: that many stream bytes are
	// delivered one byte per Read with a short delay each, which tears
	// frame payloads and headers across many partial reads.
	SlowReadBytes int
	// StallDelay blocks the receive stream once for this long. Set it
	// beyond the caller's timeout and every response behind the stall
	// arrives late — after the caller gave up — exercising the
	// late-response path of the multiplexed client.
	StallDelay time.Duration

	// DropProb swallows a written frame whole: the Write reports success
	// but nothing reaches the peer, so the stream stays well-formed and
	// the caller times out waiting for an answer that never comes.
	DropProb float64
	// TruncateProb writes only a prefix of the frame and then kills the
	// connection, leaving the peer a torn frame mid-stream.
	TruncateProb float64
	// ResetProb kills the connection instead of writing.
	ResetProb float64
}

// Network hands out fault-injecting dialers and listeners that share one
// seeded schedule, and scripts coarse events — partitions, forced write
// failures — on top of it.
type Network struct {
	plan    Plan
	enabled atomic.Bool

	mu       sync.Mutex
	ordinals map[string]int64          // next connection ordinal per peer
	conns    map[string]map[*Conn]bool // live wrapped conns per peer
	parts    map[string]bool           // partitioned peers
	script   map[string]int            // pending FailNextWrites per peer
}

// New returns a Network following plan, with fault injection enabled.
func New(plan Plan) *Network {
	n := &Network{
		plan:     plan,
		ordinals: make(map[string]int64),
		conns:    make(map[string]map[*Conn]bool),
		parts:    make(map[string]bool),
		script:   make(map[string]int),
	}
	n.enabled.Store(true)
	return n
}

// SetEnabled turns the probabilistic schedule on or off. Partitions and
// scripted write failures act regardless — they are explicit test steps,
// not background noise. Disabling faults lets a test run a clean setup or
// verification phase over the same wrapped connections.
func (n *Network) SetEnabled(v bool) { n.enabled.Store(v) }

// Partition cuts a peer off: its live connections are severed and every
// subsequent dial or write on its behalf fails until Heal. Severing closes
// the underlying connections, so blocked reads on both ends return.
func (n *Network) Partition(peer string) {
	n.mu.Lock()
	n.parts[peer] = true
	var victims []*Conn
	for c := range n.conns[peer] {
		victims = append(victims, c)
	}
	n.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Heal reconnects a partitioned peer. Existing connections stay dead —
// clients re-dial, as they would after a real partition.
func (n *Network) Heal(peer string) {
	n.mu.Lock()
	delete(n.parts, peer)
	n.mu.Unlock()
}

// Partitioned reports whether peer is currently cut off.
func (n *Network) Partitioned(peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parts[peer]
}

// FailNextWrites scripts the next k Writes across peer's connections to
// fail with an ErrInjected connection fault (the connection is killed, as
// a real mid-write failure would). Unlike the probabilistic schedule this
// fires even when SetEnabled(false), so tests can stage one precise fault.
func (n *Network) FailNextWrites(peer string, k int) {
	n.mu.Lock()
	n.script[peer] += k
	n.mu.Unlock()
}

// Dialer returns a transport-compatible dial function whose connections
// belong to peer: they follow peer's fault schedule and die with peer's
// partitions. Use a distinct peer name per logical client-server edge
// (e.g. one per shard) so partitions have shard granularity.
func (n *Network) Dialer(peer string) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		ordinal, rng := n.newConnRNG(peer)
		if n.Partitioned(peer) {
			return nil, fmt.Errorf("%w: dial %s: peer %q partitioned", ErrInjected, addr, peer)
		}
		if n.enabled.Load() {
			if n.plan.DialLatency > 0 {
				time.Sleep(n.plan.DialLatency)
			}
			if n.plan.DialFailProb > 0 && rng.Float64() < n.plan.DialFailProb {
				return nil, fmt.Errorf("%w: dial %s: peer %q conn %d refused", ErrInjected, addr, peer, ordinal)
			}
		}
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return n.wrap(peer, raw, rng), nil
	}
}

// WrapListener interposes the harness on the accept side: every accepted
// connection is wrapped under peer's schedule. Pass the result to
// transport.Server.Serve to fault a server's receive/send paths.
func (n *Network) WrapListener(peer string, ln net.Listener) net.Listener {
	return &listener{Listener: ln, n: n, peer: peer}
}

type listener struct {
	net.Listener
	n    *Network
	peer string
}

func (l *listener) Accept() (net.Conn, error) {
	raw, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	_, rng := l.n.newConnRNG(l.peer)
	return l.n.wrap(l.peer, raw, rng), nil
}

// newConnRNG assigns the next connection ordinal for peer and derives the
// connection's PRNG from (seed, peer, ordinal).
func (n *Network) newConnRNG(peer string) (int64, *rand.Rand) {
	n.mu.Lock()
	ordinal := n.ordinals[peer]
	n.ordinals[peer] = ordinal + 1
	n.mu.Unlock()
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d", n.plan.Seed, peer, ordinal)
	return ordinal, rand.New(rand.NewSource(int64(h.Sum64())))
}

func (n *Network) wrap(peer string, raw net.Conn, rng *rand.Rand) *Conn {
	c := &Conn{Conn: raw, n: n, peer: peer, rng: rng, nextFault: -1}
	if n.plan.ReadFaultBytes > 0 && (n.plan.ReadLatency > 0 || n.plan.SlowReadBytes > 0 || n.plan.StallDelay > 0) {
		c.nextFault = rng.Intn(2 * n.plan.ReadFaultBytes)
	}
	n.mu.Lock()
	if n.conns[peer] == nil {
		n.conns[peer] = make(map[*Conn]bool)
	}
	n.conns[peer][c] = true
	n.mu.Unlock()
	return c
}

func (n *Network) forget(c *Conn) {
	n.mu.Lock()
	delete(n.conns[c.peer], c)
	n.mu.Unlock()
}

// takeScriptedWriteFault consumes one pending FailNextWrites slot.
func (n *Network) takeScriptedWriteFault(peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.script[peer] > 0 {
		n.script[peer]--
		return true
	}
	return false
}

// slowReadDelay paces each byte of a slow window; small enough that a
// whole window stays well under call timeouts, large enough to force the
// peer's reader through many partial reads.
const slowReadDelay = 200 * time.Microsecond

// Conn is one fault-injected connection. All fault decisions are drawn
// from the connection's own seeded PRNG; see the package comment for the
// determinism contract.
type Conn struct {
	net.Conn
	n    *Network
	peer string

	mu        sync.Mutex
	rng       *rand.Rand
	readOff   int // received stream bytes so far
	nextFault int // stream offset of the next read fault; -1 = none
	slowLeft  int // bytes remaining in the current slow window
	stalled   bool
}

// Read applies the read-side schedule: at each scheduled stream offset it
// sleeps (latency), opens a byte-at-a-time slow window, or stalls the
// stream past the caller's timeout. Faults are keyed to byte offsets, so
// the schedule is independent of how callers chunk their reads.
func (c *Conn) Read(p []byte) (int, error) {
	if c.n.Partitioned(c.peer) {
		c.Close()
		return 0, fmt.Errorf("%w: read: peer %q partitioned", ErrInjected, c.peer)
	}
	var sleep time.Duration
	limit := len(p)
	if c.n.enabled.Load() {
		c.mu.Lock()
		switch {
		case c.slowLeft > 0:
			limit, sleep = 1, slowReadDelay
		case c.nextFault >= 0 && c.readOff >= c.nextFault:
			switch c.pickReadFault() {
			case faultLatency:
				sleep = c.n.plan.ReadLatency
			case faultSlow:
				c.slowLeft = c.n.plan.SlowReadBytes
				limit, sleep = 1, slowReadDelay
			case faultStall:
				sleep = c.n.plan.StallDelay
				c.stalled = true
			}
			c.nextFault = c.readOff + 1 + c.rng.Intn(2*c.n.plan.ReadFaultBytes)
		}
		c.mu.Unlock()
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if limit < len(p) && limit > 0 {
		p = p[:limit]
	}
	nr, err := c.Conn.Read(p)
	c.mu.Lock()
	c.readOff += nr
	if c.slowLeft > 0 {
		c.slowLeft -= nr
		if c.slowLeft < 0 {
			c.slowLeft = 0
		}
	}
	c.mu.Unlock()
	return nr, err
}

type readFault int

const (
	faultLatency readFault = iota
	faultSlow
	faultStall
)

// pickReadFault chooses uniformly among the read fault kinds the plan
// enables. A stall fires at most once per connection — one late-response
// episode per stream is the interesting case; repeating it only slows the
// run. Caller holds c.mu.
func (c *Conn) pickReadFault() readFault {
	kinds := make([]readFault, 0, 3)
	if c.n.plan.ReadLatency > 0 {
		kinds = append(kinds, faultLatency)
	}
	if c.n.plan.SlowReadBytes > 0 {
		kinds = append(kinds, faultSlow)
	}
	if c.n.plan.StallDelay > 0 && !c.stalled {
		kinds = append(kinds, faultStall)
	}
	if len(kinds) == 0 {
		return faultLatency // ReadLatency==0: harmless no-op sleep
	}
	return kinds[c.rng.Intn(len(kinds))]
}

// Write applies the write-side schedule once per call. The framed
// transport writes one frame per Write, so drop/truncate/reset act on
// whole frames: a dropped frame vanishes without corrupting the gob
// stream, a truncated frame tears mid-frame and kills the connection, a
// reset kills it before any bytes move.
func (c *Conn) Write(p []byte) (int, error) {
	if c.n.Partitioned(c.peer) {
		c.Close()
		return 0, fmt.Errorf("%w: write: peer %q partitioned", ErrInjected, c.peer)
	}
	if c.n.takeScriptedWriteFault(c.peer) {
		c.Close()
		return 0, fmt.Errorf("%w: write: scripted failure on peer %q", ErrInjected, c.peer)
	}
	if c.n.enabled.Load() {
		c.mu.Lock()
		u := c.rng.Float64()
		c.mu.Unlock()
		plan := &c.n.plan
		switch {
		case u < plan.DropProb:
			return len(p), nil
		case u < plan.DropProb+plan.TruncateProb:
			if cut := len(p) / 2; cut > 0 {
				c.Conn.Write(p[:cut])
			}
			c.Close()
			return 0, fmt.Errorf("%w: write: frame truncated on peer %q", ErrInjected, c.peer)
		case u < plan.DropProb+plan.TruncateProb+plan.ResetProb:
			c.Close()
			return 0, fmt.Errorf("%w: write: connection reset on peer %q", ErrInjected, c.peer)
		}
	}
	return c.Conn.Write(p)
}

// Close unregisters the connection and closes the underlying one.
func (c *Conn) Close() error {
	c.n.forget(c)
	return c.Conn.Close()
}
