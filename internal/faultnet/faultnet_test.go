package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// startSink starts a TCP server that drains every accepted connection,
// returning its address.
func startSink(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	return ln.Addr().String()
}

// startSource starts a TCP server that writes payload to every accepted
// connection and closes it.
func startSource(t *testing.T, payload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				c.Write(payload)
				c.Close()
			}(c)
		}
	}()
	return ln.Addr().String()
}

func TestZeroPlanIsTransparent(t *testing.T) {
	payload := bytes.Repeat([]byte("pisd"), 1024)
	addr := startSource(t, payload)
	n := New(Plan{Seed: 1})
	conn, err := n.Dialer("peer")(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted through transparent wrapper: %d bytes, want %d", len(got), len(payload))
	}
}

// writesBeforeReset dials through n and writes 16-byte chunks until an
// injected reset, returning how many writes succeeded. Used to compare
// schedules across networks.
func writesBeforeReset(t *testing.T, n *Network, peer, addr string) int {
	t.Helper()
	conn, err := n.Dialer(peer)(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	chunk := make([]byte, 16)
	for i := 0; i < 10000; i++ {
		if _, err := conn.Write(chunk); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d failed with non-injected error: %v", i, err)
			}
			return i
		}
	}
	t.Fatal("no reset injected in 10000 writes")
	return -1
}

func TestScheduleIsSeedDeterministic(t *testing.T) {
	addr := startSink(t)
	plan := Plan{Seed: 7, ResetProb: 0.05}
	// Same seed, same peer, same connection ordinal: identical schedule.
	a := writesBeforeReset(t, New(plan), "shard0", addr)
	b := writesBeforeReset(t, New(plan), "shard0", addr)
	if a != b {
		t.Fatalf("same (seed, peer, ordinal) diverged: reset after %d vs %d writes", a, b)
	}
	// Second connection of the same peer draws a fresh schedule from its
	// ordinal; replaying the network replays it too.
	na, nb := New(plan), New(plan)
	writesBeforeReset(t, na, "shard0", addr)
	writesBeforeReset(t, nb, "shard0", addr)
	a2 := writesBeforeReset(t, na, "shard0", addr)
	b2 := writesBeforeReset(t, nb, "shard0", addr)
	if a2 != b2 {
		t.Fatalf("same (seed, peer, ordinal=2) diverged: %d vs %d", a2, b2)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	addr := startSink(t)
	n := New(Plan{Seed: 3})
	dial := n.Dialer("shard1")
	conn, err := dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	n.Partition("shard1")
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("write on partitioned peer succeeded")
	}
	if _, err := dial(addr); err == nil {
		t.Fatal("dial of partitioned peer succeeded")
	} else if !errors.Is(err, ErrInjected) {
		t.Fatalf("partition dial error %v, want ErrInjected", err)
	}
	// Other peers are unaffected.
	other, err := n.Dialer("shard2")(addr)
	if err != nil {
		t.Fatalf("partition of shard1 leaked to shard2: %v", err)
	}
	if _, err := other.Write([]byte("x")); err != nil {
		t.Fatalf("write on healthy peer: %v", err)
	}
	other.Close()
	n.Heal("shard1")
	conn2, err := dial(addr)
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	if _, err := conn2.Write([]byte("x")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	conn2.Close()
}

func TestFailNextWritesIsScriptedAndExact(t *testing.T) {
	addr := startSink(t)
	n := New(Plan{Seed: 9})
	n.SetEnabled(false) // scripted faults fire regardless
	n.FailNextWrites("peer", 1)
	conn, err := n.Dialer("peer")(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("scripted write fault: got %v, want ErrInjected", err)
	}
	conn2, err := n.Dialer("peer")(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("x")); err != nil {
		t.Fatalf("write after scripted budget spent: %v", err)
	}
}

func TestSlowAndStalledReadsPreserveTheStream(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB, 0xCD}, 2048)
	addr := startSource(t, payload)
	n := New(Plan{
		Seed:           11,
		ReadFaultBytes: 256,
		ReadLatency:    time.Millisecond,
		SlowReadBytes:  64,
		StallDelay:     50 * time.Millisecond,
	})
	conn, err := n.Dialer("peer")(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	got, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read faults corrupted the stream: %d bytes, want %d", len(got), len(payload))
	}
	// With a ~256-byte mean gap over 4 KiB at least one stall or slow
	// window fires; the whole read must take visible wall time.
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("4 KiB under read faults completed in %v; schedule seems inert", elapsed)
	}
}

func TestSetEnabledGatesProbabilisticFaults(t *testing.T) {
	addr := startSink(t)
	n := New(Plan{Seed: 5, ResetProb: 1.0})
	n.SetEnabled(false)
	conn, err := n.Dialer("peer")(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 100; i++ {
		if _, err := conn.Write([]byte("x")); err != nil {
			t.Fatalf("write %d with faults disabled: %v", i, err)
		}
	}
	n.SetEnabled(true)
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("ResetProb=1 write after enable: got %v, want ErrInjected", err)
	}
}
