package core

import (
	"crypto/sha256"
	"encoding/binary"

	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

// bottomID is the reserved identifier ⊥ marking an explicitly emptied
// bucket in the dynamic scheme (Sec. III-D). User identifiers must not use
// this value.
const bottomID = ^uint64(0)

// payloadCheck returns an 8-byte integrity tag binding a bucket payload to
// its identifier. After unmasking, a bucket whose tag does not verify is
// random padding (or ⊥ in the dynamic scheme); the tag is masked along with
// the identifier, so stored buckets remain uniformly random to the cloud.
func payloadCheck(id uint64) [8]byte {
	var buf [8 + 16]byte
	binary.BigEndian.PutUint64(buf[:8], id)
	copy(buf[8:], "pisd/core/bucket")
	sum := sha256.Sum256(buf[:])
	var out [8]byte
	copy(out[:], sum[:8])
	return out
}

// encodePayload produces the static scheme's 32-byte plaintext bucket
// payload: id ‖ check(id) ‖ zero padding. XOR-masking it with the PRF mask
// r yields B = r ⊕ encode(L) (Algorithm 1, bucket encryption).
func encodePayload(id uint64) [BucketSize]byte {
	var b [BucketSize]byte
	binary.BigEndian.PutUint64(b[:8], id)
	check := payloadCheck(id)
	copy(b[8:16], check[:])
	return b
}

// decodePayload recovers an identifier from an unmasked static payload,
// reporting ok=false for padding (tag mismatch).
func decodePayload(b [BucketSize]byte) (uint64, bool) {
	id := binary.BigEndian.Uint64(b[:8])
	check := payloadCheck(id)
	for i := range check {
		if b[8+i] != check[i] {
			return 0, false
		}
	}
	return id, true
}

// dynPayloadSize returns the plaintext payload width of a dynamic bucket
// holding (L ‖ V) for metadata of l tables: id(8) + check(8) + l·8.
func dynPayloadSize(tables int) int {
	return 16 + 8*tables
}

// encodeDynPayload encodes (L ‖ V). For the ⊥ marker use id = bottomID with
// zero metadata.
func encodeDynPayload(id uint64, meta lsh.Metadata, tables int) []byte {
	out := make([]byte, dynPayloadSize(tables))
	binary.BigEndian.PutUint64(out[:8], id)
	check := payloadCheck(id)
	copy(out[8:16], check[:])
	for j := 0; j < tables && j < len(meta); j++ {
		binary.BigEndian.PutUint64(out[16+8*j:], meta[j])
	}
	return out
}

// decodeDynPayload recovers (L, V) from an unmasked dynamic payload.
// ok=false means the tag failed: the bucket was never initialized by the
// front end (corruption) — build-time padding in the dynamic scheme is
// masked ⊥, which carries a valid tag.
func decodeDynPayload(b []byte, tables int) (uint64, lsh.Metadata, bool) {
	if len(b) != dynPayloadSize(tables) {
		return 0, nil, false
	}
	id := binary.BigEndian.Uint64(b[:8])
	check := payloadCheck(id)
	for i := range check {
		if b[8+i] != check[i] {
			return 0, nil, false
		}
	}
	meta := make(lsh.Metadata, tables)
	for j := range meta {
		meta[j] = binary.BigEndian.Uint64(b[16+8*j:])
	}
	return id, meta, true
}

// staticMaskInto derives the static scheme's bucket mask
// r_i = g(k_j, j ‖ pos) (Algorithm 1, line "generate random mask") into
// the caller's buffer, allocation-free.
func staticMaskInto(dst []byte, keys *crypt.KeySet, table int, pos uint64) {
	keys.TablePRF(table).MaskInto(dst, table, pos)
}

// staticMask is the allocating form of staticMaskInto, for cold paths and
// tests.
func staticMask(keys *crypt.KeySet, table int, pos uint64) []byte {
	mask := make([]byte, BucketSize)
	staticMaskInto(mask, keys, table, pos)
	return mask
}

// stashMaskInto derives the mask of stash slot pos. The stash is addressed
// by a table index beyond the real tables (keyed by table 0's PRF key with
// a distinct table-id input), so its masks never collide with bucket masks.
func stashMaskInto(dst []byte, keys *crypt.KeySet, tables, pos int) {
	keys.TablePRF(0).MaskInto(dst, tables, uint64(pos))
}

// stashMask is the allocating form of stashMaskInto.
func stashMask(keys *crypt.KeySet, tables int, pos int) []byte {
	mask := make([]byte, BucketSize)
	stashMaskInto(mask, keys, tables, pos)
	return mask
}

// prfPos computes the PRF-permuted bucket position from a precomputed PRF
// handle: f(k_j, V[j]) for δ = 0 and f(k_j, V[j] ‖ δ) for probes, reduced
// mod w. Hot loops (cuckoo placement, trapdoor generation) hold the handle
// so the per-call cost is two SHA-256 compressions and nothing else.
func prfPos(p *crypt.PRF, metaValue uint64, delta, width int) int {
	var raw uint64
	if delta == 0 {
		raw = p.Pos8(metaValue)
	} else {
		raw = p.Pos8Probe(metaValue, delta)
	}
	return int(raw % uint64(width))
}

// bucketPos is prfPos resolving the table PRF through the key set's cache.
func bucketPos(keys *crypt.KeySet, table int, metaValue uint64, delta, width int) int {
	return prfPos(keys.TablePRF(table), metaValue, delta, width)
}
