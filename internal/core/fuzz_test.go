package core

import (
	"testing"

	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

// Fuzz targets for the cloud-facing binary decoders: whatever bytes an
// untrusted party feeds them, they must fail cleanly, never panic, and
// round-trip anything they accept.

func FuzzIndexUnmarshal(f *testing.F) {
	keys, err := testFuzzKeys(5)
	if err != nil {
		f.Fatal(err)
	}
	p := Params{Tables: 5, Capacity: 100, ProbeRange: 2, MaxLoop: 50, Seed: 1}
	idx, err := Build(keys, []Item{{ID: 1, Meta: lsh.Metadata{1, 2, 3, 4, 5}}}, p)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := idx.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		var x Index
		if err := x.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted input must re-encode to an equivalent blob.
		out, err := x.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encode accepted index: %v", err)
		}
		if len(out) != len(data) {
			t.Fatalf("re-encode length %d != %d", len(out), len(data))
		}
	})
}

func FuzzDynIndexUnmarshal(f *testing.F) {
	keys, err := testFuzzKeys(3)
	if err != nil {
		f.Fatal(err)
	}
	p := Params{Tables: 3, Capacity: 60, ProbeRange: 2, MaxLoop: 50, Seed: 1}
	idx, _, err := BuildDynamic(keys, []Item{{ID: 1, Meta: lsh.Metadata{1, 2, 3}}}, p)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := idx.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var x DynIndex
		if err := x.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := x.MarshalBinary(); err != nil {
			t.Fatalf("re-encode accepted dynamic index: %v", err)
		}
	})
}

// FuzzStaticPayload covers the static bucket payload codec from both
// directions: encodePayload(id) must always decode back to (id, true), and
// arbitrary unmasked bucket bytes must either be rejected as padding or
// carry a correctly self-checking identifier.
func FuzzStaticPayload(f *testing.F) {
	valid := encodePayload(42)
	f.Add(valid[:], uint64(7))
	f.Add(make([]byte, BucketSize), uint64(0))
	f.Add([]byte{}, ^uint64(0))
	f.Fuzz(func(t *testing.T, raw []byte, id uint64) {
		// Direction 1: encode→decode is the identity for every id,
		// including the reserved ⊥ marker.
		enc := encodePayload(id)
		got, ok := decodePayload(enc)
		if !ok || got != id {
			t.Fatalf("encodePayload(%d) decoded to (%d, %v)", id, got, ok)
		}
		// Direction 2: arbitrary bucket bytes. Anything accepted must
		// re-encode to a payload with identical id+check prefix — i.e. the
		// 8-byte integrity tag really binds the identifier.
		var b [BucketSize]byte
		copy(b[:], raw)
		if did, ok := decodePayload(b); ok {
			re := encodePayload(did)
			for i := 0; i < 16; i++ {
				if re[i] != b[i] {
					t.Fatalf("accepted payload %x re-encodes to %x", b[:16], re[:16])
				}
			}
		}
		// Tampering any byte of the id or tag must flip acceptance off
		// (an id change without a matching tag cannot survive).
		for i := 0; i < 16; i++ {
			tam := enc
			tam[i] ^= 1
			if tid, ok := decodePayload(tam); ok && tid == id {
				t.Fatalf("byte %d flip kept payload valid for id %d", i, id)
			}
		}
	})
}

func FuzzDecodeDynPayload(f *testing.F) {
	f.Add(encodeDynPayload(42, lsh.Metadata{1, 2, 3}, 3), 3)
	f.Add([]byte{}, 3)
	f.Fuzz(func(t *testing.T, data []byte, tables int) {
		if tables < 0 || tables > 64 {
			return
		}
		id, meta, ok := decodeDynPayload(data, tables)
		if !ok {
			return
		}
		re := encodeDynPayload(id, meta, tables)
		if string(re) != string(data) {
			t.Fatalf("accepted payload does not round trip")
		}
	})
}

func testFuzzKeys(l int) (*crypt.KeySet, error) {
	return crypt.GenDeterministic("fuzz", l)
}
