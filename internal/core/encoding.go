package core

import (
	"encoding/binary"
	"fmt"
)

// Serialization of the cloud-resident index types, used when the front end
// outsources a freshly built index to a remote cloud server. Both formats
// are fixed-layout binary: a header with the public parameters followed by
// the raw bucket bytes. The content is ciphertext and padding only, so the
// encoding leaks nothing beyond the index's public shape.

const indexMagic = 0x50495344 // "PISD"

// IndexHeaderSize is the byte length of the fixed header MarshalBinary
// places before the raw bucket bytes. Bucket (table, pos) of an index with
// per-table width w lives at IndexHeaderSize + (table·w + pos)·BucketSize,
// and stash slot s at IndexHeaderSize + (Tables·w + s)·BucketSize — the
// invariant the segment store's on-demand bucket reads rely on.
const IndexHeaderSize = 4 + 8*7

// IndexShape is the public geometry of an encoded static index, decoded
// from its header alone: enough to address any bucket without loading the
// body.
type IndexShape struct {
	Params Params
	Width  int
	N      int
}

// BucketOffset returns the offset of bucket (table, pos) within a
// MarshalBinary encoding of this shape.
func (sh IndexShape) BucketOffset(table int, pos uint64) int64 {
	return IndexHeaderSize + (int64(table)*int64(sh.Width)+int64(pos))*BucketSize
}

// StashOffset returns the offset of stash slot pos within a MarshalBinary
// encoding of this shape.
func (sh IndexShape) StashOffset(pos int) int64 {
	return IndexHeaderSize + (int64(sh.Params.Tables)*int64(sh.Width)+int64(pos))*BucketSize
}

// EncodedSize returns the total MarshalBinary length of this shape.
func (sh IndexShape) EncodedSize() int64 {
	return IndexHeaderSize + (int64(sh.Params.Tables)*int64(sh.Width)+int64(sh.Params.StashSize))*BucketSize
}

// ParseIndexHeader decodes and validates the MarshalBinary header,
// returning the index shape. data may be just the header or the whole
// encoding.
func ParseIndexHeader(data []byte) (IndexShape, error) {
	if len(data) < IndexHeaderSize {
		return IndexShape{}, fmt.Errorf("core: index encoding too short (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint32(data) != indexMagic {
		return IndexShape{}, fmt.Errorf("core: bad index magic")
	}
	sh := IndexShape{
		Params: Params{
			Tables:     int(binary.BigEndian.Uint64(data[4:])),
			Capacity:   int(binary.BigEndian.Uint64(data[12:])),
			ProbeRange: int(binary.BigEndian.Uint64(data[20:])),
			MaxLoop:    int(binary.BigEndian.Uint64(data[28:])),
			StashSize:  int(binary.BigEndian.Uint64(data[52:])),
		},
		Width: int(binary.BigEndian.Uint64(data[36:])),
		N:     int(binary.BigEndian.Uint64(data[44:])),
	}
	if err := sh.Params.Validate(); err != nil {
		return IndexShape{}, fmt.Errorf("core: decode index: %w", err)
	}
	if sh.Width < 1 || sh.Width > sh.Params.Capacity {
		return IndexShape{}, fmt.Errorf("core: decode index: width %d out of range", sh.Width)
	}
	return sh, nil
}

// Shape returns the index's encoded geometry.
func (x *Index) Shape() IndexShape {
	return IndexShape{Params: x.params, Width: x.width, N: x.n}
}

// MarshalBinary encodes the static index.
func (x *Index) MarshalBinary() ([]byte, error) {
	header := make([]byte, IndexHeaderSize)
	binary.BigEndian.PutUint32(header[0:], indexMagic)
	binary.BigEndian.PutUint64(header[4:], uint64(x.params.Tables))
	binary.BigEndian.PutUint64(header[12:], uint64(x.params.Capacity))
	binary.BigEndian.PutUint64(header[20:], uint64(x.params.ProbeRange))
	binary.BigEndian.PutUint64(header[28:], uint64(x.params.MaxLoop))
	binary.BigEndian.PutUint64(header[36:], uint64(x.width))
	binary.BigEndian.PutUint64(header[44:], uint64(x.n))
	binary.BigEndian.PutUint64(header[52:], uint64(len(x.stash)))
	out := make([]byte, 0, len(header)+(x.params.Tables*x.width+len(x.stash))*BucketSize)
	out = append(out, header...)
	for _, tbl := range x.tables {
		for _, b := range tbl {
			out = append(out, b...)
		}
	}
	for _, b := range x.stash {
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalBinary decodes an index produced by MarshalBinary.
func (x *Index) UnmarshalBinary(data []byte) error {
	sh, err := ParseIndexHeader(data)
	if err != nil {
		return err
	}
	p, width, n, stashSize := sh.Params, sh.Width, sh.N, sh.Params.StashSize
	body := data[IndexHeaderSize:]
	want := (p.Tables*width + stashSize) * BucketSize
	if len(body) != want {
		return fmt.Errorf("core: decode index: body %d bytes, want %d", len(body), want)
	}
	tables := make([][][]byte, p.Tables)
	off := 0
	for j := range tables {
		buckets := make([][]byte, width)
		for pos := 0; pos < width; pos++ {
			buckets[pos] = append([]byte(nil), body[off:off+BucketSize]...)
			off += BucketSize
		}
		tables[j] = buckets
	}
	stash := make([][]byte, stashSize)
	for pos := range stash {
		stash[pos] = append([]byte(nil), body[off:off+BucketSize]...)
		off += BucketSize
	}
	x.params = p
	x.width = width
	x.n = n
	x.tables = tables
	x.stash = stash
	x.stats = BuildStats{}
	return nil
}

// GobEncode lets encoding/gob carry the index across the transport.
func (x *Index) GobEncode() ([]byte, error) { return x.MarshalBinary() }

// GobDecode is the inverse of GobEncode.
func (x *Index) GobDecode(data []byte) error { return x.UnmarshalBinary(data) }

const dynMagic = 0x50495345

// MarshalBinary encodes the dynamic index.
func (x *DynIndex) MarshalBinary() ([]byte, error) {
	payload := dynPayloadSize(x.params.Tables)
	encR := 0
	if x.width > 0 && x.params.Tables > 0 {
		encR = len(x.tables[0][0].EncR)
	}
	header := make([]byte, 4+8*7)
	binary.BigEndian.PutUint32(header[0:], dynMagic)
	binary.BigEndian.PutUint64(header[4:], uint64(x.params.Tables))
	binary.BigEndian.PutUint64(header[12:], uint64(x.params.Capacity))
	binary.BigEndian.PutUint64(header[20:], uint64(x.params.ProbeRange))
	binary.BigEndian.PutUint64(header[28:], uint64(x.params.MaxLoop))
	binary.BigEndian.PutUint64(header[36:], uint64(x.width))
	binary.BigEndian.PutUint64(header[44:], uint64(payload))
	binary.BigEndian.PutUint64(header[52:], uint64(encR))
	out := make([]byte, 0, len(header)+x.params.Tables*x.width*(payload+encR))
	out = append(out, header...)
	for _, tbl := range x.tables {
		for _, b := range tbl {
			if len(b.Masked) != payload || len(b.EncR) != encR {
				return nil, fmt.Errorf("core: inconsistent dynamic bucket sizes")
			}
			out = append(out, b.Masked...)
			out = append(out, b.EncR...)
		}
	}
	return out, nil
}

// UnmarshalBinary decodes a dynamic index produced by MarshalBinary.
func (x *DynIndex) UnmarshalBinary(data []byte) error {
	if len(data) < 4+8*7 {
		return fmt.Errorf("core: dynamic index encoding too short")
	}
	if binary.BigEndian.Uint32(data) != dynMagic {
		return fmt.Errorf("core: bad dynamic index magic")
	}
	p := Params{
		Tables:     int(binary.BigEndian.Uint64(data[4:])),
		Capacity:   int(binary.BigEndian.Uint64(data[12:])),
		ProbeRange: int(binary.BigEndian.Uint64(data[20:])),
		MaxLoop:    int(binary.BigEndian.Uint64(data[28:])),
	}
	width := int(binary.BigEndian.Uint64(data[36:]))
	payload := int(binary.BigEndian.Uint64(data[44:]))
	encR := int(binary.BigEndian.Uint64(data[52:]))
	if err := p.Validate(); err != nil {
		return fmt.Errorf("core: decode dynamic index: %w", err)
	}
	if payload != dynPayloadSize(p.Tables) {
		return fmt.Errorf("core: decode dynamic index: payload size %d, want %d", payload, dynPayloadSize(p.Tables))
	}
	if width < 1 || encR < 0 {
		return fmt.Errorf("core: decode dynamic index: bad shape")
	}
	body := data[4+8*7:]
	per := payload + encR
	if len(body) != p.Tables*width*per {
		return fmt.Errorf("core: decode dynamic index: body %d bytes, want %d", len(body), p.Tables*width*per)
	}
	tables := make([][]DynBucket, p.Tables)
	off := 0
	for j := range tables {
		row := make([]DynBucket, width)
		for pos := 0; pos < width; pos++ {
			row[pos] = DynBucket{
				Masked: append([]byte(nil), body[off:off+payload]...),
				EncR:   append([]byte(nil), body[off+payload:off+per]...),
			}
			off += per
		}
		tables[j] = row
	}
	x.params = p
	x.width = width
	x.tables = tables
	return nil
}

// GobEncode lets encoding/gob carry the dynamic index across the
// transport.
func (x *DynIndex) GobEncode() ([]byte, error) { return x.MarshalBinary() }

// GobDecode is the inverse of GobEncode.
func (x *DynIndex) GobDecode(data []byte) error { return x.UnmarshalBinary(data) }
