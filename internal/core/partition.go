package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pisd/internal/crypt"
	"pisd/internal/cuckoo"
)

// DefaultOwner returns the canonical user→shard assignment, id mod shards.
// The same function must be used when building the partitioned index, when
// distributing encrypted profiles, and when routing dynamic updates.
func DefaultOwner(shards int) func(uint64) int {
	return func(id uint64) int { return int(id % uint64(shards)) }
}

// BuildPartitioned implements ConSecIdx for a sharded cloud tier. It runs
// one cuckoo placement over the full population — identical, for the same
// keys, items and params, to the placement Build computes — and then
// projects it onto shards: shard s's index carries masked buckets for
// exactly the items owner assigns to s, with random padding everywhere
// else. Every shard index shares the single-node width and parameters, so
// one trapdoor addresses all shards, and the union over shards of
// SecRec(t, I_s) recovers exactly the identifiers SecRec(t, I) recovers
// from the equivalent single-node index: sharding changes where buckets
// live, not which buckets answer.
//
// owner maps an identifier to its shard in [0, shards); nil means
// DefaultOwner(shards). Per-shard encryption fans out across goroutines,
// so owner must be safe for concurrent calls (any pure function is).
func BuildPartitioned(keys *crypt.KeySet, items []Item, p Params, shards int, owner func(uint64) int) ([]*Index, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: shard count must be >= 1, got %d", shards)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkKeys(keys, p); err != nil {
		return nil, err
	}
	if owner == nil {
		owner = DefaultOwner(shards)
	}
	placer, err := newPlacer(keys, p)
	if err != nil {
		return nil, err
	}
	counts := make([]int, shards)
	insertStart := time.Now()
	for _, it := range items {
		if it.ID == bottomID {
			return nil, fmt.Errorf("core: identifier %d is reserved", it.ID)
		}
		s := owner(it.ID)
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("core: owner(%d) = %d out of range [0,%d)", it.ID, s, shards)
		}
		counts[s]++
		if err := placer.Insert(it.ID, it.Meta); err != nil {
			if errors.Is(err, cuckoo.ErrFull) {
				return nil, fmt.Errorf("%w: %v", ErrNeedRehash, err)
			}
			return nil, fmt.Errorf("core: insert %d: %w", it.ID, err)
		}
	}
	insertNanos := time.Since(insertStart).Nanoseconds()

	idxs := make([]*Index, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			encStart := time.Now()
			idx, err := encryptStatic(keys, placer, p, counts[s], func(id uint64) bool {
				return owner(id) == s
			})
			if err != nil {
				errs[s] = fmt.Errorf("core: shard %d: %w", s, err)
				return
			}
			// Placement cost is shared by all shards; the encryption
			// phase is the shard's own.
			idx.stats.InsertNanos = insertNanos
			idx.stats.EncryptNanos = time.Since(encStart).Nanoseconds()
			idxs[s] = idx
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return idxs, nil
}
