package core

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"

	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

// rSize is the byte length of a dynamic bucket's random value r.
const rSize = 16

var (
	// ErrNotIndexed is returned by dynamic Delete when the identifier is
	// not reachable through its metadata.
	ErrNotIndexed = errors.New("core: identifier not indexed")
	// ErrAlreadyIndexed is returned by dynamic Insert when the identifier
	// is already reachable through its metadata.
	ErrAlreadyIndexed = errors.New("core: identifier already indexed")
)

// DynBucket is one bucket of the dynamic scheme (Sec. III-D):
// B = (G(r) ⊕ (L ‖ V), Enc(k_r, r)). Both components are refreshed with a
// new random r on every re-mask, so the cloud cannot tell which bucket of a
// touched batch actually changed.
type DynBucket struct {
	// Masked is G(r) ⊕ (L ‖ V), dynPayloadSize(l) bytes.
	Masked []byte
	// EncR is Enc(k_r, r).
	EncR []byte
}

// clone returns a deep copy of the bucket.
func (b DynBucket) clone() DynBucket {
	return DynBucket{
		Masked: append([]byte(nil), b.Masked...),
		EncR:   append([]byte(nil), b.EncR...),
	}
}

// SizeBytes returns the wire size of the bucket.
func (b DynBucket) SizeBytes() int { return len(b.Masked) + len(b.EncR) }

// BucketRef addresses one bucket of the dynamic index.
type BucketRef struct {
	Table int
	Pos   uint64
}

// BucketStore is the cloud-side surface the dynamic front-end client
// drives: fetch a batch of buckets and replace a batch of buckets. The
// in-memory DynIndex implements it directly; the transport layer exposes
// the same surface over the network.
type BucketStore interface {
	// FetchBuckets returns the buckets at the given references, in order.
	FetchBuckets(refs []BucketRef) ([]DynBucket, error)
	// StoreBuckets replaces the buckets at the given references.
	StoreBuckets(refs []BucketRef, buckets []DynBucket) error
}

// DynIndex is the cloud-resident dynamic secure index. Like Index it holds
// no keys; every bucket is masked payload plus an encrypted random value.
type DynIndex struct {
	params Params
	width  int
	tables [][]DynBucket
}

var _ BucketStore = (*DynIndex)(nil)

// Params returns the index parameters.
func (x *DynIndex) Params() Params { return x.params }

// Width returns w, the per-table bucket count.
func (x *DynIndex) Width() int { return x.width }

// SizeBytes returns the storage footprint of all buckets.
func (x *DynIndex) SizeBytes() int {
	if x.width == 0 || x.params.Tables == 0 {
		return 0
	}
	per := x.tables[0][0].SizeBytes()
	return x.params.Tables * x.width * per
}

// FetchBuckets implements BucketStore.
func (x *DynIndex) FetchBuckets(refs []BucketRef) ([]DynBucket, error) {
	out := make([]DynBucket, len(refs))
	for i, r := range refs {
		if r.Table < 0 || r.Table >= x.params.Tables || r.Pos >= uint64(x.width) {
			return nil, fmt.Errorf("core: bucket ref (%d,%d) out of range", r.Table, r.Pos)
		}
		out[i] = x.tables[r.Table][r.Pos].clone()
	}
	return out, nil
}

// StoreBuckets implements BucketStore.
func (x *DynIndex) StoreBuckets(refs []BucketRef, buckets []DynBucket) error {
	if len(refs) != len(buckets) {
		return fmt.Errorf("core: %d refs but %d buckets", len(refs), len(buckets))
	}
	want := dynPayloadSize(x.params.Tables)
	for i, r := range refs {
		if r.Table < 0 || r.Table >= x.params.Tables || r.Pos >= uint64(x.width) {
			return fmt.Errorf("core: bucket ref (%d,%d) out of range", r.Table, r.Pos)
		}
		if len(buckets[i].Masked) != want {
			return fmt.Errorf("core: masked payload length %d, want %d", len(buckets[i].Masked), want)
		}
		x.tables[r.Table][r.Pos] = buckets[i].clone()
	}
	return nil
}

// DynClient holds the front-end (SF) side of the dynamic scheme: it owns
// the keys and performs unmasking, re-masking and the interactive secure
// deletion / insertion protocols against a BucketStore.
//
// A DynClient is safe for concurrent use: each Search / Delete / Insert
// runs under an internal lock, so operations on one client serialize. A
// sharded deployment gives every shard its own client (they share keys and
// params), which keeps cross-shard fan-out fully parallel.
type DynClient struct {
	keys *crypt.KeySet
	p    Params
	// tprfs[j] and gprf are the precomputed PRF handles for table j's
	// position key and k_G; resolved once so the hot seal/open/Refs paths
	// skip the key-cache lookup.
	tprfs []*crypt.PRF
	gprf  *crypt.PRF
	// mu serializes operations: protects rng, stats, drbg, maskBuf and —
	// more importantly — keeps each multi-round protocol's
	// fetch/modify/store sequence atomic with respect to this client's
	// other operations. BuildDynamic seals pre-publication from a single
	// goroutine, the one place seal runs without mu.
	mu  sync.Mutex
	rng *mrand.Rand
	// drbg supplies the per-bucket random values r and the Enc IVs; one
	// kernel read at construction instead of two per sealed bucket.
	drbg *crypt.DRBG
	// maskBuf is the reusable G(r) expansion buffer of seal/open.
	maskBuf []byte
	// Stats accumulates kick-aways and interaction rounds.
	stats DynStats
}

// DynStats reports observable dynamic-operation behaviour.
type DynStats struct {
	// Kicks counts kick-away rounds across all insertions.
	Kicks int
	// Rounds counts fetch/store round trips to the bucket store.
	Rounds int
}

// NewDynClient validates the configuration and returns a client. seed
// drives only the random choice of kick victims.
func NewDynClient(keys *crypt.KeySet, p Params, seed int64) (*DynClient, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkKeys(keys, p); err != nil {
		return nil, err
	}
	drbg, err := crypt.NewDRBG()
	if err != nil {
		return nil, fmt.Errorf("core: dynamic client: %w", err)
	}
	tprfs := make([]*crypt.PRF, p.Tables)
	for j := range tprfs {
		tprfs[j] = keys.TablePRF(j)
	}
	return &DynClient{
		keys:    keys,
		p:       p,
		tprfs:   tprfs,
		gprf:    keys.GPRF(),
		rng:     mrand.New(mrand.NewSource(seed)),
		drbg:    drbg,
		maskBuf: make([]byte, dynPayloadSize(p.Tables)),
	}, nil
}

// Stats returns accumulated operation statistics.
func (c *DynClient) Stats() DynStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the statistics counters.
func (c *DynClient) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = DynStats{}
}

// Refs returns the l·(d+1) bucket references addressed by meta, grouped
// table-major with the primary bucket first within each table (so
// Refs(meta)[j*(d+1)] is table j's primary bucket).
func (c *DynClient) Refs(meta lsh.Metadata) ([]BucketRef, error) {
	if len(meta) != c.p.Tables {
		return nil, fmt.Errorf("core: metadata has %d tables, params have %d", len(meta), c.p.Tables)
	}
	w := c.p.Width()
	refs := make([]BucketRef, 0, c.p.BucketsPerQuery())
	for j := 0; j < c.p.Tables; j++ {
		for delta := 0; delta <= c.p.ProbeRange; delta++ {
			refs = append(refs, BucketRef{Table: j, Pos: uint64(prfPos(c.tprfs[j], meta[j], delta, w))})
		}
	}
	return refs, nil
}

// seal masks a payload with a fresh random value:
// (G(r) ⊕ payload, Enc(k_r, r)). Randomness (r and the Enc IV) comes from
// the client's DRBG, and the G(r) expansion reuses the client's mask
// buffer, so sealing costs exactly two allocations: the two outputs.
func (c *DynClient) seal(payload []byte) (DynBucket, error) {
	var r [rSize]byte
	c.drbg.Fill(r[:])
	encR, err := crypt.EncFrom(c.keys.KR, r[:], c.drbg)
	if err != nil {
		return DynBucket{}, fmt.Errorf("core: seal: %w", err)
	}
	mask := c.grow(len(payload))
	c.gprf.StreamGInto(mask, r[:])
	masked := make([]byte, len(payload))
	crypt.XOR(masked, mask, payload)
	return DynBucket{Masked: masked, EncR: encR}, nil
}

// open recovers the plaintext payload of a bucket:
// r = Dec(k_r, EncR), payload = G(r) ⊕ Masked.
func (c *DynClient) open(b DynBucket) ([]byte, error) {
	r, err := crypt.Dec(c.keys.KR, b.EncR)
	if err != nil {
		return nil, fmt.Errorf("core: open bucket: %w", err)
	}
	mask := c.grow(len(b.Masked))
	c.gprf.StreamGInto(mask, r)
	payload := make([]byte, len(b.Masked))
	crypt.XOR(payload, mask, b.Masked)
	return payload, nil
}

// grow returns the client's mask buffer resized to n bytes.
func (c *DynClient) grow(n int) []byte {
	if cap(c.maskBuf) < n {
		c.maskBuf = make([]byte, n)
	}
	return c.maskBuf[:n]
}

// BuildDynamic constructs the dynamic index over the given items: the same
// cuckoo placement as the static scheme, followed by sealing every bucket —
// occupied buckets carry (L ‖ V), empty buckets carry the masked ⊥ marker,
// making all buckets indistinguishable.
func BuildDynamic(keys *crypt.KeySet, items []Item, p Params) (*DynIndex, *DynClient, error) {
	client, err := NewDynClient(keys, p, p.Seed)
	if err != nil {
		return nil, nil, err
	}
	placer, err := newPlacer(keys, p)
	if err != nil {
		return nil, nil, err
	}
	for _, it := range items {
		if it.ID == bottomID {
			return nil, nil, fmt.Errorf("core: identifier %d is reserved", it.ID)
		}
		if err := placer.Insert(it.ID, it.Meta); err != nil {
			return nil, nil, fmt.Errorf("core: dynamic build insert %d: %w", it.ID, err)
		}
	}
	w := placer.Width()
	idx := &DynIndex{params: p, width: w, tables: make([][]DynBucket, p.Tables)}
	empty := encodeDynPayload(bottomID, nil, p.Tables)
	for j := range idx.tables {
		idx.tables[j] = make([]DynBucket, w)
		for pos := 0; pos < w; pos++ {
			b, err := client.seal(empty)
			if err != nil {
				return nil, nil, err
			}
			idx.tables[j][pos] = b
		}
	}
	var sealErr error
	placer.Walk(func(table, pos int, id uint64) {
		if sealErr != nil {
			return
		}
		meta, _ := placer.MetaOf(id)
		b, err := client.seal(encodeDynPayload(id, meta, p.Tables))
		if err != nil {
			sealErr = err
			return
		}
		idx.tables[table][pos] = b
	})
	if sealErr != nil {
		return nil, nil, sealErr
	}
	return idx, client, nil
}

// fetchOpened fetches and opens all buckets for refs, deduplicating
// repeated references (PRF position collisions) so that a later batched
// store cannot overwrite a modified bucket with a stale copy.
type openedBatch struct {
	refs     []BucketRef // deduplicated
	payloads [][]byte    // plaintext payloads, aligned with refs
	// at maps each original slot index (table-major, probe-minor) to an
	// index into refs/payloads.
	at []int
}

func (c *DynClient) fetchOpened(store BucketStore, meta lsh.Metadata) (*openedBatch, error) {
	all, err := c.Refs(meta)
	if err != nil {
		return nil, err
	}
	batch := &openedBatch{at: make([]int, len(all))}
	seen := make(map[BucketRef]int, len(all))
	for i, r := range all {
		if j, ok := seen[r]; ok {
			batch.at[i] = j
			continue
		}
		seen[r] = len(batch.refs)
		batch.at[i] = len(batch.refs)
		batch.refs = append(batch.refs, r)
	}
	buckets, err := store.FetchBuckets(batch.refs)
	if err != nil {
		return nil, err
	}
	c.stats.Rounds++
	batch.payloads = make([][]byte, len(buckets))
	for i, b := range buckets {
		p, err := c.open(b)
		if err != nil {
			return nil, err
		}
		batch.payloads[i] = p
	}
	return batch, nil
}

// reseal seals every payload of the batch with fresh randomness and pushes
// the batch back, hiding which bucket actually changed.
func (c *DynClient) reseal(store BucketStore, batch *openedBatch) error {
	buckets := make([]DynBucket, len(batch.refs))
	for i, p := range batch.payloads {
		b, err := c.seal(p)
		if err != nil {
			return err
		}
		buckets[i] = b
	}
	c.stats.Rounds++
	return store.StoreBuckets(batch.refs, buckets)
}

// Search recovers the identifiers reachable through meta: the dynamic
// scheme's read path. The cloud returns the addressed buckets and the
// front end unmasks them locally; no bucket is modified.
func (c *DynClient) Search(store BucketStore, meta lsh.Metadata) ([]uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	batch, err := c.fetchOpened(store, meta)
	if err != nil {
		return nil, err
	}
	ids := make([]uint64, 0, len(batch.refs))
	seen := make(map[uint64]struct{}, len(batch.refs))
	for _, p := range batch.payloads {
		id, _, ok := decodeDynPayload(p, c.p.Tables)
		if !ok {
			return nil, fmt.Errorf("core: corrupt dynamic bucket payload")
		}
		if id == bottomID {
			continue
		}
		if _, dup := seen[id]; !dup {
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// Delete implements the secure deletion protocol (Sec. III-D): fetch the
// l·(d+1) buckets addressed by meta, replace the bucket holding id with the
// masked ⊥ marker, and re-mask every fetched bucket with fresh randomness
// before storing them back, which hides the emptied position.
func (c *DynClient) Delete(store BucketStore, id uint64, meta lsh.Metadata) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	batch, err := c.fetchOpened(store, meta)
	if err != nil {
		return err
	}
	target := -1
	for i, p := range batch.payloads {
		gotID, _, ok := decodeDynPayload(p, c.p.Tables)
		if !ok {
			return fmt.Errorf("core: corrupt dynamic bucket payload")
		}
		if gotID == id {
			target = i
			break
		}
	}
	if target < 0 {
		return fmt.Errorf("%w: %d", ErrNotIndexed, id)
	}
	batch.payloads[target] = encodeDynPayload(bottomID, nil, c.p.Tables)
	return c.reseal(store, batch)
}

// Insert implements the secure insertion protocol (Sec. III-D): fetch the
// addressed buckets; place (L ‖ V) into an empty one if available, else
// kick a random primary bucket and iteratively re-insert the kicked entry.
// Every fetched batch is fully re-masked before being stored, hiding both
// the inserted and the kicked positions.
func (c *DynClient) Insert(store BucketStore, id uint64, meta lsh.Metadata) error {
	if id == bottomID {
		return fmt.Errorf("core: identifier %d is reserved", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(store, id, meta)
}

// insertLocked is the insertion protocol body; c.mu must be held.
func (c *DynClient) insertLocked(store BucketStore, id uint64, meta lsh.Metadata) error {
	curID, curMeta := id, meta
	for loop := 0; loop <= c.p.MaxLoop; loop++ {
		batch, err := c.fetchOpened(store, curMeta)
		if err != nil {
			return err
		}
		empty := -1
		for i, p := range batch.payloads {
			gotID, _, ok := decodeDynPayload(p, c.p.Tables)
			if !ok {
				return fmt.Errorf("core: corrupt dynamic bucket payload")
			}
			if gotID == curID {
				return fmt.Errorf("%w: %d", ErrAlreadyIndexed, curID)
			}
			if gotID == bottomID && empty < 0 {
				empty = i
			}
		}
		if empty >= 0 {
			batch.payloads[empty] = encodeDynPayload(curID, curMeta, c.p.Tables)
			return c.reseal(store, batch)
		}
		// No room: kick a random primary bucket (slot j*(d+1) for table j).
		j := c.rng.Intn(c.p.Tables)
		slot := batch.at[j*(c.p.ProbeRange+1)]
		victimID, victimMeta, ok := decodeDynPayload(batch.payloads[slot], c.p.Tables)
		if !ok || victimID == bottomID {
			return fmt.Errorf("core: inconsistent kick state at table %d", j)
		}
		batch.payloads[slot] = encodeDynPayload(curID, curMeta, c.p.Tables)
		if err := c.reseal(store, batch); err != nil {
			return err
		}
		c.stats.Kicks++
		curID, curMeta = victimID, victimMeta
	}
	return fmt.Errorf("%w: dynamic insert exceeded %d kicks", ErrNeedRehash, c.p.MaxLoop)
}
