package core

import (
	"encoding/binary"
	"fmt"
)

// This file is the dynamic scheme's anti-entropy surface: the primitives a
// replicated deployment uses to bring a lagging or restarted replica of a
// bucket store back in sync with a healthy peer. Everything here is built
// from the scheme's existing seal/open machinery, so the cloud-visible
// access pattern of a repair is exactly the bucket-read/reseal pattern of
// normal churn (see DESIGN.md §17): read a batch of buckets from the
// source, re-mask every one of them with fresh randomness, store the batch
// to the destination. Neither store learns which buckets differed.

// Clone returns a deep copy of the dynamic index. Replicated deployments
// install one clone per replica so that the replicas' bucket arrays evolve
// independently, as they would on physically separate servers.
func (x *DynIndex) Clone() *DynIndex {
	out := &DynIndex{params: x.params, width: x.width, tables: make([][]DynBucket, len(x.tables))}
	for j, tbl := range x.tables {
		out.tables[j] = make([]DynBucket, len(tbl))
		for pos, b := range tbl {
			out.tables[j][pos] = b.clone()
		}
	}
	return out
}

// NewShell returns a dynamic index of the client's shape with every bucket
// freshly sealed to the ⊥ marker: the state a brand-new replica starts
// from before a resync copies the real buckets over. The shell is
// indistinguishable from any other dynamic index to the cloud — every
// bucket is a well-formed (G(r) ⊕ ⊥, Enc(k_r, r)) pair.
func (c *DynClient) NewShell() (*DynIndex, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.p.Width()
	idx := &DynIndex{params: c.p, width: w, tables: make([][]DynBucket, c.p.Tables)}
	empty := encodeDynPayload(bottomID, nil, c.p.Tables)
	for j := range idx.tables {
		idx.tables[j] = make([]DynBucket, w)
		for pos := 0; pos < w; pos++ {
			b, err := c.seal(empty)
			if err != nil {
				return nil, fmt.Errorf("core: shell: %w", err)
			}
			idx.tables[j][pos] = b
		}
	}
	return idx, nil
}

// Fork returns an independent client over the same keys and parameters,
// with its own randomness state. A background repairer uses a fork so its
// long-running resyncs never contend on — or deadlock against — the lock
// serializing the foreground client's churn protocol.
func (c *DynClient) Fork() (*DynClient, error) {
	c.mu.Lock()
	var seed [8]byte
	c.drbg.Fill(seed[:])
	keys, p := c.keys, c.p
	c.mu.Unlock()
	return NewDynClient(keys, p, int64(binary.LittleEndian.Uint64(seed[:])))
}

// ResyncRange re-syncs the buckets at positions [lo, hi) of every table
// from src into dst: fetch the range from src, open and re-seal every
// bucket with fresh randomness, store the range to dst. The position range
// is data-independent (a plain sweep), so the only thing either store
// learns is that a repair of that range happened.
func (c *DynClient) ResyncRange(src, dst BucketStore, lo, hi uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := uint64(c.p.Width()); hi > w {
		hi = w
	}
	if lo >= hi {
		return nil
	}
	refs := make([]BucketRef, 0, int(hi-lo)*c.p.Tables)
	for j := 0; j < c.p.Tables; j++ {
		for pos := lo; pos < hi; pos++ {
			refs = append(refs, BucketRef{Table: j, Pos: pos})
		}
	}
	buckets, err := src.FetchBuckets(refs)
	if err != nil {
		return fmt.Errorf("core: resync fetch [%d,%d): %w", lo, hi, err)
	}
	if len(buckets) != len(refs) {
		return fmt.Errorf("core: resync fetch [%d,%d): %d buckets for %d refs", lo, hi, len(buckets), len(refs))
	}
	c.stats.Rounds++
	out := make([]DynBucket, len(buckets))
	for i, b := range buckets {
		payload, err := c.open(b)
		if err != nil {
			return fmt.Errorf("core: resync open: %w", err)
		}
		if out[i], err = c.seal(payload); err != nil {
			return fmt.Errorf("core: resync seal: %w", err)
		}
	}
	c.stats.Rounds++
	if err := dst.StoreBuckets(refs, out); err != nil {
		return fmt.Errorf("core: resync store [%d,%d): %w", lo, hi, err)
	}
	return nil
}

// OpenedRange fetches the buckets at positions [lo, hi) of every table
// from store and returns their opened payload bytes in the same
// table-major order ResyncRange uses. It is the verification primitive
// for replica convergence: replicas that re-masked independently hold
// different bucket BYTES, but equivalent replicas must open to identical
// payloads position for position. Only the trusted front end can run
// this — opening needs the keys.
func (c *DynClient) OpenedRange(store BucketStore, lo, hi uint64) ([][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := uint64(c.p.Width()); hi > w {
		hi = w
	}
	if lo >= hi {
		return nil, nil
	}
	refs := make([]BucketRef, 0, int(hi-lo)*c.p.Tables)
	for j := 0; j < c.p.Tables; j++ {
		for pos := lo; pos < hi; pos++ {
			refs = append(refs, BucketRef{Table: j, Pos: pos})
		}
	}
	buckets, err := store.FetchBuckets(refs)
	if err != nil {
		return nil, fmt.Errorf("core: opened range fetch [%d,%d): %w", lo, hi, err)
	}
	if len(buckets) != len(refs) {
		return nil, fmt.Errorf("core: opened range [%d,%d): %d buckets for %d refs", lo, hi, len(buckets), len(refs))
	}
	out := make([][]byte, len(buckets))
	for i, b := range buckets {
		payload, err := c.open(b)
		if err != nil {
			return nil, fmt.Errorf("core: opened range table %d pos %d: %w", refs[i].Table, refs[i].Pos, err)
		}
		out[i] = payload
	}
	return out, nil
}

// Resync sweeps the full bucket array from src into dst in batches of the
// given position width per round (0 or out-of-range means one round).
// Every bucket of dst ends up holding src's payload under fresh masks.
func (c *DynClient) Resync(src, dst BucketStore, batch int) error {
	w := c.p.Width()
	if batch <= 0 || batch > w {
		batch = w
	}
	for lo := 0; lo < w; lo += batch {
		hi := lo + batch
		if hi > w {
			hi = w
		}
		if err := c.ResyncRange(src, dst, uint64(lo), uint64(hi)); err != nil {
			return err
		}
	}
	return nil
}
