package core

import (
	"errors"
	"math/rand"
	"testing"

	"pisd/internal/lsh"
)

func TestBatchUpdateEmpty(t *testing.T) {
	idx, client, _ := buildDynamicIndex(t, 50, 30)
	_ = idx
	res, err := client.BatchUpdate(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *res != (BatchResult{}) {
		t.Errorf("empty batch result %+v", res)
	}
}

func TestBatchUpdateValidation(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 50, 31)
	cases := []struct {
		name string
		ups  []Update
	}{
		{"unknown op", []Update{{Op: 0, ID: 1, Meta: items[0].Meta}}},
		{"reserved id", []Update{{Op: OpInsert, ID: bottomID, Meta: items[0].Meta}}},
		{"bad arity", []Update{{Op: OpDelete, ID: 1, Meta: lsh.Metadata{1}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := client.BatchUpdate(idx, tc.ups); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestBatchUpdateProfileReplacement(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 300, 32)
	rng := rand.New(rand.NewSource(33))

	// Replace three users' profiles in one batch: delete old, insert new.
	var updates []Update
	newMetas := make(map[uint64]lsh.Metadata)
	for _, it := range items[:3] {
		nm := make(lsh.Metadata, 5)
		for j := range nm {
			nm[j] = rng.Uint64()
		}
		newMetas[it.ID] = nm
		updates = append(updates,
			Update{Op: OpDelete, ID: it.ID, Meta: it.Meta},
			Update{Op: OpInsert, ID: it.ID, Meta: nm},
		)
	}
	res, err := client.BatchUpdate(idx, updates)
	if err != nil {
		t.Fatalf("BatchUpdate: %v", err)
	}
	if res.Deleted != 3 || res.Inserted != 3 {
		t.Fatalf("result %+v", res)
	}
	// Non-escalated batches use exactly 2 rounds.
	if res.Escalated == 0 && res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}
	// New metadata finds every replaced id. (Old metadata may still hit
	// it by coincidence when the new bucket happens to be addressed by
	// both metadata vectors — that is ordinary probe-bucket sharing, not
	// a stale entry.)
	for _, it := range items[:3] {
		fresh, err := client.Search(idx, newMetas[it.ID])
		if err != nil {
			t.Fatal(err)
		}
		if !containsID(fresh, it.ID) {
			t.Errorf("id %d not reachable via new metadata", it.ID)
		}
	}
	// A delete-only batch removes the id from the index entirely.
	res, err = client.BatchUpdate(idx, []Update{{Op: OpDelete, ID: items[4].ID, Meta: items[4].Meta}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("delete-only result %+v", res)
	}
	gone, err := client.Search(idx, items[4].Meta)
	if err != nil {
		t.Fatal(err)
	}
	if containsID(gone, items[4].ID) {
		t.Errorf("delete-only id %d still reachable", items[4].ID)
	}
	// Unrelated users (not touched by any batch above) survive.
	for _, it := range items[5:15] {
		got, err := client.Search(idx, it.Meta)
		if err != nil {
			t.Fatal(err)
		}
		if !containsID(got, it.ID) {
			t.Errorf("bystander %d lost", it.ID)
		}
	}
}

func TestBatchUpdateDeleteAbsent(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 100, 34)
	_, err := client.BatchUpdate(idx, []Update{{Op: OpDelete, ID: 999999, Meta: items[0].Meta}})
	if !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("err = %v, want ErrNotIndexed", err)
	}
}

func TestBatchUpdateInsertDuplicate(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 100, 35)
	_, err := client.BatchUpdate(idx, []Update{{Op: OpInsert, ID: items[2].ID, Meta: items[2].Meta}})
	if !errors.Is(err, ErrAlreadyIndexed) {
		t.Fatalf("err = %v, want ErrAlreadyIndexed", err)
	}
}

func TestBatchUpdateSharedBuckets(t *testing.T) {
	// Deleting one user and inserting another under the SAME metadata in
	// one batch must not lose either change (the union dedup path).
	keys := testKeys(t, 3)
	p := Params{Tables: 3, Capacity: 200, ProbeRange: 4, MaxLoop: 100, Seed: 1}
	shared := lsh.Metadata{5, 6, 7}
	idx, client, err := BuildDynamic(keys, []Item{{ID: 1, Meta: shared}}, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.BatchUpdate(idx, []Update{
		{Op: OpDelete, ID: 1, Meta: shared},
		{Op: OpInsert, ID: 2, Meta: shared},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || res.Inserted != 1 {
		t.Fatalf("result %+v", res)
	}
	ids, err := client.Search(idx, shared)
	if err != nil {
		t.Fatal(err)
	}
	if containsID(ids, 1) {
		t.Error("deleted id survived batch")
	}
	if !containsID(ids, 2) {
		t.Error("inserted id missing after batch")
	}
}

func TestBatchUpdateEscalationFails(t *testing.T) {
	// Saturate one metadata's entire bucket budget, then batch-insert one
	// more item under it: the batch cannot place it, escalates to the
	// interactive protocol, and that exhausts kicks because every victim
	// shares the same saturated buckets. After ErrNeedRehash the index
	// must be rebuilt (Algorithm 1's rehash()), as in the static scheme.
	keys := testKeys(t, 2)
	p := Params{Tables: 2, Capacity: 400, ProbeRange: 2, MaxLoop: 100, Seed: 2}
	shared := lsh.Metadata{42, 43}
	budget := p.BucketsPerQuery()
	items := make([]Item, budget)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Meta: shared}
	}
	idx, client, err := BuildDynamic(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.BatchUpdate(idx, []Update{{Op: OpInsert, ID: 1000, Meta: shared}})
	if !errors.Is(err, ErrNeedRehash) {
		t.Fatalf("err = %v, want ErrNeedRehash escalation", err)
	}
}

func TestBatchUpdateDeleteMakesRoomForInsert(t *testing.T) {
	// With the budget full, a batch that deletes first can satisfy the
	// insert inside the same fetched union — no escalation, two rounds.
	keys := testKeys(t, 2)
	p := Params{Tables: 2, Capacity: 400, ProbeRange: 2, MaxLoop: 100, Seed: 2}
	shared := lsh.Metadata{42, 43}
	budget := p.BucketsPerQuery()
	items := make([]Item, budget)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Meta: shared}
	}
	idx, client, err := BuildDynamic(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := client.BatchUpdate(idx, []Update{
		{Op: OpDelete, ID: 1, Meta: shared},
		{Op: OpInsert, ID: 1000, Meta: shared},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || res.Inserted != 1 || res.Escalated != 0 || res.Rounds != 2 {
		t.Fatalf("result %+v", res)
	}
	ids, err := client.Search(idx, shared)
	if err != nil {
		t.Fatal(err)
	}
	if containsID(ids, 1) || !containsID(ids, 1000) {
		t.Fatalf("post-batch content wrong: %v", ids)
	}
}

func TestBatchUpdateRefreshesAllBuckets(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 80, 36)
	refs, err := client.Refs(items[9].Meta)
	if err != nil {
		t.Fatal(err)
	}
	before, err := idx.FetchBuckets(refs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.BatchUpdate(idx, []Update{{Op: OpDelete, ID: items[9].ID, Meta: items[9].Meta}}); err != nil {
		t.Fatal(err)
	}
	after, err := idx.FetchBuckets(refs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if string(before[i].EncR) == string(after[i].EncR) {
			t.Fatalf("bucket %v not re-masked by batch", refs[i])
		}
	}
}
