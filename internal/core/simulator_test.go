package core

import (
	"crypto/rand"
	"math"
	mrand "math/rand"
	"testing"
)

// The security proof of Theorem 1 argues a simulator S can fabricate, from
// the trace alone (index size, access/search/intersection patterns), a view
// computationally indistinguishable from the real one. This test implements
// S's index simulation and subjects both indexes to the same black-box
// distinguishers a bounded adversary could cheaply run — byte histograms,
// bucket-collision counts, serial correlation. None of them may tell the
// real index from the simulated one with a margin a random function
// wouldn't also show.
//
// This is not a proof (the proof is in the paper); it is a regression
// guard: structural leaks — unmasked padding, constant bucket prefixes,
// position-dependent masks — would trip these statistics immediately.

// simulateIndex is the simulator's index: N uniformly random buckets.
func simulateIndex(p Params, width int) (*Index, error) {
	x := &Index{params: p, width: width, n: 0}
	x.tables = make([][][]byte, p.Tables)
	for j := range x.tables {
		buckets := make([][]byte, width)
		for pos := 0; pos < width; pos++ {
			b := make([]byte, BucketSize)
			if _, err := rand.Read(b); err != nil {
				return nil, err
			}
			buckets[pos] = b
		}
		x.tables[j] = buckets
	}
	return x, nil
}

// byteHistogram flattens the index's bucket bytes into a 256-bin histogram.
func byteHistogram(x *Index) [256]float64 {
	var h [256]float64
	for j := 0; j < x.params.Tables; j++ {
		for pos := 0; pos < x.width; pos++ {
			b, _ := x.Bucket(j, uint64(pos))
			for _, by := range b {
				h[by]++
			}
		}
	}
	return h
}

// chiSquare compares a histogram against the uniform expectation.
func chiSquare(h [256]float64) float64 {
	var total float64
	for _, c := range h {
		total += c
	}
	expected := total / 256
	var chi float64
	for _, c := range h {
		d := c - expected
		chi += d * d / expected
	}
	return chi
}

// serialCorrelation estimates lag-1 byte correlation over the flattened
// bucket stream.
func serialCorrelation(x *Index) float64 {
	var xs []float64
	for j := 0; j < x.params.Tables; j++ {
		for pos := 0; pos < x.width; pos++ {
			b, _ := x.Bucket(j, uint64(pos))
			for _, by := range b {
				xs = append(xs, float64(by))
			}
		}
	}
	n := len(xs) - 1
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		a, b := xs[i], xs[i+1]
		sx += a
		sy += b
		sxx += a * a
		syy += b * b
		sxy += a * b
	}
	nf := float64(n)
	num := nf*sxy - sx*sy
	den := math.Sqrt((nf*sxx - sx*sx) * (nf*syy - sy*sy))
	if den == 0 {
		return 0
	}
	return num / den
}

func TestSimulatedIndexIndistinguishable(t *testing.T) {
	const n = 600
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := mrand.New(mrand.NewSource(77))
	items := randItems(rng, n, 5)
	real, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := simulateIndex(p, real.Width())
	if err != nil {
		t.Fatal(err)
	}

	// Distinguisher 1: byte-frequency chi-square. For 256 bins the
	// statistic concentrates near 255 (±~3σ = ±68) for uniform data.
	chiReal := chiSquare(byteHistogram(real))
	chiSim := chiSquare(byteHistogram(sim))
	for name, chi := range map[string]float64{"real": chiReal, "simulated": chiSim} {
		if chi > 400 {
			t.Errorf("%s index byte histogram non-uniform: chi2 = %.1f", name, chi)
		}
	}

	// Distinguisher 2: lag-1 serial correlation must be ~0 for both.
	corrReal := serialCorrelation(real)
	corrSim := serialCorrelation(sim)
	if math.Abs(corrReal) > 0.02 {
		t.Errorf("real index serial correlation %.4f", corrReal)
	}
	if math.Abs(corrSim) > 0.02 {
		t.Errorf("simulated index serial correlation %.4f", corrSim)
	}

	// Distinguisher 3: no duplicate buckets in either (a leak such as
	// constant padding would collide instantly).
	for name, x := range map[string]*Index{"real": real, "simulated": sim} {
		seen := make(map[string]struct{}, x.Width()*p.Tables)
		for j := 0; j < p.Tables; j++ {
			for pos := 0; pos < x.Width(); pos++ {
				b, _ := x.Bucket(j, uint64(pos))
				if _, dup := seen[string(b)]; dup {
					t.Fatalf("%s index has duplicate buckets", name)
				}
				seen[string(b)] = struct{}{}
			}
		}
	}
}

// The simulator also fabricates consistent trapdoors for repeat queries:
// verify that the real scheme's repeat-query view is exactly reproducible
// from the first observation (determinism = the only query linkage).
func TestRepeatQueryViewReproducible(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(200)
	rng := mrand.New(mrand.NewSource(78))
	items := randItems(rng, 200, 5)
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	meta := items[0].Meta
	td1, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	ids1, err := idx.SecRec(td1)
	if err != nil {
		t.Fatal(err)
	}
	// An adversary replaying the captured trapdoor gets the identical
	// view — no fresh randomness distinguishes the runs.
	ids2, err := idx.SecRec(td1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids1) != len(ids2) {
		t.Fatal("replayed trapdoor view differs")
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatal("replayed trapdoor view differs")
		}
	}
	// And a freshly issued trapdoor for the same metadata is
	// byte-identical (Definition 4's similarity search pattern).
	td2, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range td1.Tables {
		for i := range td1.Tables[j] {
			if td1.Tables[j][i].Pos != td2.Tables[j][i].Pos ||
				string(td1.Tables[j][i].Mask) != string(td2.Tables[j][i].Mask) {
				t.Fatal("fresh trapdoor for same metadata differs")
			}
		}
	}
}
