package core

import (
	"errors"
	"math/rand"
	"testing"

	"pisd/internal/lsh"
)

// The stash rescues the overflow insert that would otherwise force a
// rehash, and stashed items stay discoverable by every trapdoor.
func TestStashRescuesOverflow(t *testing.T) {
	keys := testKeys(t, 2)
	shared := lsh.Metadata{7, 8}
	budget := 2 * (1 + 1) // l=2, d=1 → 4 addressable buckets
	items := make([]Item, budget+2)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Meta: shared}
	}
	// Without a stash this workload fails...
	noStash := Params{Tables: 2, Capacity: 64, ProbeRange: 1, MaxLoop: 20, Seed: 1}
	if _, err := Build(keys, items, noStash); !errors.Is(err, ErrNeedRehash) {
		t.Fatalf("err without stash = %v, want ErrNeedRehash", err)
	}
	// ...with a stash it builds, and everything is retrievable.
	withStash := noStash
	withStash.StashSize = 4
	idx, err := Build(keys, items, withStash)
	if err != nil {
		t.Fatalf("Build with stash: %v", err)
	}
	// At least the two over-budget items stash; PRF position collisions
	// within the 4 addressable buckets can push one more in.
	if got := idx.BuildStats().StashHits; got < 2 {
		t.Errorf("StashHits = %d, want >= 2", got)
	}
	td, err := GenTpdr(keys, shared, withStash)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Stash) != 4 {
		t.Fatalf("trapdoor stash entries = %d", len(td.Stash))
	}
	ids, err := idx.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != budget+2 {
		t.Fatalf("recovered %d ids, want %d", len(ids), budget+2)
	}
}

// Stashed items are visible to EVERY query, not only same-metadata ones:
// a disjoint query still surfaces them (the stash is globally scanned).
func TestStashVisibleToAllQueries(t *testing.T) {
	keys := testKeys(t, 2)
	shared := lsh.Metadata{7, 8}
	p := Params{Tables: 2, Capacity: 64, ProbeRange: 1, MaxLoop: 20, Seed: 1, StashSize: 2}
	items := make([]Item, 5)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Meta: shared}
	}
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	if idx.BuildStats().StashHits == 0 {
		t.Skip("workload did not overflow into the stash")
	}
	other, err := GenTpdr(keys, lsh.Metadata{999, 998}, p)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := idx.SecRec(other)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < idx.BuildStats().StashHits {
		t.Errorf("disjoint query recovered %d ids, want at least the %d stashed",
			len(ids), idx.BuildStats().StashHits)
	}
}

func TestStashIndexCodecRoundTrip(t *testing.T) {
	keys := testKeys(t, 3)
	rng := rand.New(rand.NewSource(41))
	items := randItems(rng, 100, 3)
	p := Params{Tables: 3, Capacity: CapacityFor(100, 0.8), ProbeRange: 4, MaxLoop: 100, Seed: 1, StashSize: 8}
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Index
	if err := decoded.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if decoded.SizeBytes() != idx.SizeBytes() {
		t.Error("decoded size differs")
	}
	td, err := GenTpdr(keys, items[0].Meta, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := idx.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decoded.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDSet(a, b) {
		t.Error("decoded index retrieves differently")
	}
}

func TestStashSizeBytesAndValidation(t *testing.T) {
	p := Params{Tables: 2, Capacity: 64, ProbeRange: 1, MaxLoop: 10, StashSize: -1}
	if err := p.Validate(); err == nil {
		t.Error("negative stash accepted")
	}
	p.StashSize = 5
	if got := p.BucketsPerQuery(); got != 2*2+5 {
		t.Errorf("BucketsPerQuery = %d", got)
	}
}

// A mismatched trapdoor (stash entries against a stashless index) errors.
func TestStashTrapdoorMismatch(t *testing.T) {
	keys := testKeys(t, 2)
	rng := rand.New(rand.NewSource(42))
	items := randItems(rng, 50, 2)
	noStash := Params{Tables: 2, Capacity: 128, ProbeRange: 2, MaxLoop: 50, Seed: 1}
	idx, err := Build(keys, items, noStash)
	if err != nil {
		t.Fatal(err)
	}
	withStash := noStash
	withStash.StashSize = 3
	td, err := GenTpdr(keys, items[0].Meta, withStash)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.SecRec(td); err == nil {
		t.Error("stash trapdoor against stashless index accepted")
	}
}
