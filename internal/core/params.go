// Package core implements the paper's primary contribution: the secure and
// efficient similarity index over encrypted high-dimensional image profiles
// (Sec. III). It provides
//
//   - the static scheme of Algorithms 1–3: ConSecIdx builds l PRF-addressed
//     cuckoo hash tables whose buckets are XOR-masked identifiers padded
//     with random buckets, GenTpdr issues constant-size trapdoors, and
//     SecRec recovers matching identifiers at the cloud without keys; and
//
//   - the dynamic scheme of Sec. III-D: buckets of the form
//     (G(r) ⊕ (L‖V), Enc(k_r, r)) supporting secure deletion and insertion
//     through full re-masking of every touched bucket.
//
// The cloud-resident types (Index, DynIndex) never hold key material; all
// keyed operations live in build/trapdoor/DynClient code paths that model
// the trusted service front end.
package core

import (
	"fmt"

	"pisd/internal/crypt"
)

// BucketSize is u, the byte width of one encrypted bucket in the static
// scheme. The paper uses 32 bytes ("the output of SHA-2").
const BucketSize = 32

// Params configures a secure index. The same parameters must be used to
// build the index and to generate trapdoors against it.
type Params struct {
	// Tables is l, the number of hash tables (= LSH tables).
	Tables int
	// Capacity is N, the total bucket count; w = ⌈N/l⌉ per table.
	// For n items at load factor τ choose N = ⌈n/τ⌉ (see CapacityFor).
	Capacity int
	// ProbeRange is d, the random probe range per table.
	ProbeRange int
	// MaxLoop bounds cuckoo kick-aways per insertion before a rehash is
	// requested.
	MaxLoop int
	// Seed drives the (non-cryptographic) kick-away choices during build.
	Seed int64
	// StashSize adds a stash of overflow buckets to the static scheme:
	// items whose kick chains exhaust MaxLoop park there instead of
	// forcing a rehash (the classic cuckoo-stash improvement). Every
	// trapdoor addresses the whole stash, so a small stash (a few dozen
	// slots) costs little bandwidth and no extra access-pattern leakage.
	// The dynamic scheme does not use the stash.
	StashSize int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Tables < 1:
		return fmt.Errorf("core: tables must be >= 1, got %d", p.Tables)
	case p.Capacity < p.Tables:
		return fmt.Errorf("core: capacity %d below table count %d", p.Capacity, p.Tables)
	case p.ProbeRange < 0:
		return fmt.Errorf("core: probe range must be >= 0, got %d", p.ProbeRange)
	case p.MaxLoop < 1:
		return fmt.Errorf("core: max loop must be >= 1, got %d", p.MaxLoop)
	case p.StashSize < 0:
		return fmt.Errorf("core: stash size must be >= 0, got %d", p.StashSize)
	}
	return nil
}

// Width returns w, the per-table bucket count.
func (p Params) Width() int {
	return (p.Capacity + p.Tables - 1) / p.Tables
}

// BucketsPerQuery returns l·(d+1) + stash, the number of buckets every
// trapdoor addresses; it fixes the constant bandwidth of the scheme.
func (p Params) BucketsPerQuery() int {
	return p.Tables*(p.ProbeRange+1) + p.StashSize
}

// CapacityFor returns N = ⌈n/τ⌉ for n items at load factor tau.
func CapacityFor(n int, tau float64) int {
	if tau <= 0 || tau > 1 {
		tau = 0.8
	}
	return int(float64(n)/tau) + 1
}

// checkKeys validates that the key set matches the parameter table count.
func checkKeys(keys *crypt.KeySet, p Params) error {
	if keys == nil {
		return fmt.Errorf("core: nil key set")
	}
	if keys.NumTables() < p.Tables {
		return fmt.Errorf("core: key set has %d table keys, need %d", keys.NumTables(), p.Tables)
	}
	return nil
}
