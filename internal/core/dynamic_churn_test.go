package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"pisd/internal/lsh"
)

// churnOracle is the plaintext reference for the dynamic scheme under
// churn. Dynamic placement depends on live kick rounds, so it tracks
// membership semantics rather than slots: which users are live and what
// metadata addresses them.
type churnOracle struct {
	live map[uint64]lsh.Metadata
}

// checkReachable asserts every live user is recovered by a search on its
// own metadata and that no search result strays outside the live set.
func (o *churnOracle) checkReachable(t *testing.T, client *DynClient, idx *DynIndex) {
	t.Helper()
	for id, meta := range o.live {
		ids, err := client.Search(idx, meta)
		if err != nil {
			t.Fatalf("search for live %d: %v", id, err)
		}
		found := false
		for _, got := range ids {
			if got == id {
				found = true
			}
			if _, ok := o.live[got]; !ok {
				t.Fatalf("search surfaced %d, which is not live (deleted or never inserted)", got)
			}
		}
		if !found {
			t.Fatalf("live user %d unreachable via its own metadata", id)
		}
	}
}

// demoteUnreachable removes users a kick-budget overflow left homeless
// and returns them; the dynamic scheme has no stash, so an insert that
// exhausts MaxLoop evicts exactly one previously-live victim.
func (o *churnOracle) demoteUnreachable(t *testing.T, client *DynClient, idx *DynIndex) []uint64 {
	t.Helper()
	var lost []uint64
	for id, meta := range o.live {
		ids, err := client.Search(idx, meta)
		if err != nil {
			t.Fatalf("search for %d: %v", id, err)
		}
		found := false
		for _, got := range ids {
			if got == id {
				found = true
			}
		}
		if !found {
			lost = append(lost, id)
		}
	}
	for _, id := range lost {
		delete(o.live, id)
	}
	return lost
}

// TestDynChurnAgainstOracle drives long randomized interleavings of
// insert / delete / search through the dynamic scheme and checks every
// step against the plaintext oracle: searches return exactly live users,
// every live user stays reachable through its own metadata, duplicate
// inserts and absent deletes surface their typed errors, and the
// kick-budget overflow path (the stashless scheme's overflow analogue)
// loses exactly one victim, which the oracle tracks. Each subtest is
// reproducible from its printed seed.
func TestDynChurnAgainstOracle(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Logf("churn seed %d", seed)
			rng := rand.New(rand.NewSource(seed))
			// Small and tight: ~73% initial load over 96 total slots with
			// a low kick budget, so churn regularly trips ErrNeedRehash.
			p := Params{Tables: 4, Capacity: 96, ProbeRange: 2, MaxLoop: 40, Seed: seed}
			keys := testKeys(t, p.Tables)
			items := randItems(rng, 70, p.Tables)
			idx, client, err := BuildDynamic(keys, items, p)
			if err != nil {
				t.Fatalf("BuildDynamic: %v", err)
			}

			oracle := &churnOracle{live: make(map[uint64]lsh.Metadata, len(items))}
			for _, it := range items {
				oracle.live[it.ID] = it.Meta
			}
			oracle.checkReachable(t, client, idx)

			nextID := uint64(len(items) + 1)
			overflows := 0
			for op := 0; op < 300; op++ {
				switch r := rng.Intn(10); {
				case r < 4: // insert a fresh user
					id := nextID
					nextID++
					meta := randMeta(rng, p.Tables)
					err := client.Insert(idx, id, meta)
					switch {
					case err == nil:
						oracle.live[id] = meta
					case errors.Is(err, ErrNeedRehash):
						// Exactly one user is left homeless by the
						// exhausted kick chain — usually an old victim,
						// occasionally the new user itself when the chain
						// cycles back over it.
						overflows++
						oracle.live[id] = meta
						lost := oracle.demoteUnreachable(t, client, idx)
						if len(lost) != 1 {
							t.Fatalf("op %d: overflow lost %d users (%v), want exactly 1", op, len(lost), lost)
						}
					default:
						t.Fatalf("op %d: insert %d: %v", op, id, err)
					}
				case r < 5: // duplicate insert must be rejected untouched
					id := anyLive(rng, oracle.live)
					if id == 0 {
						continue
					}
					if err := client.Insert(idx, id, oracle.live[id]); !errors.Is(err, ErrAlreadyIndexed) {
						t.Fatalf("op %d: duplicate insert %d: %v, want ErrAlreadyIndexed", op, id, err)
					}
				case r < 7: // delete a live user
					id := anyLive(rng, oracle.live)
					if id == 0 {
						continue
					}
					if err := client.Delete(idx, id, oracle.live[id]); err != nil {
						t.Fatalf("op %d: delete %d: %v", op, id, err)
					}
					delete(oracle.live, id)
				case r < 8: // delete an absent user
					id := nextID + 1000
					if err := client.Delete(idx, id, randMeta(rng, p.Tables)); !errors.Is(err, ErrNotIndexed) {
						t.Fatalf("op %d: absent delete: %v, want ErrNotIndexed", op, err)
					}
				default: // search, on live and random metadata alike
					var meta lsh.Metadata
					if id := anyLive(rng, oracle.live); id != 0 && rng.Intn(2) == 0 {
						meta = oracle.live[id]
					} else {
						meta = randMeta(rng, p.Tables)
					}
					ids, err := client.Search(idx, meta)
					if err != nil {
						t.Fatalf("op %d: search: %v", op, err)
					}
					for _, got := range ids {
						if _, ok := oracle.live[got]; !ok {
							t.Fatalf("op %d: search surfaced non-live user %d", op, got)
						}
					}
				}
				if op%60 == 59 {
					oracle.checkReachable(t, client, idx)
				}
			}
			oracle.checkReachable(t, client, idx)
			if overflows == 0 {
				t.Logf("seed %d never overflowed the kick budget; eviction path untested this seed", seed)
			}
		})
	}
}

// anyLive picks a live id, or 0 when the set is empty. Iteration order of
// a map is randomized by the runtime, so draw deterministically: collect
// and index with the seeded rng.
func anyLive(rng *rand.Rand, live map[uint64]lsh.Metadata) uint64 {
	if len(live) == 0 {
		return 0
	}
	ids := make([]uint64, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids[rng.Intn(len(ids))]
}
