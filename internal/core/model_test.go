package core

import (
	"math/rand"
	"testing"

	"pisd/internal/lsh"
)

// Model-based test: drive the dynamic index with long random operation
// sequences and check it against a trivial map model after every step.
// The invariant is one-sided containment: every live (id, meta) pair must
// be reachable via Search(meta) — the secure index may additionally
// surface other users sharing probe buckets, which the model does not
// track (that is the scheme's retrieval semantics, filtered by ranking).
func TestDynamicModelRandomOps(t *testing.T) {
	const (
		tables = 4
		rounds = 400
	)
	keys := testKeys(t, tables)
	p := Params{
		Tables:     tables,
		Capacity:   600,
		ProbeRange: 6,
		MaxLoop:    300,
		Seed:       1,
	}
	idx, client, err := BuildDynamic(keys, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	model := make(map[uint64]lsh.Metadata)
	nextID := uint64(1)

	randMeta := func() lsh.Metadata {
		m := make(lsh.Metadata, tables)
		for j := range m {
			// Small value space: plenty of shared buckets.
			m[j] = uint64(rng.Intn(40))
		}
		return m
	}
	liveIDs := func() []uint64 {
		out := make([]uint64, 0, len(model))
		for id := range model {
			out = append(out, id)
		}
		return out
	}

	for round := 0; round < rounds; round++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(model) == 0: // insert
			if len(model) > 350 {
				continue // keep below capacity headroom
			}
			id := nextID
			nextID++
			meta := randMeta()
			if err := client.Insert(idx, id, meta); err != nil {
				t.Fatalf("round %d insert %d: %v", round, id, err)
			}
			model[id] = meta
		case op < 7: // delete
			ids := liveIDs()
			id := ids[rng.Intn(len(ids))]
			if err := client.Delete(idx, id, model[id]); err != nil {
				t.Fatalf("round %d delete %d: %v", round, id, err)
			}
			delete(model, id)
		case op < 8: // batch replace
			ids := liveIDs()
			id := ids[rng.Intn(len(ids))]
			newMeta := randMeta()
			res, err := client.BatchUpdate(idx, []Update{
				{Op: OpDelete, ID: id, Meta: model[id]},
				{Op: OpInsert, ID: id, Meta: newMeta},
			})
			if err != nil {
				t.Fatalf("round %d batch replace %d: %v", round, id, err)
			}
			if res.Deleted != 1 || res.Inserted != 1 {
				t.Fatalf("round %d batch result %+v", round, res)
			}
			model[id] = newMeta
		default: // verify a random live id
			ids := liveIDs()
			id := ids[rng.Intn(len(ids))]
			got, err := client.Search(idx, model[id])
			if err != nil {
				t.Fatalf("round %d search: %v", round, err)
			}
			if !containsID(got, id) {
				t.Fatalf("round %d: live id %d unreachable", round, id)
			}
		}
	}

	// Final sweep: every live pair reachable, every recovered id live or
	// a legitimate co-occupant (present in the model).
	for id, meta := range model {
		got, err := client.Search(idx, meta)
		if err != nil {
			t.Fatal(err)
		}
		if !containsID(got, id) {
			t.Fatalf("final: live id %d unreachable", id)
		}
		for _, other := range got {
			if _, ok := model[other]; !ok {
				t.Fatalf("final: search surfaced dead id %d", other)
			}
		}
	}
}
