package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pisd/internal/lsh"
)

// randMeta draws one random metadata vector.
func randMeta(rng *rand.Rand, tables int) lsh.Metadata {
	meta := make(lsh.Metadata, tables)
	for j := range meta {
		meta[j] = rng.Uint64()
	}
	return meta
}

// buildWithMirror builds the secure index and its plaintext mirror over
// the same items in the same order.
func buildWithMirror(t *testing.T, p Params, items []Item) (*Index, *PlainMirror) {
	t.Helper()
	keys := testKeys(t, p.Tables)
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	mirror, err := NewPlainMirror(keys, p)
	if err != nil {
		t.Fatalf("NewPlainMirror: %v", err)
	}
	for _, it := range items {
		if err := mirror.Insert(it.ID, it.Meta); err != nil {
			t.Fatalf("mirror insert %d: %v", it.ID, err)
		}
	}
	return idx, mirror
}

// TestMirrorMatchesSecRecExactly is the core differential property: for
// the same keys, params and insertion order, SecRec over the encrypted
// index and Candidates over the plaintext mirror return identical
// identifier sequences — same identifiers, same discovery order — for
// indexed and non-indexed queries alike.
func TestMirrorMatchesSecRecExactly(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := testParams(200)
			p.Seed = seed
			items := randItems(rng, 200, p.Tables)
			idx, mirror := buildWithMirror(t, p, items)
			keys := testKeys(t, p.Tables)

			queries := make([]lsh.Metadata, 0, 60)
			for i := 0; i < 40; i++ {
				queries = append(queries, items[rng.Intn(len(items))].Meta)
			}
			for i := 0; i < 20; i++ {
				queries = append(queries, randMeta(rng, p.Tables))
			}
			for q, meta := range queries {
				td, err := GenTpdr(keys, meta, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := idx.SecRec(td)
				if err != nil {
					t.Fatalf("SecRec: %v", err)
				}
				want := mirror.Candidates(meta)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("query %d: SecRec %v, mirror %v", q, got, want)
				}
			}
		})
	}
}

// TestMirrorMatchesSecRecWithStash forces items through the stash path
// (tiny capacity, stash enabled) and checks the mirror still predicts
// SecRec exactly — the stash is part of the placement it replays.
func TestMirrorMatchesSecRecWithStash(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Params{Tables: 3, Capacity: 8, ProbeRange: 1, MaxLoop: 8, Seed: 4, StashSize: 8}
	keys := testKeys(t, p.Tables)

	// Fill until the stash itself overflows, then keep the largest prefix
	// that fits: with the table this tight the stash is necessarily in
	// use, and the mirror must agree on every query.
	probe, err := NewPlainMirror(keys, p)
	if err != nil {
		t.Fatal(err)
	}
	var items []Item
	overflowed := false
	for i := 0; i < 200; i++ {
		it := Item{ID: uint64(i + 1), Meta: randMeta(rng, p.Tables)}
		if err := probe.Insert(it.ID, it.Meta); err != nil {
			overflowed = true
			break
		}
		items = append(items, it)
	}
	// Overflow means the stash was full when the last insert failed, so
	// the retained prefix holds StashSize stashed items.
	if !overflowed {
		t.Fatal("tiny table never overflowed; stash cannot be proven in use")
	}
	idx, mirror := buildWithMirror(t, p, items)
	if got, want := mirror.Len(), len(items); got != want {
		t.Fatalf("mirror holds %d items, want %d", got, want)
	}
	for _, it := range items {
		td, err := GenTpdr(keys, it.Meta, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		want := mirror.Candidates(it.Meta)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("id %d: SecRec %v, mirror %v", it.ID, got, want)
		}
		found := false
		for _, id := range got {
			if id == it.ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("id %d not recovered by its own metadata", it.ID)
		}
	}
}

// TestMirrorOverflowParity checks that the mirror reports ErrNeedRehash on
// exactly the item the secure build chokes on: stash exhaustion is part of
// the mirrored placement, not an approximation.
func TestMirrorOverflowParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Params{Tables: 2, Capacity: 4, ProbeRange: 1, MaxLoop: 4, Seed: 5, StashSize: 1}
	keys := testKeys(t, p.Tables)
	mirror, err := NewPlainMirror(keys, p)
	if err != nil {
		t.Fatal(err)
	}
	var placed []Item
	overflowAt := -1
	for i := 0; i < 200; i++ {
		it := Item{ID: uint64(i + 1), Meta: randMeta(rng, p.Tables)}
		if err := mirror.Insert(it.ID, it.Meta); err != nil {
			if !errors.Is(err, ErrNeedRehash) {
				t.Fatalf("mirror overflow surfaced %v, want ErrNeedRehash", err)
			}
			overflowAt = i
			break
		}
		placed = append(placed, it)
	}
	if overflowAt < 0 {
		t.Fatal("tiny table never overflowed; test is inert")
	}
	// The secure build over the same prefix succeeds; adding the fatal
	// item makes it fail the same way.
	if _, err := Build(keys, placed, p); err != nil {
		t.Fatalf("Build over pre-overflow prefix: %v", err)
	}
	// Rebuild the exact sequence including the overflowing item: the rng
	// stream must match, so replay the draws from scratch.
	rng = rand.New(rand.NewSource(5))
	var seq []Item
	for i := 0; i <= overflowAt; i++ {
		seq = append(seq, Item{ID: uint64(i + 1), Meta: randMeta(rng, p.Tables)})
	}
	if _, err := Build(keys, seq, p); !errors.Is(err, ErrNeedRehash) {
		t.Fatalf("Build over overflowing sequence: %v, want ErrNeedRehash", err)
	}
}

// TestMirrorMatchesPartitionedUnion checks the sharded static tier against
// the mirror: each shard's SecRec must equal the mirror's candidates
// restricted to that shard's users, in discovery order.
func TestMirrorMatchesPartitionedUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := testParams(150)
	p.Seed = 6
	items := randItems(rng, 150, p.Tables)
	keys := testKeys(t, p.Tables)
	const shards = 3
	owner := DefaultOwner(shards)
	idxs, err := BuildPartitioned(keys, items, p, shards, owner)
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := NewPlainMirror(keys, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := mirror.Insert(it.ID, it.Meta); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		meta := items[rng.Intn(len(items))].Meta
		td, err := GenTpdr(keys, meta, p)
		if err != nil {
			t.Fatal(err)
		}
		all := mirror.Candidates(meta)
		for s := 0; s < shards; s++ {
			got, err := idxs[s].SecRec(td)
			if err != nil {
				t.Fatal(err)
			}
			var want []uint64
			for _, id := range all {
				if owner(id) == s {
					want = append(want, id)
				}
			}
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d shard %d: SecRec %v, mirror projection %v", i, s, got, want)
			}
		}
	}
}
