package core

import (
	"errors"
	"math/rand"
	"testing"

	"pisd/internal/lsh"
)

func buildDynamicIndex(t *testing.T, n int, seed int64) (*DynIndex, *DynClient, []Item) {
	t.Helper()
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(seed))
	items := randItems(rng, n, 5)
	idx, client, err := BuildDynamic(keys, items, p)
	if err != nil {
		t.Fatalf("BuildDynamic: %v", err)
	}
	return idx, client, items
}

func TestDynamicBuildAndSearch(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 300, 1)
	for _, it := range items[:60] {
		ids, err := client.Search(idx, it.Meta)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		if !containsID(ids, it.ID) {
			t.Fatalf("id %d not found by dynamic search", it.ID)
		}
	}
}

func TestDynamicSearchMatchesStaticSecRec(t *testing.T) {
	// Static and dynamic indexes built from the same items and keys must
	// retrieve identical candidate sets.
	const n = 250
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, n, 5)
	static, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	dyn, client, err := BuildDynamic(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items[:40] {
		td, err := GenTpdr(keys, it.Meta, p)
		if err != nil {
			t.Fatal(err)
		}
		a, err := static.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		b, err := client.Search(dyn, it.Meta)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDSet(a, b) {
			t.Fatalf("static %v != dynamic %v for id %d", a, b, it.ID)
		}
	}
}

func TestDynamicDeleteThenSearchMisses(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 200, 3)
	victim := items[17]
	if err := client.Delete(idx, victim.ID, victim.Meta); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	ids, err := client.Search(idx, victim.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if containsID(ids, victim.ID) {
		t.Fatal("deleted id still reachable")
	}
	// Other items sharing buckets must survive.
	for _, it := range items[:10] {
		if it.ID == victim.ID {
			continue
		}
		got, err := client.Search(idx, it.Meta)
		if err != nil {
			t.Fatal(err)
		}
		if !containsID(got, it.ID) {
			t.Fatalf("unrelated id %d lost after delete", it.ID)
		}
	}
}

func TestDynamicDeleteAbsent(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 100, 4)
	err := client.Delete(idx, 999999, items[0].Meta)
	if !errors.Is(err, ErrNotIndexed) {
		t.Fatalf("err = %v, want ErrNotIndexed", err)
	}
}

func TestDynamicInsertThenFound(t *testing.T) {
	idx, client, _ := buildDynamicIndex(t, 200, 5)
	rng := rand.New(rand.NewSource(6))
	meta := make(lsh.Metadata, 5)
	for j := range meta {
		meta[j] = rng.Uint64()
	}
	const newID = 777777
	if err := client.Insert(idx, newID, meta); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	ids, err := client.Search(idx, meta)
	if err != nil {
		t.Fatal(err)
	}
	if !containsID(ids, newID) {
		t.Fatal("inserted id not found")
	}
}

func TestDynamicInsertDuplicate(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 150, 7)
	err := client.Insert(idx, items[3].ID, items[3].Meta)
	if !errors.Is(err, ErrAlreadyIndexed) {
		t.Fatalf("err = %v, want ErrAlreadyIndexed", err)
	}
}

func TestDynamicInsertReservedID(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 50, 8)
	if err := client.Insert(idx, bottomID, items[0].Meta); err == nil {
		t.Fatal("reserved id accepted")
	}
}

func TestDynamicUpdateCycle(t *testing.T) {
	// Profile update = delete old + insert new (Sec. III-D); iterate to
	// shake out re-masking bugs.
	idx, client, items := buildDynamicIndex(t, 200, 9)
	rng := rand.New(rand.NewSource(10))
	it := items[42]
	meta := it.Meta
	for round := 0; round < 8; round++ {
		if err := client.Delete(idx, it.ID, meta); err != nil {
			t.Fatalf("round %d delete: %v", round, err)
		}
		newMeta := make(lsh.Metadata, 5)
		for j := range newMeta {
			newMeta[j] = rng.Uint64()
		}
		if err := client.Insert(idx, it.ID, newMeta); err != nil {
			t.Fatalf("round %d insert: %v", round, err)
		}
		ids, err := client.Search(idx, newMeta)
		if err != nil {
			t.Fatal(err)
		}
		if !containsID(ids, it.ID) {
			t.Fatalf("round %d: updated id unreachable", round)
		}
		meta = newMeta
	}
}

func TestDynamicKickAwayPath(t *testing.T) {
	// Force kicks: identical metadata so all l*(d+1) buckets fill, then
	// one more insert must kick; with a second distinct metadata the chain
	// can still terminate only if buckets free up, so keep within budget
	// but verify kicks occur under contention across overlapping metadata.
	keys := testKeys(t, 2)
	p := Params{Tables: 2, Capacity: 40, ProbeRange: 2, MaxLoop: 50, Seed: 3}
	idx, client, err := BuildDynamic(keys, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	shared := lsh.Metadata{11, 22}
	budget := p.BucketsPerQuery() // 6 addressable buckets
	for i := 1; i <= budget; i++ {
		if err := client.Insert(idx, uint64(i), shared); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// All buckets for `shared` are now full; the next insert with the
	// same metadata can only kick, and the kicked victim re-inserts into
	// the same full set, so the chain must exhaust MaxLoop.
	err = client.Insert(idx, uint64(budget+1), shared)
	if !errors.Is(err, ErrNeedRehash) {
		t.Fatalf("err = %v, want ErrNeedRehash", err)
	}
	if client.Stats().Kicks == 0 {
		t.Error("expected kick-aways to be recorded")
	}
}

func TestDynamicBucketsAreRefreshedOnUpdate(t *testing.T) {
	// Secure deletion must re-mask all l*(d+1) fetched buckets: the cloud
	// should see fresh bytes even in untouched buckets.
	idx, client, items := buildDynamicIndex(t, 100, 11)
	it := items[5]
	refs, err := client.Refs(it.Meta)
	if err != nil {
		t.Fatal(err)
	}
	before, err := idx.FetchBuckets(refs)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Delete(idx, it.ID, it.Meta); err != nil {
		t.Fatal(err)
	}
	after, err := idx.FetchBuckets(refs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if string(before[i].Masked) == string(after[i].Masked) &&
			string(before[i].EncR) == string(after[i].EncR) {
			t.Fatalf("bucket %v not re-masked by deletion", refs[i])
		}
	}
}

func TestDynIndexStoreValidation(t *testing.T) {
	idx, client, items := buildDynamicIndex(t, 50, 12)
	refs, err := client.Refs(items[0].Meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.FetchBuckets([]BucketRef{{Table: 99, Pos: 0}}); err == nil {
		t.Error("out-of-range fetch accepted")
	}
	if err := idx.StoreBuckets(refs, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	buckets, err := idx.FetchBuckets(refs)
	if err != nil {
		t.Fatal(err)
	}
	buckets[0].Masked = buckets[0].Masked[:4]
	if err := idx.StoreBuckets(refs, buckets); err == nil {
		t.Error("short masked payload accepted")
	}
}

func TestDynamicTamperedBucketDetected(t *testing.T) {
	// Flipping bits in EncR must surface as an authentication error when
	// the front end opens the bucket.
	idx, client, items := buildDynamicIndex(t, 80, 13)
	refs, err := client.Refs(items[0].Meta)
	if err != nil {
		t.Fatal(err)
	}
	buckets, err := idx.FetchBuckets(refs[:1])
	if err != nil {
		t.Fatal(err)
	}
	buckets[0].EncR[0] ^= 1
	if err := idx.StoreBuckets(refs[:1], buckets); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Search(idx, items[0].Meta); err == nil {
		t.Fatal("tampered bucket not detected")
	}
}

func TestDynIndexSizeBytes(t *testing.T) {
	idx, _, _ := buildDynamicIndex(t, 100, 14)
	p := idx.Params()
	per := idx.tables[0][0].SizeBytes()
	if got, want := idx.SizeBytes(), p.Tables*idx.Width()*per; got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
}

func TestPositionTrapdoor(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(100)
	meta := lsh.Metadata{1, 2, 3, 4, 5}
	td, err := GenPosTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := td.SizeBytes(), 8*p.BucketsPerQuery(); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	// Positions must agree with the full trapdoor's positions.
	full, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range td.Tables {
		for i := range td.Tables[j] {
			if td.Tables[j][i] != full.Tables[j][i].Pos {
				t.Fatal("position trapdoor disagrees with full trapdoor")
			}
		}
	}
	if _, err := GenPosTpdr(keys, lsh.Metadata{1}, p); err == nil {
		t.Error("arity mismatch accepted")
	}
}
