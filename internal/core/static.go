package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pisd/internal/crypt"
	"pisd/internal/cuckoo"
	"pisd/internal/lsh"
)

// ErrNeedRehash is returned by Build when cuckoo insertion exceeded MaxLoop
// kicks: the caller must derive fresh LSH metadata (rehash()) and rebuild.
var ErrNeedRehash = errors.New("core: insertion failed, rehash with fresh LSH parameters required")

// Item pairs a user identifier L with its LSH metadata V.
type Item struct {
	ID   uint64
	Meta lsh.Metadata
}

// Index is the static secure index I hosted by the cloud server. It holds
// only masked buckets and random padding; without the key set its content
// is computationally indistinguishable from random (Theorem 1).
type Index struct {
	params Params
	width  int
	// tables[j] is table T_j; each bucket is a BucketSize-byte masked
	// payload or random padding.
	tables [][][]byte
	// stash holds the StashSize overflow buckets, masked like ordinary
	// buckets and scanned by every trapdoor.
	stash [][]byte
	n     int
	stats BuildStats
}

// BuildStats reports observable build behaviour (Fig. 4(c) and 5(a)).
type BuildStats struct {
	// Kicks is the number of cuckoo kick-away operations during build.
	Kicks int
	// PrimaryHits and ProbeHits count how insertions were resolved.
	PrimaryHits int
	ProbeHits   int
	// StashHits counts items parked in the stash.
	StashHits int
	// InsertNanos and EncryptNanos split the build cost into the cuckoo
	// placement phase and the bucket-encryption phase.
	InsertNanos  int64
	EncryptNanos int64
}

// Build implements ConSecIdx(K, S, V) for the identifier/metadata part: it
// places every item with primary insertion, random probing and cuckoo
// kick-aways (Algorithms 1–3), then encrypts occupied buckets with PRF
// masks and fills empty buckets with random padding.
//
// Profile encryption (S* = Enc(ks, S)) is a separate concern; see
// crypt.EncProfile and the frontend package.
func Build(keys *crypt.KeySet, items []Item, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkKeys(keys, p); err != nil {
		return nil, err
	}
	placer, err := newPlacer(keys, p)
	if err != nil {
		return nil, err
	}
	insertStart := time.Now()
	for _, it := range items {
		if it.ID == bottomID {
			return nil, fmt.Errorf("core: identifier %d is reserved", it.ID)
		}
		if err := placer.Insert(it.ID, it.Meta); err != nil {
			if errors.Is(err, cuckoo.ErrFull) {
				return nil, fmt.Errorf("%w: %v", ErrNeedRehash, err)
			}
			return nil, fmt.Errorf("core: insert %d: %w", it.ID, err)
		}
	}
	insertNanos := time.Since(insertStart).Nanoseconds()

	encStart := time.Now()
	idx, err := encryptStatic(keys, placer, p, len(items), nil)
	if err != nil {
		return nil, err
	}
	idx.stats.InsertNanos = insertNanos
	idx.stats.EncryptNanos = time.Since(encStart).Nanoseconds()
	return idx, nil
}

// newPlacer constructs the shared cuckoo engine with PRF addressing. The
// per-table PRF handles are resolved once up front so placement — the
// kick-away-heavy inner loop of Algorithm 2 — never takes the key-cache
// lock.
func newPlacer(keys *crypt.KeySet, p Params) (*cuckoo.Index, error) {
	prfs := make([]*crypt.PRF, p.Tables)
	for j := range prfs {
		prfs[j] = keys.TablePRF(j)
	}
	cp := cuckoo.Params{
		Tables:     p.Tables,
		Capacity:   p.Capacity,
		ProbeRange: p.ProbeRange,
		MaxLoop:    p.MaxLoop,
		Seed:       p.Seed,
		StashSize:  p.StashSize,
		PosFunc: func(table int, key uint64, delta, width int) int {
			return prfPos(prfs[table], key, delta, width)
		},
	}
	return cuckoo.New(cp)
}

// encryptStatic runs the encryption phase of Algorithm 1 over a filled
// placer: masked buckets for occupied slots, random padding elsewhere.
// Padding and mask derivation are independent per table, so the phase
// fans out across CPUs. A non-nil include filter restricts the encrypted
// identifiers to a subset of the placement (the sharded build); excluded
// slots stay random padding, indistinguishable from empty buckets.
func encryptStatic(keys *crypt.KeySet, placer *cuckoo.Index, p Params, n int, include func(uint64) bool) (*Index, error) {
	w := placer.Width()
	idx := &Index{params: p, width: w, n: n}
	st := placer.Stats()
	idx.stats.Kicks = st.Kicks
	idx.stats.PrimaryHits = st.PrimaryHits
	idx.stats.ProbeHits = st.ProbeHits

	idx.tables = make([][][]byte, p.Tables)
	// Collect occupied slots per table so each worker touches only its
	// own table's buckets.
	occupied := make([][]struct {
		pos int
		id  uint64
	}, p.Tables)
	placer.Walk(func(table, pos int, id uint64) {
		if include != nil && !include(id) {
			return
		}
		occupied[table] = append(occupied[table], struct {
			pos int
			id  uint64
		}{pos, id})
	})

	workers := runtime.GOMAXPROCS(0)
	if workers > p.Tables {
		workers = p.Tables
	}
	if workers < 1 {
		workers = 1
	}
	tableCh := make(chan int, p.Tables)
	for j := 0; j < p.Tables; j++ {
		tableCh <- j
	}
	close(tableCh)
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One DRBG per worker: padding comes from an AES-CTR
			// keystream under a fresh random seed instead of one kernel
			// read per table (see DESIGN.md §10 for the leakage argument).
			drbg, err := crypt.NewDRBG()
			if err != nil {
				errCh <- fmt.Errorf("core: random padding: %w", err)
				return
			}
			var mask [BucketSize]byte
			for j := range tableCh {
				// One contiguous allocation per table keeps the 1M-user
				// build within memory and makes SizeBytes exact.
				flat := make([]byte, w*BucketSize)
				drbg.Fill(flat)
				buckets := make([][]byte, w)
				for pos := 0; pos < w; pos++ {
					buckets[pos] = flat[pos*BucketSize : (pos+1)*BucketSize]
				}
				prf := keys.TablePRF(j)
				for _, slot := range occupied[j] {
					payload := encodePayload(slot.id)
					prf.MaskInto(mask[:], j, uint64(slot.pos))
					crypt.XOR(buckets[slot.pos], mask[:], payload[:])
				}
				idx.tables[j] = buckets
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return nil, err
	}
	// Stash: random padding, then mask the occupied slots.
	drbg, err := crypt.NewDRBG()
	if err != nil {
		return nil, fmt.Errorf("core: stash padding: %w", err)
	}
	idx.stash = make([][]byte, p.StashSize)
	stashFlat := make([]byte, p.StashSize*BucketSize)
	drbg.Fill(stashFlat)
	for pos := range idx.stash {
		idx.stash[pos] = stashFlat[pos*BucketSize : (pos+1)*BucketSize]
	}
	var mask [BucketSize]byte
	placer.WalkStash(func(pos int, id uint64) {
		if include != nil && !include(id) {
			return
		}
		payload := encodePayload(id)
		stashMaskInto(mask[:], keys, p.Tables, pos)
		crypt.XOR(idx.stash[pos], mask[:], payload[:])
	})
	idx.stats.StashHits = placer.Stats().StashHits
	return idx, nil
}

// Params returns the index parameters (public, shared with the cloud).
func (x *Index) Params() Params { return x.params }

// Len returns n, the number of indexed items.
func (x *Index) Len() int { return x.n }

// Width returns w, the per-table bucket count.
func (x *Index) Width() int { return x.width }

// SizeBytes returns the exact storage footprint of the bucket arrays:
// u · (w·l + stash), the paper's O(n) index size.
func (x *Index) SizeBytes() int {
	return (x.params.Tables*x.width + len(x.stash)) * BucketSize
}

// LoadFactor returns n / (w·l).
func (x *Index) LoadFactor() float64 {
	return float64(x.n) / float64(x.width*x.params.Tables)
}

// BuildStats returns the recorded build statistics.
func (x *Index) BuildStats() BuildStats { return x.stats }

// Bucket returns the raw encrypted bucket at (table, pos); used by tests to
// verify indistinguishability and by the transport layer.
func (x *Index) Bucket(table int, pos uint64) ([]byte, error) {
	if table < 0 || table >= x.params.Tables || pos >= uint64(x.width) {
		return nil, fmt.Errorf("core: bucket (%d,%d) out of range", table, pos)
	}
	return x.tables[table][pos], nil
}

// SecRecScratch holds the reusable working state of a SecRec evaluation —
// the dedup set and the unmask buffer — so servers answering many queries
// (the sharded fan-out in particular) allocate neither per query nor per
// shard. A scratch is single-goroutine state; pool or confine it.
type SecRecScratch struct {
	seen map[uint64]struct{}
	buf  [BucketSize]byte
}

// NewSecRecScratch returns a scratch sized for p's per-query bucket count.
func NewSecRecScratch(p Params) *SecRecScratch {
	return &SecRecScratch{seen: make(map[uint64]struct{}, p.BucketsPerQuery())}
}

// SecRec implements M ← SecRec(t, I) minus the profile fetch: given a
// trapdoor it unmasks the l·(d+1) addressed buckets and returns the
// recovered identifiers (deduplicated, order of discovery). The cloud then
// returns the referenced encrypted profiles {S*}; see cloud.Server.
//
// SecRec requires no key material: the trapdoor carries positions and
// one-time masks, exactly the view the security proof simulates.
func (x *Index) SecRec(t *Trapdoor) ([]uint64, error) {
	return x.SecRecWith(t, nil)
}

// SecRecWith is SecRec with caller-provided scratch; a nil scratch
// allocates fresh working state for this call.
func (x *Index) SecRecWith(t *Trapdoor, sc *SecRecScratch) ([]uint64, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil trapdoor")
	}
	if len(t.Tables) != x.params.Tables {
		return nil, fmt.Errorf("core: trapdoor covers %d tables, index has %d", len(t.Tables), x.params.Tables)
	}
	if sc == nil {
		sc = NewSecRecScratch(x.params)
	}
	clear(sc.seen)
	ids := make([]uint64, 0, x.params.BucketsPerQuery())
	for j, entries := range t.Tables {
		for i := range entries {
			e := &entries[i]
			if e.Pos >= uint64(x.width) {
				return nil, fmt.Errorf("core: trapdoor position %d out of range (w=%d)", e.Pos, x.width)
			}
			var err error
			if ids, err = sc.collect(ids, x.tables[j][e.Pos], e.Mask); err != nil {
				return nil, err
			}
		}
	}
	if len(t.Stash) > len(x.stash) {
		return nil, fmt.Errorf("core: trapdoor stash covers %d slots, index has %d", len(t.Stash), len(x.stash))
	}
	for pos, mask := range t.Stash {
		var err error
		if ids, err = sc.collect(ids, x.stash[pos], mask); err != nil {
			return nil, err
		}
	}
	return ids, nil
}

// collect unmasks one bucket into the scratch buffer and appends any
// recovered, not-yet-seen identifier to ids.
func (sc *SecRecScratch) collect(ids []uint64, masked, mask []byte) ([]uint64, error) {
	if len(mask) != BucketSize {
		return ids, fmt.Errorf("core: trapdoor mask length %d, want %d", len(mask), BucketSize)
	}
	crypt.XOR(sc.buf[:], mask, masked)
	if id, ok := decodePayload(sc.buf); ok {
		if _, dup := sc.seen[id]; !dup {
			sc.seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	return ids, nil
}
