package core

import (
	"math/rand"
	"testing"
)

// TestBuildPartitionedEqualsSingleNode is the sharding correctness anchor:
// for the same keys, items and params, the union over shards of SecRec
// against the partitioned indexes must recover exactly the identifiers
// SecRec recovers from the single-node index, with every identifier served
// by exactly one shard (its owner).
func TestBuildPartitionedEqualsSingleNode(t *testing.T) {
	const (
		n      = 3000
		shards = 4
	)
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, n, p.Tables)

	single, err := Build(keys, items, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	parts, err := BuildPartitioned(keys, items, p, shards, nil)
	if err != nil {
		t.Fatalf("BuildPartitioned: %v", err)
	}
	if len(parts) != shards {
		t.Fatalf("got %d shards, want %d", len(parts), shards)
	}
	total := 0
	for s, idx := range parts {
		if idx.Width() != single.Width() {
			t.Fatalf("shard %d width %d, single-node width %d", s, idx.Width(), single.Width())
		}
		total += idx.Len()
	}
	if total != n {
		t.Fatalf("shard item counts sum to %d, want %d", total, n)
	}

	owner := DefaultOwner(shards)
	for q := 0; q < 50; q++ {
		meta := items[rng.Intn(n)].Meta
		td, err := GenTpdr(keys, meta, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[uint64]int)
		for s, idx := range parts {
			ids, err := idx.SecRec(td)
			if err != nil {
				t.Fatalf("shard %d SecRec: %v", s, err)
			}
			for _, id := range ids {
				if prev, dup := got[id]; dup {
					t.Fatalf("id %d recovered from shards %d and %d", id, prev, s)
				}
				if owner(id) != s {
					t.Fatalf("id %d recovered from shard %d, owner is %d", id, s, owner(id))
				}
				got[id] = s
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: union recovered %d ids, single-node %d", q, len(got), len(want))
		}
		for _, id := range want {
			if _, ok := got[id]; !ok {
				t.Fatalf("query %d: id %d found single-node but not in any shard", q, id)
			}
		}
	}
}

func TestBuildPartitionedSingleShardMatchesBuild(t *testing.T) {
	const n = 500
	keys := testKeys(t, 5)
	p := testParams(n)
	items := randItems(rand.New(rand.NewSource(3)), n, p.Tables)

	single, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := BuildPartitioned(keys, items, p, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One shard must be bucket-for-bucket identical in the occupied slots:
	// every trapdoor recovers the same set.
	meta := items[42].Meta
	td, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := single.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parts[0].SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("single %d ids, 1-shard partitioned %d ids", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("id order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBuildPartitionedRejectsBadInput(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(100)
	items := randItems(rand.New(rand.NewSource(1)), 100, p.Tables)
	if _, err := BuildPartitioned(keys, items, p, 0, nil); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := BuildPartitioned(keys, items, p, 2, func(uint64) int { return 5 }); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := BuildPartitioned(keys, items, p, 2, func(uint64) int { return -1 }); err == nil {
		t.Error("negative owner accepted")
	}
}

func TestBuildPartitionedStashCovered(t *testing.T) {
	// Force stash usage and verify stashed ids are still recovered by the
	// owning shard only.
	const n = 400
	keys := testKeys(t, 5)
	p := testParams(n)
	p.StashSize = 8
	rng := rand.New(rand.NewSource(11))
	items := randItems(rng, n, p.Tables)

	single, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := BuildPartitioned(keys, items, p, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 20; q++ {
		meta := items[rng.Intn(n)].Meta
		td, err := GenTpdr(keys, meta, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		union := make(map[uint64]struct{})
		for _, idx := range parts {
			ids, err := idx.SecRec(td)
			if err != nil {
				t.Fatal(err)
			}
			for _, id := range ids {
				union[id] = struct{}{}
			}
		}
		if len(union) != len(want) {
			t.Fatalf("stash query %d: union %d ids, single %d", q, len(union), len(want))
		}
	}
}
