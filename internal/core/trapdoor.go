package core

import (
	"fmt"

	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

// Entry is one bucket reference inside a trapdoor: the PRF-permuted
// position pos and the one-time unmasking value r = g(k_j, j ‖ pos).
type Entry struct {
	Pos  uint64
	Mask []byte
}

// Trapdoor is the secure discovery request t output by GenTpdr(K, V):
// for each of the l tables, d+1 entries (primary + d probes). Trapdoors
// are deterministic in V, which is exactly the similarity-search-pattern
// leakage quantified by Definition 4.
type Trapdoor struct {
	// Tables[j] holds the d+1 entries for hash table T_j.
	Tables [][]Entry
	// Stash[pos] is the unmasking value for stash slot pos; present when
	// the index was built with a stash (every query scans all of it).
	Stash [][]byte
}

// GenTpdr implements t ← GenTpdr(K, V) for the static scheme: it one-way
// transforms the metadata into positions via f and attaches the masks via
// g so the cloud can unmask the addressed buckets without learning the
// metadata or any non-addressed bucket.
func GenTpdr(keys *crypt.KeySet, meta lsh.Metadata, p Params) (*Trapdoor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkKeys(keys, p); err != nil {
		return nil, err
	}
	if len(meta) != p.Tables {
		return nil, fmt.Errorf("core: metadata has %d tables, params have %d", len(meta), p.Tables)
	}
	w := p.Width()
	t := &Trapdoor{Tables: make([][]Entry, p.Tables)}
	for j := 0; j < p.Tables; j++ {
		prf := keys.TablePRF(j)
		// All d+1 masks of a table share one backing buffer: a single
		// allocation instead of one per entry. Full slice expressions keep
		// the entries from growing into each other.
		masks := make([]byte, (p.ProbeRange+1)*BucketSize)
		entries := make([]Entry, 0, p.ProbeRange+1)
		for delta := 0; delta <= p.ProbeRange; delta++ {
			pos := uint64(prfPos(prf, meta[j], delta, w))
			mask := masks[delta*BucketSize : (delta+1)*BucketSize : (delta+1)*BucketSize]
			prf.MaskInto(mask, j, pos)
			entries = append(entries, Entry{Pos: pos, Mask: mask})
		}
		t.Tables[j] = entries
	}
	if p.StashSize > 0 {
		prf := keys.TablePRF(0)
		masks := make([]byte, p.StashSize*BucketSize)
		t.Stash = make([][]byte, p.StashSize)
		for pos := 0; pos < p.StashSize; pos++ {
			mask := masks[pos*BucketSize : (pos+1)*BucketSize : (pos+1)*BucketSize]
			prf.MaskInto(mask, p.Tables, uint64(pos))
			t.Stash[pos] = mask
		}
	}
	return t, nil
}

// SizeBytes returns the wire size of the trapdoor: per entry an 8-byte
// position plus the 32-byte mask, plus one mask per stash slot.
func (t *Trapdoor) SizeBytes() int {
	n := 0
	for _, entries := range t.Tables {
		for _, e := range entries {
			n += 8 + len(e.Mask)
		}
	}
	for _, m := range t.Stash {
		n += len(m)
	}
	return n
}

// Entries returns the total number of bucket references, l·(d+1) plus the
// stash size.
func (t *Trapdoor) Entries() int {
	n := len(t.Stash)
	for _, entries := range t.Tables {
		n += len(entries)
	}
	return n
}

// PositionTrapdoor is the positions-only variant used by the dynamic
// scheme's search, deletion and insertion (Sec. III-D: "similar as the
// search trapdoor but only contains the position pos"). The masks of
// dynamic buckets are derived from per-bucket random values held encrypted
// at the cloud, so no mask material travels with the request.
type PositionTrapdoor struct {
	// Tables[j] holds the d+1 positions for hash table T_j.
	Tables [][]uint64
}

// GenPosTpdr derives the positions-only trapdoor for metadata V.
func GenPosTpdr(keys *crypt.KeySet, meta lsh.Metadata, p Params) (*PositionTrapdoor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkKeys(keys, p); err != nil {
		return nil, err
	}
	if len(meta) != p.Tables {
		return nil, fmt.Errorf("core: metadata has %d tables, params have %d", len(meta), p.Tables)
	}
	w := p.Width()
	t := &PositionTrapdoor{Tables: make([][]uint64, p.Tables)}
	for j := 0; j < p.Tables; j++ {
		prf := keys.TablePRF(j)
		positions := make([]uint64, 0, p.ProbeRange+1)
		for delta := 0; delta <= p.ProbeRange; delta++ {
			positions = append(positions, uint64(prfPos(prf, meta[j], delta, w)))
		}
		t.Tables[j] = positions
	}
	return t, nil
}

// SizeBytes returns the wire size: 8 bytes per position.
func (t *PositionTrapdoor) SizeBytes() int {
	n := 0
	for _, positions := range t.Tables {
		n += 8 * len(positions)
	}
	return n
}
