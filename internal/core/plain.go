package core

import (
	"errors"
	"fmt"

	"pisd/internal/crypt"
	"pisd/internal/cuckoo"
	"pisd/internal/lsh"
)

// PlainMirror is the keyed plaintext twin of the static secure index: the
// same cuckoo placement engine, PRF bucket addressing, kick seed,
// probe/stash policy and insertion order as Build, with identifiers kept
// in the clear instead of XOR-masked into buckets. Feeding a mirror the
// items Build consumed — same keys, params and order — reproduces the
// secure placement slot for slot, so Candidates predicts exactly what
// SecRec recovers for any query. Differential tests use it as the
// reference oracle: a secure pipeline whose results disagree with the
// mirror has corrupted a bucket, a mask or a stream somewhere.
type PlainMirror struct {
	placer *cuckoo.Index
	p      Params
}

// NewPlainMirror returns an empty mirror over the given keys and params.
// The params must be the resolved ones the secure build used (Capacity
// already computed), or placement diverges.
func NewPlainMirror(keys *crypt.KeySet, p Params) (*PlainMirror, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkKeys(keys, p); err != nil {
		return nil, err
	}
	placer, err := newPlacer(keys, p)
	if err != nil {
		return nil, err
	}
	return &PlainMirror{placer: placer, p: p}, nil
}

// Insert places one item, mirroring Build's insertion phase. Items must
// arrive in the same order Build consumed them. A full table surfaces as
// ErrNeedRehash, exactly when the secure build would have failed.
func (m *PlainMirror) Insert(id uint64, meta lsh.Metadata) error {
	if id == bottomID {
		return fmt.Errorf("core: identifier %d is reserved", id)
	}
	if err := m.placer.Insert(id, meta); err != nil {
		if errors.Is(err, cuckoo.ErrFull) {
			return fmt.Errorf("%w: %v", ErrNeedRehash, err)
		}
		return fmt.Errorf("core: mirror insert %d: %w", id, err)
	}
	return nil
}

// Candidates returns exactly the identifiers SecRec recovers for a
// trapdoor on meta, in SecRec's discovery order: tables ascending, probe
// offset ascending within a table, then the stash, with repeats
// deduplicated to their first appearance.
func (m *PlainMirror) Candidates(meta lsh.Metadata) []uint64 {
	raw := m.placer.Lookup(meta)
	out := make([]uint64, 0, len(raw))
	seen := make(map[uint64]bool, len(raw))
	for _, id := range raw {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// Len reports how many items the mirror holds.
func (m *PlainMirror) Len() int { return m.placer.Len() }
