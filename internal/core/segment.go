package core

import (
	"errors"
	"fmt"
	"time"

	"pisd/internal/crypt"
	"pisd/internal/cuckoo"
)

// Placement is the streaming-build variant of Build: the caller feeds
// core.Item batches into one global cuckoo placement — identical, for the
// same keys, items (in order) and params, to the placement Build computes —
// and, once every item is placed, projects it onto encrypted segments one
// identifier range at a time. A segment is a full-width Index whose buckets
// mask exactly the placed identifiers in its range, with random padding
// everywhere else, so the union over a partition of ranges recovers, for
// every trapdoor, exactly what the monolithic index recovers (the sharded
// build's equivalence argument, DESIGN.md §9, applied to ranges).
//
// The point of the split is memory: Build materializes items, placement and
// the full encrypted index at once, while a Placement needs only the
// placement state (identifier + metadata per item) plus one segment's
// bucket arrays at a time. The million-profile build path in
// internal/segstore is built on it.
type Placement struct {
	keys   *crypt.KeySet
	placer *cuckoo.Index
	p      Params
	n      int
}

// NewPlacement starts an empty streaming placement.
func NewPlacement(keys *crypt.KeySet, p Params) (*Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := checkKeys(keys, p); err != nil {
		return nil, err
	}
	placer, err := newPlacer(keys, p)
	if err != nil {
		return nil, err
	}
	return &Placement{keys: keys, placer: placer, p: p}, nil
}

// Params returns the placement's index parameters.
func (pl *Placement) Params() Params { return pl.p }

// Stats returns the placement's cuckoo statistics — kicks, probe hits and
// stash occupancy — for build observability: a stash close to full means
// the population is outgrowing the rehash-free streaming path.
func (pl *Placement) Stats() cuckoo.Stats { return pl.placer.Stats() }

// Len returns the number of items inserted so far.
func (pl *Placement) Len() int { return pl.n }

// Insert places a batch of items. Feeding Build's item slice through any
// chunking of Insert calls (in order) reproduces Build's placement exactly.
// ErrNeedRehash reports a kick budget exhaustion, as in Build; the caller
// rehashes metadata and starts a fresh Placement.
func (pl *Placement) Insert(items []Item) error {
	for _, it := range items {
		if it.ID == bottomID {
			return fmt.Errorf("core: identifier %d is reserved", it.ID)
		}
		if err := pl.placer.Insert(it.ID, it.Meta); err != nil {
			if errors.Is(err, cuckoo.ErrFull) {
				return fmt.Errorf("%w: %v", ErrNeedRehash, err)
			}
			return fmt.Errorf("core: insert %d: %w", it.ID, err)
		}
		pl.n++
	}
	return nil
}

// EncryptRange projects the placement onto the identifier range [lo, hi):
// a full-width encrypted index carrying masked buckets for exactly the
// placed identifiers in the range and random padding elsewhere. Every
// projected index shares the placement's width and parameters, so one
// trapdoor addresses all of them; disjoint ranges produce indexes whose
// occupied buckets never overlap (the global placement assigns each
// identifier one slot).
//
// Insert must not be called after projection starts: later insertions kick
// earlier items between buckets and would invalidate already-projected
// segments.
func (pl *Placement) EncryptRange(lo, hi uint64) (*Index, error) {
	if lo >= hi {
		return nil, fmt.Errorf("core: empty segment range [%d, %d)", lo, hi)
	}
	include := func(id uint64) bool { return id >= lo && id < hi }
	count := 0
	pl.placer.Walk(func(_, _ int, id uint64) {
		if include(id) {
			count++
		}
	})
	pl.placer.WalkStash(func(_ int, id uint64) {
		if include(id) {
			count++
		}
	})
	encStart := time.Now()
	idx, err := encryptStatic(pl.keys, pl.placer, pl.p, count, include)
	if err != nil {
		return nil, err
	}
	idx.stats.EncryptNanos = time.Since(encStart).Nanoseconds()
	return idx, nil
}

// EncryptAll projects the whole placement into one index — byte-identical
// buckets, for the same keys, items and params, to what Build returns
// (padding differs per call: it is freshly drawn randomness in both paths).
func (pl *Placement) EncryptAll() (*Index, error) {
	encStart := time.Now()
	idx, err := encryptStatic(pl.keys, pl.placer, pl.p, pl.n, nil)
	if err != nil {
		return nil, err
	}
	idx.stats.EncryptNanos = time.Since(encStart).Nanoseconds()
	return idx, nil
}

// RecoverID unmasks one static bucket with its trapdoor mask and reports
// the recovered identifier, ok=false for padding. It is SecRec's per-bucket
// step exposed for stores that keep buckets outside an Index (the segment
// store reads bucket ranges from disk on demand).
func RecoverID(masked, mask []byte) (uint64, bool) {
	if len(masked) != BucketSize || len(mask) != BucketSize {
		return 0, false
	}
	var buf [BucketSize]byte
	crypt.XOR(buf[:], mask, masked)
	return decodePayload(buf)
}
