package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pisd/internal/lsh"
)

// TestPayloadCodecRoundTrip exercises the static bucket payload codec.
func TestPayloadCodecRoundTrip(t *testing.T) {
	f := func(id uint64) bool {
		got, ok := decodePayload(encodePayload(id))
		return ok && got == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPayloadRejectsRandom verifies that random bytes essentially never
// decode as a valid payload (the check tag has 64 bits).
func TestPayloadRejectsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var b [BucketSize]byte
	for trial := 0; trial < 5000; trial++ {
		rng.Read(b[:])
		if _, ok := decodePayload(b); ok {
			t.Fatalf("random payload decoded as valid on trial %d", trial)
		}
	}
}

// TestDynPayloadCodecRoundTrip exercises the dynamic payload codec.
func TestDynPayloadCodecRoundTrip(t *testing.T) {
	f := func(id uint64, m0, m1, m2 uint64) bool {
		if id == bottomID {
			id--
		}
		meta := lsh.Metadata{m0, m1, m2}
		got, gotMeta, ok := decodeDynPayload(encodeDynPayload(id, meta, 3), 3)
		return ok && got == id && gotMeta.Equal(meta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDynPayloadBottomMarker(t *testing.T) {
	p := encodeDynPayload(bottomID, nil, 4)
	id, meta, ok := decodeDynPayload(p, 4)
	if !ok || id != bottomID {
		t.Fatal("bottom marker does not round trip")
	}
	for _, v := range meta {
		if v != 0 {
			t.Fatal("bottom marker carries metadata")
		}
	}
	if _, _, ok := decodeDynPayload(p[:len(p)-1], 4); ok {
		t.Error("truncated payload accepted")
	}
}

// TestBucketIndistinguishability checks that the stored static index looks
// like random bytes: balanced bit distribution across the whole bucket
// array and no duplicate buckets. Both properties would fail spectacularly
// if identifiers or masks leaked structurally (e.g. unmasked zero padding).
func TestBucketIndistinguishability(t *testing.T) {
	const n = 400
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(21))
	idx, err := Build(keys, randItems(rng, n, 5), p)
	if err != nil {
		t.Fatal(err)
	}
	var ones, total int
	seen := make(map[string]struct{})
	for j := 0; j < p.Tables; j++ {
		for pos := 0; pos < idx.Width(); pos++ {
			b, err := idx.Bucket(j, uint64(pos))
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := seen[string(b)]; dup {
				t.Fatalf("duplicate bucket content at table %d pos %d", j, pos)
			}
			seen[string(b)] = struct{}{}
			for _, by := range b {
				for k := 0; k < 8; k++ {
					if by&(1<<k) != 0 {
						ones++
					}
					total++
				}
			}
		}
	}
	ratio := float64(ones) / float64(total)
	// With >100k bits, a true random source stays well within ±1%.
	if math.Abs(ratio-0.5) > 0.01 {
		t.Errorf("bucket bit balance %.4f deviates from 0.5", ratio)
	}
}

// TestDynamicBucketIndistinguishability does the same for the dynamic
// index: every bucket (occupied, ⊥-padded) must be unique ciphertext.
func TestDynamicBucketIndistinguishability(t *testing.T) {
	const n = 150
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(22))
	idx, _, err := BuildDynamic(keys, randItems(rng, n, 5), p)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]struct{})
	for j := 0; j < p.Tables; j++ {
		for pos := 0; pos < idx.Width(); pos++ {
			b := idx.tables[j][pos]
			key := string(b.Masked) + "|" + string(b.EncR)
			if _, dup := seen[key]; dup {
				t.Fatalf("duplicate dynamic bucket at table %d pos %d", j, pos)
			}
			seen[key] = struct{}{}
		}
	}
}

// TestAccessPatternIsDeterministic pins down the leakage profile: querying
// the same metadata twice yields the same positions (access pattern AP of
// Definition 3), and nothing else about the trapdoor varies.
func TestAccessPatternIsDeterministic(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(200)
	meta := lsh.Metadata{100, 200, 300, 400, 500}
	a, err := GenPosTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenPosTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Tables {
		for i := range a.Tables[j] {
			if a.Tables[j][i] != b.Tables[j][i] {
				t.Fatal("access pattern not deterministic")
			}
		}
	}
	// Distinct metadata in one table shifts only that table's positions.
	meta2 := lsh.Metadata{100, 200, 300, 400, 501}
	c, err := GenPosTpdr(keys, meta2, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		for i := range a.Tables[j] {
			if a.Tables[j][i] != c.Tables[j][i] {
				t.Fatalf("table %d positions changed although its metadata is equal", j)
			}
		}
	}
	same := true
	for i := range a.Tables[4] {
		if a.Tables[4][i] != c.Tables[4][i] {
			same = false
		}
	}
	if same {
		t.Error("table 4 positions unchanged although its metadata differs")
	}
}
