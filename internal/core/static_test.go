package core

import (
	"errors"
	"math/rand"
	"testing"

	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

func testKeys(t testing.TB, l int) *crypt.KeySet {
	t.Helper()
	keys, err := crypt.GenDeterministic("core-test", l)
	if err != nil {
		t.Fatalf("GenDeterministic: %v", err)
	}
	return keys
}

func testParams(n int) Params {
	return Params{
		Tables:     5,
		Capacity:   CapacityFor(n, 0.8),
		ProbeRange: 4,
		MaxLoop:    200,
		Seed:       1,
	}
}

func randItems(rng *rand.Rand, n, tables int) []Item {
	items := make([]Item, n)
	for i := range items {
		meta := make(lsh.Metadata, tables)
		for j := range meta {
			meta[j] = rng.Uint64()
		}
		items[i] = Item{ID: uint64(i + 1), Meta: meta}
	}
	return items
}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Params)
	}{
		{"zero tables", func(p *Params) { p.Tables = 0 }},
		{"capacity below tables", func(p *Params) { p.Capacity = 1 }},
		{"negative probe", func(p *Params) { p.ProbeRange = -1 }},
		{"zero maxloop", func(p *Params) { p.MaxLoop = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := testParams(100)
			tt.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestCapacityFor(t *testing.T) {
	if got := CapacityFor(800, 0.8); got != 1001 {
		t.Errorf("CapacityFor(800,0.8) = %d, want 1001", got)
	}
	// Invalid tau falls back to 0.8.
	if got := CapacityFor(800, 0); got != 1001 {
		t.Errorf("CapacityFor(800,0) = %d, want 1001", got)
	}
	if got := CapacityFor(800, 1.5); got != 1001 {
		t.Errorf("CapacityFor(800,1.5) = %d, want 1001", got)
	}
}

func TestBucketsPerQuery(t *testing.T) {
	p := Params{Tables: 10, Capacity: 100, ProbeRange: 4, MaxLoop: 1}
	if got := p.BucketsPerQuery(); got != 50 {
		t.Errorf("BucketsPerQuery = %d, want 50", got)
	}
}

func TestBuildAndSecRecFindsInserted(t *testing.T) {
	const n = 500
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(2))
	items := randItems(rng, n, 5)
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if idx.Len() != n {
		t.Fatalf("Len = %d, want %d", idx.Len(), n)
	}
	// Every item must be recoverable through a trapdoor on its own
	// metadata: the secure index preserves LSH locality (correctness
	// remark of Sec. III-B).
	for _, it := range items[:100] {
		td, err := GenTpdr(keys, it.Meta, p)
		if err != nil {
			t.Fatalf("GenTpdr: %v", err)
		}
		ids, err := idx.SecRec(td)
		if err != nil {
			t.Fatalf("SecRec: %v", err)
		}
		if !containsID(ids, it.ID) {
			t.Fatalf("id %d not recovered by its own trapdoor", it.ID)
		}
	}
}

func TestSecRecMatchesPlaintextCuckoo(t *testing.T) {
	// Oracle test: the secure index must return exactly the ids a
	// plaintext cuckoo index with the same PRF addressing returns.
	const n = 300
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, n, 5)

	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	placer, err := newPlacer(keys, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := placer.Insert(it.ID, it.Meta); err != nil {
			t.Fatalf("oracle insert: %v", err)
		}
	}
	for _, it := range items[:50] {
		td, err := GenTpdr(keys, it.Meta, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		want := placer.Lookup(it.Meta)
		if !sameIDSet(got, want) {
			t.Fatalf("SecRec mismatch for %d: got %v want %v", it.ID, got, want)
		}
	}
}

func TestSecRecUnrelatedQueryFindsNothingSpecific(t *testing.T) {
	const n = 100
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(4))
	items := randItems(rng, n, 5)
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	// A random metadata vector should address (almost always) empty or
	// unrelated buckets; recovered ids must at least decode consistently.
	meta := make(lsh.Metadata, 5)
	for j := range meta {
		meta[j] = rng.Uint64()
	}
	td, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := idx.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if id == 0 || id > n {
			t.Fatalf("recovered id %d was never inserted", id)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(10)
	if _, err := Build(nil, nil, p); err == nil {
		t.Error("nil keys accepted")
	}
	shortKeys := testKeys(t, 2)
	if _, err := Build(shortKeys, nil, p); err == nil {
		t.Error("short key set accepted")
	}
	bad := p
	bad.Tables = 0
	if _, err := Build(keys, nil, bad); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Build(keys, []Item{{ID: bottomID, Meta: make(lsh.Metadata, 5)}}, p); err == nil {
		t.Error("reserved identifier accepted")
	}
}

func TestBuildOverfullNeedsRehash(t *testing.T) {
	keys := testKeys(t, 2)
	// 2 tables, tiny capacity, many items sharing one metadata value: the
	// addressable bucket budget l*(d+1) overflows.
	p := Params{Tables: 2, Capacity: 64, ProbeRange: 1, MaxLoop: 20, Seed: 1}
	shared := lsh.Metadata{7, 8}
	items := make([]Item, 6)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), Meta: shared}
	}
	_, err := Build(keys, items, p)
	if !errors.Is(err, ErrNeedRehash) {
		t.Fatalf("err = %v, want ErrNeedRehash", err)
	}
}

func TestIndexSizeBytesLinear(t *testing.T) {
	keys := testKeys(t, 5)
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{100, 200} {
		p := testParams(n)
		idx, err := Build(keys, randItems(rng, n, 5), p)
		if err != nil {
			t.Fatal(err)
		}
		want := p.Tables * p.Width() * BucketSize
		if got := idx.SizeBytes(); got != want {
			t.Errorf("n=%d SizeBytes = %d, want %d", n, got, want)
		}
		lf := idx.LoadFactor()
		if lf < 0.7 || lf > 0.85 {
			t.Errorf("n=%d LoadFactor = %v, want ~0.8", n, lf)
		}
	}
}

func TestTrapdoorShape(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(100)
	meta := lsh.Metadata{1, 2, 3, 4, 5}
	td, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := td.Entries(); got != p.BucketsPerQuery() {
		t.Errorf("Entries = %d, want %d", got, p.BucketsPerQuery())
	}
	if got, want := td.SizeBytes(), p.BucketsPerQuery()*(8+BucketSize); got != want {
		t.Errorf("SizeBytes = %d, want %d", got, want)
	}
	// Constant in n: a different capacity changes positions, not size.
	p2 := p
	p2.Capacity = p.Capacity * 10
	td2, err := GenTpdr(keys, meta, p2)
	if err != nil {
		t.Fatal(err)
	}
	if td2.SizeBytes() != td.SizeBytes() {
		t.Error("trapdoor size depends on n; must be constant")
	}
}

func TestTrapdoorDeterministic(t *testing.T) {
	// Deterministic trapdoors are the similarity-search-pattern leakage
	// (Definition 4): same V, same t.
	keys := testKeys(t, 5)
	p := testParams(100)
	meta := lsh.Metadata{9, 8, 7, 6, 5}
	t1, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range t1.Tables {
		for i := range t1.Tables[j] {
			if t1.Tables[j][i].Pos != t2.Tables[j][i].Pos {
				t.Fatal("trapdoor positions differ for identical metadata")
			}
			if string(t1.Tables[j][i].Mask) != string(t2.Tables[j][i].Mask) {
				t.Fatal("trapdoor masks differ for identical metadata")
			}
		}
	}
}

func TestGenTpdrRejectsBadMeta(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(100)
	if _, err := GenTpdr(keys, lsh.Metadata{1}, p); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := GenTpdr(nil, lsh.Metadata{1, 2, 3, 4, 5}, p); err == nil {
		t.Error("nil keys accepted")
	}
}

func TestSecRecRejectsMalformedTrapdoor(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(100)
	rng := rand.New(rand.NewSource(6))
	idx, err := Build(keys, randItems(rng, 50, 5), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.SecRec(nil); err == nil {
		t.Error("nil trapdoor accepted")
	}
	if _, err := idx.SecRec(&Trapdoor{Tables: make([][]Entry, 2)}); err == nil {
		t.Error("wrong table count accepted")
	}
	bad := &Trapdoor{Tables: make([][]Entry, 5)}
	bad.Tables[0] = []Entry{{Pos: uint64(idx.Width()), Mask: make([]byte, BucketSize)}}
	if _, err := idx.SecRec(bad); err == nil {
		t.Error("out-of-range position accepted")
	}
	bad.Tables[0] = []Entry{{Pos: 0, Mask: make([]byte, 3)}}
	if _, err := idx.SecRec(bad); err == nil {
		t.Error("short mask accepted")
	}
}

func TestWrongMaskRecoversNothing(t *testing.T) {
	// A trapdoor with random masks (attacker without keys) must not
	// decode any identifier: buckets stay opaque.
	const n = 200
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, n, 5)
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	td, err := GenTpdr(keys, items[0].Meta, p)
	if err != nil {
		t.Fatal(err)
	}
	for j := range td.Tables {
		for i := range td.Tables[j] {
			rng.Read(td.Tables[j][i].Mask)
		}
	}
	ids, err := idx.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("random masks recovered %d ids; expected none", len(ids))
	}
}

func TestBucketAccess(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(50)
	rng := rand.New(rand.NewSource(8))
	idx, err := Build(keys, randItems(rng, 50, 5), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := idx.Bucket(0, 0)
	if err != nil {
		t.Fatalf("Bucket: %v", err)
	}
	if len(b) != BucketSize {
		t.Errorf("bucket size %d", len(b))
	}
	if _, err := idx.Bucket(-1, 0); err == nil {
		t.Error("negative table accepted")
	}
	if _, err := idx.Bucket(0, uint64(idx.Width())); err == nil {
		t.Error("out-of-range pos accepted")
	}
}

func TestBuildStatsRecorded(t *testing.T) {
	const n = 400
	keys := testKeys(t, 5)
	p := testParams(n)
	rng := rand.New(rand.NewSource(9))
	idx, err := Build(keys, randItems(rng, n, 5), p)
	if err != nil {
		t.Fatal(err)
	}
	st := idx.BuildStats()
	if st.PrimaryHits+st.ProbeHits != n {
		t.Errorf("hits %d+%d != n=%d", st.PrimaryHits, st.ProbeHits, n)
	}
	if st.InsertNanos <= 0 || st.EncryptNanos <= 0 {
		t.Errorf("phase timings not recorded: %+v", st)
	}
}

func containsID(ids []uint64, id uint64) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// sameIDSet compares the two id lists as sets: SecRec deduplicates while
// the plaintext Lookup may report an id once per addressed bucket.
func sameIDSet(a, b []uint64) bool {
	as := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		as[x] = struct{}{}
	}
	bs := make(map[uint64]struct{}, len(b))
	for _, x := range b {
		bs[x] = struct{}{}
	}
	if len(as) != len(bs) {
		return false
	}
	for x := range as {
		if _, ok := bs[x]; !ok {
			return false
		}
	}
	return true
}
