package core

import (
	"errors"
	"fmt"

	"pisd/internal/lsh"
)

// Batch update (Sec. III-D remark): "to further reduce the information
// leakage from update, one can leverage the batch update to perform
// multiple image profiles update simultaneously". BatchUpdate fetches the
// union of all touched buckets in ONE round, applies every deletion and
// insertion against the opened plaintext, and re-masks the whole union in
// a second message. Compared to sequential updates this
//
//   - collapses 2·(#ops) interaction rounds into 2, and
//   - widens the anonymity set: the cloud sees one batch of re-masked
//     buckets and cannot attribute changes to individual operations.
//
// Kick-aways inside a batch stay within the already-fetched union when
// possible; an insertion whose kick chain would leave the union falls back
// to the interactive Insert protocol (counted in BatchResult.Escalated).

// Update describes one profile mutation.
type Update struct {
	// Op selects deletion or insertion.
	Op UpdateOp
	// ID is the user identifier L.
	ID uint64
	// Meta is the LSH metadata V the identifier is (to be) indexed under.
	Meta lsh.Metadata
}

// UpdateOp enumerates batch operations.
type UpdateOp int

// Batch operation kinds.
const (
	OpDelete UpdateOp = iota + 1
	OpInsert
)

// BatchResult reports what a batch did.
type BatchResult struct {
	// Deleted and Inserted count completed operations.
	Deleted  int
	Inserted int
	// Escalated counts insertions that could not be satisfied inside the
	// fetched union and ran the interactive protocol instead.
	Escalated int
	// Rounds is the number of fetch/store interactions consumed,
	// including escalations.
	Rounds int
}

// BatchUpdate applies the given updates. Deletions are applied before
// insertions (the natural order for profile replacement). It returns
// ErrNotIndexed / ErrAlreadyIndexed wrapped with the offending id when an
// operation is inconsistent; earlier state changes are preserved at the
// store only when the final reseal happens, so a failed batch leaves the
// index unchanged except for escalated insertions.
func (c *DynClient) BatchUpdate(store BucketStore, updates []Update) (*BatchResult, error) {
	if len(updates) == 0 {
		return &BatchResult{}, nil
	}
	for i, u := range updates {
		if u.Op != OpDelete && u.Op != OpInsert {
			return nil, fmt.Errorf("core: batch update %d: unknown op %d", i, u.Op)
		}
		if u.ID == bottomID {
			return nil, fmt.Errorf("core: batch update %d: reserved identifier", i)
		}
		if len(u.Meta) != c.p.Tables {
			return nil, fmt.Errorf("core: batch update %d: metadata arity %d, want %d", i, len(u.Meta), c.p.Tables)
		}
	}

	// Collect the union of bucket references across all operations.
	type slotKey = BucketRef
	union := make([]BucketRef, 0, len(updates)*c.p.BucketsPerQuery())
	index := make(map[slotKey]int)
	// perOp[i] lists, for update i, the union indexes of its l·(d+1)
	// slots in table-major probe-minor order.
	perOp := make([][]int, len(updates))
	for i, u := range updates {
		refs, err := c.Refs(u.Meta)
		if err != nil {
			return nil, err
		}
		slots := make([]int, len(refs))
		for k, r := range refs {
			j, ok := index[r]
			if !ok {
				j = len(union)
				index[r] = j
				union = append(union, r)
			}
			slots[k] = j
		}
		perOp[i] = slots
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	roundsBefore := c.stats.Rounds
	buckets, err := store.FetchBuckets(union)
	if err != nil {
		return nil, err
	}
	c.stats.Rounds++
	payloads := make([][]byte, len(buckets))
	for i, b := range buckets {
		p, err := c.open(b)
		if err != nil {
			return nil, err
		}
		payloads[i] = p
	}

	res := &BatchResult{}
	var escalate []Update

	// Phase 1: deletions.
	for i, u := range updates {
		if u.Op != OpDelete {
			continue
		}
		found := false
		for _, slot := range perOp[i] {
			id, _, ok := decodeDynPayload(payloads[slot], c.p.Tables)
			if !ok {
				return nil, fmt.Errorf("core: corrupt bucket in batch")
			}
			if id == u.ID {
				payloads[slot] = encodeDynPayload(bottomID, nil, c.p.Tables)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("%w: %d", ErrNotIndexed, u.ID)
		}
		res.Deleted++
	}

	// Phase 2: insertions into empty union slots.
	for i, u := range updates {
		if u.Op != OpInsert {
			continue
		}
		empty := -1
		for _, slot := range perOp[i] {
			id, _, ok := decodeDynPayload(payloads[slot], c.p.Tables)
			if !ok {
				return nil, fmt.Errorf("core: corrupt bucket in batch")
			}
			if id == u.ID {
				return nil, fmt.Errorf("%w: %d", ErrAlreadyIndexed, u.ID)
			}
			if id == bottomID && empty < 0 {
				empty = slot
			}
		}
		if empty < 0 {
			// No room inside the union: run the interactive protocol
			// after the batch lands.
			escalate = append(escalate, u)
			continue
		}
		payloads[empty] = encodeDynPayload(u.ID, u.Meta, c.p.Tables)
		res.Inserted++
	}

	// Reseal and push the whole union in one message.
	resealed := make([]DynBucket, len(union))
	for i, p := range payloads {
		b, err := c.seal(p)
		if err != nil {
			return nil, err
		}
		resealed[i] = b
	}
	if err := store.StoreBuckets(union, resealed); err != nil {
		return nil, err
	}
	c.stats.Rounds++

	for _, u := range escalate {
		if err := c.insertLocked(store, u.ID, u.Meta); err != nil {
			if errors.Is(err, ErrNeedRehash) {
				return res, fmt.Errorf("core: batch escalation for %d: %w", u.ID, err)
			}
			return res, err
		}
		res.Inserted++
		res.Escalated++
	}
	res.Rounds = c.stats.Rounds - roundsBefore
	return res, nil
}
