package core

import (
	"math/rand"
	"testing"
)

// TestPlacementMatchesBuild pins the streaming build's core contract: for
// the same keys, items (in order) and params, a Placement fed in chunks
// reproduces Build's placement, so EncryptAll answers every trapdoor with
// the exact identifier sequence of the monolithic index.
func TestPlacementMatchesBuild(t *testing.T) {
	const n = 2500
	keys := testKeys(t, 5)
	p := testParams(n)
	p.StashSize = 8
	rng := rand.New(rand.NewSource(19))
	items := randItems(rng, n, p.Tables)

	single, err := Build(keys, items, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	pl, err := NewPlacement(keys, p)
	if err != nil {
		t.Fatalf("NewPlacement: %v", err)
	}
	for lo := 0; lo < n; lo += 700 { // deliberately uneven final chunk
		hi := min(lo+700, n)
		if err := pl.Insert(items[lo:hi]); err != nil {
			t.Fatalf("Insert chunk [%d,%d): %v", lo, hi, err)
		}
	}
	if pl.Len() != n {
		t.Fatalf("placement holds %d items, want %d", pl.Len(), n)
	}
	streamed, err := pl.EncryptAll()
	if err != nil {
		t.Fatalf("EncryptAll: %v", err)
	}
	if streamed.Width() != single.Width() || streamed.Len() != single.Len() {
		t.Fatalf("shape mismatch: streamed (w=%d n=%d), built (w=%d n=%d)",
			streamed.Width(), streamed.Len(), single.Width(), single.Len())
	}
	for q := 0; q < 60; q++ {
		meta := items[rng.Intn(n)].Meta
		td, err := GenTpdr(keys, meta, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		got, err := streamed.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("query %d: %d ids streamed, %d built", q, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d: id order diverged at %d: %d vs %d", q, i, got[i], want[i])
			}
		}
	}
}

// TestEncryptRangePartition checks the segment projection: over a partition
// of the identifier space into ranges, each id is recovered by exactly its
// own segment, and the union per trapdoor equals the monolithic result.
func TestEncryptRangePartition(t *testing.T) {
	const n = 2000
	keys := testKeys(t, 5)
	p := testParams(n)
	p.StashSize = 8
	rng := rand.New(rand.NewSource(23))
	items := randItems(rng, n, p.Tables)

	single, err := Build(keys, items, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	pl, err := NewPlacement(keys, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Insert(items); err != nil {
		t.Fatal(err)
	}

	// Ranges over ids 1..n: [1,501), [501,1301), [1301,2001).
	bounds := [][2]uint64{{1, 501}, {501, 1301}, {1301, uint64(n) + 1}}
	segs := make([]*Index, len(bounds))
	total := 0
	for i, b := range bounds {
		seg, err := pl.EncryptRange(b[0], b[1])
		if err != nil {
			t.Fatalf("EncryptRange %v: %v", b, err)
		}
		if seg.Width() != single.Width() {
			t.Fatalf("segment %d width %d, monolithic %d", i, seg.Width(), single.Width())
		}
		total += seg.Len()
		segs[i] = seg
	}
	if total != n {
		t.Fatalf("segment lengths sum to %d, want %d", total, n)
	}

	for q := 0; q < 40; q++ {
		meta := items[rng.Intn(n)].Meta
		td, err := GenTpdr(keys, meta, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[uint64]int)
		for s, seg := range segs {
			ids, err := seg.SecRec(td)
			if err != nil {
				t.Fatalf("segment %d SecRec: %v", s, err)
			}
			for _, id := range ids {
				if prev, dup := got[id]; dup {
					t.Fatalf("id %d recovered from segments %d and %d", id, prev, s)
				}
				if id < bounds[s][0] || id >= bounds[s][1] {
					t.Fatalf("id %d recovered from segment %d covering [%d,%d)", id, s, bounds[s][0], bounds[s][1])
				}
				got[id] = s
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: union %d ids, monolithic %d", q, len(got), len(want))
		}
		for _, id := range want {
			if _, ok := got[id]; !ok {
				t.Fatalf("query %d: id %d missing from segment union", q, id)
			}
		}
	}
}

func TestPlacementRejectsBadInput(t *testing.T) {
	keys := testKeys(t, 5)
	p := testParams(100)
	if _, err := NewPlacement(nil, p); err == nil {
		t.Error("nil keys accepted")
	}
	bad := p
	bad.Tables = 0
	if _, err := NewPlacement(keys, bad); err == nil {
		t.Error("invalid params accepted")
	}
	pl, err := NewPlacement(keys, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Insert([]Item{{ID: ^uint64(0)}}); err == nil {
		t.Error("reserved id accepted")
	}
	if _, err := pl.EncryptRange(5, 5); err == nil {
		t.Error("empty range accepted")
	}
}

// TestRecoverID pins the exported per-bucket unmask step against the
// private payload codec.
func TestRecoverID(t *testing.T) {
	payload := encodePayload(4242)
	mask := make([]byte, BucketSize)
	for i := range mask {
		mask[i] = byte(i * 7)
	}
	masked := make([]byte, BucketSize)
	for i := range masked {
		masked[i] = payload[i] ^ mask[i]
	}
	id, ok := RecoverID(masked, mask)
	if !ok || id != 4242 {
		t.Fatalf("RecoverID = (%d, %v), want (4242, true)", id, ok)
	}
	if _, ok := RecoverID(masked[:10], mask); ok {
		t.Error("short bucket accepted")
	}
	masked[3] ^= 0x40
	if _, ok := RecoverID(masked, mask); ok {
		t.Error("corrupted bucket decoded")
	}
}

// TestIndexShapeOffsets pins the on-disk layout contract: the offsets
// IndexShape computes address exactly the bytes MarshalBinary wrote for
// each bucket and stash slot.
func TestIndexShapeOffsets(t *testing.T) {
	const n = 300
	keys := testKeys(t, 5)
	p := testParams(n)
	p.StashSize = 4
	items := randItems(rand.New(rand.NewSource(5)), n, p.Tables)
	idx, err := Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	sh, err := ParseIndexHeader(blob)
	if err != nil {
		t.Fatalf("ParseIndexHeader: %v", err)
	}
	if sh.Width != idx.Width() || sh.N != idx.Len() || sh.Params.Tables != p.Tables {
		t.Fatalf("parsed shape %+v does not match index (w=%d n=%d)", sh, idx.Width(), idx.Len())
	}
	if got, want := sh.EncodedSize(), int64(len(blob)); got != want {
		t.Fatalf("EncodedSize = %d, blob is %d bytes", got, want)
	}
	for _, probe := range []struct{ table, pos int }{{0, 0}, {1, 17}, {p.Tables - 1, idx.Width() - 1}} {
		want, err := idx.Bucket(probe.table, uint64(probe.pos))
		if err != nil {
			t.Fatal(err)
		}
		off := sh.BucketOffset(probe.table, uint64(probe.pos))
		got := blob[off : off+BucketSize]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bucket (%d,%d) byte %d: offset read %x, index %x", probe.table, probe.pos, i, got[i], want[i])
			}
		}
	}
	if off := sh.StashOffset(p.StashSize - 1); off+BucketSize != int64(len(blob)) {
		t.Fatalf("last stash slot ends at %d, blob is %d bytes", off+BucketSize, len(blob))
	}
}
