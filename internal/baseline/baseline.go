// Package baseline provides the two plaintext comparison points of the
// paper's accuracy evaluation (Fig. 5(b)):
//
//   - brute-force exact nearest neighbours — the ground truth {S′} of the
//     accuracy metric; and
//   - the "baseline approach": plain LSH candidate retrieval (all users in
//     the l matching buckets) followed by exact distance ranking, which
//     retrieves a much larger candidate set than the secure index and
//     therefore upper-bounds its accuracy.
//
// It also implements the paper's accuracy measure
// (1/K)·Σ ‖S′ᵢ − S_q‖ / ‖Sᵢ − S_q‖, a ratio in (0, 1] where 1 means the
// retrieved top-K distances equal the true nearest-neighbour distances.
package baseline

import (
	"fmt"
	"runtime"
	"sync"

	"pisd/internal/lsh"
	"pisd/internal/vec"
)

// BruteForceTopK returns the exact k nearest profiles to query (Euclidean),
// as (user index, distance) pairs in ascending distance order. It fans the
// scan across CPUs for the large ground-truth computations of Fig. 5.
func BruteForceTopK(profiles [][]float64, query []float64, k int) []vec.Scored {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(profiles) {
		workers = 1
	}
	if workers <= 1 {
		tk := vec.NewTopK(k)
		for i, p := range profiles {
			tk.Offer(uint64(i), vec.Distance(query, p))
		}
		return tk.Sorted()
	}
	chunk := (len(profiles) + workers - 1) / workers
	partial := make([][]vec.Scored, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(profiles) {
			hi = len(profiles)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			tk := vec.NewTopK(k)
			for i := lo; i < hi; i++ {
				tk.Offer(uint64(i), vec.Distance(query, profiles[i]))
			}
			partial[w] = tk.Sorted()
		}(w, lo, hi)
	}
	wg.Wait()
	merged := vec.NewTopK(k)
	for _, part := range partial {
		for _, s := range part {
			merged.Offer(s.ID, s.Score)
		}
	}
	return merged.Sorted()
}

// PlainLSH is the plaintext LSH search baseline: per table, a map from the
// table's LSH value to every user carrying it.
type PlainLSH struct {
	tables []map[uint64][]int
	l      int
}

// NewPlainLSH indexes users 0..n-1 by their metadata.
func NewPlainLSH(metas []lsh.Metadata) (*PlainLSH, error) {
	if len(metas) == 0 {
		return nil, fmt.Errorf("baseline: empty metadata set")
	}
	l := len(metas[0])
	idx := &PlainLSH{l: l, tables: make([]map[uint64][]int, l)}
	for j := 0; j < l; j++ {
		idx.tables[j] = make(map[uint64][]int)
	}
	for i, m := range metas {
		if len(m) != l {
			return nil, fmt.Errorf("baseline: user %d metadata arity %d, want %d", i, len(m), l)
		}
		for j := 0; j < l; j++ {
			idx.tables[j][m[j]] = append(idx.tables[j][m[j]], i)
		}
	}
	return idx, nil
}

// Candidates returns the deduplicated union of users in the l buckets
// matching meta — the (large) candidate set of the baseline flow.
func (x *PlainLSH) Candidates(meta lsh.Metadata) []int {
	if len(meta) != x.l {
		return nil
	}
	seen := make(map[int]struct{})
	out := make([]int, 0, 64)
	for j := 0; j < x.l; j++ {
		for _, u := range x.tables[j][meta[j]] {
			if _, dup := seen[u]; !dup {
				seen[u] = struct{}{}
				out = append(out, u)
			}
		}
	}
	return out
}

// TopK ranks the candidate set by exact distance to query and returns at
// most k (user index, distance) pairs ascending.
func (x *PlainLSH) TopK(profiles [][]float64, query []float64, meta lsh.Metadata, k int) []vec.Scored {
	tk := vec.NewTopK(k)
	for _, u := range x.Candidates(meta) {
		tk.Offer(uint64(u), vec.Distance(query, profiles[u]))
	}
	return tk.Sorted()
}

// RankCandidates ranks an arbitrary candidate id set by exact distance to
// query; used to rank the secure index's retrieved profiles.
func RankCandidates(profiles [][]float64, query []float64, candidates []int, k int) []vec.Scored {
	tk := vec.NewTopK(k)
	for _, u := range candidates {
		if u < 0 || u >= len(profiles) {
			continue
		}
		tk.Offer(uint64(u), vec.Distance(query, profiles[u]))
	}
	return tk.Sorted()
}

// AccuracyRatio implements the paper's metric over one query:
// (1/K)·Σᵢ ‖S′ᵢ − S_q‖ / ‖Sᵢ − S_q‖ with S′ the ground truth and S the
// retrieved ranking, where both lists carry precomputed distances to S_q.
// K is len(groundTruth); a retrieved list shorter than K contributes 0 for
// each missing rank (the scheme failed to produce K candidates). An exact
// tie (both distances zero) scores 1.
//
// A nil or empty groundTruth is vacuously perfect and scores 1: there was
// nothing to retrieve, so nothing was missed. Sweeps over partitioned
// populations hit this whenever k exceeds a partition's size.
func AccuracyRatio(groundTruth, retrieved []vec.Scored) float64 {
	if len(groundTruth) == 0 {
		return 1
	}
	var sum float64
	for i := range groundTruth {
		if i >= len(retrieved) {
			continue // missing rank contributes 0
		}
		gt, got := groundTruth[i].Score, retrieved[i].Score
		switch {
		case got == 0 && gt == 0:
			sum++
		case got == 0:
			// Retrieved an exact duplicate although ground truth is
			// farther: cannot happen for true ground truth, but guard
			// against division by zero.
			sum++
		default:
			sum += gt / got
		}
	}
	return sum / float64(len(groundTruth))
}

// RecallAtK returns |ids(groundTruth) ∩ ids(retrieved)| / |groundTruth|,
// the fraction of true nearest neighbours the retrieval surfaced at any
// rank. Unlike AccuracyRatio it ignores distances entirely, so it measures
// candidate coverage rather than ranking quality; the autotuner optimizes
// it directly. An empty groundTruth is vacuously perfect (recall 1).
func RecallAtK(groundTruth, retrieved []vec.Scored) float64 {
	if len(groundTruth) == 0 {
		return 1
	}
	got := make(map[uint64]struct{}, len(retrieved))
	for _, s := range retrieved {
		got[s.ID] = struct{}{}
	}
	hit := 0
	for _, s := range groundTruth {
		if _, ok := got[s.ID]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(groundTruth))
}
