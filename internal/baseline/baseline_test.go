package baseline

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pisd/internal/lsh"
	"pisd/internal/vec"
)

func randProfiles(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = vec.Normalize(v)
	}
	return out
}

func TestBruteForceTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	profiles := randProfiles(rng, 500, 16)
	query := vec.Normalize(randProfiles(rng, 1, 16)[0])
	got := BruteForceTopK(profiles, query, 10)

	type pair struct {
		id   int
		dist float64
	}
	all := make([]pair, len(profiles))
	for i, p := range profiles {
		all[i] = pair{i, vec.Distance(query, p)}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].dist < all[b].dist })
	if len(got) != 10 {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		if got[i].ID != uint64(all[i].id) || math.Abs(got[i].Score-all[i].dist) > 1e-12 {
			t.Fatalf("rank %d: got (%d,%v), want (%d,%v)", i, got[i].ID, got[i].Score, all[i].id, all[i].dist)
		}
	}
}

func TestBruteForceSmallerThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	profiles := randProfiles(rng, 3, 8)
	got := BruteForceTopK(profiles, profiles[0], 10)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	if got[0].ID != 0 || got[0].Score != 0 {
		t.Errorf("self should rank first: %+v", got[0])
	}
}

func TestPlainLSHCandidates(t *testing.T) {
	metas := []lsh.Metadata{
		{1, 2},
		{1, 3},
		{4, 2},
		{5, 6},
	}
	idx, err := NewPlainLSH(metas)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Candidates(lsh.Metadata{1, 2})
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for _, u := range got {
		if !want[u] {
			t.Fatalf("unexpected candidate %d", u)
		}
	}
	if c := idx.Candidates(lsh.Metadata{9, 9}); len(c) != 0 {
		t.Errorf("no-match candidates = %v", c)
	}
	if c := idx.Candidates(lsh.Metadata{1}); c != nil {
		t.Errorf("wrong arity should return nil, got %v", c)
	}
}

func TestNewPlainLSHRejectsBadInput(t *testing.T) {
	if _, err := NewPlainLSH(nil); err == nil {
		t.Error("empty metadata accepted")
	}
	if _, err := NewPlainLSH([]lsh.Metadata{{1, 2}, {1}}); err == nil {
		t.Error("ragged metadata accepted")
	}
}

func TestPlainLSHTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	profiles := randProfiles(rng, 50, 8)
	metas := make([]lsh.Metadata, 50)
	for i := range metas {
		metas[i] = lsh.Metadata{uint64(i % 5), uint64(i % 3)}
	}
	idx, err := NewPlainLSH(metas)
	if err != nil {
		t.Fatal(err)
	}
	got := idx.TopK(profiles, profiles[0], metas[0], 5)
	if len(got) == 0 {
		t.Fatal("no results")
	}
	if got[0].ID != 0 {
		t.Errorf("self not ranked first: %+v", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score < got[i-1].Score {
			t.Fatal("results not sorted ascending")
		}
	}
}

func TestRankCandidatesIgnoresOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	profiles := randProfiles(rng, 10, 8)
	got := RankCandidates(profiles, profiles[0], []int{-1, 3, 99, 0}, 5)
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2 (out-of-range dropped)", len(got))
	}
	if got[0].ID != 0 {
		t.Errorf("self not first: %+v", got)
	}
}

func TestAccuracyRatio(t *testing.T) {
	gt := []vec.Scored{{ID: 1, Score: 1}, {ID: 2, Score: 2}}
	perfect := []vec.Scored{{ID: 1, Score: 1}, {ID: 2, Score: 2}}
	if got := AccuracyRatio(gt, perfect); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect accuracy = %v, want 1", got)
	}
	worse := []vec.Scored{{ID: 9, Score: 2}, {ID: 8, Score: 4}}
	if got := AccuracyRatio(gt, worse); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("half accuracy = %v, want 0.5", got)
	}
	short := []vec.Scored{{ID: 1, Score: 1}}
	if got := AccuracyRatio(gt, short); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("missing rank accuracy = %v, want 0.5", got)
	}
	// Zero distances (exact duplicates) must not divide by zero.
	zs := []vec.Scored{{ID: 1, Score: 0}}
	if got := AccuracyRatio(zs, zs); got != 1 {
		t.Errorf("zero-distance accuracy = %v, want 1", got)
	}
}

// TestAccuracyRatioEmptyGroundTruth pins the guard for empty/zero-length
// ground truth: vacuously perfect (1), never NaN or a division by zero.
// The autotuner hits this whenever k exceeds a population partition.
func TestAccuracyRatioEmptyGroundTruth(t *testing.T) {
	retrieved := []vec.Scored{{ID: 1, Score: 1}}
	for _, gt := range [][]vec.Scored{nil, {}} {
		got := AccuracyRatio(gt, retrieved)
		if got != 1 {
			t.Errorf("AccuracyRatio(%v, retrieved) = %v, want 1", gt, got)
		}
		if math.IsNaN(got) {
			t.Errorf("AccuracyRatio(%v, retrieved) is NaN", gt)
		}
	}
	// Both empty: still vacuously perfect.
	if got := AccuracyRatio(nil, nil); got != 1 {
		t.Errorf("AccuracyRatio(nil, nil) = %v, want 1", got)
	}
}

func TestRecallAtK(t *testing.T) {
	gt := []vec.Scored{{ID: 1, Score: 1}, {ID: 2, Score: 2}, {ID: 3, Score: 3}}
	all := []vec.Scored{{ID: 3, Score: 3}, {ID: 1, Score: 1}, {ID: 2, Score: 2}}
	if got := RecallAtK(gt, all); got != 1 {
		t.Errorf("full recall = %v, want 1", got)
	}
	one := []vec.Scored{{ID: 2, Score: 2}, {ID: 9, Score: 9}}
	if got := RecallAtK(gt, one); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("one-of-three recall = %v, want 1/3", got)
	}
	if got := RecallAtK(gt, nil); got != 0 {
		t.Errorf("empty retrieval recall = %v, want 0", got)
	}
	if got := RecallAtK(nil, one); got != 1 {
		t.Errorf("empty ground truth recall = %v, want 1 (vacuous)", got)
	}
}

func TestAccuracyRatioBounded(t *testing.T) {
	// For true ground truth, gt[i] <= retrieved[i], so the ratio is <= 1.
	rng := rand.New(rand.NewSource(5))
	profiles := randProfiles(rng, 300, 16)
	query := vec.Normalize(randProfiles(rng, 1, 16)[0])
	gt := BruteForceTopK(profiles, query, 10)
	// A lossy retrieval: rank only every third profile.
	var sub []int
	for i := 0; i < len(profiles); i += 3 {
		sub = append(sub, i)
	}
	retrieved := RankCandidates(profiles, query, sub, 10)
	r := AccuracyRatio(gt, retrieved)
	if r <= 0 || r > 1+1e-12 {
		t.Errorf("accuracy ratio %v out of (0,1]", r)
	}
}

func BenchmarkBruteForce100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	profiles := randProfiles(rng, 100000, 64)
	query := profiles[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForceTopK(profiles, query, 50)
	}
}
