package imaging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestImageSetAtClamp(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(1, 1, 0.5)
	if got := im.At(1, 1); got != 0.5 {
		t.Errorf("At = %v", got)
	}
	im.Set(1, 1, 2.0)
	if got := im.At(1, 1); got != 1.0 {
		t.Errorf("clamp high = %v", got)
	}
	im.Set(1, 1, -1.0)
	if got := im.At(1, 1); got != 0.0 {
		t.Errorf("clamp low = %v", got)
	}
	// Out of bounds is a no-op read 0.
	im.Set(-1, 0, 1)
	im.Set(0, 99, 1)
	if im.At(-1, 0) != 0 || im.At(0, 99) != 0 {
		t.Error("out-of-bounds access not zero")
	}
}

func TestImageValidate(t *testing.T) {
	if err := NewImage(4, 4).Validate(); err != nil {
		t.Errorf("valid image rejected: %v", err)
	}
	bad := &Image{W: 2, H: 2, Pix: make([]float64, 3)}
	if err := bad.Validate(); err == nil {
		t.Error("mismatched buffer accepted")
	}
	if err := (&Image{W: 0, H: 1}).Validate(); err == nil {
		t.Error("zero width accepted")
	}
}

func TestIntegralAgainstNaiveSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	im := NewImage(17, 13)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	it := NewIntegral(im)
	naive := func(r, c, rows, cols int) float64 {
		var s float64
		for y := r; y < r+rows; y++ {
			for x := c; x < c+cols; x++ {
				if y >= 0 && y < im.H && x >= 0 && x < im.W {
					s += im.At(x, y)
				}
			}
		}
		return s
	}
	cases := [][4]int{
		{0, 0, 13, 17},   // whole image
		{2, 3, 4, 5},     // interior
		{-2, -2, 5, 5},   // clipped top-left
		{10, 14, 10, 10}, // clipped bottom-right
		{5, 5, 0, 3},     // empty
	}
	for _, c := range cases {
		got := it.BoxSum(c[0], c[1], c[2], c[3])
		want := naive(c[0], c[1], c[2], c[3])
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("BoxSum%v = %v, want %v", c, got, want)
		}
	}
}

func TestIntegralBoxSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	im := NewImage(20, 20)
	for i := range im.Pix {
		im.Pix[i] = rng.Float64()
	}
	it := NewIntegral(im)
	f := func(r, c int8, rows, cols uint8) bool {
		got := it.BoxSum(int(r), int(c), int(rows)%22, int(cols)%22)
		var want float64
		for y := int(r); y < int(r)+int(rows)%22; y++ {
			for x := int(c); x < int(c)+int(cols)%22; x++ {
				if y >= 0 && y < 20 && x >= 0 && x < 20 {
					want += im.At(x, y)
				}
			}
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRenderAllTopics(t *testing.T) {
	for _, topic := range AllTopics() {
		im, err := Render(topic, 7, 96, 96)
		if err != nil {
			t.Fatalf("Render(%v): %v", topic, err)
		}
		if err := im.Validate(); err != nil {
			t.Fatalf("Render(%v) invalid: %v", topic, err)
		}
		_, std := im.Stats()
		if std < 0.01 {
			t.Errorf("topic %v renders nearly flat (std=%.4f)", topic, std)
		}
	}
}

func TestRenderRejectsBadInput(t *testing.T) {
	if _, err := Render(TopicFlower, 1, 4, 4); err == nil {
		t.Error("tiny image accepted")
	}
	if _, err := Render(Topic(99), 1, 64, 64); err == nil {
		t.Error("unknown topic accepted")
	}
}

func TestRenderVariesWithSeed(t *testing.T) {
	a, err := Render(TopicDog, 1, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Render(TopicDog, 2, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Pix {
		if a.Pix[i] == b.Pix[i] {
			same++
		}
	}
	if same == len(a.Pix) {
		t.Error("different seeds render identical images")
	}
}

func TestTopicNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, topic := range AllTopics() {
		name := topic.String()
		if seen[name] {
			t.Fatalf("duplicate topic name %q", name)
		}
		seen[name] = true
	}
	if Topic(99).String() == "" {
		t.Error("unknown topic has empty name")
	}
}
