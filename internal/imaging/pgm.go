package imaging

import (
	"bufio"
	"fmt"
	"io"
)

// PGM (portable graymap) encoding for the grayscale Image type, so user
// clients can persist, inspect and upload the rendered corpus with any
// standard image viewer. Binary P5 format with 8-bit depth.

// WritePGM encodes the image in binary PGM (P5).
func WritePGM(w io.Writer, im *Image) error {
	if err := im.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("imaging: write pgm header: %w", err)
	}
	row := make([]byte, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.At(x, y)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[x] = byte(v*255 + 0.5)
		}
		if _, err := bw.Write(row); err != nil {
			return fmt.Errorf("imaging: write pgm row: %w", err)
		}
	}
	return bw.Flush()
}

// ReadPGM decodes a binary PGM (P5) image with 8-bit depth.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" {
		return nil, fmt.Errorf("imaging: unsupported pgm magic %q", magic)
	}
	w, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	h, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	maxVal, err := pgmInt(br)
	if err != nil {
		return nil, err
	}
	if w < 1 || h < 1 || w*h > 1<<28 {
		return nil, fmt.Errorf("imaging: implausible pgm dimensions %dx%d", w, h)
	}
	if maxVal != 255 {
		return nil, fmt.Errorf("imaging: unsupported pgm depth %d (want 255)", maxVal)
	}
	im := NewImage(w, h)
	buf := make([]byte, w*h)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, fmt.Errorf("imaging: read pgm pixels: %w", err)
	}
	for i, b := range buf {
		im.Pix[i] = float64(b) / 255
	}
	return im, nil
}

// pgmToken reads the next whitespace-delimited token, skipping comments.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", fmt.Errorf("imaging: pgm header: %w", err)
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", fmt.Errorf("imaging: pgm comment: %w", err)
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}

func pgmInt(br *bufio.Reader) (int, error) {
	tok, err := pgmToken(br)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("imaging: pgm header token %q is not a number", tok)
		}
		n = n*10 + int(c-'0')
		if n > 1<<28 {
			return 0, fmt.Errorf("imaging: pgm header number too large")
		}
	}
	return n, nil
}
