package imaging

import (
	"fmt"
	"math"
	"math/rand"
)

// Topic identifies one procedural image class.
type Topic int

// The topic catalogue. Names mirror the interest classes of the paper's
// qualitative experiment (flowers, dogs, ...) plus further common photo
// subjects so the population has a rich interest space.
const (
	TopicFlower Topic = iota + 1
	TopicDog
	TopicCat
	TopicBeach
	TopicMountain
	TopicBuilding
	TopicFood
	TopicCar
	TopicTree
	TopicSky
	TopicWater
	TopicSign
	numTopics
)

// NumTopics is the number of distinct procedural topics.
const NumTopics = int(numTopics) - 1

// AllTopics lists every topic in order.
func AllTopics() []Topic {
	out := make([]Topic, 0, NumTopics)
	for t := TopicFlower; t < numTopics; t++ {
		out = append(out, t)
	}
	return out
}

// String returns the topic's human-readable name.
func (t Topic) String() string {
	switch t {
	case TopicFlower:
		return "flower"
	case TopicDog:
		return "dog"
	case TopicCat:
		return "cat"
	case TopicBeach:
		return "beach"
	case TopicMountain:
		return "mountain"
	case TopicBuilding:
		return "building"
	case TopicFood:
		return "food"
	case TopicCar:
		return "car"
	case TopicTree:
		return "tree"
	case TopicSky:
		return "sky"
	case TopicWater:
		return "water"
	case TopicSign:
		return "sign"
	default:
		return fmt.Sprintf("topic(%d)", int(t))
	}
}

// Render draws one image of the topic. seed varies the instance: different
// seeds give different flowers, but all of them remain flowers. The
// returned image is w×h with intensities in [0, 1].
func Render(topic Topic, seed int64, w, h int) (*Image, error) {
	if w < 16 || h < 16 {
		return nil, fmt.Errorf("imaging: image %dx%d too small to render", w, h)
	}
	rng := rand.New(rand.NewSource(seed ^ int64(topic)<<32))
	im := NewImage(w, h)
	switch topic {
	case TopicFlower:
		renderFlower(im, rng)
	case TopicDog:
		renderFurAnimal(im, rng, 0.45, 5)
	case TopicCat:
		renderFurAnimal(im, rng, 0.7, 9)
	case TopicBeach:
		renderBeach(im, rng)
	case TopicMountain:
		renderMountain(im, rng)
	case TopicBuilding:
		renderBuilding(im, rng)
	case TopicFood:
		renderFood(im, rng)
	case TopicCar:
		renderCar(im, rng)
	case TopicTree:
		renderTree(im, rng)
	case TopicSky:
		renderSky(im, rng)
	case TopicWater:
		renderWater(im, rng)
	case TopicSign:
		renderSign(im, rng)
	default:
		return nil, fmt.Errorf("imaging: unknown topic %d", int(topic))
	}
	addSensorNoise(im, rng, 0.02)
	return im, nil
}

// --- drawing primitives ---

// fillBackground sets every pixel to a base level with a soft vertical
// gradient.
func fillBackground(im *Image, base, gradient float64) {
	for y := 0; y < im.H; y++ {
		v := base + gradient*float64(y)/float64(im.H)
		for x := 0; x < im.W; x++ {
			im.Set(x, y, v)
		}
	}
}

// drawDisk draws a filled disk with soft edges.
func drawDisk(im *Image, cx, cy, r, intensity float64) {
	x0, x1 := int(cx-r-1), int(cx+r+1)
	y0, y1 := int(cy-r-1), int(cy+r+1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			d := math.Sqrt(dx*dx + dy*dy)
			if d <= r {
				im.Set(x, y, intensity)
			} else if d <= r+1 {
				im.Set(x, y, im.At(x, y)*(d-r)+intensity*(r+1-d))
			}
		}
	}
}

// drawRect fills an axis-aligned rectangle.
func drawRect(im *Image, x0, y0, x1, y1 int, intensity float64) {
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			im.Set(x, y, intensity)
		}
	}
}

// drawLine draws a 1px line with simple interpolation.
func drawLine(im *Image, x0, y0, x1, y1 float64, intensity float64) {
	steps := int(math.Max(math.Abs(x1-x0), math.Abs(y1-y0))) + 1
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		im.Set(int(x0+t*(x1-x0)), int(y0+t*(y1-y0)), intensity)
	}
}

// addSensorNoise perturbs every pixel with uniform noise of the given
// amplitude, emulating capture noise so identical renders never repeat.
func addSensorNoise(im *Image, rng *rand.Rand, amp float64) {
	for i, v := range im.Pix {
		nv := v + (rng.Float64()*2-1)*amp
		if nv < 0 {
			nv = 0
		} else if nv > 1 {
			nv = 1
		}
		im.Pix[i] = nv
	}
}

// --- topic programs ---

func renderFlower(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.25+rng.Float64()*0.1, 0.1)
	flowers := 1 + rng.Intn(3)
	for f := 0; f < flowers; f++ {
		cx := float64(im.W) * (0.25 + rng.Float64()*0.5)
		cy := float64(im.H) * (0.25 + rng.Float64()*0.5)
		petals := 5 + rng.Intn(4)
		rad := float64(im.W) * (0.08 + rng.Float64()*0.08)
		phase := rng.Float64() * math.Pi
		for p := 0; p < petals; p++ {
			ang := phase + 2*math.Pi*float64(p)/float64(petals)
			px := cx + math.Cos(ang)*rad
			py := cy + math.Sin(ang)*rad
			drawDisk(im, px, py, rad*0.55, 0.85)
		}
		drawDisk(im, cx, cy, rad*0.45, 0.55)
	}
}

// renderFurAnimal draws a blobby silhouette with high-frequency fur
// texture; stripePeriod differentiates dogs (coarse) from cats (striped).
func renderFurAnimal(im *Image, rng *rand.Rand, bodyLevel float64, stripePeriod int) {
	fillBackground(im, 0.6+rng.Float64()*0.1, -0.1)
	cx := float64(im.W) * (0.35 + rng.Float64()*0.3)
	cy := float64(im.H) * (0.45 + rng.Float64()*0.2)
	body := float64(im.W) * (0.16 + rng.Float64()*0.06)
	drawDisk(im, cx, cy, body, bodyLevel)                        // body
	drawDisk(im, cx+body*0.9, cy-body*0.7, body*0.55, bodyLevel) // head
	// ears
	drawDisk(im, cx+body*1.15, cy-body*1.2, body*0.18, bodyLevel-0.15)
	drawDisk(im, cx+body*0.65, cy-body*1.2, body*0.18, bodyLevel-0.15)
	// fur: short oriented strokes over the body with per-species period
	strokes := 250 + rng.Intn(100)
	for s := 0; s < strokes; s++ {
		ang := rng.Float64() * math.Pi
		x := cx + (rng.Float64()*2-1)*body
		y := cy + (rng.Float64()*2-1)*body
		length := 1 + float64(s%stripePeriod)
		shade := bodyLevel + (rng.Float64()-0.5)*0.3
		drawLine(im, x, y, x+math.Cos(ang)*length, y+math.Sin(ang)*length, shade)
	}
}

func renderBeach(im *Image, rng *rand.Rand) {
	horizon := im.H/2 + rng.Intn(im.H/6)
	for y := 0; y < im.H; y++ {
		var v float64
		if y < horizon {
			v = 0.75 - 0.2*float64(y)/float64(horizon) // sky
		} else {
			v = 0.55 + 0.25*float64(y-horizon)/float64(im.H-horizon) // sand
		}
		for x := 0; x < im.W; x++ {
			im.Set(x, y, v)
		}
	}
	// waves: horizontal sinusoidal bright lines above the sand
	waves := 4 + rng.Intn(4)
	for k := 0; k < waves; k++ {
		yBase := float64(horizon) - float64(k*3+rng.Intn(3))
		amp := 1.5 + rng.Float64()*2
		freq := 0.1 + rng.Float64()*0.1
		for x := 0; x < im.W; x++ {
			y := yBase + amp*math.Sin(freq*float64(x)+rng.Float64())
			im.Set(x, int(y), 0.9)
		}
	}
}

func renderMountain(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.8, -0.15)
	ridges := 2 + rng.Intn(2)
	for r := 0; r < ridges; r++ {
		base := im.H - r*im.H/6 - rng.Intn(im.H/8)
		peak := im.H/4 + rng.Intn(im.H/4)
		shade := 0.25 + 0.15*float64(r)
		// jagged ridge line via midpoint-ish jitter
		y := float64(base - peak)
		for x := 0; x < im.W; x++ {
			y += (rng.Float64()*2 - 1) * 3
			if y < float64(im.H/6) {
				y = float64(im.H / 6)
			}
			if y > float64(base) {
				y = float64(base)
			}
			for yy := int(y); yy < base; yy++ {
				im.Set(x, yy, shade)
			}
		}
	}
}

func renderBuilding(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.7, -0.1)
	bx0 := im.W/8 + rng.Intn(im.W/8)
	bx1 := im.W - im.W/8 - rng.Intn(im.W/8)
	by0 := im.H/6 + rng.Intn(im.H/8)
	drawRect(im, bx0, by0, bx1, im.H-1, 0.35)
	// window grid
	cols := 4 + rng.Intn(4)
	rows := 5 + rng.Intn(4)
	cw := (bx1 - bx0) / (cols*2 + 1)
	ch := (im.H - by0) / (rows*2 + 1)
	if cw < 1 || ch < 1 {
		return
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			wx := bx0 + cw*(2*c+1)
			wy := by0 + ch*(2*r+1)
			lit := 0.85
			if rng.Intn(3) == 0 {
				lit = 0.15
			}
			drawRect(im, wx, wy, wx+cw-1, wy+ch-1, lit)
		}
	}
}

func renderFood(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.35, 0.05)
	cx, cy := float64(im.W)/2, float64(im.H)/2
	plate := float64(im.W) * (0.3 + rng.Float64()*0.08)
	drawDisk(im, cx, cy, plate, 0.9)      // plate
	drawDisk(im, cx, cy, plate*0.85, 0.8) // inner rim
	items := 4 + rng.Intn(5)
	for i := 0; i < items; i++ {
		ang := rng.Float64() * 2 * math.Pi
		rr := rng.Float64() * plate * 0.55
		drawDisk(im, cx+math.Cos(ang)*rr, cy+math.Sin(ang)*rr,
			plate*(0.12+rng.Float64()*0.12), 0.3+rng.Float64()*0.35)
	}
}

func renderCar(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.65, -0.05)
	// road
	drawRect(im, 0, im.H*3/4, im.W-1, im.H-1, 0.3)
	bx0 := im.W/6 + rng.Intn(im.W/6)
	bw := im.W / 2
	by1 := im.H * 3 / 4
	by0 := by1 - im.H/5
	drawRect(im, bx0, by0, bx0+bw, by1, 0.5)                  // body
	drawRect(im, bx0+bw/5, by0-im.H/8, bx0+bw*4/5, by0, 0.55) // cabin
	wheelR := float64(im.H) / 12
	drawDisk(im, float64(bx0)+float64(bw)*0.22, float64(by1), wheelR, 0.1)
	drawDisk(im, float64(bx0)+float64(bw)*0.78, float64(by1), wheelR, 0.1)
	drawDisk(im, float64(bx0)+float64(bw)*0.22, float64(by1), wheelR*0.4, 0.7)
	drawDisk(im, float64(bx0)+float64(bw)*0.78, float64(by1), wheelR*0.4, 0.7)
}

func renderTree(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.75, -0.1)
	trees := 1 + rng.Intn(3)
	for t := 0; t < trees; t++ {
		tx := float64(im.W) * (0.2 + rng.Float64()*0.6)
		trunkTop := float64(im.H) * (0.35 + rng.Float64()*0.1)
		for dx := -1; dx <= 1; dx++ {
			drawLine(im, tx+float64(dx), float64(im.H-1), tx+float64(dx), trunkTop, 0.2)
		}
		// canopy: cluster of dark leaf blobs
		blobs := 12 + rng.Intn(10)
		canopyR := float64(im.W) * 0.12
		for b := 0; b < blobs; b++ {
			ang := rng.Float64() * 2 * math.Pi
			rr := rng.Float64() * canopyR
			drawDisk(im, tx+math.Cos(ang)*rr, trunkTop-canopyR/2+math.Sin(ang)*rr*0.7,
				canopyR*(0.25+rng.Float64()*0.2), 0.3+rng.Float64()*0.15)
		}
	}
}

func renderSky(im *Image, rng *rand.Rand) {
	for y := 0; y < im.H; y++ {
		v := 0.85 - 0.3*float64(y)/float64(im.H)
		for x := 0; x < im.W; x++ {
			im.Set(x, y, v)
		}
	}
	clouds := 3 + rng.Intn(4)
	for c := 0; c < clouds; c++ {
		cx := rng.Float64() * float64(im.W)
		cy := rng.Float64() * float64(im.H) * 0.6
		puffs := 4 + rng.Intn(5)
		for p := 0; p < puffs; p++ {
			drawDisk(im, cx+(rng.Float64()*2-1)*12, cy+(rng.Float64()*2-1)*5,
				5+rng.Float64()*7, 0.95)
		}
	}
}

func renderWater(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.45, 0.1)
	phase := rng.Float64() * math.Pi
	fy := 0.25 + rng.Float64()*0.15
	fx := 0.08 + rng.Float64()*0.08
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			ripple := 0.15 * math.Sin(fx*float64(x)+fy*float64(y)+phase) *
				math.Sin(0.5*fy*float64(y)-phase)
			im.Add(x, y, ripple)
		}
	}
	// Specular sparkle where sunlight catches wave crests.
	sparkles := 25 + rng.Intn(20)
	for s := 0; s < sparkles; s++ {
		cx := rng.Float64() * float64(im.W)
		cy := rng.Float64() * float64(im.H)
		drawDisk(im, cx, cy, 1.2+rng.Float64()*1.8, 0.95)
	}
}

func renderSign(im *Image, rng *rand.Rand) {
	fillBackground(im, 0.55, 0)
	sx0 := im.W/6 + rng.Intn(im.W/10)
	sx1 := im.W - sx0
	sy0 := im.H/5 + rng.Intn(im.H/10)
	sy1 := im.H - sy0
	drawRect(im, sx0, sy0, sx1, sy1, 0.9)
	drawRect(im, sx0+2, sy0+2, sx1-2, sy1-2, 0.85)
	// "text": horizontal dark bars of varying lengths
	lines := 3 + rng.Intn(4)
	lh := (sy1 - sy0) / (lines*2 + 1)
	if lh < 1 {
		return
	}
	for k := 0; k < lines; k++ {
		y0 := sy0 + lh*(2*k+1)
		length := (sx1 - sx0 - 8) * (40 + rng.Intn(60)) / 100
		drawRect(im, sx0+4, y0, sx0+4+length, y0+lh-1, 0.1)
	}
}
