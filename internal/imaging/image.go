// Package imaging provides the image substrate of the reproduction: a
// grayscale image type, integral images (the summed-area tables SURF's box
// filters run on), and a procedural generator that renders "topic" images —
// the offline substitute for the MIRFlickr-1M photo collection the paper
// samples (DESIGN.md §5.1).
//
// Every topic is a parameterized drawing program (petals, fur, windows,
// waves, ...). Images of one topic share structural statistics, so their
// SURF descriptors quantize to overlapping visual words and users who
// photograph the same topics end up with nearby BoW profiles — the exact
// property the paper's social discovery exploits.
package imaging

import (
	"fmt"
	"math"
)

// Image is a grayscale image with float64 intensities in [0, 1],
// row-major.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h)}
}

// At returns the intensity at (x, y); out-of-bounds reads return 0.
func (im *Image) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return 0
	}
	return im.Pix[y*im.W+x]
}

// Set writes the intensity at (x, y), clamping to [0, 1]; out-of-bounds
// writes are ignored.
func (im *Image) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= im.W || y >= im.H {
		return
	}
	if v < 0 {
		v = 0
	} else if v > 1 {
		v = 1
	}
	im.Pix[y*im.W+x] = v
}

// Add accumulates v into (x, y) with clamping.
func (im *Image) Add(x, y int, v float64) {
	im.Set(x, y, im.At(x, y)+v)
}

// Integral is a summed-area table over an Image: I(x, y) is the sum of all
// pixels strictly above and to the left, so box sums are four lookups.
type Integral struct {
	W, H int
	sum  []float64 // (W+1) x (H+1)
}

// NewIntegral computes the integral image of im.
func NewIntegral(im *Image) *Integral {
	w, h := im.W, im.H
	it := &Integral{W: w, H: h, sum: make([]float64, (w+1)*(h+1))}
	stride := w + 1
	for y := 1; y <= h; y++ {
		var rowSum float64
		for x := 1; x <= w; x++ {
			rowSum += im.Pix[(y-1)*w+(x-1)]
			it.sum[y*stride+x] = it.sum[(y-1)*stride+x] + rowSum
		}
	}
	return it
}

// BoxSum returns the sum of the pixel rectangle starting at (row, col) with
// the given number of rows and cols, clipped to the image bounds — the
// BoxIntegral primitive of SURF's box filters.
func (it *Integral) BoxSum(row, col, rows, cols int) float64 {
	r1 := clamp(row, 0, it.H)
	c1 := clamp(col, 0, it.W)
	r2 := clamp(row+rows, 0, it.H)
	c2 := clamp(col+cols, 0, it.W)
	if r2 <= r1 || c2 <= c1 {
		return 0
	}
	stride := it.W + 1
	a := it.sum[r1*stride+c1]
	b := it.sum[r1*stride+c2]
	c := it.sum[r2*stride+c1]
	d := it.sum[r2*stride+c2]
	return d - b - c + a
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Stats returns the mean and standard deviation of the image intensities.
func (im *Image) Stats() (mean, std float64) {
	n := float64(len(im.Pix))
	if n == 0 {
		return 0, 0
	}
	for _, v := range im.Pix {
		mean += v
	}
	mean /= n
	for _, v := range im.Pix {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / n)
}

// Validate reports structural problems (used by tests and loaders).
func (im *Image) Validate() error {
	if im.W < 1 || im.H < 1 {
		return fmt.Errorf("imaging: invalid dimensions %dx%d", im.W, im.H)
	}
	if len(im.Pix) != im.W*im.H {
		return fmt.Errorf("imaging: pixel buffer %d does not match %dx%d", len(im.Pix), im.W, im.H)
	}
	return nil
}
