package imaging

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPGMRoundTrip(t *testing.T) {
	im, err := Render(TopicFlower, 3, 48, 32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatalf("WritePGM: %v", err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatalf("ReadPGM: %v", err)
	}
	if got.W != im.W || got.H != im.H {
		t.Fatalf("shape %dx%d, want %dx%d", got.W, got.H, im.W, im.H)
	}
	// 8-bit quantization: within 1/255 per pixel.
	for i := range im.Pix {
		if math.Abs(got.Pix[i]-im.Pix[i]) > 1.0/255+1e-9 {
			t.Fatalf("pixel %d: %v vs %v", i, got.Pix[i], im.Pix[i])
		}
	}
}

func TestPGMHeaderVariants(t *testing.T) {
	// Comments and flexible whitespace are legal in PGM headers.
	data := "P5 # a comment\n# another\n 4\t2\n255\n" + string(make([]byte, 8))
	im, err := ReadPGM(strings.NewReader(data))
	if err != nil {
		t.Fatalf("ReadPGM with comments: %v", err)
	}
	if im.W != 4 || im.H != 2 {
		t.Errorf("shape %dx%d", im.W, im.H)
	}
}

func TestPGMRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad magic":      "P6\n2 2\n255\n" + string(make([]byte, 4)),
		"bad depth":      "P5\n2 2\n65535\n" + string(make([]byte, 8)),
		"non-numeric":    "P5\nx 2\n255\n",
		"truncated body": "P5\n4 4\n255\n\x00\x00",
		"empty":          "",
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadPGM(strings.NewReader(data)); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestWritePGMRejectsInvalidImage(t *testing.T) {
	bad := &Image{W: 2, H: 2, Pix: make([]float64, 3)}
	if err := WritePGM(&bytes.Buffer{}, bad); err == nil {
		t.Error("invalid image accepted")
	}
}
