// Package asperank implements the encrypted cloud-side distance ranking
// the paper defers to future work (Sec. III-C: "our design can be combined
// with existing encryption techniques ... which is expected to further
// support encrypted cloud side distance ranking"): the Asymmetric
// Scalar-Product-preserving Encryption (ASPE) of Wong, Cheung, Kao and
// Mamoulis (SIGMOD'09), the construction behind the secure-kNN line of
// work the paper cites ([24], [30]).
//
// The front end holds a secret invertible matrix M over R^{(m+1)×(m+1)}.
// A profile p is stored at the cloud as E(p) = Mᵀ·p̂ with p̂ = (p, −½‖p‖²);
// a query q becomes the token T(q) = M⁻¹·(r·q, r) for a fresh random
// r > 0. Then
//
//	E(p) · T(q) = r·(p·q − ½‖p‖²) = −r/2·(‖p−q‖² − ‖q‖²),
//
// which for a fixed query is strictly decreasing in the Euclidean distance
// ‖p−q‖ — so the cloud can rank encrypted profiles by dot product and
// return only the top-k identifiers, cutting the response from k full
// profile ciphertexts to k ids.
//
// SECURITY NOTE: ASPE protects against a ciphertext-only adversary but is
// broken under known-plaintext attack (Yao, Li, Xiao — ICDE'13, the
// paper's [30]). The paper makes the same observation about this line of
// work ("the security strength is limited"). This package exists to
// reproduce the deferred comparison, not as a recommended default; the
// main scheme's retrieve-then-rank flow remains the provably secure path.
package asperank

import (
	"fmt"
	"math/rand"
	"sort"
)

// Scheme holds the front end's secret matrices.
type Scheme struct {
	dim int // m, the profile dimensionality; matrices are (m+1)×(m+1)
	m   [][]float64
	inv [][]float64
	rng *rand.Rand
}

// EncProfile is one cloud-resident encrypted profile.
type EncProfile struct {
	ID  uint64
	Vec []float64 // Mᵀ·p̂
}

// Token is one query token.
type Token struct {
	Vec []float64 // M⁻¹·(r·q, r)
}

// New creates a scheme for profiles of the given dimensionality. seed
// drives matrix generation and per-query randomness (use a crypto source
// in production; deterministic seeding keeps experiments reproducible).
func New(dim int, seed int64) (*Scheme, error) {
	if dim < 1 {
		return nil, fmt.Errorf("asperank: dim must be >= 1, got %d", dim)
	}
	rng := rand.New(rand.NewSource(seed))
	n := dim + 1
	for attempt := 0; attempt < 10; attempt++ {
		m := randomMatrix(rng, n)
		inv, ok := invert(m)
		if !ok {
			continue
		}
		return &Scheme{dim: dim, m: m, inv: inv, rng: rng}, nil
	}
	return nil, fmt.Errorf("asperank: could not draw an invertible matrix")
}

// randomMatrix draws a well-conditioned random matrix: Gaussian entries
// with a boosted diagonal.
func randomMatrix(rng *rand.Rand, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
		m[i][i] += float64(n) // diagonal dominance → invertible, well-conditioned
	}
	return m
}

// invert computes the inverse via Gauss-Jordan with partial pivoting.
func invert(a [][]float64) ([][]float64, bool) {
	n := len(a)
	// Augmented [A | I].
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(aug[r][col]) > abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if abs(aug[pivot][col]) < 1e-12 {
			return nil, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Normalize and eliminate.
		p := aug[col][col]
		for j := 0; j < 2*n; j++ {
			aug[col][j] /= p
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	inv := make([][]float64, n)
	for i := range inv {
		inv[i] = make([]float64, n)
		copy(inv[i], aug[i][n:])
	}
	return inv, true
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Encrypt produces the cloud-side encryption of one profile.
func (s *Scheme) Encrypt(id uint64, profile []float64) (*EncProfile, error) {
	if len(profile) != s.dim {
		return nil, fmt.Errorf("asperank: profile dim %d, want %d", len(profile), s.dim)
	}
	n := s.dim + 1
	// p̂ = (p, -0.5·|p|²)
	hat := make([]float64, n)
	var norm2 float64
	for i, x := range profile {
		hat[i] = x
		norm2 += x * x
	}
	hat[s.dim] = -0.5 * norm2
	// Mᵀ·p̂  (row i of result = column i of M dotted with p̂)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += s.m[j][i] * hat[j]
		}
		out[i] = sum
	}
	return &EncProfile{ID: id, Vec: out}, nil
}

// TokenFor produces a fresh query token (new random scale every call, so
// tokens for the same query are unlinkable by magnitude).
func (s *Scheme) TokenFor(query []float64) (*Token, error) {
	if len(query) != s.dim {
		return nil, fmt.Errorf("asperank: query dim %d, want %d", len(query), s.dim)
	}
	n := s.dim + 1
	r := 0.5 + s.rng.Float64() // r > 0
	hat := make([]float64, n)
	for i, x := range query {
		hat[i] = r * x
	}
	hat[s.dim] = r
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			sum += s.inv[i][j] * hat[j]
		}
		out[i] = sum
	}
	return &Token{Vec: out}, nil
}

// Rank is the cloud-side operation: order the encrypted profiles by
// decreasing E(p)·T(q) — i.e. increasing true distance — and return the
// top-k identifiers. The cloud never sees a plaintext profile or distance.
func Rank(profiles []*EncProfile, t *Token, k int) []uint64 {
	type scored struct {
		id    uint64
		score float64
	}
	ss := make([]scored, len(profiles))
	for i, p := range profiles {
		var dot float64
		for j := range p.Vec {
			dot += p.Vec[j] * t.Vec[j]
		}
		ss[i] = scored{id: p.ID, score: dot}
	}
	sort.Slice(ss, func(a, b int) bool {
		if ss[a].score != ss[b].score {
			return ss[a].score > ss[b].score
		}
		return ss[a].id < ss[b].id
	})
	if k > 0 && len(ss) > k {
		ss = ss[:k]
	}
	out := make([]uint64, len(ss))
	for i, s := range ss {
		out[i] = s.id
	}
	return out
}
