package asperank

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"pisd/internal/vec"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(8, 1); err != nil {
		t.Errorf("valid dim rejected: %v", err)
	}
}

func TestInvertCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		m := randomMatrix(rng, n)
		inv, ok := invert(m)
		if !ok {
			t.Fatal("well-conditioned matrix not invertible")
		}
		// M · M⁻¹ = I
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum float64
				for k := 0; k < n; k++ {
					sum += m[i][k] * inv[k][j]
				}
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(sum-want) > 1e-8 {
					t.Fatalf("M·M⁻¹[%d][%d] = %v", i, j, sum)
				}
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	singular := [][]float64{{1, 2}, {2, 4}}
	if _, ok := invert(singular); ok {
		t.Error("singular matrix inverted")
	}
}

func TestEncryptTokenDims(t *testing.T) {
	s, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Encrypt(1, []float64{1, 2}); err == nil {
		t.Error("wrong profile dim accepted")
	}
	if _, err := s.TokenFor([]float64{1}); err == nil {
		t.Error("wrong query dim accepted")
	}
}

// The load-bearing property: cloud-side ranking by encrypted dot product
// equals plaintext ranking by Euclidean distance.
func TestRankMatchesPlaintextOrder(t *testing.T) {
	const dim, n = 16, 200
	s, err := New(dim, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	profiles := make([][]float64, n)
	enc := make([]*EncProfile, n)
	for i := range profiles {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		profiles[i] = vec.Normalize(p)
		e, err := s.Encrypt(uint64(i+1), profiles[i])
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = e
	}
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		vec.Normalize(q)
		tok, err := s.TokenFor(q)
		if err != nil {
			t.Fatal(err)
		}
		got := Rank(enc, tok, 10)

		// Plaintext ground truth.
		type pd struct {
			id   uint64
			dist float64
		}
		all := make([]pd, n)
		for i, p := range profiles {
			all[i] = pd{uint64(i + 1), vec.Distance(q, p)}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].dist != all[b].dist {
				return all[a].dist < all[b].dist
			}
			return all[a].id < all[b].id
		})
		for i := range got {
			if got[i] != all[i].id {
				t.Fatalf("trial %d rank %d: cloud %d vs plaintext %d", trial, i, got[i], all[i].id)
			}
		}
	}
}

// Fresh tokens for the same query must differ (random r), yet rank
// identically.
func TestTokensUnlinkableButConsistent(t *testing.T) {
	const dim = 8
	s, err := New(dim, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	q := make([]float64, dim)
	for j := range q {
		q[j] = rng.Float64()
	}
	t1, err := s.TokenFor(q)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := s.TokenFor(q)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range t1.Vec {
		if t1.Vec[j] != t2.Vec[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("two tokens for the same query are identical")
	}
	var enc []*EncProfile
	for i := 0; i < 50; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		e, err := s.Encrypt(uint64(i+1), p)
		if err != nil {
			t.Fatal(err)
		}
		enc = append(enc, e)
	}
	r1 := Rank(enc, t1, 10)
	r2 := Rank(enc, t2, 10)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("tokens for the same query rank differently")
		}
	}
}

// Ciphertexts reveal no direct plaintext structure: the encrypted vector
// of a basis profile is dense (no zero passthrough).
func TestCiphertextNotPassthrough(t *testing.T) {
	const dim = 6
	s, err := New(dim, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, dim)
	p[0] = 1 // basis vector
	e, err := s.Encrypt(1, p)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, x := range e.Vec {
		if x == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Errorf("ciphertext has %d zero entries for a basis profile", zeros)
	}
}

func TestRankKClamp(t *testing.T) {
	s, err := New(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	e1, _ := s.Encrypt(1, []float64{1, 0})
	tok, _ := s.TokenFor([]float64{1, 0})
	if got := Rank([]*EncProfile{e1}, tok, 5); len(got) != 1 || got[0] != 1 {
		t.Errorf("Rank = %v", got)
	}
	if got := Rank(nil, tok, 5); len(got) != 0 {
		t.Errorf("Rank(nil) = %v", got)
	}
}
