// Package leakage quantifies the information the cloud provably learns
// from a sequence of secure discovery queries — the paper's Definitions
// 3–5 (Sec. IV): the access pattern AP, the similarity search pattern SSP
// and the intersection pattern IP. The security theorem states that the
// cloud's view is simulatable from exactly this trace; this package
// computes the trace from a real query log so deployments can audit how
// much pattern information accumulates, and tests can pin the leakage
// profile down (no more, no less).
package leakage

import (
	"fmt"

	"pisd/internal/core"
	"pisd/internal/lsh"
)

// QueryRecord is the observable outcome of one secure discovery: the
// metadata the front end queried (known to SF, not to CS), the positions
// the trapdoor addressed and the identifiers the cloud recovered (both
// visible to CS).
type QueryRecord struct {
	// Meta is the queried metadata V (SF-side ground truth, used to
	// verify the leakage profile).
	Meta lsh.Metadata
	// Positions[j] are the d+1 bucket positions addressed in table j.
	Positions [][]uint64
	// IDs are the identifiers the cloud recovered (the access pattern).
	IDs []uint64
}

// Log collects query records.
type Log struct {
	tables  int
	records []QueryRecord
}

// NewLog creates a log for an index with the given table count.
func NewLog(tables int) *Log {
	return &Log{tables: tables}
}

// Record appends one query's observables. The position trapdoor must
// cover every table.
func (l *Log) Record(meta lsh.Metadata, td *core.PositionTrapdoor, ids []uint64) error {
	if td == nil || len(td.Tables) != l.tables {
		return fmt.Errorf("leakage: trapdoor covers %d tables, want %d", len(td.Tables), l.tables)
	}
	if len(meta) != l.tables {
		return fmt.Errorf("leakage: metadata arity %d, want %d", len(meta), l.tables)
	}
	positions := make([][]uint64, l.tables)
	for j := range positions {
		positions[j] = append([]uint64(nil), td.Tables[j]...)
	}
	l.records = append(l.records, QueryRecord{
		Meta:      append(lsh.Metadata(nil), meta...),
		Positions: positions,
		IDs:       append([]uint64(nil), ids...),
	})
	return nil
}

// Len returns the number of recorded queries.
func (l *Log) Len() int { return len(l.records) }

// AccessPattern returns AP (Definition 3): per query, the set of
// recovered identifiers.
func (l *Log) AccessPattern() [][]uint64 {
	out := make([][]uint64, len(l.records))
	for i, r := range l.records {
		out[i] = append([]uint64(nil), r.IDs...)
	}
	return out
}

// SimilaritySearchPattern returns SSP (Definition 4): the symmetric q×q
// matrix whose [i][j] entry is the per-table equality vector ν with
// ν[m] = 1 iff V_i[m] = V_j[m].
func (l *Log) SimilaritySearchPattern() [][][]bool {
	q := len(l.records)
	out := make([][][]bool, q)
	for i := range out {
		out[i] = make([][]bool, q)
		for j := range out[i] {
			nu := make([]bool, l.tables)
			for m := 0; m < l.tables; m++ {
				nu[m] = l.records[i].Meta[m] == l.records[j].Meta[m]
			}
			out[i][j] = nu
		}
	}
	return out
}

// TableIntersection is one entry of IP: for a query pair and one table,
// the bucket positions both queries addressed.
type TableIntersection struct {
	Positions []uint64
}

// IntersectionPattern returns IP (Definition 5): per query pair, per
// table, the intersection of addressed positions.
func (l *Log) IntersectionPattern() [][][]TableIntersection {
	q := len(l.records)
	out := make([][][]TableIntersection, q)
	for i := range out {
		out[i] = make([][]TableIntersection, q)
		for j := range out[i] {
			inter := make([]TableIntersection, l.tables)
			for m := 0; m < l.tables; m++ {
				inter[m] = TableIntersection{
					Positions: intersect(l.records[i].Positions[m], l.records[j].Positions[m]),
				}
			}
			out[i][j] = inter
		}
	}
	return out
}

func intersect(a, b []uint64) []uint64 {
	set := make(map[uint64]struct{}, len(a))
	for _, x := range a {
		set[x] = struct{}{}
	}
	var out []uint64
	seen := make(map[uint64]struct{})
	for _, x := range b {
		if _, ok := set[x]; ok {
			if _, dup := seen[x]; !dup {
				seen[x] = struct{}{}
				out = append(out, x)
			}
		}
	}
	return out
}

// Verify checks the leakage profile's internal consistency: whenever two
// queries share a table's metadata value (SSP), their trapdoors address
// identical positions in that table (IP covers the full probe set), and
// whenever they differ, intersections are only chance collisions. A
// violation means the implementation leaks differently than proven.
func (l *Log) Verify() error {
	ssp := l.SimilaritySearchPattern()
	for i := range l.records {
		for j := range l.records {
			for m := 0; m < l.tables; m++ {
				same := equalPositions(l.records[i].Positions[m], l.records[j].Positions[m])
				if ssp[i][j][m] && !same {
					return fmt.Errorf("leakage: queries %d,%d share V[%d] but address different positions", i, j, m)
				}
				if !ssp[i][j][m] && same && len(l.records[i].Positions[m]) > 0 {
					// Full positional identity without metadata equality
					// would require a complete PRF collision across d+1
					// probes — flag it.
					return fmt.Errorf("leakage: queries %d,%d differ in V[%d] but address identical positions", i, j, m)
				}
			}
		}
	}
	return nil
}

func equalPositions(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Report summarizes the accumulated pattern leakage.
type Report struct {
	// Queries is the number of recorded queries.
	Queries int
	// DistinctTrapdoors counts distinct full trapdoors (repeat queries
	// are fully linkable — the inherent SSE leakage).
	DistinctTrapdoors int
	// LinkablePairs counts query pairs sharing at least one table value.
	LinkablePairs int
	// AvgSharedTables is the mean number of shared tables over linkable
	// pairs (how precisely the cloud can gauge query similarity).
	AvgSharedTables float64
	// IDsObserved counts distinct identifiers surfaced across all
	// queries (access-pattern exposure of the population).
	IDsObserved int
}

// Summarize computes the report.
func (l *Log) Summarize() Report {
	rep := Report{Queries: len(l.records)}
	seenTrapdoor := make(map[string]struct{})
	ids := make(map[uint64]struct{})
	for _, r := range l.records {
		key := ""
		for _, m := range r.Meta {
			key += fmt.Sprintf("%x,", m)
		}
		seenTrapdoor[key] = struct{}{}
		for _, id := range r.IDs {
			ids[id] = struct{}{}
		}
	}
	rep.DistinctTrapdoors = len(seenTrapdoor)
	rep.IDsObserved = len(ids)

	var sharedSum int
	for i := 0; i < len(l.records); i++ {
		for j := i + 1; j < len(l.records); j++ {
			shared := 0
			for m := 0; m < l.tables; m++ {
				if l.records[i].Meta[m] == l.records[j].Meta[m] {
					shared++
				}
			}
			if shared > 0 {
				rep.LinkablePairs++
				sharedSum += shared
			}
		}
	}
	if rep.LinkablePairs > 0 {
		rep.AvgSharedTables = float64(sharedSum) / float64(rep.LinkablePairs)
	}
	return rep
}
