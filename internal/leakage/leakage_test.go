package leakage

import (
	"math/rand"
	"testing"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

// harness builds a small secure index and a log of real queries.
func harness(t *testing.T) (*crypt.KeySet, *core.Index, core.Params, []lsh.Metadata) {
	t.Helper()
	keys, err := crypt.GenDeterministic("leakage-test", 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	metas := make([]lsh.Metadata, 200)
	for i := range metas {
		m := make(lsh.Metadata, 4)
		for j := range m {
			m[j] = uint64(rng.Intn(30)) // dense values: overlaps common
		}
		metas[i] = m
	}
	items := make([]core.Item, len(metas))
	for i, m := range metas {
		items[i] = core.Item{ID: uint64(i + 1), Meta: m}
	}
	p := core.Params{Tables: 4, Capacity: core.CapacityFor(200, 0.7), ProbeRange: 6, MaxLoop: 500, Seed: 1}
	idx, err := core.Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	return keys, idx, p, metas
}

func record(t *testing.T, l *Log, keys *crypt.KeySet, idx *core.Index, p core.Params, meta lsh.Metadata) {
	t.Helper()
	pt, err := core.GenPosTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	td, err := core.GenTpdr(keys, meta, p)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := idx.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Record(meta, pt, ids); err != nil {
		t.Fatal(err)
	}
}

func TestRecordValidation(t *testing.T) {
	l := NewLog(4)
	if err := l.Record(lsh.Metadata{1}, &core.PositionTrapdoor{Tables: make([][]uint64, 4)}, nil); err == nil {
		t.Error("short metadata accepted")
	}
	if err := l.Record(lsh.Metadata{1, 2, 3, 4}, &core.PositionTrapdoor{Tables: make([][]uint64, 2)}, nil); err == nil {
		t.Error("short trapdoor accepted")
	}
}

func TestPatternsOnRealQueries(t *testing.T) {
	keys, idx, p, metas := harness(t)
	l := NewLog(p.Tables)
	queries := []lsh.Metadata{metas[0], metas[1], metas[0], metas[2]}
	for _, q := range queries {
		record(t, l, keys, idx, p, q)
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d", l.Len())
	}

	// SSP: identical queries share every table; diagonal all-true.
	ssp := l.SimilaritySearchPattern()
	for m := 0; m < p.Tables; m++ {
		if !ssp[0][2][m] {
			t.Fatalf("repeat query not fully linkable in table %d", m)
		}
		if !ssp[1][1][m] {
			t.Fatal("diagonal must be all true")
		}
	}

	// IP: repeat query intersects itself on all d+1 positions per table.
	ip := l.IntersectionPattern()
	for m := 0; m < p.Tables; m++ {
		if got := len(ip[0][2][m].Positions); got != p.ProbeRange+1 {
			// Positions within one table can collide mod w, so the
			// deduplicated intersection may be smaller — but never larger.
			if got > p.ProbeRange+1 || got == 0 {
				t.Fatalf("repeat query intersection size %d", got)
			}
		}
	}

	// AP: recovered ids recorded per query.
	ap := l.AccessPattern()
	if len(ap) != 4 {
		t.Fatalf("AP len = %d", len(ap))
	}

	// The leakage profile must be internally consistent.
	if err := l.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyDetectsInconsistency(t *testing.T) {
	_, _, p, metas := harness(t)
	l := NewLog(p.Tables)
	// Hand-craft inconsistent records: same metadata, different positions.
	pt1 := &core.PositionTrapdoor{Tables: [][]uint64{{1}, {2}, {3}, {4}}}
	pt2 := &core.PositionTrapdoor{Tables: [][]uint64{{9}, {2}, {3}, {4}}}
	if err := l.Record(metas[0], pt1, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(metas[0], pt2, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(); err == nil {
		t.Fatal("inconsistent log passed Verify")
	}
}

func TestSummarize(t *testing.T) {
	keys, idx, p, metas := harness(t)
	l := NewLog(p.Tables)
	record(t, l, keys, idx, p, metas[0])
	record(t, l, keys, idx, p, metas[0]) // repeat: fully linkable
	record(t, l, keys, idx, p, metas[5])
	rep := l.Summarize()
	if rep.Queries != 3 {
		t.Errorf("Queries = %d", rep.Queries)
	}
	if rep.DistinctTrapdoors != 2 {
		t.Errorf("DistinctTrapdoors = %d, want 2", rep.DistinctTrapdoors)
	}
	if rep.LinkablePairs < 1 {
		t.Errorf("LinkablePairs = %d, want >= 1 (the repeat)", rep.LinkablePairs)
	}
	if rep.AvgSharedTables <= 0 {
		t.Errorf("AvgSharedTables = %v", rep.AvgSharedTables)
	}
	if rep.IDsObserved == 0 {
		t.Error("no ids observed despite non-empty index")
	}
}

func TestEmptyLog(t *testing.T) {
	l := NewLog(3)
	if err := l.Verify(); err != nil {
		t.Errorf("empty log Verify: %v", err)
	}
	rep := l.Summarize()
	if rep.Queries != 0 || rep.DistinctTrapdoors != 0 {
		t.Errorf("empty summary %+v", rep)
	}
}
