package kik12

import (
	"math/rand"
	"testing"

	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

func testKeys(t *testing.T, l int) *crypt.KeySet {
	t.Helper()
	keys, err := crypt.GenDeterministic("kik12-test", l)
	if err != nil {
		t.Fatal(err)
	}
	return keys
}

// clusteredMetas builds n users in g groups; users of one group share all
// LSH values, so retrieval and ranking are fully predictable.
func clusteredMetas(rng *rand.Rand, n, groups, tables int) ([]lsh.Metadata, []int) {
	groupMeta := make([]lsh.Metadata, groups)
	for g := range groupMeta {
		m := make(lsh.Metadata, tables)
		for j := range m {
			m[j] = rng.Uint64()
		}
		groupMeta[g] = m
	}
	metas := make([]lsh.Metadata, n)
	assign := make([]int, n)
	for i := range metas {
		g := i % groups
		assign[i] = g
		metas[i] = groupMeta[g]
	}
	return metas, assign
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Tables: 0, Users: 1}).Validate(); err == nil {
		t.Error("zero tables accepted")
	}
	if err := (Params{Tables: 1, Users: 0}).Validate(); err == nil {
		t.Error("zero users accepted")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	keys := testKeys(t, 4)
	p := Params{Tables: 4, Users: 3}
	if _, err := Build(nil, make([]lsh.Metadata, 3), p); err == nil {
		t.Error("nil keys accepted")
	}
	if _, err := Build(keys, make([]lsh.Metadata, 2), p); err == nil {
		t.Error("wrong user count accepted")
	}
	metas := []lsh.Metadata{{1}, {1}, {1}} // wrong arity
	if _, err := Build(keys, metas, p); err == nil {
		t.Error("wrong metadata arity accepted")
	}
}

func TestSearchRecoversGroupMembers(t *testing.T) {
	const n, groups, tables = 64, 8, 4
	keys := testKeys(t, tables)
	p := Params{Tables: tables, Users: n}
	rng := rand.New(rand.NewSource(1))
	metas, assign := clusteredMetas(rng, n, groups, tables)
	idx, err := Build(keys, metas, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for q := 0; q < groups; q++ {
		td, err := NewTrapdoor(keys, metas[q], p)
		if err != nil {
			t.Fatal(err)
		}
		vectors, err := idx.Search(td)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := Candidates(keys, vectors, p)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			if assign[u] == assign[q] {
				if counts[u] != tables {
					t.Fatalf("group member %d count = %d, want %d", u, counts[u], tables)
				}
			} else if counts[u] != 0 {
				t.Fatalf("non-member %d count = %d, want 0", u, counts[u])
			}
		}
	}
}

func TestRankOrdersByOccurrence(t *testing.T) {
	// Three users: user 0 shares both tables with the query, user 1 one
	// table, user 2 none.
	const tables = 2
	keys := testKeys(t, tables)
	p := Params{Tables: tables, Users: 3}
	metas := []lsh.Metadata{
		{10, 20},
		{10, 99},
		{98, 97},
	}
	idx, err := Build(keys, metas, p)
	if err != nil {
		t.Fatal(err)
	}
	td, err := NewTrapdoor(keys, lsh.Metadata{10, 20}, p)
	if err != nil {
		t.Fatal(err)
	}
	vectors, err := idx.Search(td)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := Rank(keys, vectors, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked %v, want exactly users 0 and 1", ranked)
	}
	if ranked[0] != 0 || ranked[1] != 1 {
		t.Errorf("rank order %v, want [0 1]", ranked)
	}
	top1, err := Rank(keys, vectors, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || top1[0] != 0 {
		t.Errorf("top-1 = %v, want [0]", top1)
	}
}

func TestSearchMissingBucket(t *testing.T) {
	keys := testKeys(t, 2)
	p := Params{Tables: 2, Users: 2}
	metas := []lsh.Metadata{{1, 2}, {3, 4}}
	idx, err := Build(keys, metas, p)
	if err != nil {
		t.Fatal(err)
	}
	td, err := NewTrapdoor(keys, lsh.Metadata{999, 998}, p)
	if err != nil {
		t.Fatal(err)
	}
	vectors, err := idx.Search(td)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vectors {
		if v != nil {
			t.Error("missing bucket returned data")
		}
	}
	counts, err := Candidates(keys, vectors, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 0 {
		t.Errorf("candidates from missing buckets: %v", counts)
	}
}

func TestSearchMalformedTrapdoor(t *testing.T) {
	keys := testKeys(t, 2)
	p := Params{Tables: 2, Users: 2}
	idx, err := Build(keys, []lsh.Metadata{{1, 2}, {3, 4}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search(nil); err == nil {
		t.Error("nil trapdoor accepted")
	}
	if _, err := idx.Search(&Trapdoor{Tags: []uint64{1}}); err == nil {
		t.Error("short trapdoor accepted")
	}
}

func TestBucketsAreEncrypted(t *testing.T) {
	// Decrypting a bucket with the wrong key must fail authentication:
	// the cloud cannot read the bit-vectors.
	keys := testKeys(t, 2)
	other := testKeys(t, 2)
	other.KS = other.KR // any different key
	p := Params{Tables: 2, Users: 4}
	metas := []lsh.Metadata{{1, 2}, {1, 2}, {3, 4}, {3, 4}}
	idx, err := Build(keys, metas, p)
	if err != nil {
		t.Fatal(err)
	}
	td, _ := NewTrapdoor(keys, metas[0], p)
	vectors, _ := idx.Search(td)
	if _, err := Rank(other, vectors, p, 5); err == nil {
		t.Error("wrong key decrypted bucket vectors")
	}
}

func TestSizeAccounting(t *testing.T) {
	const n = 128
	keys := testKeys(t, 4)
	p := Params{Tables: 4, Users: n}
	rng := rand.New(rand.NewSource(2))
	metas, _ := clusteredMetas(rng, n, 16, 4)
	idx, err := Build(keys, metas, p)
	if err != nil {
		t.Fatal(err)
	}
	measured := idx.MeasuredSizeBytes()
	// 4 tables x 16 groups x (8-byte tag + 16-byte vector + overhead).
	want := 4 * 16 * (8 + n/8 + crypt.Overhead)
	if measured != want {
		t.Errorf("MeasuredSizeBytes = %d, want %d", measured, want)
	}
	// Closed forms reproduce the paper's headline numbers:
	// 1M users, l=10 → ~1.13 TB index, ~1220 KB query after removing the
	// constant encryption overhead.
	tb := PaddedSizeBytes(1_000_000, 10) / (1 << 40)
	if tb < 1.0 || tb > 1.3 {
		t.Errorf("padded size at 1M users = %.2f TB, want ~1.14", tb)
	}
	kb := QueryBandwidthBytes(1_000_000, 10) / 1024
	if kb < 1200 || kb > 1250 {
		t.Errorf("query bandwidth at 1M users = %.0f KB, want ~1221", kb)
	}
}

func TestTrapdoorSize(t *testing.T) {
	keys := testKeys(t, 3)
	p := Params{Tables: 3, Users: 2}
	td, err := NewTrapdoor(keys, lsh.Metadata{1, 2, 3}, p)
	if err != nil {
		t.Fatal(err)
	}
	if td.SizeBytes() != 24 {
		t.Errorf("SizeBytes = %d, want 24", td.SizeBytes())
	}
}
