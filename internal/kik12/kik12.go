// Package kik12 implements the comparison baseline the paper evaluates
// against (denoted KIK12): the secure LSH index of Kuzu, Islam and
// Kantarcioglu, "Efficient similarity search over encrypted data",
// ICDE 2012, as characterized in Sec. III-B and V-C of the PISD paper.
//
// Structure: one hash table per LSH function. Every distinct LSH bucket
// stores an n-bit binary vector marking which of the n users fall into that
// bucket; each vector is symmetrically encrypted, and bucket tags are PRF
// values of the LSH outputs. A query sends l tags and retrieves l encrypted
// n-bit vectors (bandwidth l·n/8), and candidates are ranked by their
// occurrence count across the returned vectors ("score-based ranking").
//
// The design's padded index size is l·n buckets of n bits — the O(n²)
// growth of Fig. 4(a); this package reports both the measured footprint of
// the materialized buckets and the paper's closed-form padded size.
package kik12

import (
	"fmt"
	"sort"

	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

// Params configures the baseline index.
type Params struct {
	// Tables is l, the number of LSH hash tables.
	Tables int
	// Users is n; every bucket vector carries one bit per user.
	Users int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.Tables < 1:
		return fmt.Errorf("kik12: tables must be >= 1, got %d", p.Tables)
	case p.Users < 1:
		return fmt.Errorf("kik12: users must be >= 1, got %d", p.Users)
	}
	return nil
}

// vectorBytes returns ⌈n/8⌉, the plaintext size of one bucket bit-vector.
func (p Params) vectorBytes() int { return (p.Users + 7) / 8 }

// Index is the cloud-resident baseline index: per table, a map from PRF
// tags to encrypted bucket bit-vectors.
type Index struct {
	params Params
	tables []map[uint64][]byte
}

// Trapdoor is a baseline query: one PRF tag per table.
type Trapdoor struct {
	Tags []uint64
}

// SizeBytes returns the wire size of the trapdoor (8 bytes per tag).
func (t *Trapdoor) SizeBytes() int { return 8 * len(t.Tags) }

// Build constructs the baseline index over users 0..n-1 with the given
// per-user metadata (metas[i][j] is user i's LSH value in table j).
func Build(keys *crypt.KeySet, metas []lsh.Metadata, p Params) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if keys == nil || keys.NumTables() < p.Tables {
		return nil, fmt.Errorf("kik12: key set missing table keys")
	}
	if len(metas) != p.Users {
		return nil, fmt.Errorf("kik12: %d metadata entries for %d users", len(metas), p.Users)
	}
	idx := &Index{params: p, tables: make([]map[uint64][]byte, p.Tables)}
	vb := p.vectorBytes()
	for j := 0; j < p.Tables; j++ {
		groups := make(map[uint64][]int)
		for i, m := range metas {
			if len(m) != p.Tables {
				return nil, fmt.Errorf("kik12: user %d metadata has %d tables, want %d", i, len(m), p.Tables)
			}
			groups[m[j]] = append(groups[m[j]], i)
		}
		idx.tables[j] = make(map[uint64][]byte, len(groups))
		for lshVal, users := range groups {
			bits := make([]byte, vb)
			for _, u := range users {
				bits[u/8] |= 1 << (u % 8)
			}
			ct, err := crypt.Enc(keys.KS, bits)
			if err != nil {
				return nil, fmt.Errorf("kik12: encrypt bucket: %w", err)
			}
			tag := crypt.Pos(keys.Table[j], lsh.Metadata{lshVal}.Bytes(0))
			idx.tables[j][tag] = ct
		}
	}
	return idx, nil
}

// NewTrapdoor derives the l PRF tags for a query metadata vector.
func NewTrapdoor(keys *crypt.KeySet, meta lsh.Metadata, p Params) (*Trapdoor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if keys == nil || keys.NumTables() < p.Tables {
		return nil, fmt.Errorf("kik12: key set missing table keys")
	}
	if len(meta) != p.Tables {
		return nil, fmt.Errorf("kik12: metadata has %d tables, want %d", len(meta), p.Tables)
	}
	t := &Trapdoor{Tags: make([]uint64, p.Tables)}
	for j := 0; j < p.Tables; j++ {
		t.Tags[j] = crypt.Pos(keys.Table[j], lsh.Metadata{meta[j]}.Bytes(0))
	}
	return t, nil
}

// Search returns the l encrypted bucket vectors addressed by the trapdoor;
// a nil entry means the bucket does not exist (the real system would return
// padding of the same size — bandwidth accounting below always charges the
// full vector).
func (x *Index) Search(t *Trapdoor) ([][]byte, error) {
	if t == nil || len(t.Tags) != x.params.Tables {
		return nil, fmt.Errorf("kik12: malformed trapdoor")
	}
	out := make([][]byte, x.params.Tables)
	for j, tag := range t.Tags {
		out[j] = x.tables[j][tag]
	}
	return out, nil
}

// Rank decrypts the returned vectors and ranks users by their occurrence
// count across tables (highest first; ties broken by user id). It returns
// at most k user indices — the baseline's "score-based ranking".
func Rank(keys *crypt.KeySet, vectors [][]byte, p Params, k int) ([]int, error) {
	counts := make(map[int]int)
	for _, ct := range vectors {
		if ct == nil {
			continue
		}
		bits, err := crypt.Dec(keys.KS, ct)
		if err != nil {
			return nil, fmt.Errorf("kik12: decrypt bucket: %w", err)
		}
		for u := 0; u < p.Users; u++ {
			if bits[u/8]&(1<<(u%8)) != 0 {
				counts[u]++
			}
		}
	}
	users := make([]int, 0, len(counts))
	for u := range counts {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool {
		if counts[users[a]] != counts[users[b]] {
			return counts[users[a]] > counts[users[b]]
		}
		return users[a] < users[b]
	})
	if k > 0 && len(users) > k {
		users = users[:k]
	}
	return users, nil
}

// Candidates decrypts the returned vectors and reports every user present
// in at least one bucket, with its occurrence count.
func Candidates(keys *crypt.KeySet, vectors [][]byte, p Params) (map[int]int, error) {
	counts := make(map[int]int)
	for _, ct := range vectors {
		if ct == nil {
			continue
		}
		bits, err := crypt.Dec(keys.KS, ct)
		if err != nil {
			return nil, fmt.Errorf("kik12: decrypt bucket: %w", err)
		}
		for u := 0; u < p.Users; u++ {
			if bits[u/8]&(1<<(u%8)) != 0 {
				counts[u]++
			}
		}
	}
	return counts, nil
}

// MeasuredSizeBytes returns the actual footprint of materialized buckets
// (tags plus ciphertexts).
func (x *Index) MeasuredSizeBytes() int {
	total := 0
	for _, tbl := range x.tables {
		for _, ct := range tbl {
			total += 8 + len(ct)
		}
	}
	return total
}

// PaddedSizeBytes returns the paper's closed-form padded index size:
// l·n buckets of n bits each, i.e. about l·n²/8 bytes.
func PaddedSizeBytes(users, tables int) float64 {
	return float64(tables) * float64(users) * float64(users) / 8
}

// QueryBandwidthBytes returns the per-query bandwidth: l tags plus l
// encrypted n-bit vectors, i.e. the paper's l·n/8 bytes (+ constant
// encryption overhead).
func QueryBandwidthBytes(users, tables int) float64 {
	perVector := float64((users+7)/8 + crypt.Overhead)
	return float64(tables)*8 + float64(tables)*perVector
}

// Params returns the index parameters.
func (x *Index) Params() Params { return x.params }
