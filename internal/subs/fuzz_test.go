package subs

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSubscriptionPayload fuzzes the subscription wire codec. The seed
// corpus is a real session — a registration and the notifications a live
// manager emitted under churn — plus truncated and bit-flipped variants
// of each frame. The invariants:
//
//   - Decode never panics and never reads past the declared frame.
//   - Every rejection is one of the typed codec errors.
//   - Every accepted frame re-encodes to the exact bytes it was decoded
//     from (the codec is canonical), and the decode consumed the whole
//     re-encoding.
func FuzzSubscriptionPayload(f *testing.F) {
	for _, frame := range sessionFrames(f) {
		f.Add(frame)
		f.Add(frame[:len(frame)/2])
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
		// Two frames back to back: the decoder must stop at the boundary.
		f.Add(append(append([]byte(nil), frame...), frame...))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
				!errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrBadFrameType) &&
				!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadPayload) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		var re []byte
		switch {
		case fr.Registration != nil:
			re, err = EncodeRegistration(*fr.Registration)
			if err != nil {
				t.Fatalf("accepted frame does not re-encode: %v", err)
			}
		case fr.Notification != nil:
			re = EncodeNotification(*fr.Notification)
		default:
			t.Fatal("decode returned an empty frame without error")
		}
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("decoded frame is not canonical:\n got %x\nwant %x", re, data[:n])
		}
	})
}
