package subs

import (
	"pisd/internal/obs"
)

// smet is the subscription tier's metric surface (names under "subs.").
// The eval histogram times one hook evaluation — insert match, delete
// eviction or re-score pass — so a snapshot yields subs.eval_p50_ns /
// subs.eval_p99_ns, the notification-latency figures EXPERIMENTS.md
// tracks. All handles are nil-safe; SetRegistry(nil) is the disabled
// mode.
var smet struct {
	registered    *obs.Gauge     // live subscriptions
	notifications *obs.Counter   // notifications emitted
	evals         *obs.Counter   // subscription evaluations performed
	evalNs        *obs.Histogram // one hook evaluation, end to end
}

func init() { SetRegistry(obs.Default) }

// SetRegistry points the subscription metrics at r (nil disables them).
// Intended for process setup and test isolation; not safe to call
// concurrently with in-flight evaluations.
func SetRegistry(r *obs.Registry) {
	if r == nil {
		smet.registered, smet.notifications, smet.evals, smet.evalNs = nil, nil, nil, nil
		return
	}
	smet.registered = r.Gauge("subs.registered")
	smet.notifications = r.Counter("subs.notifications")
	smet.evals = r.Counter("subs.evals")
	smet.evalNs = r.Histogram("subs.eval")
}
