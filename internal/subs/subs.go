// Package subs implements streaming discovery subscriptions: standing
// top-k queries evaluated incrementally on the dynamic update path.
//
// A subscription is a subscriber's target profile plus a bounded standing
// result — the k nearest live profiles the subscriber has been told about.
// The Manager holds every subscription frontend-side (the same trust
// domain as the keys: targets and distances are plaintext here and only
// here) and is driven by the serving path's mutation hooks:
//
//   - On insert, the newly added profile is matched against subscriptions
//     by the address-collision predicate: the insert's own dedup'd bucket
//     write set Refs(newMeta) intersects the subscription's standing read
//     set Refs(subMeta) on the owning shard. Both sets are pure PRF
//     functions of metadata the frontend already holds, so evaluation
//     issues ZERO additional cloud operations — the cloud sees exactly
//     the update it would see with no subscriptions registered
//     (DESIGN.md §18).
//   - On delete, the departed profile is evicted from every standing
//     result that held it and the best remaining candidate is promoted,
//     which is that candidate's first disclosure to the subscriber.
//
// Ordering inside a standing result is by (distance, id) — ascending
// distance, ascending id on exact ties — which makes every transition,
// including the evicted and promoted identifiers, deterministic and
// therefore exactly mirrorable by a plaintext oracle.
package subs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pisd/internal/vec"
)

// Ref identifies one dynamic-index bucket on one shard. Subscriptions and
// inserts are matched per shard: each shard's index has its own geometry,
// so a bucket reference is only meaningful alongside its shard.
type Ref struct {
	Shard int
	Table int
	Pos   uint64
}

// Entry is one member of a subscription's standing top-k result.
type Entry struct {
	ID       uint64
	Distance float64
}

// Notification reports one disclosure: ID entered SubID's standing top-k.
type Notification struct {
	// SubID is the subscriber whose standing result changed.
	SubID uint64
	// ID is the profile that entered the standing top-k.
	ID uint64
	// Distance is the exact Euclidean distance between the subscriber's
	// target and the entering profile.
	Distance float64
	// EvictedID is the profile the entry pushed out of the standing
	// top-k (0 when the result had a free slot).
	EvictedID uint64
	// Promoted is true when the entry was caused by a deletion promoting
	// a runner-up, rather than by the entering profile's own insert.
	Promoted bool
	// Seq is the manager's emission sequence number, strictly increasing
	// across all subscriptions (stream ordering, not compared by the
	// differential suites).
	Seq uint64
}

// subscription is one standing query's frontend-side state: the full live
// candidate set (every matched, not-yet-deleted profile with its exact
// distance) and the current top-k view over it. Keeping all candidates —
// not just the top k — is what makes delete-time promotion exact.
type subscription struct {
	id      uint64
	k       int
	exclude uint64
	target  []float64
	refs    []Ref
	cands   map[uint64]float64
	top     map[uint64]bool
}

// topSet selects the k smallest candidates by (distance, id).
func (s *subscription) topSet() map[uint64]bool {
	ids := make([]uint64, 0, len(s.cands))
	for id := range s.cands {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := s.cands[ids[a]], s.cands[ids[b]]
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})
	if len(ids) > s.k {
		ids = ids[:s.k]
	}
	top := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		top[id] = true
	}
	return top
}

// entries returns the current standing result, ascending by (distance, id).
func (s *subscription) entries() []Entry {
	out := make([]Entry, 0, len(s.top))
	for id := range s.top {
		out = append(out, Entry{ID: id, Distance: s.cands[id]})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Manager holds every registered subscription and evaluates them against
// the mutation stream. Safe for concurrent use; the emit callback runs
// synchronously under the manager lock, in Seq order.
type Manager struct {
	mu    sync.Mutex
	subs  map[uint64]*subscription
	byRef map[Ref]map[*subscription]struct{}
	emit  func(Notification)
	seq   uint64
}

// NewManager returns an empty manager delivering notifications through
// emit (nil drops them).
func NewManager(emit func(Notification)) *Manager {
	return &Manager{
		subs:  make(map[uint64]*subscription),
		byRef: make(map[Ref]map[*subscription]struct{}),
		emit:  emit,
	}
}

// Register adds a standing query: target is the subscriber's plaintext
// profile, refs its per-shard standing read set, and seed the candidate
// distances of a fresh search (the registration answer the subscriber
// already received — seeding emits no notifications). excludeID is
// filtered from candidates, matching the discovery path's self-exclusion.
func (m *Manager) Register(subID uint64, k int, target []float64, excludeID uint64, refs []Ref, seed map[uint64]float64) ([]Entry, error) {
	if subID == 0 {
		return nil, fmt.Errorf("subs: subscription id must be non-zero")
	}
	if k <= 0 {
		return nil, fmt.Errorf("subs: subscription %d: k must be positive, got %d", subID, k)
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("subs: subscription %d: empty reference set", subID)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.subs[subID]; ok {
		return nil, fmt.Errorf("subs: subscription %d already registered", subID)
	}
	s := &subscription{
		id:      subID,
		k:       k,
		exclude: excludeID,
		target:  append([]float64(nil), target...),
		refs:    dedupRefs(refs),
		cands:   make(map[uint64]float64, len(seed)),
	}
	for id, d := range seed {
		if excludeID != 0 && id == excludeID {
			continue
		}
		s.cands[id] = d
	}
	s.top = s.topSet()
	m.subs[subID] = s
	for _, r := range s.refs {
		set := m.byRef[r]
		if set == nil {
			set = make(map[*subscription]struct{})
			m.byRef[r] = set
		}
		set[s] = struct{}{}
	}
	smet.registered.Set(int64(len(m.subs)))
	return s.entries(), nil
}

// Unsubscribe removes a standing query, reporting whether it existed.
func (m *Manager) Unsubscribe(subID uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[subID]
	if !ok {
		return false
	}
	delete(m.subs, subID)
	for _, r := range s.refs {
		if set := m.byRef[r]; set != nil {
			delete(set, s)
			if len(set) == 0 {
				delete(m.byRef, r)
			}
		}
	}
	smet.registered.Set(int64(len(m.subs)))
	return true
}

// Len returns the number of live subscriptions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.subs)
}

// TopK returns subID's current standing result, ascending by
// (distance, id), and whether the subscription exists.
func (m *Manager) TopK(subID uint64) ([]Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.subs[subID]
	if !ok {
		return nil, false
	}
	return s.entries(), true
}

// OnInsert evaluates one successful insert against every subscription
// whose standing read set intersects the insert's bucket write set,
// emitting a notification for each standing result the new profile
// enters. refs must be the insert's own (owning-shard) reference set and
// profile its plaintext; the evaluation is pure frontend computation.
// Returns the number of notifications emitted.
func (m *Manager) OnInsert(id uint64, profile []float64, refs []Ref) int {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	matched := make(map[*subscription]struct{})
	for _, r := range refs {
		for s := range m.byRef[r] {
			matched[s] = struct{}{}
		}
	}
	emitted := 0
	for _, s := range sortedSubs(matched) {
		if id == s.id || (s.exclude != 0 && id == s.exclude) {
			continue
		}
		if _, ok := s.cands[id]; ok {
			continue
		}
		s.cands[id] = vec.Distance(s.target, profile)
		emitted += m.retop(s, false)
	}
	smet.evals.Add(int64(len(matched)))
	smet.evalNs.ObserveSince(start)
	return emitted
}

// OnDelete evicts one successfully deleted profile from every standing
// candidate set that held it, re-ranks, and emits a notification for each
// runner-up the eviction promotes into a standing top-k (that candidate's
// first disclosure). Returns the number of notifications emitted.
func (m *Manager) OnDelete(id uint64) int {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	emitted, evals := 0, 0
	for _, s := range sortedAll(m.subs) {
		if _, ok := s.cands[id]; !ok {
			continue
		}
		evals++
		delete(s.cands, id)
		delete(s.top, id)
		emitted += m.retop(s, true)
	}
	smet.evals.Add(int64(evals))
	smet.evalNs.ObserveSince(start)
	return emitted
}

// CandidateIDs returns the union of every subscription's live candidate
// identifiers, ascending — the id set a re-score pass must fetch.
func (m *Manager) CandidateIDs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	set := make(map[uint64]struct{})
	for _, s := range m.subs {
		for id := range s.cands {
			set[id] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Rescore replaces every candidate's distance with one recomputed from
// the authoritative profiles (keyed by candidate id; a candidate missing
// from the map is dropped as deleted) and re-ranks every standing result,
// emitting notifications for any entries the corrections cause. It is the
// apply step of the batched re-score fan-out: the caller fetched profiles
// from the replicated cloud tier in per-shard batches. Returns the number
// of candidates whose distance or membership changed.
func (m *Manager) Rescore(profiles map[uint64][]float64) int {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := 0
	for _, s := range sortedAll(m.subs) {
		dirty := false
		for id, old := range s.cands {
			p, ok := profiles[id]
			if !ok {
				delete(s.cands, id)
				delete(s.top, id)
				changed++
				dirty = true
				continue
			}
			if d := vec.Distance(s.target, p); d != old {
				s.cands[id] = d
				changed++
				dirty = true
			}
		}
		if dirty {
			m.retop(s, true)
		}
		smet.evals.Inc()
	}
	smet.evalNs.ObserveSince(start)
	return changed
}

// retop recomputes s's standing top-k and emits a notification for every
// new member, in (distance, id) order. Callers hold m.mu.
func (m *Manager) retop(s *subscription, promoted bool) int {
	next := s.topSet()
	var entered []uint64
	for id := range next {
		if !s.top[id] {
			entered = append(entered, id)
		}
	}
	var evicted []uint64
	for id := range s.top {
		if !next[id] {
			evicted = append(evicted, id)
		}
	}
	s.top = next
	if len(entered) == 0 {
		return 0
	}
	sort.Slice(entered, func(a, b int) bool {
		da, db := s.cands[entered[a]], s.cands[entered[b]]
		if da != db {
			return da < db
		}
		return entered[a] < entered[b]
	})
	sort.Slice(evicted, func(a, b int) bool { return evicted[a] < evicted[b] })
	for i, id := range entered {
		n := Notification{
			SubID:    s.id,
			ID:       id,
			Distance: s.cands[id],
			Promoted: promoted,
		}
		// Pair entries with evictions positionally; a promotion caused by
		// a delete has no eviction of its own.
		if i < len(evicted) {
			n.EvictedID = evicted[i]
		}
		m.seq++
		n.Seq = m.seq
		smet.notifications.Inc()
		if m.emit != nil {
			m.emit(n)
		}
	}
	return len(entered)
}

// dedupRefs drops duplicate references, preserving first-seen order.
func dedupRefs(refs []Ref) []Ref {
	seen := make(map[Ref]struct{}, len(refs))
	out := make([]Ref, 0, len(refs))
	for _, r := range refs {
		if _, ok := seen[r]; ok {
			continue
		}
		seen[r] = struct{}{}
		out = append(out, r)
	}
	return out
}

// sortedSubs orders a matched set by subscription id so emission order is
// deterministic for a given mutation.
func sortedSubs(set map[*subscription]struct{}) []*subscription {
	out := make([]*subscription, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

func sortedAll(subs map[uint64]*subscription) []*subscription {
	out := make([]*subscription, 0, len(subs))
	for _, s := range subs {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}
