package subs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Wire codec for the subscription session: the registration payload a
// client hands the frontend and the notification frames the frontend
// streams back. Frames are fixed-layout binary with an integrity
// checksum, so a truncated or bit-flipped frame is rejected with a typed
// error instead of being half-decoded:
//
//	magic(4) | version(1) | type(1) | payload_len(4) | payload | crc32(4)
//
// The checksum covers header and payload. Registration payloads carry the
// subscriber's plaintext profile: they are for the client ↔ frontend
// channel only (the same trust relationship as profile upload in the
// paper) and must never be sent to the cloud tier.

// Typed decode errors. Decode wraps each with frame context; match with
// errors.Is.
var (
	// ErrTruncated reports a frame cut short of its declared length.
	ErrTruncated = errors.New("subs: truncated frame")
	// ErrBadMagic reports bytes that are not a subscription frame.
	ErrBadMagic = errors.New("subs: bad frame magic")
	// ErrBadVersion reports an unsupported codec version.
	ErrBadVersion = errors.New("subs: unsupported frame version")
	// ErrBadFrameType reports an unknown frame type byte.
	ErrBadFrameType = errors.New("subs: unknown frame type")
	// ErrChecksum reports a frame whose checksum does not match its
	// bytes — corruption or a bit flip in transit.
	ErrChecksum = errors.New("subs: frame checksum mismatch")
	// ErrBadPayload reports a well-framed payload with invalid contents.
	ErrBadPayload = errors.New("subs: invalid frame payload")
)

const (
	frameMagic   = 0x50535542 // "PSUB"
	codecVersion = 1

	frameRegistration = 1
	frameNotification = 2

	headerSize   = 4 + 1 + 1 + 4
	checksumSize = 4

	// maxProfileDim bounds a registration's profile dimension; a corrupt
	// length field fails fast instead of allocating gigabytes.
	maxProfileDim = 1 << 20

	registrationFixed = 8 + 4 + 8 + 4 // subID, k, excludeID, dim
	notificationSize  = 8 + 8 + 8 + 8 + 8 + 1
)

// Registration is the client → frontend standing-query request.
type Registration struct {
	SubID     uint64
	K         int
	ExcludeID uint64
	Profile   []float64
}

// Frame is one decoded wire frame: exactly one field is non-nil.
type Frame struct {
	Registration *Registration
	Notification *Notification
}

// AppendRegistration appends r's encoded frame to dst.
func AppendRegistration(dst []byte, r Registration) ([]byte, error) {
	if r.K <= 0 || uint64(r.K) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: k %d out of range", ErrBadPayload, r.K)
	}
	if len(r.Profile) == 0 || len(r.Profile) > maxProfileDim {
		return nil, fmt.Errorf("%w: profile dimension %d out of range", ErrBadPayload, len(r.Profile))
	}
	payload := registrationFixed + 8*len(r.Profile)
	dst = appendHeader(dst, frameRegistration, payload)
	dst = binary.BigEndian.AppendUint64(dst, r.SubID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.K))
	dst = binary.BigEndian.AppendUint64(dst, r.ExcludeID)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Profile)))
	for _, v := range r.Profile {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return appendChecksum(dst, headerSize+payload), nil
}

// AppendNotification appends n's encoded frame to dst.
func AppendNotification(dst []byte, n Notification) []byte {
	dst = appendHeader(dst, frameNotification, notificationSize)
	dst = binary.BigEndian.AppendUint64(dst, n.Seq)
	dst = binary.BigEndian.AppendUint64(dst, n.SubID)
	dst = binary.BigEndian.AppendUint64(dst, n.ID)
	dst = binary.BigEndian.AppendUint64(dst, n.EvictedID)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(n.Distance))
	if n.Promoted {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	return appendChecksum(dst, headerSize+notificationSize)
}

// EncodeRegistration encodes one registration frame.
func EncodeRegistration(r Registration) ([]byte, error) {
	return AppendRegistration(nil, r)
}

// EncodeNotification encodes one notification frame.
func EncodeNotification(n Notification) []byte {
	return AppendNotification(nil, n)
}

// Decode decodes the first frame in data, returning it and the number of
// bytes it consumed, so a byte stream decodes by repeated calls. Errors
// are typed: ErrTruncated, ErrBadMagic, ErrBadVersion, ErrBadFrameType,
// ErrChecksum, ErrBadPayload.
func Decode(data []byte) (Frame, int, error) {
	if len(data) < headerSize {
		return Frame{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(data), headerSize)
	}
	if binary.BigEndian.Uint32(data) != frameMagic {
		return Frame{}, 0, ErrBadMagic
	}
	if data[4] != codecVersion {
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadVersion, data[4])
	}
	kind := data[5]
	payload := int(binary.BigEndian.Uint32(data[6:]))
	if payload < 0 || payload > registrationFixed+8*maxProfileDim {
		return Frame{}, 0, fmt.Errorf("%w: declared payload %d bytes", ErrBadPayload, payload)
	}
	total := headerSize + payload + checksumSize
	if len(data) < total {
		return Frame{}, 0, fmt.Errorf("%w: %d bytes of %d", ErrTruncated, len(data), total)
	}
	sum := binary.BigEndian.Uint32(data[headerSize+payload:])
	if crc32.ChecksumIEEE(data[:headerSize+payload]) != sum {
		return Frame{}, 0, ErrChecksum
	}
	body := data[headerSize : headerSize+payload]
	switch kind {
	case frameRegistration:
		r, err := decodeRegistration(body)
		if err != nil {
			return Frame{}, 0, err
		}
		return Frame{Registration: r}, total, nil
	case frameNotification:
		n, err := decodeNotification(body)
		if err != nil {
			return Frame{}, 0, err
		}
		return Frame{Notification: n}, total, nil
	default:
		return Frame{}, 0, fmt.Errorf("%w: %d", ErrBadFrameType, kind)
	}
}

func decodeRegistration(body []byte) (*Registration, error) {
	if len(body) < registrationFixed {
		return nil, fmt.Errorf("%w: registration body %d bytes", ErrBadPayload, len(body))
	}
	r := &Registration{
		SubID:     binary.BigEndian.Uint64(body),
		K:         int(binary.BigEndian.Uint32(body[8:])),
		ExcludeID: binary.BigEndian.Uint64(body[12:]),
	}
	dim := int(binary.BigEndian.Uint32(body[20:]))
	if r.SubID == 0 {
		return nil, fmt.Errorf("%w: zero subscription id", ErrBadPayload)
	}
	if r.K <= 0 {
		return nil, fmt.Errorf("%w: k %d", ErrBadPayload, r.K)
	}
	if dim == 0 || dim > maxProfileDim || len(body) != registrationFixed+8*dim {
		return nil, fmt.Errorf("%w: profile dimension %d with %d body bytes", ErrBadPayload, dim, len(body))
	}
	r.Profile = make([]float64, dim)
	for i := range r.Profile {
		v := math.Float64frombits(binary.BigEndian.Uint64(body[registrationFixed+8*i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite profile coordinate %d", ErrBadPayload, i)
		}
		r.Profile[i] = v
	}
	return r, nil
}

func decodeNotification(body []byte) (*Notification, error) {
	if len(body) != notificationSize {
		return nil, fmt.Errorf("%w: notification body %d bytes, want %d", ErrBadPayload, len(body), notificationSize)
	}
	n := &Notification{
		Seq:       binary.BigEndian.Uint64(body),
		SubID:     binary.BigEndian.Uint64(body[8:]),
		ID:        binary.BigEndian.Uint64(body[16:]),
		EvictedID: binary.BigEndian.Uint64(body[24:]),
		Distance:  math.Float64frombits(binary.BigEndian.Uint64(body[32:])),
	}
	switch body[40] {
	case 0:
	case 1:
		n.Promoted = true
	default:
		return nil, fmt.Errorf("%w: promoted flag %d", ErrBadPayload, body[40])
	}
	if n.SubID == 0 || n.ID == 0 {
		return nil, fmt.Errorf("%w: zero identifier in notification", ErrBadPayload)
	}
	if math.IsNaN(n.Distance) || math.IsInf(n.Distance, 0) || n.Distance < 0 {
		return nil, fmt.Errorf("%w: invalid notification distance", ErrBadPayload)
	}
	return n, nil
}

func appendHeader(dst []byte, kind byte, payload int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, frameMagic)
	dst = append(dst, codecVersion, kind)
	return binary.BigEndian.AppendUint32(dst, uint32(payload))
}

// appendChecksum appends the crc32 of the frame's last frameLen bytes.
func appendChecksum(dst []byte, frameLen int) []byte {
	start := len(dst) - frameLen
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
}
