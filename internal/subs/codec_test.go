package subs

import (
	"bytes"
	"errors"
	"testing"
)

func sessionFrames(t testing.TB) [][]byte {
	// A real subscription session: register a standing query against a
	// live manager, drive churn through it, and encode the registration
	// plus every notification the session emitted.
	var notes []Notification
	m := NewManager(func(n Notification) { notes = append(notes, n) })
	reg := Registration{
		SubID:     7,
		K:         2,
		ExcludeID: 7,
		Profile:   []float64{0.125, -0.5, 0.75, 0.0625},
	}
	if _, err := m.Register(reg.SubID, reg.K, reg.Profile, reg.ExcludeID,
		refsFor(10, 11), map[uint64]float64{3: 1.5}); err != nil {
		t.Fatal(err)
	}
	m.OnInsert(21, []float64{0.25, -0.5, 0.75, 0}, refsFor(11))
	m.OnInsert(22, []float64{1, 1, 1, 1}, refsFor(10))
	m.OnDelete(3)
	if len(notes) < 2 {
		t.Fatalf("session emitted %d notifications, want >= 2", len(notes))
	}
	frames := make([][]byte, 0, 1+len(notes))
	enc, err := EncodeRegistration(reg)
	if err != nil {
		t.Fatal(err)
	}
	frames = append(frames, enc)
	for _, n := range notes {
		frames = append(frames, EncodeNotification(n))
	}
	return frames
}

func TestCodecRoundTrip(t *testing.T) {
	frames := sessionFrames(t)
	var stream []byte
	for _, f := range frames {
		stream = append(stream, f...)
	}
	// The concatenated session decodes frame by frame, each re-encoding
	// byte-identically.
	off := 0
	for i, want := range frames {
		fr, n, err := Decode(stream[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != len(want) {
			t.Fatalf("frame %d consumed %d bytes, want %d", i, n, len(want))
		}
		var re []byte
		switch {
		case fr.Registration != nil:
			re, err = EncodeRegistration(*fr.Registration)
			if err != nil {
				t.Fatalf("frame %d re-encode: %v", i, err)
			}
		case fr.Notification != nil:
			re = EncodeNotification(*fr.Notification)
		default:
			t.Fatalf("frame %d decoded to nothing", i)
		}
		if !bytes.Equal(re, want) {
			t.Fatalf("frame %d did not round-trip", i)
		}
		off += n
	}
	if off != len(stream) {
		t.Fatalf("stream left %d undecoded bytes", len(stream)-off)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, frame := range sessionFrames(t) {
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := Decode(frame[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d/%d: err = %v, want ErrTruncated", cut, len(frame), err)
			}
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	for fi, frame := range sessionFrames(t) {
		for i := range frame {
			for bit := 0; bit < 8; bit++ {
				flipped := append([]byte(nil), frame...)
				flipped[i] ^= 1 << bit
				_, _, err := Decode(flipped)
				if err == nil {
					t.Fatalf("frame %d: flip byte %d bit %d accepted", fi, i, bit)
				}
				if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) &&
					!errors.Is(err, ErrBadVersion) && !errors.Is(err, ErrBadFrameType) &&
					!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadPayload) {
					t.Fatalf("frame %d: flip byte %d bit %d: untyped error %v", fi, i, bit, err)
				}
			}
		}
	}
}

func TestDecodeRejectsBadPayloads(t *testing.T) {
	if _, err := EncodeRegistration(Registration{SubID: 1, K: 0, Profile: []float64{1}}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("zero k encoded: %v", err)
	}
	if _, err := EncodeRegistration(Registration{SubID: 1, K: 1}); !errors.Is(err, ErrBadPayload) {
		t.Fatalf("empty profile encoded: %v", err)
	}
	if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("nil input: %v", err)
	}
	if _, _, err := Decode(bytes.Repeat([]byte{0}, 64)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("zero input: %v", err)
	}
}
