package subs

import (
	"math"
	"testing"
)

func collect(dst *[]Notification) func(Notification) {
	return func(n Notification) { *dst = append(*dst, n) }
}

// refsFor gives distinct single-bucket reference sets per "user" so tests
// can steer which inserts match which subscriptions.
func refsFor(ids ...uint64) []Ref {
	out := make([]Ref, 0, len(ids))
	for _, id := range ids {
		out = append(out, Ref{Shard: 0, Table: int(id % 3), Pos: id})
	}
	return out
}

func target(v float64) []float64 { return []float64{v, 0} }

func profileAt(v float64) []float64 { return []float64{v, 0} }

func TestRegisterSeedsWithoutNotifying(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	top, err := m.Register(1, 2, target(0), 1, refsFor(10, 11),
		map[uint64]float64{5: 4, 6: 1, 7: 9, 1: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("registration emitted %d notifications", len(got))
	}
	if len(top) != 2 || top[0].ID != 6 || top[1].ID != 5 {
		t.Fatalf("seed top-k = %v, want [6 5]", top)
	}
	// The subscriber's own id is excluded even when present in the seed.
	for _, e := range top {
		if e.ID == 1 {
			t.Fatal("excluded id seeded into standing result")
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestRegisterValidation(t *testing.T) {
	m := NewManager(nil)
	if _, err := m.Register(0, 1, target(0), 0, refsFor(1), nil); err == nil {
		t.Fatal("zero id accepted")
	}
	if _, err := m.Register(1, 0, target(0), 0, refsFor(1), nil); err == nil {
		t.Fatal("zero k accepted")
	}
	if _, err := m.Register(1, 1, target(0), 0, nil, nil); err == nil {
		t.Fatal("empty refs accepted")
	}
	if _, err := m.Register(1, 1, target(0), 0, refsFor(1), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(1, 1, target(0), 0, refsFor(1), nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestInsertMatchesByRefIntersection(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	if _, err := m.Register(1, 2, target(0), 1, refsFor(10, 11), nil); err != nil {
		t.Fatal(err)
	}
	// Disjoint write set: no match, no notification.
	if n := m.OnInsert(50, profileAt(1), refsFor(99)); n != 0 {
		t.Fatalf("disjoint insert emitted %d", n)
	}
	// Intersecting write set: enters the empty standing result.
	if n := m.OnInsert(51, profileAt(3), refsFor(11, 99)); n != 1 {
		t.Fatalf("matching insert emitted %d", n)
	}
	if len(got) != 1 || got[0].SubID != 1 || got[0].ID != 51 || got[0].EvictedID != 0 ||
		got[0].Promoted || got[0].Distance != 3 {
		t.Fatalf("notification = %+v", got[0])
	}
}

func TestInsertEvictsWorstOnFullTopK(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	if _, err := m.Register(1, 2, target(0), 1,
		refsFor(10), map[uint64]float64{5: 2, 6: 4}); err != nil {
		t.Fatal(err)
	}
	// Worse than the current k-th: silent.
	m.OnInsert(52, profileAt(5), refsFor(10))
	if len(got) != 0 {
		t.Fatalf("non-entering insert notified: %+v", got)
	}
	// Better: enters, evicting id 6 (distance 4).
	m.OnInsert(53, profileAt(1), refsFor(10))
	if len(got) != 1 || got[0].ID != 53 || got[0].EvictedID != 6 || got[0].Distance != 1 {
		t.Fatalf("notification = %+v", got)
	}
	top, _ := m.TopK(1)
	if len(top) != 2 || top[0].ID != 53 || top[1].ID != 5 {
		t.Fatalf("standing result = %v", top)
	}
}

func TestDeletePromotesRunnerUp(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	if _, err := m.Register(1, 2, target(0), 1,
		refsFor(10), map[uint64]float64{5: 2, 6: 4}); err != nil {
		t.Fatal(err)
	}
	m.OnInsert(54, profileAt(5), refsFor(10)) // runner-up at distance 5
	if len(got) != 0 {
		t.Fatal("runner-up notified on insert")
	}
	// Deleting a standing member promotes the runner-up: first disclosure.
	if n := m.OnDelete(5); n != 1 {
		t.Fatalf("delete emitted %d", n)
	}
	if len(got) != 1 || got[0].ID != 54 || !got[0].Promoted || got[0].EvictedID != 0 {
		t.Fatalf("promotion notification = %+v", got)
	}
	// Deleting a non-candidate is a no-op.
	if n := m.OnDelete(999); n != 0 {
		t.Fatalf("unknown delete emitted %d", n)
	}
	// Deleting below the standing result is silent.
	m.OnInsert(55, profileAt(9), refsFor(10))
	got = got[:0]
	if n := m.OnDelete(55); n != 0 {
		t.Fatalf("runner-up delete emitted %d", n)
	}
}

func TestTieBreakByID(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	if _, err := m.Register(1, 1, target(0), 1,
		refsFor(10), map[uint64]float64{7: 4}); err != nil {
		t.Fatal(err)
	}
	// Same distance, lower id: wins the tie, evicting 7.
	m.OnInsert(3, profileAt(4), refsFor(10))
	if len(got) != 1 || got[0].ID != 3 || got[0].EvictedID != 7 {
		t.Fatalf("tie notification = %+v", got)
	}
	// Same distance, higher id: loses the tie, silent.
	got = got[:0]
	m.OnInsert(9, profileAt(-4), refsFor(10))
	if len(got) != 0 {
		t.Fatalf("tie loser notified: %+v", got)
	}
}

func TestUnsubscribeStopsNotifications(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	if _, err := m.Register(1, 1, target(0), 1, refsFor(10), nil); err != nil {
		t.Fatal(err)
	}
	if !m.Unsubscribe(1) {
		t.Fatal("unsubscribe reported missing")
	}
	if m.Unsubscribe(1) {
		t.Fatal("double unsubscribe reported success")
	}
	if n := m.OnInsert(50, profileAt(1), refsFor(10)); n != 0 {
		t.Fatalf("insert after unsubscribe emitted %d", n)
	}
	if _, ok := m.TopK(1); ok {
		t.Fatal("TopK after unsubscribe")
	}
}

func TestRescoreDropsMissingAndFixesDrift(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	if _, err := m.Register(1, 1, target(0), 1,
		refsFor(10), map[uint64]float64{5: 4, 6: 16}); err != nil {
		t.Fatal(err)
	}
	ids := m.CandidateIDs()
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 6 {
		t.Fatalf("CandidateIDs = %v", ids)
	}
	// 5 vanished from the authoritative store; 6's profile moved closer.
	changed := m.Rescore(map[uint64][]float64{6: profileAt(1)})
	if changed != 2 {
		t.Fatalf("Rescore changed %d", changed)
	}
	if len(got) != 1 || got[0].ID != 6 || !got[0].Promoted || got[0].Distance != 1 {
		t.Fatalf("rescore notification = %+v", got)
	}
	// A faithful store is a fixed point.
	got = got[:0]
	if changed := m.Rescore(map[uint64][]float64{6: profileAt(1)}); changed != 0 {
		t.Fatalf("idempotent rescore changed %d", changed)
	}
	if len(got) != 0 {
		t.Fatalf("idempotent rescore notified: %+v", got)
	}
}

func TestSequenceNumbersStrictlyIncrease(t *testing.T) {
	var got []Notification
	m := NewManager(collect(&got))
	for _, sub := range []uint64{1, 2} {
		if _, err := m.Register(sub, 3, target(0), sub, refsFor(10), nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		m.OnInsert(100+i, profileAt(float64(i)), refsFor(10))
	}
	// Each subscription's standing result (k=3) fills from the first
	// three inserts; the rest are farther and stay silent.
	if len(got) != 6 {
		t.Fatalf("%d notifications, want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("sequence not increasing at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
}

func TestDistanceIsExact(t *testing.T) {
	m := NewManager(nil)
	tgt := []float64{0.25, -1.5, 3}
	p := []float64{1, 2, -0.5}
	if _, err := m.Register(1, 1, tgt, 1, refsFor(10), nil); err != nil {
		t.Fatal(err)
	}
	m.OnInsert(50, p, refsFor(10))
	top, _ := m.TopK(1)
	want := math.Sqrt(0.75*0.75 + 3.5*3.5 + 3.5*3.5)
	if len(top) != 1 || math.Abs(top[0].Distance-want) > 1e-12 {
		t.Fatalf("distance = %v, want %v", top, want)
	}
}
