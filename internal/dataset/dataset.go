// Package dataset generates the synthetic user-profile workloads that
// substitute for the paper's MIRFlickr-1M–derived population (DESIGN.md §5).
//
// The generator follows the structure the paper's pipeline induces: each
// user's image profile is a normalized Bag-of-Words histogram dominated by
// the visual words of the topics the user photographs. We model T topics as
// sparse non-negative "visual word" distributions over the m-dimensional
// vocabulary, assign each user a small topic mixture (their interests), and
// emit the L2-normalized noisy mixture as the profile. Users sharing topics
// therefore have nearby profiles — the property social discovery exploits —
// while profiles remain high-dimensional and noisy like real BoW vectors.
//
// The package scales to the paper's million-user population: generation is
// O(users · topic sparsity), not O(users · dim).
package dataset

import (
	"fmt"
	"math/rand"

	"pisd/internal/vec"
)

// Config parameterizes a synthetic population.
type Config struct {
	// Users is n, the population size.
	Users int
	// Dim is m, the vocabulary size (profile dimensionality).
	Dim int
	// Topics is the number of latent interest topics.
	Topics int
	// TopicsPerUser is how many topics each user mixes (>=1).
	TopicsPerUser int
	// ActiveWords is how many vocabulary words a topic activates.
	ActiveWords int
	// Noise is the per-entry Gaussian noise scale added before
	// normalization; it controls intra-topic spread.
	Noise float64
	// PersonalWeight scales a per-user idiosyncratic sparse component
	// mixed into every profile. Real BoW profiles are never pure topic
	// mixtures: each user's particular photos activate their own visual
	// words. Without this, users sharing topics are exact LSH duplicates
	// across all tables, which no real population exhibits.
	PersonalWeight float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig returns the configuration used by the experiments: a
// 1000-word vocabulary (the paper's vocabulary size) with 40 topics.
func DefaultConfig(users int) Config {
	return Config{
		Users:          users,
		Dim:            1000,
		Topics:         40,
		TopicsPerUser:  2,
		ActiveWords:    80,
		Noise:          0.02,
		PersonalWeight: 0.6,
		Seed:           1,
	}
}

// AutoTopics returns a population-appropriate latent topic count: 25 for
// small populations (the historical CLI default), growing as √(n/10) so
// that the expected number of users sharing an exact topic combination
// stays bounded as n grows. A million-user population with 25 topics
// would concentrate thousands of users on identical LSH metadata — their
// candidate cuckoo slots coincide and no placement can separate them —
// which no real population exhibits.
func AutoTopics(users int) int {
	t := 25
	for t*t*10 < users {
		t++
	}
	return t
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Users < 1:
		return fmt.Errorf("dataset: users must be >= 1, got %d", c.Users)
	case c.Dim < 1:
		return fmt.Errorf("dataset: dim must be >= 1, got %d", c.Dim)
	case c.Topics < 1:
		return fmt.Errorf("dataset: topics must be >= 1, got %d", c.Topics)
	case c.TopicsPerUser < 1 || c.TopicsPerUser > c.Topics:
		return fmt.Errorf("dataset: topics per user %d out of range [1,%d]", c.TopicsPerUser, c.Topics)
	case c.ActiveWords < 1 || c.ActiveWords > c.Dim:
		return fmt.Errorf("dataset: active words %d out of range [1,%d]", c.ActiveWords, c.Dim)
	case c.Noise < 0:
		return fmt.Errorf("dataset: noise must be >= 0, got %v", c.Noise)
	case c.PersonalWeight < 0:
		return fmt.Errorf("dataset: personal weight must be >= 0, got %v", c.PersonalWeight)
	}
	return nil
}

// Dataset is a generated population.
type Dataset struct {
	Config Config
	// Profiles[i] is user i's L2-normalized image profile S.
	Profiles [][]float64
	// UserTopics[i] lists the topic ids mixed into user i's profile.
	UserTopics [][]int
	// TopicCenters[t] is topic t's normalized visual-word distribution.
	TopicCenters [][]float64
}

// Generate builds a population, fully materialized. It is the Iterator
// drained into memory: Generate(c).Profiles[i] is byte-identical to the
// i-th profile any chunking of NextChunk yields for the same config.
func Generate(c Config) (*Dataset, error) {
	it, err := NewIterator(c)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Config:       c,
		Profiles:     make([][]float64, 0, c.Users),
		UserTopics:   make([][]int, 0, c.Users),
		TopicCenters: it.TopicCenters(),
	}
	for {
		chunk, ok := it.NextChunk(1 << 14)
		if !ok {
			break
		}
		ds.Profiles = append(ds.Profiles, chunk.Profiles...)
		ds.UserTopics = append(ds.UserTopics, chunk.UserTopics...)
	}
	return ds, nil
}

// Chunk is one contiguous run of generated users: user Start is the first,
// Profiles[i] belongs to user Start+i (0-based; identifiers in the system
// are conventionally Start+i+1).
type Chunk struct {
	Start      int
	Profiles   [][]float64
	UserTopics [][]int
}

// Iterator generates the same population as Generate, one chunk at a time,
// so a million-user build never holds more than a chunk of profiles in
// memory. Generation is sequential and deterministic: for a given config,
// the concatenation of chunks is independent of the chunk sizes requested
// and identical to Generate's output.
type Iterator struct {
	cfg     Config
	rng     *rand.Rand
	centers [][]float64
	next    int
}

// NewIterator validates the config and draws the topic model (the only
// state shared by all users).
func NewIterator(c Config) (*Iterator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	centers := make([][]float64, c.Topics)
	for t := range centers {
		centers[t] = sparseTopic(rng, c.Dim, c.ActiveWords)
	}
	return &Iterator{cfg: c, rng: rng, centers: centers}, nil
}

// TopicCenters returns the topic model (shared, not copied).
func (it *Iterator) TopicCenters() [][]float64 { return it.centers }

// Remaining returns how many users have not been generated yet.
func (it *Iterator) Remaining() int { return it.cfg.Users - it.next }

// NextChunk generates up to max users and advances. ok is false once the
// population is exhausted. Each call returns freshly allocated slices; the
// caller may retain or discard them freely.
func (it *Iterator) NextChunk(max int) (Chunk, bool) {
	if max < 1 || it.next >= it.cfg.Users {
		return Chunk{}, false
	}
	n := min(max, it.cfg.Users-it.next)
	chunk := Chunk{
		Start:      it.next,
		Profiles:   make([][]float64, n),
		UserTopics: make([][]int, n),
	}
	for i := 0; i < n; i++ {
		chunk.Profiles[i], chunk.UserTopics[i] = mixUser(it.rng, it.cfg, it.centers)
	}
	it.next += n
	return chunk, true
}

// sparseTopic draws a topic center: ActiveWords random vocabulary entries
// with exponential weights, L2-normalized.
func sparseTopic(rng *rand.Rand, dim, active int) []float64 {
	center := make([]float64, dim)
	for k := 0; k < active; k++ {
		w := rng.Intn(dim)
		center[w] += rng.ExpFloat64()
	}
	return vec.Normalize(center)
}

// mixUser draws a user's topic set and profile.
func mixUser(rng *rand.Rand, c Config, centers [][]float64) ([]float64, []int) {
	topics := rng.Perm(c.Topics)[:c.TopicsPerUser]
	profile := make([]float64, c.Dim)
	for _, t := range topics {
		weight := 0.5 + rng.Float64()
		for w, v := range centers[t] {
			if v != 0 {
				profile[w] += weight * v
			}
		}
	}
	if c.PersonalWeight > 0 {
		personal := sparseTopic(rng, c.Dim, c.ActiveWords/2+1)
		for w, v := range personal {
			if v != 0 {
				profile[w] += c.PersonalWeight * v
			}
		}
	}
	if c.Noise > 0 {
		// Sparse non-negative noise: BoW histograms never go negative.
		perturbations := c.Dim / 10
		for k := 0; k < perturbations; k++ {
			w := rng.Intn(c.Dim)
			profile[w] += rng.Float64() * c.Noise
		}
	}
	return vec.Normalize(profile), topics
}

// Queries samples nq query profiles from the same topic model (fresh users,
// not members of the population), returning profiles and their topic sets.
func (ds *Dataset) Queries(nq int, seed int64) ([][]float64, [][]int) {
	rng := rand.New(rand.NewSource(seed))
	profiles := make([][]float64, nq)
	topics := make([][]int, nq)
	for i := 0; i < nq; i++ {
		profiles[i], topics[i] = mixUser(rng, ds.Config, ds.TopicCenters)
	}
	return profiles, topics
}

// SharedTopics counts how many topics two users share.
func SharedTopics(a, b []int) int {
	set := make(map[int]struct{}, len(a))
	for _, t := range a {
		set[t] = struct{}{}
	}
	n := 0
	for _, t := range b {
		if _, ok := set[t]; ok {
			n++
		}
	}
	return n
}
