package dataset

import (
	"math"
	"testing"

	"pisd/internal/vec"
)

func smallConfig() Config {
	return Config{
		Users:         200,
		Dim:           100,
		Topics:        8,
		TopicsPerUser: 2,
		ActiveWords:   20,
		Noise:         0.02,
		Seed:          1,
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero users", func(c *Config) { c.Users = 0 }},
		{"zero dim", func(c *Config) { c.Dim = 0 }},
		{"zero topics", func(c *Config) { c.Topics = 0 }},
		{"too many topics per user", func(c *Config) { c.TopicsPerUser = 99 }},
		{"zero topics per user", func(c *Config) { c.TopicsPerUser = 0 }},
		{"too many active words", func(c *Config) { c.ActiveWords = 1000 }},
		{"negative noise", func(c *Config) { c.Noise = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := smallConfig()
			tt.mut(&c)
			if _, err := Generate(c); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestGenerateShapes(t *testing.T) {
	c := smallConfig()
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Profiles) != c.Users || len(ds.UserTopics) != c.Users {
		t.Fatalf("population size mismatch")
	}
	if len(ds.TopicCenters) != c.Topics {
		t.Fatalf("topic count mismatch")
	}
	for i, p := range ds.Profiles {
		if len(p) != c.Dim {
			t.Fatalf("profile %d has dim %d", i, len(p))
		}
		if math.Abs(vec.Norm(p)-1) > 1e-9 {
			t.Fatalf("profile %d not unit norm: %v", i, vec.Norm(p))
		}
		for _, x := range p {
			if x < 0 {
				t.Fatalf("profile %d has negative entry (not a BoW histogram)", i)
			}
		}
		if len(ds.UserTopics[i]) != c.TopicsPerUser {
			t.Fatalf("user %d has %d topics", i, len(ds.UserTopics[i]))
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Profiles {
		for j := range a.Profiles[i] {
			if a.Profiles[i][j] != b.Profiles[i][j] {
				t.Fatal("same seed should generate identical populations")
			}
		}
	}
	c := smallConfig()
	c.Seed = 2
	d, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j := range a.Profiles[0] {
		if a.Profiles[0][j] != d.Profiles[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds generated identical first profile")
	}
}

// Users sharing topics must be closer on average than users sharing none —
// the homophily structure the discovery pipeline relies on.
func TestTopicStructureInducesLocality(t *testing.T) {
	c := smallConfig()
	c.Users = 400
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	var sharedSum, disjointSum float64
	var sharedN, disjointN int
	for i := 0; i < 100; i++ {
		for j := i + 1; j < 100; j++ {
			d := vec.Distance(ds.Profiles[i], ds.Profiles[j])
			if SharedTopics(ds.UserTopics[i], ds.UserTopics[j]) > 0 {
				sharedSum += d
				sharedN++
			} else {
				disjointSum += d
				disjointN++
			}
		}
	}
	if sharedN == 0 || disjointN == 0 {
		t.Skip("degenerate sample")
	}
	sharedAvg := sharedSum / float64(sharedN)
	disjointAvg := disjointSum / float64(disjointN)
	if sharedAvg >= disjointAvg {
		t.Errorf("topic locality violated: shared avg %.3f >= disjoint avg %.3f", sharedAvg, disjointAvg)
	}
}

func TestQueries(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	qs, topics := ds.Queries(10, 7)
	if len(qs) != 10 || len(topics) != 10 {
		t.Fatalf("query count mismatch")
	}
	for i, q := range qs {
		if math.Abs(vec.Norm(q)-1) > 1e-9 {
			t.Fatalf("query %d not unit norm", i)
		}
	}
	// Deterministic in seed.
	qs2, _ := ds.Queries(10, 7)
	for j := range qs[0] {
		if qs[0][j] != qs2[0][j] {
			t.Fatal("queries not deterministic in seed")
		}
	}
}

func TestSharedTopics(t *testing.T) {
	if got := SharedTopics([]int{1, 2, 3}, []int{3, 4, 1}); got != 2 {
		t.Errorf("SharedTopics = %d, want 2", got)
	}
	if got := SharedTopics(nil, []int{1}); got != 0 {
		t.Errorf("SharedTopics = %d, want 0", got)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig(10).Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

// TestIteratorMatchesGenerate pins the streaming generator's contract: any
// chunking of NextChunk yields exactly Generate's population, element for
// element, so the segmented build path indexes the same users the
// monolithic path does.
func TestIteratorMatchesGenerate(t *testing.T) {
	c := DefaultConfig(503) // prime-ish size: exercises a ragged final chunk
	ds, err := Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunkSize := range []int{1, 7, 100, 503, 10000} {
		it, err := NewIterator(c)
		if err != nil {
			t.Fatal(err)
		}
		seen := 0
		for {
			chunk, ok := it.NextChunk(chunkSize)
			if !ok {
				break
			}
			if chunk.Start != seen {
				t.Fatalf("chunkSize %d: chunk starts at %d, want %d", chunkSize, chunk.Start, seen)
			}
			for i, p := range chunk.Profiles {
				u := chunk.Start + i
				if len(p) != len(ds.Profiles[u]) {
					t.Fatalf("chunkSize %d user %d: dim %d vs %d", chunkSize, u, len(p), len(ds.Profiles[u]))
				}
				for w := range p {
					if p[w] != ds.Profiles[u][w] {
						t.Fatalf("chunkSize %d user %d word %d: %v vs %v", chunkSize, u, w, p[w], ds.Profiles[u][w])
					}
				}
				for k, topic := range chunk.UserTopics[i] {
					if topic != ds.UserTopics[u][k] {
						t.Fatalf("chunkSize %d user %d topic %d: %d vs %d", chunkSize, u, k, topic, ds.UserTopics[u][k])
					}
				}
			}
			seen += len(chunk.Profiles)
		}
		if seen != c.Users {
			t.Fatalf("chunkSize %d: iterator yielded %d users, want %d", chunkSize, seen, c.Users)
		}
		if it.Remaining() != 0 {
			t.Fatalf("chunkSize %d: %d users remaining after exhaustion", chunkSize, it.Remaining())
		}
	}
}

func TestIteratorRejectsBadInput(t *testing.T) {
	if _, err := NewIterator(Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	it, err := NewIterator(DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.NextChunk(0); ok {
		t.Error("zero-size chunk accepted")
	}
}
