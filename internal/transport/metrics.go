package transport

import (
	"pisd/internal/obs"
)

// tmet is the transport tier's metric surface (names under "transport.").
// Counters record frame and byte traffic the network observer already
// sees, plus multiplexing health: in-flight pipelined calls, per-call
// timeouts, and late responses dropped by request ID after their caller
// gave up. All handles are nil-safe; SetRegistry(nil) is the disabled
// mode.
var tmet struct {
	framesOut  *obs.Counter // client request frames written
	framesIn   *obs.Counter // client response frames decoded
	bytesOut   *obs.Counter // client framed wire bytes written
	bytesIn    *obs.Counter // client framed wire bytes read
	inflight   *obs.Gauge   // pipelined calls awaiting their response
	timeouts   *obs.Counter // calls abandoned by deadline or cancellation
	lateDrops  *obs.Counter // responses arriving after their caller gave up
	connFails  *obs.Counter // connections declared broken (sticky failure)
	dials      *obs.Counter // dial attempts
	dialErrors *obs.Counter // failed dials
	srvConns   *obs.Gauge   // server: live connections
	srvFrames  *obs.Counter // server: request frames decoded
	srvBytesIn *obs.Counter // server: framed wire bytes read
	srvWorkers *obs.Gauge   // server: effective per-connection worker bound
}

func init() { SetRegistry(obs.Default) }

// SetRegistry points the transport metrics at r (nil disables them).
// Intended for process setup and test isolation; not safe to call
// concurrently with live connections.
func SetRegistry(r *obs.Registry) {
	if r == nil {
		tmet.framesOut, tmet.framesIn = nil, nil
		tmet.bytesOut, tmet.bytesIn = nil, nil
		tmet.inflight, tmet.timeouts, tmet.lateDrops, tmet.connFails = nil, nil, nil, nil
		tmet.dials, tmet.dialErrors = nil, nil
		tmet.srvConns, tmet.srvFrames, tmet.srvBytesIn, tmet.srvWorkers = nil, nil, nil, nil
		return
	}
	tmet.framesOut = r.Counter("transport.frames_out")
	tmet.framesIn = r.Counter("transport.frames_in")
	tmet.bytesOut = r.Counter("transport.bytes_out")
	tmet.bytesIn = r.Counter("transport.bytes_in")
	tmet.inflight = r.Gauge("transport.inflight")
	tmet.timeouts = r.Counter("transport.timeouts")
	tmet.lateDrops = r.Counter("transport.late_drops")
	tmet.connFails = r.Counter("transport.conn_failures")
	tmet.dials = r.Counter("transport.dials")
	tmet.dialErrors = r.Counter("transport.dial_errors")
	tmet.srvConns = r.Gauge("transport.server.conns")
	tmet.srvFrames = r.Counter("transport.server.frames_in")
	tmet.srvBytesIn = r.Counter("transport.server.bytes_in")
	tmet.srvWorkers = r.Gauge("transport.server.workers_per_conn")
}
