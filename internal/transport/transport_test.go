package transport

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/dataset"
	"pisd/internal/frontend"
	"pisd/internal/lsh"
)

// startServer spins up a transport server over a fresh cloud server and
// returns a connected client. Both are torn down with the test.
func startServer(t *testing.T) (*cloud.Server, *Client) {
	t.Helper()
	cs := cloud.New()
	srv := NewServer(cs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	client, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { client.Close() })
	return cs, client
}

func testFrontend(t *testing.T) *frontend.Frontend {
	t.Helper()
	cfg := frontend.Config{
		LSH:        lsh.Params{Dim: 100, Tables: 6, Atoms: 2, Width: 0.8, Seed: 1},
		LoadFactor: 0.8,
		ProbeRange: 5,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       1,
		KeySeed:    "transport-test",
	}
	f, err := frontend.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func testUploads(t *testing.T, f *frontend.Frontend, n int) ([]frontend.Upload, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Users: n, Dim: 100, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 20, Noise: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ups := make([]frontend.Upload, n)
	for i, p := range ds.Profiles {
		ups[i] = frontend.Upload{ID: uint64(i + 1), Profile: p, Meta: f.ComputeMeta(p)}
	}
	return ups, ds
}

func TestPing(t *testing.T) {
	_, client := startServer(t)
	if err := client.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
}

func TestRemoteEndToEndDiscovery(t *testing.T) {
	_, client := startServer(t)
	f := testFrontend(t)
	uploads, ds := testUploads(t, f, 300)

	idx, encProfiles, err := f.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallIndex(idx); err != nil {
		t.Fatalf("InstallIndex: %v", err)
	}
	if err := client.PutProfiles(encProfiles); err != nil {
		t.Fatalf("PutProfiles: %v", err)
	}
	matches, err := f.Discover(client, ds.Profiles[2], 5, 0)
	if err != nil {
		t.Fatalf("Discover over TCP: %v", err)
	}
	if len(matches) == 0 || matches[0].ID != 3 {
		t.Fatalf("remote discovery results: %+v", matches)
	}
}

func TestRemoteDynamicFlow(t *testing.T) {
	_, client := startServer(t)
	f := testFrontend(t)
	uploads, ds := testUploads(t, f, 200)
	idx, dynClient, encProfiles, err := f.BuildDynamicIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallDynIndex(idx); err != nil {
		t.Fatalf("InstallDynIndex: %v", err)
	}
	if err := client.PutProfiles(encProfiles); err != nil {
		t.Fatal(err)
	}
	matches, err := f.DynSearch(dynClient, client, client, ds.Profiles[4], 5, 0)
	if err != nil {
		t.Fatalf("DynSearch over TCP: %v", err)
	}
	if len(matches) == 0 || matches[0].ID != 5 {
		t.Fatalf("remote dynamic results: %+v", matches)
	}
	// Remote secure deletion.
	if err := dynClient.Delete(client, 5, f.ComputeMeta(ds.Profiles[4])); err != nil {
		t.Fatalf("remote Delete: %v", err)
	}
	if err := client.DeleteProfile(5); err != nil {
		t.Fatal(err)
	}
	matches, err = f.DynSearch(dynClient, client, client, ds.Profiles[4], 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.ID == 5 {
			t.Error("deleted user still discoverable remotely")
		}
	}
}

func TestRemoteImages(t *testing.T) {
	_, client := startServer(t)
	if err := client.StoreImage(9, []byte("enc-image-1")); err != nil {
		t.Fatal(err)
	}
	if err := client.StoreImage(9, []byte("enc-image-2")); err != nil {
		t.Fatal(err)
	}
	blobs, err := client.FetchImages(9)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 2 || string(blobs[0]) != "enc-image-1" {
		t.Errorf("FetchImages = %q", blobs)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	_, client := startServer(t)
	// No index installed: SecRec must fail with the server's message.
	_, _, err := client.SecRec(&core.Trapdoor{})
	if err == nil || !strings.Contains(err.Error(), "no index") {
		t.Errorf("SecRec error = %v", err)
	}
	if _, err := client.FetchProfiles([]uint64{42}); err == nil {
		t.Error("unknown profile fetch accepted")
	}
}

func TestTrafficAccounting(t *testing.T) {
	_, client := startServer(t)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	sent, recv := client.Traffic()
	if sent <= 0 || recv <= 0 {
		t.Errorf("traffic not accounted: sent=%d recv=%d", sent, recv)
	}
}

func TestConcurrentClients(t *testing.T) {
	cs, client := startServer(t)
	_ = client
	f := testFrontend(t)
	uploads, ds := testUploads(t, f, 200)
	idx, encProfiles, err := f.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	addr := dialAddr(t, cs)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for q := 0; q < 10; q++ {
				if _, err := f.Discover(c, ds.Profiles[(w*10+q)%len(ds.Profiles)], 5, 0); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent client: %v", err)
	}
}

// dialAddr starts a second transport server over an existing cloud server
// so concurrent tests get their own listener.
func dialAddr(t *testing.T, cs *cloud.Server) string {
	t.Helper()
	srv := NewServer(cs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return addr
}

func TestShutdownIdempotentAndListenAfterShutdown(t *testing.T) {
	srv := NewServer(cloud.New())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_ = addr
	ctx := context.Background()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Shutdown accepted")
	}
}

func TestIndexCodecRoundTrip(t *testing.T) {
	f := testFrontend(t)
	uploads, _ := testUploads(t, f, 100)
	idx, _, err := f.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded core.Index
	if err := decoded.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if decoded.Len() != idx.Len() || decoded.Width() != idx.Width() ||
		decoded.SizeBytes() != idx.SizeBytes() {
		t.Error("decoded index shape mismatch")
	}
	// Bucket content must be preserved bit for bit.
	for pos := 0; pos < 10; pos++ {
		a, err := idx.Bucket(0, uint64(pos))
		if err != nil {
			t.Fatal(err)
		}
		b, err := decoded.Bucket(0, uint64(pos))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatal("bucket content changed in codec")
		}
	}
	if err := decoded.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("truncated index accepted")
	}
	blob[0] ^= 1
	if err := decoded.UnmarshalBinary(blob); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestDynIndexCodecRoundTrip(t *testing.T) {
	f := testFrontend(t)
	uploads, _ := testUploads(t, f, 80)
	idx, _, _, err := f.BuildDynamicIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded core.DynIndex
	if err := decoded.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if decoded.Width() != idx.Width() || decoded.SizeBytes() != idx.SizeBytes() {
		t.Error("decoded dynamic index shape mismatch")
	}
	refs := []core.BucketRef{{Table: 0, Pos: 0}, {Table: 1, Pos: 3}}
	a, err := idx.FetchBuckets(refs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decoded.FetchBuckets(refs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if string(a[i].Masked) != string(b[i].Masked) || string(a[i].EncR) != string(b[i].EncR) {
			t.Fatal("dynamic bucket changed in codec")
		}
	}
}

func TestClientTimeout(t *testing.T) {
	// A server that accepts but never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			// Swallow bytes forever.
			io.Copy(io.Discard, conn)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetTimeout(150 * time.Millisecond)
	start := time.Now()
	if err := client.Ping(); err == nil {
		t.Fatal("ping against silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestConnErrorOnServerClosedMidCall(t *testing.T) {
	// A server that reads the request, then slams the connection shut:
	// the client's pending receive must surface a typed ConnError.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		conn.Read(buf)
		conn.Close()
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	err = client.Ping()
	if err == nil {
		t.Fatal("ping against closing server succeeded")
	}
	if !IsConnError(err) {
		t.Errorf("server close surfaced %T (%v), want *ConnError", err, err)
	}
}

func TestConnErrorOnTruncatedFrame(t *testing.T) {
	// A server that answers with garbage bytes and closes: a truncated /
	// corrupt gob frame is a connection-level error, not an application
	// error.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		conn.Read(buf)
		conn.Write([]byte{0x07, 0xff, 0x81}) // nonsense partial frame
		conn.Close()
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	err = client.Ping()
	if err == nil {
		t.Fatal("ping over truncated frame succeeded")
	}
	var ce *ConnError
	if !errors.As(err, &ce) {
		t.Fatalf("truncated frame surfaced %T (%v), want *ConnError", err, err)
	}
	if ce.Op != "receive" {
		t.Errorf("ConnError.Op = %q, want receive", ce.Op)
	}
}

func TestRemoteErrorIsNotConnError(t *testing.T) {
	_, client := startServer(t)
	_, _, err := client.SecRec(&core.Trapdoor{})
	if err == nil {
		t.Fatal("SecRec without index succeeded")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("application failure surfaced %T (%v), want *RemoteError", err, err)
	}
	if IsConnError(err) {
		t.Error("application failure classified as connection error")
	}
	// The connection must stay healthy after a RemoteError.
	if err := client.Ping(); err != nil {
		t.Errorf("ping after RemoteError: %v", err)
	}
}

func TestContextDeadlineBoundsCall(t *testing.T) {
	// A server that accepts but never answers: a per-call context deadline
	// must interrupt the exchange and classify it as retryable.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = client.PingContext(ctx)
	if err == nil {
		t.Fatal("ping against silent server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("context deadline took %v to fire", elapsed)
	}
	if !IsConnError(err) {
		t.Errorf("deadline expiry surfaced %T (%v), want *ConnError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want errors.Is(context.DeadlineExceeded)", err)
	}
}

func TestContextCancelInterruptsCall(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = client.PingContext(ctx)
	if err == nil {
		t.Fatal("cancelled ping succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v to interrupt the call", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want errors.Is(context.Canceled)", err)
	}
}

func TestContextPreCancelledFailsFast(t *testing.T) {
	_, client := startServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := client.PingContext(ctx); err == nil {
		t.Fatal("pre-cancelled context accepted")
	} else if !IsConnError(err) {
		t.Errorf("pre-cancelled call surfaced %T, want *ConnError", err)
	}
	// The stream was never touched; the client must still work.
	if err := client.Ping(); err != nil {
		t.Errorf("ping after pre-cancelled call: %v", err)
	}
}

func TestDialFailureIsConnError(t *testing.T) {
	// Reserve a port and close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial to dead address succeeded")
	} else if !IsConnError(err) {
		t.Errorf("dial failure surfaced %T (%v), want *ConnError", err, err)
	}
}
