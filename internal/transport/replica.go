package transport

import (
	"context"

	"pisd/internal/core"
)

// Replication methods of the wire protocol: the version/repair surface a
// replicated front end uses to track, compare and re-sync per-replica
// write state (see internal/cloud/replica.go for the server semantics).
const (
	MethodVersion    = "Version"
	MethodSetVersion = "SetVersion"
	MethodProfileIDs = "ProfileIDs"
)

// Version returns the server's last recorded replication write version.
func (c *Client) Version() (uint64, error) {
	return c.VersionContext(context.Background())
}

// VersionContext is Version bounded by ctx — the probe a health checker
// uses to detect a replica that restarted (version 0) or missed writes.
func (c *Client) VersionContext(ctx context.Context) (uint64, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodVersion})
	if err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// ApplyVersion records a write version on the server (monotonic max).
func (c *Client) ApplyVersion(v uint64) error {
	return c.ApplyVersionContext(context.Background(), v)
}

// ApplyVersionContext is ApplyVersion bounded by ctx.
func (c *Client) ApplyVersionContext(ctx context.Context, v uint64) error {
	_, err := c.callContext(ctx, &Request{Method: MethodSetVersion, Version: v})
	return err
}

// StoreBucketsVersioned stores buckets and records the write version in
// one atomic exchange, so a concurrent version probe never observes the
// version ahead of the bucket data.
func (c *Client) StoreBucketsVersioned(refs []core.BucketRef, buckets []core.DynBucket, v uint64) error {
	return c.StoreBucketsVersionedContext(context.Background(), refs, buckets, v)
}

// StoreBucketsVersionedContext is StoreBucketsVersioned bounded by ctx.
func (c *Client) StoreBucketsVersionedContext(ctx context.Context, refs []core.BucketRef, buckets []core.DynBucket, v uint64) error {
	_, err := c.callContext(ctx, &Request{Method: MethodStoreBuckets, Refs: refs, Buckets: buckets, Version: v})
	return err
}

// ProfileIDs lists the identifiers of every encrypted profile the server
// stores, ascending — the repair endpoint for mirroring profile stores.
func (c *Client) ProfileIDs() ([]uint64, error) {
	return c.ProfileIDsContext(context.Background())
}

// ProfileIDsContext is ProfileIDs bounded by ctx.
func (c *Client) ProfileIDsContext(ctx context.Context) ([]uint64, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodProfileIDs})
	if err != nil {
		return nil, err
	}
	return resp.IDs, nil
}
