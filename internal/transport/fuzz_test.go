package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"io"
	"testing"
)

// encodeFrames gob-encodes the given envelopes through a frameWriter into
// one contiguous wire stream, exactly as a live peer would produce it.
func encodeFrames(tb testing.TB, envs ...*respEnvelope) []byte {
	tb.Helper()
	var buf bytes.Buffer
	fw := newFrameWriter(&buf)
	for _, env := range envs {
		if _, err := fw.writeFrame(env); err != nil {
			tb.Fatalf("writeFrame: %v", err)
		}
	}
	return buf.Bytes()
}

// FuzzFrameDecode throws arbitrary byte streams at the length-prefixed
// frame reader + gob decoder pair that every connection's read side runs.
// Whatever the bytes — malformed lengths, torn headers, truncated
// payloads, garbage gob, frames spliced from different streams — decoding
// must terminate with a clean error or clean EOF, never panic, never spin,
// and never report more consumed bytes than were on the wire.
func FuzzFrameDecode(f *testing.F) {
	// A well-formed single response.
	valid := encodeFrames(f, &respEnvelope{ID: 1, Resp: &Response{Err: "x"}})
	f.Add(valid)
	// Two frames with interleaved request IDs, as a pipelined server
	// writes them: completion order, not request order.
	f.Add(encodeFrames(f,
		&respEnvelope{ID: 7, Resp: &Response{IDs: []uint64{1, 2, 3}}},
		&respEnvelope{ID: 3, Resp: &Response{Err: "later request answered first"}},
	))
	// Truncated payload: a frame whose advertised length exceeds the bytes
	// behind it.
	f.Add(valid[:len(valid)-3])
	// Torn header.
	f.Add(valid[:2])
	// Oversized length prefix.
	huge := make([]byte, frameHeader)
	binary.BigEndian.PutUint32(huge, maxFrame+1)
	f.Add(huge)
	// Zero-length frame followed by a valid one.
	f.Add(append(make([]byte, frameHeader), valid...))
	// Non-gob garbage with a plausible length prefix.
	garbage := []byte{0, 0, 0, 8, 0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0xba, 0xbe}
	f.Add(garbage)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := newFrameReader(bytes.NewReader(data))
		dec := gob.NewDecoder(fr)
		for decoded := 0; ; decoded++ {
			var env respEnvelope
			if err := dec.Decode(&env); err != nil {
				return // every malformed stream must end in an error or EOF
			}
			if fr.consumed() > int64(len(data)) {
				t.Fatalf("reader claims %d consumed bytes of a %d-byte input", fr.consumed(), len(data))
			}
			if decoded > len(data) {
				t.Fatalf("decoded %d envelopes from %d bytes; decoder is spinning", decoded, len(data))
			}
		}
	})
}

// TestFrameDecodeInterleavedIDs pins the codec-level half of response
// multiplexing: frames written in completion order decode in that order
// with their request IDs and payloads intact, so the client's reader can
// route each to its caller.
func TestFrameDecodeInterleavedIDs(t *testing.T) {
	envs := []*respEnvelope{
		{ID: 2, Resp: &Response{IDs: []uint64{20}}},
		{ID: 0, Resp: &Response{IDs: []uint64{10}}},
		{ID: 1, Resp: &Response{Err: "third"}},
	}
	wire := encodeFrames(t, envs...)
	fr := newFrameReader(bytes.NewReader(wire))
	dec := gob.NewDecoder(fr)
	for i, want := range envs {
		var got respEnvelope
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.ID != want.ID {
			t.Fatalf("frame %d carried ID %d, want %d", i, got.ID, want.ID)
		}
		if want.Resp.Err != "" && got.Resp.Err != want.Resp.Err {
			t.Fatalf("frame %d error %q, want %q", i, got.Resp.Err, want.Resp.Err)
		}
		if len(want.Resp.IDs) > 0 && (len(got.Resp.IDs) != len(want.Resp.IDs) || got.Resp.IDs[0] != want.Resp.IDs[0]) {
			t.Fatalf("frame %d payload %v, want %v", i, got.Resp.IDs, want.Resp.IDs)
		}
	}
	var extra respEnvelope
	if err := dec.Decode(&extra); err != io.EOF {
		t.Fatalf("stream must end cleanly, got %v", err)
	}
}

// TestFrameReaderRejectsOversizedFrame pins the fail-fast path for a
// corrupt length prefix.
func TestFrameReaderRejectsOversizedFrame(t *testing.T) {
	hdr := make([]byte, frameHeader)
	binary.BigEndian.PutUint32(hdr, maxFrame+1)
	fr := newFrameReader(bytes.NewReader(hdr))
	if _, err := fr.Read(make([]byte, 1)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}
