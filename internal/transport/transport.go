// Package transport puts the paper's three-entity architecture on a real
// network: a length-delimited gob protocol over TCP exposing the cloud
// server's surface (SecRec discovery, encrypted profile and image storage,
// dynamic bucket fetch/store) to remote front ends and user clients.
//
// The protocol is deliberately simple — one request, one response, framed
// by gob on a persistent connection — because the interesting properties
// (constant bandwidth per discovery, one round per operation) are those of
// the scheme, not of the wire format. Message sizes are exposed so the
// bandwidth experiments can measure real serialized traffic.
package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
)

// ConnError marks a connection-level failure: a failed dial, a send or
// receive error, a timed-out or cancelled exchange, a server that closed
// mid-call, or a truncated gob frame. After a ConnError the gob stream is
// in an undefined state and the client must be discarded (re-dial to
// retry). Callers distinguishing transient transport faults from
// application errors — e.g. a shard pool deciding whether to retry —
// should test with IsConnError.
type ConnError struct {
	// Op is the failing step: "dial", "call", "send" or "receive".
	Op string
	// Err is the underlying network or codec error.
	Err error
}

func (e *ConnError) Error() string { return fmt.Sprintf("transport: %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As (net.Error,
// context.DeadlineExceeded, io.ErrUnexpectedEOF, ...).
func (e *ConnError) Unwrap() error { return e.Err }

// IsConnError reports whether err stems from the connection rather than
// from the remote application logic. Connection errors are retryable on a
// fresh connection; application errors (RemoteError) are not.
func IsConnError(err error) bool {
	var ce *ConnError
	return errors.As(err, &ce)
}

// RemoteError is an error the server's application logic reported inside a
// well-formed response frame (e.g. "cloud: no index installed"). The
// connection remains healthy after a RemoteError.
type RemoteError struct {
	// Msg is the server-side error string.
	Msg string
}

func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// Method names of the wire protocol.
const (
	MethodSecRec        = "SecRec"
	MethodFetchProfiles = "FetchProfiles"
	MethodPutProfile    = "PutProfile"
	MethodDeleteProfile = "DeleteProfile"
	MethodFetchBuckets  = "FetchBuckets"
	MethodStoreBuckets  = "StoreBuckets"
	MethodStoreImage    = "StoreImage"
	MethodFetchImages   = "FetchImages"
	MethodPing          = "Ping"
	MethodInstallIndex  = "InstallIndex"
	MethodInstallDyn    = "InstallDynIndex"
)

// Request is the single wire request envelope.
type Request struct {
	Method   string
	Trapdoor *core.Trapdoor
	Refs     []core.BucketRef
	Buckets  []core.DynBucket
	IDs      []uint64
	UserID   uint64
	Blob     []byte
	Profiles map[uint64][]byte
	Index    *core.Index
	DynIndex *core.DynIndex
}

// Response is the single wire response envelope.
type Response struct {
	Err      string
	IDs      []uint64
	Profiles [][]byte
	Buckets  []core.DynBucket
	Blobs    [][]byte
}

// Server serves a cloud.Server over TCP.
type Server struct {
	cs *cloud.Server

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps a cloud server.
func NewServer(cs *cloud.Server) *Server {
	return &Server{cs: cs, conns: make(map[net.Conn]struct{})}
}

// Listen binds the given address ("127.0.0.1:0" for an ephemeral port) and
// starts accepting connections until Shutdown. It returns the bound
// address immediately; serving continues in background goroutines owned by
// the server.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("transport: server already shut down")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or corrupt stream
		}
		resp := s.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// dispatch executes one request against the cloud server.
func (s *Server) dispatch(req *Request) *Response {
	resp := &Response{}
	switch req.Method {
	case MethodPing:
	case MethodInstallIndex:
		if req.Index == nil {
			resp.Err = "transport: missing index"
			break
		}
		s.cs.SetIndex(req.Index)
	case MethodInstallDyn:
		if req.DynIndex == nil {
			resp.Err = "transport: missing dynamic index"
			break
		}
		s.cs.SetDynIndex(req.DynIndex)
	case MethodSecRec:
		ids, profiles, err := s.cs.SecRec(req.Trapdoor)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.IDs = ids
		resp.Profiles = profiles
	case MethodFetchProfiles:
		profiles, err := s.cs.FetchProfiles(req.IDs)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.Profiles = profiles
	case MethodPutProfile:
		for id, ct := range req.Profiles {
			s.cs.PutProfile(id, ct)
		}
	case MethodDeleteProfile:
		s.cs.DeleteProfile(req.UserID)
	case MethodFetchBuckets:
		buckets, err := s.cs.FetchBuckets(req.Refs)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.Buckets = buckets
	case MethodStoreBuckets:
		if err := s.cs.StoreBuckets(req.Refs, req.Buckets); err != nil {
			resp.Err = err.Error()
		}
	case MethodStoreImage:
		s.cs.StoreImages(req.UserID, req.Blob)
	case MethodFetchImages:
		resp.Blobs = s.cs.Images(req.UserID)
	default:
		resp.Err = fmt.Sprintf("transport: unknown method %q", req.Method)
	}
	return resp
}

// Shutdown stops accepting, closes every connection and waits for all
// serving goroutines to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("transport: shutdown: %w", ctx.Err())
	}
}

// Client is a remote handle to a cloud server. It is safe for concurrent
// use; requests are serialized on one connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	// timeout bounds each request/response exchange (0 = none).
	timeout time.Duration
	// sentBytes / recvBytes accumulate serialized traffic for the
	// bandwidth experiments.
	sentBytes int64
	recvBytes int64
}

// Compile-time checks: the client presents the same surfaces as the
// in-process cloud server.
var _ core.BucketStore = (*Client)(nil)

// Dial connects to a transport server. A failed dial returns a ConnError.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, &ConnError{Op: "dial", Err: err}
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetTimeout bounds every subsequent request/response exchange; zero
// disables the bound. Per-call context deadlines (the ...Context variants)
// compose with this connection-global bound: the earlier deadline wins. A
// timed-out call fails with a ConnError and leaves the gob stream in an
// undefined state, so the client should be discarded after one.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Traffic returns the cumulative serialized request and response bytes.
func (c *Client) Traffic() (sent, received int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sentBytes, c.recvBytes
}

// call performs one request/response exchange without per-call deadline.
func (c *Client) call(req *Request) (*Response, error) {
	return c.callContext(context.Background(), req)
}

// callContext performs one request/response exchange bounded by ctx: a
// context deadline (combined with the connection-global timeout, earlier
// wins) is applied to the socket, and a cancellation arriving mid-call
// interrupts the blocked read by expiring the socket deadline. Requests on
// one client serialize; the ctx of a queued call bounds only its own
// exchange.
func (c *Client) callContext(ctx context.Context, req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, &ConnError{Op: "call", Err: err}
	}
	deadline := time.Time{}
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() {
		if err := c.conn.SetDeadline(deadline); err != nil {
			return nil, &ConnError{Op: "call", Err: err}
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	// A cancellation (as opposed to a deadline) must also unblock the
	// pending socket read; expiring the deadline does that.
	stop := context.AfterFunc(ctx, func() { c.conn.SetDeadline(time.Now()) })
	defer stop()

	// Measure the serialized request size with a parallel encoding; gob
	// stream framing on the live connection is equivalent modulo type
	// descriptors sent once.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err == nil {
		c.sentBytes += int64(buf.Len())
	}
	if err := c.enc.Encode(req); err != nil {
		return nil, c.connErr(ctx, "send", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, c.connErr(ctx, "receive", err)
	}
	var rbuf bytes.Buffer
	if err := gob.NewEncoder(&rbuf).Encode(&resp); err == nil {
		c.recvBytes += int64(rbuf.Len())
	}
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return &resp, nil
}

// connErr wraps a send/receive failure, preferring the context's own error
// when the failure was induced by its expiry or cancellation so callers
// can errors.Is against context.DeadlineExceeded / context.Canceled.
func (c *Client) connErr(ctx context.Context, op string, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return &ConnError{Op: op, Err: fmt.Errorf("%w (%v)", ctxErr, err)}
	}
	return &ConnError{Op: op, Err: err}
}

// InstallIndex outsources a freshly built static index to the cloud.
func (c *Client) InstallIndex(idx *core.Index) error {
	return c.InstallIndexContext(context.Background(), idx)
}

// InstallIndexContext is InstallIndex bounded by ctx.
func (c *Client) InstallIndexContext(ctx context.Context, idx *core.Index) error {
	_, err := c.callContext(ctx, &Request{Method: MethodInstallIndex, Index: idx})
	return err
}

// InstallDynIndex outsources a dynamic index to the cloud.
func (c *Client) InstallDynIndex(idx *core.DynIndex) error {
	return c.InstallDynIndexContext(context.Background(), idx)
}

// InstallDynIndexContext is InstallDynIndex bounded by ctx.
func (c *Client) InstallDynIndexContext(ctx context.Context, idx *core.DynIndex) error {
	_, err := c.callContext(ctx, &Request{Method: MethodInstallDyn, DynIndex: idx})
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext is Ping bounded by ctx.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.callContext(ctx, &Request{Method: MethodPing})
	return err
}

// SecRec implements frontend.DiscoveryServer remotely.
func (c *Client) SecRec(t *core.Trapdoor) ([]uint64, [][]byte, error) {
	return c.SecRecContext(context.Background(), t)
}

// SecRecContext is SecRec bounded by ctx — the fan-out primitive a shard
// pool uses to put a per-shard deadline on each discovery leg.
func (c *Client) SecRecContext(ctx context.Context, t *core.Trapdoor) ([]uint64, [][]byte, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodSecRec, Trapdoor: t})
	if err != nil {
		return nil, nil, err
	}
	return resp.IDs, resp.Profiles, nil
}

// FetchProfiles implements frontend.ProfileFetcher remotely.
func (c *Client) FetchProfiles(ids []uint64) ([][]byte, error) {
	return c.FetchProfilesContext(context.Background(), ids)
}

// FetchProfilesContext is FetchProfiles bounded by ctx.
func (c *Client) FetchProfilesContext(ctx context.Context, ids []uint64) ([][]byte, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodFetchProfiles, IDs: ids})
	if err != nil {
		return nil, err
	}
	return resp.Profiles, nil
}

// PutProfiles uploads encrypted profiles.
func (c *Client) PutProfiles(profiles map[uint64][]byte) error {
	return c.PutProfilesContext(context.Background(), profiles)
}

// PutProfilesContext is PutProfiles bounded by ctx.
func (c *Client) PutProfilesContext(ctx context.Context, profiles map[uint64][]byte) error {
	_, err := c.callContext(ctx, &Request{Method: MethodPutProfile, Profiles: profiles})
	return err
}

// DeleteProfile removes an encrypted profile.
func (c *Client) DeleteProfile(id uint64) error {
	return c.DeleteProfileContext(context.Background(), id)
}

// DeleteProfileContext is DeleteProfile bounded by ctx.
func (c *Client) DeleteProfileContext(ctx context.Context, id uint64) error {
	_, err := c.callContext(ctx, &Request{Method: MethodDeleteProfile, UserID: id})
	return err
}

// FetchBuckets implements core.BucketStore remotely.
func (c *Client) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	return c.FetchBucketsContext(context.Background(), refs)
}

// FetchBucketsContext is FetchBuckets bounded by ctx.
func (c *Client) FetchBucketsContext(ctx context.Context, refs []core.BucketRef) ([]core.DynBucket, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodFetchBuckets, Refs: refs})
	if err != nil {
		return nil, err
	}
	return resp.Buckets, nil
}

// StoreBuckets implements core.BucketStore remotely.
func (c *Client) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	return c.StoreBucketsContext(context.Background(), refs, buckets)
}

// StoreBucketsContext is StoreBuckets bounded by ctx.
func (c *Client) StoreBucketsContext(ctx context.Context, refs []core.BucketRef, buckets []core.DynBucket) error {
	_, err := c.callContext(ctx, &Request{Method: MethodStoreBuckets, Refs: refs, Buckets: buckets})
	return err
}

// StoreImage uploads one encrypted image blob for a user.
func (c *Client) StoreImage(userID uint64, blob []byte) error {
	_, err := c.call(&Request{Method: MethodStoreImage, UserID: userID, Blob: blob})
	return err
}

// FetchImages downloads a user's encrypted images.
func (c *Client) FetchImages(userID uint64) ([][]byte, error) {
	resp, err := c.call(&Request{Method: MethodFetchImages, UserID: userID})
	if err != nil {
		return nil, err
	}
	return resp.Blobs, nil
}
