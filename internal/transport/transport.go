// Package transport puts the paper's three-entity architecture on a real
// network: a framed, request-ID-multiplexed protocol over TCP exposing the
// cloud server's surface (SecRec discovery, encrypted profile and image
// storage, dynamic bucket fetch/store) to remote front ends and user
// clients.
//
// Wire format: every message is one length-prefixed frame — a 4-byte
// big-endian payload length followed by the gob bytes of a request or
// response envelope carrying a connection-unique request ID. Each direction
// of a connection is one persistent gob stream chunked into those frames
// (type descriptions travel once, encode/decode buffers stay warm across
// messages), owned by a single writer and a single reader goroutine.
// Because responses are dispatched by ID, many callers can pipeline
// requests on one connection concurrently: the client writes frames as
// callers arrive and its reader goroutine routes each response to the
// caller that requested it, in whatever order the server finishes them. The
// server, symmetrically, decodes frames as they arrive and executes each
// request on a bounded per-connection worker pool instead of one-at-a-time,
// so a single connection saturates the hardware rather than sustaining at
// most one request per round trip.
//
// The interesting security properties (constant bandwidth per discovery,
// one round per operation) are those of the scheme, not of the wire format.
// Frame sizes are exposed so the bandwidth experiments measure real
// serialized traffic.
package transport

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
)

// ConnError marks a connection-level failure: a failed dial, a dead or
// half-closed connection, a corrupt frame, or a timed-out / cancelled call.
// Callers distinguishing transient transport faults from application errors
// — e.g. a shard pool deciding whether to retry — should test with
// IsConnError. A timed-out or cancelled call does NOT invalidate the
// connection: the multiplexed stream skips the late response by its request
// ID, so other in-flight and future calls proceed undisturbed.
type ConnError struct {
	// Op is the failing step: "dial", "call", "send" or "receive".
	Op string
	// Err is the underlying network, codec or context error.
	Err error
}

func (e *ConnError) Error() string { return fmt.Sprintf("transport: %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As (net.Error,
// context.DeadlineExceeded, io.ErrUnexpectedEOF, ...).
func (e *ConnError) Unwrap() error { return e.Err }

// IsConnError reports whether err stems from the connection rather than
// from the remote application logic. Connection errors are retryable;
// application errors (RemoteError) are not.
func IsConnError(err error) bool {
	var ce *ConnError
	return errors.As(err, &ce)
}

// RemoteError is an error the server's application logic reported inside a
// well-formed response frame (e.g. "cloud: no index installed"). The
// connection remains healthy after a RemoteError.
type RemoteError struct {
	// Msg is the server-side error string.
	Msg string
}

func (e *RemoteError) Error() string { return "transport: remote: " + e.Msg }

// Method names of the wire protocol.
const (
	MethodSecRec        = "SecRec"
	MethodSecRecBatch   = "SecRecBatch"
	MethodFetchProfiles = "FetchProfiles"
	// MethodFetchProfilesSparse is FetchProfiles with gap tolerance: an
	// unknown identifier answers as an empty entry instead of failing the
	// batch (the subscription re-score fan-out's read).
	MethodFetchProfilesSparse = "FetchProfilesSparse"
	MethodPutProfile          = "PutProfile"
	MethodDeleteProfile       = "DeleteProfile"
	MethodFetchBuckets        = "FetchBuckets"
	MethodStoreBuckets        = "StoreBuckets"
	MethodStoreImage          = "StoreImage"
	MethodFetchImages         = "FetchImages"
	MethodPing                = "Ping"
	MethodInstallIndex        = "InstallIndex"
	MethodInstallDyn          = "InstallDynIndex"
)

// Request is the single wire request envelope body.
type Request struct {
	Method    string
	Trapdoor  *core.Trapdoor
	Trapdoors []*core.Trapdoor
	Refs      []core.BucketRef
	Buckets   []core.DynBucket
	IDs       []uint64
	UserID    uint64
	Blob      []byte
	Profiles  map[uint64][]byte
	Index     *core.Index
	DynIndex  *core.DynIndex
	// Version carries a replication write version: on SetVersion it is the
	// version to record, on StoreBuckets a non-zero value selects the
	// versioned store (buckets + version applied atomically).
	Version uint64
}

// Response is the single wire response envelope body.
type Response struct {
	Err           string
	IDs           []uint64
	Profiles      [][]byte
	Buckets       []core.DynBucket
	Blobs         [][]byte
	BatchIDs      [][]uint64
	BatchProfiles [][][]byte
	// Version answers a Version request: the server's last recorded
	// replication write version.
	Version uint64
}

// reqEnvelope frames one request with its connection-unique ID.
type reqEnvelope struct {
	ID  uint64
	Req *Request
}

// respEnvelope frames one response with the ID of the request it answers.
type respEnvelope struct {
	ID   uint64
	Resp *Response
}

const (
	frameHeader = 4
	// maxFrame bounds a single frame; an index install for millions of
	// users fits, a corrupt length prefix fails fast.
	maxFrame = 1 << 30
	// readBufSize sizes the connection read buffer; large discovery
	// responses arrive in few reads.
	readBufSize = 1 << 16
)

// frameWriter owns one direction of a connection: a persistent gob encoder
// writing into a reusable buffer whose contents ship as one length-prefixed
// frame per message. Reusing the encoder sends type descriptions once and
// keeps the buffer's capacity warm, so a steady stream of large responses
// costs one memcpy and one write each instead of regrowing encode state
// from zero. Safe for concurrent use; an encode failure leaves the gob
// stream desynchronized, so callers must treat any error as fatal for the
// connection.
type frameWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf bytes.Buffer
	enc *gob.Encoder
}

func newFrameWriter(w io.Writer) *frameWriter {
	fw := &frameWriter{w: w}
	fw.enc = gob.NewEncoder(&fw.buf)
	return fw
}

// writeFrame encodes env and writes it as one frame, returning the wire
// bytes written.
func (fw *frameWriter) writeFrame(env interface{}) (int, error) {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	fw.buf.Reset()
	fw.buf.Write(make([]byte, frameHeader))
	if err := fw.enc.Encode(env); err != nil {
		return 0, err
	}
	frame := fw.buf.Bytes()
	binary.BigEndian.PutUint32(frame[:frameHeader], uint32(len(frame)-frameHeader))
	return fw.w.Write(frame)
}

// frameReader strips the length prefixes off the incoming frame sequence
// and presents the payloads to a persistent gob decoder as one continuous
// byte stream, enforcing the frame size limit and counting consumed wire
// bytes. EOF at a frame boundary is a clean EOF; EOF inside a header or
// payload surfaces as io.ErrUnexpectedEOF.
type frameReader struct {
	r    *bufio.Reader
	left int   // payload bytes remaining in the current frame
	n    int64 // total wire bytes consumed, headers included
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{r: bufio.NewReaderSize(r, readBufSize)}
}

func (fr *frameReader) Read(p []byte) (int, error) {
	for fr.left == 0 {
		var hdr [frameHeader]byte
		if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return 0, err // torn header
			}
			return 0, err // clean EOF between frames
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxFrame {
			return 0, fmt.Errorf("frame of %d bytes exceeds limit", n)
		}
		fr.left = int(n)
		fr.n += frameHeader
	}
	if len(p) > fr.left {
		p = p[:fr.left]
	}
	n, err := fr.r.Read(p)
	fr.left -= n
	fr.n += int64(n)
	if err == io.EOF && fr.left > 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// consumed returns the total wire bytes read so far.
func (fr *frameReader) consumed() int64 { return fr.n }

// Server serves a cloud.Server over TCP.
type Server struct {
	cs      *cloud.Server
	workers int

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer wraps a cloud server. Each connection executes its pipelined
// requests on a bounded worker pool sized max(4, GOMAXPROCS); tune with
// SetWorkersPerConn before Listen.
func NewServer(cs *cloud.Server) *Server {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	tmet.srvWorkers.Set(int64(workers))
	return &Server{cs: cs, workers: workers, conns: make(map[net.Conn]struct{})}
}

// SetWorkersPerConn bounds how many of one connection's pipelined requests
// execute concurrently (excess requests queue by backpressure: the
// connection's frames stop being read). Call before Listen. The effective
// value is surfaced as the transport.server.workers_per_conn gauge.
func (s *Server) SetWorkersPerConn(n int) {
	if n > 0 {
		s.workers = n
		tmet.srvWorkers.Set(int64(n))
	}
}

// Listen binds the given address ("127.0.0.1:0" for an ephemeral port) and
// starts accepting connections until Shutdown. It returns the bound
// address immediately; serving continues in background goroutines owned by
// the server.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	if err := s.Serve(ln); err != nil {
		return "", err
	}
	return ln.Addr().String(), nil
}

// Serve starts accepting connections from an already-bound listener until
// Shutdown; the server owns ln from here on and closes it at shutdown.
// Like Listen it returns immediately — serving continues in background
// goroutines. This is the hook fault-injection harnesses use to interpose
// a wrapped listener between the network and the server.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("transport: server already shut down")
	}
	s.listener = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		tmet.srvConns.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn decodes request frames as they arrive and hands each to the
// connection's worker pool; responses are written back in completion
// order, matched to callers by request ID.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		tmet.srvConns.Add(-1)
	}()
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, s.workers)
		fr   = newFrameReader(conn)
		dec  = gob.NewDecoder(fr)
		fw   = newFrameWriter(conn)
		dead atomic.Bool
		read int64
	)
	defer wg.Wait()
	for {
		var env reqEnvelope
		if err := dec.Decode(&env); err != nil {
			return // connection closed or corrupt stream
		}
		tmet.srvFrames.Inc()
		tmet.srvBytesIn.Add(fr.consumed() - read)
		read = fr.consumed()
		if dead.Load() {
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(env reqEnvelope) {
			defer wg.Done()
			defer func() { <-sem }()
			resp := s.dispatch(env.Req)
			if _, err := fw.writeFrame(&respEnvelope{ID: env.ID, Resp: resp}); err != nil {
				dead.Store(true)
				conn.Close()
			}
		}(env)
	}
}

// dispatch executes one request against the cloud server.
func (s *Server) dispatch(req *Request) *Response {
	resp := &Response{}
	if req == nil {
		resp.Err = "transport: empty request envelope"
		return resp
	}
	switch req.Method {
	case MethodPing:
	case MethodInstallIndex:
		if req.Index == nil {
			resp.Err = "transport: missing index"
			break
		}
		s.cs.SetIndex(req.Index)
	case MethodInstallDyn:
		if req.DynIndex == nil {
			resp.Err = "transport: missing dynamic index"
			break
		}
		s.cs.SetDynIndex(req.DynIndex)
	case MethodSecRec:
		ids, profiles, err := s.cs.SecRec(req.Trapdoor)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.IDs = ids
		resp.Profiles = profiles
	case MethodSecRecBatch:
		ids, profiles, err := s.cs.SecRecBatch(req.Trapdoors)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.BatchIDs = ids
		resp.BatchProfiles = profiles
	case MethodFetchProfiles:
		profiles, err := s.cs.FetchProfiles(req.IDs)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.Profiles = profiles
	case MethodFetchProfilesSparse:
		profiles, err := s.cs.FetchProfilesSparse(req.IDs)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.Profiles = profiles
	case MethodPutProfile:
		for id, ct := range req.Profiles {
			s.cs.PutProfile(id, ct)
		}
	case MethodDeleteProfile:
		s.cs.DeleteProfile(req.UserID)
	case MethodFetchBuckets:
		buckets, err := s.cs.FetchBuckets(req.Refs)
		if err != nil {
			resp.Err = err.Error()
			break
		}
		resp.Buckets = buckets
	case MethodStoreBuckets:
		if req.Version > 0 {
			if err := s.cs.StoreBucketsVersioned(req.Refs, req.Buckets, req.Version); err != nil {
				resp.Err = err.Error()
			}
			break
		}
		if err := s.cs.StoreBuckets(req.Refs, req.Buckets); err != nil {
			resp.Err = err.Error()
		}
	case MethodVersion:
		resp.Version = s.cs.Version()
	case MethodSetVersion:
		s.cs.ApplyVersion(req.Version)
	case MethodProfileIDs:
		resp.IDs = s.cs.ProfileIDs()
	case MethodStoreImage:
		s.cs.StoreImages(req.UserID, req.Blob)
	case MethodFetchImages:
		resp.Blobs = s.cs.Images(req.UserID)
	default:
		resp.Err = fmt.Sprintf("transport: unknown method %q", req.Method)
	}
	return resp
}

// Shutdown stops accepting, closes every connection and waits for all
// serving goroutines to exit.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.listener != nil {
		s.listener.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("transport: shutdown: %w", ctx.Err())
	}
}

// Client is a remote handle to a cloud server. It is safe for concurrent
// use and pipelines: any number of callers share the one connection, each
// call writes its frame immediately and waits only for its own response,
// dispatched by request ID from a single reader goroutine.
type Client struct {
	conn net.Conn
	fw   *frameWriter // the connection's outbound gob stream

	mu      sync.Mutex
	pending map[uint64]chan *Response
	nextID  uint64
	timeout time.Duration
	broken  error // set once the connection is unusable; sticky

	// sentBytes / recvBytes accumulate exact framed wire traffic for the
	// bandwidth experiments.
	sentBytes atomic.Int64
	recvBytes atomic.Int64
}

// Compile-time checks: the client presents the same surfaces as the
// in-process cloud server.
var _ core.BucketStore = (*Client)(nil)

// Dial connects to a transport server. A failed dial returns a ConnError.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, nil)
}

// Dialer opens the raw connection a client multiplexes its calls over.
// It exists so tests can interpose fault-injecting wrappers between the
// client and the network; nil means plain net.Dial("tcp", addr).
type Dialer func(addr string) (net.Conn, error)

// DialWith is Dial with an injectable connection factory. Errors from the
// dialer are wrapped as ConnErrors so pool retry logic treats a failed
// dial like any other connection-level fault.
func DialWith(addr string, dial Dialer) (*Client, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	tmet.dials.Inc()
	conn, err := dial(addr)
	if err != nil {
		tmet.dialErrors.Inc()
		return nil, &ConnError{Op: "dial", Err: err}
	}
	c := &Client{conn: conn, fw: newFrameWriter(conn), pending: make(map[uint64]chan *Response)}
	go c.readLoop()
	return c, nil
}

// Close tears down the connection; in-flight calls fail with a ConnError.
func (c *Client) Close() error { return c.conn.Close() }

// SetTimeout bounds how long every subsequent call waits for its response;
// zero disables the bound. Per-call context deadlines (the ...Context
// variants) compose with this connection-global bound: the earlier
// deadline wins. A timed-out call fails with a ConnError but leaves the
// multiplexed connection fully usable — the late response is discarded by
// its request ID when it eventually arrives.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.timeout = d
}

// Traffic returns the cumulative framed request and response bytes.
func (c *Client) Traffic() (sent, received int64) {
	return c.sentBytes.Load(), c.recvBytes.Load()
}

// readLoop is the single response reader: it decodes response frames as
// the server finishes requests (not necessarily in request order) and
// routes each to the waiting caller by ID. Responses whose caller gave up
// (timeout or cancellation) find no pending entry and are dropped.
func (c *Client) readLoop() {
	fr := newFrameReader(c.conn)
	dec := gob.NewDecoder(fr)
	for {
		var env respEnvelope
		if err := dec.Decode(&env); err != nil {
			c.fail(&ConnError{Op: "receive", Err: err})
			return
		}
		tmet.framesIn.Inc()
		tmet.bytesIn.Add(fr.consumed() - c.recvBytes.Load())
		c.recvBytes.Store(fr.consumed())
		c.mu.Lock()
		ch, ok := c.pending[env.ID]
		if ok {
			delete(c.pending, env.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- env.Resp // buffered; never blocks
		} else {
			tmet.lateDrops.Inc()
		}
	}
}

// fail marks the connection broken and releases every waiting caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
		tmet.connFails.Inc()
	}
	waiting := c.pending
	c.pending = make(map[uint64]chan *Response)
	c.mu.Unlock()
	for _, ch := range waiting {
		close(ch)
	}
	c.conn.Close()
}

// forget abandons a pending call (its caller stopped waiting). A response
// arriving later is skipped by ID in readLoop.
func (c *Client) forget(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// call performs one exchange without a per-call deadline.
func (c *Client) call(req *Request) (*Response, error) {
	return c.callContext(context.Background(), req)
}

// callContext performs one pipelined exchange bounded by ctx and the
// connection-global timeout (earlier wins). The request frame is written
// immediately — concurrent calls interleave on the connection — and the
// caller waits only for its own response. Expiry or cancellation abandons
// the call without disturbing the connection.
func (c *Client) callContext(ctx context.Context, req *Request) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, &ConnError{Op: "call", Err: err}
	}
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan *Response, 1)
	c.pending[id] = ch
	timeout := c.timeout
	c.mu.Unlock()
	tmet.inflight.Add(1)
	defer tmet.inflight.Add(-1)

	n, werr := c.fw.writeFrame(&reqEnvelope{ID: id, Req: req})
	if werr != nil {
		// Both encode and write failures poison the outbound gob stream;
		// the connection cannot be trusted for further calls.
		c.forget(id)
		c.fail(&ConnError{Op: "send", Err: werr})
		return nil, &ConnError{Op: "send", Err: werr}
	}
	c.sentBytes.Add(int64(n))
	tmet.framesOut.Inc()
	tmet.bytesOut.Add(int64(n))

	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		defer timer.Stop()
		expired = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.broken
			c.mu.Unlock()
			return nil, err
		}
		if resp.Err != "" {
			return nil, &RemoteError{Msg: resp.Err}
		}
		return resp, nil
	case <-ctx.Done():
		c.forget(id)
		tmet.timeouts.Inc()
		return nil, &ConnError{Op: "call", Err: ctx.Err()}
	case <-expired:
		c.forget(id)
		tmet.timeouts.Inc()
		return nil, &ConnError{Op: "call", Err: context.DeadlineExceeded}
	}
}

// InstallIndex outsources a freshly built static index to the cloud.
func (c *Client) InstallIndex(idx *core.Index) error {
	return c.InstallIndexContext(context.Background(), idx)
}

// InstallIndexContext is InstallIndex bounded by ctx.
func (c *Client) InstallIndexContext(ctx context.Context, idx *core.Index) error {
	_, err := c.callContext(ctx, &Request{Method: MethodInstallIndex, Index: idx})
	return err
}

// InstallDynIndex outsources a dynamic index to the cloud.
func (c *Client) InstallDynIndex(idx *core.DynIndex) error {
	return c.InstallDynIndexContext(context.Background(), idx)
}

// InstallDynIndexContext is InstallDynIndex bounded by ctx.
func (c *Client) InstallDynIndexContext(ctx context.Context, idx *core.DynIndex) error {
	_, err := c.callContext(ctx, &Request{Method: MethodInstallDyn, DynIndex: idx})
	return err
}

// Ping checks liveness.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext is Ping bounded by ctx.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.callContext(ctx, &Request{Method: MethodPing})
	return err
}

// SecRec implements frontend.DiscoveryServer remotely.
func (c *Client) SecRec(t *core.Trapdoor) ([]uint64, [][]byte, error) {
	return c.SecRecContext(context.Background(), t)
}

// SecRecContext is SecRec bounded by ctx — the fan-out primitive a shard
// pool uses to put a per-shard deadline on each discovery leg.
func (c *Client) SecRecContext(ctx context.Context, t *core.Trapdoor) ([]uint64, [][]byte, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodSecRec, Trapdoor: t})
	if err != nil {
		return nil, nil, err
	}
	return resp.IDs, resp.Profiles, nil
}

// maxBatchPerRPC caps how many trapdoors ride in a single SecRecBatch
// wire exchange. Each recalled profile is a few hundred KB of ciphertext,
// and gob allocates a fresh buffer for every message it reads — once a
// response message crosses ~10 MB the stdlib additionally grows that
// buffer by chunked appends, copying the payload several times over.
// Keeping messages bounded and pipelining the sub-batches concurrently
// on the multiplexed connection is strictly faster than one giant frame.
const maxBatchPerRPC = 8

// SecRecBatch implements frontend.BatchDiscoveryServer remotely: q
// trapdoors resolved with per-query results identical to q serial SecRec
// calls. Large batches are split into sub-batches of maxBatchPerRPC
// queries issued concurrently over the shared connection, so the server
// streams bounded response messages instead of one giant frame.
func (c *Client) SecRecBatch(ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	return c.SecRecBatchContext(context.Background(), ts)
}

// SecRecBatchContext is SecRecBatch bounded by ctx.
func (c *Client) SecRecBatchContext(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	if len(ts) <= maxBatchPerRPC {
		resp, err := c.callContext(ctx, &Request{Method: MethodSecRecBatch, Trapdoors: ts})
		if err != nil {
			return nil, nil, err
		}
		return resp.BatchIDs, resp.BatchProfiles, nil
	}
	ids := make([][]uint64, len(ts))
	profiles := make([][][]byte, len(ts))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for lo := 0; lo < len(ts); lo += maxBatchPerRPC {
		hi := lo + maxBatchPerRPC
		if hi > len(ts) {
			hi = len(ts)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			resp, err := c.callContext(ctx, &Request{Method: MethodSecRecBatch, Trapdoors: ts[lo:hi]})
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			if len(resp.BatchIDs) != hi-lo || len(resp.BatchProfiles) != hi-lo {
				errOnce.Do(func() {
					firstErr = fmt.Errorf("transport: sub-batch of %d queries answered with %d/%d results",
						hi-lo, len(resp.BatchIDs), len(resp.BatchProfiles))
				})
				return
			}
			copy(ids[lo:hi], resp.BatchIDs)
			copy(profiles[lo:hi], resp.BatchProfiles)
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return ids, profiles, nil
}

// FetchProfiles implements frontend.ProfileFetcher remotely.
func (c *Client) FetchProfiles(ids []uint64) ([][]byte, error) {
	return c.FetchProfilesContext(context.Background(), ids)
}

// FetchProfilesContext is FetchProfiles bounded by ctx.
func (c *Client) FetchProfilesContext(ctx context.Context, ids []uint64) ([][]byte, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodFetchProfiles, IDs: ids})
	if err != nil {
		return nil, err
	}
	return resp.Profiles, nil
}

// FetchProfilesSparse is FetchProfiles with gap tolerance: unknown
// identifiers answer as empty entries instead of failing the batch. Gob
// flattens a nil entry to an empty one, so absence is signalled by
// len(out[i]) == 0 at every tier (present ciphertexts are never empty).
func (c *Client) FetchProfilesSparse(ids []uint64) ([][]byte, error) {
	resp, err := c.callContext(context.Background(), &Request{Method: MethodFetchProfilesSparse, IDs: ids})
	if err != nil {
		return nil, err
	}
	// A sparse response may drop trailing empty entries in transit;
	// restore request alignment.
	profiles := resp.Profiles
	for len(profiles) < len(ids) {
		profiles = append(profiles, nil)
	}
	return profiles, nil
}

// PutProfiles uploads encrypted profiles.
func (c *Client) PutProfiles(profiles map[uint64][]byte) error {
	return c.PutProfilesContext(context.Background(), profiles)
}

// PutProfilesContext is PutProfiles bounded by ctx.
func (c *Client) PutProfilesContext(ctx context.Context, profiles map[uint64][]byte) error {
	_, err := c.callContext(ctx, &Request{Method: MethodPutProfile, Profiles: profiles})
	return err
}

// DeleteProfile removes an encrypted profile.
func (c *Client) DeleteProfile(id uint64) error {
	return c.DeleteProfileContext(context.Background(), id)
}

// DeleteProfileContext is DeleteProfile bounded by ctx.
func (c *Client) DeleteProfileContext(ctx context.Context, id uint64) error {
	_, err := c.callContext(ctx, &Request{Method: MethodDeleteProfile, UserID: id})
	return err
}

// FetchBuckets implements core.BucketStore remotely.
func (c *Client) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	return c.FetchBucketsContext(context.Background(), refs)
}

// FetchBucketsContext is FetchBuckets bounded by ctx.
func (c *Client) FetchBucketsContext(ctx context.Context, refs []core.BucketRef) ([]core.DynBucket, error) {
	resp, err := c.callContext(ctx, &Request{Method: MethodFetchBuckets, Refs: refs})
	if err != nil {
		return nil, err
	}
	return resp.Buckets, nil
}

// StoreBuckets implements core.BucketStore remotely.
func (c *Client) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	return c.StoreBucketsContext(context.Background(), refs, buckets)
}

// StoreBucketsContext is StoreBuckets bounded by ctx.
func (c *Client) StoreBucketsContext(ctx context.Context, refs []core.BucketRef, buckets []core.DynBucket) error {
	_, err := c.callContext(ctx, &Request{Method: MethodStoreBuckets, Refs: refs, Buckets: buckets})
	return err
}

// StoreImage uploads one encrypted image blob for a user.
func (c *Client) StoreImage(userID uint64, blob []byte) error {
	_, err := c.call(&Request{Method: MethodStoreImage, UserID: userID, Blob: blob})
	return err
}

// FetchImages downloads a user's encrypted images.
func (c *Client) FetchImages(userID uint64) ([][]byte, error) {
	resp, err := c.call(&Request{Method: MethodFetchImages, UserID: userID})
	if err != nil {
		return nil, err
	}
	return resp.Blobs, nil
}
