package transport

import (
	"encoding/gob"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"pisd/internal/frontend"
)

// TestPipelinedDiscoveriesShareOneClient drives many goroutines through a
// single multiplexed client — the pipelining the framed protocol exists
// for — and checks every interleaved result against the serial reference.
// Run under -race this also proves the client's pending-map and writer
// synchronisation.
func TestPipelinedDiscoveriesShareOneClient(t *testing.T) {
	_, client := startServer(t)
	f := testFrontend(t)
	uploads, ds := testUploads(t, f, 300)
	idx, encProfiles, err := f.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallIndex(idx); err != nil {
		t.Fatal(err)
	}
	if err := client.PutProfiles(encProfiles); err != nil {
		t.Fatal(err)
	}

	const goroutines, queriesPer = 8, 6
	want := make([][]frontend.Match, goroutines*queriesPer)
	for q := range want {
		m, err := f.Discover(client, ds.Profiles[q%len(ds.Profiles)], 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = m
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < queriesPer; i++ {
				q := g*queriesPer + i
				got, err := f.Discover(client, ds.Profiles[q%len(ds.Profiles)], 5, 0)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want[q]) {
					t.Errorf("pipelined query %d: %+v, want %+v", q, got, want[q])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("pipelined discovery: %v", err)
	}
}

// TestLateResponseSkippedByID is the regression test for the old
// protocol's documented wart: a timed-out call used to leave the stream
// with an unread response, poisoning the next exchange. With request-ID
// multiplexing the late response is dropped by its ID and the connection
// stays usable.
func TestLateResponseSkippedByID(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A frame-speaking server that answers the FIRST request late (after
	// the client's timeout) and with a poisoned error body; every later
	// request is answered immediately and cleanly. If the client matched
	// responses by arrival order instead of ID, the poisoned body would
	// surface on the second call.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := gob.NewDecoder(newFrameReader(conn))
		fw := newFrameWriter(conn)
		first := true
		for {
			var env reqEnvelope
			if err := dec.Decode(&env); err != nil {
				return
			}
			resp := &Response{}
			var delay time.Duration
			if first {
				first = false
				delay = 400 * time.Millisecond
				resp.Err = "stale response that must be skipped"
			}
			go func(id uint64, resp *Response, delay time.Duration) {
				time.Sleep(delay)
				fw.writeFrame(&respEnvelope{ID: id, Resp: resp})
			}(env.ID, resp, delay)
		}
	}()

	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetTimeout(100 * time.Millisecond)

	// First call times out; its response is still in flight.
	if err := client.Ping(); err == nil {
		t.Fatal("ping answered late succeeded")
	} else if !IsConnError(err) {
		t.Fatalf("timeout surfaced %T (%v), want *ConnError", err, err)
	}
	// Second call must get ITS response, not the abandoned call's.
	if err := client.Ping(); err != nil {
		t.Fatalf("ping after timed-out call: %v", err)
	}
	// Let the stale response for the first request arrive and be dropped,
	// then prove the connection is still healthy.
	time.Sleep(450 * time.Millisecond)
	if err := client.Ping(); err != nil {
		t.Fatalf("ping after stale response arrived: %v", err)
	}
}

// TestSecRecBatchOverTransport checks the batched endpoint end to end:
// per-query results over TCP must match the serial SecRec calls exactly.
func TestSecRecBatchOverTransport(t *testing.T) {
	_, client := startServer(t)
	f := testFrontend(t)
	uploads, ds := testUploads(t, f, 300)
	idx, encProfiles, err := f.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.InstallIndex(idx); err != nil {
		t.Fatal(err)
	}
	if err := client.PutProfiles(encProfiles); err != nil {
		t.Fatal(err)
	}

	tds, err := f.Trapdoors(ds.Profiles[:16])
	if err != nil {
		t.Fatal(err)
	}
	ids, profiles, err := client.SecRecBatch(tds)
	if err != nil {
		t.Fatalf("SecRecBatch: %v", err)
	}
	if len(ids) != len(tds) || len(profiles) != len(tds) {
		t.Fatalf("batch of %d answered with %d/%d results", len(tds), len(ids), len(profiles))
	}
	for q, td := range tds {
		wantIDs, wantProfiles, err := client.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ids[q], wantIDs) {
			t.Fatalf("query %d ids: %v, want %v", q, ids[q], wantIDs)
		}
		if !reflect.DeepEqual(profiles[q], wantProfiles) {
			t.Fatalf("query %d profiles differ from serial SecRec", q)
		}
	}
	// Empty batch is a no-op, not an error.
	if _, _, err := client.SecRecBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
