package groups

import (
	"reflect"
	"testing"
)

func nb(pairs ...interface{}) []Neighbor {
	out := make([]Neighbor, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Neighbor{ID: uint64(pairs[i].(int)), Distance: pairs[i+1].(float64)})
	}
	return out
}

func TestDiscoverMutualComponents(t *testing.T) {
	// Two tight pairs {1,2} and {3,4,5}; user 6 likes 1 but not mutually.
	neighbors := map[uint64][]Neighbor{
		1: nb(2, 0.1),
		2: nb(1, 0.1),
		3: nb(4, 0.2, 5, 0.3),
		4: nb(3, 0.2),
		5: nb(3, 0.3),
		6: nb(1, 0.5), // one-way: 1 does not list 6
	}
	groups, err := Discover(neighbors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups: %+v", len(groups), groups)
	}
	// Largest first.
	if !reflect.DeepEqual(groups[0].Members, []uint64{3, 4, 5}) {
		t.Errorf("group 0 = %v", groups[0].Members)
	}
	if !reflect.DeepEqual(groups[1].Members, []uint64{1, 2}) {
		t.Errorf("group 1 = %v", groups[1].Members)
	}
	if groups[1].Cohesion != 0.1 {
		t.Errorf("pair cohesion = %v", groups[1].Cohesion)
	}
	// User 6's one-way edge must not create a group.
	for _, g := range groups {
		for _, m := range g.Members {
			if m == 6 {
				t.Error("one-way admirer joined a group under mutual mode")
			}
		}
	}
}

func TestDiscoverNonMutualMerges(t *testing.T) {
	neighbors := map[uint64][]Neighbor{
		1: nb(2, 0.4),
		2: nb(3, 0.4),
		3: nb(1, 0.4),
	}
	opts := Options{MinSize: 2, Mutual: false}
	groups, err := Discover(neighbors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || !reflect.DeepEqual(groups[0].Members, []uint64{1, 2, 3}) {
		t.Fatalf("non-mutual groups: %+v", groups)
	}
	// Under mutual mode the same input yields nothing (no reciprocity).
	groups, err = Discover(neighbors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("mutual mode groups: %+v", groups)
	}
}

func TestMinSizeFilter(t *testing.T) {
	neighbors := map[uint64][]Neighbor{
		1: nb(2, 0.1),
		2: nb(1, 0.1),
	}
	opts := Options{MinSize: 3, Mutual: true}
	groups, err := Discover(neighbors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Fatalf("pair survived MinSize=3: %+v", groups)
	}
	if _, err := Discover(neighbors, Options{MinSize: 0}); err == nil {
		t.Error("MinSize=0 accepted")
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	neighbors := map[uint64][]Neighbor{
		1: nb(1, 0.0, 2, 0.2),
		2: nb(1, 0.2),
	}
	groups, err := Discover(neighbors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0].Members) != 2 {
		t.Fatalf("groups: %+v", groups)
	}
}

func TestCohesionOrdering(t *testing.T) {
	neighbors := map[uint64][]Neighbor{
		1: nb(2, 0.9),
		2: nb(1, 0.9),
		3: nb(4, 0.1),
		4: nb(3, 0.1),
	}
	groups, err := Discover(neighbors, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups: %+v", groups)
	}
	// Equal size: tighter cohesion first.
	if groups[0].Cohesion > groups[1].Cohesion {
		t.Errorf("cohesion order wrong: %+v", groups)
	}
}

func TestEmptyInput(t *testing.T) {
	groups, err := Discover(nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 0 {
		t.Errorf("groups from nothing: %+v", groups)
	}
}
