// Package groups implements the paper's second motivating application
// (Sec. I: "suggesting new friends and discovering new social groups with
// similar interests"): turning per-user secure discovery results into
// social groups. The front end runs its usual privacy-preserving top-k
// discovery for each member, then clusters the resulting neighbourhood
// graph — the cloud never sees anything beyond the ordinary trapdoor
// queries.
//
// Grouping is mutual-kNN clustering: an edge connects two users when each
// appears in the other's top-k (the standard robust construction — one-way
// edges let hub users glue unrelated interest clusters together), and
// groups are the connected components, ranked by cohesion.
package groups

import (
	"fmt"
	"sort"
)

// Neighbor is one discovery result for a user.
type Neighbor struct {
	ID       uint64
	Distance float64
}

// Group is one discovered social group.
type Group struct {
	// Members in ascending id order.
	Members []uint64
	// Cohesion is the mean profile distance over the group's edges;
	// smaller = tighter shared interests.
	Cohesion float64
}

// Options tunes group discovery.
type Options struct {
	// MinSize drops groups with fewer members (default 2).
	MinSize int
	// Mutual requires edges to be reciprocal top-k hits (default true
	// via DefaultOptions; one-way edges over-merge through hub users).
	Mutual bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{MinSize: 2, Mutual: true}
}

// Discover clusters the neighbourhood lists into groups. neighbors maps
// each user to their (already ranked) discovery results; users absent
// from the map can still appear as neighbours and join groups through
// mutual edges only if they have their own list (otherwise mutuality
// cannot be established and the edge is dropped).
func Discover(neighbors map[uint64][]Neighbor, opts Options) ([]Group, error) {
	if opts.MinSize < 1 {
		return nil, fmt.Errorf("groups: min size must be >= 1, got %d", opts.MinSize)
	}
	// Edge set with distances.
	type edge struct {
		a, b uint64
		dist float64
	}
	inList := func(list []Neighbor, id uint64) (float64, bool) {
		for _, n := range list {
			if n.ID == id {
				return n.Distance, true
			}
		}
		return 0, false
	}
	var edges []edge
	for u, list := range neighbors {
		for _, n := range list {
			if n.ID == u {
				continue
			}
			if opts.Mutual {
				if u > n.ID {
					continue // handle each unordered pair once, from the smaller id
				}
				back, ok := inList(neighbors[n.ID], u)
				if !ok {
					continue
				}
				edges = append(edges, edge{a: u, b: n.ID, dist: (n.Distance + back) / 2})
			} else {
				edges = append(edges, edge{a: u, b: n.ID, dist: n.Distance})
			}
		}
	}

	// Union-find over all endpoint ids.
	parent := make(map[uint64]uint64)
	var find func(uint64) uint64
	find = func(x uint64) uint64 {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	ensure := func(x uint64) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	for _, e := range edges {
		ensure(e.a)
		ensure(e.b)
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Aggregate components.
	members := make(map[uint64][]uint64)
	for x := range parent {
		r := find(x)
		members[r] = append(members[r], x)
	}
	distSum := make(map[uint64]float64)
	edgeCount := make(map[uint64]int)
	for _, e := range edges {
		r := find(e.a)
		distSum[r] += e.dist
		edgeCount[r]++
	}

	var out []Group
	for r, ms := range members {
		if len(ms) < opts.MinSize {
			continue
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		g := Group{Members: ms}
		if edgeCount[r] > 0 {
			g.Cohesion = distSum[r] / float64(edgeCount[r])
		}
		out = append(out, g)
	}
	// Largest and tightest groups first; id tiebreak for determinism.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		if out[i].Cohesion != out[j].Cohesion {
			return out[i].Cohesion < out[j].Cohesion
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out, nil
}
