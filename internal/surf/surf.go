// Package surf is a from-scratch Go port of the Speeded-Up Robust Features
// extractor (Bay, Ess, Tuytelaars, Van Gool, CVIU 2008) the paper uses via
// OpenCV: a Determinant-of-Hessian interest point detector built on
// integral-image box filters, followed by 64-dimensional Haar-wavelet
// descriptors.
//
// The implementation follows the standard box-filter approximation: for a
// filter of size s (9, 15, 21, ...) the second-order Gaussian derivatives
// Dxx, Dyy, Dxy are rectangles over the integral image, the blob response
// is det(H) ≈ DxxDyy − (0.9·Dxy)², and interest points are 3×3×3 non-maxima
// suppressed across the scale stack. Descriptors are upright SURF (U-SURF):
// 4×4 subregions around the point, each accumulating (Σdx, Σ|dx|, Σdy,
// Σ|dy|) of Gaussian-weighted Haar responses, L2-normalized to 64 values —
// rotation invariance is irrelevant for the paper's visual-word statistics
// and U-SURF is the variant Bay et al. recommend for upright imagery.
package surf

import (
	"fmt"
	"math"
	"sort"

	"pisd/internal/imaging"
)

// DescriptorSize is the dimensionality of a SURF descriptor.
const DescriptorSize = 64

// Descriptor is one 64-dimensional SURF feature vector.
type Descriptor [DescriptorSize]float64

// Slice returns the descriptor as a []float64 (copy-free view).
func (d *Descriptor) Slice() []float64 { return d[:] }

// InterestPoint is a detected blob.
type InterestPoint struct {
	// X, Y is the pixel position.
	X, Y int
	// Scale is the SURF scale σ ≈ 1.2·s/9 of the detecting filter.
	Scale float64
	// Response is the determinant-of-Hessian value.
	Response float64
	// Laplacian is the sign of Dxx+Dyy (bright/dark blob), useful for
	// fast matching.
	Laplacian int
}

// Options tunes the extractor.
type Options struct {
	// Threshold is the minimum DoH response to keep a point.
	Threshold float64
	// MaxPoints caps the number of interest points (strongest first);
	// 0 means unlimited.
	MaxPoints int
	// FilterSizes is the scale stack of box filter sizes; each must be an
	// odd multiple of 3. Consecutive triples form NMS groups.
	FilterSizes []int
	// Step is the pixel sampling stride of the response maps.
	Step int
}

// DefaultOptions returns the extractor configuration used throughout the
// experiments.
func DefaultOptions() Options {
	return Options{
		Threshold:   1e-4,
		MaxPoints:   200,
		FilterSizes: []int{9, 15, 21, 27, 39, 51},
		Step:        1,
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if len(o.FilterSizes) < 3 {
		return fmt.Errorf("surf: need at least 3 filter sizes, got %d", len(o.FilterSizes))
	}
	for _, s := range o.FilterSizes {
		if s < 9 || s%2 == 0 || s%3 != 0 {
			return fmt.Errorf("surf: filter size %d must be an odd multiple of 3 and >= 9", s)
		}
	}
	if o.Step < 1 {
		return fmt.Errorf("surf: step must be >= 1, got %d", o.Step)
	}
	if o.Threshold < 0 {
		return fmt.Errorf("surf: threshold must be >= 0, got %v", o.Threshold)
	}
	return nil
}

// responseLayer is the DoH response map of one filter size.
type responseLayer struct {
	size      int
	responses []float64
	laplacian []int8
	w, h      int
}

func (l *responseLayer) at(x, y int) float64 {
	if x < 0 || y < 0 || x >= l.w || y >= l.h {
		return 0
	}
	return l.responses[y*l.w+x]
}

// buildLayer computes the DoH response of one box-filter size over the
// whole image (sampled at stride step).
func buildLayer(it *imaging.Integral, size, step int) *responseLayer {
	w := it.W / step
	h := it.H / step
	l := &responseLayer{size: size, w: w, h: h,
		responses: make([]float64, w*h), laplacian: make([]int8, w*h)}
	lobe := size / 3
	border := (size - 1) / 2
	inv := 1.0 / float64(size*size)
	for ry := 0; ry < h; ry++ {
		r := ry * step
		for rx := 0; rx < w; rx++ {
			c := rx * step
			if r < border || c < border || r >= it.H-border || c >= it.W-border {
				continue
			}
			// Dxx: full 2l-1 x s band minus 3x the middle third.
			dxx := it.BoxSum(r-lobe+1, c-border, 2*lobe-1, size) -
				3*it.BoxSum(r-lobe+1, c-lobe/2, 2*lobe-1, lobe)
			// Dyy: transpose of Dxx.
			dyy := it.BoxSum(r-border, c-lobe+1, size, 2*lobe-1) -
				3*it.BoxSum(r-lobe/2, c-lobe+1, lobe, 2*lobe-1)
			// Dxy: four diagonal lobes.
			dxy := it.BoxSum(r-lobe, c+1, lobe, lobe) +
				it.BoxSum(r+1, c-lobe, lobe, lobe) -
				it.BoxSum(r-lobe, c-lobe, lobe, lobe) -
				it.BoxSum(r+1, c+1, lobe, lobe)
			dxx *= inv
			dyy *= inv
			dxy *= inv
			det := dxx*dyy - 0.81*dxy*dxy
			l.responses[ry*w+rx] = det
			if dxx+dyy >= 0 {
				l.laplacian[ry*w+rx] = 1
			} else {
				l.laplacian[ry*w+rx] = -1
			}
		}
	}
	return l
}

// Detect finds interest points in the integral image.
func Detect(it *imaging.Integral, o Options) ([]InterestPoint, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	layers := make([]*responseLayer, len(o.FilterSizes))
	for i, s := range o.FilterSizes {
		layers[i] = buildLayer(it, s, o.Step)
	}
	var points []InterestPoint
	// 3x3x3 non-maximum suppression over each interior scale layer.
	for li := 1; li < len(layers)-1; li++ {
		bottom, mid, top := layers[li-1], layers[li], layers[li+1]
		for y := 1; y < mid.h-1; y++ {
			for x := 1; x < mid.w-1; x++ {
				v := mid.at(x, y)
				if v < o.Threshold {
					continue
				}
				if !isMaximum(v, x, y, bottom, mid, top) {
					continue
				}
				points = append(points, InterestPoint{
					X:         x * o.Step,
					Y:         y * o.Step,
					Scale:     1.2 * float64(mid.size) / 9.0,
					Response:  v,
					Laplacian: int(mid.laplacian[y*mid.w+x]),
				})
			}
		}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Response > points[j].Response })
	if o.MaxPoints > 0 && len(points) > o.MaxPoints {
		points = points[:o.MaxPoints]
	}
	return points, nil
}

// isMaximum reports whether v strictly dominates its 26 scale-space
// neighbours.
func isMaximum(v float64, x, y int, bottom, mid, top *responseLayer) bool {
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if bottom.at(x+dx, y+dy) >= v || top.at(x+dx, y+dy) >= v {
				return false
			}
			if (dx != 0 || dy != 0) && mid.at(x+dx, y+dy) >= v {
				return false
			}
		}
	}
	return true
}

// haarX computes the Haar wavelet response in x at (x, y) with the given
// radius (filter size 2·radius).
func haarX(it *imaging.Integral, x, y, radius int) float64 {
	return it.BoxSum(y-radius, x, radius*2, radius) -
		it.BoxSum(y-radius, x-radius, radius*2, radius)
}

// haarY computes the Haar wavelet response in y.
func haarY(it *imaging.Integral, x, y, radius int) float64 {
	return it.BoxSum(y, x-radius, radius, radius*2) -
		it.BoxSum(y-radius, x-radius, radius, radius*2)
}

// Describe computes the upright 64-D descriptor of one interest point.
func Describe(it *imaging.Integral, p InterestPoint) Descriptor {
	var d Descriptor
	s := p.Scale
	radius := int(math.Round(s))
	if radius < 1 {
		radius = 1
	}
	idx := 0
	// 4x4 subregions of 5x5 samples, sample spacing s.
	for sy := -2; sy < 2; sy++ {
		for sx := -2; sx < 2; sx++ {
			var dxSum, adxSum, dySum, adySum float64
			for iy := 0; iy < 5; iy++ {
				for ix := 0; ix < 5; ix++ {
					// Sample position relative to the point.
					ox := (float64(sx*5+ix) + 0.5) * s
					oy := (float64(sy*5+iy) + 0.5) * s
					px := p.X + int(math.Round(ox))
					py := p.Y + int(math.Round(oy))
					g := gauss(ox, oy, 3.3*s)
					dx := g * haarX(it, px, py, radius)
					dy := g * haarY(it, px, py, radius)
					dxSum += dx
					adxSum += math.Abs(dx)
					dySum += dy
					adySum += math.Abs(dy)
				}
			}
			d[idx] = dxSum
			d[idx+1] = adxSum
			d[idx+2] = dySum
			d[idx+3] = adySum
			idx += 4
		}
	}
	// L2 normalization for contrast invariance.
	var norm float64
	for _, v := range d {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range d {
			d[i] *= inv
		}
	}
	return d
}

func gauss(x, y, sigma float64) float64 {
	return math.Exp(-(x*x + y*y) / (2 * sigma * sigma))
}

// Extract runs detection and description on an image: the user-side
// feature extraction step of GenProf.
func Extract(im *imaging.Image, o Options) ([]Descriptor, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	it := imaging.NewIntegral(im)
	points, err := Detect(it, o)
	if err != nil {
		return nil, err
	}
	descs := make([]Descriptor, len(points))
	for i, p := range points {
		descs[i] = Describe(it, p)
	}
	return descs, nil
}
