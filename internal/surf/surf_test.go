package surf

import (
	"math"
	"testing"

	"pisd/internal/imaging"
	"pisd/internal/vec"
)

func TestOptionsValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Options)
	}{
		{"too few sizes", func(o *Options) { o.FilterSizes = []int{9, 15} }},
		{"even size", func(o *Options) { o.FilterSizes = []int{9, 15, 20} }},
		{"not multiple of 3", func(o *Options) { o.FilterSizes = []int{9, 15, 25} }},
		{"too small", func(o *Options) { o.FilterSizes = []int{3, 9, 15} }},
		{"zero step", func(o *Options) { o.Step = 0 }},
		{"negative threshold", func(o *Options) { o.Threshold = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := DefaultOptions()
			tt.mut(&o)
			if err := o.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

// A bright disk on dark background is the canonical blob: the detector
// must fire at (or very near) its center.
func TestDetectFindsBlob(t *testing.T) {
	im := imaging.NewImage(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			dx, dy := float64(x-48), float64(y-48)
			if dx*dx+dy*dy < 9*9 {
				im.Set(x, y, 1)
			}
		}
	}
	it := imaging.NewIntegral(im)
	points, err := Detect(it, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no interest points on a perfect blob")
	}
	best := points[0]
	if math.Hypot(float64(best.X-48), float64(best.Y-48)) > 6 {
		t.Errorf("strongest point at (%d,%d), want near (48,48)", best.X, best.Y)
	}
	if best.Laplacian != 1 {
		// Bright blob on dark background: positive Laplacian by SURF's
		// sign convention (Dxx+Dyy of the inverted box response). Accept
		// either but require consistency across detections at the center.
		t.Logf("laplacian = %d", best.Laplacian)
	}
}

func TestDetectFlatImageFindsNothing(t *testing.T) {
	im := imaging.NewImage(96, 96)
	for i := range im.Pix {
		im.Pix[i] = 0.5
	}
	points, err := Detect(imaging.NewIntegral(im), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Errorf("flat image produced %d interest points", len(points))
	}
}

func TestDetectMaxPointsAndOrdering(t *testing.T) {
	im, err := imaging.Render(imaging.TopicBuilding, 3, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	o := DefaultOptions()
	o.MaxPoints = 10
	points, err := Detect(imaging.NewIntegral(im), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) > 10 {
		t.Fatalf("MaxPoints not enforced: %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Response > points[i-1].Response {
			t.Fatal("points not sorted by response")
		}
	}
}

func TestDescriptorNormalized(t *testing.T) {
	im, err := imaging.Render(imaging.TopicFlower, 5, 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	it := imaging.NewIntegral(im)
	points, err := Detect(it, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no interest points on flower render")
	}
	for _, p := range points[:min(len(points), 20)] {
		d := Describe(it, p)
		n := vec.Norm(d.Slice())
		if math.Abs(n-1) > 1e-9 && n != 0 {
			t.Fatalf("descriptor norm %v", n)
		}
	}
}

func TestExtractOnAllTopics(t *testing.T) {
	for _, topic := range imaging.AllTopics() {
		im, err := imaging.Render(topic, 11, 128, 128)
		if err != nil {
			t.Fatal(err)
		}
		descs, err := Extract(im, DefaultOptions())
		if err != nil {
			t.Fatalf("Extract(%v): %v", topic, err)
		}
		if len(descs) < 3 {
			t.Errorf("topic %v yields only %d descriptors", topic, len(descs))
		}
	}
}

func TestExtractRejectsInvalidImage(t *testing.T) {
	bad := &imaging.Image{W: 3, H: 3, Pix: make([]float64, 2)}
	if _, err := Extract(bad, DefaultOptions()); err == nil {
		t.Error("invalid image accepted")
	}
	im := imaging.NewImage(32, 32)
	o := DefaultOptions()
	o.Step = 0
	if _, err := Extract(im, o); err == nil {
		t.Error("invalid options accepted")
	}
}

// Same-topic images should produce more similar descriptor statistics than
// cross-topic images. We compare mean descriptors as a cheap proxy.
func TestTopicDescriptorSeparation(t *testing.T) {
	meanDesc := func(topic imaging.Topic, seed int64) []float64 {
		t.Helper()
		im, err := imaging.Render(topic, seed, 128, 128)
		if err != nil {
			t.Fatal(err)
		}
		descs, err := Extract(im, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(descs) == 0 {
			t.Fatalf("no descriptors for %v", topic)
		}
		mean := make([]float64, DescriptorSize)
		for i := range descs {
			for j, v := range descs[i] {
				mean[j] += v
			}
		}
		return vec.Scale(mean, 1/float64(len(descs)))
	}
	// Average over a few instances per topic for stability.
	avg := func(topic imaging.Topic, base int64) []float64 {
		sum := make([]float64, DescriptorSize)
		const k = 3
		for s := int64(0); s < k; s++ {
			m := meanDesc(topic, base+s)
			for j := range sum {
				sum[j] += m[j]
			}
		}
		return vec.Scale(sum, 1.0/k)
	}
	signA := avg(imaging.TopicSign, 100)
	signB := avg(imaging.TopicSign, 200)
	waterB := avg(imaging.TopicWater, 200)
	within := vec.Distance(signA, signB)
	across := vec.Distance(signA, waterB)
	if within >= across {
		t.Errorf("topic separation violated: within %.4f >= across %.4f", within, across)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkExtract128(b *testing.B) {
	im, err := imaging.Render(imaging.TopicFlower, 1, 128, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(im, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// Scale selection: larger blobs must be detected at proportionally larger
// SURF scales (the whole point of the determinant-of-Hessian pyramid).
func TestDetectScaleSelection(t *testing.T) {
	scaleOfBlob := func(radius float64) float64 {
		im := imaging.NewImage(128, 128)
		for y := 0; y < 128; y++ {
			for x := 0; x < 128; x++ {
				dx, dy := float64(x-64), float64(y-64)
				if dx*dx+dy*dy < radius*radius {
					im.Set(x, y, 1)
				}
			}
		}
		points, err := Detect(imaging.NewIntegral(im), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(points) == 0 {
			t.Fatalf("no points for blob radius %.0f", radius)
		}
		// Response-weighted mean scale of the detections: edge and center
		// responses both shift up with the blob size.
		var scaleSum, respSum float64
		for _, p := range points {
			scaleSum += p.Scale * p.Response
			respSum += p.Response
		}
		return scaleSum / respSum
	}
	small := scaleOfBlob(5)
	large := scaleOfBlob(12)
	if large <= small {
		t.Errorf("scale selection broken: radius 12 -> scale %.2f <= radius 5 -> scale %.2f", large, small)
	}
}
