package surf

import (
	"math"

	"pisd/internal/imaging"
)

// Rotation-invariant SURF. The base extractor is upright (U-SURF), which
// Bay et al. recommend for upright imagery and which the paper's use case
// (photo-sharing sites) mostly satisfies. For rotated content the full
// scheme assigns every interest point a dominant orientation from Haar
// wavelet responses in its neighbourhood and rotates the descriptor
// sampling grid accordingly (Bay et al., CVIU 2008, Sec. 4.1–4.2).

// Orientation estimates the dominant orientation of an interest point:
// Haar responses (dx, dy) are sampled on a σ-spaced grid within radius 6σ,
// Gaussian-weighted (σw = 2.5σ), and a sliding window of π/3 sums the
// response vectors; the window with the largest resultant wins.
func Orientation(it *imaging.Integral, p InterestPoint) float64 {
	s := p.Scale
	radius := int(math.Round(s))
	if radius < 1 {
		radius = 1
	}
	type resp struct {
		angle  float64
		dx, dy float64
	}
	var responses []resp
	for i := -6; i <= 6; i++ {
		for j := -6; j <= 6; j++ {
			if i*i+j*j > 36 {
				continue
			}
			px := p.X + int(math.Round(float64(i)*s))
			py := p.Y + int(math.Round(float64(j)*s))
			g := gauss(float64(i)*s, float64(j)*s, 2.5*s)
			dx := g * haarX(it, px, py, radius)
			dy := g * haarY(it, px, py, radius)
			if dx == 0 && dy == 0 {
				continue
			}
			responses = append(responses, resp{angle: math.Atan2(dy, dx), dx: dx, dy: dy})
		}
	}
	if len(responses) == 0 {
		return 0
	}
	const window = math.Pi / 3
	best, bestMag := 0.0, -1.0
	for ang := 0.0; ang < 2*math.Pi; ang += 0.15 {
		var sumX, sumY float64
		for _, r := range responses {
			d := angleDiff(r.angle, ang)
			if d >= 0 && d < window {
				sumX += r.dx
				sumY += r.dy
			}
		}
		if mag := sumX*sumX + sumY*sumY; mag > bestMag {
			bestMag = mag
			best = math.Atan2(sumY, sumX)
		}
	}
	return best
}

// angleDiff returns (a - base) wrapped into [0, 2π).
func angleDiff(a, base float64) float64 {
	d := a - base
	for d < 0 {
		d += 2 * math.Pi
	}
	for d >= 2*math.Pi {
		d -= 2 * math.Pi
	}
	return d
}

// DescribeOriented computes the 64-D descriptor with the sampling grid
// rotated to the point's dominant orientation, making the descriptor
// rotation invariant. Haar responses are taken axis-aligned at the
// rotated sample positions and then rotated into the local frame — the
// standard box-filter approximation.
func DescribeOriented(it *imaging.Integral, p InterestPoint, orientation float64) Descriptor {
	var d Descriptor
	s := p.Scale
	radius := int(math.Round(s))
	if radius < 1 {
		radius = 1
	}
	cos, sin := math.Cos(orientation), math.Sin(orientation)
	idx := 0
	for sy := -2; sy < 2; sy++ {
		for sx := -2; sx < 2; sx++ {
			var dxSum, adxSum, dySum, adySum float64
			for iy := 0; iy < 5; iy++ {
				for ix := 0; ix < 5; ix++ {
					// Local-frame offset, rotated into the image frame.
					lx := (float64(sx*5+ix) + 0.5) * s
					ly := (float64(sy*5+iy) + 0.5) * s
					gx := cos*lx - sin*ly
					gy := sin*lx + cos*ly
					px := p.X + int(math.Round(gx))
					py := p.Y + int(math.Round(gy))
					g := gauss(lx, ly, 3.3*s)
					rx := g * haarX(it, px, py, radius)
					ry := g * haarY(it, px, py, radius)
					// Rotate responses into the local frame.
					dx := cos*rx + sin*ry
					dy := -sin*rx + cos*ry
					dxSum += dx
					adxSum += math.Abs(dx)
					dySum += dy
					adySum += math.Abs(dy)
				}
			}
			d[idx] = dxSum
			d[idx+1] = adxSum
			d[idx+2] = dySum
			d[idx+3] = adySum
			idx += 4
		}
	}
	var norm float64
	for _, v := range d {
		norm += v * v
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range d {
			d[i] *= inv
		}
	}
	return d
}

// ExtractOriented runs detection plus rotation-invariant description.
func ExtractOriented(im *imaging.Image, o Options) ([]Descriptor, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	it := imaging.NewIntegral(im)
	points, err := Detect(it, o)
	if err != nil {
		return nil, err
	}
	descs := make([]Descriptor, len(points))
	for i, p := range points {
		descs[i] = DescribeOriented(it, p, Orientation(it, p))
	}
	return descs, nil
}
