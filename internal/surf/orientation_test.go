package surf

import (
	"math"
	"testing"

	"pisd/internal/imaging"
	"pisd/internal/vec"
)

// rotate90 returns the image rotated 90° counter-clockwise (exact, no
// interpolation), the cleanest rotation test input.
func rotate90(im *imaging.Image) *imaging.Image {
	out := imaging.NewImage(im.H, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Set(y, im.W-1-x, im.At(x, y))
		}
	}
	return out
}

// asymmetricPattern renders a pattern with a clearly dominant gradient
// direction so orientation assignment has an unambiguous answer.
func asymmetricPattern() *imaging.Image {
	im := imaging.NewImage(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			im.Set(x, y, float64(x)/96) // bright toward +x
		}
	}
	// A blob for the detector to fire on.
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			dx, dy := float64(x-48), float64(y-40)
			if dx*dx+dy*dy < 8*8 {
				im.Set(x, y, 1)
			}
		}
	}
	return im
}

func strongestPoint(t *testing.T, im *imaging.Image) (*imaging.Integral, InterestPoint) {
	t.Helper()
	it := imaging.NewIntegral(im)
	points, err := Detect(it, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no interest points")
	}
	return it, points[0]
}

func TestOrientationRotatesWithImage(t *testing.T) {
	im := asymmetricPattern()
	it, p := strongestPoint(t, im)
	theta := Orientation(it, p)

	rot := rotate90(im)
	itR, pR := strongestPoint(t, rot)
	thetaR := Orientation(itR, pR)

	// A 90° image rotation shifts the dominant orientation by ±π/2
	// (the sign depends on the screen-coordinate convention). Allow
	// generous tolerance: box filters are coarse.
	shift := angleDiff(thetaR, theta) // in [0, 2π)
	distToQuarter := math.Min(math.Abs(shift-math.Pi/2), math.Abs(shift-3*math.Pi/2))
	if distToQuarter > 0.6 {
		t.Errorf("orientation shift %.2f rad, want ~±π/2 (θ=%.2f, θ'=%.2f)", shift, theta, thetaR)
	}
}

func TestOrientedDescriptorMoreRotationInvariant(t *testing.T) {
	im, err := imaging.Render(imaging.TopicBuilding, 9, 96, 96)
	if err != nil {
		t.Fatal(err)
	}
	rot := rotate90(im)
	it := imaging.NewIntegral(im)
	itR := imaging.NewIntegral(rot)

	points, err := Detect(it, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Skip("no points on render")
	}
	var uprightDist, orientedDist float64
	count := 0
	for _, p := range points[:min(len(points), 25)] {
		// The same physical point in the rotated image.
		pR := InterestPoint{X: p.Y, Y: im.W - 1 - p.X, Scale: p.Scale}
		if pR.X < 12 || pR.Y < 12 || pR.X > rot.W-12 || pR.Y > rot.H-12 {
			continue
		}
		u1 := Describe(it, p)
		u2 := Describe(itR, pR)
		o1 := DescribeOriented(it, p, Orientation(it, p))
		o2 := DescribeOriented(itR, pR, Orientation(itR, pR))
		uprightDist += vec.Distance(u1.Slice(), u2.Slice())
		orientedDist += vec.Distance(o1.Slice(), o2.Slice())
		count++
	}
	if count < 5 {
		t.Skip("too few interior points")
	}
	if orientedDist >= uprightDist {
		t.Errorf("oriented descriptors not more rotation invariant: oriented %.3f vs upright %.3f (n=%d)",
			orientedDist/float64(count), uprightDist/float64(count), count)
	}
}

func TestExtractOriented(t *testing.T) {
	im, err := imaging.Render(imaging.TopicFlower, 3, 96, 96)
	if err != nil {
		t.Fatal(err)
	}
	descs, err := ExtractOriented(im, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) == 0 {
		t.Fatal("no descriptors")
	}
	for i := range descs[:min(len(descs), 10)] {
		n := vec.Norm(descs[i].Slice())
		if n != 0 && math.Abs(n-1) > 1e-9 {
			t.Fatalf("descriptor %d norm %v", i, n)
		}
	}
	bad := &imaging.Image{W: 2, H: 2, Pix: make([]float64, 1)}
	if _, err := ExtractOriented(bad, DefaultOptions()); err == nil {
		t.Error("invalid image accepted")
	}
}

func TestOrientationFlatRegion(t *testing.T) {
	im := imaging.NewImage(64, 64)
	it := imaging.NewIntegral(im)
	p := InterestPoint{X: 32, Y: 32, Scale: 2}
	if got := Orientation(it, p); got != 0 {
		t.Errorf("flat-region orientation = %v, want 0", got)
	}
}
