// Package segstore is the segmented, persisted secure-index store that
// takes the cloud tier from "one in-RAM cuckoo placement saved as a single
// blob" to a streaming architecture for million-profile populations:
//
//   - a Builder consumes core.Item batches (fed by the chunked generator in
//     internal/dataset, so the population is never fully materialized),
//     runs them through one global streaming placement (core.Placement),
//     and spills one bounded-size encrypted segment per batch to disk;
//   - each segment is a full-width projection of the placement onto a
//     contiguous identifier range — the sharded build's construction
//     (DESIGN.md §9) applied to ranges — persisted in a versioned,
//     checksummed on-disk format written temp-file-then-rename, so a crash
//     mid-write can never leave a half-written segment that a reload
//     trusts;
//   - a Store serves SecRec by fanning each trapdoor across the live
//     segments, loading exactly the addressed bucket ranges from disk on
//     demand (never whole segments) and merging recovered identifiers
//     byte-identically to the monolithic index's discovery order;
//   - a Compactor merges small segments into larger generations under a
//     concurrency limit, re-projecting merged ranges through a key-holding
//     Rewriter (re-masking buckets requires the front end's keys — the
//     cloud cannot distinguish padding from payload, which is exactly
//     Theorem 1) and atomically swapping results into the live set while
//     queries continue.
//
// The package also owns the sealed-file envelope (magic, version, kind,
// length, SHA-256 trailer) that the cloud server's state persistence
// reuses, and the ErrCorruptState error that every truncated or bit-flipped
// state file surfaces as.
//
// Leakage: segment boundaries are a function of the public population size
// and batch size only, each segment file is individually indistinguishable
// from random by the index security argument, and the compaction schedule
// depends only on segment count and configuration — see DESIGN.md §14.
package segstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// ErrCorruptState reports a state file (segment or cloud persistence) that
// failed structural validation or checksum verification: truncation, bit
// flips, or a foreign file. Loads wrap it so callers can distinguish
// corruption from absence.
var ErrCorruptState = errors.New("segstore: corrupt state file")

// SealKind tags the payload type of a sealed state file, so a file renamed
// across roles is rejected instead of misparsed.
type SealKind uint32

// Sealed payload kinds.
const (
	KindSegment  SealKind = 1 // one encrypted index segment
	KindIndex    SealKind = 2 // cloud persistence: static index blob
	KindDynIndex SealKind = 3 // cloud persistence: dynamic index blob
	KindProfiles SealKind = 4 // cloud persistence: encrypted profile set
	KindImages   SealKind = 5 // cloud persistence: encrypted image store
)

const (
	sealMagic      = 0x50534C44 // "PSLD"
	sealVersion    = 1
	sealHeaderSize = 4 + 4 + 4 + 8 // magic, version, kind, payload length
	sealSumSize    = sha256.Size
)

// sealHeader encodes the fixed envelope header.
func sealHeader(kind SealKind, payloadLen int64) []byte {
	h := make([]byte, sealHeaderSize)
	binary.BigEndian.PutUint32(h[0:], sealMagic)
	binary.BigEndian.PutUint32(h[4:], sealVersion)
	binary.BigEndian.PutUint32(h[8:], uint32(kind))
	binary.BigEndian.PutUint64(h[12:], uint64(payloadLen))
	return h
}

// WriteSealedFile atomically writes path as a sealed envelope around the
// concatenated sections: header, payload, SHA-256 trailer over both. The
// bytes land in a temp file in the same directory which is fsynced and
// renamed into place, so a crash at any point leaves either the old file
// or the new one — never a torn mix.
func WriteSealedFile(path string, kind SealKind, sections ...[]byte) error {
	var payloadLen int64
	for _, s := range sections {
		payloadLen += int64(len(s))
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-seal-*")
	if err != nil {
		return fmt.Errorf("segstore: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()

	sum := sha256.New()
	w := io.MultiWriter(tmp, sum)
	if _, err := w.Write(sealHeader(kind, payloadLen)); err != nil {
		return fmt.Errorf("segstore: write %s: %w", path, err)
	}
	for _, s := range sections {
		if _, err := w.Write(s); err != nil {
			return fmt.Errorf("segstore: write %s: %w", path, err)
		}
	}
	if _, err := tmp.Write(sum.Sum(nil)); err != nil {
		return fmt.Errorf("segstore: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("segstore: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("segstore: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("segstore: rename %s: %w", path, err)
	}
	tmpName = "" // renamed away; nothing to clean up
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a completed rename survives a crash.
// Failure is non-fatal: the rename itself already happened.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// ReadSealedFile reads and fully verifies a sealed file, returning its
// payload. Structural damage, a kind mismatch or a checksum failure return
// an error wrapping ErrCorruptState; a missing file returns the underlying
// fs.ErrNotExist.
func ReadSealedFile(path string, kind SealKind) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := parseSealed(data, kind)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return payload, nil
}

// parseSealed validates a whole in-memory sealed envelope.
func parseSealed(data []byte, kind SealKind) ([]byte, error) {
	if len(data) < sealHeaderSize+sealSumSize {
		return nil, fmt.Errorf("%w: truncated (%d bytes)", ErrCorruptState, len(data))
	}
	if binary.BigEndian.Uint32(data) != sealMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptState)
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != sealVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorruptState, v)
	}
	if k := SealKind(binary.BigEndian.Uint32(data[8:])); k != kind {
		return nil, fmt.Errorf("%w: kind %d, want %d", ErrCorruptState, k, kind)
	}
	payloadLen := binary.BigEndian.Uint64(data[12:])
	if payloadLen != uint64(len(data)-sealHeaderSize-sealSumSize) {
		return nil, fmt.Errorf("%w: payload length %d does not match file size", ErrCorruptState, payloadLen)
	}
	body := data[:len(data)-sealSumSize]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], data[len(data)-sealSumSize:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptState)
	}
	return data[sealHeaderSize : len(data)-sealSumSize], nil
}

// verifySealedStream checks an open sealed file end to end with a bounded
// buffer (no whole-file read), returning the payload offset and length for
// subsequent random access. The file position is left undefined; use
// ReadAt afterwards.
func verifySealedStream(f *os.File, kind SealKind) (payloadOff, payloadLen int64, err error) {
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	size := st.Size()
	if size < sealHeaderSize+sealSumSize {
		return 0, 0, fmt.Errorf("%w: truncated (%d bytes)", ErrCorruptState, size)
	}
	var header [sealHeaderSize]byte
	if _, err := f.ReadAt(header[:], 0); err != nil {
		return 0, 0, err
	}
	if binary.BigEndian.Uint32(header[:]) != sealMagic {
		return 0, 0, fmt.Errorf("%w: bad magic", ErrCorruptState)
	}
	if v := binary.BigEndian.Uint32(header[4:]); v != sealVersion {
		return 0, 0, fmt.Errorf("%w: unsupported version %d", ErrCorruptState, v)
	}
	if k := SealKind(binary.BigEndian.Uint32(header[8:])); k != kind {
		return 0, 0, fmt.Errorf("%w: kind %d, want %d", ErrCorruptState, k, kind)
	}
	payloadLen = int64(binary.BigEndian.Uint64(header[12:]))
	if payloadLen != size-sealHeaderSize-sealSumSize {
		return 0, 0, fmt.Errorf("%w: payload length %d does not match file size", ErrCorruptState, payloadLen)
	}
	sum := sha256.New()
	if _, err := io.Copy(sum, io.NewSectionReader(f, 0, size-sealSumSize)); err != nil {
		return 0, 0, err
	}
	var want [sealSumSize]byte
	if _, err := f.ReadAt(want[:], size-sealSumSize); err != nil {
		return 0, 0, err
	}
	if !bytes.Equal(sum.Sum(nil), want[:]) {
		return 0, 0, fmt.Errorf("%w: checksum mismatch", ErrCorruptState)
	}
	return sealHeaderSize, payloadLen, nil
}
