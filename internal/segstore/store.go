package segstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pisd/internal/core"
)

// Store serves SecRec over a directory of segment files. Each trapdoor
// fans out across the live segments: for every addressed bucket the store
// reads that bucket's BucketSize bytes from each segment on demand and
// unmasks them. The global placement guarantees at most one segment holds
// a real payload per bucket position (the others hold padding, which
// unmasks to nothing), so the identifier sequence is byte-identical to the
// monolithic index's SecRec for the same trapdoor — in the same discovery
// order, since buckets are visited in the same order and segments only
// decide which of them speaks.
//
// Reads take a reference-counted snapshot of the live set, so the
// compactor can atomically swap merged segments in while queries are in
// flight; retired segments close once their last reader releases them.
type Store struct {
	dir string

	mu    sync.RWMutex
	segs  []*Segment // sorted by lo, non-overlapping
	shape core.IndexShape
	items int
	bytes int64

	met storeMetrics
}

// Open opens every valid segment in dir. Leftover temp files are removed;
// overlapping ranges (a crash window between a compaction's rename and its
// deletes) are resolved in favor of the newest generation, deleting fully
// superseded segments. Any damaged segment file fails the open with an
// error wrapping ErrCorruptState — a store never silently drops data.
func Open(dir string) (*Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var opened []*Segment
	ok := false
	defer func() {
		if !ok {
			for _, sg := range opened {
				sg.Close()
			}
		}
	}()
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case ent.IsDir():
			continue
		case strings.HasPrefix(name, ".tmp-"):
			os.Remove(filepath.Join(dir, name))
			continue
		case !strings.HasSuffix(name, SegmentExt):
			continue
		}
		sg, err := OpenSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		opened = append(opened, sg)
	}
	live, err := resolveOverlaps(opened)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir}
	for _, sg := range live {
		if s.shape.Width == 0 {
			s.shape = sg.shape
		} else if params := sg.shape.Params; params != s.shape.Params || sg.shape.Width != s.shape.Width {
			return nil, fmt.Errorf("%w: %s: segment shape differs from the rest of the store", ErrCorruptState, sg.path)
		}
		s.items += sg.shape.N
		s.bytes += sg.size
	}
	s.segs = live
	ok = true
	return s, nil
}

// resolveOverlaps picks the authoritative segment set: newest generation
// first, accepting each segment whose range is untouched so far and
// deleting segments fully covered by already-accepted newer ones. A
// partial overlap has no consistent reading and fails the open.
func resolveOverlaps(segs []*Segment) ([]*Segment, error) {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].gen != segs[j].gen {
			return segs[i].gen > segs[j].gen
		}
		return segs[i].lo < segs[j].lo
	})
	var live []*Segment // sorted by lo
	for _, sg := range segs {
		switch covered, overlaps := coverage(live, sg.lo, sg.hi); {
		case !overlaps:
			at := sort.Search(len(live), func(i int) bool { return live[i].lo > sg.lo })
			live = append(live, nil)
			copy(live[at+1:], live[at:])
			live[at] = sg
		case covered:
			// Superseded by newer generations: the crash window between a
			// compaction's rename and its deletes. Finish the delete.
			sg.retire(true)
		default:
			return nil, fmt.Errorf("%w: %s: range [%d, %d) partially overlaps newer segments", ErrCorruptState, sg.path, sg.lo, sg.hi)
		}
	}
	return live, nil
}

// coverage reports whether [lo, hi) is fully covered by the sorted,
// non-overlapping live ranges, and whether it overlaps any of them at all.
func coverage(live []*Segment, lo, hi uint64) (covered, overlaps bool) {
	cursor := lo
	for _, sg := range live {
		if sg.hi <= lo || sg.lo >= hi {
			continue
		}
		overlaps = true
		if sg.lo > cursor {
			return false, true // gap inside [lo, hi)
		}
		if sg.hi > cursor {
			cursor = sg.hi
		}
		if cursor >= hi {
			return true, true
		}
	}
	return false, overlaps
}

// Dir returns the directory the store serves from.
func (s *Store) Dir() string { return s.dir }

// Params returns the store's index parameters (zero value when empty).
func (s *Store) Params() core.Params {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shape.Params
}

// Len returns the total number of indexed items across live segments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.items
}

// Bytes returns the total on-disk size of the live segments.
func (s *Store) Bytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Segments describes the live segments, sorted by range.
func (s *Store) Segments() []SegmentInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	infos := make([]SegmentInfo, len(s.segs))
	for i, sg := range s.segs {
		infos[i] = sg.Info()
	}
	return infos
}

// Close releases every live segment. Reads in flight finish normally.
func (s *Store) Close() error {
	s.mu.Lock()
	segs := s.segs
	s.segs = nil
	s.items, s.bytes = 0, 0
	s.mu.Unlock()
	for _, sg := range segs {
		sg.Close()
	}
	return nil
}

// snapshot acquires the current live set for reading.
func (s *Store) snapshot() ([]*Segment, core.IndexShape, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.segs) == 0 {
		return nil, core.IndexShape{}, fmt.Errorf("segstore: store has no segments")
	}
	segs := make([]*Segment, len(s.segs))
	copy(segs, s.segs)
	for _, sg := range segs {
		sg.acquire()
	}
	return segs, s.shape, nil
}

func releaseAll(segs []*Segment) {
	for _, sg := range segs {
		sg.release()
	}
}

// secRecScratch carries per-query working state across a batch.
type secRecScratch struct {
	seen   map[uint64]struct{}
	bucket [core.BucketSize]byte
}

// SecRec answers one trapdoor from the live segments; the identifier
// sequence is byte-identical to the monolithic index's SecRec.
func (s *Store) SecRec(t *core.Trapdoor) ([]uint64, error) {
	segs, shape, err := s.snapshot()
	if err != nil {
		return nil, err
	}
	defer releaseAll(segs)
	sc := secRecScratch{seen: make(map[uint64]struct{}, shape.Params.BucketsPerQuery())}
	return s.secRec(t, segs, shape, &sc)
}

// SecRecBatch answers a batch of trapdoors over one snapshot, so every
// sub-query sees the same segment set even under concurrent compaction.
func (s *Store) SecRecBatch(ts []*core.Trapdoor) ([][]uint64, error) {
	segs, shape, err := s.snapshot()
	if err != nil {
		return nil, err
	}
	defer releaseAll(segs)
	sc := secRecScratch{seen: make(map[uint64]struct{}, shape.Params.BucketsPerQuery())}
	out := make([][]uint64, len(ts))
	for i, t := range ts {
		ids, err := s.secRec(t, segs, shape, &sc)
		if err != nil {
			return nil, fmt.Errorf("segstore: batch query %d: %w", i, err)
		}
		out[i] = ids
	}
	return out, nil
}

// secRec runs one query against a snapshot. Bucket visit order matches
// Index.SecRecWith — tables ascending, entries in trapdoor order, then the
// stash — with the segments as an inner loop: at most one segment unmasks
// a real payload at any visited position, so discovery order is preserved.
func (s *Store) secRec(t *core.Trapdoor, segs []*Segment, shape core.IndexShape, sc *secRecScratch) ([]uint64, error) {
	if t == nil {
		return nil, fmt.Errorf("segstore: nil trapdoor")
	}
	if len(t.Tables) != shape.Params.Tables {
		return nil, fmt.Errorf("segstore: trapdoor covers %d tables, store has %d", len(t.Tables), shape.Params.Tables)
	}
	if len(t.Stash) > shape.Params.StashSize {
		return nil, fmt.Errorf("segstore: trapdoor stash covers %d slots, store has %d", len(t.Stash), shape.Params.StashSize)
	}
	clear(sc.seen)
	ids := make([]uint64, 0, shape.Params.BucketsPerQuery())
	start := time.Now()
	reads := 0
	for j, entries := range t.Tables {
		for i := range entries {
			e := &entries[i]
			if e.Pos >= uint64(shape.Width) {
				return nil, fmt.Errorf("segstore: trapdoor position %d out of range (w=%d)", e.Pos, shape.Width)
			}
			if len(e.Mask) != core.BucketSize {
				return nil, fmt.Errorf("segstore: trapdoor mask length %d, want %d", len(e.Mask), core.BucketSize)
			}
			for _, sg := range segs {
				if err := sg.readBucket(j, e.Pos, sc.bucket[:]); err != nil {
					return nil, fmt.Errorf("segstore: read %s bucket (%d,%d): %w", sg.path, j, e.Pos, err)
				}
				reads++
				ids = sc.collect(ids, e.Mask)
			}
		}
	}
	for pos, mask := range t.Stash {
		if len(mask) != core.BucketSize {
			return nil, fmt.Errorf("segstore: trapdoor stash mask length %d, want %d", len(mask), core.BucketSize)
		}
		for _, sg := range segs {
			if err := sg.readStash(pos, sc.bucket[:]); err != nil {
				return nil, fmt.Errorf("segstore: read %s stash %d: %w", sg.path, pos, err)
			}
			reads++
			ids = sc.collect(ids, mask)
		}
	}
	if reads > 0 && s.met.loadNs != nil {
		// Amortized per-read load latency: one clock pair per query, not
		// per ReadAt, keeps the probe overhead off the read path.
		s.met.loadNs.Observe(time.Since(start).Nanoseconds() / int64(reads))
		s.met.bucketReads.Add(int64(reads))
	}
	s.met.queries.Inc()
	return ids, nil
}

// collect unmasks the scratch bucket and appends a newly seen identifier.
func (sc *secRecScratch) collect(ids []uint64, mask []byte) []uint64 {
	if id, ok := core.RecoverID(sc.bucket[:], mask); ok {
		if _, dup := sc.seen[id]; !dup {
			sc.seen[id] = struct{}{}
			ids = append(ids, id)
		}
	}
	return ids
}

// swap atomically replaces the retire set with the merged segment. The
// retired files are unlinked; their descriptors close when the last
// in-flight reader releases them.
func (s *Store) swap(add *Segment, retire []*Segment) error {
	s.mu.Lock()
	present := make(map[*Segment]bool, len(retire))
	for _, sg := range retire {
		present[sg] = false
	}
	for _, sg := range s.segs {
		if _, ok := present[sg]; ok {
			present[sg] = true
		}
	}
	for sg, found := range present {
		if !found {
			s.mu.Unlock()
			return fmt.Errorf("segstore: swap: segment %s is not live", sg.path)
		}
	}
	live := make([]*Segment, 0, len(s.segs)-len(retire)+1)
	for _, sg := range s.segs {
		if _, drop := present[sg]; !drop {
			live = append(live, sg)
		}
	}
	at := sort.Search(len(live), func(i int) bool { return live[i].lo > add.lo })
	live = append(live, nil)
	copy(live[at+1:], live[at:])
	live[at] = add
	s.segs = live
	s.items += add.shape.N
	s.bytes += add.size
	for _, sg := range retire {
		s.items -= sg.shape.N
		s.bytes -= sg.size
	}
	s.updateGaugesLocked()
	s.mu.Unlock()
	for _, sg := range retire {
		sg.retire(true)
	}
	return nil
}
