package segstore

import "pisd/internal/obs"

// storeMetrics is the segment store's metric surface (names under
// "segstore."). All handles are nil-safe; a store without a registry
// records nothing.
type storeMetrics struct {
	segments    *obs.Gauge     // live segment count
	bytes       *obs.Gauge     // total on-disk bytes of live segments
	compactions *obs.Counter   // completed compaction merges
	queries     *obs.Counter   // SecRec sub-queries answered
	bucketReads *obs.Counter   // on-demand bucket range reads issued
	loadNs      *obs.Histogram // per-bucket-read load latency (amortized per query)
}

func newStoreMetrics(r *obs.Registry, prefix string) storeMetrics {
	if r == nil {
		return storeMetrics{}
	}
	return storeMetrics{
		segments:    r.Gauge(prefix + "segments"),
		bytes:       r.Gauge(prefix + "bytes"),
		compactions: r.Counter(prefix + "compactions"),
		queries:     r.Counter(prefix + "queries"),
		bucketReads: r.Counter(prefix + "bucket_reads"),
		loadNs:      r.Histogram(prefix + "load"),
	}
}

// SetRegistry registers the store's metrics in r under the "segstore."
// prefix (nil r disables them) and publishes the current segment gauges.
func (s *Store) SetRegistry(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = newStoreMetrics(r, "segstore.")
	s.updateGaugesLocked()
}

// updateGaugesLocked refreshes the live-set gauges; caller holds s.mu.
func (s *Store) updateGaugesLocked() {
	s.met.segments.Set(int64(len(s.segs)))
	s.met.bytes.Set(s.bytes)
}
