package segstore

import (
	"fmt"
	"sync"

	"pisd/internal/core"
)

// Rewriter re-encrypts an identifier range of the global placement into a
// fresh full-width segment index. Compaction needs it because the cloud
// cannot merge segments blindly: to the key-less store every bucket —
// payload or padding — is indistinguishable random bytes (Theorem 1), so
// only the key-holding front end can decide which bucket of a merged range
// carries a payload and re-mask it. core.Placement implements Rewriter.
type Rewriter interface {
	EncryptRange(lo, hi uint64) (*core.Index, error)
}

// CompactorConfig bounds a compaction run.
type CompactorConfig struct {
	// Fanout is how many adjacent segments merge into one (default 4).
	Fanout int
	// Concurrency caps simultaneous merges (default 1).
	Concurrency int
	// Target stops the run once at most this many segments are live
	// (default 1).
	Target int
}

func (c CompactorConfig) withDefaults() CompactorConfig {
	if c.Fanout < 2 {
		c.Fanout = 4
	}
	if c.Concurrency < 1 {
		c.Concurrency = 1
	}
	if c.Target < 1 {
		c.Target = 1
	}
	return c
}

// Compactor merges small segments into larger generations. Each merge
// re-projects the combined range through the Rewriter, writes the merged
// segment atomically, and swaps it into the live set while queries keep
// running against reference-counted snapshots. The schedule depends only
// on the live segment count and the configuration — public quantities —
// so compaction timing leaks nothing about content (DESIGN.md §14).
type Compactor struct {
	st  *Store
	rw  Rewriter
	cfg CompactorConfig
}

// NewCompactor prepares a compactor over st using rw for re-encryption.
func NewCompactor(st *Store, rw Rewriter, cfg CompactorConfig) *Compactor {
	return &Compactor{st: st, rw: rw, cfg: cfg.withDefaults()}
}

// Pass runs one round: the live segments, in range order, are grouped into
// runs of up to Fanout adjacent segments; every run of at least two merges
// into a next-generation segment, Concurrency merges at a time. Returns
// the number of merges performed.
func (c *Compactor) Pass() (int, error) {
	c.st.mu.RLock()
	live := make([]*Segment, len(c.st.segs))
	copy(live, c.st.segs)
	c.st.mu.RUnlock()
	if len(live) <= c.cfg.Target {
		return 0, nil
	}

	var runs [][]*Segment
	for lo := 0; lo < len(live); lo += c.cfg.Fanout {
		run := live[lo:min(lo+c.cfg.Fanout, len(live))]
		if len(run) >= 2 {
			runs = append(runs, run)
		}
	}
	if len(runs) == 0 {
		return 0, nil
	}

	var (
		wg    sync.WaitGroup
		sem   = make(chan struct{}, c.cfg.Concurrency)
		errMu sync.Mutex
		first error
		done  int
	)
	for _, run := range runs {
		wg.Add(1)
		sem <- struct{}{}
		go func(run []*Segment) {
			defer func() { <-sem; wg.Done() }()
			if err := c.merge(run); err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
				return
			}
			errMu.Lock()
			done++
			errMu.Unlock()
		}(run)
	}
	wg.Wait()
	return done, first
}

// merge compacts one run of adjacent segments into a single segment one
// generation above the run's newest member.
func (c *Compactor) merge(run []*Segment) error {
	lo, hi := run[0].lo, run[len(run)-1].hi
	gen := run[0].gen
	for _, sg := range run[1:] {
		if sg.gen > gen {
			gen = sg.gen
		}
	}
	idx, err := c.rw.EncryptRange(lo, hi)
	if err != nil {
		return fmt.Errorf("segstore: compact [%d, %d): %w", lo, hi, err)
	}
	path, err := WriteSegmentFile(c.st.dir, gen+1, lo, hi, idx)
	if err != nil {
		return err
	}
	merged, err := OpenSegment(path)
	if err != nil {
		return err
	}
	if err := c.st.swap(merged, run); err != nil {
		merged.retire(true)
		return err
	}
	c.st.met.compactions.Inc()
	return nil
}

// Run performs passes until at most Target segments remain or a pass makes
// no progress.
func (c *Compactor) Run() error {
	for {
		n, err := c.Pass()
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
	}
}
