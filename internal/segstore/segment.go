package segstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"pisd/internal/core"
)

// segHeaderSize is the segment-specific header placed ahead of the index
// blob inside the sealed payload: generation, reserved, lo, hi.
const segHeaderSize = 4 + 4 + 8 + 8

// SegmentExt is the filename extension of live segment files.
const SegmentExt = ".seg"

// Segment is one on-disk encrypted index segment: a full-width projection
// of the global placement onto the identifier range [Lo, Hi). Buckets are
// read from disk on demand; the resident footprint is a file descriptor
// and the shape. Lifetime is reference-counted so the compactor can retire
// a segment while reads against it are still in flight.
type Segment struct {
	path string
	f    *os.File
	// bodyOff is the file offset of the index blob (the MarshalBinary
	// encoding, whose header IndexShape offsets are relative to).
	bodyOff int64
	size    int64

	shape core.IndexShape
	gen   uint32
	lo    uint64 // inclusive
	hi    uint64 // exclusive

	// refs counts the store's own reference (1 while live) plus one per
	// in-flight read snapshot; the file closes when it reaches zero.
	refs    atomic.Int64
	retired atomic.Bool
}

// SegmentInfo is a segment's public description.
type SegmentInfo struct {
	Path       string
	Generation uint32
	Lo, Hi     uint64
	Items      int
	Bytes      int64
}

// Info describes the segment.
func (sg *Segment) Info() SegmentInfo {
	return SegmentInfo{
		Path:       sg.path,
		Generation: sg.gen,
		Lo:         sg.lo,
		Hi:         sg.hi,
		Items:      sg.shape.N,
		Bytes:      sg.size,
	}
}

// segmentFileName derives the canonical file name for a segment. Zero-padded
// hex keeps a directory listing sorted by range.
func segmentFileName(gen uint32, lo, hi uint64) string {
	return fmt.Sprintf("seg-%016x-%016x-g%d%s", lo, hi, gen, SegmentExt)
}

// WriteSegmentFile seals idx as the segment [lo, hi) at the given
// generation into dir, atomically, and returns the file path.
func WriteSegmentFile(dir string, gen uint32, lo, hi uint64, idx *core.Index) (string, error) {
	if lo >= hi {
		return "", fmt.Errorf("segstore: empty segment range [%d, %d)", lo, hi)
	}
	blob, err := idx.MarshalBinary()
	if err != nil {
		return "", fmt.Errorf("segstore: encode segment: %w", err)
	}
	header := make([]byte, segHeaderSize)
	binary.BigEndian.PutUint32(header[0:], gen)
	binary.BigEndian.PutUint64(header[8:], lo)
	binary.BigEndian.PutUint64(header[16:], hi)
	path := filepath.Join(dir, segmentFileName(gen, lo, hi))
	if err := WriteSealedFile(path, KindSegment, header, blob); err != nil {
		return "", err
	}
	return path, nil
}

// OpenSegment opens and fully verifies one segment file (structure,
// checksum, index header), keeping the descriptor for on-demand bucket
// reads. Damage of any kind returns an error wrapping ErrCorruptState.
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sg, err := openSegmentFile(f, path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sg, nil
}

func openSegmentFile(f *os.File, path string) (*Segment, error) {
	payloadOff, payloadLen, err := verifySealedStream(f, KindSegment)
	if err != nil {
		return nil, err
	}
	if payloadLen < segHeaderSize+core.IndexHeaderSize {
		return nil, fmt.Errorf("%w: segment payload %d bytes", ErrCorruptState, payloadLen)
	}
	var header [segHeaderSize + core.IndexHeaderSize]byte
	if _, err := f.ReadAt(header[:], payloadOff); err != nil {
		return nil, err
	}
	gen := binary.BigEndian.Uint32(header[0:])
	lo := binary.BigEndian.Uint64(header[8:])
	hi := binary.BigEndian.Uint64(header[16:])
	if lo >= hi {
		return nil, fmt.Errorf("%w: segment range [%d, %d)", ErrCorruptState, lo, hi)
	}
	shape, err := core.ParseIndexHeader(header[segHeaderSize:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptState, err)
	}
	if want := segHeaderSize + shape.EncodedSize(); want != payloadLen {
		return nil, fmt.Errorf("%w: segment payload %d bytes, shape needs %d", ErrCorruptState, payloadLen, want)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	sg := &Segment{
		path:    path,
		f:       f,
		bodyOff: payloadOff + segHeaderSize,
		size:    st.Size(),
		shape:   shape,
		gen:     gen,
		lo:      lo,
		hi:      hi,
	}
	sg.refs.Store(1) // the owner's reference
	return sg, nil
}

// readBucket reads bucket (table, pos) into dst (BucketSize bytes). Bounds
// are the caller's responsibility (validated once per trapdoor).
func (sg *Segment) readBucket(table int, pos uint64, dst []byte) error {
	_, err := sg.f.ReadAt(dst, sg.bodyOff+sg.shape.BucketOffset(table, pos))
	return err
}

// readStash reads stash slot pos into dst.
func (sg *Segment) readStash(pos int, dst []byte) error {
	_, err := sg.f.ReadAt(dst, sg.bodyOff+sg.shape.StashOffset(pos))
	return err
}

// acquire takes a read reference. The caller must already hold a
// reference-protected view (the store's lock) guaranteeing liveness.
func (sg *Segment) acquire() { sg.refs.Add(1) }

// release drops a reference; the last one out closes the file.
func (sg *Segment) release() {
	if sg.refs.Add(-1) == 0 {
		sg.f.Close()
	}
}

// retire drops the owner's reference and unlinks the file; in-flight reads
// keep the open descriptor alive until they release. Idempotent.
func (sg *Segment) retire(unlink bool) {
	if sg.retired.Swap(true) {
		return
	}
	if unlink {
		os.Remove(sg.path)
	}
	sg.release()
}

// Close releases the owner's reference without unlinking.
func (sg *Segment) Close() error {
	sg.retire(false)
	return nil
}
