package segstore

import (
	"fmt"
	"os"

	"pisd/internal/core"
	"pisd/internal/crypt"
)

// Builder streams a population into a segmented store directory. Each Add
// batch becomes one generation-0 segment covering exactly that batch's
// identifier range; the batches share one global placement, which is what
// makes the segmented store's answers byte-identical to a monolithic
// build. Identifiers must arrive in strictly increasing order (the chunked
// dataset generator's natural order) so that batch boundaries are
// contiguous, disjoint ranges — and therefore a pure function of the
// public population size and batch size, leaking nothing about content
// (DESIGN.md §14).
//
// Memory stays bounded by the placement state (identifier and metadata per
// item — no profiles, no bucket arrays) plus, during Finish, a single
// segment's encrypted buckets.
type Builder struct {
	pl     *core.Placement
	dir    string
	lastID uint64
	spans  [][2]uint64 // per batch: [firstID, lastID+1)
	done   bool
}

// NewBuilder starts a segmented build into dir (created if needed).
func NewBuilder(keys *crypt.KeySet, p core.Params, dir string) (*Builder, error) {
	pl, err := core.NewPlacement(keys, p)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Builder{pl: pl, dir: dir}, nil
}

// Placement exposes the global placement, which implements Rewriter: the
// same state that built the segments re-projects merged ranges during
// compaction.
func (b *Builder) Placement() *core.Placement { return b.pl }

// Add places one batch, to become one segment. Identifiers must be
// strictly increasing across all Add calls. An ErrNeedRehash from the
// placement propagates as in core.Build: the caller rehashes metadata and
// starts over with a fresh Builder.
func (b *Builder) Add(items []core.Item) error {
	if b.done {
		return fmt.Errorf("segstore: builder already finished")
	}
	if len(items) == 0 {
		return nil
	}
	last := b.lastID
	for _, it := range items {
		if it.ID <= last {
			return fmt.Errorf("segstore: identifier %d out of order (previous %d): batches must be strictly increasing", it.ID, last)
		}
		last = it.ID
	}
	if err := b.pl.Insert(items); err != nil {
		return err
	}
	b.spans = append(b.spans, [2]uint64{items[0].ID, last + 1})
	b.lastID = last
	return nil
}

// Finish encrypts and writes one generation-0 segment per batch,
// sequentially — the peak resident encrypted state is one segment — and
// returns the written paths. The builder cannot Add afterwards: later
// insertions would kick placed items between buckets and invalidate
// already-written segments.
func (b *Builder) Finish() ([]string, error) {
	if b.done {
		return nil, fmt.Errorf("segstore: builder already finished")
	}
	if len(b.spans) == 0 {
		return nil, fmt.Errorf("segstore: nothing to build")
	}
	b.done = true
	paths := make([]string, 0, len(b.spans))
	for _, span := range b.spans {
		idx, err := b.pl.EncryptRange(span[0], span[1])
		if err != nil {
			return nil, err
		}
		path, err := WriteSegmentFile(b.dir, 0, span[0], span[1], idx)
		if err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
