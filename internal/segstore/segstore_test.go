package segstore

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/lsh"
	"pisd/internal/obs"
)

// testPopulation builds a deterministic population whose metadata collides
// across users (values bucketed by id) so SecRec answers carry several
// identifiers, exercising merge order and dedup.
func testPopulation(t *testing.T, n int) (*crypt.KeySet, core.Params, []core.Item) {
	t.Helper()
	const tables = 5
	keys, err := crypt.GenDeterministic("segstore-test", tables)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{
		Tables:     tables,
		Capacity:   core.CapacityFor(n, 0.8),
		ProbeRange: 4,
		MaxLoop:    200,
		Seed:       1,
		StashSize:  8,
	}
	items := make([]core.Item, n)
	for i := range items {
		id := uint64(i + 1)
		items[i] = core.Item{ID: id, Meta: lsh.Metadata{
			id / 3, id * 7, id / 5, id * 13, id / 7,
		}}
	}
	return keys, p, items
}

// buildSegmented streams items through a Builder in batches and opens the
// resulting store.
func buildSegmented(t *testing.T, keys *crypt.KeySet, p core.Params, items []core.Item, dir string, batch int) (*Store, *Builder) {
	t.Helper()
	b, err := NewBuilder(keys, p, dir)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(items); lo += batch {
		if err := b.Add(items[lo:min(lo+batch, len(items))]); err != nil {
			t.Fatalf("Add batch at %d: %v", lo, err)
		}
	}
	if _, err := b.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st, b
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStoreMatchesMonolithic is the equivalence property: for the same
// seeded population, SecRec over the segmented store returns the identical
// identifier sequence as the single-index build, query by query.
func TestStoreMatchesMonolithic(t *testing.T) {
	const n, batch = 3000, 500
	keys, p, items := testPopulation(t, n)
	single, err := core.Build(keys, items, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st, _ := buildSegmented(t, keys, p, items, t.TempDir(), batch)

	if got, want := len(st.Segments()), (n+batch-1)/batch; got != want {
		t.Fatalf("store has %d segments, want %d", got, want)
	}
	if st.Len() != n {
		t.Fatalf("store indexes %d items, want %d", st.Len(), n)
	}

	rng := rand.New(rand.NewSource(41))
	var tds []*core.Trapdoor
	for q := 0; q < 80; q++ {
		meta := items[rng.Intn(n)].Meta
		if q%10 == 9 { // non-member metadata: empty or accidental hits
			meta = lsh.Metadata{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
		}
		td, err := core.GenTpdr(keys, meta, p)
		if err != nil {
			t.Fatal(err)
		}
		tds = append(tds, td)
		want, err := single.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.SecRec(td)
		if err != nil {
			t.Fatalf("store SecRec: %v", err)
		}
		if !sameIDs(got, want) {
			t.Fatalf("query %d: store %v, monolithic %v", q, got, want)
		}
	}

	// The batch path shares scratch across sub-queries; results must not.
	wantBatch := make([][]uint64, len(tds))
	for i, td := range tds {
		wantBatch[i], _ = single.SecRec(td)
	}
	gotBatch, err := st.SecRecBatch(tds)
	if err != nil {
		t.Fatalf("SecRecBatch: %v", err)
	}
	for i := range tds {
		if !sameIDs(gotBatch[i], wantBatch[i]) {
			t.Fatalf("batch query %d: store %v, monolithic %v", i, gotBatch[i], wantBatch[i])
		}
	}
}

// TestStoreEquivalenceUnderCompaction keeps querying while the compactor
// merges generations concurrently: every answer along the way must equal
// the monolithic result, and the store must end at one segment.
func TestStoreEquivalenceUnderCompaction(t *testing.T) {
	const n, batch = 2400, 300
	keys, p, items := testPopulation(t, n)
	single, err := core.Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	st, b := buildSegmented(t, keys, p, items, t.TempDir(), batch)

	rng := rand.New(rand.NewSource(43))
	type query struct {
		td   *core.Trapdoor
		want []uint64
	}
	queries := make([]query, 40)
	for i := range queries {
		td, err := core.GenTpdr(keys, items[rng.Intn(n)].Meta, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := single.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = query{td, want}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				got, err := st.SecRec(q.td)
				if err != nil {
					errCh <- err
					return
				}
				if !sameIDs(got, q.want) {
					errCh <- fmt.Errorf("mid-compaction divergence: %v vs %v", got, q.want)
					return
				}
			}
		}(w)
	}

	c := NewCompactor(st, b.Placement(), CompactorConfig{Fanout: 3, Concurrency: 2})
	if err := c.Run(); err != nil {
		t.Fatalf("compaction: %v", err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if got := len(st.Segments()); got != 1 {
		t.Fatalf("store has %d segments after full compaction, want 1", got)
	}
	if st.Len() != n {
		t.Fatalf("store indexes %d items after compaction, want %d", st.Len(), n)
	}
	for i, q := range queries {
		got, err := st.SecRec(q.td)
		if err != nil {
			t.Fatal(err)
		}
		if !sameIDs(got, q.want) {
			t.Fatalf("post-compaction query %d: %v vs %v", i, got, q.want)
		}
	}
	// Exactly one segment file remains on disk; retired files are gone.
	infos := st.Segments()
	entries, err := os.ReadDir(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Join(st.Dir(), entries[0].Name()) != infos[0].Path {
		t.Fatalf("directory holds %d entries, want only %s", len(entries), infos[0].Path)
	}
}

// TestCorruptionDetected flips one byte per position class in every
// segment file and requires the open to fail with ErrCorruptState; a
// truncated file must fail the same way.
func TestCorruptionDetected(t *testing.T) {
	const n, batch = 600, 200
	keys, p, items := testPopulation(t, n)
	dir := t.TempDir()
	st, _ := buildSegmented(t, keys, p, items, dir, batch)
	paths := make([]string, 0, len(st.Segments()))
	for _, info := range st.Segments() {
		paths = append(paths, info.Path)
	}
	st.Close()

	for _, path := range paths {
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// One flip in the envelope header, one mid-payload, one in the
		// checksum trailer.
		for _, off := range []int{2, len(pristine) / 2, len(pristine) - 3} {
			corrupted := append([]byte(nil), pristine...)
			corrupted[off] ^= 0x20
			if err := os.WriteFile(path, corrupted, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenSegment(path); !errors.Is(err, ErrCorruptState) {
				t.Fatalf("%s: flip at %d: OpenSegment error = %v, want ErrCorruptState", filepath.Base(path), off, err)
			}
			if _, err := Open(dir); !errors.Is(err, ErrCorruptState) {
				t.Fatalf("%s: flip at %d: Open error = %v, want ErrCorruptState", filepath.Base(path), off, err)
			}
		}
		if err := os.WriteFile(path, pristine[:len(pristine)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegment(path); !errors.Is(err, ErrCorruptState) {
			t.Fatalf("%s: truncation: OpenSegment error = %v, want ErrCorruptState", filepath.Base(path), err)
		}
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// All files restored: the store must open cleanly again.
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after restore: %v", err)
	}
	st2.Close()
}

// TestSealedFileRoundTrip pins the envelope: payload survives, a kind
// mismatch is corruption, a missing file is not.
func TestSealedFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteSealedFile(path, KindProfiles, []byte("hello "), []byte("world")); err != nil {
		t.Fatal(err)
	}
	payload, err := ReadSealedFile(path, KindProfiles)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "hello world" {
		t.Fatalf("payload = %q", payload)
	}
	if _, err := ReadSealedFile(path, KindImages); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("kind mismatch error = %v, want ErrCorruptState", err)
	}
	if _, err := ReadSealedFile(filepath.Join(dir, "absent.bin"), KindProfiles); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file error = %v, want fs.ErrNotExist", err)
	}
	// No temp litter after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after write, want 1", len(entries))
	}
}

// TestOpenResolvesCrashWindow reproduces the crash between a compaction's
// rename and its deletes: the directory holds both the merged segment and
// its superseded inputs. Open must keep the newest generation and finish
// the deletes; a partial overlap must refuse to guess.
func TestOpenResolvesCrashWindow(t *testing.T) {
	const n, batch = 900, 300
	keys, p, items := testPopulation(t, n)
	dir := t.TempDir()
	st, b := buildSegmented(t, keys, p, items, dir, batch)
	st.Close()

	// The merged segment coexists with its gen-0 inputs.
	merged, err := b.Placement().EncryptRange(1, uint64(n)+1)
	if err != nil {
		t.Fatal(err)
	}
	mergedPath, err := WriteSegmentFile(dir, 1, 1, uint64(n)+1, merged)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("Open with crash window: %v", err)
	}
	defer st2.Close()
	infos := st2.Segments()
	if len(infos) != 1 || infos[0].Path != mergedPath || infos[0].Generation != 1 {
		t.Fatalf("resolved to %+v, want only the merged generation-1 segment", infos)
	}
	if st2.Len() != n {
		t.Fatalf("resolved store indexes %d items, want %d", st2.Len(), n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("superseded segments not deleted: %d entries remain", len(entries))
	}

	// A newer segment covering only part of an older one is ambiguous.
	partial, err := b.Placement().EncryptRange(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSegmentFile(dir, 2, 1, 200, partial); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("partial overlap: Open error = %v, want ErrCorruptState", err)
	}
}

func TestBuilderRejectsBadInput(t *testing.T) {
	keys, p, items := testPopulation(t, 100)
	b, err := NewBuilder(keys, p, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Add(items[10:20]); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(items[:10]); err == nil {
		t.Error("out-of-order batch accepted")
	}
	if err := b.Add(items[10:20]); err == nil {
		t.Error("duplicate batch accepted")
	}
	if err := b.Add(items[20:]); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(items[:1]); err == nil {
		t.Error("Add after Finish accepted")
	}
	if _, err := b.Finish(); err == nil {
		t.Error("double Finish accepted")
	}
}

// TestStoreMetrics wires a registry and checks the segment gauges track
// compaction and the query counters move.
func TestStoreMetrics(t *testing.T) {
	const n, batch = 1200, 300
	keys, p, items := testPopulation(t, n)
	st, b := buildSegmented(t, keys, p, items, t.TempDir(), batch)
	reg := obs.NewRegistry()
	st.SetRegistry(reg)

	if got := reg.Gauge("segstore.segments").Load(); got != 4 {
		t.Fatalf("segstore.segments = %d, want 4", got)
	}
	if got, want := reg.Gauge("segstore.bytes").Load(), st.Bytes(); got != want {
		t.Fatalf("segstore.bytes = %d, store reports %d", got, want)
	}
	td, err := core.GenTpdr(keys, items[0].Meta, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SecRec(td); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("segstore.queries").Load(); got != 1 {
		t.Fatalf("segstore.queries = %d, want 1", got)
	}
	wantReads := int64(p.BucketsPerQuery()) * 4 // every bucket read from all 4 segments
	if got := reg.Counter("segstore.bucket_reads").Load(); got != wantReads {
		t.Fatalf("segstore.bucket_reads = %d, want %d", got, wantReads)
	}
	if err := NewCompactor(st, b.Placement(), CompactorConfig{Fanout: 4}).Run(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("segstore.compactions").Load(); got != 1 {
		t.Fatalf("segstore.compactions = %d, want 1", got)
	}
	if got := reg.Gauge("segstore.segments").Load(); got != 1 {
		t.Fatalf("segstore.segments after compaction = %d, want 1", got)
	}
	if got, want := reg.Gauge("segstore.bytes").Load(), st.Bytes(); got != want {
		t.Fatalf("segstore.bytes after compaction = %d, store reports %d", got, want)
	}
}
