package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"pisd/internal/baseline"
	"pisd/internal/bow"
	"pisd/internal/core"
	"pisd/internal/imaging"
	"pisd/internal/lsh"
	"pisd/internal/surf"
	"pisd/internal/vec"
)

// fig3VocabWords is the visual-word vocabulary size of the full-pipeline
// experiment. The paper trains 1000 words on 14k images; our procedural
// corpus has far less visual diversity, so a proportionally smaller
// vocabulary keeps training meaningful (see EXPERIMENTS.md).
const fig3VocabWords = 192

// pipelineCorpus is the rendered image pool: per topic, a set of extracted
// per-image descriptor sets and their precomputed BoW vectors.
type pipelineCorpus struct {
	vocab *bow.Vocabulary
	// bows[topic][img] is the BoW histogram of one pooled image.
	bows map[imaging.Topic][][]float64
}

// buildPipelineCorpus renders imagesPerTopic images for every topic,
// extracts SURF descriptors, trains the shared vocabulary on a sample and
// precomputes per-image BoW vectors. Users then "prefer" images from the
// pool — like Flickr users favoriting overlapping photos — so profile
// generation stays honest (aggregated per-image BoW) while the expensive
// extraction runs once per pooled image.
func buildPipelineCorpus(imagesPerTopic int, seed int64) (*pipelineCorpus, error) {
	opts := surf.DefaultOptions()
	type extracted struct {
		topic imaging.Topic
		descs []surf.Descriptor
	}
	var pool []extracted
	var sample []surf.Descriptor
	for _, topic := range imaging.AllTopics() {
		for i := 0; i < imagesPerTopic; i++ {
			im, err := imaging.Render(topic, seed+int64(i)*977, 96, 96)
			if err != nil {
				return nil, err
			}
			descs, err := surf.Extract(im, opts)
			if err != nil {
				return nil, err
			}
			if len(descs) == 0 {
				continue
			}
			pool = append(pool, extracted{topic: topic, descs: descs})
			// 1-in-3 sample for vocabulary training (paper: 10% of 1M).
			if i%3 == 0 {
				sample = append(sample, descs...)
			}
		}
	}
	if len(sample) < fig3VocabWords {
		return nil, fmt.Errorf("experiments: only %d descriptors sampled", len(sample))
	}
	vocab, err := bow.Train(sample, bow.TrainConfig{Words: fig3VocabWords, MaxIters: 8, Seed: seed})
	if err != nil {
		return nil, err
	}
	corpus := &pipelineCorpus{vocab: vocab, bows: make(map[imaging.Topic][][]float64)}
	for _, e := range pool {
		corpus.bows[e.topic] = append(corpus.bows[e.topic], vocab.BoW(e.descs))
	}
	return corpus, nil
}

// userProfile aggregates imagesPerUser pooled images from the user's
// topics into a normalized profile (GenProf semantics).
func (c *pipelineCorpus) userProfile(rng *rand.Rand, topics []imaging.Topic, imagesPerUser int) []float64 {
	profile := make([]float64, c.vocab.Size())
	for i := 0; i < imagesPerUser; i++ {
		topic := topics[rng.Intn(len(topics))]
		pool := c.bows[topic]
		img := pool[rng.Intn(len(pool))]
		for w, v := range img {
			profile[w] += v
		}
	}
	return vec.Normalize(profile)
}

// Fig3Qualitative reproduces Fig. 3: run the complete image pipeline
// (procedural photos → SURF → BoW → profiles → secure index), pick target
// users who photograph flowers and dogs, and report the topics of their
// top-5 securely discovered users. The reported consistency is the
// fraction of recommendations sharing at least one topic with the target
// (the paper's figure shows 5/5).
func Fig3Qualitative(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		imagesPerTopic = 24
		imagesPerUser  = 5
		topK           = 5
		targets        = 10
	)
	corpus, err := buildPipelineCorpus(imagesPerTopic, s.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed + 13))
	all := imaging.AllTopics()

	// Population: every user photographs two topics. User 0 is the
	// paper's exemplar target: flowers and dogs.
	n := s.PipelineUsers
	userTopics := make([][]imaging.Topic, n)
	profiles := make([][]float64, n)
	userTopics[0] = []imaging.Topic{imaging.TopicFlower, imaging.TopicDog}
	for i := 1; i < n; i++ {
		a := all[rng.Intn(len(all))]
		b := all[rng.Intn(len(all))]
		userTopics[i] = []imaging.Topic{a, b}
	}
	for i := 0; i < n; i++ {
		profiles[i] = corpus.userProfile(rng, userTopics[i], imagesPerUser)
	}

	// Secure index over the profiles. With only NumTopics procedural
	// classes the population has far denser same-interest clusters than a
	// real photo site, so the probe range gets headroom over the paper's
	// qualitative d=4 to keep the cuckoo budget feasible (see
	// EXPERIMENTS.md).
	dim := corpus.vocab.Size()
	family, err := lsh.New(lshParamsForDim(dim, 10, 2, 0.8, s.Seed))
	if err != nil {
		return nil, err
	}
	metas := family.HashAll(profiles)
	keys, err := experimentKeys(10, s.Seed)
	if err != nil {
		return nil, err
	}
	p := core.Params{
		Tables:     10,
		Capacity:   core.CapacityFor(n, 0.75),
		ProbeRange: 30,
		MaxLoop:    5000,
		Seed:       s.Seed,
	}
	idx, err := core.Build(keys, itemsFrom(metas), p)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}

	t := &Table{
		ID:    "Fig. 3",
		Title: fmt.Sprintf("Qualitative social discovery (full image pipeline, n=%d users x %d images)", n, imagesPerUser),
		Header: []string{
			"target user (topics)", "top-5 recommended users (topics)", "sharing >=1 topic",
		},
	}
	shareSum, totalSum := 0, 0
	for ti := 0; ti < targets; ti++ {
		target := ti // user 0 first: the flower+dog exemplar
		td, err := core.GenTpdr(keys, metas[target], p)
		if err != nil {
			return nil, err
		}
		ids, err := idx.SecRec(td)
		if err != nil {
			return nil, err
		}
		candidates := make([]int, 0, len(ids))
		for _, id := range ids {
			if int(id-1) != target {
				candidates = append(candidates, int(id-1))
			}
		}
		top := baseline.RankCandidates(profiles, profiles[target], candidates, topK)
		var cells []string
		shared := 0
		for _, m := range top {
			u := int(m.ID)
			cells = append(cells, fmt.Sprintf("u%d(%s)", u, topicNames(userTopics[u])))
			if topicsOverlap(userTopics[target], userTopics[u]) {
				shared++
			}
		}
		shareSum += shared
		totalSum += len(top)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("u%d(%s)", target, topicNames(userTopics[target])),
			strings.Join(cells, " "),
			fmt.Sprintf("%d/%d", shared, len(top)),
		})
	}
	consistency := float64(shareSum) / float64(totalSum)
	t.Notes = append(t.Notes,
		fmt.Sprintf("overall topic consistency of recommendations: %.0f%%", consistency*100),
		"paper: all top-5 users for the flower+dog target share flowers or dogs — consistency with human perception",
	)
	return t, nil
}

func topicNames(topics []imaging.Topic) string {
	names := make([]string, 0, len(topics))
	seen := map[string]bool{}
	for _, t := range topics {
		if !seen[t.String()] {
			names = append(names, t.String())
			seen[t.String()] = true
		}
	}
	sort.Strings(names)
	return strings.Join(names, "+")
}

func topicsOverlap(a, b []imaging.Topic) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}
