package experiments

import (
	"fmt"

	"pisd/internal/baseline"
	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/dataset"
	"pisd/internal/kik12"
	"pisd/internal/lsh"
	"pisd/internal/vec"
)

// accuracyAtoms and accuracyWidth tune the E2LSH family of the accuracy
// experiments: k=4 atoms at width 0.8 give the bucket granularity the
// paper's real-image LSH has (a fraction of a percent of the population
// colliding with a query, not half of it), which both keeps the cuckoo
// budget feasible at d=4..6 and makes the baseline candidate set size
// proportionally comparable to the paper's ~5000-of-1M.
const (
	accuracyAtoms = 4
	accuracyWidth = 0.8
)

// accuracyWorkload bundles the shared state of the accuracy experiments:
// a topic-structured population, its LSH metadata, ground-truth machinery
// and query profiles.
type accuracyWorkload struct {
	ds      *dataset.Dataset
	family  *lsh.Family
	metas   []lsh.Metadata
	queries [][]float64
	qMetas  []lsh.Metadata
}

// newAccuracyWorkload builds the population once per (l, atoms, width)
// LSH configuration.
func newAccuracyWorkload(s Scale, tables, atoms int, width float64) (*accuracyWorkload, error) {
	cfg := dataset.DefaultConfig(s.AccuracyUsers)
	cfg.Dim = s.Dim
	cfg.Seed = s.Seed
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	family, err := lsh.New(lshParamsForDim(s.Dim, tables, atoms, width, s.Seed))
	if err != nil {
		return nil, err
	}
	w := &accuracyWorkload{ds: ds, family: family}
	w.metas = family.HashAll(ds.Profiles)
	w.queries, _ = ds.Queries(s.Queries, s.Seed+100)
	w.qMetas = family.HashAll(w.queries)
	return w, nil
}

// secureAccuracy measures our design's accuracy at one K: for each query,
// trapdoor → SecRec → exact ranking of the retrieved candidates → the
// paper's distance-ratio metric against brute force.
func (w *accuracyWorkload) secureAccuracy(keys *crypt.KeySet, idx *core.Index, p core.Params, k int) (float64, float64, error) {
	var accSum, candSum float64
	for qi, q := range w.queries {
		td, err := core.GenTpdr(keys, w.qMetas[qi], p)
		if err != nil {
			return 0, 0, err
		}
		ids, err := idx.SecRec(td)
		if err != nil {
			return 0, 0, err
		}
		candidates := make([]int, 0, len(ids))
		for _, id := range ids {
			candidates = append(candidates, int(id-1))
		}
		candSum += float64(len(candidates))
		retrieved := baseline.RankCandidates(w.ds.Profiles, q, candidates, k)
		gt := baseline.BruteForceTopK(w.ds.Profiles, q, k)
		accSum += baseline.AccuracyRatio(gt, retrieved)
	}
	n := float64(len(w.queries))
	return accSum / n, candSum / n, nil
}

// Fig5bAccuracy reproduces Fig. 5(b): discovery accuracy of the plaintext
// LSH baseline, our secure design and KIK12's score-based ranking across
// top-K sizes (paper: l=10, d=30, 100 queries).
func Fig5bAccuracy(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		tables = 10
		atoms  = accuracyAtoms
		width  = accuracyWidth
		probes = 30
		tau    = 0.8
	)
	ks := []int{5, 10, 20, 30, 40, 50}

	w, err := newAccuracyWorkload(s, tables, atoms, width)
	if err != nil {
		return nil, err
	}
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	// Our secure index.
	p := core.Params{
		Tables:     tables,
		Capacity:   core.CapacityFor(s.AccuracyUsers, tau),
		ProbeRange: probes,
		MaxLoop:    2000,
		Seed:       s.Seed,
	}
	idx, err := core.Build(keys, itemsFrom(w.metas), p)
	if err != nil {
		return nil, fmt.Errorf("fig5b: %w", err)
	}
	// Plaintext LSH baseline.
	plain, err := baseline.NewPlainLSH(w.metas)
	if err != nil {
		return nil, err
	}
	// KIK12.
	kp := kik12.Params{Tables: tables, Users: s.AccuracyUsers}
	kidx, err := kik12.Build(keys, w.metas, kp)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Fig. 5(b)",
		Title: fmt.Sprintf("Discovery accuracy vs top-K (n=%d, l=10, d=30, %d queries)", s.AccuracyUsers, s.Queries),
		Header: []string{
			"K", "baseline", "our design", "KIK12", "baseline candidates", "our candidates",
		},
	}
	for _, k := range ks {
		var baseSum, kikSum, baseCand float64
		for qi, q := range w.queries {
			gt := baseline.BruteForceTopK(w.ds.Profiles, q, k)
			// Baseline: rank the full plaintext LSH candidate set.
			cands := plain.Candidates(w.qMetas[qi])
			baseCand += float64(len(cands))
			baseRetrieved := baseline.RankCandidates(w.ds.Profiles, q, cands, k)
			baseSum += baseline.AccuracyRatio(gt, baseRetrieved)
			// KIK12: rank candidates by bucket-occurrence score only.
			td, err := kik12.NewTrapdoor(keys, w.qMetas[qi], kp)
			if err != nil {
				return nil, err
			}
			vectors, err := kidx.Search(td)
			if err != nil {
				return nil, err
			}
			ranked, err := kik12.Rank(keys, vectors, kp, k)
			if err != nil {
				return nil, err
			}
			kikRetrieved := make([]vec.Scored, len(ranked))
			for i, u := range ranked {
				kikRetrieved[i] = vec.Scored{ID: uint64(u), Score: vec.Distance(q, w.ds.Profiles[u])}
			}
			kikSum += baseline.AccuracyRatio(gt, kikRetrieved)
		}
		nq := float64(len(w.queries))
		oursAcc, oursCand, err := w.secureAccuracy(keys, idx, p, k)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", baseSum/nq),
			fmt.Sprintf("%.3f", oursAcc),
			fmt.Sprintf("%.3f", kikSum/nq),
			fmt.Sprintf("%.0f", baseCand/nq),
			fmt.Sprintf("%.0f", oursCand),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: baseline ≥ ours ≥ KIK12; baseline ranks a much larger candidate set (~5000 in the paper)",
		"metric: (1/K)·Σ ‖S'_i − S_q‖ / ‖S_i − S_q‖ against brute-force ground truth",
	)
	return t, nil
}

// Fig5cParamAccuracy reproduces Fig. 5(c): our design's accuracy for the
// four (l, d) parameter pairs the paper sweeps.
func Fig5cParamAccuracy(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		atoms = accuracyAtoms
		width = accuracyWidth
		tau   = 0.8
	)
	params := []struct{ l, d int }{
		{100, 5},
		{100, 3},
		{10, 6},
		{10, 4},
	}
	ks := []int{5, 10, 20, 30, 40, 50}

	t := &Table{
		ID:     "Fig. 5(c)",
		Title:  fmt.Sprintf("Our accuracy vs (l, d) parameters (n=%d, %d queries)", s.AccuracyUsers, s.Queries),
		Header: []string{"K", "L=100,D=5", "L=100,D=3", "L=10,D=6", "L=10,D=4"},
	}
	// accuracy[pi][ki]
	accuracy := make([][]float64, len(params))
	for pi, pr := range params {
		w, err := newAccuracyWorkload(s, pr.l, atoms, width)
		if err != nil {
			return nil, err
		}
		keys, err := experimentKeys(pr.l, s.Seed)
		if err != nil {
			return nil, err
		}
		p := core.Params{
			Tables:     pr.l,
			Capacity:   core.CapacityFor(s.AccuracyUsers, tau),
			ProbeRange: pr.d,
			MaxLoop:    2000,
			Seed:       s.Seed,
		}
		idx, err := core.Build(keys, itemsFrom(w.metas), p)
		if err != nil {
			return nil, fmt.Errorf("fig5c l=%d d=%d: %w", pr.l, pr.d, err)
		}
		accuracy[pi] = make([]float64, len(ks))
		for ki, k := range ks {
			acc, _, err := w.secureAccuracy(keys, idx, p, k)
			if err != nil {
				return nil, err
			}
			accuracy[pi][ki] = acc
		}
	}
	for ki, k := range ks {
		row := []string{fmt.Sprintf("%d", k)}
		for pi := range params {
			row = append(row, fmt.Sprintf("%.3f", accuracy[pi][ki]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper shape: accuracy improves with more retrieved profiles — (100,5) ≥ (100,3) ≥ (10,6) ≥ (10,4)",
	)
	return t, nil
}
