package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/shard"
)

// ExpSharding measures the sharded cloud tier: index-build wall time and
// fan-out SecRec latency as the same population is spread over 1, 2 and 4
// shards. The partitioned build shares one global cuckoo placement, so the
// per-query candidate set is identical at every shard count — the column
// makes that visible — while per-shard encryption parallelizes the build
// and fan-out splits each query's bucket unmasking across nodes.
func ExpSharding(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		tables = 10
		probes = 30
		tau    = 0.8
		ops    = 100
	)
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	n := s.IndexUsers
	metas := mixedMetas(n, tables, s.Seed)
	items := itemsFrom(metas)
	p := core.Params{
		Tables:     tables,
		Capacity:   core.CapacityFor(n, tau),
		ProbeRange: probes,
		MaxLoop:    5000,
		Seed:       s.Seed,
	}

	// Pre-generate the query trapdoors so the timed section is pure
	// fan-out. Stand-in 256 B profile ciphertexts keep the experiment's
	// memory footprint independent of s.Dim.
	rng := rand.New(rand.NewSource(s.Seed + 77))
	tds := make([]*core.Trapdoor, ops)
	for q := range tds {
		td, err := core.GenTpdr(keys, metas[rng.Intn(len(metas))], p)
		if err != nil {
			return nil, err
		}
		tds[q] = td
	}
	profileCT := func(id uint64) []byte {
		b := make([]byte, 256)
		binary.LittleEndian.PutUint64(b, id)
		return b
	}

	t := &Table{
		ID:    "Sharding",
		Title: fmt.Sprintf("Sharded cloud tier: build and fan-out SecRec cost (n=%d, l=10, d=30, τ=0.8)", n),
		Header: []string{
			"shards", "build (s)", "index size (total)", "fan-out SecRec (µs)", "candidates/query",
		},
	}
	var baseCandidates int = -1
	for _, nShards := range []int{1, 2, 4} {
		buildStart := time.Now()
		idxs, err := core.BuildPartitioned(keys, items, p, nShards, nil)
		if err != nil {
			return nil, fmt.Errorf("sharding S=%d: %w", nShards, err)
		}
		buildSecs := time.Since(buildStart).Seconds()

		owner := core.DefaultOwner(nShards)
		nodes := make([]shard.Node, nShards)
		var indexBytes int
		for sh := range nodes {
			cs := cloud.New()
			cs.SetIndex(idxs[sh])
			indexBytes += idxs[sh].SizeBytes()
			nodes[sh] = shard.NewLocal(cs)
		}
		for _, it := range items {
			node := nodes[owner(it.ID)].(shard.Local)
			node.CS.PutProfile(it.ID, profileCT(it.ID))
		}
		pool, err := shard.NewPool(shard.DefaultConfig(), nodes...)
		if err != nil {
			return nil, err
		}

		candidates := 0
		searchStart := time.Now()
		for _, td := range tds {
			ids, _, partial, err := pool.SecRec(context.Background(), td)
			if err != nil {
				return nil, err
			}
			if partial {
				return nil, fmt.Errorf("sharding S=%d: unexpected partial result", nShards)
			}
			candidates += len(ids)
		}
		searchMicros := float64(time.Since(searchStart).Microseconds()) / ops
		if baseCandidates < 0 {
			baseCandidates = candidates
		} else if candidates != baseCandidates {
			return nil, fmt.Errorf("sharding S=%d: %d candidates, single-node found %d", nShards, candidates, baseCandidates)
		}

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", nShards),
			fmt.Sprintf("%.2f", buildSecs),
			humanBytes(float64(indexBytes)),
			fmt.Sprintf("%.0f", searchMicros),
			fmt.Sprintf("%.1f", float64(candidates)/ops),
		})
	}
	t.Notes = append(t.Notes,
		"all shard counts share one global cuckoo placement, so the merged candidate set is identical (the column is checked, not just printed)",
		"each shard stores the full-width table but only its owners' slots are real ciphertext; fan-out unmasks l·(d+1) buckets per shard in parallel",
		"in-process shards share one machine's cores, so the fan-out column shows pure coordination overhead; the win is capacity — a TCP deployment puts each shard's memory and unmasking on its own node",
	)
	return t, nil
}
