package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pisd/internal/bow"
	"pisd/internal/imaging"
	"pisd/internal/lsh"
	"pisd/internal/surf"
	"pisd/internal/vec"
)

// TableClientOverhead reproduces the user-client overhead numbers of
// Sec. V-C: the cost of user image profile generation (SURF extraction of
// the preferred images plus BoW quantization against a 1000-word
// vocabulary), user metadata computation (l LSH hashes of the profile),
// and the client-side storage of the shared vocabulary.
func TableClientOverhead(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		imagesPerUser = 5
		vocabWords    = 1000
		trials        = 3
	)
	rng := rand.New(rand.NewSource(s.Seed))

	// Preferred images of one user.
	images := make([]*imaging.Image, imagesPerUser)
	topics := imaging.AllTopics()
	for i := range images {
		im, err := imaging.Render(topics[i%len(topics)], s.Seed+int64(i), 128, 128)
		if err != nil {
			return nil, err
		}
		images[i] = im
	}

	// A 1000-word vocabulary of the paper's size. Training on descriptor
	// clusters is timed separately; the per-user cost only quantizes
	// against it, so a synthetic vocabulary of realistic geometry
	// (unit-ish descriptor centroids) times identically.
	vocab := &bow.Vocabulary{Words: make([][]float64, vocabWords)}
	for k := range vocab.Words {
		c := make([]float64, surf.DescriptorSize)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		vocab.Words[k] = vec.Normalize(c)
	}

	opts := surf.DefaultOptions()
	var profile []float64
	profileStart := time.Now()
	for trial := 0; trial < trials; trial++ {
		perImage := make([][]surf.Descriptor, 0, imagesPerUser)
		for _, im := range images {
			descs, err := surf.Extract(im, opts)
			if err != nil {
				return nil, err
			}
			perImage = append(perImage, descs)
		}
		p, err := vocab.Profile(perImage)
		if err != nil {
			return nil, err
		}
		profile = p
	}
	profileSecs := time.Since(profileStart).Seconds() / trials

	family, err := lsh.New(lshParamsForDim(vocabWords, 10, 4, 0.8, s.Seed))
	if err != nil {
		return nil, err
	}
	const metaTrials = 200
	metaStart := time.Now()
	for trial := 0; trial < metaTrials; trial++ {
		family.Hash(profile)
	}
	metaMillis := float64(time.Since(metaStart).Microseconds()) / metaTrials / 1000

	t := &Table{
		ID:    "Client overhead",
		Title: "User client cost (Sec. V-C), 5 preferred images, 1000-word vocabulary",
		Header: []string{
			"quantity", "measured", "paper",
		},
		Rows: [][]string{
			{"image profile generation", fmt.Sprintf("%.2f s", profileSecs), "0.54 s"},
			{"user metadata computation", fmt.Sprintf("%.2f ms", metaMillis), "0.97 ms"},
			{"vocabulary storage", humanBytes(float64(vocab.SizeBytes())), "1.03 MB"},
		},
	}
	t.Notes = append(t.Notes,
		"profile generation is dominated by SURF extraction; absolute numbers depend on image size and CPU",
	)
	return t, nil
}
