package experiments

import (
	"fmt"
	"math/rand"

	"pisd/internal/core"
	"pisd/internal/leakage"
)

// ExpLeakageAudit quantifies the pattern leakage of a realistic query
// sequence against the secure index — the empirical counterpart of the
// security analysis (Sec. IV, Definitions 3–5). It records real trapdoor
// positions and recovered identifiers, verifies the implementation leaks
// exactly the proven profile, and reports how much linkage accumulates
// with and without repeat queries.
func ExpLeakageAudit(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const tables = 10
	n := s.AccuracyUsers
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	metas := mixedMetas(n, tables, s.Seed)
	p := core.Params{
		Tables:     tables,
		Capacity:   core.CapacityFor(n, 0.8),
		ProbeRange: 30,
		MaxLoop:    5000,
		Seed:       s.Seed,
	}
	idx, err := core.Build(keys, itemsFrom(metas), p)
	if err != nil {
		return nil, fmt.Errorf("leakage: %w", err)
	}

	record := func(log *leakage.Log, metaIdx int) error {
		meta := metas[metaIdx]
		pt, err := core.GenPosTpdr(keys, meta, p)
		if err != nil {
			return err
		}
		td, err := core.GenTpdr(keys, meta, p)
		if err != nil {
			return err
		}
		ids, err := idx.SecRec(td)
		if err != nil {
			return err
		}
		return log.Record(meta, pt, ids)
	}

	t := &Table{
		ID:    "Leakage",
		Title: fmt.Sprintf("Pattern leakage audit over %d queries (n=%d, l=10, d=30)", s.Queries, n),
		Header: []string{
			"workload", "distinct trapdoors", "linkable pairs", "avg shared tables", "ids observed",
		},
	}
	rng := rand.New(rand.NewSource(s.Seed + 55))

	// Workload A: all-distinct targets — only LSH-value overlaps link.
	distinct := leakage.NewLog(tables)
	for q := 0; q < s.Queries; q++ {
		if err := record(distinct, rng.Intn(n)); err != nil {
			return nil, err
		}
	}
	if err := distinct.Verify(); err != nil {
		return nil, fmt.Errorf("leakage profile inconsistent: %w", err)
	}
	// Workload B: a hot target queried for 30% of requests — repeats are
	// fully linkable, the inherent SSE leakage the paper discusses.
	hot := leakage.NewLog(tables)
	hotTarget := rng.Intn(n)
	for q := 0; q < s.Queries; q++ {
		target := hotTarget
		if rng.Float64() > 0.3 {
			target = rng.Intn(n)
		}
		if err := record(hot, target); err != nil {
			return nil, err
		}
	}
	if err := hot.Verify(); err != nil {
		return nil, fmt.Errorf("leakage profile inconsistent: %w", err)
	}

	for _, wl := range []struct {
		name string
		log  *leakage.Log
	}{
		{"distinct targets", distinct},
		{"30% hot target", hot},
	} {
		rep := wl.log.Summarize()
		t.Rows = append(t.Rows, []string{
			wl.name,
			fmt.Sprintf("%d/%d", rep.DistinctTrapdoors, rep.Queries),
			fmt.Sprintf("%d", rep.LinkablePairs),
			fmt.Sprintf("%.2f", rep.AvgSharedTables),
			fmt.Sprintf("%d", rep.IDsObserved),
		})
	}
	t.Notes = append(t.Notes,
		"deterministic trapdoors make repeat queries fully linkable (Definition 4); batching with decoys (frontend.DiscoverWithDecoys) trades bandwidth against this linkage",
		"Verify() confirmed the implementation leaks exactly the proven profile: equal metadata <=> equal positions, nothing else",
	)
	return t, nil
}
