package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestScaleValidate(t *testing.T) {
	for _, s := range []Scale{Quick(), Default(), Paper()} {
		if err := s.Validate(); err != nil {
			t.Errorf("scale %+v invalid: %v", s, err)
		}
	}
	bad := Quick()
	bad.Queries = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid scale accepted")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "T1",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T1", "demo", "bbbb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{512, "512.00 B"},
		{2048, "2.00 KB"},
		{3 * 1 << 20, "3.00 MB"},
		{1.5 * (1 << 40), "1.50 TB"},
	}
	for _, tt := range tests {
		if got := humanBytes(tt.in); got != tt.want {
			t.Errorf("humanBytes(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestSyntheticMetasShape(t *testing.T) {
	metas := mixedMetas(500, 6, 1)
	if len(metas) != 500 {
		t.Fatalf("len = %d", len(metas))
	}
	// Skew: at least one bucket value in table 0 should repeat.
	counts := map[uint64]int{}
	maxCount := 0
	for _, m := range metas {
		if len(m) != 6 {
			t.Fatal("wrong arity")
		}
		counts[m[0]]++
		if counts[m[0]] > maxCount {
			maxCount = counts[m[0]]
		}
	}
	if maxCount < 3 {
		t.Errorf("no bucket skew: max repeat %d", maxCount)
	}
	// Deterministic.
	again := mixedMetas(500, 6, 1)
	for i := range metas {
		if !metas[i].Equal(again[i]) {
			t.Fatal("not deterministic")
		}
	}
}

func TestFig4aSpaceQuick(t *testing.T) {
	tbl, err := Fig4aSpace(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(paperSweepN)+1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Quadratic vs linear: the KIK12/ours ratio must grow with n.
	ratio := func(row []string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "x"), 64)
		if err != nil {
			t.Fatalf("parse ratio %q: %v", row[3], err)
		}
		return v
	}
	for i := 1; i < len(paperSweepN); i++ {
		if ratio(tbl.Rows[i]) <= ratio(tbl.Rows[i-1]) {
			t.Error("KIK12/ours ratio not increasing in n")
		}
	}
	// Headline: at 1M, KIK12 is TB-scale and ours MB-scale.
	last := tbl.Rows[len(paperSweepN)-1]
	if !strings.Contains(last[1], "TB") {
		t.Errorf("KIK12 @1M = %s, want TB scale", last[1])
	}
	if !strings.Contains(last[2], "MB") {
		t.Errorf("ours @1M = %s, want MB scale", last[2])
	}
}

func TestFig4bBandwidthQuick(t *testing.T) {
	tbl, err := Fig4bBandwidth(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Ours must be constant across the n sweep; KIK12 must grow.
	if tbl.Rows[0][2] != tbl.Rows[len(tbl.Rows)-1][2] {
		t.Error("our trapdoor bandwidth varies with n")
	}
	if tbl.Rows[0][1] == tbl.Rows[len(tbl.Rows)-1][1] {
		t.Error("KIK12 bandwidth does not vary with n")
	}
}

func TestFig4cOperationsQuick(t *testing.T) {
	_, rows, err := Fig4cOperations(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.SearchMicros <= 0 || r.DeleteMicros <= 0 {
			t.Errorf("non-positive latency at τ=%.2f: %+v", r.Tau, r)
		}
	}
}

func TestFig5aBuildCostQuick(t *testing.T) {
	_, rows, err := Fig5aBuildCost(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	okCount := 0
	for _, r := range rows {
		if !r.NeededRehash {
			okCount++
			if r.InsertSecs < 0 || r.EncryptSecs <= 0 {
				t.Errorf("bad timings: %+v", r)
			}
		}
	}
	if okCount == 0 {
		t.Error("every load factor needed rehash")
	}
}

func TestFig5bAccuracyQuick(t *testing.T) {
	tbl, err := Fig5bAccuracy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", cell, err)
		}
		return v
	}
	// Paper shape at every K: baseline >= ours >= KIK12, with a tolerance
	// for sampling noise at the tiny Quick scale (10 queries).
	for _, row := range tbl.Rows {
		base, ours, kik := parse(row[1]), parse(row[2]), parse(row[3])
		if base <= 0 || base > 1.001 || ours <= 0 || ours > 1.001 {
			t.Errorf("accuracy out of range: %v", row)
		}
		if ours > base+0.1 {
			t.Errorf("K=%s: ours %.3f above baseline %.3f", row[0], ours, base)
		}
		if kik > ours+0.1 {
			t.Errorf("K=%s: KIK12 %.3f above ours %.3f", row[0], kik, ours)
		}
	}
}

func TestClientOverheadQuick(t *testing.T) {
	tbl, err := TableClientOverhead(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestFig3QualitativeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	tbl, err := Fig3Qualitative(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Consistency note must report a percentage.
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "topic consistency") {
			found = true
		}
	}
	if !found {
		t.Error("consistency note missing")
	}
}

func TestAblationsQuick(t *testing.T) {
	tables, err := Ablations(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", Quick(), &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestMetricsComparisonQuick(t *testing.T) {
	tbl, err := ExpMetricsComparison(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestLeakageAuditQuick(t *testing.T) {
	tbl, err := ExpLeakageAudit(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The hot-target workload must show fewer distinct trapdoors.
	if tbl.Rows[0][1] == tbl.Rows[1][1] {
		t.Log("hot-target workload produced no repeats at this scale (possible but unusual)")
	}
}

func TestCloudRankQuick(t *testing.T) {
	tbl, err := ExpCloudRank(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// ASPE ranking must agree with front-end ranking.
	if tbl.Rows[1][3] != "100%" {
		t.Errorf("rank agreement %s, want 100%%", tbl.Rows[1][3])
	}
	if tbl.Rows[0][1] != tbl.Rows[1][1] {
		t.Errorf("accuracies differ: %s vs %s", tbl.Rows[0][1], tbl.Rows[1][1])
	}
}

func TestScalingQuick(t *testing.T) {
	tbl, err := ExpScaling(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}
