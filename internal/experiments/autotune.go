package experiments

import (
	"fmt"

	"pisd/internal/autotune"
)

// ExpAutotuneName runs the recall/cost autotuner and tabulates its
// Pareto frontier.
const ExpAutotuneName = "autotune"

// ExpAutotune reproduces the recall-vs-cost frontier of DESIGN.md §16 at
// the experiment scale: the tuner sweeps the tiny grid around the untuned
// reference, screens placement feasibility, measures every frontier
// survivor on the real secure stack, and reports the cheapest config that
// holds measured recall and accuracy within the loss budget.
func ExpAutotune(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := autotune.Config{
		Users:   s.AccuracyUsers,
		Dim:     s.Dim,
		Queries: s.Queries,
		Seed:    s.Seed,
		Grid:    autotune.TinyGrid(s.AccuracyUsers),
		Measure: true,
	}
	rep, err := autotune.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("autotune: %w", err)
	}

	t := &Table{
		ID:    "Autotune",
		Title: fmt.Sprintf("Recall-vs-cost frontier, n=%d (tiny grid, measured on the secure stack)", cfg.Users),
		Header: []string{
			"config", "budget", "proxy recall", "sec recall", "accuracy", "buckets/q", "tpdr (µs)", "index", "qps",
		},
	}
	row := func(label string, r autotune.Result) []string {
		cells := []string{
			label,
			fmt.Sprintf("%d", r.Budget),
			fmt.Sprintf("%.4f", r.Recall),
			"-", "-", "-", "-", "-", "-",
		}
		if m := r.Measured; m != nil {
			cells[3] = fmt.Sprintf("%.4f", m.Recall)
			cells[4] = fmt.Sprintf("%.4f", m.Accuracy)
			cells[5] = fmt.Sprintf("%.1f", m.BucketsPerQuery)
			cells[6] = fmt.Sprintf("%.1f", m.TrapdoorUS)
			cells[7] = humanBytes(float64(m.IndexBytes))
			cells[8] = fmt.Sprintf("%.0f", m.QPS)
		}
		return cells
	}
	t.Rows = append(t.Rows, row("reference "+rep.Reference.Candidate.String(), rep.Reference))
	for _, r := range rep.Frontier {
		t.Rows = append(t.Rows, row(r.Candidate.String(), r))
	}
	if w := rep.Winner; w != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"winner %s: budget %d vs reference %d (−%.0f%% of l·(d+1)) at no measured recall/accuracy loss beyond %.2f",
			w.Candidate, w.Budget, rep.Reference.Budget, 100*rep.BudgetReduction, rep.Config.MaxRecallLoss))
	} else {
		t.Notes = append(t.Notes, "no config within the recall-loss budget beat the reference; defaults stand")
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d configs evaluated, %d pruned by dominance; buckets/q is read from the live cloud.buckets_unmasked counter",
		rep.Evaluated, rep.Pruned))
	return t, nil
}
