package experiments

import (
	"fmt"
	"io"
	"time"
)

// Experiment names accepted by Run.
const (
	ExpFig3     = "fig3"
	ExpClient   = "client"
	ExpFig4a    = "fig4a"
	ExpFig4b    = "fig4b"
	ExpFig4c    = "fig4c"
	ExpFig5a    = "fig5a"
	ExpFig5b    = "fig5b"
	ExpFig5c    = "fig5c"
	ExpAblation = "ablations"
	ExpMetrics  = "metrics"
	ExpLeakage  = "leakage"
	// ExpCloudRankName compares front-end vs ASPE cloud-side ranking.
	ExpCloudRankName = "cloudrank"
	// ExpScalingName measures discovery cost across population sizes.
	ExpScalingName = "scaling"
	// ExpShardingName compares 1/2/4-shard build and fan-out SecRec cost.
	ExpShardingName = "sharding"
	// ExpAutotuneName is declared in autotune.go: the recall/cost
	// autotuner's measured Pareto frontier.
)

// AllExperiments lists every experiment in paper order.
func AllExperiments() []string {
	return []string{
		ExpFig3, ExpClient, ExpFig4a, ExpFig4b, ExpFig4c,
		ExpFig5a, ExpFig5b, ExpFig5c, ExpAblation, ExpMetrics, ExpLeakage,
		ExpCloudRankName, ExpScalingName, ExpShardingName, ExpAutotuneName,
	}
}

// Run executes one named experiment and renders its tables to w.
func Run(name string, s Scale, w io.Writer) error {
	start := time.Now()
	var tables []*Table
	switch name {
	case ExpFig3:
		t, err := Fig3Qualitative(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpClient:
		t, err := TableClientOverhead(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpFig4a:
		t, err := Fig4aSpace(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpFig4b:
		t, err := Fig4bBandwidth(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpFig4c:
		t, _, err := Fig4cOperations(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpFig5a:
		t, _, err := Fig5aBuildCost(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpFig5b:
		t, err := Fig5bAccuracy(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpFig5c:
		t, err := Fig5cParamAccuracy(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpMetrics:
		t, err := ExpMetricsComparison(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpLeakage:
		t, err := ExpLeakageAudit(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpCloudRankName:
		t, err := ExpCloudRank(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpScalingName:
		t, err := ExpScaling(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpShardingName:
		t, err := ExpSharding(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpAutotuneName:
		t, err := ExpAutotune(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, t)
	case ExpAblation:
		ts, err := Ablations(s)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tables = append(tables, ts...)
	default:
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, AllExperiments())
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	return err
}

// RunAll executes every experiment in paper order.
func RunAll(s Scale, w io.Writer) error {
	for _, name := range AllExperiments() {
		if err := Run(name, s, w); err != nil {
			return err
		}
	}
	return nil
}
