package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"pisd/internal/core"
)

// ExpScaling substantiates the paper's headline scalability claim ("fast
// and scalable similarity discovery over millions of encrypted images"):
// discovery latency and per-query bandwidth as the population grows. The
// trapdoor addresses l·(d+1) buckets regardless of n, so both must stay
// flat while only the index footprint grows linearly.
func ExpScaling(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		tables = 10
		probes = 30
		tau    = 0.8
		ops    = 100
	)
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	sizes := []int{s.IndexUsers / 10, s.IndexUsers / 4, s.IndexUsers / 2, s.IndexUsers}

	t := &Table{
		ID:    "Scaling",
		Title: "Discovery cost vs population size (l=10, d=30, τ=0.8)",
		Header: []string{
			"n users", "build (s)", "index size", "search (µs)", "per-query bandwidth",
		},
	}
	for _, n := range sizes {
		metas := mixedMetas(n, tables, s.Seed)
		p := core.Params{
			Tables:     tables,
			Capacity:   core.CapacityFor(n, tau),
			ProbeRange: probes,
			MaxLoop:    5000,
			Seed:       s.Seed,
		}
		buildStart := time.Now()
		idx, err := core.Build(keys, itemsFrom(metas), p)
		if err != nil {
			return nil, fmt.Errorf("scaling n=%d: %w", n, err)
		}
		buildSecs := time.Since(buildStart).Seconds()

		rng := rand.New(rand.NewSource(s.Seed + int64(n)))
		profileCT := profileCiphertextBytes(s.Dim)
		var bwSum float64
		searchStart := time.Now()
		for q := 0; q < ops; q++ {
			meta := metas[rng.Intn(len(metas))]
			td, err := core.GenTpdr(keys, meta, p)
			if err != nil {
				return nil, err
			}
			ids, err := idx.SecRec(td)
			if err != nil {
				return nil, err
			}
			bwSum += float64(td.SizeBytes() + len(ids)*profileCT)
		}
		searchMicros := float64(time.Since(searchStart).Microseconds()) / ops

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", buildSecs),
			humanBytes(float64(idx.SizeBytes())),
			fmt.Sprintf("%.0f", searchMicros),
			humanBytes(bwSum / ops),
		})
	}
	t.Notes = append(t.Notes,
		"search latency and bandwidth are flat in n (constant l·(d+1) bucket accesses); build time and index size grow linearly",
	)
	return t, nil
}
