package experiments

import (
	"fmt"

	"pisd/internal/core"
	"pisd/internal/dataset"
	"pisd/internal/lsh"
	"pisd/internal/vec"
)

// ExpMetricsComparison implements the paper's stated future work
// (Sec. III-A: "We leave the effectiveness comparison against other
// metrics in our future work"): it drives the unchanged secure index with
// three similarity metrics — Euclidean (p-stable E2LSH, the paper's
// choice), cosine (random-hyperplane SimHash) and Jaccard over visual-word
// supports (MinHash) — and compares discovery quality.
//
// Because the three metrics induce different ground truths, the common
// yardstick is metric-independent: the fraction of securely discovered
// top-K users that share at least one interest topic with the query
// (the same consistency notion as Fig. 3).
func ExpMetricsComparison(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		tables = 10
		probes = 30
		tau    = 0.8
		topK   = 10
	)
	cfg := dataset.DefaultConfig(s.AccuracyUsers)
	cfg.Dim = s.Dim
	cfg.Seed = s.Seed
	ds, err := dataset.Generate(cfg)
	if err != nil {
		return nil, err
	}
	queries, queryTopics := ds.Queries(s.Queries, s.Seed+100)
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}

	type metric struct {
		name   string
		hasher lsh.Hasher
		dist   func(a, b []float64) float64
	}
	euclid, err := lsh.New(lshParamsForDim(s.Dim, tables, accuracyAtoms, accuracyWidth, s.Seed))
	if err != nil {
		return nil, err
	}
	cosine, err := lsh.NewSign(lsh.SignParams{Dim: s.Dim, Tables: tables, Bits: 12, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	jaccard, err := lsh.NewMinHash(lsh.MinHashParams{Dim: s.Dim, Tables: tables, Hashes: 3, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	metrics := []metric{
		{"euclidean (paper)", euclid, vec.Distance},
		{"cosine", cosine, vec.CosineDistance},
		{"jaccard", jaccard, vec.JaccardDistance},
	}

	t := &Table{
		ID:    "Metrics",
		Title: fmt.Sprintf("Similarity metrics through the same secure index (n=%d, l=10, d=30, top-%d)", s.AccuracyUsers, topK),
		Header: []string{
			"metric", "topic consistency", "avg candidates", "avg results",
		},
	}
	for _, m := range metrics {
		metas := make([]lsh.Metadata, len(ds.Profiles))
		for i, p := range ds.Profiles {
			metas[i] = m.hasher.Hash(p)
		}
		p := core.Params{
			Tables:     tables,
			Capacity:   core.CapacityFor(s.AccuracyUsers, tau),
			ProbeRange: probes,
			MaxLoop:    5000,
			Seed:       s.Seed,
		}
		idx, err := core.Build(keys, itemsFrom(metas), p)
		if err != nil {
			return nil, fmt.Errorf("metrics %s: %w", m.name, err)
		}
		var consistentSum, totalSum, candSum, resultSum float64
		for qi, q := range queries {
			td, err := core.GenTpdr(keys, m.hasher.Hash(q), p)
			if err != nil {
				return nil, err
			}
			ids, err := idx.SecRec(td)
			if err != nil {
				return nil, err
			}
			candSum += float64(len(ids))
			tk := vec.NewTopK(topK)
			for _, id := range ids {
				u := int(id - 1)
				tk.Offer(id, m.dist(q, ds.Profiles[u]))
			}
			top := tk.Sorted()
			resultSum += float64(len(top))
			for _, r := range top {
				totalSum++
				if dataset.SharedTopics(queryTopics[qi], ds.UserTopics[r.ID-1]) > 0 {
					consistentSum++
				}
			}
		}
		nq := float64(len(queries))
		consistency := 0.0
		if totalSum > 0 {
			consistency = consistentSum / totalSum
		}
		t.Rows = append(t.Rows, []string{
			m.name,
			fmt.Sprintf("%.0f%%", consistency*100),
			fmt.Sprintf("%.0f", candSum/nq),
			fmt.Sprintf("%.1f", resultSum/nq),
		})
	}
	t.Notes = append(t.Notes,
		"extension of Sec. III-A future work: the index is metric-agnostic — only the pre-shared hash family and the front-end ranking change",
		"consistency = fraction of top-K discovered users sharing >=1 interest topic with the query",
	)
	return t, nil
}
