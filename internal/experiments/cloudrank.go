package experiments

import (
	"fmt"

	"pisd/internal/asperank"
	"pisd/internal/baseline"
	"pisd/internal/core"
	"pisd/internal/vec"
)

// ExpCloudRank reproduces the comparison the paper defers to future tasks
// (Sec. III-C: combining the index with encryption that supports
// "encrypted cloud side distance ranking"): the same secure-index
// candidate retrieval, ranked either
//
//   - at the front end after decrypting the returned profiles (the
//     paper's design — provably secure, candidate-set bandwidth), or
//   - at the cloud over ASPE-encrypted profiles, returning only top-k
//     identifiers (secure-kNN style — ~constant tiny response, weaker
//     security: ASPE falls to known-plaintext attacks, see the paper's
//     remark on [29]/[30]).
func ExpCloudRank(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const (
		tables = 10
		probes = 30
		tau    = 0.8
		topK   = 10
	)
	w, err := newAccuracyWorkload(s, tables, accuracyAtoms, accuracyWidth)
	if err != nil {
		return nil, err
	}
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	p := core.Params{
		Tables:     tables,
		Capacity:   core.CapacityFor(s.AccuracyUsers, tau),
		ProbeRange: probes,
		MaxLoop:    5000,
		Seed:       s.Seed,
	}
	idx, err := core.Build(keys, itemsFrom(w.metas), p)
	if err != nil {
		return nil, fmt.Errorf("cloudrank: %w", err)
	}
	// ASPE-encrypt every profile for the cloud-side variant.
	scheme, err := asperank.New(s.Dim, s.Seed)
	if err != nil {
		return nil, err
	}
	aspeByID := make(map[uint64]*asperank.EncProfile, s.AccuracyUsers)
	for i, profile := range w.ds.Profiles {
		e, err := scheme.Encrypt(uint64(i+1), profile)
		if err != nil {
			return nil, err
		}
		aspeByID[uint64(i+1)] = e
	}

	profileCT := profileCiphertextBytes(s.Dim)
	var (
		agreeSum, accSFSum, accCloudSum float64
		bwSFSum, bwCloudSum             float64
	)
	for qi, q := range w.queries {
		td, err := core.GenTpdr(keys, w.qMetas[qi], p)
		if err != nil {
			return nil, err
		}
		ids, err := idx.SecRec(td)
		if err != nil {
			return nil, err
		}
		// Variant A (paper): retrieve candidate profiles, rank at SF.
		cands := make([]int, len(ids))
		for i, id := range ids {
			cands[i] = int(id - 1)
		}
		sfTop := baseline.RankCandidates(w.ds.Profiles, q, cands, topK)
		bwSFSum += float64(td.SizeBytes() + len(ids)*profileCT)

		// Variant B: cloud ranks the same candidates over ASPE
		// ciphertexts and returns only top-k ids.
		tok, err := scheme.TokenFor(q)
		if err != nil {
			return nil, err
		}
		encCands := make([]*asperank.EncProfile, 0, len(ids))
		for _, id := range ids {
			encCands = append(encCands, aspeByID[id])
		}
		cloudTop := asperank.Rank(encCands, tok, topK)
		bwCloudSum += float64(td.SizeBytes() + 8*len(tok.Vec) + 8*len(cloudTop))

		// Agreement and accuracy of both variants. RankCandidates scores
		// 0-based profile indexes; cloudTop carries 1-based user ids.
		agree := 0
		for i := range cloudTop {
			if i < len(sfTop) && cloudTop[i] == sfTop[i].ID+1 {
				agree++
			}
		}
		if len(cloudTop) > 0 {
			agreeSum += float64(agree) / float64(len(cloudTop))
		}
		gt := baseline.BruteForceTopK(w.ds.Profiles, q, topK)
		accSFSum += baseline.AccuracyRatio(gt, sfTop)
		cloudScored := make([]vec.Scored, len(cloudTop))
		for i, id := range cloudTop {
			cloudScored[i] = vec.Scored{ID: id, Score: vec.Distance(q, w.ds.Profiles[id-1])}
		}
		accCloudSum += baseline.AccuracyRatio(gt, cloudScored)
	}
	nq := float64(len(w.queries))

	t := &Table{
		ID:    "Cloud ranking",
		Title: fmt.Sprintf("Front-end vs ASPE cloud-side ranking (n=%d, l=10, d=30, top-%d)", s.AccuracyUsers, topK),
		Header: []string{
			"variant", "accuracy", "per-query bandwidth", "rank agreement",
		},
		Rows: [][]string{
			{"SF ranking (paper)", fmt.Sprintf("%.3f", accSFSum/nq), humanBytes(bwSFSum / nq), "-"},
			{"ASPE cloud ranking", fmt.Sprintf("%.3f", accCloudSum/nq), humanBytes(bwCloudSum / nq), fmt.Sprintf("%.0f%%", 100*agreeSum/nq)},
		},
	}
	t.Notes = append(t.Notes,
		"both variants rank the same secure-index candidates; ASPE moves the ranking to the cloud and returns ids only",
		"trade-off: ~an order of magnitude less response bandwidth, but ASPE is known-plaintext-attack vulnerable (paper's remark on [29]/[30]) — the SF-ranking flow remains the provably secure default",
	)
	return t, nil
}
