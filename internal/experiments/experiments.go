// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V) on the synthetic substrate described in DESIGN.md:
//
//   - Fig. 3  — qualitative social discovery consistency
//   - user-client overhead (Sec. V-C prose table)
//   - Fig. 4(a) — index space overhead, ours vs KIK12
//   - Fig. 4(b) — per-query bandwidth, ours vs KIK12
//   - Fig. 4(c) — search/delete/insert latency and kick-aways vs load
//   - Fig. 5(a) — index building cost vs load factor
//   - Fig. 5(b) — accuracy, baseline vs ours vs KIK12
//   - Fig. 5(c) — accuracy vs (l, d) parameters
//
// Each experiment returns a typed Table whose rows mirror the series the
// paper plots; the cmd/pisd-experiments binary renders them. Scales are
// configurable: the defaults fit a laptop, Paper() reproduces the paper's
// n = 1M operating points.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scale bounds the experiment workloads.
type Scale struct {
	// IndexUsers is n for the index-centric experiments (Fig. 4, 5(a)).
	IndexUsers int
	// AccuracyUsers is n for the accuracy experiments (Fig. 5(b), 5(c)),
	// which need brute-force ground truth.
	AccuracyUsers int
	// Queries is the number of query profiles averaged per accuracy
	// point (the paper uses 100).
	Queries int
	// PipelineUsers is the population of the full image-pipeline
	// experiment (Fig. 3).
	PipelineUsers int
	// Dim is the profile dimensionality (vocabulary size; paper: 1000).
	Dim int
	// Seed drives all synthetic generation.
	Seed int64
}

// Default returns a scale that completes every experiment on a single
// core in minutes.
func Default() Scale {
	return Scale{
		IndexUsers:    100_000,
		AccuracyUsers: 10_000,
		Queries:       50,
		PipelineUsers: 2_000,
		Dim:           1000,
		Seed:          1,
	}
}

// Quick returns a scale small enough for unit tests and smoke runs.
func Quick() Scale {
	return Scale{
		IndexUsers:    5_000,
		AccuracyUsers: 2_000,
		Queries:       10,
		PipelineUsers: 300,
		Dim:           200,
		Seed:          1,
	}
}

// Paper returns the paper's full operating point (1M users, 100 queries).
// Requires tens of GB of RAM and hours on one core.
func Paper() Scale {
	return Scale{
		IndexUsers:    1_000_000,
		AccuracyUsers: 100_000,
		Queries:       100,
		PipelineUsers: 10_000,
		Dim:           1000,
		Seed:          1,
	}
}

// Validate reports whether the scale is usable.
func (s Scale) Validate() error {
	switch {
	case s.IndexUsers < 100:
		return fmt.Errorf("experiments: index users %d too small", s.IndexUsers)
	case s.AccuracyUsers < 100:
		return fmt.Errorf("experiments: accuracy users %d too small", s.AccuracyUsers)
	case s.Queries < 1:
		return fmt.Errorf("experiments: queries %d too small", s.Queries)
	case s.PipelineUsers < 10:
		return fmt.Errorf("experiments: pipeline users %d too small", s.PipelineUsers)
	case s.Dim < 16:
		return fmt.Errorf("experiments: dim %d too small", s.Dim)
	}
	return nil
}

// Table is one regenerated figure or table: a header, data rows and notes
// recording the paper's reported shape for comparison.
type Table struct {
	// ID is the paper artefact this reproduces, e.g. "Fig. 4(a)".
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes records the paper-reported shape and any scale caveats.
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// humanBytes formats a byte count with binary units.
func humanBytes(b float64) string {
	units := []string{"B", "KB", "MB", "GB", "TB", "PB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	return fmt.Sprintf("%.2f %s", b, units[i])
}
