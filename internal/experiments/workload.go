package experiments

import (
	"math/rand"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

// The index experiments use two synthetic metadata models, both O(n) to
// generate (no profile materialization):
//
//   - mixedMetas models a population with moderate LSH bucket skew: 60% of
//     users draw each table's value from a Zipf-weighted pool of popular
//     values, the rest hash uniquely. Builds succeed at small probe ranges
//     (d=4), matching the paper's bandwidth operating point.
//
//   - denseMetas models the saturated regime of the paper's Fig. 4(c):
//     every table value is drawn uniformly from a pool of only n/140
//     values. The union of addressable buckets then barely exceeds n, so
//     the load within the addressable subset approaches 1 as τ → 0.82;
//     insertions increasingly find all l·(d+1) addressed buckets full and
//     packing relies on cuckoo kick chains, whose frequency and length
//     grow sharply with the load factor — the paper's kick-away curve.

// mixedMetas generates metadata with moderate bucket skew.
func mixedMetas(n, tables int, seed int64) []lsh.Metadata {
	rng := rand.New(rand.NewSource(seed))
	poolSize := n / 50
	if poolSize < 16 {
		poolSize = 16
	}
	pools := make([][]uint64, tables)
	for j := range pools {
		pool := make([]uint64, poolSize)
		for i := range pool {
			pool[i] = rng.Uint64()
		}
		pools[j] = pool
	}
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(poolSize-1))
	metas := make([]lsh.Metadata, n)
	for i := range metas {
		m := make(lsh.Metadata, tables)
		popular := rng.Float64() < 0.6
		for j := range m {
			if popular && rng.Float64() < 0.8 {
				m[j] = pools[j][zipf.Uint64()]
			} else {
				m[j] = rng.Uint64()
			}
		}
		metas[i] = m
	}
	return metas
}

// denseMetas generates metadata in the saturated-bucket regime.
func denseMetas(n, tables int, seed int64) []lsh.Metadata {
	rng := rand.New(rand.NewSource(seed))
	poolSize := n / 140
	if poolSize < 8 {
		poolSize = 8
	}
	pools := make([][]uint64, tables)
	for j := range pools {
		pool := make([]uint64, poolSize)
		for i := range pool {
			pool[i] = rng.Uint64()
		}
		pools[j] = pool
	}
	metas := make([]lsh.Metadata, n)
	for i := range metas {
		m := make(lsh.Metadata, tables)
		for j := range m {
			m[j] = pools[j][rng.Intn(poolSize)]
		}
		metas[i] = m
	}
	return metas
}

// uniqueMetas generates metadata where every user hashes uniquely — the
// collision-free workload used when the measured quantity (e.g. per-query
// bandwidth, which is l·(d+1) buckets by construction) does not depend on
// bucket skew but the build must succeed at small probe ranges.
func uniqueMetas(n, tables int, seed int64) []lsh.Metadata {
	rng := rand.New(rand.NewSource(seed))
	metas := make([]lsh.Metadata, n)
	for i := range metas {
		m := make(lsh.Metadata, tables)
		for j := range m {
			m[j] = rng.Uint64()
		}
		metas[i] = m
	}
	return metas
}

// itemsFrom pairs 1-based identifiers with metadata.
func itemsFrom(metas []lsh.Metadata) []core.Item {
	items := make([]core.Item, len(metas))
	for i, m := range metas {
		items[i] = core.Item{ID: uint64(i + 1), Meta: m}
	}
	return items
}

// experimentKeys derives deterministic keys so experiment runs are
// reproducible.
func experimentKeys(tables int, seed int64) (*crypt.KeySet, error) {
	return crypt.GenDeterministic("pisd-experiments", tables)
}
