package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/kik12"
	"pisd/internal/lsh"
)

// paperSweepN is the x-axis of Fig. 4(a)/(b): 0.25M … 1M users.
var paperSweepN = []int{250_000, 500_000, 750_000, 1_000_000}

// fig4Tables and fig4Tau are the paper's parameters for Fig. 4(a):
// l = 10, τ = 0.8.
const (
	fig4Tables = 10
	fig4Tau    = 0.8
)

// OursIndexBytes is the closed-form size of our index: u·⌈n/τ⌉ bytes
// (the paper's u·n/τ with u = 32 B).
func OursIndexBytes(n int, tau float64) float64 {
	return float64(core.BucketSize) * (float64(n)/tau + 1)
}

// Fig4aSpace reproduces Fig. 4(a): index space overhead of KIK12 (l·n²/8,
// quadratic) against ours (u·n/τ, linear), with a measured point from a
// really built index at the configured scale.
func Fig4aSpace(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Fig. 4(a)",
		Title: "Index space overhead, ours vs KIK12 (l=10, τ=0.8)",
		Header: []string{
			"n users", "KIK12 (closed form)", "ours (closed form)", "ratio KIK12/ours",
		},
	}
	for _, n := range paperSweepN {
		kik := kik12.PaddedSizeBytes(n, fig4Tables)
		ours := OursIndexBytes(n, fig4Tau)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			humanBytes(kik),
			humanBytes(ours),
			fmt.Sprintf("%.0fx", kik/ours),
		})
	}

	// Measured point: build the real index at the configured scale.
	keys, err := experimentKeys(fig4Tables, s.Seed)
	if err != nil {
		return nil, err
	}
	metas := mixedMetas(s.IndexUsers, fig4Tables, s.Seed)
	p := core.Params{
		Tables:     fig4Tables,
		Capacity:   core.CapacityFor(s.IndexUsers, fig4Tau),
		ProbeRange: 30,
		MaxLoop:    500,
		Seed:       s.Seed,
	}
	idx, err := core.Build(keys, itemsFrom(metas), p)
	if err != nil {
		return nil, fmt.Errorf("fig4a: %w", err)
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("%d (measured)", s.IndexUsers),
		"(not materialized)",
		humanBytes(float64(idx.SizeBytes())),
		"-",
	})
	t.Notes = append(t.Notes,
		"paper @1M: KIK12 ≈ 1.13 TB, ours ≈ 38 MB — same closed forms as above",
		"KIK12 is O(n²); materializing it beyond ~10k users is impractical by design",
	)
	return t, nil
}

// Fig4bBandwidth reproduces Fig. 4(b): per-discovery bandwidth. Ours is
// measured from real trapdoors and matches (constant in n); KIK12 follows
// its closed form l·n/8.
func Fig4bBandwidth(s Scale) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	const probeRange = 4 // paper: l=10, d=4 for the bandwidth numbers
	keys, err := experimentKeys(fig4Tables, s.Seed)
	if err != nil {
		return nil, err
	}
	// Bandwidth is l·(d+1) buckets by construction, independent of bucket
	// skew; a collision-free workload keeps the d=4 build feasible.
	metas := uniqueMetas(s.IndexUsers, fig4Tables, s.Seed)
	p := core.Params{
		Tables:     fig4Tables,
		Capacity:   core.CapacityFor(s.IndexUsers, fig4Tau),
		ProbeRange: probeRange,
		MaxLoop:    500,
		Seed:       s.Seed,
	}
	idx, err := core.Build(keys, itemsFrom(metas), p)
	if err != nil {
		return nil, fmt.Errorf("fig4b: %w", err)
	}
	// Measure the real request and response sizes averaged over queries.
	rng := rand.New(rand.NewSource(s.Seed + 7))
	profileCT := profileCiphertextBytes(s.Dim)
	compactCT := compactProfileCiphertextBytes(s.Dim)
	var reqSum, respSum, respCompactSum float64
	const samples = 50
	for q := 0; q < samples; q++ {
		meta := metas[rng.Intn(len(metas))]
		td, err := core.GenTpdr(keys, meta, p)
		if err != nil {
			return nil, err
		}
		ids, err := idx.SecRec(td)
		if err != nil {
			return nil, err
		}
		reqSum += float64(td.SizeBytes())
		respSum += float64(len(ids) * profileCT)
		respCompactSum += float64(len(ids) * compactCT)
	}
	oursMeasured := (reqSum + respSum) / samples
	oursCompact := (reqSum + respCompactSum) / samples

	t := &Table{
		ID:    "Fig. 4(b)",
		Title: "Per-discovery bandwidth, ours vs KIK12 (l=10, d=4)",
		Header: []string{
			"n users", "KIK12 (closed form)", "ours trapdoors (closed form)",
			"ours total (measured)", "ours total (compact S*)",
		},
	}
	tpdrBytes := float64(p.BucketsPerQuery() * (8 + core.BucketSize))
	for _, n := range paperSweepN {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			humanBytes(kik12.QueryBandwidthBytes(n, fig4Tables)),
			humanBytes(tpdrBytes),
			humanBytes(oursMeasured),
			humanBytes(oursCompact),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ours is constant in n: l·(d+1) = %d trapdoor entries and at most as many %d-byte encrypted profiles", p.BucketsPerQuery(), profileCT),
		"paper @1M: KIK12 1220 KB (6x ours even without retrieved ciphertexts); ours 201 KB with 4 KB profiles",
		fmt.Sprintf("compact S* uses float32 profiles (%d B encrypted) — the paper's 4 KB blobs; full S* is float64 (%d B)", compactCT, profileCT),
	)
	return t, nil
}

// profileCiphertextBytes is the size of one encrypted profile S* for the
// given dimensionality.
func profileCiphertextBytes(dim int) int {
	return 4 + 8*dim + crypt.Overhead
}

// compactProfileCiphertextBytes is the float32 (CompactProfiles) variant —
// the paper's ~4 KB profile blobs at dim=1000.
func compactProfileCiphertextBytes(dim int) int {
	return 4 + 4*dim + crypt.Overhead
}

// Fig4cRow is one measured operating point of Fig. 4(c).
type Fig4cRow struct {
	Tau          float64
	SearchMicros float64
	DeleteMicros float64
	InsertMicros float64
	KicksPer100  float64
	InsertFailed bool
}

// Fig4cOperations reproduces Fig. 4(c): dynamic-index operation latency
// and kick-aways per 100 insertions across load factors (l=10, d=30).
func Fig4cOperations(s Scale) (*Table, []Fig4cRow, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	const (
		tables     = 10
		probeRange = 30
		ops        = 50
		inserts    = 100
	)
	taus := []float64{0.58, 0.62, 0.66, 0.70, 0.74, 0.78, 0.82}
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	// n items to index; +inserts fresh items for the insertion test.
	metas := denseMetas(s.IndexUsers+inserts, tables, s.Seed)
	baseMetas := metas[:s.IndexUsers]
	freshMetas := metas[s.IndexUsers:]

	t := &Table{
		ID:    "Fig. 4(c)",
		Title: fmt.Sprintf("Dynamic operation performance vs load factor (n=%d, l=10, d=30)", s.IndexUsers),
		Header: []string{
			"load factor", "search (µs)", "delete (µs)", "insert (µs)", "kicks/100 inserts",
		},
	}
	var rows []Fig4cRow
	for _, tau := range taus {
		p := core.Params{
			Tables:     tables,
			Capacity:   core.CapacityFor(s.IndexUsers, tau),
			ProbeRange: probeRange,
			MaxLoop:    5000,
			Seed:       s.Seed,
		}
		idx, client, err := core.BuildDynamic(keys, itemsFrom(baseMetas), p)
		if err != nil {
			return nil, nil, fmt.Errorf("fig4c τ=%.2f: %w", tau, err)
		}
		row := Fig4cRow{Tau: tau}
		rng := rand.New(rand.NewSource(s.Seed + int64(tau*100)))

		// Search latency.
		start := time.Now()
		for q := 0; q < ops; q++ {
			if _, err := client.Search(idx, baseMetas[rng.Intn(len(baseMetas))]); err != nil {
				return nil, nil, err
			}
		}
		row.SearchMicros = float64(time.Since(start).Microseconds()) / ops

		// Delete latency (delete ops random items, then restore them).
		victims := rng.Perm(s.IndexUsers)[:ops]
		start = time.Now()
		for _, v := range victims {
			if err := client.Delete(idx, uint64(v+1), baseMetas[v]); err != nil {
				return nil, nil, fmt.Errorf("fig4c delete: %w", err)
			}
		}
		row.DeleteMicros = float64(time.Since(start).Microseconds()) / ops
		for _, v := range victims {
			if err := client.Insert(idx, uint64(v+1), baseMetas[v]); err != nil {
				return nil, nil, fmt.Errorf("fig4c restore: %w", err)
			}
		}

		// Insert latency + kicks for fresh items at full load.
		client.ResetStats()
		start = time.Now()
		inserted := 0
		for i, m := range freshMetas {
			err := client.Insert(idx, uint64(s.IndexUsers+i+1), m)
			if errors.Is(err, core.ErrNeedRehash) {
				row.InsertFailed = true
				break
			}
			if err != nil {
				return nil, nil, fmt.Errorf("fig4c insert: %w", err)
			}
			inserted++
		}
		if inserted > 0 {
			row.InsertMicros = float64(time.Since(start).Microseconds()) / float64(inserted)
			row.KicksPer100 = float64(client.Stats().Kicks) * 100 / float64(inserted)
		}
		rows = append(rows, row)

		insertCell := fmt.Sprintf("%.0f", row.InsertMicros)
		if row.InsertFailed {
			insertCell += " (rehash hit)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", tau*100),
			fmt.Sprintf("%.0f", row.SearchMicros),
			fmt.Sprintf("%.0f", row.DeleteMicros),
			insertCell,
			fmt.Sprintf("%.2f", row.KicksPer100),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: search and delete flat across load factors; insert cost and kick-aways rise with τ",
		"paper @1M: <1 kick-away per insertion on average for τ ≤ 80%",
	)
	return t, rows, nil
}

// Fig5aRow is one measured point of Fig. 5(a).
type Fig5aRow struct {
	Tau          float64
	InsertSecs   float64
	EncryptSecs  float64
	Kicks        int
	NeededRehash bool
}

// Fig5aBuildCost reproduces Fig. 5(a): static index build time split into
// the cuckoo placement phase and the bucket encryption phase, across load
// factors.
func Fig5aBuildCost(s Scale) (*Table, []Fig5aRow, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	const (
		tables     = 10
		probeRange = 30
	)
	taus := []float64{0.70, 0.75, 0.80, 0.85, 0.90}
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, nil, err
	}
	metas := mixedMetas(s.IndexUsers, tables, s.Seed)
	items := itemsFrom(metas)

	t := &Table{
		ID:    "Fig. 5(a)",
		Title: fmt.Sprintf("Index building cost vs load factor (n=%d, l=10, d=30)", s.IndexUsers),
		Header: []string{
			"load factor", "build placement (s)", "encrypt entries (s)", "total (s)", "kicks",
		},
	}
	var rows []Fig5aRow
	for _, tau := range taus {
		p := core.Params{
			Tables:     tables,
			Capacity:   core.CapacityFor(s.IndexUsers, tau),
			ProbeRange: probeRange,
			MaxLoop:    2000,
			Seed:       s.Seed,
		}
		row := Fig5aRow{Tau: tau}
		idx, err := core.Build(keys, items, p)
		if errors.Is(err, core.ErrNeedRehash) {
			row.NeededRehash = true
			rows = append(rows, row)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f%%", tau*100), "-", "-", "rehash required", "-",
			})
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("fig5a τ=%.2f: %w", tau, err)
		}
		st := idx.BuildStats()
		row.InsertSecs = float64(st.InsertNanos) / 1e9
		row.EncryptSecs = float64(st.EncryptNanos) / 1e9
		row.Kicks = st.Kicks
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", tau*100),
			fmt.Sprintf("%.2f", row.InsertSecs),
			fmt.Sprintf("%.2f", row.EncryptSecs),
			fmt.Sprintf("%.2f", row.InsertSecs+row.EncryptSecs),
			fmt.Sprintf("%d", row.Kicks),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: build time rises with load factor as kick-aways multiply; <1 min at 1M users, τ≈80%",
	)
	return t, rows, nil
}

// lshParamsForDim is a helper shared with accuracy experiments.
func lshParamsForDim(dim, tables, atoms int, width float64, seed int64) lsh.Params {
	return lsh.Params{Dim: dim, Tables: tables, Atoms: atoms, Width: width, Seed: seed}
}
