package experiments

import (
	"errors"
	"fmt"

	"pisd/internal/core"
)

// Ablations measures the design choices DESIGN.md §8 calls out:
//
//   - random probing (d) off vs on — its effect on insertion kicks and on
//     whether the build succeeds at all at high load;
//   - cuckoo kick-away off (MaxLoop=1, i.e. items that collide everywhere
//     fail) vs on — load factor achievable without eviction;
//   - a cuckoo stash (this repository's extension of the paper's rehash
//     step) — how few extra always-scanned buckets rescue the builds that
//     would otherwise need a full rehash;
//   - the (l, d) accuracy/bandwidth trade-off is covered by Fig. 5(c).
func Ablations(s Scale) ([]*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	probe, err := ablationProbeRange(s)
	if err != nil {
		return nil, err
	}
	kick, err := ablationKickAway(s)
	if err != nil {
		return nil, err
	}
	stash, err := ablationStash(s)
	if err != nil {
		return nil, err
	}
	return []*Table{probe, kick, stash}, nil
}

// ablationProbeRange sweeps d at fixed τ and reports kicks and build
// outcome: random probing is what absorbs dense LSH buckets.
func ablationProbeRange(s Scale) (*Table, error) {
	const (
		tables = 10
		tau    = 0.8
	)
	n := s.IndexUsers / 2
	if n < 2000 {
		n = 2000
	}
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	metas := denseMetas(n, tables, s.Seed)
	items := itemsFrom(metas)

	t := &Table{
		ID:    "Ablation A",
		Title: fmt.Sprintf("Random probe range d vs insertion behaviour (n=%d, l=10, τ=0.8)", n),
		Header: []string{
			"d", "build outcome", "kicks", "primary hits", "probe hits",
		},
	}
	for _, d := range []int{10, 20, 30, 40, 60} {
		p := core.Params{
			Tables:     tables,
			Capacity:   core.CapacityFor(n, tau),
			ProbeRange: d,
			MaxLoop:    5000,
			Seed:       s.Seed,
		}
		idx, err := core.Build(keys, items, p)
		if errors.Is(err, core.ErrNeedRehash) {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", d), "FAILS (rehash needed)", "-", "-", "-",
			})
			continue
		}
		if err != nil {
			return nil, err
		}
		st := idx.BuildStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", d),
			"ok",
			fmt.Sprintf("%d", st.Kicks),
			fmt.Sprintf("%d", st.PrimaryHits),
			fmt.Sprintf("%d", st.ProbeHits),
		})
	}
	t.Notes = append(t.Notes,
		"with too little probing, dense LSH values exhaust their d+1 bucket budget per table and the build fails; widening d restores feasibility",
	)
	return t, nil
}

// ablationKickAway compares MaxLoop=1 (no cuckoo eviction chains) with the
// full design across load factors.
func ablationKickAway(s Scale) (*Table, error) {
	const (
		tables = 10
		d      = 30
	)
	n := s.IndexUsers / 2
	if n < 2000 {
		n = 2000
	}
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	metas := denseMetas(n, tables, s.Seed)
	items := itemsFrom(metas)

	t := &Table{
		ID:    "Ablation B",
		Title: fmt.Sprintf("Cuckoo kick-away off vs on across load factors (n=%d, l=10, d=30)", n),
		Header: []string{
			"load factor", "no kicks (MaxLoop=1)", "full design", "kicks (full)",
		},
	}
	for _, tau := range []float64{0.70, 0.78, 0.82} {
		outcome := func(maxLoop int) (string, int, error) {
			p := core.Params{
				Tables:     tables,
				Capacity:   core.CapacityFor(n, tau),
				ProbeRange: d,
				MaxLoop:    maxLoop,
				Seed:       s.Seed,
			}
			idx, err := core.Build(keys, items, p)
			if errors.Is(err, core.ErrNeedRehash) {
				return "FAILS", 0, nil
			}
			if err != nil {
				return "", 0, err
			}
			return "ok", idx.BuildStats().Kicks, nil
		}
		noKick, _, err := outcome(1)
		if err != nil {
			return nil, err
		}
		full, kicks, err := outcome(1000)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", tau*100),
			noKick,
			full,
			fmt.Sprintf("%d", kicks),
		})
	}
	t.Notes = append(t.Notes,
		"kick-aways buy load factor: the same capacity that fails without eviction fills with it (the paper's motivation for combining LSH with cuckoo hashing)",
	)
	return t, nil
}

// ablationStash demonstrates the stash extension on a workload with a
// guaranteed overflow: one "viral interest" clone group (identical LSH
// metadata) slightly exceeds its l·(d+1) bucket budget, so the plain
// design must rehash while a stash of a few slots absorbs the excess.
func ablationStash(s Scale) (*Table, error) {
	const (
		tables   = 10
		d        = 30
		tau      = 0.8
		overflow = 5
	)
	n := s.IndexUsers / 2
	if n < 2000 {
		n = 2000
	}
	keys, err := experimentKeys(tables, s.Seed)
	if err != nil {
		return nil, err
	}
	budget := tables * (d + 1)
	group := budget + overflow
	metas := uniqueMetas(n, tables, s.Seed)
	// The clone group: `group` users sharing one metadata vector.
	cloneMeta := metas[0]
	for i := 1; i < group && i < len(metas); i++ {
		metas[i] = cloneMeta
	}
	items := itemsFrom(metas)

	t := &Table{
		ID:    "Ablation C",
		Title: fmt.Sprintf("Cuckoo stash vs rehash under a %d-user viral bucket (budget %d, n=%d, l=10, d=30)", group, budget, n),
		Header: []string{
			"stash size", "build outcome", "stash used", "kicks", "extra trapdoor bytes",
		},
	}
	for _, stashSize := range []int{0, 8, 32, 128} {
		p := core.Params{
			Tables:     tables,
			Capacity:   core.CapacityFor(n, tau),
			ProbeRange: d,
			MaxLoop:    50, // kicks within a clone group never free a bucket
			Seed:       s.Seed,
			StashSize:  stashSize,
		}
		idx, err := core.Build(keys, items, p)
		if errors.Is(err, core.ErrNeedRehash) {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", stashSize), "FAILS (rehash needed)", "-", "-",
				fmt.Sprintf("%d", stashSize*core.BucketSize),
			})
			continue
		}
		if err != nil {
			return nil, err
		}
		st := idx.BuildStats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", stashSize),
			"ok",
			fmt.Sprintf("%d", st.StashHits),
			fmt.Sprintf("%d", st.Kicks),
			fmt.Sprintf("%d", stashSize*core.BucketSize),
		})
	}
	t.Notes = append(t.Notes,
		"a small always-scanned stash absorbs the overflow items whose kick chains exhaust MaxLoop, avoiding the full rehash+rebuild of Algorithm 1",
	)
	return t, nil
}
