package cloud

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/lsh"
)

func buildIndex(t *testing.T, n int) (*core.Index, *crypt.KeySet, core.Params, []lsh.Metadata) {
	t.Helper()
	keys, err := crypt.GenDeterministic("cloud-test", 4)
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]lsh.Metadata, n)
	items := make([]core.Item, n)
	for i := range metas {
		m := lsh.Metadata{uint64(i), uint64(i * 7), uint64(i * 13), uint64(i * 29)}
		metas[i] = m
		items[i] = core.Item{ID: uint64(i + 1), Meta: m}
	}
	p := core.Params{Tables: 4, Capacity: core.CapacityFor(n, 0.8), ProbeRange: 3, MaxLoop: 200, Seed: 1}
	idx, err := core.Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	return idx, keys, p, metas
}

func TestSecRecSkipsMissingProfiles(t *testing.T) {
	idx, keys, p, metas := buildIndex(t, 100)
	s := New()
	s.SetIndex(idx)
	// Store profiles only for even ids.
	for i := 0; i < 100; i += 2 {
		s.PutProfile(uint64(i+1), []byte{byte(i)})
	}
	td, err := core.GenTpdr(keys, metas[4], p) // id 5, odd -> no profile
	if err != nil {
		t.Fatal(err)
	}
	ids, profiles, err := s.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(profiles) {
		t.Fatalf("ids %d vs profiles %d", len(ids), len(profiles))
	}
	for _, id := range ids {
		if id%2 == 0 {
			t.Fatalf("odd-id user %d returned without stored profile", id)
		}
	}
}

func TestDeleteProfileAndCounts(t *testing.T) {
	s := New()
	s.PutProfiles(map[uint64][]byte{1: {1}, 2: {2}})
	if s.NumProfiles() != 2 {
		t.Fatalf("NumProfiles = %d", s.NumProfiles())
	}
	s.DeleteProfile(1)
	if s.NumProfiles() != 1 {
		t.Fatalf("NumProfiles after delete = %d", s.NumProfiles())
	}
	if _, err := s.FetchProfiles([]uint64{1}); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("err = %v", err)
	}
}

func TestIndexSizeBytes(t *testing.T) {
	s := New()
	if s.IndexSizeBytes() != 0 {
		t.Error("empty server reports index size")
	}
	idx, _, _, _ := buildIndex(t, 50)
	s.SetIndex(idx)
	if s.IndexSizeBytes() != idx.SizeBytes() {
		t.Error("IndexSizeBytes mismatch")
	}
}

func TestPutProfileCopies(t *testing.T) {
	s := New()
	ct := []byte{1, 2, 3}
	s.PutProfile(9, ct)
	ct[0] = 99
	got, err := s.FetchProfiles([]uint64{9})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 1 {
		t.Error("PutProfile aliases caller slice")
	}
}

func TestFetchProfilesDuplicateIDs(t *testing.T) {
	s := New()
	s.PutProfiles(map[uint64][]byte{1: {10}, 2: {20}, 3: {30}})
	req := []uint64{2, 1, 2, 3, 2, 1}
	got, err := s.FetchProfiles(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(req) {
		t.Fatalf("%d results for %d requested ids", len(got), len(req))
	}
	// Duplicate ids get one ciphertext each, aligned with request order.
	want := []byte{20, 10, 20, 30, 20, 10}
	for i, ct := range got {
		if len(ct) != 1 || ct[0] != want[i] {
			t.Fatalf("position %d = %v, want [%d]", i, ct, want[i])
		}
	}
	// A duplicated unknown id still fails.
	if _, err := s.FetchProfiles([]uint64{1, 9, 9}); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("err = %v, want ErrUnknownProfile", err)
	}
}

func TestSecRecBatchMatchesSerial(t *testing.T) {
	idx, keys, p, metas := buildIndex(t, 150)
	s := New()
	s.SetIndex(idx)
	for i := 0; i < 150; i++ {
		s.PutProfile(uint64(i+1), []byte{byte(i)})
	}
	tds := make([]*core.Trapdoor, 20)
	for q := range tds {
		td, err := core.GenTpdr(keys, metas[q*3], p)
		if err != nil {
			t.Fatal(err)
		}
		tds[q] = td
	}
	batchIDs, batchProfiles, err := s.SecRecBatch(tds)
	if err != nil {
		t.Fatalf("SecRecBatch: %v", err)
	}
	if len(batchIDs) != len(tds) || len(batchProfiles) != len(tds) {
		t.Fatalf("batch of %d answered with %d/%d results", len(tds), len(batchIDs), len(batchProfiles))
	}
	for q, td := range tds {
		ids, profiles, err := s.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batchIDs[q], ids) {
			t.Fatalf("query %d ids: %v, want %v", q, batchIDs[q], ids)
		}
		if !reflect.DeepEqual(batchProfiles[q], profiles) {
			t.Fatalf("query %d profiles differ from serial SecRec", q)
		}
	}
	// Without an index the batch fails like SecRec does.
	if _, _, err := New().SecRecBatch(tds); !errors.Is(err, ErrNoIndex) {
		t.Errorf("no-index batch err = %v", err)
	}
}

// Concurrent discovery, profile updates and image uploads must be safe.
func TestConcurrentAccess(t *testing.T) {
	idx, keys, p, metas := buildIndex(t, 200)
	s := New()
	s.SetIndex(idx)
	for i := 0; i < 200; i++ {
		s.PutProfile(uint64(i+1), []byte{byte(i)})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 50; q++ {
				td, err := core.GenTpdr(keys, metas[(w*50+q)%len(metas)], p)
				if err != nil {
					errs <- err
					return
				}
				if _, _, err := s.SecRec(td); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 50; q++ {
				s.PutProfile(uint64(1000+w*100+q), []byte{1})
				s.DeleteProfile(uint64(1000 + w*100 + q))
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for q := 0; q < 50; q++ {
				s.StoreImages(uint64(w), []byte("img"))
				s.Images(uint64(w))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
