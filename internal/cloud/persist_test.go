package cloud

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pisd/internal/core"
	"pisd/internal/crypt"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	idx, keys, p, metas := buildIndex(t, 150)
	s := New()
	s.SetIndex(idx)
	for i := 0; i < 150; i++ {
		s.PutProfile(uint64(i+1), []byte{byte(i), byte(i >> 8)})
	}
	s.StoreImages(7, []byte("enc-a"), []byte("enc-b"))
	s.StoreImages(9, []byte("enc-c"))

	dir := t.TempDir()
	if err := s.SaveTo(dir); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}

	restored := New()
	if err := restored.LoadFrom(dir); err != nil {
		t.Fatalf("LoadFrom: %v", err)
	}
	if restored.NumProfiles() != 150 {
		t.Fatalf("restored %d profiles", restored.NumProfiles())
	}
	if got := restored.Images(7); len(got) != 2 || string(got[0]) != "enc-a" {
		t.Errorf("restored images %q", got)
	}
	if restored.IndexSizeBytes() != idx.SizeBytes() {
		t.Error("restored index size differs")
	}
	// Discovery against the restored server returns identical results.
	td, err := core.GenTpdr(keys, metas[10], p)
	if err != nil {
		t.Fatal(err)
	}
	idsA, profA, err := s.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	idsB, profB, err := restored.SecRec(td)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsA) != len(idsB) {
		t.Fatalf("restored SecRec %d ids vs %d", len(idsB), len(idsA))
	}
	for i := range idsA {
		if idsA[i] != idsB[i] || string(profA[i]) != string(profB[i]) {
			t.Fatal("restored SecRec result differs")
		}
	}
}

func TestSaveLoadDynamicIndex(t *testing.T) {
	keys, err := crypt.GenDeterministic("persist-dyn", 3)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{Tables: 3, Capacity: 100, ProbeRange: 3, MaxLoop: 100, Seed: 1}
	items := []core.Item{{ID: 1, Meta: []uint64{1, 2, 3}}, {ID: 2, Meta: []uint64{4, 5, 6}}}
	dyn, client, err := core.BuildDynamic(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.SetDynIndex(dyn)
	dir := t.TempDir()
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	restored := New()
	if err := restored.LoadFrom(dir); err != nil {
		t.Fatal(err)
	}
	ids, err := client.Search(restored, []uint64{1, 2, 3})
	if err != nil {
		t.Fatalf("search on restored server: %v", err)
	}
	found := false
	for _, id := range ids {
		if id == 1 {
			found = true
		}
	}
	if !found {
		t.Error("restored dynamic index lost item 1")
	}
}

func TestSaveRemovesStaleIndexFiles(t *testing.T) {
	idx, _, _, _ := buildIndex(t, 50)
	s := New()
	s.SetIndex(idx)
	dir := t.TempDir()
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	// Drop the index and save again: the stale file must vanish.
	s.SetIndex(nil)
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, fileIndex)); !os.IsNotExist(err) {
		t.Error("stale index file survived")
	}
	restored := New()
	if err := restored.LoadFrom(dir); err != nil {
		t.Fatal(err)
	}
	if restored.IndexSizeBytes() != 0 {
		t.Error("restored server has an index")
	}
}

func TestLoadFromEmptyDir(t *testing.T) {
	s := New()
	if err := s.LoadFrom(t.TempDir()); err != nil {
		t.Fatalf("LoadFrom empty dir: %v", err)
	}
	if s.NumProfiles() != 0 {
		t.Error("profiles from nowhere")
	}
}

func TestLoadRejectsCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := []string{fileIndex, fileDynIndex, fileProfiles, fileImages}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			d := t.TempDir()
			if err := os.WriteFile(filepath.Join(d, name), []byte("garbage!"), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := New().LoadFrom(d); !errors.Is(err, ErrCorruptState) {
				t.Errorf("corrupt %s: error = %v, want ErrCorruptState", name, err)
			}
		})
	}
	_ = dir
}

func TestProfilesCodecTruncation(t *testing.T) {
	s := New()
	s.PutProfile(1, []byte{1, 2, 3})
	dir := t.TempDir()
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fileProfiles)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New().LoadFrom(dir); err == nil {
		t.Error("truncated profiles file accepted")
	}
	// Trailing junk must also be rejected.
	if err := os.WriteFile(path, append(blob, 0xFF), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := New().LoadFrom(dir); err == nil {
		t.Error("profiles file with trailing bytes accepted")
	}
}
