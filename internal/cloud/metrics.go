package cloud

import (
	"pisd/internal/obs"

	"pisd/internal/core"
)

// serverMetrics is the cloud tier's metric surface (names under "cloud.").
// The buckets_unmasked counter is the paper's constant-bandwidth claim as
// a live signal: SecRec adds the trapdoor's actual entry count per query
// and compares it against the index's l·(d+1)+stash budget — any query
// touching a different number of buckets increments
// leakage_invariant_violations, which must stay at zero for the lifetime
// of a deployment. All handles are nil-safe; a Server built without a
// registry records nothing.
type serverMetrics struct {
	secrecNs        *obs.Histogram // per-query SecRec latency (batch: per sub-query)
	batchNs         *obs.Histogram // SecRecBatch whole-batch latency
	queries         *obs.Counter   // SecRec sub-queries answered
	bucketsUnmasked *obs.Counter   // total buckets unmasked across queries
	invariantViol   *obs.Counter   // queries whose bucket count != BucketsPerQuery
	dynFetched      *obs.Counter   // dynamic buckets fetched
	dynStored       *obs.Counter   // dynamic buckets stored
	profilesServed  *obs.Counter   // encrypted profiles attached to results
}

func newServerMetrics(r *obs.Registry, prefix string) serverMetrics {
	if r == nil {
		return serverMetrics{}
	}
	return serverMetrics{
		secrecNs:        r.Histogram(prefix + "secrec"),
		batchNs:         r.Histogram(prefix + "secrec_batch"),
		queries:         r.Counter(prefix + "queries"),
		bucketsUnmasked: r.Counter(prefix + "buckets_unmasked"),
		invariantViol:   r.Counter(prefix + "leakage_invariant_violations"),
		dynFetched:      r.Counter(prefix + "dyn_buckets_fetched"),
		dynStored:       r.Counter(prefix + "dyn_buckets_stored"),
		profilesServed:  r.Counter(prefix + "profiles_served"),
	}
}

// SetRegistry registers the server's metrics in r under the "cloud."
// prefix (nil r disables them). Call during setup, before serving.
func (s *Server) SetRegistry(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.met = newServerMetrics(r, "cloud.")
}

// recordQuery accounts one answered SecRec sub-query: the number of
// buckets the trapdoor addressed and whether it matched the backend's
// fixed per-query budget p. Caller holds at least a read lock.
func (s *Server) recordQuery(t *core.Trapdoor, p core.Params) {
	if s.met.queries == nil {
		return
	}
	n := t.Entries()
	s.met.queries.Inc()
	s.met.bucketsUnmasked.Add(int64(n))
	if n != p.BucketsPerQuery() {
		s.met.invariantViol.Inc()
	}
}
