// Package cloud implements the untrusted, honest-but-curious cloud server
// CS of the paper's architecture (Fig. 1): the off-premise backend that
// stores encrypted images and encrypted image profiles, hosts the secure
// index, and serves SecRec discovery requests and dynamic bucket updates —
// all without ever holding key material.
package cloud

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pisd/internal/core"
	"pisd/internal/obs"
	"pisd/internal/segstore"
)

var (
	// ErrNoIndex is returned when a request needs an index that has not
	// been installed yet.
	ErrNoIndex = errors.New("cloud: no index installed")
	// ErrUnknownProfile is returned when a referenced profile is missing.
	ErrUnknownProfile = errors.New("cloud: unknown profile")
)

// Server is the cloud server state. All methods are safe for concurrent
// use.
type Server struct {
	mu       sync.RWMutex
	idx      *core.Index
	segs     *segstore.Store
	dyn      *core.DynIndex
	profiles map[uint64][]byte
	images   map[uint64][][]byte
	// secScratch pools SecRec working state (dedup set, unmask buffer) so
	// a shard answering its slice of a fanned-out query allocates nothing
	// per request beyond the result slices.
	secScratch sync.Pool
	met        serverMetrics
	// version is the last write version recorded by the trusted front
	// end; see replica.go. Guarded by mu.
	version uint64
}

// Compile-time check: the server exposes the dynamic scheme's bucket
// store surface.
var _ core.BucketStore = (*Server)(nil)

// New returns an empty cloud server.
func New() *Server {
	return &Server{
		profiles: make(map[uint64][]byte),
		images:   make(map[uint64][][]byte),
		met:      newServerMetrics(obs.Default, "cloud."),
	}
}

// Ping reports liveness; the in-process counterpart of the transport
// protocol's Ping, so local and remote cloud servers expose the same
// health surface to a shard pool.
func (s *Server) Ping() error { return nil }

// SetIndex installs the static secure index.
func (s *Server) SetIndex(idx *core.Index) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx = idx
}

// SetSegmentStore installs a segmented index store as the static index
// backend. While installed it takes precedence over an in-RAM index:
// SecRec fans trapdoors across the store's live segments, reading bucket
// ranges from disk on demand, with results byte-identical to the
// monolithic path. Pass nil to detach.
func (s *Server) SetSegmentStore(st *segstore.Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segs = st
}

// SegmentStore returns the installed segmented store (nil if none).
func (s *Server) SegmentStore() *segstore.Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.segs
}

// SetDynIndex installs the dynamic secure index.
func (s *Server) SetDynIndex(idx *core.DynIndex) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dyn = idx
}

// PutProfile stores one encrypted profile S*.
func (s *Server) PutProfile(id uint64, ct []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.profiles[id] = append([]byte(nil), ct...)
}

// PutProfiles stores a batch of encrypted profiles.
func (s *Server) PutProfiles(cts map[uint64][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ct := range cts {
		s.profiles[id] = append([]byte(nil), ct...)
	}
}

// DeleteProfile removes an encrypted profile (secure deletion, Sec. III-D:
// "The identifier Li is also passed to CS to remove the encrypted S*").
func (s *Server) DeleteProfile(id uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.profiles, id)
}

// NumProfiles reports how many encrypted profiles are stored.
func (s *Server) NumProfiles() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.profiles)
}

// SecRec implements M ← SecRec(t, I): it unmasks the addressed buckets of
// the static index and returns the recovered identifiers together with the
// referenced encrypted profiles. Identifiers whose profile is missing are
// skipped (consistent with buckets that decoded from stale state).
func (s *Server) SecRec(t *core.Trapdoor) ([]uint64, [][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.segs != nil {
		start := time.Now()
		ids, err := s.segs.SecRec(t)
		if err != nil {
			return nil, nil, fmt.Errorf("cloud: %w", err)
		}
		s.recordQuery(t, s.segs.Params())
		outIDs, outProfiles := s.attachProfiles(ids)
		s.met.secrecNs.ObserveSince(start)
		return outIDs, outProfiles, nil
	}
	if s.idx == nil {
		return nil, nil, ErrNoIndex
	}
	start := time.Now()
	sc, _ := s.secScratch.Get().(*core.SecRecScratch)
	if sc == nil {
		sc = core.NewSecRecScratch(s.idx.Params())
	}
	ids, err := s.idx.SecRecWith(t, sc)
	s.secScratch.Put(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("cloud: %w", err)
	}
	s.recordQuery(t, s.idx.Params())
	outIDs, outProfiles := s.attachProfiles(ids)
	s.met.secrecNs.ObserveSince(start)
	return outIDs, outProfiles, nil
}

// SecRecBatch resolves a batch of trapdoors against the static index in
// one pass: the paper's per-query protocol run q times under a single
// index read-lock, with ONE pooled unmask scratch reused across the whole
// batch instead of one checkout per query. Per-query results are identical
// to q independent SecRec calls; the first failing query fails the batch.
func (s *Server) SecRecBatch(ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.segs != nil {
		return s.secRecBatchSegmented(ts)
	}
	if s.idx == nil {
		return nil, nil, ErrNoIndex
	}
	start := time.Now()
	sc, _ := s.secScratch.Get().(*core.SecRecScratch)
	if sc == nil {
		sc = core.NewSecRecScratch(s.idx.Params())
	}
	outIDs := make([][]uint64, len(ts))
	outProfiles := make([][][]byte, len(ts))
	for q, t := range ts {
		qStart := time.Now()
		ids, err := s.idx.SecRecWith(t, sc)
		if err != nil {
			s.secScratch.Put(sc)
			return nil, nil, fmt.Errorf("cloud: batch query %d: %w", q, err)
		}
		s.recordQuery(t, s.idx.Params())
		outIDs[q], outProfiles[q] = s.attachProfiles(ids)
		s.met.secrecNs.ObserveSince(qStart)
	}
	s.secScratch.Put(sc)
	s.met.batchNs.ObserveSince(start)
	return outIDs, outProfiles, nil
}

// secRecBatchSegmented is SecRecBatch over the segmented store: one
// segment snapshot for the whole batch (every sub-query sees the same live
// set even under concurrent compaction), answers byte-identical to the
// monolithic path. Caller holds s.mu for reading, s.segs non-nil.
func (s *Server) secRecBatchSegmented(ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	start := time.Now()
	idLists, err := s.segs.SecRecBatch(ts)
	if err != nil {
		return nil, nil, fmt.Errorf("cloud: %w", err)
	}
	p := s.segs.Params()
	outIDs := make([][]uint64, len(ts))
	outProfiles := make([][][]byte, len(ts))
	for q, ids := range idLists {
		s.recordQuery(ts[q], p)
		outIDs[q], outProfiles[q] = s.attachProfiles(ids)
	}
	s.met.batchNs.ObserveSince(start)
	return outIDs, outProfiles, nil
}

// attachProfiles pairs recovered identifiers with their stored encrypted
// profiles, skipping identifiers whose profile is missing (consistent with
// buckets that decoded from stale state). Caller holds s.mu.
func (s *Server) attachProfiles(ids []uint64) ([]uint64, [][]byte) {
	outIDs := make([]uint64, 0, len(ids))
	outProfiles := make([][]byte, 0, len(ids))
	for _, id := range ids {
		ct, ok := s.profiles[id]
		if !ok {
			continue
		}
		outIDs = append(outIDs, id)
		outProfiles = append(outProfiles, ct)
	}
	s.met.profilesServed.Add(int64(len(outIDs)))
	return outIDs, outProfiles
}

// FetchProfiles returns the encrypted profiles of the given identifiers,
// the second interaction of a dynamic-scheme search. The result is aligned
// with the request: duplicate identifiers each get their (shared)
// ciphertext in request order, resolved by a single store lookup.
func (s *Server) FetchProfiles(ids []uint64) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]byte, len(ids))
	seen := make(map[uint64][]byte, len(ids))
	for i, id := range ids {
		ct, ok := seen[id]
		if !ok {
			if ct, ok = s.profiles[id]; !ok {
				return nil, fmt.Errorf("%w: %d", ErrUnknownProfile, id)
			}
			seen[id] = ct
		}
		out[i] = ct
	}
	return out, nil
}

// FetchProfilesSparse is FetchProfiles for callers that tolerate gaps:
// an unknown identifier yields an empty entry instead of failing the
// whole batch. The subscription re-score fan-out uses it so one candidate
// deleted between batches does not abort re-scoring every other
// subscription. Present entries are never empty (ciphertexts carry at
// least their MAC), so len(out[i]) == 0 means ids[i] is unknown here.
func (s *Server) FetchProfilesSparse(ids []uint64) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]byte, len(ids))
	served := 0
	for i, id := range ids {
		if ct, ok := s.profiles[id]; ok {
			out[i] = ct
			served++
		}
	}
	s.met.profilesServed.Add(int64(served))
	return out, nil
}

// FetchBuckets implements core.BucketStore over the installed dynamic
// index.
func (s *Server) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.dyn == nil {
		return nil, ErrNoIndex
	}
	s.met.dynFetched.Add(int64(len(refs)))
	return s.dyn.FetchBuckets(refs)
}

// StoreBuckets implements core.BucketStore over the installed dynamic
// index.
func (s *Server) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dyn == nil {
		return ErrNoIndex
	}
	s.met.dynStored.Add(int64(len(refs)))
	return s.dyn.StoreBuckets(refs, buckets)
}

// StoreImages appends encrypted image blobs for a user (Step 1 of the
// service flow: users upload encrypted images directly to CS).
func (s *Server) StoreImages(id uint64, blobs ...[]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range blobs {
		s.images[id] = append(s.images[id], append([]byte(nil), b...))
	}
}

// Images returns copies of a user's stored encrypted images.
func (s *Server) Images(id uint64) [][]byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([][]byte, len(s.images[id]))
	for i, b := range s.images[id] {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// IndexSizeBytes reports the installed static index footprint (0 if none):
// the on-disk byte total of the segmented store when one is installed,
// otherwise the in-RAM index size.
func (s *Server) IndexSizeBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.segs != nil {
		return int(s.segs.Bytes())
	}
	if s.idx == nil {
		return 0
	}
	return s.idx.SizeBytes()
}
