package cloud

import (
	"sort"

	"pisd/internal/core"
)

// This file is the cloud server's replication surface: a monotonic applied
// write version plus the repair endpoints a replicated front end uses to
// detect a stale replica (one that restarted and lost state, or missed
// writes while unreachable) and to re-sync it from a healthy peer. The
// version is an opaque counter assigned by the trusted front end; the
// cloud only stores and reports it, learning nothing beyond "a write
// happened" — which it observes anyway.

// Version returns the last write version the front end recorded on this
// server (0 for a fresh server). A replicated front end compares this
// against its own per-replica version vector: a server reporting an older
// version than the group's latest write is lagging and gets repaired
// before it serves reads again.
func (s *Server) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// ApplyVersion records a write version, keeping the maximum seen. The
// front end calls it after each successful non-bucket write (profile
// puts/deletes, index installs); bucket writes carry their version
// atomically via StoreBucketsVersioned.
func (s *Server) ApplyVersion(v uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v > s.version {
		s.version = v
	}
}

// StoreBucketsVersioned is StoreBuckets plus an atomic version record:
// the buckets and the version land under one lock, so a concurrent
// Version probe never sees the version ahead of the data.
func (s *Server) StoreBucketsVersioned(refs []core.BucketRef, buckets []core.DynBucket, v uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dyn == nil {
		return ErrNoIndex
	}
	s.met.dynStored.Add(int64(len(refs)))
	if err := s.dyn.StoreBuckets(refs, buckets); err != nil {
		return err
	}
	if v > s.version {
		s.version = v
	}
	return nil
}

// ProfileIDs returns the identifiers of every stored encrypted profile in
// ascending order: the repair endpoint a repairer uses to mirror the
// profile store of a healthy replica onto a lagging one. The cloud already
// knows these identifiers (it serves FetchProfiles by them), so the
// endpoint leaks nothing new.
func (s *Server) ProfileIDs() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]uint64, 0, len(s.profiles))
	for id := range s.profiles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}
