package cloud

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/lsh"
	"pisd/internal/segstore"
)

// TestSegmentBackedServerMatchesMonolithic pins the server-level
// equivalence: a server over a segmented store returns byte-identical
// identifiers AND encrypted profiles to a server over the monolithic
// in-RAM index, for single queries and batches.
func TestSegmentBackedServerMatchesMonolithic(t *testing.T) {
	const n, batch = 1800, 400
	keys, err := crypt.GenDeterministic("cloud-seg-test", 4)
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]lsh.Metadata, n)
	items := make([]core.Item, n)
	for i := range metas {
		// Colliding values so answers carry several identifiers.
		m := lsh.Metadata{uint64(i / 4), uint64(i * 7), uint64(i / 6), uint64(i * 29)}
		metas[i] = m
		items[i] = core.Item{ID: uint64(i + 1), Meta: m}
	}
	p := core.Params{Tables: 4, Capacity: core.CapacityFor(n, 0.8), ProbeRange: 3, MaxLoop: 200, Seed: 1, StashSize: 8}
	idx, err := core.Build(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	b, err := segstore.NewBuilder(keys, p, dir)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += batch {
		if err := b.Add(items[lo:min(lo+batch, n)]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := segstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	mono, seg := New(), New()
	mono.SetIndex(idx)
	seg.SetSegmentStore(st)
	for i := 0; i < n; i++ {
		ct := []byte{byte(i), byte(i >> 8), 0xAB}
		mono.PutProfile(uint64(i+1), ct)
		seg.PutProfile(uint64(i+1), ct)
	}
	if seg.IndexSizeBytes() != int(st.Bytes()) {
		t.Fatalf("segment-backed IndexSizeBytes = %d, store reports %d", seg.IndexSizeBytes(), st.Bytes())
	}

	var tds []*core.Trapdoor
	for q := 0; q < 50; q++ {
		td, err := core.GenTpdr(keys, metas[(q*37)%n], p)
		if err != nil {
			t.Fatal(err)
		}
		tds = append(tds, td)
		wantIDs, wantProfiles, err := mono.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, gotProfiles, err := seg.SecRec(td)
		if err != nil {
			t.Fatalf("segment-backed SecRec: %v", err)
		}
		if len(gotIDs) != len(wantIDs) {
			t.Fatalf("query %d: %d ids segmented, %d monolithic", q, len(gotIDs), len(wantIDs))
		}
		for i := range wantIDs {
			if gotIDs[i] != wantIDs[i] {
				t.Fatalf("query %d: id %d differs: %d vs %d", q, i, gotIDs[i], wantIDs[i])
			}
			if string(gotProfiles[i]) != string(wantProfiles[i]) {
				t.Fatalf("query %d: ciphertext %d differs", q, i)
			}
		}
	}

	wantIDs, wantProfiles, err := mono.SecRecBatch(tds)
	if err != nil {
		t.Fatal(err)
	}
	gotIDs, gotProfiles, err := seg.SecRecBatch(tds)
	if err != nil {
		t.Fatalf("segment-backed SecRecBatch: %v", err)
	}
	for q := range tds {
		if len(gotIDs[q]) != len(wantIDs[q]) {
			t.Fatalf("batch query %d: %d ids segmented, %d monolithic", q, len(gotIDs[q]), len(wantIDs[q]))
		}
		for i := range wantIDs[q] {
			if gotIDs[q][i] != wantIDs[q][i] || string(gotProfiles[q][i]) != string(wantProfiles[q][i]) {
				t.Fatalf("batch query %d result %d differs", q, i)
			}
		}
	}
}

// TestLoadRejectsFlippedBit saves full server state and flips a single
// byte in each state file in turn: every load must fail with
// ErrCorruptState, and restoring the pristine bytes must load cleanly.
func TestLoadRejectsFlippedBit(t *testing.T) {
	idx, keys, p, _ := buildIndex(t, 120)
	s := New()
	s.SetIndex(idx)
	items := []core.Item{{ID: 1, Meta: []uint64{1, 2, 3, 4}}, {ID: 2, Meta: []uint64{5, 6, 7, 8}}}
	dyn, _, err := core.BuildDynamic(keys, items, p)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDynIndex(dyn)
	for i := 0; i < 40; i++ {
		s.PutProfile(uint64(i+1), []byte{byte(i), 0x5A})
	}
	s.StoreImages(3, []byte("enc-img"))

	dir := t.TempDir()
	if err := s.SaveTo(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{fileIndex, fileDynIndex, fileProfiles, fileImages} {
		path := filepath.Join(dir, name)
		pristine, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, off := range []int{5, len(pristine) / 2, len(pristine) - 1} {
			flipped := append([]byte(nil), pristine...)
			flipped[off] ^= 0x01
			if err := os.WriteFile(path, flipped, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := New().LoadFrom(dir); !errors.Is(err, ErrCorruptState) {
				t.Fatalf("%s: flip at %d: LoadFrom error = %v, want ErrCorruptState", name, off, err)
			}
		}
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	restored := New()
	if err := restored.LoadFrom(dir); err != nil {
		t.Fatalf("LoadFrom after restore: %v", err)
	}
	if restored.NumProfiles() != 40 {
		t.Fatalf("restored %d profiles, want 40", restored.NumProfiles())
	}
}
