package cloud

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"pisd/internal/core"
	"pisd/internal/segstore"
)

// Persistence: the cloud server can save its entire state — secure
// index(es), encrypted profiles, encrypted images — to a directory and
// reload it on restart. Everything written is ciphertext or padding, so
// the state directory is exactly as sensitive as the server's memory:
// opaque to anyone without the front end's keys.
//
// Every file is a segstore sealed envelope (magic, version, kind, length,
// SHA-256 trailer) written temp-file-then-rename: a crash mid-save leaves
// the previous file intact, never a torn one, and any truncation or bit
// flip fails the load with ErrCorruptState instead of decoding garbage.

// ErrCorruptState reports a damaged state file on load; it is
// segstore.ErrCorruptState, shared across everything the system persists.
var ErrCorruptState = segstore.ErrCorruptState

// State file names inside the directory.
const (
	fileIndex    = "index.bin"
	fileDynIndex = "dynindex.bin"
	fileProfiles = "profiles.bin"
	fileImages   = "images.bin"
)

const profilesMagic = 0x50505246 // "PPRF"
const imagesMagic = 0x50494D47   // "PIMG"

// SaveTo writes the server state into dir (created if absent), each file
// atomically. Files for absent components are removed so a reload
// reflects the live state. A segmented store is not copied: it already
// lives on disk in its own directory.
func (s *Server) SaveTo(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cloud: save: %w", err)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	if s.idx != nil {
		blob, err := s.idx.MarshalBinary()
		if err != nil {
			return fmt.Errorf("cloud: save index: %w", err)
		}
		if err := segstore.WriteSealedFile(filepath.Join(dir, fileIndex), segstore.KindIndex, blob); err != nil {
			return fmt.Errorf("cloud: save index: %w", err)
		}
	} else {
		removeIfExists(filepath.Join(dir, fileIndex))
	}
	if s.dyn != nil {
		blob, err := s.dyn.MarshalBinary()
		if err != nil {
			return fmt.Errorf("cloud: save dynamic index: %w", err)
		}
		if err := segstore.WriteSealedFile(filepath.Join(dir, fileDynIndex), segstore.KindDynIndex, blob); err != nil {
			return fmt.Errorf("cloud: save dynamic index: %w", err)
		}
	} else {
		removeIfExists(filepath.Join(dir, fileDynIndex))
	}

	if err := segstore.WriteSealedFile(filepath.Join(dir, fileProfiles), segstore.KindProfiles, encodeProfiles(s.profiles)); err != nil {
		return fmt.Errorf("cloud: save profiles: %w", err)
	}
	if err := segstore.WriteSealedFile(filepath.Join(dir, fileImages), segstore.KindImages, encodeImages(s.images)); err != nil {
		return fmt.Errorf("cloud: save images: %w", err)
	}
	return nil
}

// LoadFrom replaces the server state with the contents of dir. Missing
// index files leave the corresponding index uninstalled; missing profile
// or image files yield empty stores. Damaged files fail with an error
// wrapping ErrCorruptState.
func (s *Server) LoadFrom(dir string) error {
	var idx *core.Index
	if blob, err := segstore.ReadSealedFile(filepath.Join(dir, fileIndex), segstore.KindIndex); err == nil {
		idx = &core.Index{}
		if err := idx.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("cloud: load index: %w: %v", ErrCorruptState, err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cloud: load index: %w", err)
	}
	var dyn *core.DynIndex
	if blob, err := segstore.ReadSealedFile(filepath.Join(dir, fileDynIndex), segstore.KindDynIndex); err == nil {
		dyn = &core.DynIndex{}
		if err := dyn.UnmarshalBinary(blob); err != nil {
			return fmt.Errorf("cloud: load dynamic index: %w: %v", ErrCorruptState, err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cloud: load dynamic index: %w", err)
	}

	profiles := make(map[uint64][]byte)
	if blob, err := segstore.ReadSealedFile(filepath.Join(dir, fileProfiles), segstore.KindProfiles); err == nil {
		profiles, err = decodeProfiles(blob)
		if err != nil {
			return fmt.Errorf("cloud: load profiles: %w: %v", ErrCorruptState, err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cloud: load profiles: %w", err)
	}
	images := make(map[uint64][][]byte)
	if blob, err := segstore.ReadSealedFile(filepath.Join(dir, fileImages), segstore.KindImages); err == nil {
		images, err = decodeImages(blob)
		if err != nil {
			return fmt.Errorf("cloud: load images: %w: %v", ErrCorruptState, err)
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cloud: load images: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.idx = idx
	s.dyn = dyn
	s.profiles = profiles
	s.images = images
	return nil
}

func removeIfExists(path string) {
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		// Removal failure only means a stale file may survive; surfaced
		// on the next load as harmless extra state.
		_ = err
	}
}

func encodeProfiles(profiles map[uint64][]byte) []byte {
	out := make([]byte, 0, 12)
	out = appendUint32(out, profilesMagic)
	out = appendUint64(out, uint64(len(profiles)))
	for id, ct := range profiles {
		out = appendUint64(out, id)
		out = appendUint32(out, uint32(len(ct)))
		out = append(out, ct...)
	}
	return out
}

func decodeProfiles(data []byte) (map[uint64][]byte, error) {
	r := &reader{data: data}
	if magic, err := r.uint32(); err != nil || magic != profilesMagic {
		return nil, fmt.Errorf("bad profiles file header")
	}
	count, err := r.uint64()
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][]byte, count)
	for i := uint64(0); i < count; i++ {
		id, err := r.uint64()
		if err != nil {
			return nil, err
		}
		ct, err := r.bytes()
		if err != nil {
			return nil, err
		}
		out[id] = ct
	}
	if !r.done() {
		return nil, fmt.Errorf("trailing bytes in profiles file")
	}
	return out, nil
}

func encodeImages(images map[uint64][][]byte) []byte {
	out := make([]byte, 0, 12)
	out = appendUint32(out, imagesMagic)
	out = appendUint64(out, uint64(len(images)))
	for id, blobs := range images {
		out = appendUint64(out, id)
		out = appendUint32(out, uint32(len(blobs)))
		for _, b := range blobs {
			out = appendUint32(out, uint32(len(b)))
			out = append(out, b...)
		}
	}
	return out
}

func decodeImages(data []byte) (map[uint64][][]byte, error) {
	r := &reader{data: data}
	if magic, err := r.uint32(); err != nil || magic != imagesMagic {
		return nil, fmt.Errorf("bad images file header")
	}
	count, err := r.uint64()
	if err != nil {
		return nil, err
	}
	out := make(map[uint64][][]byte, count)
	for i := uint64(0); i < count; i++ {
		id, err := r.uint64()
		if err != nil {
			return nil, err
		}
		n, err := r.uint32()
		if err != nil {
			return nil, err
		}
		blobs := make([][]byte, 0, n)
		for k := uint32(0); k < n; k++ {
			b, err := r.bytes()
			if err != nil {
				return nil, err
			}
			blobs = append(blobs, b)
		}
		out[id] = blobs
	}
	if !r.done() {
		return nil, fmt.Errorf("trailing bytes in images file")
	}
	return out, nil
}

// reader is a bounds-checked cursor over a byte slice.
type reader struct {
	data []byte
	off  int
}

func (r *reader) uint32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, fmt.Errorf("truncated state file")
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) uint64() (uint64, error) {
	if r.off+8 > len(r.data) {
		return 0, fmt.Errorf("truncated state file")
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if r.off+int(n) > len(r.data) {
		return nil, fmt.Errorf("truncated state file")
	}
	out := append([]byte(nil), r.data[r.off:r.off+int(n)]...)
	r.off += int(n)
	return out, nil
}

func (r *reader) done() bool { return r.off == len(r.data) }

func appendUint32(b []byte, v uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return append(b, buf[:]...)
}

func appendUint64(b []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(b, buf[:]...)
}
