// Package shard implements the sharded cloud tier of the system: the
// front end partitions users across S cloud shards (one secure index and
// one encrypted-profile store per shard, built from a single global cuckoo
// placement — see core.BuildPartitioned), and a Pool fans every discovery
// trapdoor out to all shards concurrently, applies per-shard deadlines and
// a bounded retry, and merges the returned encrypted matches for the front
// end's ranking path.
//
// Because every shard index is a projection of the single-node index, the
// merged SecRec result is exactly the single-node result; a shard that is
// down degrades the answer to a flagged partial result instead of failing
// the discovery. Dynamic updates route to the owning shard only.
//
// Security: sharding does not change what the honest-but-curious cloud
// learns. Each shard observes the same trapdoor a single cloud node would
// (positions and one-time bucket masks, no keys) and its access pattern is
// the projection of the single-index access pattern onto its own users;
// colluding shards can reconstruct at most the single-node leakage.
package shard

import (
	"context"

	"pisd/internal/cloud"
	"pisd/internal/core"
)

// Node is one shard's cloud surface: the discovery, profile, image-less
// admin and dynamic-bucket operations a pool and the front end drive
// against a single shard. Local adapts an in-process cloud.Server; Remote
// adapts a transport server over TCP.
type Node interface {
	// Ping checks shard liveness.
	Ping(ctx context.Context) error
	// SecRec runs one discovery leg against the shard's index.
	SecRec(ctx context.Context, t *core.Trapdoor) (ids []uint64, encProfiles [][]byte, err error)
	// SecRecBatch runs a batch of discovery legs in one exchange; result q
	// matches what SecRec would return for ts[q].
	SecRecBatch(ctx context.Context, ts []*core.Trapdoor) (ids [][]uint64, encProfiles [][][]byte, err error)
	// FetchProfiles returns encrypted profiles stored on this shard.
	FetchProfiles(ids []uint64) ([][]byte, error)
	// PutProfiles uploads encrypted profiles to this shard.
	PutProfiles(profiles map[uint64][]byte) error
	// DeleteProfile removes an encrypted profile from this shard.
	DeleteProfile(id uint64) error
	// InstallIndex installs the shard's static secure index.
	InstallIndex(idx *core.Index) error
	// InstallDynIndex installs the shard's dynamic secure index.
	InstallDynIndex(idx *core.DynIndex) error
	// BucketStore exposes the shard's dynamic buckets so a core.DynClient
	// can route secure insert/delete protocols to the owning shard.
	core.BucketStore
}

// SparseProfileFetcher is the optional gap-tolerant profile read the
// subscription re-score fan-out prefers: an unknown identifier answers as
// an empty entry instead of failing the whole batch. Local, Remote and
// ReplicaGroup implement it; FetchProfilesSparse falls back to the strict
// read on nodes that do not.
type SparseProfileFetcher interface {
	FetchProfilesSparse(ids []uint64) ([][]byte, error)
}

// FetchProfilesSparse runs the gap-tolerant batched profile read against
// n, degrading to the strict FetchProfiles (whole-batch failure on any
// unknown id) when n does not implement SparseProfileFetcher.
func FetchProfilesSparse(n Node, ids []uint64) ([][]byte, error) {
	if sf, ok := n.(SparseProfileFetcher); ok {
		return sf.FetchProfilesSparse(ids)
	}
	return n.FetchProfiles(ids)
}

// ReplicaNode is the surface a replica group needs from each of its
// members: the full shard Node surface plus the replication version/repair
// endpoints (see internal/cloud/replica.go). Local and Remote both
// implement it.
type ReplicaNode interface {
	Node
	// Version returns the replica's last recorded write version.
	Version(ctx context.Context) (uint64, error)
	// ApplyVersion records a write version on the replica (monotonic max).
	ApplyVersion(v uint64) error
	// StoreBucketsVersioned stores buckets and records the write version
	// atomically, so a concurrent version probe never observes the version
	// ahead of the bucket data.
	StoreBucketsVersioned(refs []core.BucketRef, buckets []core.DynBucket, v uint64) error
	// ProfileIDs lists the replica's stored encrypted-profile ids,
	// ascending — the repair endpoint for mirroring profile stores.
	ProfileIDs() ([]uint64, error)
}

// Local is a Node over an in-process cloud.Server: the single-binary
// deployment where all shards live in one process but keep separate
// indexes and profile stores.
type Local struct {
	CS *cloud.Server
}

// NewLocal wraps an in-process cloud server as a shard node.
func NewLocal(cs *cloud.Server) Local { return Local{CS: cs} }

// Ping implements Node.
func (l Local) Ping(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.CS.Ping()
}

// SecRec implements Node.
func (l Local) SecRec(ctx context.Context, t *core.Trapdoor) ([]uint64, [][]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return l.CS.SecRec(t)
}

// SecRecBatch implements Node.
func (l Local) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return l.CS.SecRecBatch(ts)
}

// FetchProfiles implements Node.
func (l Local) FetchProfiles(ids []uint64) ([][]byte, error) { return l.CS.FetchProfiles(ids) }

// FetchProfilesSparse implements SparseProfileFetcher: unknown ids answer
// as empty entries instead of failing the batch.
func (l Local) FetchProfilesSparse(ids []uint64) ([][]byte, error) {
	return l.CS.FetchProfilesSparse(ids)
}

// PutProfiles implements Node.
func (l Local) PutProfiles(profiles map[uint64][]byte) error {
	l.CS.PutProfiles(profiles)
	return nil
}

// DeleteProfile implements Node.
func (l Local) DeleteProfile(id uint64) error {
	l.CS.DeleteProfile(id)
	return nil
}

// InstallIndex implements Node.
func (l Local) InstallIndex(idx *core.Index) error {
	l.CS.SetIndex(idx)
	return nil
}

// InstallDynIndex implements Node.
func (l Local) InstallDynIndex(idx *core.DynIndex) error {
	l.CS.SetDynIndex(idx)
	return nil
}

// FetchBuckets implements core.BucketStore.
func (l Local) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	return l.CS.FetchBuckets(refs)
}

// StoreBuckets implements core.BucketStore.
func (l Local) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	return l.CS.StoreBuckets(refs, buckets)
}

// Version implements ReplicaNode.
func (l Local) Version(ctx context.Context) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return l.CS.Version(), nil
}

// ApplyVersion implements ReplicaNode.
func (l Local) ApplyVersion(v uint64) error {
	l.CS.ApplyVersion(v)
	return nil
}

// StoreBucketsVersioned implements ReplicaNode.
func (l Local) StoreBucketsVersioned(refs []core.BucketRef, buckets []core.DynBucket, v uint64) error {
	return l.CS.StoreBucketsVersioned(refs, buckets, v)
}

// ProfileIDs implements ReplicaNode.
func (l Local) ProfileIDs() ([]uint64, error) { return l.CS.ProfileIDs(), nil }
