package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"pisd/internal/core"
	"pisd/internal/obs"
	"pisd/internal/transport"
)

// Config tunes a Pool's fan-out behaviour.
type Config struct {
	// Timeout bounds each per-shard call attempt; zero means only the
	// caller's context bounds the call.
	Timeout time.Duration
	// Retries is how many additional attempts a shard gets after a
	// retryable failure (connection-level error or per-attempt timeout).
	// Application errors are never retried.
	Retries int
	// Owner maps a user identifier to its shard index; nil means
	// core.DefaultOwner (id mod shard count). It must match the owner
	// function the partitioned index was built with.
	Owner func(uint64) int
	// OnShardError, when non-nil, observes every shard failure the pool
	// tolerates or reports (shard index and final error after retries).
	OnShardError func(shard int, err error)
}

// DefaultConfig returns the pool defaults: a 5 s per-shard deadline and
// one retry.
func DefaultConfig() Config {
	return Config{Timeout: 5 * time.Second, Retries: 1}
}

// Pool fans discovery requests out across cloud shards and merges their
// encrypted matches. It is safe for concurrent use.
type Pool struct {
	cfg   Config
	nodes []Node
	met   *poolMetrics
}

// NewPool assembles a pool over the given shard nodes. The node order is
// the shard numbering: nodes[s] must host the index built for shard s.
func NewPool(cfg Config, nodes ...Node) (*Pool, error) {
	if len(nodes) == 0 {
		return nil, errors.New("shard: pool needs at least one node")
	}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("shard: node %d is nil", i)
		}
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("shard: retries must be >= 0, got %d", cfg.Retries)
	}
	if cfg.Owner == nil {
		cfg.Owner = core.DefaultOwner(len(nodes))
	}
	return &Pool{cfg: cfg, nodes: nodes, met: newPoolMetrics(obs.Default, len(nodes))}, nil
}

// Len returns the shard count.
func (p *Pool) Len() int { return len(p.nodes) }

// Node returns shard s's node; with Owner it routes per-user operations
// (profile upload/delete, dynamic insert/delete) to the owning shard.
func (p *Pool) Node(s int) Node { return p.nodes[s] }

// Owner returns the shard that owns identifier id.
func (p *Pool) Owner(id uint64) int { return p.cfg.Owner(id) }

// OwnerNode returns the node hosting identifier id.
func (p *Pool) OwnerNode(id uint64) Node { return p.nodes[p.cfg.Owner(id)] }

// SecRec fans the trapdoor out to every shard concurrently and merges the
// recovered identifiers and encrypted profiles in shard order. Shards that
// fail (after the configured retries) are skipped; partial reports whether
// any were. Only when every shard fails does SecRec return an error. The
// signature implements frontend.FanoutServer.
func (p *Pool) SecRec(ctx context.Context, t *core.Trapdoor) (ids []uint64, encProfiles [][]byte, partial bool, err error) {
	start := time.Now()
	type leg struct {
		ids      []uint64
		profiles [][]byte
	}
	results, errs := fanout(p, ctx, func(cctx context.Context, s int) (leg, error) {
		ids, profiles, err := p.nodes[s].SecRec(cctx, t)
		return leg{ids: ids, profiles: profiles}, err
	})

	var firstErr error
	failed := 0
	seen := make(map[uint64]struct{})
	for s, r := range results {
		if errs[s] != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", s, errs[s])
			}
			continue
		}
		for i, id := range r.ids {
			// Shards are disjoint by construction; the dedup guard keeps
			// SecRec's no-duplicates contract even over a misconfigured
			// (overlapping) deployment.
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			ids = append(ids, id)
			encProfiles = append(encProfiles, r.profiles[i])
		}
	}
	if failed == len(p.nodes) {
		return nil, nil, false, fmt.Errorf("shard: all %d shards failed: %w", len(p.nodes), firstErr)
	}
	p.met.fanout(start, failed > 0)
	return ids, encProfiles, failed > 0, nil
}

// SecRecBatch fans a batch of trapdoors out as ONE call per shard and
// merges per query: result q is byte-identical to what SecRec(ctx, ts[q])
// would return over the same set of healthy shards (shard-order merge,
// per-query dedup). A shard that fails after the configured retries is
// skipped for the whole batch and the result is flagged partial; only when
// every shard fails does SecRecBatch return an error.
func (p *Pool) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) (ids [][]uint64, encProfiles [][][]byte, partial bool, err error) {
	if len(ts) == 0 {
		return nil, nil, false, nil
	}
	start := time.Now()
	type batchLeg struct {
		ids      [][]uint64
		profiles [][][]byte
	}
	results, errs := fanout(p, ctx, func(cctx context.Context, s int) (batchLeg, error) {
		ids, profiles, err := p.nodes[s].SecRecBatch(cctx, ts)
		if err == nil && (len(ids) != len(ts) || len(profiles) != len(ts)) {
			err = fmt.Errorf("shard: batch of %d queries answered with %d results", len(ts), len(ids))
		}
		return batchLeg{ids: ids, profiles: profiles}, err
	})

	var firstErr error
	failed := 0
	for s := range p.nodes {
		if errs[s] != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", s, errs[s])
			}
		}
	}
	if failed == len(p.nodes) {
		return nil, nil, false, fmt.Errorf("shard: all %d shards failed: %w", len(p.nodes), firstErr)
	}
	ids = make([][]uint64, len(ts))
	encProfiles = make([][][]byte, len(ts))
	for q := range ts {
		seen := make(map[uint64]struct{})
		for s, r := range results {
			if errs[s] != nil {
				continue
			}
			for i, id := range r.ids[q] {
				if _, dup := seen[id]; dup {
					continue
				}
				seen[id] = struct{}{}
				ids[q] = append(ids[q], id)
				encProfiles[q] = append(encProfiles[q], r.profiles[q][i])
			}
		}
	}
	p.met.fanout(start, failed > 0)
	return ids, encProfiles, failed > 0, nil
}

// fanout runs one retried call per shard concurrently and collects each
// shard's result or final error. Shard failures are reported to
// OnShardError here, once per fan-out.
func fanout[T any](p *Pool, ctx context.Context, call func(context.Context, int) (T, error)) ([]T, []error) {
	results := make([]T, len(p.nodes))
	errs := make([]error, len(p.nodes))
	var wg sync.WaitGroup
	for s := range p.nodes {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			start := time.Now()
			results[s], errs[s] = attempt(p, ctx, s, func(cctx context.Context) (T, error) {
				return call(cctx, s)
			})
			if errs[s] == nil {
				p.met.leg(s).ObserveSince(start)
			} else {
				p.met.failure(s)
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil && p.cfg.OnShardError != nil {
			p.cfg.OnShardError(s, err)
		}
	}
	return results, errs
}

// attempt runs shard s's call with the pool's per-attempt deadline and
// bounded retry. Only connection-level faults and per-attempt timeouts are
// retried; a cancelled parent context or an application error ends the
// attempts immediately.
//
// Only the FINAL error is returned: a retryable ConnError on an early try
// followed by an application error on the next is reported as the
// application error alone. That is the right error to act on, but it
// makes the preceding connection fault invisible to callers — the
// per-shard attempts/retries/timeouts counters exist precisely so those
// swallowed intermediate faults stay visible in aggregate
// (TestAttemptAccountsSwallowedConnError pins this down).
func attempt[T any](p *Pool, ctx context.Context, s int, call func(context.Context) (T, error)) (T, error) {
	var zero T
	var lastErr error
	for try := 0; try <= p.cfg.Retries; try++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		p.met.attempt(s, try)
		cctx, cancel := p.attemptCtx(ctx)
		r, err := call(cctx)
		cancel()
		if err == nil {
			return r, nil
		}
		lastErr = err
		if errors.Is(err, context.DeadlineExceeded) {
			p.met.timeout(s)
		}
		if !retryable(err) {
			break
		}
	}
	return zero, lastErr
}

// attemptCtx derives the per-attempt context.
func (p *Pool) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.cfg.Timeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, p.cfg.Timeout)
}

// retryable classifies a shard failure: connection-level transport faults
// and attempt deadline expiries may succeed on a fresh connection;
// application errors (e.g. "no index installed") will not.
func retryable(err error) bool {
	return transport.IsConnError(err) || errors.Is(err, context.DeadlineExceeded)
}

// Ping probes every shard concurrently and returns one liveness result per
// shard (nil = healthy). Pings are not retried: the caller is asking about
// the shard's state right now.
func (p *Pool) Ping(ctx context.Context) []error {
	errs := make([]error, len(p.nodes))
	var wg sync.WaitGroup
	for s := range p.nodes {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			cctx, cancel := p.attemptCtx(ctx)
			defer cancel()
			errs[s] = p.nodes[s].Ping(cctx)
		}(s)
	}
	wg.Wait()
	return errs
}

// InstallShard installs shard s's partitioned index and encrypted
// profiles on its node.
func (p *Pool) InstallShard(s int, idx *core.Index, encProfiles map[uint64][]byte) error {
	if s < 0 || s >= len(p.nodes) {
		return fmt.Errorf("shard: shard %d out of range [0,%d)", s, len(p.nodes))
	}
	if err := p.nodes[s].InstallIndex(idx); err != nil {
		return fmt.Errorf("shard %d: install index: %w", s, err)
	}
	if err := p.nodes[s].PutProfiles(encProfiles); err != nil {
		return fmt.Errorf("shard %d: put profiles: %w", s, err)
	}
	return nil
}

// InstallDynShard installs shard s's dynamic index and encrypted profiles
// on its node.
func (p *Pool) InstallDynShard(s int, idx *core.DynIndex, encProfiles map[uint64][]byte) error {
	if s < 0 || s >= len(p.nodes) {
		return fmt.Errorf("shard: shard %d out of range [0,%d)", s, len(p.nodes))
	}
	if err := p.nodes[s].InstallDynIndex(idx); err != nil {
		return fmt.Errorf("shard %d: install dynamic index: %w", s, err)
	}
	if err := p.nodes[s].PutProfiles(encProfiles); err != nil {
		return fmt.Errorf("shard %d: put profiles: %w", s, err)
	}
	return nil
}
