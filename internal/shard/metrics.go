package shard

import (
	"strconv"
	"time"

	"pisd/internal/obs"
)

// poolMetrics is the shard tier's metric surface. Per-shard metrics carry
// the shard index in the name ("shard.3.secrec", "shard.3.retries"), so a
// flattened snapshot exposes every shard's fan-out health side by side —
// including the derived "shard.<i>.secrec_p99_ns" latency keys. A nil
// *poolMetrics (pool built against a nil registry) is the disabled mode.
type poolMetrics struct {
	fanouts  *obs.Counter // fan-out operations issued (SecRec + SecRecBatch)
	partials *obs.Counter // fan-outs that returned degraded/partial results
	fanoutNs *obs.Histogram

	// Indexed by shard.
	legNs    []*obs.Histogram // successful per-shard leg latency (incl. retries)
	attempts []*obs.Counter   // call attempts, first tries included
	retries  []*obs.Counter   // attempts beyond the first (a retryable fault preceded)
	timeouts []*obs.Counter   // attempts failed by per-attempt deadline
	failures []*obs.Counter   // legs failed for good after all retries
}

func newPoolMetrics(r *obs.Registry, shards int) *poolMetrics {
	if r == nil {
		return nil
	}
	m := &poolMetrics{
		fanouts:  r.Counter("shard.fanouts"),
		partials: r.Counter("shard.partial_results"),
		fanoutNs: r.Histogram("shard.fanout"),
		legNs:    make([]*obs.Histogram, shards),
		attempts: make([]*obs.Counter, shards),
		retries:  make([]*obs.Counter, shards),
		timeouts: make([]*obs.Counter, shards),
		failures: make([]*obs.Counter, shards),
	}
	for s := 0; s < shards; s++ {
		prefix := "shard." + strconv.Itoa(s) + "."
		m.legNs[s] = r.Histogram(prefix + "secrec")
		m.attempts[s] = r.Counter(prefix + "attempts")
		m.retries[s] = r.Counter(prefix + "retries")
		m.timeouts[s] = r.Counter(prefix + "timeouts")
		m.failures[s] = r.Counter(prefix + "failures")
	}
	return m
}

func (m *poolMetrics) leg(s int) *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.legNs[s]
}

func (m *poolMetrics) attempt(s int, try int) {
	if m == nil {
		return
	}
	m.attempts[s].Inc()
	if try > 0 {
		m.retries[s].Inc()
	}
}

func (m *poolMetrics) timeout(s int) {
	if m != nil {
		m.timeouts[s].Inc()
	}
}

func (m *poolMetrics) failure(s int) {
	if m != nil {
		m.failures[s].Inc()
	}
}

func (m *poolMetrics) fanout(start time.Time, partial bool) {
	if m == nil {
		return
	}
	m.fanouts.Inc()
	if partial {
		m.partials.Inc()
	}
	m.fanoutNs.ObserveSince(start)
}

// SetRegistry re-registers the pool's metrics in r under the "shard."
// prefix (nil disables them). Pools start on obs.Default; call during
// setup or for test isolation, not concurrently with fan-outs.
func (p *Pool) SetRegistry(r *obs.Registry) {
	p.met = newPoolMetrics(r, len(p.nodes))
}
