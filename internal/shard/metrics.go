package shard

import (
	"strconv"
	"sync"
	"time"

	"pisd/internal/obs"
)

// poolMetrics is the shard tier's metric surface. Per-shard metrics carry
// the shard index in the name ("shard.3.secrec", "shard.3.retries"), so a
// flattened snapshot exposes every shard's fan-out health side by side —
// including the derived "shard.<i>.secrec_p99_ns" latency keys. A nil
// *poolMetrics (pool built against a nil registry) is the disabled mode.
type poolMetrics struct {
	fanouts  *obs.Counter // fan-out operations issued (SecRec + SecRecBatch)
	partials *obs.Counter // fan-outs that returned degraded/partial results
	fanoutNs *obs.Histogram

	// Indexed by shard.
	legNs    []*obs.Histogram // successful per-shard leg latency (incl. retries)
	attempts []*obs.Counter   // call attempts, first tries included
	retries  []*obs.Counter   // attempts beyond the first (a retryable fault preceded)
	timeouts []*obs.Counter   // attempts failed by per-attempt deadline
	failures []*obs.Counter   // legs failed for good after all retries
}

func newPoolMetrics(r *obs.Registry, shards int) *poolMetrics {
	if r == nil {
		return nil
	}
	m := &poolMetrics{
		fanouts:  r.Counter("shard.fanouts"),
		partials: r.Counter("shard.partial_results"),
		fanoutNs: r.Histogram("shard.fanout"),
		legNs:    make([]*obs.Histogram, shards),
		attempts: make([]*obs.Counter, shards),
		retries:  make([]*obs.Counter, shards),
		timeouts: make([]*obs.Counter, shards),
		failures: make([]*obs.Counter, shards),
	}
	for s := 0; s < shards; s++ {
		prefix := "shard." + strconv.Itoa(s) + "."
		m.legNs[s] = r.Histogram(prefix + "secrec")
		m.attempts[s] = r.Counter(prefix + "attempts")
		m.retries[s] = r.Counter(prefix + "retries")
		m.timeouts[s] = r.Counter(prefix + "timeouts")
		m.failures[s] = r.Counter(prefix + "failures")
	}
	return m
}

func (m *poolMetrics) leg(s int) *obs.Histogram {
	if m == nil {
		return nil
	}
	return m.legNs[s]
}

func (m *poolMetrics) attempt(s int, try int) {
	if m == nil {
		return
	}
	m.attempts[s].Inc()
	if try > 0 {
		m.retries[s].Inc()
	}
}

func (m *poolMetrics) timeout(s int) {
	if m != nil {
		m.timeouts[s].Inc()
	}
}

func (m *poolMetrics) failure(s int) {
	if m != nil {
		m.failures[s].Inc()
	}
}

func (m *poolMetrics) fanout(start time.Time, partial bool) {
	if m == nil {
		return
	}
	m.fanouts.Inc()
	if partial {
		m.partials.Inc()
	}
	m.fanoutNs.ObserveSince(start)
}

// SetRegistry re-registers the pool's metrics in r under the "shard."
// prefix (nil disables them). Pools start on obs.Default; call during
// setup or for test isolation, not concurrently with fan-outs.
func (p *Pool) SetRegistry(r *obs.Registry) {
	p.met = newPoolMetrics(r, len(p.nodes))
}

// groupMetrics is the replica tier's metric surface. The fleet-wide
// counters (replica.failovers, replica.repairs, replica.demotions,
// replica.readmits) and the replica.lag gauge are registered by name, so
// every group in a registry shares them — one number answers "is the
// fleet failing over / repairing / lagging right now". Per-replica
// attempts and timeouts carry the group and replica index in the name
// ("replica.1.0.attempts"), so the counters always name the replica a
// call actually hit — including calls whose connection fault a
// successful failover swallowed. A nil *groupMetrics is the disabled
// mode.
type groupMetrics struct {
	reg   *obs.Registry
	group int

	failovers *obs.Counter // read legs moved to a sibling after a fault
	repairs   *obs.Counter // successful anti-entropy re-syncs
	demotions *obs.Counter // replicas demoted by the health prober
	readmits  *obs.Counter // demoted replicas re-admitted after recovery
	lag       *obs.Gauge   // replicas currently lagging, fleet-wide

	mu       sync.Mutex // guards growth when a replica joins online
	attempts []*obs.Counter
	timeouts []*obs.Counter
}

func newGroupMetrics(r *obs.Registry, group, replicas int) *groupMetrics {
	if r == nil {
		return nil
	}
	m := &groupMetrics{
		reg:       r,
		group:     group,
		failovers: r.Counter("replica.failovers"),
		repairs:   r.Counter("replica.repairs"),
		demotions: r.Counter("replica.demotions"),
		readmits:  r.Counter("replica.readmits"),
		lag:       r.Gauge("replica.lag"),
	}
	m.growLocked(replicas)
	return m
}

// growLocked extends the per-replica counter arrays to n replicas.
func (m *groupMetrics) growLocked(n int) {
	for i := len(m.attempts); i < n; i++ {
		prefix := "replica." + strconv.Itoa(m.group) + "." + strconv.Itoa(i) + "."
		m.attempts = append(m.attempts, m.reg.Counter(prefix+"attempts"))
		m.timeouts = append(m.timeouts, m.reg.Counter(prefix+"timeouts"))
	}
}

func (m *groupMetrics) grow(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.growLocked(n)
	m.mu.Unlock()
}

func (m *groupMetrics) attempt(i int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if i < len(m.attempts) {
		m.attempts[i].Inc()
	}
	m.mu.Unlock()
}

func (m *groupMetrics) timeout(i int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if i < len(m.timeouts) {
		m.timeouts[i].Inc()
	}
	m.mu.Unlock()
}

func (m *groupMetrics) failover() {
	if m != nil {
		m.failovers.Inc()
	}
}

func (m *groupMetrics) repair() {
	if m != nil {
		m.repairs.Inc()
	}
}

func (m *groupMetrics) demotion() {
	if m != nil {
		m.demotions.Inc()
	}
}

func (m *groupMetrics) readmit() {
	if m != nil {
		m.readmits.Inc()
	}
}

func (m *groupMetrics) lagDelta(d int) {
	if m != nil && d != 0 {
		m.lag.Add(int64(d))
	}
}

// SetRegistry re-registers the group's metrics in r (nil disables them).
// Groups start on obs.Default; call during setup or for test isolation,
// not concurrently with traffic.
func (g *ReplicaGroup) SetRegistry(r *obs.Registry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.lastLag = 0
	g.met = newGroupMetrics(r, g.id, len(g.reps))
}
