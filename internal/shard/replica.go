package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pisd/internal/core"
	"pisd/internal/obs"
)

// Compile-time checks: both node flavours carry the replication surface.
var (
	_ ReplicaNode = Local{}
	_ ReplicaNode = (*Remote)(nil)
)

// GroupConfig tunes one replica group's dispatch behaviour.
type GroupConfig struct {
	// Timeout bounds each per-replica read attempt made with a caller
	// context (discovery legs, pings); zero leaves only the caller's
	// deadline. Context-free operations (profile and bucket fetches) are
	// bounded by the per-node timeout (Remote.SetTimeout) instead.
	Timeout time.Duration
	// OnFailover, when non-nil, observes every read failover: the group,
	// the replica whose attempt failed, and the fault that caused it.
	OnFailover func(group, replica int, err error)
}

// replicaState is the group's bookkeeping for one member: how much of the
// group's write history the member has provably applied, and how healthy
// it currently looks to reads and probes.
type replicaState struct {
	node ReplicaNode
	// applied is the newest group write version this replica applied as
	// part of an unbroken prefix: it has every write ≤ applied.
	applied uint64
	// lagging marks a replica that missed or failed at least one write.
	// It keeps receiving new writes (so its lag stops growing) but is
	// excluded from reads until the repairer re-syncs it from a peer.
	lagging bool
	// down marks a replica demoted by the health prober: writes skip it
	// entirely (marking it lagging) and reads use it only as a last
	// resort when no live current replica answers.
	down       bool
	probeFails int    // consecutive failed health probes
	probeOKs   int    // consecutive successful probes while down
	readFaults int    // connection-level read faults since the last success
	writeFails uint64 // cumulative write failures on this replica
}

// current reports whether the replica can serve reads without risking a
// stale answer: it has applied every group write and missed none.
func (rep *replicaState) current(version uint64) bool {
	return !rep.lagging && rep.applied == version
}

// ReplicaGroup replicates one shard partition across R interchangeable
// nodes and presents them as a single Node, so a fan-out Pool (and
// through it the serving stack) is oblivious to replication. Reads
// dispatch to the healthiest replica that has applied every write and
// fail over to a sibling on connection-level faults — a dead replica
// never degrades the fan-out to a partial result while a sibling is
// alive. Writes fan to all live replicas under a per-group version
// counter; a replica that misses a write is excluded from reads until
// the anti-entropy repairer (health.go) re-syncs it. A group of one is
// valid and behaves like the bare node.
type ReplicaGroup struct {
	id  int
	cfg GroupConfig

	// wmu serializes multi-replica mutations — write fan-outs, repairs
	// and migrations — so every replica observes the same write order and
	// a repair never races a half-applied write.
	wmu sync.Mutex

	mu      sync.Mutex // guards reps, version, lastLag
	reps    []*replicaState
	version uint64 // writes issued through the group, 1-based
	lastLag int    // lagging count last reported to the lag gauge

	met *groupMetrics
}

var _ Node = (*ReplicaGroup)(nil)

// NewReplicaGroup assembles partition id's replica group over the given
// member nodes, all assumed in sync (freshly installed or empty).
func NewReplicaGroup(id int, cfg GroupConfig, nodes ...ReplicaNode) (*ReplicaGroup, error) {
	if len(nodes) == 0 {
		return nil, errors.New("shard: replica group needs at least one node")
	}
	g := &ReplicaGroup{id: id, cfg: cfg, met: newGroupMetrics(obs.Default, id, len(nodes))}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("shard: replica %d is nil", i)
		}
		g.reps = append(g.reps, &replicaState{node: n})
	}
	return g, nil
}

// ID returns the partition index the group replicates.
func (g *ReplicaGroup) ID() int { return g.id }

// Len returns the current number of replicas.
func (g *ReplicaGroup) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.reps)
}

// Replica returns member i's node, for direct (group-bypassing) access in
// tests and repair tooling.
func (g *ReplicaGroup) Replica(i int) ReplicaNode {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.reps[i].node
}

// Version returns the number of writes issued through the group.
func (g *ReplicaGroup) Version() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.version
}

// ReplicaStatus is a point-in-time view of one group member.
type ReplicaStatus struct {
	// Applied is the newest write version in the member's unbroken prefix.
	Applied uint64
	// Down reports prober demotion; Lagging a missed write awaiting
	// repair; Current that reads may be served from this member.
	Down    bool
	Lagging bool
	Current bool
	// WriteFails counts writes that failed on this member.
	WriteFails uint64
}

// Status snapshots every member's health, in replica order.
func (g *ReplicaGroup) Status() []ReplicaStatus {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ReplicaStatus, len(g.reps))
	for i, rep := range g.reps {
		out[i] = ReplicaStatus{
			Applied:    rep.applied,
			Down:       rep.down,
			Lagging:    rep.lagging,
			Current:    rep.current(g.version),
			WriteFails: rep.writeFails,
		}
	}
	return out
}

// syncLagMetric pushes the group's lagging-replica count into the shared
// fleet-wide lag gauge as a delta against the group's last report.
func (g *ReplicaGroup) syncLagMetric() {
	g.mu.Lock()
	cur := 0
	for _, rep := range g.reps {
		if rep.lagging {
			cur++
		}
	}
	d := cur - g.lastLag
	g.lastLag = cur
	g.mu.Unlock()
	g.met.lagDelta(d)
}

// downPenalty orders down-but-current replicas after every live one: a
// demoted replica that applied all writes is still consistency-safe to
// read from, so it serves as the last resort rather than failing the
// read outright.
const downPenalty = 1 << 20

// readGroup dispatches one read to the healthiest current replica, failing
// over through the remaining current replicas on connection-level faults.
// Application errors surface immediately (every replica would answer the
// same). Only replicas that applied every group write are candidates, so
// a successful read is never stale; if none exists the read fails rather
// than serve stale data.
func readGroup[T any](g *ReplicaGroup, ctx context.Context, call func(ctx context.Context, n ReplicaNode) (T, error)) (T, error) {
	var zero T
	if ctx == nil {
		ctx = context.Background()
	}
	type cand struct{ i, score int }
	g.mu.Lock()
	v := g.version
	cands := make([]cand, 0, len(g.reps))
	for i, rep := range g.reps {
		if !rep.current(v) {
			continue
		}
		score := rep.readFaults + rep.probeFails
		if rep.down {
			score += downPenalty
		}
		cands = append(cands, cand{i: i, score: score})
	}
	g.mu.Unlock()
	if len(cands) == 0 {
		return zero, fmt.Errorf("shard: group %d: no current replica", g.id)
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].score < cands[b].score })

	var lastErr error
	for k, c := range cands {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		g.mu.Lock()
		rep := g.reps[c.i]
		node := rep.node
		g.mu.Unlock()
		// The attempt is charged to the replica actually tried, before the
		// call: a fault swallowed by a successful failover to a sibling
		// still shows up on this replica's counters.
		g.met.attempt(c.i)
		cctx := ctx
		cancel := context.CancelFunc(func() {})
		if g.cfg.Timeout > 0 {
			cctx, cancel = context.WithTimeout(ctx, g.cfg.Timeout)
		}
		r, err := call(cctx, node)
		cancel()
		if err == nil {
			g.mu.Lock()
			rep.readFaults = 0
			g.mu.Unlock()
			return r, nil
		}
		if errors.Is(err, context.DeadlineExceeded) {
			g.met.timeout(c.i)
		}
		if !retryable(err) {
			return zero, err
		}
		g.mu.Lock()
		rep.readFaults++
		g.mu.Unlock()
		lastErr = err
		if k < len(cands)-1 {
			g.met.failover()
			if g.cfg.OnFailover != nil {
				g.cfg.OnFailover(g.id, c.i, err)
			}
		}
	}
	return zero, fmt.Errorf("shard: group %d: all current replicas failed: %w", g.id, lastErr)
}

// write issues one group write: the version advances, the write fans to
// every non-down replica concurrently, and each replica's applied prefix
// is updated from its outcome. A replica that fails (or is skipped while
// down) is marked lagging — ambiguity-safe, since a failed call may still
// have been applied server-side — and drops out of reads until repaired.
// The write succeeds if at least one replica applied it.
func (g *ReplicaGroup) write(op string, fn func(n ReplicaNode, v uint64) error) error {
	g.wmu.Lock()
	defer g.wmu.Unlock()

	type target struct {
		i int
		n ReplicaNode
	}
	g.mu.Lock()
	g.version++
	v := g.version
	targets := make([]target, 0, len(g.reps))
	for i, rep := range g.reps {
		if rep.down {
			rep.lagging = true
			continue
		}
		targets = append(targets, target{i: i, n: rep.node})
	}
	g.mu.Unlock()
	defer g.syncLagMetric()
	if len(targets) == 0 {
		return fmt.Errorf("shard: group %d: %s: no live replica", g.id, op)
	}

	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for k := range targets {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = fn(targets[k].n, v)
		}(k)
	}
	wg.Wait()

	ok := 0
	var lastErr error
	g.mu.Lock()
	for k, t := range targets {
		rep := g.reps[t.i]
		if errs[k] != nil {
			rep.lagging = true
			rep.writeFails++
			lastErr = errs[k]
			continue
		}
		ok++
		// Advance the applied prefix only if this write extends it: a
		// lagging replica accepting new writes still misses older ones.
		if !rep.lagging && rep.applied == v-1 {
			rep.applied = v
		}
	}
	g.mu.Unlock()
	if ok == 0 {
		return fmt.Errorf("shard: group %d: %s failed on all %d replicas: %w", g.id, op, len(targets), lastErr)
	}
	return nil
}

// Ping implements Node: the group is alive if any current replica is.
func (g *ReplicaGroup) Ping(ctx context.Context) error {
	_, err := readGroup(g, ctx, func(ctx context.Context, n ReplicaNode) (struct{}, error) {
		return struct{}{}, n.Ping(ctx)
	})
	return err
}

// SecRec implements Node on the healthiest current replica, with failover.
func (g *ReplicaGroup) SecRec(ctx context.Context, t *core.Trapdoor) ([]uint64, [][]byte, error) {
	type leg struct {
		ids      []uint64
		profiles [][]byte
	}
	r, err := readGroup(g, ctx, func(ctx context.Context, n ReplicaNode) (leg, error) {
		ids, profiles, err := n.SecRec(ctx, t)
		return leg{ids: ids, profiles: profiles}, err
	})
	return r.ids, r.profiles, err
}

// SecRecBatch implements Node on the healthiest current replica.
func (g *ReplicaGroup) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	type batchLeg struct {
		ids      [][]uint64
		profiles [][][]byte
	}
	r, err := readGroup(g, ctx, func(ctx context.Context, n ReplicaNode) (batchLeg, error) {
		ids, profiles, err := n.SecRecBatch(ctx, ts)
		return batchLeg{ids: ids, profiles: profiles}, err
	})
	return r.ids, r.profiles, err
}

// FetchProfiles implements Node on the healthiest current replica.
func (g *ReplicaGroup) FetchProfiles(ids []uint64) ([][]byte, error) {
	return readGroup(g, nil, func(_ context.Context, n ReplicaNode) ([][]byte, error) {
		return n.FetchProfiles(ids)
	})
}

// FetchProfilesSparse implements SparseProfileFetcher on the healthiest
// current replica, failing over like every group read. A member that does
// not itself implement the sparse read serves the strict one — reads only
// ever reach current replicas, so the two differ only on identifiers
// deleted group-wide, exactly the gap the sparse contract tolerates.
func (g *ReplicaGroup) FetchProfilesSparse(ids []uint64) ([][]byte, error) {
	return readGroup(g, nil, func(_ context.Context, n ReplicaNode) ([][]byte, error) {
		if sf, ok := n.(SparseProfileFetcher); ok {
			return sf.FetchProfilesSparse(ids)
		}
		return n.FetchProfiles(ids)
	})
}

// FetchBuckets implements core.BucketStore on the healthiest current
// replica. The dynamic protocols' read half routes here; their write half
// (StoreBuckets) fans to all replicas, so every touched bucket converges
// on every replica as a side effect of normal churn.
func (g *ReplicaGroup) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	return readGroup(g, nil, func(_ context.Context, n ReplicaNode) ([]core.DynBucket, error) {
		return n.FetchBuckets(refs)
	})
}

// PutProfiles implements Node, fanning to all live replicas.
func (g *ReplicaGroup) PutProfiles(profiles map[uint64][]byte) error {
	return g.write("put profiles", func(n ReplicaNode, v uint64) error {
		if err := n.PutProfiles(profiles); err != nil {
			return err
		}
		return n.ApplyVersion(v)
	})
}

// DeleteProfile implements Node, fanning to all live replicas.
func (g *ReplicaGroup) DeleteProfile(id uint64) error {
	return g.write("delete profile", func(n ReplicaNode, v uint64) error {
		if err := n.DeleteProfile(id); err != nil {
			return err
		}
		return n.ApplyVersion(v)
	})
}

// InstallIndex implements Node, fanning to all live replicas. The static
// index is immutable once installed, so the replicas may share it.
func (g *ReplicaGroup) InstallIndex(idx *core.Index) error {
	return g.write("install index", func(n ReplicaNode, v uint64) error {
		if err := n.InstallIndex(idx); err != nil {
			return err
		}
		return n.ApplyVersion(v)
	})
}

// InstallDynIndex implements Node, fanning to all live replicas. Each
// replica receives its own deep copy: dynamic buckets mutate under churn,
// and in-process replicas installing a shared pointer would alias state
// that must evolve independently, as it would on separate servers.
func (g *ReplicaGroup) InstallDynIndex(idx *core.DynIndex) error {
	return g.write("install dynamic index", func(n ReplicaNode, v uint64) error {
		if err := n.InstallDynIndex(idx.Clone()); err != nil {
			return err
		}
		return n.ApplyVersion(v)
	})
}

// StoreBuckets implements core.BucketStore, fanning to all live replicas
// with the write version carried atomically alongside the buckets.
func (g *ReplicaGroup) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	return g.write("store buckets", func(n ReplicaNode, v uint64) error {
		return n.StoreBucketsVersioned(refs, buckets, v)
	})
}
