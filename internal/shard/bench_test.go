package shard

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkPoolSecRec compares fan-out discovery latency for a 1-shard
// and a 4-shard pool over the same dataset: the 4-shard pool touches the
// same number of buckets overall but unmasks them on four nodes in
// parallel.
func BenchmarkPoolSecRec(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			f := testFrontend(b, "shard-bench")
			uploads, ds := testUploads(b, f, 300)
			pool := localPool(b, f, uploads, shards)
			queries, _ := ds.Queries(1, 17)
			td, err := f.Trapdoor(queries[0])
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := pool.SecRec(context.Background(), td); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedBuild compares index-build wall time: the partitioned
// build shares one cuckoo placement and encrypts the per-shard
// projections in parallel goroutines.
func BenchmarkShardedBuild(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			f := testFrontend(b, "shard-bench")
			uploads, _ := testUploads(b, f, 300)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.BuildShardedIndex(uploads, shards, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
