package shard

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/faultnet"
	"pisd/internal/frontend"
	"pisd/internal/transport"
)

// startServer runs a transport server over an (optionally installed)
// cloud and returns its address.
func startServer(t *testing.T, cs *cloud.Server) string {
	t.Helper()
	srv := transport.NewServer(cs)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return addr
}

// TestRemoteConnPoolDispatch pins the pool's dispatch policy: lazy dials
// up to the configured size while live connections are busy, idle
// connections reused before any new dial, least-loaded connection chosen
// once the pool is full.
func TestRemoteConnPoolDispatch(t *testing.T) {
	addr := startServer(t, cloud.New())
	r := NewRemote(addr)
	defer r.Close()
	r.SetConns(3)
	if got := r.Conns(); got != 3 {
		t.Fatalf("Conns() = %d, want 3", got)
	}

	s1, err := r.acquire()
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	if live := r.LiveConns(); live != 1 {
		t.Fatalf("after first acquire: %d live conns, want 1", live)
	}
	// s1 is busy, so the next call must open a second connection rather
	// than pile onto the same gob stream.
	s2, err := r.acquire()
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if s2 == s1 {
		t.Fatal("second concurrent call dispatched onto the busy connection")
	}
	s3, err := r.acquire()
	if err != nil {
		t.Fatalf("acquire 3: %v", err)
	}
	if s3 == s1 || s3 == s2 {
		t.Fatal("third concurrent call did not open the third connection")
	}
	if live := r.LiveConns(); live != 3 {
		t.Fatalf("pool not fully dialed: %d live conns, want 3", live)
	}

	// Pool exhausted: the least-loaded connection takes the overflow.
	s2.inflight.Add(-1) // release s2
	s4, err := r.acquire()
	if err != nil {
		t.Fatalf("acquire 4: %v", err)
	}
	if s4 != s2 {
		t.Fatal("overflow call not dispatched to the least-loaded connection")
	}
	s1.inflight.Add(-1)
	s3.inflight.Add(-1)
	s4.inflight.Add(-1)

	// An idle live connection is preferred over dialing into a freed slot.
	r.SetConns(1)
	if live := r.LiveConns(); live != 1 {
		t.Fatalf("after shrink: %d live conns, want 1", live)
	}
	r.SetConns(2)
	s5, err := r.acquire()
	if err != nil {
		t.Fatalf("acquire after regrow: %v", err)
	}
	if live := r.LiveConns(); live != 1 {
		t.Fatalf("idle connection not reused: %d live conns, want 1", live)
	}
	s5.inflight.Add(-1)
}

// TestRemotePooledConnFaultNoPartial is the regression for the partial
// flag under pooled-connection faults: killing ONE pooled connection —
// not the shard — mid-traffic must not degrade the fan-out to a partial
// result, on the SecRec and the SecRecBatch path alike. The failing call
// drops only its own connection, the pool's bounded retry lands on the
// surviving one, and the shard answers in full.
func TestRemotePooledConnFaultNoPartial(t *testing.T) {
	const n, k = 200, 5
	f := testFrontend(t, "connpool-fault")
	uploads, ds := testUploads(t, f, n)
	shards, err := f.BuildShardedIndex(uploads, 1, nil)
	if err != nil {
		t.Fatalf("BuildShardedIndex: %v", err)
	}

	fn := faultnet.New(faultnet.Plan{Seed: 42})
	fn.SetEnabled(false) // only scripted faults
	addr := startServer(t, cloud.New())
	// Reach the server through the fault-injecting dialer with a
	// two-connection pool.
	remote := NewRemoteDialer(addr, fn.Dialer("shard0"))
	defer remote.Close()
	remote.SetConns(2)

	pool, err := NewPool(DefaultConfig(), remote)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	if err := pool.InstallShard(0, shards[0].Index, shards[0].EncProfiles); err != nil {
		t.Fatalf("InstallShard: %v", err)
	}

	// Prime both pooled connections so the fault hits a live pool.
	c1, err := remote.acquire()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := remote.acquire()
	if err != nil {
		t.Fatal(err)
	}
	c1.inflight.Add(-1)
	c2.inflight.Add(-1)
	if live := remote.LiveConns(); live != 2 {
		t.Fatalf("primed %d conns, want 2", live)
	}

	queries, _ := ds.Queries(3, 7)
	tds := make([]*core.Trapdoor, len(queries))
	for i, q := range queries {
		td, err := f.Trapdoor(q)
		if err != nil {
			t.Fatal(err)
		}
		tds[i] = td
	}

	// Healthy baselines.
	wantIDs, wantProfiles, partial, err := pool.SecRec(context.Background(), tds[0])
	if err != nil || partial {
		t.Fatalf("healthy SecRec: partial=%v err=%v", partial, err)
	}
	wantBatchIDs, wantBatchProfiles, partial, err := pool.SecRecBatch(context.Background(), tds)
	if err != nil || partial {
		t.Fatalf("healthy SecRecBatch: partial=%v err=%v", partial, err)
	}

	// Kill one pooled connection under a single-query fan-out.
	fn.FailNextWrites("shard0", 1)
	ids, profiles, partial, err := pool.SecRec(context.Background(), tds[0])
	if err != nil {
		t.Fatalf("SecRec with one dead pooled conn: %v", err)
	}
	if partial {
		t.Fatal("SecRec degraded to partial after a single pooled connection died")
	}
	if !reflect.DeepEqual(ids, wantIDs) || !reflect.DeepEqual(profiles, wantProfiles) {
		t.Fatal("SecRec result diverged after pooled connection fault")
	}

	// Same mid-batch: one connection dies under SecRecBatch.
	fn.FailNextWrites("shard0", 1)
	bIDs, bProfiles, partial, err := pool.SecRecBatch(context.Background(), tds)
	if err != nil {
		t.Fatalf("SecRecBatch with one dead pooled conn: %v", err)
	}
	if partial {
		t.Fatal("SecRecBatch degraded to partial after a single pooled connection died")
	}
	if !reflect.DeepEqual(bIDs, wantBatchIDs) || !reflect.DeepEqual(bProfiles, wantBatchProfiles) {
		t.Fatal("SecRecBatch result diverged after pooled connection fault")
	}
}

var _ frontend.FanoutBatchServer = (*Pool)(nil)
