package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"pisd/internal/core"
	"pisd/internal/transport"
)

// Remote is a Node backed by a pool of framed transport connections to one
// shard server. Each connection is an independently multiplexed gob
// stream, so concurrent SecRec legs no longer serialize behind a single
// encoder: dispatch picks the least-loaded live connection, dialing lazily
// up to the configured pool size (SetConns, default 1).
//
// Fault handling is per connection, not per shard. A call that fails with
// a fatal connection-level error drops only its own slot — the remaining
// pooled connections stay live, so the fan-out pool's bounded retry lands
// on a healthy stream (or a fresh redial) and the shard never degrades to
// a partial result over a single dead socket. A call that merely timed
// out or was cancelled keeps its connection: the multiplexed transport
// skips the late response by its request ID, so the stream (and every
// other call pipelined on it) stays healthy.
type Remote struct {
	addr string
	dial transport.Dialer

	mu      sync.Mutex
	slots   []*remoteConn // fixed-size; nil slots dial lazily
	timeout time.Duration
}

// remoteConn is one pooled connection with its in-flight call count. The
// count is atomic because calls decrement it after releasing the pool
// lock; reads under the lock are a heuristic load signal, not a barrier.
type remoteConn struct {
	c        *transport.Client
	inflight atomic.Int64
}

var _ Node = (*Remote)(nil)

// NewRemote returns a shard node for the transport server at addr with a
// single-connection pool. No connection is made until the first call.
func NewRemote(addr string) *Remote {
	return &Remote{addr: addr, slots: make([]*remoteConn, 1)}
}

// NewRemoteDialer is NewRemote with an injectable connection factory:
// every dial — the lazy first ones and each post-fault redial — goes
// through dial. Fault-injection harnesses (faultnet.Network.Dialer) hook
// in here; nil behaves like NewRemote.
func NewRemoteDialer(addr string, dial transport.Dialer) *Remote {
	r := NewRemote(addr)
	r.dial = dial
	return r
}

// Addr returns the shard server's address.
func (r *Remote) Addr() string { return r.addr }

// SetConns sizes the connection pool (minimum 1). Growing adds empty
// slots that dial on demand; shrinking closes the surplus trailing
// connections, including ones with calls still in flight — size the pool
// before heavy traffic.
func (r *Remote) SetConns(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := n; i < len(r.slots); i++ {
		if r.slots[i] != nil {
			r.slots[i].c.Close()
		}
	}
	if n <= len(r.slots) {
		r.slots = r.slots[:n]
		return
	}
	r.slots = append(r.slots, make([]*remoteConn, n-len(r.slots))...)
}

// Conns returns the configured pool size.
func (r *Remote) Conns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots)
}

// LiveConns returns how many pooled connections are currently dialed.
func (r *Remote) LiveConns() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	live := 0
	for _, s := range r.slots {
		if s != nil {
			live++
		}
	}
	return live
}

// SetTimeout bounds every call on this node, including calls without a
// context (profile and bucket operations) and calls on fresh connections
// after a redial; zero means unbounded. On a lossy network an unbounded
// bucket fetch whose request frame vanished would wait forever — dynamic
// churn through faulty links needs this bound.
func (r *Remote) SetTimeout(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timeout = d
	for _, s := range r.slots {
		if s != nil {
			s.c.SetTimeout(d)
		}
	}
}

// Close tears down every pooled connection.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for i, s := range r.slots {
		if s == nil {
			continue
		}
		if err := s.c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		r.slots[i] = nil
	}
	return firstErr
}

// acquire picks the connection for one call and charges it: an idle live
// connection if there is one, otherwise a lazy dial into an empty slot,
// otherwise the least-loaded live connection. A failed dial falls back to
// a live connection rather than failing the call.
func (r *Remote) acquire() (*remoteConn, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var best *remoteConn
	empty := -1
	for i, s := range r.slots {
		if s == nil {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if best == nil || s.inflight.Load() < best.inflight.Load() {
			best = s
		}
	}
	if best != nil && (empty < 0 || best.inflight.Load() == 0) {
		best.inflight.Add(1)
		return best, nil
	}
	c, err := transport.DialWith(r.addr, r.dial)
	if err != nil {
		if best != nil {
			best.inflight.Add(1)
			return best, nil
		}
		return nil, err
	}
	if r.timeout > 0 {
		c.SetTimeout(r.timeout)
	}
	s := &remoteConn{c: c}
	s.inflight.Add(1)
	r.slots[empty] = s
	return s, nil
}

// drop discards s's connection if it still occupies its slot, leaving the
// slot empty for a lazy redial. Other pooled connections are untouched.
func (r *Remote) drop(s *remoteConn) {
	r.mu.Lock()
	for i, cur := range r.slots {
		if cur == s {
			r.slots[i] = nil
			break
		}
	}
	r.mu.Unlock()
	s.c.Close()
}

// do runs one call on a pooled connection, discarding that connection
// after a fatal connection-level failure so a retry lands on a healthy
// stream. Deadline expiries and cancellations are connection-level for
// retry classification but leave the pipelined connection usable, so the
// connection is kept.
func (r *Remote) do(fn func(c *transport.Client) error) error {
	s, err := r.acquire()
	if err != nil {
		return err
	}
	err = fn(s.c)
	s.inflight.Add(-1)
	if err != nil && transport.IsConnError(err) &&
		!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		r.drop(s)
	}
	return err
}

// Ping implements Node.
func (r *Remote) Ping(ctx context.Context) error {
	return r.do(func(c *transport.Client) error { return c.PingContext(ctx) })
}

// SecRec implements Node.
func (r *Remote) SecRec(ctx context.Context, t *core.Trapdoor) ([]uint64, [][]byte, error) {
	var ids []uint64
	var profiles [][]byte
	err := r.do(func(c *transport.Client) error {
		var err error
		ids, profiles, err = c.SecRecContext(ctx, t)
		return err
	})
	return ids, profiles, err
}

// SecRecBatch implements Node.
func (r *Remote) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	var ids [][]uint64
	var profiles [][][]byte
	err := r.do(func(c *transport.Client) error {
		var err error
		ids, profiles, err = c.SecRecBatchContext(ctx, ts)
		return err
	})
	return ids, profiles, err
}

// FetchProfiles implements Node.
func (r *Remote) FetchProfiles(ids []uint64) ([][]byte, error) {
	var profiles [][]byte
	err := r.do(func(c *transport.Client) error {
		var err error
		profiles, err = c.FetchProfiles(ids)
		return err
	})
	return profiles, err
}

// FetchProfilesSparse implements SparseProfileFetcher remotely.
func (r *Remote) FetchProfilesSparse(ids []uint64) ([][]byte, error) {
	var profiles [][]byte
	err := r.do(func(c *transport.Client) error {
		var err error
		profiles, err = c.FetchProfilesSparse(ids)
		return err
	})
	return profiles, err
}

// PutProfiles implements Node.
func (r *Remote) PutProfiles(profiles map[uint64][]byte) error {
	return r.do(func(c *transport.Client) error { return c.PutProfiles(profiles) })
}

// DeleteProfile implements Node.
func (r *Remote) DeleteProfile(id uint64) error {
	return r.do(func(c *transport.Client) error { return c.DeleteProfile(id) })
}

// InstallIndex implements Node.
func (r *Remote) InstallIndex(idx *core.Index) error {
	return r.do(func(c *transport.Client) error { return c.InstallIndex(idx) })
}

// InstallDynIndex implements Node.
func (r *Remote) InstallDynIndex(idx *core.DynIndex) error {
	return r.do(func(c *transport.Client) error { return c.InstallDynIndex(idx) })
}

// FetchBuckets implements core.BucketStore.
func (r *Remote) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	var buckets []core.DynBucket
	err := r.do(func(c *transport.Client) error {
		var err error
		buckets, err = c.FetchBuckets(refs)
		return err
	})
	return buckets, err
}

// StoreBuckets implements core.BucketStore.
func (r *Remote) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	return r.do(func(c *transport.Client) error { return c.StoreBuckets(refs, buckets) })
}

// Version implements ReplicaNode.
func (r *Remote) Version(ctx context.Context) (uint64, error) {
	var v uint64
	err := r.do(func(c *transport.Client) error {
		var err error
		v, err = c.VersionContext(ctx)
		return err
	})
	return v, err
}

// ApplyVersion implements ReplicaNode.
func (r *Remote) ApplyVersion(v uint64) error {
	return r.do(func(c *transport.Client) error { return c.ApplyVersion(v) })
}

// StoreBucketsVersioned implements ReplicaNode.
func (r *Remote) StoreBucketsVersioned(refs []core.BucketRef, buckets []core.DynBucket, v uint64) error {
	return r.do(func(c *transport.Client) error { return c.StoreBucketsVersioned(refs, buckets, v) })
}

// ProfileIDs implements ReplicaNode.
func (r *Remote) ProfileIDs() ([]uint64, error) {
	var ids []uint64
	err := r.do(func(c *transport.Client) error {
		var err error
		ids, err = c.ProfileIDs()
		return err
	})
	return ids, err
}

// Traffic returns the cumulative serialized traffic summed over the live
// pooled connections (a dropped connection's traffic is forgotten).
func (r *Remote) Traffic() (sent, received int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.slots {
		if s == nil {
			continue
		}
		tx, rx := s.c.Traffic()
		sent += tx
		received += rx
	}
	return sent, received
}
