package shard

import (
	"context"
	"errors"
	"sync"
	"time"

	"pisd/internal/core"
	"pisd/internal/transport"
)

// Remote is a Node backed by a transport server over TCP. It dials lazily
// and drops a client whose connection actually died so the next attempt —
// typically the pool's bounded retry — starts on a fresh connection. A
// call that merely timed out or was cancelled keeps the client: the
// multiplexed transport skips the late response by its request ID, so the
// connection (and every other call pipelined on it) stays healthy.
type Remote struct {
	addr string
	dial transport.Dialer

	mu      sync.Mutex
	c       *transport.Client
	timeout time.Duration
}

var _ Node = (*Remote)(nil)

// NewRemote returns a shard node for the transport server at addr. No
// connection is made until the first call.
func NewRemote(addr string) *Remote { return &Remote{addr: addr} }

// NewRemoteDialer is NewRemote with an injectable connection factory:
// every dial — the lazy first one and each post-fault redial — goes
// through dial. Fault-injection harnesses (faultnet.Network.Dialer) hook
// in here; nil behaves like NewRemote.
func NewRemoteDialer(addr string, dial transport.Dialer) *Remote {
	return &Remote{addr: addr, dial: dial}
}

// Addr returns the shard server's address.
func (r *Remote) Addr() string { return r.addr }

// SetTimeout bounds every call on this node, including calls without a
// context (profile and bucket operations) and calls on fresh connections
// after a redial; zero means unbounded. On a lossy network an unbounded
// bucket fetch whose request frame vanished would wait forever — dynamic
// churn through faulty links needs this bound.
func (r *Remote) SetTimeout(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.timeout = d
	if r.c != nil {
		r.c.SetTimeout(d)
	}
}

// Close tears down the current connection, if any.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}

// client returns the live connection, dialing if necessary.
func (r *Remote) client() (*transport.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		c, err := transport.DialWith(r.addr, r.dial)
		if err != nil {
			return nil, err
		}
		if r.timeout > 0 {
			c.SetTimeout(r.timeout)
		}
		r.c = c
	}
	return r.c, nil
}

// drop discards c if it is still the current connection.
func (r *Remote) drop(c *transport.Client) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
	}
	r.mu.Unlock()
	c.Close()
}

// do runs one call, discarding the connection after a fatal
// connection-level failure so the next call redials. Deadline expiries and
// cancellations are connection-level for retry classification but leave
// the pipelined connection usable, so the client is kept.
func (r *Remote) do(fn func(c *transport.Client) error) error {
	c, err := r.client()
	if err != nil {
		return err
	}
	if err := fn(c); err != nil {
		if transport.IsConnError(err) &&
			!errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			r.drop(c)
		}
		return err
	}
	return nil
}

// Ping implements Node.
func (r *Remote) Ping(ctx context.Context) error {
	return r.do(func(c *transport.Client) error { return c.PingContext(ctx) })
}

// SecRec implements Node.
func (r *Remote) SecRec(ctx context.Context, t *core.Trapdoor) ([]uint64, [][]byte, error) {
	var ids []uint64
	var profiles [][]byte
	err := r.do(func(c *transport.Client) error {
		var err error
		ids, profiles, err = c.SecRecContext(ctx, t)
		return err
	})
	return ids, profiles, err
}

// SecRecBatch implements Node.
func (r *Remote) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, error) {
	var ids [][]uint64
	var profiles [][][]byte
	err := r.do(func(c *transport.Client) error {
		var err error
		ids, profiles, err = c.SecRecBatchContext(ctx, ts)
		return err
	})
	return ids, profiles, err
}

// FetchProfiles implements Node.
func (r *Remote) FetchProfiles(ids []uint64) ([][]byte, error) {
	var profiles [][]byte
	err := r.do(func(c *transport.Client) error {
		var err error
		profiles, err = c.FetchProfiles(ids)
		return err
	})
	return profiles, err
}

// PutProfiles implements Node.
func (r *Remote) PutProfiles(profiles map[uint64][]byte) error {
	return r.do(func(c *transport.Client) error { return c.PutProfiles(profiles) })
}

// DeleteProfile implements Node.
func (r *Remote) DeleteProfile(id uint64) error {
	return r.do(func(c *transport.Client) error { return c.DeleteProfile(id) })
}

// InstallIndex implements Node.
func (r *Remote) InstallIndex(idx *core.Index) error {
	return r.do(func(c *transport.Client) error { return c.InstallIndex(idx) })
}

// InstallDynIndex implements Node.
func (r *Remote) InstallDynIndex(idx *core.DynIndex) error {
	return r.do(func(c *transport.Client) error { return c.InstallDynIndex(idx) })
}

// FetchBuckets implements core.BucketStore.
func (r *Remote) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	var buckets []core.DynBucket
	err := r.do(func(c *transport.Client) error {
		var err error
		buckets, err = c.FetchBuckets(refs)
		return err
	})
	return buckets, err
}

// StoreBuckets implements core.BucketStore.
func (r *Remote) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	return r.do(func(c *transport.Client) error { return c.StoreBuckets(refs, buckets) })
}

// Traffic returns the cumulative serialized traffic of the current
// connection (zero after a redial).
func (r *Remote) Traffic() (sent, received int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.c == nil {
		return 0, 0
	}
	return r.c.Traffic()
}
