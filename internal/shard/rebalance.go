package shard

import (
	"context"
	"fmt"
)

// AddReplica registers a new, empty member with the group and returns its
// replica index. The joiner starts lagging — excluded from reads — but
// not down, so it immediately receives every new write: the migration
// (Rebalancer.Migrate) only has to copy state that existed before the
// join, and the joiner's lag never grows while it copies.
func (g *ReplicaGroup) AddReplica(n ReplicaNode) (int, error) {
	if n == nil {
		return 0, fmt.Errorf("shard: group %d: nil replica", g.id)
	}
	g.mu.Lock()
	g.reps = append(g.reps, &replicaState{node: n, lagging: true})
	i := len(g.reps) - 1
	g.met.grow(len(g.reps))
	g.mu.Unlock()
	g.syncLagMetric()
	return i, nil
}

// Rebalancer migrates a partition's state onto a newly joined replica
// online, in bounded chunks, so foreground writes only ever stall for one
// chunk instead of a full-store copy. The three closures come from the
// frontend (which holds the keys): Prepare installs a freshly sealed
// empty shell on the joiner, CopyRange re-syncs bucket positions
// [lo, hi) of every table via the dynamic scheme's fetch/re-mask/store
// sweep, and Finish mirrors the non-bucket state (the encrypted profile
// store). See frontend.NewReplicaMigration.
//
// Correctness under concurrent churn needs no retry loop: the joiner
// receives every write issued after AddReplica directly, each chunk copy
// runs under the group write lock, and a chunk's source already contains
// any earlier write — so whichever order a write and its chunk land in,
// the joiner converges on the source's logical state.
type Rebalancer struct {
	// Prepare installs an empty sealed shell on dst; nil skips (dst
	// already has a shell installed).
	Prepare func(group int, src, dst ReplicaNode) error
	// CopyRange re-syncs bucket positions [lo, hi) from src to dst.
	CopyRange func(group int, src, dst ReplicaNode, lo, hi uint64) error
	// Finish mirrors the non-bucket state from src to dst; nil skips.
	Finish func(group int, src, dst ReplicaNode) error
	// Width is the bucket positions per table; Chunk how many positions
	// each step migrates (0 = all in one step).
	Width uint64
	Chunk uint64
}

// Migrate copies the group's state onto the joiner (a replica index from
// AddReplica) and admits it to read service. It is driven to completion
// synchronously; on error the joiner stays lagging and a later Migrate —
// or the anti-entropy repairer — can finish the job.
func (rb *Rebalancer) Migrate(ctx context.Context, g *ReplicaGroup, joiner int) error {
	g.mu.Lock()
	if joiner < 0 || joiner >= len(g.reps) {
		g.mu.Unlock()
		return fmt.Errorf("shard: group %d: replica %d out of range [0,%d)", g.id, joiner, len(g.reps))
	}
	rep := g.reps[joiner]
	dst := rep.node
	srcIdx := -1
	for i, r := range g.reps {
		if i != joiner && !r.down && r.current(g.version) {
			srcIdx = i
			break
		}
	}
	if srcIdx < 0 {
		g.mu.Unlock()
		return fmt.Errorf("shard: group %d: no current replica to migrate from", g.id)
	}
	src := g.reps[srcIdx].node
	g.mu.Unlock()

	if rb.Prepare != nil {
		g.wmu.Lock()
		err := rb.Prepare(g.id, src, dst)
		g.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("shard: group %d: prepare joiner: %w", g.id, err)
		}
	}

	// Snapshot the joiner's write-failure count before the first chunk: a
	// write that fails on the joiner before any copy is re-covered by the
	// copy itself, but one that fails after its range was copied would be
	// silently lost — the admit step below refuses if the count moved.
	g.mu.Lock()
	wf0 := rep.writeFails
	g.mu.Unlock()

	chunk := rb.Chunk
	if chunk == 0 || chunk > rb.Width {
		chunk = rb.Width
	}
	for lo := uint64(0); lo < rb.Width; lo += chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + chunk
		if hi > rb.Width {
			hi = rb.Width
		}
		g.wmu.Lock()
		err := rb.CopyRange(g.id, src, dst, lo, hi)
		g.wmu.Unlock()
		if err != nil {
			return fmt.Errorf("shard: group %d: migrate [%d,%d): %w", g.id, lo, hi, err)
		}
	}

	// Final step under one write-lock hold: mirror the profile store,
	// stamp the joiner's server version, and admit it to reads.
	g.wmu.Lock()
	defer g.wmu.Unlock()
	defer g.syncLagMetric()
	if rb.Finish != nil {
		if err := rb.Finish(g.id, src, dst); err != nil {
			return fmt.Errorf("shard: group %d: finish joiner: %w", g.id, err)
		}
	}
	g.mu.Lock()
	v := g.version
	wf := rep.writeFails
	g.mu.Unlock()
	if wf != wf0 {
		return fmt.Errorf("shard: group %d: %d writes failed on joiner during migration; retry", g.id, wf-wf0)
	}
	if err := dst.ApplyVersion(v); err != nil {
		return fmt.Errorf("shard: group %d: stamp joiner version: %w", g.id, err)
	}
	g.mu.Lock()
	rep.applied = v
	rep.lagging = false
	rep.down = false
	rep.probeFails = 0
	rep.probeOKs = 0
	rep.readFaults = 0
	g.mu.Unlock()
	g.met.repair()
	return nil
}
