package shard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/obs"
	"pisd/internal/transport"
)

// flakyNode fails its first SecRec with a retryable connection error and
// every later one with a non-retryable application error: the exact
// sequence in which attempt() swallows the intermediate ConnError.
type flakyNode struct {
	Node
	mu    sync.Mutex
	calls int
}

func (n *flakyNode) SecRec(context.Context, *core.Trapdoor) ([]uint64, [][]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.calls++
	if n.calls == 1 {
		return nil, nil, &transport.ConnError{Op: "receive", Err: errors.New("connection reset")}
	}
	return nil, nil, &transport.RemoteError{Msg: "no index installed"}
}

// TestAttemptAccountsSwallowedConnError pins the retry-loop error
// semantics documented on attempt(): when a retryable connection fault is
// followed by an application error on the retry, only the FINAL
// application error is surfaced (to the caller and to OnShardError) — the
// intermediate ConnError is swallowed from the error path, and the only
// place it remains visible is the per-shard attempts/retries counters.
func TestAttemptAccountsSwallowedConnError(t *testing.T) {
	flaky := &flakyNode{Node: NewLocal(cloud.New())}
	cfg := DefaultConfig()
	cfg.Retries = 2
	var reported []error
	var mu sync.Mutex
	cfg.OnShardError = func(s int, err error) {
		mu.Lock()
		reported = append(reported, err)
		mu.Unlock()
	}
	pool, err := NewPool(cfg, flaky)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pool.SetRegistry(reg)

	_, _, _, err = pool.SecRec(context.Background(), nil)
	if err == nil {
		t.Fatal("expected the single-shard fan-out to fail")
	}
	// The surfaced error is the application error; the preceding ConnError
	// has been swallowed from the error chain entirely.
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("surfaced error is %v, want the final RemoteError", err)
	}
	if transport.IsConnError(err) {
		t.Fatalf("surfaced error still carries the intermediate ConnError: %v", err)
	}

	// The node was called twice (initial try + one retry); the app error
	// stopped the remaining retry budget.
	flaky.mu.Lock()
	calls := flaky.calls
	flaky.mu.Unlock()
	if calls != 2 {
		t.Fatalf("node called %d times, want 2 (conn fault, then app error)", calls)
	}

	// OnShardError observed exactly one (final) error.
	mu.Lock()
	defer mu.Unlock()
	if len(reported) != 1 {
		t.Fatalf("OnShardError called %d times, want 1", len(reported))
	}
	if !errors.As(reported[0], &remote) {
		t.Fatalf("OnShardError got %v, want the final RemoteError", reported[0])
	}

	// The swallowed fault stays visible in the counters: two attempts, of
	// which one was a retry, and one terminal failure.
	c := reg.Snapshot().Counters
	if got := c["shard.0.attempts"]; got != 2 {
		t.Errorf("shard.0.attempts = %d, want 2", got)
	}
	if got := c["shard.0.retries"]; got != 1 {
		t.Errorf("shard.0.retries = %d, want 1 (the swallowed ConnError's trace)", got)
	}
	if got := c["shard.0.failures"]; got != 1 {
		t.Errorf("shard.0.failures = %d, want 1", got)
	}
	if got := c["shard.0.timeouts"]; got != 0 {
		t.Errorf("shard.0.timeouts = %d, want 0", got)
	}
}

// stallNode blocks every SecRec until the per-attempt context expires.
type stallNode struct {
	Node
}

func (n stallNode) SecRec(ctx context.Context, _ *core.Trapdoor) ([]uint64, [][]byte, error) {
	<-ctx.Done()
	return nil, nil, &transport.ConnError{Op: "call", Err: ctx.Err()}
}

// TestAttemptTimeoutCounted checks the timeout leg of the same accounting:
// per-attempt deadline expiries are retryable, so a stalled shard burns
// the whole retry budget and every expiry lands in shard.<i>.timeouts.
func TestAttemptTimeoutCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timeout = 20 * time.Millisecond
	cfg.Retries = 1
	pool, err := NewPool(cfg, stallNode{Node: NewLocal(cloud.New())})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pool.SetRegistry(reg)

	_, _, _, err = pool.SecRec(context.Background(), nil)
	if err == nil {
		t.Fatal("expected the stalled fan-out to fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline expiry", err)
	}
	c := reg.Snapshot().Counters
	if got := c["shard.0.attempts"]; got != 2 {
		t.Errorf("shard.0.attempts = %d, want 2", got)
	}
	if got := c["shard.0.timeouts"]; got != 2 {
		t.Errorf("shard.0.timeouts = %d, want 2 (every attempt expired)", got)
	}
	if got := c["shard.0.failures"]; got != 1 {
		t.Errorf("shard.0.failures = %d, want 1", got)
	}
}
