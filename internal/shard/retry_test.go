package shard

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/obs"
	"pisd/internal/transport"
)

// flakyNode fails its first SecRec with a retryable connection error and
// every later one with a non-retryable application error: the exact
// sequence in which attempt() swallows the intermediate ConnError.
type flakyNode struct {
	Node
	mu    sync.Mutex
	calls int
}

func (n *flakyNode) SecRec(context.Context, *core.Trapdoor) ([]uint64, [][]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.calls++
	if n.calls == 1 {
		return nil, nil, &transport.ConnError{Op: "receive", Err: errors.New("connection reset")}
	}
	return nil, nil, &transport.RemoteError{Msg: "no index installed"}
}

// TestAttemptAccountsSwallowedConnError pins the retry-loop error
// semantics documented on attempt(): when a retryable connection fault is
// followed by an application error on the retry, only the FINAL
// application error is surfaced (to the caller and to OnShardError) — the
// intermediate ConnError is swallowed from the error path, and the only
// place it remains visible is the per-shard attempts/retries counters.
func TestAttemptAccountsSwallowedConnError(t *testing.T) {
	flaky := &flakyNode{Node: NewLocal(cloud.New())}
	cfg := DefaultConfig()
	cfg.Retries = 2
	var reported []error
	var mu sync.Mutex
	cfg.OnShardError = func(s int, err error) {
		mu.Lock()
		reported = append(reported, err)
		mu.Unlock()
	}
	pool, err := NewPool(cfg, flaky)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pool.SetRegistry(reg)

	_, _, _, err = pool.SecRec(context.Background(), nil)
	if err == nil {
		t.Fatal("expected the single-shard fan-out to fail")
	}
	// The surfaced error is the application error; the preceding ConnError
	// has been swallowed from the error chain entirely.
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("surfaced error is %v, want the final RemoteError", err)
	}
	if transport.IsConnError(err) {
		t.Fatalf("surfaced error still carries the intermediate ConnError: %v", err)
	}

	// The node was called twice (initial try + one retry); the app error
	// stopped the remaining retry budget.
	flaky.mu.Lock()
	calls := flaky.calls
	flaky.mu.Unlock()
	if calls != 2 {
		t.Fatalf("node called %d times, want 2 (conn fault, then app error)", calls)
	}

	// OnShardError observed exactly one (final) error.
	mu.Lock()
	defer mu.Unlock()
	if len(reported) != 1 {
		t.Fatalf("OnShardError called %d times, want 1", len(reported))
	}
	if !errors.As(reported[0], &remote) {
		t.Fatalf("OnShardError got %v, want the final RemoteError", reported[0])
	}

	// The swallowed fault stays visible in the counters: two attempts, of
	// which one was a retry, and one terminal failure.
	c := reg.Snapshot().Counters
	if got := c["shard.0.attempts"]; got != 2 {
		t.Errorf("shard.0.attempts = %d, want 2", got)
	}
	if got := c["shard.0.retries"]; got != 1 {
		t.Errorf("shard.0.retries = %d, want 1 (the swallowed ConnError's trace)", got)
	}
	if got := c["shard.0.failures"]; got != 1 {
		t.Errorf("shard.0.failures = %d, want 1", got)
	}
	if got := c["shard.0.timeouts"]; got != 0 {
		t.Errorf("shard.0.timeouts = %d, want 0", got)
	}
}

// stallNode blocks every SecRec until the per-attempt context expires.
type stallNode struct {
	Node
}

func (n stallNode) SecRec(ctx context.Context, _ *core.Trapdoor) ([]uint64, [][]byte, error) {
	<-ctx.Done()
	return nil, nil, &transport.ConnError{Op: "call", Err: ctx.Err()}
}

// TestAttemptTimeoutCounted checks the timeout leg of the same accounting:
// per-attempt deadline expiries are retryable, so a stalled shard burns
// the whole retry budget and every expiry lands in shard.<i>.timeouts.
func TestAttemptTimeoutCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Timeout = 20 * time.Millisecond
	cfg.Retries = 1
	pool, err := NewPool(cfg, stallNode{Node: NewLocal(cloud.New())})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pool.SetRegistry(reg)

	_, _, _, err = pool.SecRec(context.Background(), nil)
	if err == nil {
		t.Fatal("expected the stalled fan-out to fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline expiry", err)
	}
	c := reg.Snapshot().Counters
	if got := c["shard.0.attempts"]; got != 2 {
		t.Errorf("shard.0.attempts = %d, want 2", got)
	}
	if got := c["shard.0.timeouts"]; got != 2 {
		t.Errorf("shard.0.timeouts = %d, want 2 (every attempt expired)", got)
	}
	if got := c["shard.0.failures"]; got != 1 {
		t.Errorf("shard.0.failures = %d, want 1", got)
	}
}

// connErrNode fails every read with the given retryable connection fault,
// without any backing server being involved.
type connErrNode struct {
	ReplicaNode
	err error
}

func (n connErrNode) SecRec(context.Context, *core.Trapdoor) ([]uint64, [][]byte, error) {
	return nil, nil, n.err
}

// okNode answers every read successfully with an empty result.
type okNode struct{ ReplicaNode }

func (okNode) SecRec(context.Context, *core.Trapdoor) ([]uint64, [][]byte, error) {
	return nil, nil, nil
}

// TestGroupAttemptAccountsSwallowedConnError is the replica-group analogue
// of TestAttemptAccountsSwallowedConnError: a failover that succeeds on a
// sibling swallows the first replica's connection fault from the error
// path entirely — the caller sees a clean success — so the accounting gap
// would be invisible without per-replica counters. The attempt must be
// charged to the replica actually tried, BEFORE the call, and the
// swallowed fault must surface as replica.<g>.<r>.attempts plus one
// fleet-wide failover.
func TestGroupAttemptAccountsSwallowedConnError(t *testing.T) {
	dead := connErrNode{
		ReplicaNode: NewLocal(cloud.New()),
		err:         &transport.ConnError{Op: "receive", Err: errors.New("connection reset")},
	}
	ok := okNode{ReplicaNode: NewLocal(cloud.New())}
	g, err := NewReplicaGroup(0, GroupConfig{}, dead, ok)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g.SetRegistry(reg)

	// Replica 0 is the first candidate (equal scores, stable order), so the
	// read provably walks dead → ok.
	if _, _, err := g.SecRec(context.Background(), nil); err != nil {
		t.Fatalf("failover read surfaced the swallowed fault: %v", err)
	}

	c := reg.Snapshot().Counters
	if got := c["replica.0.0.attempts"]; got != 1 {
		t.Errorf("replica.0.0.attempts = %d, want 1 (the faulted replica was tried)", got)
	}
	if got := c["replica.0.1.attempts"]; got != 1 {
		t.Errorf("replica.0.1.attempts = %d, want 1", got)
	}
	if got := c["replica.failovers"]; got != 1 {
		t.Errorf("replica.failovers = %d, want 1", got)
	}
	if got := c["replica.0.0.timeouts"]; got != 0 {
		t.Errorf("replica.0.0.timeouts = %d, want 0", got)
	}

	// A second read prefers the sibling (the faulted replica now carries a
	// read-fault score) and must not charge the dead replica again.
	if _, _, err := g.SecRec(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	c = reg.Snapshot().Counters
	if got := c["replica.0.0.attempts"]; got != 1 {
		t.Errorf("after recovery read: replica.0.0.attempts = %d, want still 1", got)
	}
	if got := c["replica.0.1.attempts"]; got != 2 {
		t.Errorf("after recovery read: replica.0.1.attempts = %d, want 2", got)
	}
	if got := c["replica.failovers"]; got != 1 {
		t.Errorf("after recovery read: replica.failovers = %d, want still 1", got)
	}
}

// TestGroupAttemptTimeoutCounted pins the timeout leg of group accounting:
// a per-attempt deadline expiry on the tried replica lands in that
// replica's timeouts counter even though the failover swallows the error.
func TestGroupAttemptTimeoutCounted(t *testing.T) {
	stalled := connErrNode{
		ReplicaNode: NewLocal(cloud.New()),
		err:         &transport.ConnError{Op: "call", Err: context.DeadlineExceeded},
	}
	ok := okNode{ReplicaNode: NewLocal(cloud.New())}
	g, err := NewReplicaGroup(3, GroupConfig{}, stalled, ok)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g.SetRegistry(reg)

	if _, _, err := g.SecRec(context.Background(), nil); err != nil {
		t.Fatalf("failover read failed: %v", err)
	}
	c := reg.Snapshot().Counters
	if got := c["replica.3.0.attempts"]; got != 1 {
		t.Errorf("replica.3.0.attempts = %d, want 1", got)
	}
	if got := c["replica.3.0.timeouts"]; got != 1 {
		t.Errorf("replica.3.0.timeouts = %d, want 1 (the expiry the failover swallowed)", got)
	}
	if got := c["replica.3.1.timeouts"]; got != 0 {
		t.Errorf("replica.3.1.timeouts = %d, want 0", got)
	}
	if got := c["replica.failovers"]; got != 1 {
		t.Errorf("replica.failovers = %d, want 1", got)
	}
}

// TestGroupAllReplicasFailAccounting checks the exhausted case: every
// current replica is tried exactly once, the failover counter only counts
// moves that had somewhere to go (N-1 for N candidates), and the surfaced
// error wraps the last connection fault so callers can classify it.
func TestGroupAllReplicasFailAccounting(t *testing.T) {
	mk := func() connErrNode {
		return connErrNode{
			ReplicaNode: NewLocal(cloud.New()),
			err:         &transport.ConnError{Op: "receive", Err: errors.New("connection reset")},
		}
	}
	g, err := NewReplicaGroup(1, GroupConfig{}, mk(), mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g.SetRegistry(reg)

	_, _, err = g.SecRec(context.Background(), nil)
	if err == nil {
		t.Fatal("expected the all-dead group to fail")
	}
	if !transport.IsConnError(err) {
		t.Fatalf("surfaced error %v does not classify as a connection fault", err)
	}
	c := reg.Snapshot().Counters
	for r := 0; r < 3; r++ {
		name := "replica.1." + strconv.Itoa(r) + ".attempts"
		if got := c[name]; got != 1 {
			t.Errorf("%s = %d, want 1", name, got)
		}
	}
	if got := c["replica.failovers"]; got != 2 {
		t.Errorf("replica.failovers = %d, want 2 (the third failure had no sibling left)", got)
	}
}
