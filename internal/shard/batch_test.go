package shard

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// TestSecRecBatchEqualsSerialFanout checks the batched fan-out against the
// per-query fan-out: with every shard alive, result q of one SecRecBatch
// must equal SecRec(ts[q]) exactly.
func TestSecRecBatchEqualsSerialFanout(t *testing.T) {
	const n, shards = 300, 4

	f := testFrontend(t, "shard-batch")
	uploads, ds := testUploads(t, f, n)
	pool := localPool(t, f, uploads, shards)

	queries, _ := ds.Queries(12, 31)
	tds, err := f.Trapdoors(queries)
	if err != nil {
		t.Fatal(err)
	}
	ids, profiles, partial, err := pool.SecRecBatch(context.Background(), tds)
	if err != nil {
		t.Fatalf("SecRecBatch: %v", err)
	}
	if partial {
		t.Fatal("unexpected partial result with all shards alive")
	}
	if len(ids) != len(tds) || len(profiles) != len(tds) {
		t.Fatalf("batch of %d answered with %d/%d results", len(tds), len(ids), len(profiles))
	}
	for q, td := range tds {
		wantIDs, wantProfiles, partial, err := pool.SecRec(context.Background(), td)
		if err != nil {
			t.Fatal(err)
		}
		if partial {
			t.Fatal("unexpected partial serial result")
		}
		if !reflect.DeepEqual(ids[q], wantIDs) {
			t.Fatalf("query %d ids: %v, want %v", q, ids[q], wantIDs)
		}
		if !reflect.DeepEqual(profiles[q], wantProfiles) {
			t.Fatalf("query %d profiles differ from serial fan-out", q)
		}
	}

	// Empty batch short-circuits.
	ids, profiles, partial, err = pool.SecRecBatch(context.Background(), nil)
	if err != nil || partial || ids != nil || profiles != nil {
		t.Fatalf("empty batch = %v %v %v %v", ids, profiles, partial, err)
	}
}

// TestBatchPartialOnDeadShard kills one remote shard and checks the
// batched discovery path end to end: every query of the batch must return
// exactly the serial sharded result over the surviving shards, flagged
// partial once for the whole batch.
func TestBatchPartialOnDeadShard(t *testing.T) {
	const n, shards, dead = 240, 4, 1

	f := testFrontend(t, "shard-batch-partial")
	uploads, ds := testUploads(t, f, n)
	cfg := DefaultConfig()
	cfg.Timeout = 2 * time.Second
	pool, servers := remotePool(t, f, uploads, shards, cfg)
	shutdownServer(t, servers[dead])

	queries, _ := ds.Queries(6, 17)
	got, partial, err := f.DiscoverShardedBatch(context.Background(), pool, queries, n+1, nil)
	if err != nil {
		t.Fatalf("DiscoverShardedBatch: %v", err)
	}
	if !partial {
		t.Fatal("expected partial result with a dead shard")
	}
	if len(got) != len(queries) {
		t.Fatalf("%d results for %d queries", len(got), len(queries))
	}
	for qi, q := range queries {
		want, wantPartial, err := f.DiscoverSharded(context.Background(), pool, q, n+1, 0)
		if err != nil {
			t.Fatalf("query %d: DiscoverSharded: %v", qi, err)
		}
		if !wantPartial {
			t.Fatalf("query %d: serial reference not partial", qi)
		}
		if len(got[qi]) != len(want) {
			t.Fatalf("query %d: got %d matches, want %d", qi, len(got[qi]), len(want))
		}
		for i := range want {
			if got[qi][i].ID != want[i].ID || got[qi][i].Distance != want[i].Distance {
				t.Fatalf("query %d rank %d: got (%d, %v), want (%d, %v)",
					qi, i, got[qi][i].ID, got[qi][i].Distance, want[i].ID, want[i].Distance)
			}
		}
		for _, m := range got[qi] {
			if pool.Owner(m.ID) == dead {
				t.Fatalf("query %d: id %d owned by dead shard", qi, m.ID)
			}
		}
	}
}

// TestBatchAllShardsDeadErrors mirrors the serial contract: a batch over a
// fully dead pool fails rather than returning empty partial results.
func TestBatchAllShardsDeadErrors(t *testing.T) {
	const n, shards = 120, 2

	f := testFrontend(t, "shard-batch-all-dead")
	uploads, ds := testUploads(t, f, n)
	cfg := DefaultConfig()
	cfg.Timeout = 2 * time.Second
	pool, servers := remotePool(t, f, uploads, shards, cfg)
	for _, srv := range servers {
		shutdownServer(t, srv)
	}
	queries, _ := ds.Queries(2, 3)
	if _, _, err := f.DiscoverShardedBatch(context.Background(), pool, queries, 10, nil); err == nil {
		t.Fatal("expected error with every shard dead")
	}
}
