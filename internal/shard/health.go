package shard

import (
	"context"
	"sync"
	"time"
)

// ProberConfig tunes the membership health prober.
type ProberConfig struct {
	// Interval between probe rounds for the background loop (Start);
	// default 1s. ProbeOnce ignores it.
	Interval time.Duration
	// Timeout bounds each ping and version probe; default 250ms.
	Timeout time.Duration
	// DemoteAfter is how many consecutive failed probes demote a replica
	// to down; default 2, so one lost probe never flaps a healthy member.
	DemoteAfter int
	// ReadmitAfter is how many consecutive successful probes a down
	// replica needs before re-admission; default 1.
	ReadmitAfter int
}

func (c ProberConfig) withDefaults() ProberConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.DemoteAfter <= 0 {
		c.DemoteAfter = 2
	}
	if c.ReadmitAfter <= 0 {
		c.ReadmitAfter = 1
	}
	return c
}

// Prober is the fleet's membership/health driver: it pings every replica
// of every group periodically, demotes a replica after DemoteAfter
// consecutive failures (writes then skip it, reads avoid it), and
// re-admits it once probes succeed again. On re-admission the replica's
// server-side write version is compared against the group's: a replica
// that provably applied every write (bookkeeping current AND the server
// reports the group version — a freshly restarted, empty server reports
// 0) returns straight to serving reads; anything else re-admits as
// lagging, taking writes but no reads until the Repairer re-syncs it.
//
// ProbeOnce is exported so deterministic tests and operator tooling can
// drive probe rounds explicitly; Start runs the same round on a ticker.
type Prober struct {
	cfg    ProberConfig
	groups []*ReplicaGroup

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewProber assembles a prober over the given groups.
func NewProber(cfg ProberConfig, groups ...*ReplicaGroup) *Prober {
	return &Prober{cfg: cfg.withDefaults(), groups: groups}
}

// ProbeOnce runs one probe round across every replica of every group,
// concurrently, and returns when all probes resolved.
func (p *Prober) ProbeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, g := range p.groups {
		g.mu.Lock()
		n := len(g.reps)
		g.mu.Unlock()
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(g *ReplicaGroup, i int) {
				defer wg.Done()
				p.probeReplica(ctx, g, i)
			}(g, i)
		}
	}
	wg.Wait()
	for _, g := range p.groups {
		g.syncLagMetric()
	}
}

// probeReplica pings one replica and applies demotion or re-admission.
func (p *Prober) probeReplica(ctx context.Context, g *ReplicaGroup, i int) {
	g.mu.Lock()
	rep := g.reps[i]
	node := rep.node
	g.mu.Unlock()

	cctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	err := node.Ping(cctx)
	cancel()

	if err != nil {
		demoted := false
		g.mu.Lock()
		rep.probeOKs = 0
		rep.probeFails++
		if !rep.down && rep.probeFails >= p.cfg.DemoteAfter {
			rep.down = true
			demoted = true
		}
		g.mu.Unlock()
		if demoted {
			g.met.demotion()
		}
		return
	}

	g.mu.Lock()
	rep.probeFails = 0
	if !rep.down {
		g.mu.Unlock()
		return
	}
	rep.probeOKs++
	if rep.probeOKs < p.cfg.ReadmitAfter {
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()

	// The replica answers probes again; check its server-side version
	// before letting it serve reads. The network call happens outside the
	// group lock, so the comparison re-reads group state afterwards.
	cctx, cancel = context.WithTimeout(ctx, p.cfg.Timeout)
	v, verr := node.Version(cctx)
	cancel()
	if verr != nil {
		return // still flaky; next round retries
	}
	g.mu.Lock()
	rep.down = false
	rep.probeOKs = 0
	if !(rep.current(g.version) && v == g.version) {
		// Restarted with lost state (server version behind) or missed
		// writes while down: take writes, no reads, until repaired.
		rep.lagging = true
	}
	g.mu.Unlock()
	g.met.readmit()
}

// Start launches the background probe loop; Stop ends it. Start after
// Stop restarts it.
func (p *Prober) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(p.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.ProbeOnce(context.Background())
			}
		}
	}(p.stop, p.done)
}

// Stop ends the background probe loop and waits for it to exit.
func (p *Prober) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// RepairFunc re-syncs replica dst of the given partition from the healthy
// replica src: after it returns nil, dst holds the same logical state as
// src. The frontend supplies the implementation (it holds the keys the
// dynamic scheme's re-masking machinery needs); see
// frontend.NewReplicaRepair.
type RepairFunc func(group int, src, dst ReplicaNode) error

// Repairer is the fleet's anti-entropy loop: each round it finds, per
// group, a healthy source replica that applied every write and re-syncs
// every reachable lagging replica from it, returning the repaired
// replicas to read service. A whole repair runs under the group's write
// lock, so no write interleaves a half-copied state; the copy itself is
// the dynamic scheme's ordinary fetch/re-mask/store sweep, so the cloud
// observes repair as it observes churn (DESIGN.md §17).
//
// If no replica is current — every replica missed some write, which only
// happens when a write failed everywhere and was reported failed to the
// caller — the repairer adopts the reachable replica with the longest
// applied prefix as the new source of truth and repairs the rest from it.
//
// RepairOnce is exported for deterministic tests and operator tooling;
// Start runs rounds on a ticker.
type Repairer struct {
	cfg    RepairerConfig
	repair RepairFunc
	groups []*ReplicaGroup

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// RepairerConfig tunes the anti-entropy loop.
type RepairerConfig struct {
	// Interval between background rounds (Start); default 2s.
	Interval time.Duration
}

func (c RepairerConfig) withDefaults() RepairerConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	return c
}

// NewRepairer assembles a repairer over the given groups.
func NewRepairer(cfg RepairerConfig, repair RepairFunc, groups ...*ReplicaGroup) *Repairer {
	return &Repairer{cfg: cfg.withDefaults(), repair: repair, groups: groups}
}

// RepairOnce runs one anti-entropy round over every group and returns how
// many replicas were successfully repaired.
func (r *Repairer) RepairOnce(ctx context.Context) int {
	repaired := 0
	for _, g := range r.groups {
		repaired += r.repairGroup(ctx, g)
	}
	return repaired
}

// repairGroup runs one round for one group under its write lock.
func (r *Repairer) repairGroup(ctx context.Context, g *ReplicaGroup) int {
	g.wmu.Lock()
	defer g.wmu.Unlock()
	defer g.syncLagMetric()

	g.mu.Lock()
	v := g.version
	srcIdx := -1
	for i, rep := range g.reps {
		if !rep.down && rep.current(v) {
			srcIdx = i
			break
		}
	}
	if srcIdx < 0 {
		// No current replica: adopt the longest applied prefix among the
		// reachable replicas as the new source of truth. The writes past
		// that prefix failed on every replica and were reported failed.
		best := -1
		for i, rep := range g.reps {
			if rep.down {
				continue
			}
			if best < 0 || rep.applied > g.reps[best].applied {
				best = i
			}
		}
		if best < 0 {
			g.mu.Unlock()
			return 0
		}
		rep := g.reps[best]
		node := rep.node
		g.mu.Unlock()
		// Stamp the adopted replica's server with the group version so a
		// later restart/readmission comparison stays consistent.
		if err := node.ApplyVersion(v); err != nil {
			return 0
		}
		g.mu.Lock()
		rep.applied = v
		rep.lagging = false
		srcIdx = best
	}
	srcNode := g.reps[srcIdx].node

	type fix struct {
		i int
		n ReplicaNode
	}
	var fixes []fix
	for i, rep := range g.reps {
		if i == srcIdx || rep.down || rep.current(v) {
			continue
		}
		fixes = append(fixes, fix{i: i, n: rep.node})
	}
	g.mu.Unlock()

	repaired := 0
	for _, f := range fixes {
		if ctx.Err() != nil || r.repair == nil {
			break
		}
		if err := r.repair(g.id, srcNode, f.n); err != nil {
			continue // unreachable or mid-repair fault; next round retries
		}
		if err := f.n.ApplyVersion(v); err != nil {
			continue
		}
		g.mu.Lock()
		rep := g.reps[f.i]
		rep.applied = v
		rep.lagging = false
		rep.readFaults = 0
		g.mu.Unlock()
		g.met.repair()
		repaired++
	}
	return repaired
}

// Start launches the background anti-entropy loop; Stop ends it.
func (r *Repairer) Start() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stop != nil {
		return
	}
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(r.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				r.RepairOnce(context.Background())
			}
		}
	}(r.stop, r.done)
}

// Stop ends the background loop and waits for it to exit.
func (r *Repairer) Stop() {
	r.mu.Lock()
	stop, done := r.stop, r.done
	r.stop, r.done = nil, nil
	r.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
