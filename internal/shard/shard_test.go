package shard

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/dataset"
	"pisd/internal/faultnet"
	"pisd/internal/frontend"
	"pisd/internal/lsh"
	"pisd/internal/transport"
)

func testFrontend(t testing.TB, keySeed string) *frontend.Frontend {
	t.Helper()
	cfg := frontend.Config{
		LSH:        lsh.Params{Dim: 100, Tables: 6, Atoms: 2, Width: 0.8, Seed: 1},
		LoadFactor: 0.8,
		ProbeRange: 5,
		MaxLoop:    300,
		MaxRehash:  3,
		Seed:       1,
		KeySeed:    keySeed,
	}
	f, err := frontend.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func testUploads(t testing.TB, f *frontend.Frontend, n int) ([]frontend.Upload, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.Generate(dataset.Config{
		Users: n, Dim: 100, Topics: 10, TopicsPerUser: 2,
		ActiveWords: 20, Noise: 0.02, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ups := make([]frontend.Upload, n)
	for i, p := range ds.Profiles {
		ups[i] = frontend.Upload{ID: uint64(i + 1), Profile: p, Meta: f.ComputeMeta(p)}
	}
	return ups, ds
}

// localPool builds a sharded index over nShards in-process cloud servers
// and installs each shard.
func localPool(t testing.TB, f *frontend.Frontend, uploads []frontend.Upload, nShards int) *Pool {
	t.Helper()
	shards, err := f.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatalf("BuildShardedIndex: %v", err)
	}
	nodes := make([]Node, nShards)
	for s := range nodes {
		nodes[s] = NewLocal(cloud.New())
	}
	pool, err := NewPool(DefaultConfig(), nodes...)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatalf("InstallShard(%d): %v", s, err)
		}
	}
	return pool
}

// TestPoolEqualsSingleNode is the headline acceptance check: for the same
// dataset, keys and trapdoor, 4-shard fan-out discovery returns exactly
// the single-node ranked top-K.
func TestPoolEqualsSingleNode(t *testing.T) {
	const n, shards, k = 300, 4, 10

	single := testFrontend(t, "shard-test")
	uploads, ds := testUploads(t, single, n)

	idx, encProfiles, err := single.BuildIndex(uploads)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	sharded := testFrontend(t, "shard-test")
	pool := localPool(t, sharded, uploads, shards)

	queries, _ := ds.Queries(20, 99)
	for qi, q := range queries {
		want, err := single.Discover(cs, q, k, 0)
		if err != nil {
			t.Fatalf("query %d: Discover: %v", qi, err)
		}
		got, partial, err := sharded.DiscoverSharded(context.Background(), pool, q, k, 0)
		if err != nil {
			t.Fatalf("query %d: DiscoverSharded: %v", qi, err)
		}
		if partial {
			t.Fatalf("query %d: unexpected partial result with all shards alive", qi)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d matches, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || got[i].Distance != want[i].Distance {
				t.Fatalf("query %d rank %d: got (%d, %v), want (%d, %v)",
					qi, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
			}
		}
	}
}

// remotePool builds a sharded index over nShards TCP transport servers.
// It returns the pool and the servers (so tests can kill individual
// shards).
func remotePool(t *testing.T, f *frontend.Frontend, uploads []frontend.Upload, nShards int, cfg Config) (*Pool, []*transport.Server) {
	t.Helper()
	shards, err := f.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatalf("BuildShardedIndex: %v", err)
	}
	nodes := make([]Node, nShards)
	servers := make([]*transport.Server, nShards)
	for s := range nodes {
		srv := transport.NewServer(cloud.New())
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen shard %d: %v", s, err)
		}
		servers[s] = srv
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		remote := NewRemote(addr)
		t.Cleanup(func() { remote.Close() })
		nodes[s] = remote
	}
	pool, err := NewPool(cfg, nodes...)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatalf("InstallShard(%d): %v", s, err)
		}
	}
	return pool, servers
}

func shutdownServer(t *testing.T, srv *transport.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestPartialOnDeadShard kills one remote shard and checks that fan-out
// discovery returns the surviving shards' matches flagged partial: the
// result is exactly the all-alive result minus the dead shard's users.
func TestPartialOnDeadShard(t *testing.T) {
	const n, shards, dead = 240, 4, 2

	f := testFrontend(t, "shard-partial")
	uploads, ds := testUploads(t, f, n)
	cfg := DefaultConfig()
	cfg.Timeout = 2 * time.Second
	var shardErrs []int
	var mu sync.Mutex
	cfg.OnShardError = func(s int, err error) {
		mu.Lock()
		shardErrs = append(shardErrs, s)
		mu.Unlock()
	}
	pool, servers := remotePool(t, f, uploads, shards, cfg)

	queries, _ := ds.Queries(3, 7)
	q := queries[0]

	// k > n so both calls return every candidate, making the lists
	// directly comparable.
	full, partial, err := f.DiscoverSharded(context.Background(), pool, q, n+1, 0)
	if err != nil {
		t.Fatalf("DiscoverSharded (all alive): %v", err)
	}
	if partial {
		t.Fatal("unexpected partial result with all shards alive")
	}

	shutdownServer(t, servers[dead])

	got, partial, err := f.DiscoverSharded(context.Background(), pool, q, n+1, 0)
	if err != nil {
		t.Fatalf("DiscoverSharded (shard %d dead): %v", dead, err)
	}
	if !partial {
		t.Fatal("expected partial result with a dead shard")
	}
	var want []frontend.Match
	for _, m := range full {
		if pool.Owner(m.ID) != dead {
			want = append(want, m)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d: got %d, want %d", i, got[i].ID, want[i].ID)
		}
		if pool.Owner(got[i].ID) == dead {
			t.Fatalf("rank %d: id %d owned by dead shard %d", i, got[i].ID, dead)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(shardErrs) == 0 {
		t.Fatal("OnShardError never observed the dead shard")
	}
	for _, s := range shardErrs {
		if s != dead {
			t.Fatalf("OnShardError reported shard %d, only %d is dead", s, dead)
		}
	}
}

// TestAllShardsDeadErrors kills every shard: discovery must fail, not
// return an empty partial result.
func TestAllShardsDeadErrors(t *testing.T) {
	const n, shards = 120, 2

	f := testFrontend(t, "shard-all-dead")
	uploads, ds := testUploads(t, f, n)
	cfg := DefaultConfig()
	cfg.Timeout = 2 * time.Second
	pool, servers := remotePool(t, f, uploads, shards, cfg)
	for _, srv := range servers {
		shutdownServer(t, srv)
	}
	queries, _ := ds.Queries(1, 3)
	_, _, err := f.DiscoverSharded(context.Background(), pool, queries[0], 10, 0)
	if err == nil {
		t.Fatal("expected error with every shard dead")
	}
	if !strings.Contains(err.Error(), "all 2 shards failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestPingReportsDeadShard checks the pool's health probe.
func TestPingReportsDeadShard(t *testing.T) {
	const n, shards, dead = 120, 3, 1

	f := testFrontend(t, "shard-ping")
	uploads, _ := testUploads(t, f, n)
	cfg := DefaultConfig()
	cfg.Timeout = 2 * time.Second
	pool, servers := remotePool(t, f, uploads, shards, cfg)
	shutdownServer(t, servers[dead])

	errs := pool.Ping(context.Background())
	if len(errs) != shards {
		t.Fatalf("Ping returned %d results, want %d", len(errs), shards)
	}
	for s, err := range errs {
		if s == dead && err == nil {
			t.Fatalf("shard %d is dead but Ping reported healthy", s)
		}
		if s != dead && err != nil {
			t.Fatalf("shard %d is alive but Ping reported %v", s, err)
		}
	}
}

// faultPool builds a sharded index served by real transport servers and
// dials every shard through the faultnet harness, one peer per shard
// (shardPeer(s)), so tests can script faults and partitions per shard.
func faultPool(t *testing.T, f *frontend.Frontend, uploads []frontend.Upload, nShards int, cfg Config, fn *faultnet.Network) *Pool {
	t.Helper()
	shards, err := f.BuildShardedIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatalf("BuildShardedIndex: %v", err)
	}
	nodes := make([]Node, nShards)
	for s := range nodes {
		srv := transport.NewServer(cloud.New())
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen shard %d: %v", s, err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		remote := NewRemoteDialer(addr, fn.Dialer(shardPeer(s)))
		t.Cleanup(func() { remote.Close() })
		nodes[s] = remote
	}
	pool, err := NewPool(cfg, nodes...)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatalf("InstallShard(%d): %v", s, err)
		}
	}
	return pool
}

func shardPeer(s int) string { return fmt.Sprintf("shard%d", s) }

// appErrNode wraps a Node and fails every SecRec with an application
// error, which must not be retried.
type appErrNode struct {
	Node
	mu    sync.Mutex
	calls int
}

func (a *appErrNode) SecRec(context.Context, *core.Trapdoor) ([]uint64, [][]byte, error) {
	a.mu.Lock()
	a.calls++
	a.mu.Unlock()
	return nil, nil, &transport.RemoteError{Msg: "no index installed"}
}

// TestRetryRecoversConnError checks that one transient connection fault
// per shard — a real mid-request connection kill, injected on the wire by
// the faultnet harness — is absorbed by the pool's single default retry,
// yielding a complete (non-partial) result on fresh connections.
func TestRetryRecoversConnError(t *testing.T) {
	const n, shards = 240, 4

	f := testFrontend(t, "shard-retry")
	uploads, ds := testUploads(t, f, n)
	fn := faultnet.New(faultnet.Plan{Seed: 42})
	fn.SetEnabled(false) // no background noise; only the scripted faults
	pool := faultPool(t, f, uploads, shards, DefaultConfig(), fn)

	// Warm every shard's connection, then kill each shard's next write.
	for s, err := range pool.Ping(context.Background()) {
		if err != nil {
			t.Fatalf("Ping shard %d: %v", s, err)
		}
	}
	for s := 0; s < shards; s++ {
		fn.FailNextWrites(shardPeer(s), 1)
	}
	queries, _ := ds.Queries(1, 11)
	matches, partial, err := f.DiscoverSharded(context.Background(), pool, queries[0], 10, 0)
	if err != nil {
		t.Fatalf("DiscoverSharded: %v", err)
	}
	if partial {
		t.Fatal("retry should have absorbed the single fault per shard; got partial")
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
}

// TestPoolUnderSeededFaults runs discoveries against remote shards through
// a seeded random fault schedule (dropped frames and connection resets)
// and checks every complete result against the fault-free reference: the
// pool's retries may sweat, but results must never be silently wrong or
// reordered. Reproduce any failure with the printed seed.
func TestPoolUnderSeededFaults(t *testing.T) {
	const n, shards, seed = 240, 3, 77
	t.Logf("faultnet seed %d", seed)

	f := testFrontend(t, "shard-seeded-faults")
	uploads, ds := testUploads(t, f, n)
	fn := faultnet.New(faultnet.Plan{Seed: seed, DropProb: 0.05, ResetProb: 0.03})
	fn.SetEnabled(false)
	cfg := DefaultConfig()
	cfg.Timeout = 300 * time.Millisecond
	cfg.Retries = 4
	pool := faultPool(t, f, uploads, shards, cfg, fn)

	queries, _ := ds.Queries(12, 23)
	want := make([][]frontend.Match, len(queries))
	for q, target := range queries {
		m, partial, err := f.DiscoverSharded(context.Background(), pool, target, 8, 0)
		if err != nil || partial {
			t.Fatalf("fault-free query %d: partial=%v err=%v", q, partial, err)
		}
		want[q] = m
	}

	fn.SetEnabled(true)
	complete := 0
	for q, target := range queries {
		got, partial, err := f.DiscoverSharded(context.Background(), pool, target, 8, 0)
		if err != nil {
			if !transport.IsConnError(err) {
				t.Fatalf("query %d failed with non-transport error %T: %v", q, err, err)
			}
			continue
		}
		if partial {
			continue
		}
		complete++
		if err := frontend.EqualMatches(got, want[q]); err != nil {
			t.Fatalf("seed %d query %d diverged under faults: %v", seed, q, err)
		}
	}
	if complete == 0 {
		t.Fatalf("seed %d: no query completed; fault plan too hostile to assert anything", seed)
	}
}

// TestApplicationErrorsNotRetried checks the retry gate: a RemoteError
// shard is called exactly once per fan-out and marks the result partial.
func TestApplicationErrorsNotRetried(t *testing.T) {
	const n, shards = 240, 4

	f := testFrontend(t, "shard-apperr")
	uploads, ds := testUploads(t, f, n)
	built, err := f.BuildShardedIndex(uploads, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	broken := &appErrNode{Node: NewLocal(cloud.New())}
	nodes := make([]Node, shards)
	for s := range nodes {
		if s == 1 {
			nodes[s] = broken
			continue
		}
		nodes[s] = NewLocal(cloud.New())
	}
	cfg := DefaultConfig()
	cfg.Retries = 3
	pool, err := NewPool(cfg, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range built {
		if s == 1 {
			continue // the broken node rejects everything anyway
		}
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatal(err)
		}
	}
	queries, _ := ds.Queries(1, 13)
	_, partial, err := f.DiscoverSharded(context.Background(), pool, queries[0], 10, 0)
	if err != nil {
		t.Fatalf("DiscoverSharded: %v", err)
	}
	if !partial {
		t.Fatal("expected partial result with a failing shard")
	}
	broken.mu.Lock()
	defer broken.mu.Unlock()
	if broken.calls != 1 {
		t.Fatalf("application error retried: %d calls, want 1", broken.calls)
	}
}

// TestNewPoolValidation exercises pool construction errors.
func TestNewPoolValidation(t *testing.T) {
	if _, err := NewPool(DefaultConfig()); err == nil {
		t.Fatal("empty pool accepted")
	}
	if _, err := NewPool(DefaultConfig(), nil); err == nil {
		t.Fatal("nil node accepted")
	}
	cfg := DefaultConfig()
	cfg.Retries = -1
	if _, err := NewPool(cfg, NewLocal(cloud.New())); err == nil {
		t.Fatal("negative retries accepted")
	}
}

// dynSetup builds a sharded dynamic deployment over in-process nodes.
func dynSetup(t testing.TB, f *frontend.Frontend, uploads []frontend.Upload, nShards int) ([]frontend.DynShard, []frontend.DynNode, *Pool) {
	t.Helper()
	shards, err := f.BuildShardedDynamicIndex(uploads, nShards, nil)
	if err != nil {
		t.Fatalf("BuildShardedDynamicIndex: %v", err)
	}
	nodes := make([]Node, nShards)
	dynNodes := make([]frontend.DynNode, nShards)
	for s := range nodes {
		l := NewLocal(cloud.New())
		nodes[s] = l
		dynNodes[s] = l
	}
	pool, err := NewPool(DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range shards {
		if err := pool.InstallDynShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatalf("InstallDynShard(%d): %v", s, err)
		}
	}
	return shards, dynNodes, pool
}

// TestDynShardedSearchAndUpdate covers routing: an inserted user becomes
// discoverable via fan-out search, a deleted user disappears.
func TestDynShardedSearchAndUpdate(t *testing.T) {
	const n, shards = 240, 3

	f := testFrontend(t, "shard-dyn")
	uploads, ds := testUploads(t, f, n)
	dynShards, nodes, pool := dynSetup(t, f, uploads, shards)

	// Insert a brand-new user whose profile clones an existing one: it
	// must surface in sharded search results.
	newID := uint64(n + 100)
	profile := ds.Profiles[3]
	if err := f.DynInsertSharded(dynShards, nodes, pool.Owner, newID, profile); err != nil {
		t.Fatalf("DynInsertSharded: %v", err)
	}
	matches, partial, err := f.DynSearchSharded(dynShards, nodes, profile, 10, 0)
	if err != nil {
		t.Fatalf("DynSearchSharded: %v", err)
	}
	if partial {
		t.Fatal("unexpected partial result")
	}
	found := false
	for _, m := range matches {
		if m.ID == newID {
			found = true
		}
	}
	if !found {
		t.Fatalf("inserted user %d not in matches %v", newID, matches)
	}

	if err := f.DynDeleteSharded(dynShards, nodes, pool.Owner, newID, profile); err != nil {
		t.Fatalf("DynDeleteSharded: %v", err)
	}
	matches, _, err = f.DynSearchSharded(dynShards, nodes, profile, 10, 0)
	if err != nil {
		t.Fatalf("DynSearchSharded after delete: %v", err)
	}
	for _, m := range matches {
		if m.ID == newID {
			t.Fatalf("deleted user %d still in matches", newID)
		}
	}
}

// TestInsertToDeadShardErrors checks the issue's failure contract for
// updates: an insert routed to an unreachable owning shard fails loudly
// instead of landing elsewhere.
func TestInsertToDeadShardErrors(t *testing.T) {
	const n, shards = 160, 2

	f := testFrontend(t, "shard-dyn-dead")
	uploads, ds := testUploads(t, f, n)
	dynShards, err := f.BuildShardedDynamicIndex(uploads, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]frontend.DynNode, shards)
	servers := make([]*transport.Server, shards)
	poolNodes := make([]Node, shards)
	for s := range nodes {
		srv := transport.NewServer(cloud.New())
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers[s] = srv
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		remote := NewRemote(addr)
		t.Cleanup(func() { remote.Close() })
		nodes[s] = remote
		poolNodes[s] = remote
	}
	pool, err := NewPool(DefaultConfig(), poolNodes...)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range dynShards {
		if err := pool.InstallDynShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatal(err)
		}
	}

	newID := uint64(n + 50)
	dead := pool.Owner(newID)
	shutdownServer(t, servers[dead])

	err = f.DynInsertSharded(dynShards, nodes, pool.Owner, newID, ds.Profiles[0])
	if err == nil {
		t.Fatal("insert to dead owning shard succeeded")
	}
	if !transport.IsConnError(err) {
		t.Fatalf("want connection-level error, got %v", err)
	}

	// A search over the remaining shard still works, flagged partial.
	_, partial, err := f.DynSearchSharded(dynShards, nodes, ds.Profiles[0], 5, 0)
	if err != nil {
		t.Fatalf("DynSearchSharded: %v", err)
	}
	if !partial {
		t.Fatal("expected partial dynamic search with a dead shard")
	}
}

// TestConcurrentFanoutAndInserts races concurrent fan-out queries (static
// pool SecRec and dynamic sharded search) against concurrent dynamic
// inserts. Run under -race this validates the locking story: per-shard
// DynClients, the pool, and the cloud servers are all shared.
func TestConcurrentFanoutAndInserts(t *testing.T) {
	const n, shards = 240, 4

	f := testFrontend(t, "shard-race")
	uploads, ds := testUploads(t, f, n)
	pool := localPool(t, f, uploads, shards)
	dynShards, dynNodes, dynPool := dynSetup(t, f, uploads, shards)

	queries, _ := ds.Queries(8, 21)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				q := queries[(w*6+i)%len(queries)]
				if _, _, err := f.DiscoverSharded(context.Background(), pool, q, 5, 0); err != nil {
					errCh <- fmt.Errorf("static worker %d: %w", w, err)
					return
				}
				if _, _, err := f.DynSearchSharded(dynShards, dynNodes, q, 5, 0); err != nil {
					errCh <- fmt.Errorf("dyn search worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				id := uint64(n + 1 + w*100 + i)
				profile := ds.Profiles[(w*5+i)%len(ds.Profiles)]
				if err := f.DynInsertSharded(dynShards, dynNodes, dynPool.Owner, id, profile); err != nil {
					errCh <- fmt.Errorf("insert worker %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
