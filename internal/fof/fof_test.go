package fof

import (
	"reflect"
	"testing"
)

// triangle plus tail: 1-2, 1-3, 2-3, 3-4, 4-5
func testGraph() *Graph {
	g := NewGraph()
	g.AddFriendship(1, 2)
	g.AddFriendship(1, 3)
	g.AddFriendship(2, 3)
	g.AddFriendship(3, 4)
	g.AddFriendship(4, 5)
	return g
}

func TestAreFriendsSymmetric(t *testing.T) {
	g := testGraph()
	if !g.AreFriends(1, 2) || !g.AreFriends(2, 1) {
		t.Error("friendship not symmetric")
	}
	if g.AreFriends(1, 4) {
		t.Error("1 and 4 should not be friends")
	}
}

func TestSelfLinkIgnored(t *testing.T) {
	g := NewGraph()
	g.AddFriendship(7, 7)
	if g.AreFriends(7, 7) {
		t.Error("self-friendship recorded")
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d, want 0", g.Len())
	}
}

func TestFriendsSorted(t *testing.T) {
	g := testGraph()
	if got := g.Friends(3); !reflect.DeepEqual(got, []uint64{1, 2, 4}) {
		t.Errorf("Friends(3) = %v", got)
	}
	if got := g.Friends(99); len(got) != 0 {
		t.Errorf("Friends(unknown) = %v", got)
	}
}

func TestFriendsOfFriends(t *testing.T) {
	g := testGraph()
	// 1's friends: 2,3. Their friends: 1(skip),3(direct),2(direct),4.
	fof := g.FriendsOfFriends(1)
	if len(fof) != 1 {
		t.Fatalf("FoF(1) = %v", fof)
	}
	if fof[4] != 1 {
		t.Errorf("mutual count for 4 = %d, want 1", fof[4])
	}
	// 5's FoF: via 4 -> 3.
	fof5 := g.FriendsOfFriends(5)
	if len(fof5) != 1 || fof5[3] != 1 {
		t.Errorf("FoF(5) = %v", fof5)
	}
}

func TestFilterPreservesOrder(t *testing.T) {
	g := testGraph()
	got := g.Filter(1, []uint64{5, 4, 2, 9})
	if !reflect.DeepEqual(got, []uint64{4}) {
		t.Errorf("Filter = %v, want [4]", got)
	}
}

func TestBoostStablePartition(t *testing.T) {
	g := testGraph()
	got := g.Boost(1, []uint64{5, 4, 9, 2})
	// FoF of 1 is {4}; 2 is a direct friend, not FoF.
	want := []uint64{4, 5, 9, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Boost = %v, want %v", got, want)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewGraph()
	if got := g.Filter(1, []uint64{1, 2}); len(got) != 0 {
		t.Errorf("Filter on empty graph = %v", got)
	}
	if got := g.Boost(1, []uint64{2, 3}); !reflect.DeepEqual(got, []uint64{2, 3}) {
		t.Errorf("Boost on empty graph = %v", got)
	}
}
