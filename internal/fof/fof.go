// Package fof implements the friend-of-friend social-graph filtering the
// paper composes with distance ranking (Sec. III-C: "one can use
// Friend-of-Friend approach to further filter the ranking results"): an
// undirected friendship graph plus helpers to filter or re-rank discovery
// candidates by social proximity.
package fof

import "sort"

// Graph is an undirected friendship graph over user identifiers.
// The zero value is not usable; construct with NewGraph.
type Graph struct {
	adj map[uint64]map[uint64]struct{}
}

// NewGraph returns an empty friendship graph.
func NewGraph() *Graph {
	return &Graph{adj: make(map[uint64]map[uint64]struct{})}
}

// AddFriendship records a mutual friendship between a and b. Self-links
// are ignored.
func (g *Graph) AddFriendship(a, b uint64) {
	if a == b {
		return
	}
	g.link(a, b)
	g.link(b, a)
}

func (g *Graph) link(a, b uint64) {
	set, ok := g.adj[a]
	if !ok {
		set = make(map[uint64]struct{})
		g.adj[a] = set
	}
	set[b] = struct{}{}
}

// AreFriends reports whether a and b are directly connected.
func (g *Graph) AreFriends(a, b uint64) bool {
	_, ok := g.adj[a][b]
	return ok
}

// Friends returns a's direct friends in ascending id order.
func (g *Graph) Friends(a uint64) []uint64 {
	out := make([]uint64, 0, len(g.adj[a]))
	for f := range g.adj[a] {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FriendsOfFriends returns the set of users at exactly distance two from a
// (friends of friends who are not already friends and not a itself), with
// the number of mutual friends as the value.
func (g *Graph) FriendsOfFriends(a uint64) map[uint64]int {
	out := make(map[uint64]int)
	for f := range g.adj[a] {
		for ff := range g.adj[f] {
			if ff == a {
				continue
			}
			if _, direct := g.adj[a][ff]; direct {
				continue
			}
			out[ff]++
		}
	}
	return out
}

// Filter keeps only the candidates that are friends-of-friends of target
// (strict FoF filtering), preserving the candidates' ranking order.
func (g *Graph) Filter(target uint64, candidates []uint64) []uint64 {
	fof := g.FriendsOfFriends(target)
	out := make([]uint64, 0, len(candidates))
	for _, c := range candidates {
		if _, ok := fof[c]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Boost stably partitions candidates so that friends-of-friends of target
// come first (socially close recommendations ahead of strangers), each
// partition preserving the original distance-ranked order.
func (g *Graph) Boost(target uint64, candidates []uint64) []uint64 {
	fof := g.FriendsOfFriends(target)
	front := make([]uint64, 0, len(candidates))
	back := make([]uint64, 0, len(candidates))
	for _, c := range candidates {
		if _, ok := fof[c]; ok {
			front = append(front, c)
		} else {
			back = append(back, c)
		}
	}
	return append(front, back...)
}

// Len returns the number of users with at least one friendship.
func (g *Graph) Len() int { return len(g.adj) }
