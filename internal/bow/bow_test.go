package bow

import (
	"math"
	"math/rand"
	"testing"

	"pisd/internal/imaging"
	"pisd/internal/surf"
	"pisd/internal/vec"
)

// syntheticDescriptors draws descriptors from g well-separated Gaussian
// clusters in 64-D space.
func syntheticDescriptors(rng *rand.Rand, n, groups int) ([]surf.Descriptor, []int) {
	centers := make([][]float64, groups)
	for g := range centers {
		c := make([]float64, surf.DescriptorSize)
		for j := range c {
			c[j] = rng.NormFloat64() * 3
		}
		centers[g] = c
	}
	descs := make([]surf.Descriptor, n)
	labels := make([]int, n)
	for i := range descs {
		g := i % groups
		labels[i] = g
		for j := 0; j < surf.DescriptorSize; j++ {
			descs[i][j] = centers[g][j] + rng.NormFloat64()*0.1
		}
	}
	return descs, labels
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	descs, _ := syntheticDescriptors(rng, 20, 4)
	if _, err := Train(descs, TrainConfig{Words: 0, MaxIters: 5}); err == nil {
		t.Error("zero words accepted")
	}
	if _, err := Train(descs, TrainConfig{Words: 4, MaxIters: 0}); err == nil {
		t.Error("zero iters accepted")
	}
	if _, err := Train(descs, TrainConfig{Words: 50, MaxIters: 5}); err == nil {
		t.Error("more words than samples accepted")
	}
}

func TestTrainRecoversClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const groups = 6
	descs, labels := syntheticDescriptors(rng, 600, groups)
	voc, err := Train(descs, TrainConfig{Words: groups, MaxIters: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if voc.Size() != groups {
		t.Fatalf("vocabulary size %d", voc.Size())
	}
	// All members of one true cluster must quantize to the same word, and
	// different clusters to different words.
	wordOf := make(map[int]int)
	for i, d := range descs {
		w := voc.Quantize(d)
		if prev, ok := wordOf[labels[i]]; ok {
			if prev != w {
				t.Fatalf("cluster %d split across words %d and %d", labels[i], prev, w)
			}
		} else {
			wordOf[labels[i]] = w
		}
	}
	seen := map[int]bool{}
	for _, w := range wordOf {
		if seen[w] {
			t.Fatal("two clusters merged into one word")
		}
		seen[w] = true
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	descs, _ := syntheticDescriptors(rng, 200, 4)
	cfg := TrainConfig{Words: 4, MaxIters: 10, Seed: 9}
	a, err := Train(descs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(descs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Words {
		for j := range a.Words[k] {
			if a.Words[k][j] != b.Words[k][j] {
				t.Fatal("training not deterministic in seed")
			}
		}
	}
}

func TestBoWHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	descs, _ := syntheticDescriptors(rng, 100, 4)
	voc, err := Train(descs, TrainConfig{Words: 4, MaxIters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hist := voc.BoW(descs)
	var total float64
	for _, v := range hist {
		total += v
	}
	if total != 100 {
		t.Errorf("histogram mass %v, want 100", total)
	}
}

func TestProfileNormalizedAndAggregated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	descs, _ := syntheticDescriptors(rng, 200, 4)
	voc, err := Train(descs[:100], TrainConfig{Words: 4, MaxIters: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := voc.Profile(nil); err == nil {
		t.Error("empty image set accepted")
	}
	profile, err := voc.Profile([][]surf.Descriptor{descs[:50], descs[50:120]})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vec.Norm(profile)-1) > 1e-9 {
		t.Errorf("profile norm %v", vec.Norm(profile))
	}
	for _, v := range profile {
		if v < 0 {
			t.Fatal("profile has negative entry")
		}
	}
}

func TestVocabularySizeBytes(t *testing.T) {
	voc := &Vocabulary{Words: [][]float64{make([]float64, 64), make([]float64, 64)}}
	if got := voc.SizeBytes(); got != 2*64*8 {
		t.Errorf("SizeBytes = %d", got)
	}
}

// End-to-end locality: profiles built from same-topic images are closer
// than profiles from different-topic images. This is the load-bearing
// property of the whole pipeline (images → SURF → BoW → profile).
func TestPipelineTopicLocality(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline test")
	}
	opts := surf.DefaultOptions()
	extract := func(topic imaging.Topic, seed int64) []surf.Descriptor {
		t.Helper()
		im, err := imaging.Render(topic, seed, 128, 128)
		if err != nil {
			t.Fatal(err)
		}
		descs, err := surf.Extract(im, opts)
		if err != nil {
			t.Fatal(err)
		}
		return descs
	}
	// Train a small vocabulary on a mixed sample.
	var sample []surf.Descriptor
	for _, topic := range []imaging.Topic{imaging.TopicFlower, imaging.TopicBuilding, imaging.TopicWater, imaging.TopicDog} {
		for s := int64(0); s < 3; s++ {
			sample = append(sample, extract(topic, 1000+s)...)
		}
	}
	voc, err := Train(sample, TrainConfig{Words: 48, MaxIters: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	profileOf := func(topic imaging.Topic, base int64) []float64 {
		var imgs [][]surf.Descriptor
		for s := int64(0); s < 3; s++ {
			imgs = append(imgs, extract(topic, base+s))
		}
		p, err := voc.Profile(imgs)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	buildingA := profileOf(imaging.TopicBuilding, 2000)
	buildingB := profileOf(imaging.TopicBuilding, 3000)
	flowerA := profileOf(imaging.TopicFlower, 2000)
	within := vec.Distance(buildingA, buildingB)
	across := vec.Distance(buildingA, flowerA)
	if within >= across {
		t.Errorf("pipeline locality violated: within-topic %.4f >= cross-topic %.4f", within, across)
	}
}

func BenchmarkQuantize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	descs, _ := syntheticDescriptors(rng, 1000, 8)
	voc, err := Train(descs, TrainConfig{Words: 200, MaxIters: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		voc.Quantize(descs[i%len(descs)])
	}
}

func TestVocabularyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	descs, _ := syntheticDescriptors(rng, 100, 4)
	voc, err := Train(descs, TrainConfig{Words: 4, MaxIters: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := voc.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Vocabulary
	if err := decoded.UnmarshalBinary(blob); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	if decoded.Size() != voc.Size() {
		t.Fatalf("size %d vs %d", decoded.Size(), voc.Size())
	}
	for k := range voc.Words {
		for i := range voc.Words[k] {
			if decoded.Words[k][i] != voc.Words[k][i] {
				t.Fatal("word entries changed in codec")
			}
		}
	}
	// Both vocabularies quantize identically.
	for i := range descs[:20] {
		if voc.Quantize(descs[i]) != decoded.Quantize(descs[i]) {
			t.Fatal("decoded vocabulary quantizes differently")
		}
	}
}

func TestVocabularyCodecRejectsMalformed(t *testing.T) {
	var v Vocabulary
	if err := v.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Error("short blob accepted")
	}
	empty := &Vocabulary{}
	if _, err := empty.MarshalBinary(); err == nil {
		t.Error("empty vocabulary encoded")
	}
	good := &Vocabulary{Words: [][]float64{{1, 2}, {3, 4}}}
	blob, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	blob[0] ^= 1
	if err := v.UnmarshalBinary(blob); err == nil {
		t.Error("bad magic accepted")
	}
	blob[0] ^= 1
	if err := v.UnmarshalBinary(blob[:len(blob)-3]); err == nil {
		t.Error("truncated blob accepted")
	}
	ragged := &Vocabulary{Words: [][]float64{{1, 2}, {3}}}
	if _, err := ragged.MarshalBinary(); err == nil {
		t.Error("ragged vocabulary encoded")
	}
}

func TestMiniBatchTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const groups = 6
	descs, labels := syntheticDescriptors(rng, 3000, groups)
	voc, err := Train(descs, TrainConfig{Words: groups, MaxIters: 60, Seed: 2, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Mini-batch on well-separated clusters must still recover them:
	// members of one true cluster quantize to one word.
	wordOf := make(map[int]int)
	mismatches := 0
	for i, d := range descs {
		w := voc.Quantize(d)
		if prev, ok := wordOf[labels[i]]; ok && prev != w {
			mismatches++
		} else {
			wordOf[labels[i]] = w
		}
	}
	if frac := float64(mismatches) / float64(len(descs)); frac > 0.02 {
		t.Errorf("mini-batch split clusters: %.3f mismatch rate", frac)
	}
	if _, err := Train(descs, TrainConfig{Words: 4, MaxIters: 5, BatchSize: -1}); err == nil {
		t.Error("negative batch size accepted")
	}
}

func TestMiniBatchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	descs, _ := syntheticDescriptors(rng, 500, 4)
	cfg := TrainConfig{Words: 4, MaxIters: 20, Seed: 5, BatchSize: 64}
	a, err := Train(descs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(descs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Words {
		for j := range a.Words[k] {
			if a.Words[k][j] != b.Words[k][j] {
				t.Fatal("mini-batch training not deterministic in seed")
			}
		}
	}
}
