package bow

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Vocabulary serialization: the front end trains Δ once and pre-shares it
// with every user client (Sec. III-A, "pre-trained and shared by SF").
// The format is a fixed binary layout: magic, word count, dimensionality,
// then row-major IEEE-754 entries — the same byte count the paper's
// "vocabulary storage" overhead row measures.

const vocabMagic = 0x50564F43 // "PVOC"

// MarshalBinary encodes the vocabulary.
func (v *Vocabulary) MarshalBinary() ([]byte, error) {
	if len(v.Words) == 0 {
		return nil, fmt.Errorf("bow: cannot encode empty vocabulary")
	}
	dim := len(v.Words[0])
	out := make([]byte, 0, 12+8*len(v.Words)*dim)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], vocabMagic)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(v.Words)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(dim))
	out = append(out, hdr[:]...)
	var buf [8]byte
	for k, w := range v.Words {
		if len(w) != dim {
			return nil, fmt.Errorf("bow: word %d has dim %d, want %d", k, len(w), dim)
		}
		for _, x := range w {
			binary.BigEndian.PutUint64(buf[:], math.Float64bits(x))
			out = append(out, buf[:]...)
		}
	}
	return out, nil
}

// UnmarshalBinary decodes a vocabulary produced by MarshalBinary.
func (v *Vocabulary) UnmarshalBinary(data []byte) error {
	if len(data) < 12 {
		return fmt.Errorf("bow: vocabulary encoding too short")
	}
	if binary.BigEndian.Uint32(data) != vocabMagic {
		return fmt.Errorf("bow: bad vocabulary magic")
	}
	words := int(binary.BigEndian.Uint32(data[4:]))
	dim := int(binary.BigEndian.Uint32(data[8:]))
	if words < 1 || dim < 1 {
		return fmt.Errorf("bow: invalid vocabulary shape %dx%d", words, dim)
	}
	if len(data) != 12+8*words*dim {
		return fmt.Errorf("bow: vocabulary body %d bytes, want %d", len(data)-12, 8*words*dim)
	}
	v.Words = make([][]float64, words)
	off := 12
	for k := range v.Words {
		row := make([]float64, dim)
		for i := range row {
			row[i] = math.Float64frombits(binary.BigEndian.Uint64(data[off:]))
			off += 8
		}
		v.Words[k] = row
	}
	return nil
}

// GobEncode lets encoding/gob carry the vocabulary over the transport.
func (v *Vocabulary) GobEncode() ([]byte, error) { return v.MarshalBinary() }

// GobDecode is the inverse of GobEncode.
func (v *Vocabulary) GobDecode(data []byte) error { return v.UnmarshalBinary(data) }
