// Package bow implements the Bag-of-Words model of the paper's user-side
// pipeline (Sec. III-A): a visual-word vocabulary Δ trained by k-means
// clustering over SURF descriptors, quantization of descriptors to their
// nearest visual words, and the GenProf function that aggregates the BoW
// vectors of a user's preferred images into a normalized high-dimensional
// image profile S.
package bow

import (
	"fmt"
	"math/rand"

	"pisd/internal/surf"
	"pisd/internal/vec"
)

// Vocabulary is the shared visual-word vocabulary Δ: K cluster centers in
// descriptor space. The service front end trains it once and distributes
// it to all user clients.
type Vocabulary struct {
	// Words[k] is the k-th visual word (a descriptor-space centroid).
	Words [][]float64
}

// Size returns m = |Δ|, the profile dimensionality.
func (v *Vocabulary) Size() int { return len(v.Words) }

// SizeBytes returns the storage footprint of the vocabulary as shipped to
// clients (float64 entries), the "1.03 MB visual word vocabulary" number
// of the paper's user-client overhead table.
func (v *Vocabulary) SizeBytes() int {
	n := 0
	for _, w := range v.Words {
		n += 8 * len(w)
	}
	return n
}

// TrainConfig tunes vocabulary training.
type TrainConfig struct {
	// Words is K, the vocabulary size (paper: 1000).
	Words int
	// MaxIters bounds Lloyd iterations (or mini-batch steps).
	MaxIters int
	// Seed drives k-means++ seeding and tie-breaking.
	Seed int64
	// BatchSize, when > 0, switches to mini-batch k-means (Sculley,
	// WWW'10): each iteration assigns a random sample of BatchSize
	// descriptors and nudges the centroids with per-center learning
	// rates. Large corpora (the paper clusters features of 14k images)
	// train orders of magnitude faster at slightly lower quality.
	BatchSize int
}

// DefaultTrainConfig returns the training configuration used by the
// experiments.
func DefaultTrainConfig(words int) TrainConfig {
	return TrainConfig{Words: words, MaxIters: 25, Seed: 1}
}

// Train builds a vocabulary by k-means++ seeding followed by Lloyd
// iterations over the given descriptor sample (the paper trains on a 10%
// sample of the corpus).
func Train(samples []surf.Descriptor, cfg TrainConfig) (*Vocabulary, error) {
	if cfg.Words < 1 {
		return nil, fmt.Errorf("bow: vocabulary size must be >= 1, got %d", cfg.Words)
	}
	if cfg.MaxIters < 1 {
		return nil, fmt.Errorf("bow: max iters must be >= 1, got %d", cfg.MaxIters)
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("bow: batch size must be >= 0, got %d", cfg.BatchSize)
	}
	if len(samples) < cfg.Words {
		return nil, fmt.Errorf("bow: %d samples cannot seed %d words", len(samples), cfg.Words)
	}
	points := make([][]float64, len(samples))
	for i := range samples {
		points[i] = samples[i].Slice()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := seedPlusPlus(points, cfg.Words, rng)
	if cfg.BatchSize > 0 {
		return trainMiniBatch(points, centers, cfg, rng)
	}
	assign := make([]int, len(points))
	for iter := 0; iter < cfg.MaxIters; iter++ {
		changed := 0
		for i, p := range points {
			best, _ := vec.ArgNearest(p, centers)
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		if changed == 0 && iter > 0 {
			break
		}
		// Recompute centroids.
		dim := len(centers[0])
		sums := make([][]float64, len(centers))
		counts := make([]int, len(centers))
		for k := range sums {
			sums[k] = make([]float64, dim)
		}
		for i, p := range points {
			k := assign[i]
			counts[k]++
			for j, x := range p {
				sums[k][j] += x
			}
		}
		for k := range centers {
			if counts[k] == 0 {
				// Re-seed an empty cluster with a random point.
				centers[k] = vec.Clone(points[rng.Intn(len(points))])
				continue
			}
			centers[k] = vec.Scale(sums[k], 1/float64(counts[k]))
		}
	}
	return &Vocabulary{Words: centers}, nil
}

// trainMiniBatch runs mini-batch k-means over pre-seeded centers.
func trainMiniBatch(points, centers [][]float64, cfg TrainConfig, rng *rand.Rand) (*Vocabulary, error) {
	counts := make([]float64, len(centers))
	assign := make([]int, cfg.BatchSize)
	for iter := 0; iter < cfg.MaxIters; iter++ {
		// Sample and assign the batch against the frozen centers.
		batch := make([][]float64, cfg.BatchSize)
		for b := range batch {
			batch[b] = points[rng.Intn(len(points))]
			assign[b], _ = vec.ArgNearest(batch[b], centers)
		}
		// Gradient step with per-center learning rate 1/counts[k].
		for b, p := range batch {
			k := assign[b]
			counts[k]++
			eta := 1 / counts[k]
			c := centers[k]
			for j := range c {
				c[j] += eta * (p[j] - c[j])
			}
		}
	}
	return &Vocabulary{Words: centers}, nil
}

// seedPlusPlus runs k-means++ seeding: the first center uniform, each next
// center drawn with probability proportional to squared distance from the
// nearest chosen center.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	centers = append(centers, vec.Clone(points[rng.Intn(len(points))]))
	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = vec.SquaredDistance(p, centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var next int
		if total <= 0 {
			next = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					next = i
					break
				}
			}
		}
		c := vec.Clone(points[next])
		centers = append(centers, c)
		for i, p := range points {
			if d := vec.SquaredDistance(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

// Quantize returns the index of the visual word nearest to the descriptor.
func (v *Vocabulary) Quantize(d surf.Descriptor) int {
	idx, _ := vec.ArgNearest(d.Slice(), v.Words)
	return idx
}

// BoW builds the visual-word occurrence histogram of one image's
// descriptors.
func (v *Vocabulary) BoW(descs []surf.Descriptor) []float64 {
	hist := make([]float64, v.Size())
	for i := range descs {
		hist[v.Quantize(descs[i])]++
	}
	return hist
}

// Profile implements GenProf({Img}, Δ): it aggregates the BoW vectors of
// all of a user's preferred images and L2-normalizes the sum into the user
// image profile S. Images contribute via their extracted descriptors.
func (v *Vocabulary) Profile(imageDescs [][]surf.Descriptor) ([]float64, error) {
	if len(imageDescs) == 0 {
		return nil, fmt.Errorf("bow: profile needs at least one image")
	}
	profile := make([]float64, v.Size())
	for _, descs := range imageDescs {
		for i := range descs {
			profile[v.Quantize(descs[i])]++
		}
	}
	return vec.Normalize(profile), nil
}
