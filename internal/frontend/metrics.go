package frontend

import (
	"pisd/internal/obs"
)

// fmet is the front-end tier's metric surface (names under "frontend.").
// The four stage histograms decompose every discovery the way the paper's
// evaluation does — trapdoor generation, cloud exchange, match
// decryption, distance ranking — so a Snapshot() diff over any workload
// yields the per-stage latency breakdown live (EXPERIMENTS.md). All
// handles are nil-safe; SetRegistry(nil) is the disabled mode.
var fmet struct {
	discoverNs *obs.Histogram // end-to-end single discovery
	batchNs    *obs.Histogram // end-to-end batched discovery (whole batch)
	trapdoorNs *obs.Histogram // stage: GenTpdr (batch: all trapdoors)
	fanoutNs   *obs.Histogram // stage: cloud SecRec exchange / shard fan-out
	decryptNs  *obs.Histogram // stage: profile decryption + distance eval
	rankNs     *obs.Histogram // stage: top-k selection
	dynNs      *obs.Histogram // end-to-end dynamic search

	discoveries *obs.Counter // single discoveries completed
	batches     *obs.Counter // batched discoveries completed
	partials    *obs.Counter // sharded discoveries degraded to partial results

	// Serving-path surface: result cache, batch coalescer, admission gate.
	cacheHits       *obs.Counter   // discoveries answered from the result cache
	cacheMisses     *obs.Counter   // discoveries that had to reach the cloud
	cacheInvalids   *obs.Counter   // cache entries evicted by dynamic updates
	coalesceBatch   *obs.Histogram // coalesced flush size (queries per flush)
	coalesceFlushes *obs.Counter   // coalesced flushes dispatched
	coalesceQueue   *obs.Gauge     // discoveries waiting for the next flush
	admitRejected   *obs.Counter   // discoveries rejected with ErrOverloaded
	admitInflight   *obs.Gauge     // admitted discoveries currently in flight
}

func init() { SetRegistry(obs.Default) }

// SetRegistry points the front-end metrics at r (nil disables them).
// Intended for process setup and test isolation; not safe to call
// concurrently with in-flight discoveries.
func SetRegistry(r *obs.Registry) {
	if r == nil {
		fmet.discoverNs, fmet.batchNs = nil, nil
		fmet.trapdoorNs, fmet.fanoutNs, fmet.decryptNs, fmet.rankNs, fmet.dynNs = nil, nil, nil, nil, nil
		fmet.discoveries, fmet.batches, fmet.partials = nil, nil, nil
		fmet.cacheHits, fmet.cacheMisses, fmet.cacheInvalids = nil, nil, nil
		fmet.coalesceBatch, fmet.coalesceFlushes, fmet.coalesceQueue = nil, nil, nil
		fmet.admitRejected, fmet.admitInflight = nil, nil
		return
	}
	fmet.discoverNs = r.Histogram("frontend.discover")
	fmet.batchNs = r.Histogram("frontend.discover_batch")
	fmet.trapdoorNs = r.Histogram("frontend.trapdoor")
	fmet.fanoutNs = r.Histogram("frontend.fanout")
	fmet.decryptNs = r.Histogram("frontend.decrypt")
	fmet.rankNs = r.Histogram("frontend.rank")
	fmet.dynNs = r.Histogram("frontend.dyn_search")
	fmet.discoveries = r.Counter("frontend.discoveries")
	fmet.batches = r.Counter("frontend.batch_discoveries")
	fmet.partials = r.Counter("frontend.partial_results")
	fmet.cacheHits = r.Counter("frontend.cache_hits")
	fmet.cacheMisses = r.Counter("frontend.cache_misses")
	fmet.cacheInvalids = r.Counter("frontend.cache_invalidations")
	fmet.coalesceBatch = r.Histogram("frontend.coalesce_batch")
	fmet.coalesceFlushes = r.Counter("frontend.coalesce_flushes")
	fmet.coalesceQueue = r.Gauge("frontend.coalesce_queue")
	fmet.admitRejected = r.Counter("frontend.admission_rejected")
	fmet.admitInflight = r.Gauge("frontend.admission_inflight")
}
