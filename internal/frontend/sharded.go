package frontend

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"pisd/internal/core"
	"pisd/internal/obs"
)

// Shard is one cloud shard's installable state: the partitioned secure
// index plus the encrypted profiles of the users the shard owns.
type Shard struct {
	Index       *core.Index
	EncProfiles map[uint64][]byte
}

// DynShard is one cloud shard's dynamic state: the shard's updatable
// index, the front-end client holding its round keys, and the encrypted
// profiles of the users the shard owns. The Client routes this shard's
// secure insert/delete/search rounds; clients of different shards are
// independent, so cross-shard fan-out stays parallel.
type DynShard struct {
	Index       *core.DynIndex
	Client      *core.DynClient
	EncProfiles map[uint64][]byte
}

// BuildShardedIndex implements ConSecIdx for an S-shard cloud tier: it
// runs the single global cuckoo placement of core.BuildPartitioned and
// derives one secure index per shard, each a projection of the single-node
// index onto the users owner assigns to it. The per-shard encryptions run
// in parallel. A nil owner means core.DefaultOwner (id mod shards).
//
// Because placement, parameters and keys are global, one trapdoor serves
// every shard and the union of the shards' SecRec results equals the
// single-node result exactly.
func (f *Frontend) BuildShardedIndex(uploads []Upload, shards int, owner func(uint64) int) ([]Shard, error) {
	if shards < 1 {
		return nil, fmt.Errorf("frontend: shard count must be >= 1, got %d", shards)
	}
	if owner == nil {
		owner = core.DefaultOwner(shards)
	}
	var idxs []*core.Index
	p, err := f.buildLoop(uploads, func(items []core.Item, p core.Params) error {
		var berr error
		idxs, berr = core.BuildPartitioned(f.keys, items, p, shards, owner)
		return berr
	})
	if err != nil {
		return nil, err
	}
	f.params = p
	f.built = true

	out := make([]Shard, shards)
	for s := range out {
		out[s] = Shard{Index: idxs[s], EncProfiles: make(map[uint64][]byte)}
	}
	cts, err := f.encryptProfileSlice(uploads)
	if err != nil {
		return nil, err
	}
	for i, u := range uploads {
		out[owner(u.ID)].EncProfiles[u.ID] = cts[i]
	}
	return out, nil
}

// BuildShardedDynamicIndex builds one updatable index per shard over the
// uploads each shard owns. Every shard's index shares the global
// parameters sized for the full upload set, so bucket references computed
// by any shard's client stay valid as users churn; shard builds run in
// parallel. A nil owner means core.DefaultOwner (id mod shards).
func (f *Frontend) BuildShardedDynamicIndex(uploads []Upload, shards int, owner func(uint64) int) ([]DynShard, error) {
	if shards < 1 {
		return nil, fmt.Errorf("frontend: shard count must be >= 1, got %d", shards)
	}
	if owner == nil {
		owner = core.DefaultOwner(shards)
	}
	items, p, err := f.prepare(uploads, false)
	if err != nil {
		return nil, err
	}
	parts := make([][]core.Item, shards)
	for _, it := range items {
		s := owner(it.ID)
		if s < 0 || s >= shards {
			return nil, fmt.Errorf("frontend: owner(%d) = %d out of range [0,%d)", it.ID, s, shards)
		}
		parts[s] = append(parts[s], it)
	}

	out := make([]DynShard, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			idx, client, err := core.BuildDynamic(f.keys, parts[s], p)
			if err != nil {
				errs[s] = err
				return
			}
			out[s] = DynShard{Index: idx, Client: client, EncProfiles: make(map[uint64][]byte)}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("frontend: build dynamic shard %d: %w", s, err)
		}
	}
	f.params = p
	f.built = true
	f.rehashed = false

	cts, err := f.encryptProfileSlice(uploads)
	if err != nil {
		return nil, err
	}
	for i, u := range uploads {
		out[owner(u.ID)].EncProfiles[u.ID] = cts[i]
	}
	return out, nil
}

// FanoutServer is the sharded cloud surface the front end drives for
// static discovery: a fan-out SecRec that may come back partial when some
// shards are down. shard.Pool implements it.
type FanoutServer interface {
	SecRec(ctx context.Context, t *core.Trapdoor) (ids []uint64, encProfiles [][]byte, partial bool, err error)
}

// DiscoverSharded runs the discovery flow against a sharded cloud tier:
// trapdoor → concurrent SecRec fan-out → decrypt → exact distance ranking.
// partial reports that one or more shards were unreachable and the
// recommendations cover only the surviving shards' users. For the same
// dataset and keys the non-partial result is identical to Discover against
// a single cloud node.
func (f *Frontend) DiscoverSharded(ctx context.Context, pool FanoutServer, targetProfile []float64, k int, excludeID uint64) ([]Match, bool, error) {
	matches, partial, _, err := f.discoverSharded(ctx, pool, targetProfile, k, excludeID, nil)
	return matches, partial, err
}

// DiscoverShardedTraced is DiscoverSharded returning a per-query trace
// with the latency of each stage (trapdoor, fanout, decrypt, rank).
func (f *Frontend) DiscoverShardedTraced(ctx context.Context, pool FanoutServer, targetProfile []float64, k int, excludeID uint64) ([]Match, bool, *obs.Trace, error) {
	return f.discoverSharded(ctx, pool, targetProfile, k, excludeID, obs.NewTrace("discover_sharded"))
}

func (f *Frontend) discoverSharded(ctx context.Context, pool FanoutServer, targetProfile []float64, k int, excludeID uint64, tr *obs.Trace) ([]Match, bool, *obs.Trace, error) {
	var sp obs.Span
	sp.StartTraced(tr)
	td, err := f.Trapdoor(targetProfile)
	if err != nil {
		return nil, false, tr, err
	}
	sp.Mark("trapdoor", fmet.trapdoorNs)
	ids, encProfiles, partial, err := pool.SecRec(ctx, td)
	if err != nil {
		return nil, false, tr, fmt.Errorf("frontend: sharded discovery request: %w", err)
	}
	sp.Mark("fanout", fmet.fanoutNs)
	matches, err := f.rankSpanned(targetProfile, ids, encProfiles, k, excludeID, &sp)
	if err != nil {
		return nil, false, tr, err
	}
	sp.Finish(fmet.discoverNs)
	fmet.discoveries.Inc()
	if partial {
		fmet.partials.Inc()
	}
	return matches, partial, tr, nil
}

// FanoutBatchServer is the sharded cloud surface for batched static
// discovery: one fan-out resolving q trapdoors with a single call per
// shard, partial when some shards are down. shard.Pool implements it.
type FanoutBatchServer interface {
	SecRecBatch(ctx context.Context, ts []*core.Trapdoor) (ids [][]uint64, encProfiles [][][]byte, partial bool, err error)
}

// DiscoverShardedBatch runs batched discovery against a sharded cloud
// tier: parallel trapdoor generation → one SecRecBatch call per shard →
// per-query decrypt/rank fanned out across CPUs. Result q is byte-identical
// to DiscoverSharded(ctx, pool, targets[q], k, excludeIDs[q]) over the same
// set of healthy shards; partial reports that one or more shards were
// skipped for the whole batch. excludeIDs may be nil, or aligned with
// targets (0 = no exclusion).
func (f *Frontend) DiscoverShardedBatch(ctx context.Context, pool FanoutBatchServer, targets [][]float64, k int, excludeIDs []uint64) ([][]Match, bool, error) {
	if len(targets) == 0 {
		return nil, false, fmt.Errorf("frontend: no targets")
	}
	if excludeIDs != nil && len(excludeIDs) != len(targets) {
		return nil, false, fmt.Errorf("frontend: %d targets but %d exclude ids", len(targets), len(excludeIDs))
	}
	var sp obs.Span
	sp.Start()
	tds, err := f.Trapdoors(targets)
	if err != nil {
		return nil, false, err
	}
	sp.Mark("trapdoor", fmet.trapdoorNs)
	ids, encProfiles, partial, err := pool.SecRecBatch(ctx, tds)
	if err != nil {
		return nil, false, fmt.Errorf("frontend: sharded batched discovery request: %w", err)
	}
	if len(ids) != len(targets) || len(encProfiles) != len(targets) {
		return nil, false, fmt.Errorf("frontend: batch of %d queries answered with %d results", len(targets), len(ids))
	}
	sp.Mark("fanout", fmet.fanoutNs)
	matches, err := f.rankBatch(targets, ids, encProfiles, k, excludeIDs)
	if err != nil {
		return nil, false, err
	}
	sp.Finish(fmet.batchNs)
	fmet.batches.Inc()
	if partial {
		fmet.partials.Inc()
	}
	return matches, partial, nil
}

// DynNode is the per-shard cloud surface sharded dynamic operations
// drive: the bucket store plus the encrypted-profile store. shard.Node
// implementations satisfy it.
type DynNode interface {
	core.BucketStore
	ProfileFetcher
	PutProfiles(profiles map[uint64][]byte) error
	DeleteProfile(id uint64) error
}

// DynSearchSharded fans a dynamic search across all shards concurrently:
// every shard's client searches its own bucket store, the matching
// encrypted profiles are fetched from that shard, and the merged
// candidates are distance-ranked. Shards that fail are skipped and the
// result is flagged partial; an error is returned only when every shard
// fails. shards[s] must pair with nodes[s].
func (f *Frontend) DynSearchSharded(shards []DynShard, nodes []DynNode, targetProfile []float64, k int, excludeID uint64) ([]Match, bool, error) {
	if len(shards) == 0 || len(shards) != len(nodes) {
		return nil, false, fmt.Errorf("frontend: %d shards but %d nodes", len(shards), len(nodes))
	}
	var sp obs.Span
	sp.Start()
	meta := f.family.Hash(targetProfile)
	type result struct {
		ids      []uint64
		profiles [][]byte
		err      error
	}
	results := make([]result, len(shards))
	var wg sync.WaitGroup
	for s := range shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := &results[s]
			ids, err := shards[s].Client.Search(nodes[s], meta)
			if err != nil {
				r.err = err
				return
			}
			r.ids = ids
			r.profiles, r.err = nodes[s].FetchProfiles(ids)
		}(s)
	}
	wg.Wait()

	var ids []uint64
	var encProfiles [][]byte
	var firstErr error
	failed := 0
	for s, r := range results {
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", s, r.err)
			}
			continue
		}
		ids = append(ids, r.ids...)
		encProfiles = append(encProfiles, r.profiles...)
	}
	if failed == len(shards) {
		return nil, false, fmt.Errorf("frontend: sharded dynamic search: all %d shards failed: %w", len(shards), firstErr)
	}
	matches, err := f.rank(targetProfile, ids, encProfiles, k, excludeID)
	if err != nil {
		return nil, false, err
	}
	sp.Finish(fmet.dynNs)
	if failed > 0 {
		fmet.partials.Inc()
	}
	return matches, failed > 0, nil
}

// DynInsertSharded routes a dynamic insertion to the owning shard: the
// shard's client runs the secure insert rounds against that shard's bucket
// store and the encrypted profile is uploaded to the same shard. The
// caller sees the shard's error directly — an unreachable owning shard
// fails the insert (there is no other shard that may hold the user).
func (f *Frontend) DynInsertSharded(shards []DynShard, nodes []DynNode, owner func(uint64) int, id uint64, profile []float64) error {
	s, err := routeShard(shards, nodes, owner, id)
	if err != nil {
		return err
	}
	ct, err := f.EncryptProfile(profile)
	if err != nil {
		return fmt.Errorf("frontend: encrypt profile %d: %w", id, err)
	}
	if err := shards[s].Client.Insert(nodes[s], id, f.family.Hash(profile)); err != nil {
		return fmt.Errorf("frontend: insert %d at shard %d: %w", id, s, err)
	}
	if err := nodes[s].PutProfiles(map[uint64][]byte{id: ct}); err != nil {
		return fmt.Errorf("frontend: upload profile %d to shard %d: %w", id, s, err)
	}
	return nil
}

// DynDeleteSharded routes a secure deletion to the owning shard and
// removes the user's encrypted profile there.
func (f *Frontend) DynDeleteSharded(shards []DynShard, nodes []DynNode, owner func(uint64) int, id uint64, profile []float64) error {
	s, err := routeShard(shards, nodes, owner, id)
	if err != nil {
		return err
	}
	if err := shards[s].Client.Delete(nodes[s], id, f.family.Hash(profile)); err != nil {
		return fmt.Errorf("frontend: delete %d at shard %d: %w", id, s, err)
	}
	if err := nodes[s].DeleteProfile(id); err != nil {
		return fmt.Errorf("frontend: remove profile %d at shard %d: %w", id, s, err)
	}
	return nil
}

// routeShard resolves the shard owning id and validates the pairing.
func routeShard(shards []DynShard, nodes []DynNode, owner func(uint64) int, id uint64) (int, error) {
	if len(shards) == 0 || len(shards) != len(nodes) {
		return 0, fmt.Errorf("frontend: %d shards but %d nodes", len(shards), len(nodes))
	}
	if owner == nil {
		owner = core.DefaultOwner(len(shards))
	}
	s := owner(id)
	if s < 0 || s >= len(shards) {
		return 0, fmt.Errorf("frontend: owner(%d) = %d out of range [0,%d)", id, s, len(shards))
	}
	if shards[s].Client == nil {
		return 0, errors.New("frontend: shard has no dynamic client")
	}
	return s, nil
}
