package frontend

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pisd/internal/core"
	"pisd/internal/lsh"
	"pisd/internal/obs"
	"pisd/internal/subs"
)

// ServingConfig tunes the multi-core serving path: batch coalescing,
// admission control and the search-pattern result cache.
type ServingConfig struct {
	// MaxBatch bounds how many coalesced queries share one SecRecBatch
	// flush; <= 0 defaults to 16.
	MaxBatch int
	// Window bounds how long a queued query waits for the next flush;
	// <= 0 defaults to 200µs.
	Window time.Duration
	// MaxInflight bounds admitted concurrent discoveries; excess calls
	// are rejected with ErrOverloaded. <= 0 means unbounded.
	MaxInflight int
	// CacheEntries bounds the result cache; <= 0 disables caching.
	CacheEntries int
}

// DefaultServingConfig returns the serving defaults: 16-query flushes, a
// 200µs coalescing window, 256 admitted queries and a 4096-entry cache.
func DefaultServingConfig() ServingConfig {
	return ServingConfig{
		MaxBatch:     16,
		Window:       200 * time.Microsecond,
		MaxInflight:  256,
		CacheEntries: 4096,
	}
}

// Serving is the static scheme's high-throughput discovery path: an
// admission gate in front of a trapdoor-keyed result cache in front of an
// adaptive batch coalescer over the shard fan-out. Concurrent Discover
// calls share SecRecBatch flushes; repeated search patterns are answered
// entirely at the frontend with zero cloud traffic (the cache key is the
// trapdoor the cloud would have seen — already-admitted leakage, DESIGN.md
// §15). Safe for concurrent use.
type Serving struct {
	f     *Frontend
	co    *Coalescer
	cache *ResultCache
	gate  *AdmissionGate
}

// NewServing builds the serving path over a sharded fan-out (shard.Pool
// implements FanoutBatchServer; wrap a single cloud server or transport
// client with SingleFanout).
func (f *Frontend) NewServing(pool FanoutBatchServer, cfg ServingConfig) (*Serving, error) {
	if pool == nil {
		return nil, fmt.Errorf("frontend: serving needs a fan-out server")
	}
	return &Serving{
		f:     f,
		co:    NewCoalescer(pool, cfg.MaxBatch, cfg.Window),
		cache: NewResultCache(cfg.CacheEntries),
		gate:  NewAdmissionGate(cfg.MaxInflight),
	}, nil
}

// Cache exposes the serving path's result cache (nil when disabled).
func (s *Serving) Cache() *ResultCache { return s.cache }

// Discover runs one discovery through the serving path: admission →
// trapdoor → cache → coalesced fan-out → decrypt → exact distance
// ranking. The matches are byte-identical to DiscoverSharded over the
// same healthy shards: a cache hit replays the exact candidate set the
// cloud returned for this trapdoor, and ranking is deterministic.
// Overload returns ErrOverloaded before any work is done.
func (s *Serving) Discover(ctx context.Context, targetProfile []float64, k int, excludeID uint64) ([]Match, bool, error) {
	if err := s.gate.Acquire(); err != nil {
		return nil, false, err
	}
	defer s.gate.Release()
	var sp obs.Span
	sp.Start()
	td, err := s.f.Trapdoor(targetProfile)
	if err != nil {
		return nil, false, err
	}
	sp.Mark("trapdoor", fmet.trapdoorNs)
	key := trapdoorKey(td)
	if ids, vecs, ok := s.cache.Get(key); ok {
		fmet.cacheHits.Inc()
		matches, err := s.f.rankPlain(targetProfile, ids, vecs, k, excludeID, &sp)
		if err != nil {
			return nil, false, err
		}
		sp.Finish(fmet.discoverNs)
		fmet.discoveries.Inc()
		return matches, false, nil
	}
	fmet.cacheMisses.Inc()
	ids, encProfiles, partial, err := s.co.SecRec(ctx, td)
	if err != nil {
		return nil, false, fmt.Errorf("frontend: serving discovery request: %w", err)
	}
	sp.Mark("fanout", fmet.fanoutNs)
	vecs, err := s.f.decryptProfiles(ids, encProfiles)
	if err != nil {
		return nil, false, err
	}
	if !partial {
		// Partial answers are never cached: a recovered shard must not be
		// masked by a degraded cached result.
		s.cache.Put(key, nil, ids, vecs)
	}
	matches, err := s.f.rankPlain(targetProfile, ids, vecs, k, excludeID, &sp)
	if err != nil {
		return nil, false, err
	}
	sp.Finish(fmet.discoverNs)
	fmet.discoveries.Inc()
	if partial {
		fmet.partials.Inc()
	}
	return matches, partial, nil
}

// SingleFanout adapts a single-node batch server (cloud.Server or a
// transport.Client) to the FanoutBatchServer surface the serving path
// drives: no shards means never partial.
type SingleFanout struct {
	S BatchDiscoveryServer
}

// SecRecBatch implements FanoutBatchServer.
func (a SingleFanout) SecRecBatch(_ context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, bool, error) {
	ids, profiles, err := a.S.SecRecBatch(ts)
	return ids, profiles, false, err
}

// DynServing is the dynamic scheme's cached serving path: searches are
// cached keyed on the bucket references the cloud observes, and every
// insert/delete invalidates exactly the entries whose read set intersects
// the buckets it re-seals. The invalidation hook rides StoreBuckets —
// every round of the dynamic protocols (including each kick of an insert
// chain) re-seals its full fetched batch through it, so no mutated bucket
// escapes the hook. Safe for concurrent use; mutations serialize against
// searches so a search result can never be cached after the update that
// outdates it.
type DynServing struct {
	f      *Frontend
	shards []DynShard
	nodes  []DynNode
	owner  func(uint64) int
	cache  *ResultCache
	gate   *AdmissionGate

	// subsm is the attached subscription manager (nil when the serving
	// path runs without standing queries); its hooks run under churn,
	// after the mutation they evaluate succeeded.
	subsm *subs.Manager

	// churn serializes mutations (write side) against search+cache-fill
	// (read side): without it a slow search could fetch buckets, lose the
	// race to an insert, then cache the pre-insert answer after the
	// insert's invalidation pass already ran.
	churn sync.RWMutex
}

// NewDynServing builds the cached dynamic serving path. shards[s] must
// pair with nodes[s]; a nil owner means core.DefaultOwner.
func (f *Frontend) NewDynServing(shards []DynShard, nodes []DynNode, owner func(uint64) int, cfg ServingConfig) (*DynServing, error) {
	if len(shards) == 0 || len(shards) != len(nodes) {
		return nil, fmt.Errorf("frontend: %d shards but %d nodes", len(shards), len(nodes))
	}
	if owner == nil {
		owner = core.DefaultOwner(len(shards))
	}
	return &DynServing{
		f:      f,
		shards: shards,
		nodes:  nodes,
		owner:  owner,
		cache:  NewResultCache(cfg.CacheEntries),
		gate:   NewAdmissionGate(cfg.MaxInflight),
	}, nil
}

// Cache exposes the dynamic serving path's result cache (nil when
// disabled).
func (s *DynServing) Cache() *ResultCache { return s.cache }

// Search runs one cached dynamic discovery. A hit replays the merged
// candidate set of the last identical search with zero cloud traffic;
// the result matches DynSearchSharded exactly as long as no intervening
// update touched the addressed buckets — which the invalidation hook
// guarantees.
func (s *DynServing) Search(targetProfile []float64, k int, excludeID uint64) ([]Match, bool, error) {
	if err := s.gate.Acquire(); err != nil {
		return nil, false, err
	}
	defer s.gate.Release()
	s.churn.RLock()
	defer s.churn.RUnlock()
	meta := s.f.family.Hash(targetProfile)
	refs, err := s.shards[0].Client.Refs(meta)
	if err != nil {
		return nil, false, err
	}
	key := refsKey(refs)
	if ids, vecs, ok := s.cache.Get(key); ok {
		fmet.cacheHits.Inc()
		matches, err := s.f.rankPlain(targetProfile, ids, vecs, k, excludeID, nil)
		return matches, false, err
	}
	fmet.cacheMisses.Inc()
	ids, encProfiles, partial, err := s.f.dynSearchMerged(s.shards, s.nodes, meta)
	if err != nil {
		return nil, false, err
	}
	vecs, err := s.f.decryptProfiles(ids, encProfiles)
	if err != nil {
		return nil, false, err
	}
	if !partial {
		s.cache.Put(key, refs, ids, vecs)
	}
	matches, err := s.f.rankPlain(targetProfile, ids, vecs, k, excludeID, nil)
	if err != nil {
		return nil, false, err
	}
	if partial {
		fmet.partials.Inc()
	}
	return matches, partial, nil
}

// Insert routes a dynamic insertion to the owning shard with the cache
// invalidation hook installed on that shard's bucket store. After the
// insert succeeds, attached subscriptions are evaluated against the new
// profile frontend-side — zero additional cloud operations (§18).
func (s *DynServing) Insert(id uint64, profile []float64) error {
	s.churn.Lock()
	defer s.churn.Unlock()
	if err := s.f.DynInsertSharded(s.shards, s.invalidatingNodes(), s.owner, id, profile); err != nil {
		return err
	}
	s.notifyInsert(id, profile)
	return nil
}

// Delete routes a secure deletion to the owning shard with the cache
// invalidation hook installed on that shard's bucket store. After the
// delete succeeds, the profile is evicted from every attached standing
// result, promoting runners-up.
func (s *DynServing) Delete(id uint64, profile []float64) error {
	s.churn.Lock()
	defer s.churn.Unlock()
	if err := s.f.DynDeleteSharded(s.shards, s.invalidatingNodes(), s.owner, id, profile); err != nil {
		return err
	}
	s.notifyDelete(id)
	return nil
}

// invalidatingNodes wraps every node so StoreBuckets invalidates the
// cache entries whose read set intersects the written refs.
func (s *DynServing) invalidatingNodes() []DynNode {
	out := make([]DynNode, len(s.nodes))
	for i, n := range s.nodes {
		out[i] = invalidatingNode{DynNode: n, cache: s.cache}
	}
	return out
}

// invalidatingNode decorates a DynNode: every bucket write first drops
// the cache entries it outdates.
type invalidatingNode struct {
	DynNode
	cache *ResultCache
}

func (n invalidatingNode) StoreBuckets(refs []core.BucketRef, buckets []core.DynBucket) error {
	n.cache.InvalidateRefs(refs)
	return n.DynNode.StoreBuckets(refs, buckets)
}

// dynSearchMerged is DynSearchSharded up to (but not including) ranking:
// it returns the merged candidate ids and encrypted profiles, which is
// the cacheable unit (one entry serves every k and excludeID).
func (f *Frontend) dynSearchMerged(shards []DynShard, nodes []DynNode, meta lsh.Metadata) (ids []uint64, encProfiles [][]byte, partial bool, err error) {
	type result struct {
		ids      []uint64
		profiles [][]byte
		err      error
	}
	results := make([]result, len(shards))
	var wg sync.WaitGroup
	for s := range shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := &results[s]
			sids, err := shards[s].Client.Search(nodes[s], meta)
			if err != nil {
				r.err = err
				return
			}
			r.ids = sids
			r.profiles, r.err = nodes[s].FetchProfiles(sids)
		}(s)
	}
	wg.Wait()

	var firstErr error
	failed := 0
	for s, r := range results {
		if r.err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("shard %d: %w", s, r.err)
			}
			continue
		}
		ids = append(ids, r.ids...)
		encProfiles = append(encProfiles, r.profiles...)
	}
	if failed == len(shards) {
		return nil, nil, false, fmt.Errorf("frontend: sharded dynamic search: all %d shards failed: %w", len(shards), firstErr)
	}
	return ids, encProfiles, failed > 0, nil
}
