package frontend

import (
	"context"
	"testing"

	"pisd/internal/cloud"
	"pisd/internal/core"
)

// TestOracleMatchesDiscoverExactly pins the oracle to the real pipeline on
// a healthy single node: for every query, Discover through a cloud server
// and the plaintext oracle must return byte-identical rankings.
func TestOracleMatchesDiscoverExactly(t *testing.T) {
	const n = 300
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	uploads := uploadsFrom(ds, f)
	idx, encProfiles, err := f.BuildIndex(uploads)
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)
	oracle, err := f.BuildOracle(uploads)
	if err != nil {
		t.Fatalf("BuildOracle: %v", err)
	}

	for q := 0; q < 40; q++ {
		target := ds.Profiles[q%n]
		exclude := uint64(q%n + 1)
		got, err := f.Discover(cs, target, 7, exclude)
		if err != nil {
			t.Fatal(err)
		}
		want := oracle.Discover(target, 7, exclude)
		if err := EqualMatches(got, want); err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
	}

	// Profile deletion narrows both the pipeline and the oracle the same
	// way: the cloud skips identifiers without profiles.
	victim := uint64(1)
	cs.DeleteProfile(victim)
	oracle.RemoveProfile(victim)
	got, err := f.Discover(cs, ds.Profiles[0], 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		if m.ID == victim {
			t.Fatalf("deleted user %d still recommended", victim)
		}
	}
	if err := EqualMatches(got, oracle.Discover(ds.Profiles[0], 7, 0)); err != nil {
		t.Fatalf("after delete: %v", err)
	}
}

// TestOracleMatchesShardedPartialSubsets checks DiscoverOwned against real
// partial deployments: serving only a subset of shards must equal the
// oracle restricted to that subset's users.
func TestOracleMatchesShardedPartialSubsets(t *testing.T) {
	const n, shards = 240, 3
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	uploads := uploadsFrom(ds, f)
	built, err := f.BuildShardedIndex(uploads, shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := f.BuildOracle(uploads)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*cloud.Server, shards)
	for s := range nodes {
		nodes[s] = cloud.New()
		nodes[s].SetIndex(built[s].Index)
		nodes[s].PutProfiles(built[s].EncProfiles)
	}

	// subsetPool serves SecRec from an arbitrary alive-set of local
	// shards, merging shard-major like shard.Pool does.
	for mask := 1; mask < 1<<shards; mask++ {
		alive := func(id uint64) bool { return mask&(1<<(id%shards)) != 0 }
		pool := subsetPool{nodes: nodes, mask: mask}
		for q := 0; q < 10; q++ {
			target := ds.Profiles[(mask*13+q)%n]
			got, _, err := f.DiscoverSharded(context.Background(), pool, target, 6, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle.DiscoverOwned(target, 6, 0, alive)
			if err := EqualMatches(got, want); err != nil {
				t.Fatalf("mask %b query %d: %v", mask, q, err)
			}
		}
	}
}

type subsetPool struct {
	nodes []*cloud.Server
	mask  int
}

func (p subsetPool) SecRec(ctx context.Context, td *core.Trapdoor) ([]uint64, [][]byte, bool, error) {
	var ids []uint64
	var profiles [][]byte
	for s, node := range p.nodes {
		if p.mask&(1<<s) == 0 {
			continue
		}
		sids, sprofiles, err := node.SecRec(td)
		if err != nil {
			return nil, nil, false, err
		}
		ids = append(ids, sids...)
		profiles = append(profiles, sprofiles...)
	}
	return ids, profiles, p.mask != 1<<len(p.nodes)-1, nil
}
