package frontend

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS workers and
// returns the first error any call produced (later iterations still run;
// per-item work is independent). With one usable CPU or tiny n it degrades
// to a plain loop, so single-core deployments pay no goroutine overhead.
//
// fn must be safe to call concurrently for distinct i; writes must go to
// per-index slots (a slice cell), never to shared state.
func parallelFor(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var firstErr error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	var (
		next    atomic.Int64
		errOnce sync.Once
		wg      sync.WaitGroup
		retErr  error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { retErr = err })
				}
			}
		}()
	}
	wg.Wait()
	return retErr
}
