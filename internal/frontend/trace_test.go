package frontend

import (
	"testing"

	"pisd/internal/cloud"
	"pisd/internal/obs"
)

// TestDiscoverTraced checks that a traced discovery records the four
// stages in order and feeds the frontend stage histograms.
func TestDiscoverTraced(t *testing.T) {
	const n = 200
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	idx, encProfiles, err := f.BuildIndex(uploadsFrom(ds, f))
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	before := obs.Default.Snapshot()
	matches, tr, err := f.DiscoverTraced(cs, ds.Profiles[7], 5, 0)
	if err != nil {
		t.Fatalf("DiscoverTraced: %v", err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	want := []string{"trapdoor", "fanout", "decrypt", "rank"}
	if len(tr.Stages) != len(want) {
		t.Fatalf("trace has %d stages (%v), want %v", len(tr.Stages), tr.String(), want)
	}
	var sum int64
	for i, st := range tr.Stages {
		if st.Name != want[i] {
			t.Errorf("stage %d = %q, want %q", i, st.Name, want[i])
		}
		if st.Dur < 0 {
			t.Errorf("stage %q has negative duration", st.Name)
		}
		sum += st.Dur.Nanoseconds()
	}
	if tr.Total <= 0 || tr.Total.Nanoseconds() < sum {
		t.Errorf("trace total %v shorter than stage sum %dns", tr.Total, sum)
	}

	d := obs.Default.Snapshot().Diff(before)
	for _, h := range []string{"frontend.trapdoor", "frontend.fanout", "frontend.decrypt", "frontend.rank", "frontend.discover", "cloud.secrec"} {
		if d.Histograms[h].Count < 1 {
			t.Errorf("histogram %s not fed by traced discovery", h)
		}
	}
	if d.Counters["frontend.discoveries"] < 1 {
		t.Error("frontend.discoveries not incremented")
	}
}
