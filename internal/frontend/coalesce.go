package frontend

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pisd/internal/core"
)

// Coalescer folds concurrent single-query SecRec calls into shared
// SecRecBatch fan-outs, so independent Discover callers amortize the
// one-RPC-per-shard exchange that explicit batches already enjoy. It
// implements FanoutServer over a FanoutBatchServer and is adaptive:
//
//   - A call arriving at an idle coalescer dispatches immediately as a
//     batch of one — a lone lockstep caller never pays the window.
//   - Calls arriving while a flush is in flight buffer; they dispatch as
//     one batch the moment the in-flight flush completes, when the batch
//     bound is reached, or at the latest when the window timer fires.
//
// Under concurrency the pipeline therefore stays continuously full with
// naturally-sized batches; the microsecond-scale window only bounds the
// wait of stragglers. Query q of a coalesced flush is byte-identical to
// what SecRec would have returned alone over the same healthy shards
// (the pool's SecRecBatch contract).
//
// A flush runs under context.Background(): batches are shared, so one
// caller's cancellation must not abort its neighbours. A caller whose own
// ctx expires stops waiting (its slot's result is discarded), but the
// underlying fan-out still bounds every leg with the pool's per-attempt
// deadline.
type Coalescer struct {
	batch    FanoutBatchServer
	maxBatch int
	window   time.Duration

	mu       sync.Mutex
	pending  []*coalesceCall
	timer    *time.Timer
	inflight int // dispatched flushes not yet completed
}

type coalesceResult struct {
	ids      []uint64
	profiles [][]byte
	partial  bool
	err      error
}

type coalesceCall struct {
	t    *core.Trapdoor
	done chan coalesceResult // buffered: flush never blocks on a gone caller
}

// NewCoalescer builds a coalescer over batch. maxBatch <= 0 defaults to
// 16 queries per flush; window <= 0 defaults to 200µs.
func NewCoalescer(batch FanoutBatchServer, maxBatch int, window time.Duration) *Coalescer {
	if maxBatch <= 0 {
		maxBatch = 16
	}
	if window <= 0 {
		window = 200 * time.Microsecond
	}
	return &Coalescer{batch: batch, maxBatch: maxBatch, window: window}
}

// SecRec implements FanoutServer by riding a coalesced SecRecBatch flush.
func (co *Coalescer) SecRec(ctx context.Context, t *core.Trapdoor) (ids []uint64, encProfiles [][]byte, partial bool, err error) {
	call := &coalesceCall{t: t, done: make(chan coalesceResult, 1)}
	co.mu.Lock()
	switch {
	case co.inflight == 0 && len(co.pending) == 0:
		// Idle: dispatch solo, no window latency.
		co.inflight++
		co.mu.Unlock()
		co.dispatch([]*coalesceCall{call})
	default:
		co.pending = append(co.pending, call)
		fmet.coalesceQueue.Set(int64(len(co.pending)))
		if len(co.pending) >= co.maxBatch {
			calls := co.takeLocked()
			co.inflight++
			co.mu.Unlock()
			go co.dispatch(calls)
		} else {
			if co.timer == nil {
				co.timer = time.AfterFunc(co.window, co.flushWindow)
			}
			co.mu.Unlock()
		}
	}
	select {
	case r := <-call.done:
		return r.ids, r.profiles, r.partial, r.err
	case <-ctx.Done():
		return nil, nil, false, ctx.Err()
	}
}

// takeLocked claims the pending queue for one flush. co.mu must be held.
func (co *Coalescer) takeLocked() []*coalesceCall {
	calls := co.pending
	co.pending = nil
	fmet.coalesceQueue.Set(0)
	if co.timer != nil {
		co.timer.Stop()
		co.timer = nil
	}
	return calls
}

// flushWindow fires when the window timer expires with calls still queued.
func (co *Coalescer) flushWindow() {
	co.mu.Lock()
	co.timer = nil
	if len(co.pending) == 0 {
		co.mu.Unlock()
		return
	}
	calls := co.takeLocked()
	co.inflight++
	co.mu.Unlock()
	co.dispatch(calls)
}

// dispatch runs one flush, distributes per-query results, then drains any
// queue that accumulated while the flush was in flight.
func (co *Coalescer) dispatch(calls []*coalesceCall) {
	ts := make([]*core.Trapdoor, len(calls))
	for i, c := range calls {
		ts[i] = c.t
	}
	fmet.coalesceFlushes.Inc()
	fmet.coalesceBatch.Observe(int64(len(calls)))
	ids, profiles, partial, err := co.batch.SecRecBatch(context.Background(), ts)
	if err == nil && (len(ids) != len(calls) || len(profiles) != len(calls)) {
		err = fmt.Errorf("frontend: coalesced batch of %d queries answered with %d results", len(calls), len(ids))
	}
	for i, c := range calls {
		if err != nil {
			c.done <- coalesceResult{err: err}
			continue
		}
		c.done <- coalesceResult{ids: ids[i], profiles: profiles[i], partial: partial}
	}
	co.mu.Lock()
	co.inflight--
	var next []*coalesceCall
	if co.inflight == 0 && len(co.pending) > 0 {
		next = co.takeLocked()
		co.inflight++
	}
	co.mu.Unlock()
	if next != nil {
		go co.dispatch(next)
	}
}
