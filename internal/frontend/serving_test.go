package frontend

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/faultnet"
	"pisd/internal/shard"
	"pisd/internal/transport"
)

// servingFixture builds a 2-shard local deployment and returns the
// frontend, dataset, uploads and the shard pool.
func servingFixture(t *testing.T, n int) (*Frontend, []Upload, *shard.Pool, [][]float64) {
	t.Helper()
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	ups := uploadsFrom(ds, f)
	shards, err := f.BuildShardedIndex(ups, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]shard.Node, len(shards))
	for s := range nodes {
		nodes[s] = shard.NewLocal(cloud.New())
	}
	pool, err := shard.NewPool(shard.DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatal(err)
		}
	}
	return f, ups, pool, ds.Profiles
}

// TestServingCoalescerEquivalence is the coalescer's headline contract:
// concurrent Discover calls folded into shared SecRecBatch flushes return
// byte-identical matches to serial DiscoverSharded. Runs with the cache
// disabled so every call actually rides a flush; `go test -race` makes
// this double as the coalescer's concurrency check.
func TestServingCoalescerEquivalence(t *testing.T) {
	const n, k, queries = 400, 7, 24
	f, _, pool, profiles := servingFixture(t, n)

	targets := make([][]float64, queries)
	excludes := make([]uint64, queries)
	for i := range targets {
		id := uint64(i*16 + 1)
		targets[i] = profiles[id-1]
		excludes[i] = id
	}
	want := make([][]Match, queries)
	for i := range targets {
		m, partial, err := f.DiscoverSharded(context.Background(), pool, targets[i], k, excludes[i])
		if err != nil || partial {
			t.Fatalf("serial discover %d: partial=%v err=%v", i, partial, err)
		}
		want[i] = m
	}

	serving, err := f.NewServing(pool, ServingConfig{MaxBatch: 8, Window: 100 * time.Microsecond, CacheEntries: 0})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got := make([][]Match, queries)
		errs := make([]error, queries)
		var wg sync.WaitGroup
		for i := range targets {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				m, partial, err := serving.Discover(context.Background(), targets[i], k, excludes[i])
				if err == nil && partial {
					err = errors.New("partial result with all shards alive")
				}
				got[i], errs[i] = m, err
			}(i)
		}
		wg.Wait()
		for i := range targets {
			if errs[i] != nil {
				t.Fatalf("round %d query %d: %v", round, i, errs[i])
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("round %d query %d: coalesced result diverged from serial:\n got %v\nwant %v",
					round, i, got[i], want[i])
			}
		}
	}
}

// TestServingCoalescerEquivalenceFaultyLatency repeats the equivalence
// check over real TCP transports whose reads suffer seeded injected
// latency: slow shards delay coalesced flushes but must not change a
// single byte of any result, and latency alone must never flag partial.
func TestServingCoalescerEquivalenceFaultyLatency(t *testing.T) {
	const n, k, queries = 240, 5, 10
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	ups := uploadsFrom(ds, f)
	shards, err := f.BuildShardedIndex(ups, 2, nil)
	if err != nil {
		t.Fatal(err)
	}

	fn := faultnet.New(faultnet.Plan{
		Seed:           13,
		ReadFaultBytes: 4096,
		ReadLatency:    2 * time.Millisecond,
	})
	nodes := make([]shard.Node, len(shards))
	for s := range nodes {
		srv := transport.NewServer(cloud.New())
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Serve(fn.WrapListener(fmt.Sprintf("server%d", s), ln)); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		r := shard.NewRemoteDialer(ln.Addr().String(), fn.Dialer(fmt.Sprintf("client%d", s)))
		r.SetConns(2)
		t.Cleanup(func() { r.Close() })
		nodes[s] = r
	}
	pool, err := shard.NewPool(shard.DefaultConfig(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	fn.SetEnabled(false) // clean install phase
	for s, sh := range shards {
		if err := pool.InstallShard(s, sh.Index, sh.EncProfiles); err != nil {
			t.Fatal(err)
		}
	}

	targets, _ := ds.Queries(queries, 3)
	want := make([][]Match, queries)
	for i, q := range targets {
		m, partial, err := f.DiscoverSharded(context.Background(), pool, q, k, 0)
		if err != nil || partial {
			t.Fatalf("clean serial discover %d: partial=%v err=%v", i, partial, err)
		}
		want[i] = m
	}

	fn.SetEnabled(true) // latency on for the coalesced run
	serving, err := f.NewServing(pool, ServingConfig{MaxBatch: 4, Window: 200 * time.Microsecond, CacheEntries: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]Match, queries)
	errs := make([]error, queries)
	var wg sync.WaitGroup
	for i := range targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, partial, err := serving.Discover(context.Background(), targets[i], k, 0)
			if err == nil && partial {
				err = errors.New("latency alone flagged a partial result")
			}
			got[i], errs[i] = m, err
		}(i)
	}
	wg.Wait()
	for i := range targets {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("query %d: result diverged under injected latency", i)
		}
	}
}

// countingFanout counts SecRecBatch flushes and queries reaching the
// cloud tier.
type countingFanout struct {
	inner   FanoutBatchServer
	flushes atomic.Int64
	queries atomic.Int64
}

func (c *countingFanout) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, bool, error) {
	c.flushes.Add(1)
	c.queries.Add(int64(len(ts)))
	return c.inner.SecRecBatch(ctx, ts)
}

// TestServingCacheSkipsCloud pins the cache's core property: a repeated
// search pattern is answered with ZERO queries reaching the cloud tier,
// and byte-identical matches.
func TestServingCacheSkipsCloud(t *testing.T) {
	const n, k = 400, 5
	f, _, pool, profiles := servingFixture(t, n)
	cf := &countingFanout{inner: pool}
	serving, err := f.NewServing(cf, ServingConfig{CacheEntries: 16})
	if err != nil {
		t.Fatal(err)
	}

	first, partial, err := serving.Discover(context.Background(), profiles[0], k, 1)
	if err != nil || partial {
		t.Fatalf("first discover: partial=%v err=%v", partial, err)
	}
	if got := cf.queries.Load(); got != 1 {
		t.Fatalf("first discover reached the cloud %d times, want 1", got)
	}
	second, partial, err := serving.Discover(context.Background(), profiles[0], k, 1)
	if err != nil || partial {
		t.Fatalf("second discover: partial=%v err=%v", partial, err)
	}
	if got := cf.queries.Load(); got != 1 {
		t.Fatalf("cache hit reached the cloud: %d queries, want 1", got)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result diverged:\n got %v\nwant %v", second, first)
	}
	// Different k over the same pattern still hits (the cache stores the
	// pre-rank candidate set).
	if _, _, err := serving.Discover(context.Background(), profiles[0], k+3, 1); err != nil {
		t.Fatal(err)
	}
	if got := cf.queries.Load(); got != 1 {
		t.Fatalf("k-variant over cached pattern reached the cloud: %d queries, want 1", got)
	}
	// A different target misses.
	if _, _, err := serving.Discover(context.Background(), profiles[9], k, 10); err != nil {
		t.Fatal(err)
	}
	if got := cf.queries.Load(); got != 2 {
		t.Fatalf("distinct pattern should miss: %d queries, want 2", got)
	}
}

// blockingFanout parks every flush until released.
type blockingFanout struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingFanout) SecRecBatch(ctx context.Context, ts []*core.Trapdoor) ([][]uint64, [][][]byte, bool, error) {
	b.entered <- struct{}{}
	<-b.release
	return make([][]uint64, len(ts)), make([][][]byte, len(ts)), false, nil
}

// TestServingAdmissionRejects pins the backpressure contract: once
// MaxInflight discoveries are admitted, the next call fails fast with
// ErrOverloaded instead of queueing, and admitted calls complete
// unharmed.
func TestServingAdmissionRejects(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, 120)
	if _, err := f.BuildShardedIndex(uploadsFrom(ds, f), 1, nil); err != nil {
		t.Fatal(err)
	}
	bf := &blockingFanout{entered: make(chan struct{}, 4), release: make(chan struct{})}
	serving, err := f.NewServing(bf, ServingConfig{MaxInflight: 2, CacheEntries: 0})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = serving.Discover(context.Background(), ds.Profiles[i], 3, 0)
		}(i)
	}
	// Wait until both admitted calls are parked inside the fan-out.
	<-bf.entered
	<-bf.entered

	if _, _, err := serving.Discover(context.Background(), ds.Profiles[5], 3, 0); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third concurrent discover: got %v, want ErrOverloaded", err)
	}

	close(bf.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("admitted discover %d failed: %v", i, err)
		}
	}
	// Slots returned: the gate admits again.
	if _, _, err := serving.Discover(context.Background(), ds.Profiles[6], 3, 0); err != nil {
		t.Fatalf("discover after release: %v", err)
	}
}
