package frontend

import (
	"fmt"
	"sort"
	"sync"

	"pisd/internal/core"
	"pisd/internal/subs"
	"pisd/internal/vec"
)

// SubOracle is the plaintext reference for streaming subscriptions: it
// maintains every standing top-k set under the same churn script the
// encrypted serving path executes, entirely from plaintext profiles and
// forked dynamic clients (so the foreground clients' randomness streams
// are untouched), and predicts the exact notification sequence — entering
// id, distance, evicted id, promotion flag — every mutation must emit.
// Any divergence between the serving path's notifications and the
// oracle's is a bug in the subscription plumbing (matching, routing,
// batching, locking or failover), never an approximation artifact.
//
// The oracle mirrors the serving path's deterministic transition rules:
// candidates ordered by (distance, id); entries notified in that order;
// concurrent evictions paired positionally by ascending id; an entry
// caused by a delete or re-score is flagged promoted. Sequence numbers
// are the one field left unmirrored — they order the global emission
// stream, which interleaving-dependent schedules may permute.
type SubOracle struct {
	f       *Frontend
	owner   func(uint64) int
	clients []*core.DynClient

	mu       sync.Mutex
	profiles map[uint64][]float64
	subs     map[uint64]*oracleSub
}

// oracleSub is one standing query's plaintext state.
type oracleSub struct {
	id      uint64
	k       int
	exclude uint64
	target  []float64
	refs    map[subs.Ref]bool
	cands   map[uint64]float64
	top     map[uint64]bool
}

// NewSubOracle builds a subscription oracle over the same sharded
// deployment the serving path drives: one forked client per shard (for
// reference-set computation under each shard's geometry) and the routing
// function mutations use. A nil owner means core.DefaultOwner.
func (f *Frontend) NewSubOracle(shards []DynShard, owner func(uint64) int) (*SubOracle, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("frontend: subscription oracle needs shards")
	}
	if owner == nil {
		owner = core.DefaultOwner(len(shards))
	}
	clients := make([]*core.DynClient, len(shards))
	for s := range shards {
		c, err := shards[s].Client.Fork()
		if err != nil {
			return nil, fmt.Errorf("frontend: fork shard %d client: %w", s, err)
		}
		clients[s] = c
	}
	return &SubOracle{
		f:        f,
		owner:    owner,
		clients:  clients,
		profiles: make(map[uint64][]float64),
		subs:     make(map[uint64]*oracleSub),
	}, nil
}

// PutProfile records a pre-existing user (index build time).
func (o *SubOracle) PutProfile(id uint64, profile []float64) {
	o.mu.Lock()
	o.profiles[id] = profile
	o.mu.Unlock()
}

// Register mirrors DynServing.Subscribe: the standing read set is
// recomputed independently on every shard's forked client, and the seed
// candidates — the ids the serving path's registration search returned —
// are distance-scored against the oracle's plaintext store. Seeding emits
// no notifications; the initial standing result is returned for direct
// comparison. An unknown seed id is an error: the encrypted search
// produced an identifier the oracle never saw.
func (o *SubOracle) Register(subID uint64, k int, target []float64, seedIDs []uint64) ([]subs.Entry, error) {
	meta := o.f.family.Hash(target)
	refs := make(map[subs.Ref]bool)
	for sh, c := range o.clients {
		rs, err := c.Refs(meta)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			refs[subs.Ref{Shard: sh, Table: r.Table, Pos: r.Pos}] = true
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.subs[subID]; ok {
		return nil, fmt.Errorf("frontend: oracle subscription %d already registered", subID)
	}
	s := &oracleSub{
		id:      subID,
		k:       k,
		exclude: subID,
		target:  append([]float64(nil), target...),
		refs:    refs,
		cands:   make(map[uint64]float64),
	}
	for _, id := range seedIDs {
		if id == subID {
			continue
		}
		p, ok := o.profiles[id]
		if !ok {
			return nil, fmt.Errorf("frontend: oracle has no profile for seed candidate %d", id)
		}
		s.cands[id] = vec.Distance(target, p)
	}
	s.top = s.topSet()
	o.subs[subID] = s
	return s.entries(), nil
}

// Unsubscribe mirrors DynServing.Unsubscribe.
func (o *SubOracle) Unsubscribe(subID uint64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.subs[subID]; !ok {
		return false
	}
	delete(o.subs, subID)
	return true
}

// Insert applies one successful insert and returns the notifications the
// serving path must emit for it, in emission order.
func (o *SubOracle) Insert(id uint64, profile []float64) ([]subs.Notification, error) {
	sh := o.owner(id) % len(o.clients)
	if sh < 0 {
		sh += len(o.clients)
	}
	rs, err := o.clients[sh].Refs(o.f.family.Hash(profile))
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.profiles[id] = profile
	var out []subs.Notification
	for _, s := range o.sorted() {
		if id == s.id || id == s.exclude {
			continue
		}
		hit := false
		for _, r := range rs {
			if s.refs[subs.Ref{Shard: sh, Table: r.Table, Pos: r.Pos}] {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		if _, ok := s.cands[id]; ok {
			continue
		}
		s.cands[id] = vec.Distance(s.target, profile)
		out = append(out, s.retop(false)...)
	}
	return out, nil
}

// Delete applies one successful delete and returns the promotion
// notifications the serving path must emit for it.
func (o *SubOracle) Delete(id uint64) []subs.Notification {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.profiles, id)
	var out []subs.Notification
	for _, s := range o.sorted() {
		if _, ok := s.cands[id]; !ok {
			continue
		}
		delete(s.cands, id)
		delete(s.top, id)
		out = append(out, s.retop(true)...)
	}
	return out
}

// TopK returns subID's standing result, ascending by (distance, id).
func (o *SubOracle) TopK(subID uint64) ([]subs.Entry, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.subs[subID]
	if !ok {
		return nil, false
	}
	return s.entries(), true
}

// SubIDs returns the live subscription ids, ascending.
func (o *SubOracle) SubIDs() []uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]uint64, 0, len(o.subs))
	for id := range o.subs {
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (o *SubOracle) sorted() []*oracleSub {
	out := make([]*oracleSub, 0, len(o.subs))
	for _, s := range o.subs {
		out = append(out, s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

func (s *oracleSub) topSet() map[uint64]bool {
	ids := make([]uint64, 0, len(s.cands))
	for id := range s.cands {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := s.cands[ids[a]], s.cands[ids[b]]
		if da != db {
			return da < db
		}
		return ids[a] < ids[b]
	})
	if len(ids) > s.k {
		ids = ids[:s.k]
	}
	top := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		top[id] = true
	}
	return top
}

func (s *oracleSub) entries() []subs.Entry {
	out := make([]subs.Entry, 0, len(s.top))
	for id := range s.top {
		out = append(out, subs.Entry{ID: id, Distance: s.cands[id]})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// retop recomputes the standing set and returns the expected
// notifications: entries in (distance, id) order, evictions paired
// positionally in ascending-id order — the serving path's exact rule.
func (s *oracleSub) retop(promoted bool) []subs.Notification {
	next := s.topSet()
	var entered, evicted []uint64
	for id := range next {
		if !s.top[id] {
			entered = append(entered, id)
		}
	}
	for id := range s.top {
		if !next[id] {
			evicted = append(evicted, id)
		}
	}
	s.top = next
	if len(entered) == 0 {
		return nil
	}
	sort.Slice(entered, func(a, b int) bool {
		da, db := s.cands[entered[a]], s.cands[entered[b]]
		if da != db {
			return da < db
		}
		return entered[a] < entered[b]
	})
	sort.Slice(evicted, func(a, b int) bool { return evicted[a] < evicted[b] })
	out := make([]subs.Notification, 0, len(entered))
	for i, id := range entered {
		n := subs.Notification{
			SubID:    s.id,
			ID:       id,
			Distance: s.cands[id],
			Promoted: promoted,
		}
		if i < len(evicted) {
			n.EvictedID = evicted[i]
		}
		out = append(out, n)
	}
	return out
}
