package frontend

import (
	"testing"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/crypt"
	"pisd/internal/segstore"
)

// TestStreamingBuildMatchesMonolithic pins the contract that makes
// -attach work: a SegmentBuilder fed the population in batches derives
// its index parameters from (config, n) alone, so a one-shot core.Build
// over the same metadata with those parameters — and a restarted front
// end that only knows n and the keys — agree with the segmented store
// exactly.
func TestStreamingBuildMatchesMonolithic(t *testing.T) {
	const n, batch = 600, 150
	cfg := testConfig()
	ds := testPopulation(t, n)

	streamer, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keyBlob, err := streamer.ExportKeys()
	if err != nil {
		t.Fatal(err)
	}
	uploads := uploadsFrom(ds, streamer)
	dir := t.TempDir()
	sb, err := streamer.NewSegmentBuilder(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < n; lo += batch {
		cts, err := sb.AddUploads(uploads[lo:min(lo+batch, n)])
		if err != nil {
			t.Fatal(err)
		}
		if len(cts) != min(batch, n-lo) {
			t.Fatalf("batch at %d: %d ciphertexts", lo, len(cts))
		}
	}
	if _, err := sb.Finish(); err != nil {
		t.Fatal(err)
	}
	streamParams, err := streamer.IndexParams()
	if err != nil {
		t.Fatal(err)
	}

	// Monolithic comparison: one-shot build from the same metadata under
	// the same keys and parameters.
	keys := &crypt.KeySet{}
	if err := keys.UnmarshalBinary(keyBlob); err != nil {
		t.Fatal(err)
	}
	items := make([]core.Item, n)
	for i, u := range uploads {
		items[i] = core.Item{ID: u.ID, Meta: u.Meta}
	}
	idx, err := core.Build(keys, items, streamParams)
	if err != nil {
		t.Fatal(err)
	}

	st, err := segstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// A second front end restarts from keys + n alone and attaches; its
	// derived parameters must match the build's.
	attached, err := NewWithKeys(cfg, keyBlob)
	if err != nil {
		t.Fatal(err)
	}
	if err := attached.AttachSegmented(n); err != nil {
		t.Fatal(err)
	}
	attachedParams, err := attached.IndexParams()
	if err != nil {
		t.Fatal(err)
	}
	if attachedParams != streamParams {
		t.Fatalf("attached params %+v differ from streamed %+v", attachedParams, streamParams)
	}
	for q := 0; q < 40; q++ {
		td, err := attached.Trapdoor(ds.Profiles[(q*17)%n])
		if err != nil {
			t.Fatal(err)
		}
		want, err := idx.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.SecRec(td)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d ids segmented, %d monolithic", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: id %d differs: %d vs %d", q, i, got[i], want[i])
			}
		}
	}
}

// TestAttachSegmentedServesDiscovery runs the full restart path against an
// in-process cloud: stream, save encrypted profiles, attach, discover.
func TestAttachSegmentedServesDiscovery(t *testing.T) {
	const n = 400
	cfg := testConfig()
	ds := testPopulation(t, n)

	builder, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	keyBlob, err := builder.ExportKeys()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sb, err := builder.NewSegmentBuilder(n, dir)
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	uploads := uploadsFrom(ds, builder)
	for lo := 0; lo < n; lo += 100 {
		batch := uploads[lo:min(lo+100, n)]
		cts, err := sb.AddUploads(batch)
		if err != nil {
			t.Fatal(err)
		}
		for i, ct := range cts {
			cs.PutProfile(batch[i].ID, ct)
		}
	}
	if _, err := sb.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := segstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	cs.SetSegmentStore(st)

	attached, err := NewWithKeys(cfg, keyBlob)
	if err != nil {
		t.Fatal(err)
	}
	if err := attached.AttachSegmented(n); err != nil {
		t.Fatal(err)
	}
	matches, err := attached.Discover(cs, ds.Profiles[0], 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("attached discovery returned no matches")
	}
	for _, m := range matches {
		if m.ID == 1 {
			t.Fatal("self not excluded")
		}
	}
}

func TestSegmentParamsValidation(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SegmentParams(0); err == nil {
		t.Error("SegmentParams(0) accepted")
	}
	if err := f.AttachSegmented(-1); err == nil {
		t.Error("AttachSegmented(-1) accepted")
	}
	if err := f.AttachSegmented(100); err != nil {
		t.Fatalf("AttachSegmented(100): %v", err)
	}
	if _, err := f.Trapdoor(make([]float64, 100)); err != nil {
		t.Errorf("trapdoor after attach: %v", err)
	}
}

// TestUntunedConfigForPopulation pins the population-scaled atom counts of
// the autotuner's reference rule. The thresholds come from measured
// placement saturation: 4 atoms overflow a quarter of a 100k population
// into the stash, 5 atoms place it cleanly, and each further factor of 5
// in n needs one more atom.
func TestUntunedConfigForPopulation(t *testing.T) {
	for _, tc := range []struct{ users, atoms int }{
		{1, 4}, {5000, 4}, {20000, 4},
		{20001, 5}, {100000, 5},
		{100001, 6}, {500000, 6},
		{500001, 7}, {1000000, 7},
	} {
		cfg := UntunedConfigForPopulation(200, tc.users)
		if cfg.LSH.Atoms != tc.atoms {
			t.Errorf("users=%d: atoms=%d, want %d", tc.users, cfg.LSH.Atoms, tc.atoms)
		}
		base := DefaultConfig(200)
		base.LSH.Atoms = cfg.LSH.Atoms
		if cfg != base {
			t.Errorf("users=%d: UntunedConfigForPopulation changed more than atoms", tc.users)
		}
	}
}

// TestConfigForPopulation pins the production operating points: the
// autotuner's measured winners on their population tiers, the untuned
// reference rule beyond the last measured tier, and nothing but
// (tables, atoms, width, probe range) ever deviating from the untuned
// config. Regenerate with pisd-autotune (see EXPERIMENTS.md) before
// changing these values.
func TestConfigForPopulation(t *testing.T) {
	for _, tc := range []struct {
		users, tables, atoms int
		width                float64
		probeRange           int
	}{
		{1, 6, 5, 1.0, 4},
		{10000, 6, 5, 1.0, 4},
		{10001, 7, 6, 1.0, 4},
		{20000, 7, 6, 1.0, 4},
		{100000, 7, 6, 1.0, 4},
		// Beyond the measured tiers the untuned rule applies unchanged.
		{100001, 10, 6, 0.7, 4},
		{1000000, 10, 7, 0.7, 4},
	} {
		cfg := ConfigForPopulation(200, tc.users)
		if cfg.LSH.Tables != tc.tables || cfg.LSH.Atoms != tc.atoms ||
			cfg.LSH.Width != tc.width || cfg.ProbeRange != tc.probeRange {
			t.Errorf("users=%d: got l=%d k=%d W=%g d=%d, want l=%d k=%d W=%g d=%d",
				tc.users, cfg.LSH.Tables, cfg.LSH.Atoms, cfg.LSH.Width, cfg.ProbeRange,
				tc.tables, tc.atoms, tc.width, tc.probeRange)
		}
		base := UntunedConfigForPopulation(200, tc.users)
		base.LSH.Tables, base.LSH.Atoms = tc.tables, tc.atoms
		base.LSH.Width, base.ProbeRange = tc.width, tc.probeRange
		if cfg != base {
			t.Errorf("users=%d: ConfigForPopulation deviates beyond the tuned axes", tc.users)
		}
	}
}
