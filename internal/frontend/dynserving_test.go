package frontend

import (
	"reflect"
	"sync/atomic"
	"testing"

	"pisd/internal/cloud"
	"pisd/internal/core"
	"pisd/internal/shard"
)

// countingNode counts the bucket fetches a dynamic search issues against
// one shard, so tests can assert a cache hit touched the cloud zero
// times.
type countingNode struct {
	DynNode
	fetches atomic.Int64
}

func (n *countingNode) FetchBuckets(refs []core.BucketRef) ([]core.DynBucket, error) {
	n.fetches.Add(int64(len(refs)))
	return n.DynNode.FetchBuckets(refs)
}

// dynServingFixture builds a 2-shard dynamic deployment with counting
// nodes and the cached serving path over it.
func dynServingFixture(t *testing.T, n int) (*Frontend, []Upload, []DynShard, []DynNode, []*countingNode, *DynServing) {
	t.Helper()
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	ups := uploadsFrom(ds, f)
	shards, err := f.BuildShardedDynamicIndex(ups, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]DynNode, len(shards))
	counters := make([]*countingNode, len(shards))
	for s, sh := range shards {
		cs := cloud.New()
		cs.SetDynIndex(sh.Index)
		cs.PutProfiles(sh.EncProfiles)
		counters[s] = &countingNode{DynNode: shard.NewLocal(cs)}
		nodes[s] = counters[s]
	}
	serv, err := f.NewDynServing(shards, nodes, nil, ServingConfig{CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	return f, ups, shards, nodes, counters, serv
}

func totalFetches(counters []*countingNode) int64 {
	var n int64
	for _, c := range counters {
		n += c.fetches.Load()
	}
	return n
}

// TestDynServingCacheHitSkipsCloud pins the dynamic cache's core
// property: a repeated search fetches ZERO buckets from any shard and
// returns byte-identical matches.
func TestDynServingCacheHitSkipsCloud(t *testing.T) {
	const n, k = 300, 5
	_, ups, _, _, counters, serv := dynServingFixture(t, n)

	first, partial, err := serv.Search(ups[3].Profile, k, ups[3].ID)
	if err != nil || partial {
		t.Fatalf("first search: partial=%v err=%v", partial, err)
	}
	base := totalFetches(counters)
	if base == 0 {
		t.Fatal("first search fetched no buckets")
	}
	second, partial, err := serv.Search(ups[3].Profile, k, ups[3].ID)
	if err != nil || partial {
		t.Fatalf("second search: partial=%v err=%v", partial, err)
	}
	if got := totalFetches(counters); got != base {
		t.Fatalf("cache hit fetched %d buckets, want 0", got-base)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result diverged:\n got %v\nwant %v", second, first)
	}
}

// TestDynServingChurnInvalidation is the stale-hit test: prime the cache
// with searches whose answers an insert and a delete then outdate, churn,
// and assert the next searches reflect the new state exactly — matching
// both a fresh uncached sharded search and the plaintext oracle. A cache
// that missed an invalidation fails this by replaying the pre-churn
// candidate set.
func TestDynServingChurnInvalidation(t *testing.T) {
	const n, k = 300, 5
	f, ups, shards, nodes, _, serv := dynServingFixture(t, n)
	oracle := f.NewDynOracle(ups)

	// --- Insert invalidates ---
	newID := uint64(n + 1)
	// A profile similar to user 8's lands in (a superset of) the buckets
	// user 8's own searches address.
	newProfile := ups[7].Profile

	// Prime the cache with the exact pattern the insert will touch.
	before, partial, err := serv.Search(newProfile, k, 0)
	if err != nil || partial {
		t.Fatalf("pre-insert search: partial=%v err=%v", partial, err)
	}
	for _, m := range before {
		if m.ID == newID {
			t.Fatalf("user %d present before insertion", newID)
		}
	}
	if err := serv.Insert(newID, newProfile); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	oracle.PutProfile(newID, newProfile)

	got, partial, err := serv.Search(newProfile, k, 0)
	if err != nil || partial {
		t.Fatalf("post-insert search: partial=%v err=%v", partial, err)
	}
	if len(got) == 0 || got[0].ID != newID {
		t.Fatalf("stale hit: inserted user %d not the top match of its own profile: %v", newID, got)
	}
	want, partial, err := f.DynSearchSharded(shards, nodes, newProfile, k, 0)
	if err != nil || partial {
		t.Fatalf("fresh post-insert search: partial=%v err=%v", partial, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-insert cached path diverged from fresh search:\n got %v\nwant %v", got, want)
	}

	// --- Delete invalidates ---
	victim := ups[12]
	pre, partial, err := serv.Search(victim.Profile, k, 0)
	if err != nil || partial {
		t.Fatalf("pre-delete search: partial=%v err=%v", partial, err)
	}
	if len(pre) == 0 || pre[0].ID != victim.ID {
		t.Fatalf("victim %d not top match of its own profile before deletion: %v", victim.ID, pre)
	}
	if err := serv.Delete(victim.ID, victim.Profile); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	oracle.RemoveProfile(victim.ID)

	got, partial, err = serv.Search(victim.Profile, k, 0)
	if err != nil || partial {
		t.Fatalf("post-delete search: partial=%v err=%v", partial, err)
	}
	for _, m := range got {
		if m.ID == victim.ID {
			t.Fatalf("stale hit: deleted user %d still recommended: %v", victim.ID, got)
		}
	}
	want, partial, err = f.DynSearchSharded(shards, nodes, victim.Profile, k, 0)
	if err != nil || partial {
		t.Fatalf("fresh post-delete search: partial=%v err=%v", partial, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-delete cached path diverged from fresh search:\n got %v\nwant %v", got, want)
	}

	// The oracle agrees with the surviving ranking (ties reordered
	// freely): re-rank the secure search's own candidates in plaintext.
	ids := make([]uint64, len(got))
	for i, m := range got {
		ids[i] = m.ID
	}
	ref, err := oracle.RankCandidates(victim.Profile, ids, len(got), 0)
	if err != nil {
		t.Fatalf("oracle rank: %v", err)
	}
	if err := EqualMatches(got, ref); err != nil {
		t.Fatalf("post-churn ranking disagrees with oracle: %v", err)
	}
}
