package frontend

import (
	"reflect"
	"testing"

	"pisd/internal/cloud"
)

// TestDiscoverBatchEqualsSerial is the batched throughput path's
// correctness contract: for every query of the batch the result must be
// byte-identical to the looped serial Discover — ids, distances and order.
func TestDiscoverBatchEqualsSerial(t *testing.T) {
	const n, k = 300, 7
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, n)
	idx, encProfiles, err := f.BuildIndex(uploadsFrom(ds, f))
	if err != nil {
		t.Fatal(err)
	}
	cs := cloud.New()
	cs.SetIndex(idx)
	cs.PutProfiles(encProfiles)

	targets := ds.Profiles[:24]
	excludes := make([]uint64, len(targets))
	for i := range excludes {
		excludes[i] = uint64(i + 1) // self-exclusion, like serial callers do
	}
	got, err := f.DiscoverBatch(cs, targets, k, excludes)
	if err != nil {
		t.Fatalf("DiscoverBatch: %v", err)
	}
	if len(got) != len(targets) {
		t.Fatalf("%d results for %d targets", len(got), len(targets))
	}
	for q, target := range targets {
		want, err := f.Discover(cs, target, k, excludes[q])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[q], want) {
			t.Fatalf("query %d: batched %+v, want serial %+v", q, got[q], want)
		}
	}

	// Nil excludeIDs means no exclusion anywhere.
	gotNoEx, err := f.DiscoverBatch(cs, targets[:3], k, nil)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 3; q++ {
		want, err := f.Discover(cs, targets[q], k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotNoEx[q], want) {
			t.Fatalf("query %d without exclusion differs from serial", q)
		}
	}

	// Validation paths.
	if _, err := f.DiscoverBatch(cs, nil, k, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := f.DiscoverBatch(cs, targets, k, excludes[:1]); err == nil {
		t.Error("misaligned excludeIDs accepted")
	}
}

// TestTrapdoorsMatchSerial checks the parallel trapdoor fan-out against
// per-profile Trapdoor calls (generation is deterministic).
func TestTrapdoorsMatchSerial(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := testPopulation(t, 100)
	if _, err := f.Trapdoors(ds.Profiles[:4]); err == nil {
		t.Error("Trapdoors before BuildIndex accepted")
	}
	if _, _, err := f.BuildIndex(uploadsFrom(ds, f)); err != nil {
		t.Fatal(err)
	}
	tds, err := f.Trapdoors(ds.Profiles[:16])
	if err != nil {
		t.Fatal(err)
	}
	for i, td := range tds {
		want, err := f.Trapdoor(ds.Profiles[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(td, want) {
			t.Fatalf("trapdoor %d differs from serial generation", i)
		}
	}
}
